#pragma once
// Work-stealing-free, simple thread pool with a blocking parallel_for.
//
// The functional GPU simulator executes one "SM" per task; on a many-core
// host those run concurrently, on a single-core host the pool degrades to
// serial execution with identical results (tasks are independent by
// construction — the striped global reduction is ordered via its own
// lock-buffer protocol, not via the pool).
//
// parallel_for dispatches the range as contiguous *chunks* (~4 per
// executor), not one task per index, so 100k-iteration sweeps pay dozens
// of queue operations instead of 100k. The calling thread claims chunks
// alongside the workers, which makes even a *nested* parallel_for on the
// same pool deadlock-free: a caller that happens to run on a worker thread
// simply drains its own chunks itself. Prefer constructing pools through
// SimContext (util/sim_context.hpp) rather than directly.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace marlin {

class ThreadPool {
 public:
  /// n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(i) for i in [begin, end), blocking until all complete. The
  /// caller participates, so `size()` workers give `size() + 1` executors.
  /// On exception: the failing chunk stops at the throwing index, the
  /// other chunks still run to completion, the first exception (in claim
  /// order) is rethrown once all chunks finish, and the pool stays
  /// usable. Do not rely on which indices ran when fn can throw.
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

  /// True when the calling thread is a ThreadPool worker (of any pool).
  /// SimContext uses this as its nesting guard: an inner parallel_for
  /// issued from a pool worker degrades to inline execution instead of
  /// oversubscribing the host.
  [[nodiscard]] static bool on_worker_thread() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace marlin
