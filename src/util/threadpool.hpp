#pragma once
// Work-stealing-free, simple thread pool with a blocking parallel_for.
//
// The functional GPU simulator executes one "SM" per task; on a many-core
// host those run concurrently, on a single-core host the pool degrades to
// serial execution with identical results (tasks are independent by
// construction — the striped global reduction is ordered via its own
// lock-buffer protocol, not via the pool).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace marlin {

class ThreadPool {
 public:
  /// n_threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs fn(i) for i in [begin, end), blocking until all complete.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace marlin
