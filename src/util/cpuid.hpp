#pragma once
// Runtime SIMD capability detection and level selection.
//
// The library ships scalar, AVX2 (+FMA +F16C) and AVX-512 (F/BW/VL/DQ)
// implementations of its hottest inner loops (see util/simd_ops.hpp) and
// picks one *at startup* — the binary itself is compiled for baseline
// x86-64, with the vector translation units carrying per-file ISA flags,
// so it still starts on machines without the extensions.
//
// Selection precedence (first match wins):
//   1. an explicit `set_level` call (the benches' `--simd` flag, tests);
//   2. the MARLIN_SIMD environment variable: scalar | avx2 | avx512 | auto;
//   3. auto-detection: the best level both the CPU and this build support.
//
// Every level is bit-identical by contract (no FMA contraction, no
// reassociated reductions — see docs/performance.md), so switching levels
// never changes results, only speed. Requesting a level the host cannot
// run throws instead of silently falling back.

#include <string>

namespace marlin::simd {

/// Dispatch tiers, ordered by capability. kAvx2 implies FMA and F16C;
/// kAvx512 implies the F/BW/VL/DQ subsets (and everything in kAvx2).
enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] const char* to_string(Level level);
/// Parses "scalar" / "avx2" / "avx512"; throws on anything else.
[[nodiscard]] Level level_by_name(const std::string& name);

/// Best level this host can run: the CPU's capabilities clamped by what
/// this build compiled in (a build without AVX-512 support never reports
/// kAvx512). Probed once, then cached.
[[nodiscard]] Level max_supported_level();

/// Can this host run `level`? (kScalar is always supported.)
[[nodiscard]] bool supported(Level level);

/// The level the op tables dispatch on, resolved by the precedence above.
/// Throws if MARLIN_SIMD names an unknown or unsupported level.
[[nodiscard]] Level active_level();

/// Explicit override (wins over MARLIN_SIMD and auto-detection); throws
/// if `level` is unsupported on this host.
void set_level(Level level);

/// Drops the explicit override *and* the cached environment resolution,
/// so the next `active_level()` re-reads MARLIN_SIMD. For tests and flag
/// re-parsing.
void reset_level();

}  // namespace marlin::simd
