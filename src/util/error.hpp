#pragma once
// Error-checking helpers used across the library.
//
// MARLIN_CHECK is used for *user-facing argument validation* (throws), while
// MARLIN_ASSERT guards internal invariants (also throws, so tests can observe
// violations instead of aborting the process).

#include <sstream>
#include <stdexcept>
#include <string>

namespace marlin {

/// Exception type thrown on any precondition or invariant violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check `" << expr << "` failed";
  if (!msg.empty()) os << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace marlin

#define MARLIN_CHECK(cond, msg)                                              \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::marlin::detail::throw_check_failure(#cond, __FILE__, __LINE__,       \
                                            (std::ostringstream{} << msg)    \
                                                .str());                     \
    }                                                                        \
  } while (0)

#define MARLIN_ASSERT(cond) MARLIN_CHECK(cond, "internal invariant violated")
