#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace marlin {

namespace {

thread_local bool t_on_worker_thread = false;

/// Shared bookkeeping of one parallel_for call. Heap-allocated and owned
/// jointly by the caller and the queued chunk runners: a runner that is
/// still queued when all chunks have been claimed must find valid (empty)
/// state, not a dead stack frame.
struct ForState {
  std::int64_t begin = 0;
  std::int64_t n = 0;
  std::int64_t n_chunks = 0;
  std::function<void(std::int64_t)> fn;
  std::atomic<std::int64_t> next_chunk{0};
  std::atomic<std::int64_t> chunks_left{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr error;
};

/// Claims and runs chunks until none remain. Chunks after a failure still
/// run (the failing chunk alone stops early); the first exception wins.
void run_chunks(const std::shared_ptr<ForState>& s) {
  for (;;) {
    const std::int64_t c = s->next_chunk.fetch_add(1);
    if (c >= s->n_chunks) return;
    const std::int64_t lo = s->begin + s->n * c / s->n_chunks;
    const std::int64_t hi = s->begin + s->n * (c + 1) / s->n_chunks;
    try {
      for (std::int64_t i = lo; i < hi; ++i) s->fn(i);
    } catch (...) {
      const std::lock_guard lock(s->error_mutex);
      if (!s->error) s->error = std::current_exception();
    }
    if (s->chunks_left.fetch_sub(1) == 1) {
      const std::lock_guard lock(s->done_mutex);
      s->done_cv.notify_all();
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker_thread; }

void ThreadPool::worker_loop() {
  t_on_worker_thread = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;

  auto state = std::make_shared<ForState>();
  state->begin = begin;
  state->n = end - begin;
  // ~4 chunks per executor: fine-grained enough to rebalance uneven
  // per-index work, coarse enough that dispatch cost stays O(threads).
  state->n_chunks =
      std::min<std::int64_t>(state->n, 4 * (static_cast<std::int64_t>(size()) + 1));
  state->chunks_left.store(state->n_chunks);
  state->fn = fn;

  // One claim loop per worker at most; surplus runners would only find an
  // empty chunk counter.
  const std::int64_t helpers =
      std::min<std::int64_t>(state->n_chunks, static_cast<std::int64_t>(size()));
  {
    const std::lock_guard lock(mutex_);
    for (std::int64_t t = 0; t < helpers; ++t) {
      queue_.emplace([state] { run_chunks(state); });
    }
  }
  cv_.notify_all();

  run_chunks(state);

  std::unique_lock lock(state->done_mutex);
  state->done_cv.wait(lock,
                      [&state] { return state->chunks_left.load() == 0; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace marlin
