#include "util/threadpool.hpp"

#include <atomic>
#include <exception>

namespace marlin {

ThreadPool::ThreadPool(unsigned n_threads) {
  if (n_threads == 0) {
    n_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(n_threads);
  for (unsigned i = 0; i < n_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  if (begin >= end) return;
  const std::int64_t n = end - begin;

  struct State {
    std::atomic<std::int64_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  } state;
  state.remaining.store(n);

  auto run_one = [&state, &fn](std::int64_t i) {
    try {
      fn(i);
    } catch (...) {
      const std::lock_guard lock(state.error_mutex);
      if (!state.error) state.error = std::current_exception();
    }
    if (state.remaining.fetch_sub(1) == 1) {
      const std::lock_guard lock(state.done_mutex);
      state.done_cv.notify_all();
    }
  };

  {
    const std::lock_guard lock(mutex_);
    for (std::int64_t i = begin; i < end; ++i) {
      queue_.emplace([&run_one, i] { run_one(i); });
    }
  }
  cv_.notify_all();

  std::unique_lock lock(state.done_mutex);
  state.done_cv.wait(lock, [&state] { return state.remaining.load() == 0; });
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace marlin
