#pragma once
// Deterministic, fast PRNG (xoshiro256**) with helpers for the synthetic
// workloads: uniform/normal scalars, heavy-tailed weight fills, and
// exponential inter-arrival times for the serving simulator's Poisson client.

#include <cmath>
#include <cstdint>
#include <numbers>

namespace marlin {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // SplitMix64 step
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_int(std::uint64_t n) noexcept {
    return next_u64() % n;  // negligible modulo bias for our n
  }

  /// Standard normal via Box-Muller (one value per call; simple > fast here).
  double normal() noexcept {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (for Poisson arrival processes).
  double exponential(double rate) noexcept {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -std::log(u) / rate;
  }

  /// Student-t with `dof` degrees of freedom — heavy-tailed like LLM weights.
  double student_t(double dof) noexcept {
    // t = Z / sqrt(ChiSq(dof)/dof); ChiSq via sum of squared normals would be
    // slow for large dof, so use the Bailey polar-ish approximation through
    // the definition with a gamma draw replaced by a normal approximation for
    // dof > 30, which is accurate enough for synthetic data.
    if (dof > 30.0) return normal();
    double chisq = 0.0;
    const int k = static_cast<int>(dof);
    for (int i = 0; i < k; ++i) {
      const double z = normal();
      chisq += z * z;
    }
    return normal() / std::sqrt(chisq / dof);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace marlin
