#pragma once
// SimContext — the execution session every layer of the simulator shares.
//
// One explicitly-passed context owns the lazily-started shared ThreadPool
// and the thread-count policy, so kernels (core/), analytic models
// (baselines/, eval/) and the sweep harness (bench/common.hpp) all draw
// parallelism from a single place instead of threading raw ThreadPool
// pointers through every signature.
//
// Policy resolution (first match wins):
//   1. an explicit thread count (the `--threads` CLI flag),
//   2. the MARLIN_THREADS environment variable,
//   3. hardware concurrency.
// A count of 1 forces bit-identical serial mode: parallel_for runs inline
// and no pool is ever started.
//
// Nesting rule: outer sweep-level parallelism and inner per-SM kernel
// parallelism compose without oversubscription or deadlock because a
// parallel_for issued from a pool worker (i.e. from inside another
// parallel_for) degrades to inline execution. Results are bit-identical
// either way — tasks are index-addressed and order-independent.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>

#include "util/threadpool.hpp"

namespace marlin {

class CliArgs;

class SimContext {
 public:
  /// n_threads == 0 resolves via MARLIN_THREADS, then hardware concurrency;
  /// n_threads == 1 forces serial mode (no pool, inline execution).
  explicit SimContext(unsigned n_threads = 0);

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// Total executor count (pool workers + the participating caller).
  [[nodiscard]] unsigned num_threads() const noexcept { return n_threads_; }
  [[nodiscard]] bool serial() const noexcept { return n_threads_ == 1; }

  /// The shared pool, started on first use; nullptr in serial mode. The
  /// pool has num_threads() - 1 workers because parallel_for's caller
  /// claims chunks too.
  [[nodiscard]] ThreadPool* pool() const;

  /// Runs fn(i) for i in [begin, end). Executes inline in serial mode,
  /// for single-index ranges, and when called from a pool worker (the
  /// nesting guard); otherwise fans out on the shared pool. Results must
  /// be index-addressed by fn so every mode is bit-identical. The
  /// determinism guarantee covers successful runs only: when fn throws,
  /// the first exception propagates but which other indices ran differs
  /// between the inline path (stops at the throw) and the pooled path
  /// (sibling chunks still complete).
  void parallel_for(std::int64_t begin, std::int64_t end,
                    const std::function<void(std::int64_t)>& fn) const;

  /// The thread-count policy: `requested` if nonzero, else MARLIN_THREADS,
  /// else hardware concurrency (at least 1).
  [[nodiscard]] static unsigned resolve_threads(unsigned requested) noexcept;

  /// Process-wide serial context — the default for kernel entry points so
  /// existing call sites keep their exact behaviour.
  [[nodiscard]] static const SimContext& serial_context();

 private:
  unsigned n_threads_ = 1;
  mutable std::unique_ptr<ThreadPool> owned_;
  mutable std::once_flag started_;
};

/// Context for a binary's `--threads` flag (0/absent = auto policy).
[[nodiscard]] SimContext make_sim_context(const CliArgs& args);

}  // namespace marlin
