#include "util/half.hpp"

#include <ostream>

#include "util/simd_ops.hpp"

namespace marlin {

std::uint16_t float_to_half_bits(float f) noexcept {
  const std::uint32_t x = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (x >> 16) & 0x8000u;
  const std::uint32_t exp = (x >> 23) & 0xffu;
  std::uint32_t man = x & 0x007fffffu;

  if (exp == 0xffu) {  // inf / NaN: keep NaN-ness (quiet), truncate payload
    const std::uint32_t payload = man ? (0x200u | (man >> 13)) : 0u;
    return static_cast<std::uint16_t>(sign | 0x7c00u | payload);
  }

  int e = static_cast<int>(exp) - 127 + 15;  // rebias to binary16
  if (e >= 31) return static_cast<std::uint16_t>(sign | 0x7c00u);  // -> inf
  if (e <= 0) {
    // Result is subnormal (or rounds to zero). The float value is
    // 1.man * 2^(e-15); the half subnormal payload represents a * 2^-24,
    // so a = (implicit|man) >> (14 - e), rounded to nearest-even.
    if (e < -10) return static_cast<std::uint16_t>(sign);  // below 2^-25
    man |= 0x00800000u;
    const int shift = 14 - e;  // in [14, 24]
    std::uint32_t a = man >> shift;
    const std::uint32_t rem = man & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (a & 1u))) ++a;
    return static_cast<std::uint16_t>(sign | a);
  }

  // Normal: round 23-bit mantissa to 10 bits, nearest-even.
  std::uint32_t a = man >> 13;
  const std::uint32_t rem = man & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (a & 1u))) {
    ++a;
    if (a == 0x400u) {  // mantissa overflow bumps the exponent
      a = 0;
      if (++e >= 31) return static_cast<std::uint16_t>(sign | 0x7c00u);
    }
  }
  return static_cast<std::uint16_t>(sign | (static_cast<std::uint32_t>(e) << 10) | a);
}

float half_bits_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t man = h & 0x03ffu;

  std::uint32_t x;
  if (exp == 0) {
    if (man == 0) {
      x = sign;  // signed zero
    } else {
      // Subnormal: normalise by shifting until the implicit bit appears.
      int e = 0;
      while (!(man & 0x400u)) {
        man <<= 1;
        ++e;
      }
      man &= 0x3ffu;
      x = sign | (static_cast<std::uint32_t>(127 - 15 - e + 1) << 23) |
          (man << 13);
    }
  } else if (exp == 31) {
    x = sign | 0x7f800000u | (man << 13);  // inf / NaN
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (man << 13);
  }
  return std::bit_cast<float>(x);
}

void halves_to_floats(std::size_t n, const Half* h, float* out) {
  simd::ops().f16_to_f32(n, half_bits_ptr(h), out);
}

void floats_to_halves(std::size_t n, const float* f, Half* out) {
  simd::ops().f32_to_f16(n, f, half_bits_ptr(out));
}

std::ostream& operator<<(std::ostream& os, Half h) {
  return os << h.to_float();
}

}  // namespace marlin
