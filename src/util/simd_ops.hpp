#pragma once
// Runtime-dispatched SIMD kernels for the host-side hot loops.
//
// `Ops` is a table of function pointers filled per `simd::Level`
// (util/cpuid.hpp): the scalar table is the reference implementation, and
// the AVX2 / AVX-512 translation units (simd_avx2.cpp, simd_avx512.cpp —
// compiled with per-file ISA flags) override the entries they accelerate.
// A level inherits every entry it does not override from the level below,
// so partial tables always stay complete.
//
// Bit-identity contract (enforced by tests/test_simd_dispatch.cpp): every
// entry produces *bit-identical* results at every level. Vector code must
//   * never fuse multiply+add (separate mul/add instructions; the vector
//     TUs are additionally compiled with -ffp-contract=off),
//   * never reassociate an ordered reduction — only elementwise maps and
//     order-insensitive folds (max) are vectorized, or the loop is
//     vectorized across *independent* outputs (e.g. GEMM output columns),
//   * convert FP16 with IEEE round-to-nearest-even semantics identical to
//     util/half.{hpp,cpp} (F16C / AVX-512 conversions match, subnormals
//     and NaN quieting included).
// The goldens are pinned to these semantics, so `ctest -L golden` passes
// unchanged under MARLIN_SIMD=scalar and the dispatched path alike.

#include <cstddef>
#include <cstdint>

#include "util/cpuid.hpp"

namespace marlin::simd {

/// One level's kernel table. All pointers are always non-null.
struct Ops {
  /// The level this table implements (for introspection/logging).
  Level level = Level::kScalar;

  // ---- elementwise float kernels --------------------------------------
  /// y[i] += a * x[i] (separate multiply and add — no FMA).
  void (*axpy_f32)(std::size_t n, float a, const float* x, float* y);
  /// y[i] += x[i].
  void (*add_f32)(std::size_t n, const float* x, float* y);
  /// y[i] *= x[i].
  void (*mul_f32)(std::size_t n, const float* x, float* y);
  /// y[i] += a * (double)x[i]  (double accumulator, float source).
  void (*axpy_f32_f64)(std::size_t n, double a, const float* x, double* y);
  /// max_i |x[i]| (0.0f for n == 0; order-insensitive fold).
  float (*max_abs_f32)(std::size_t n, const float* x);

  // ---- IEEE binary16 <-> binary32 bulk conversion ---------------------
  /// out[i] = half_bits_to_float(h[i]).
  void (*f16_to_f32)(std::size_t n, const std::uint16_t* h, float* out);
  /// out[i] = float_to_half_bits(f[i])  (round-to-nearest-even).
  void (*f32_to_f16)(std::size_t n, const float* f, std::uint16_t* out);
  /// out[i] = float_to_half_bits(half_bits_to_float(out[i]) + v[i]) — the
  /// kernel's in-place FP16 global reduction step.
  void (*f16_accum_f32)(std::size_t n, const float* v, std::uint16_t* out);

  // ---- INT4 packing / dequantisation ----------------------------------
  /// Packs `groups` runs of 8 codes (values 0..15, logical order) into one
  /// uint32 each with the 64207531 interleave (quant/pack.hpp). Returns
  /// false if any code is out of range (output then unspecified; the
  /// caller re-runs the scalar path for the exact error).
  bool (*pack_u4_interleaved)(std::size_t groups, const std::uint8_t* codes,
                              std::uint32_t* out);
  /// Same, linear nibble order (nibble i = code i).
  bool (*pack_u4_linear)(std::size_t groups, const std::uint8_t* codes,
                         std::uint32_t* out);
  /// Expands `nregs` linear-packed registers into 8*nregs codes.
  void (*unpack_u4_linear)(std::size_t nregs, const std::uint32_t* packed,
                           std::uint8_t* out);
  /// Plane-major nibble dequantisation: for nibble position p (0..7) and
  /// register i, out[p * nregs + i] = (float)((regs[i] >> 4p) & 0xF) - 8.
  /// (Bitwise equal to quant::dequant8's Half values converted to float.)
  void (*dequant_u4_planes)(std::size_t nregs, const std::uint32_t* regs,
                            float* out);

  // ---- uniform quantisation inner loops -------------------------------
  /// out[i] = (uint8)(clamp((int)nearbyint(v[i] / scale), -2^(b-1),
  /// 2^(b-1)-1) + 2^(b-1)) — quant::encode_symmetric over a span.
  void (*encode_symmetric)(std::size_t n, const float* v, float scale,
                           int bits, std::uint8_t* out);
  /// out[i] = clamp((int)nearbyint((v[i] - zero) / scale), 0, qmax).
  void (*quantize_asym)(std::size_t n, const float* v, float scale,
                        float zero, int qmax, int* out);
  /// out[i] = (float)q[i] * scale + zero (separate multiply and add).
  void (*dequant_asym)(std::size_t n, const int* q, float scale, float zero,
                       float* out);
};

/// The table for `active_level()` (re-reads the level on every call, so
/// tests may flip levels at runtime).
[[nodiscard]] const Ops& ops();

/// The table for a specific level; levels this build lacks fall back to
/// the best available table at or below `level`.
[[nodiscard]] const Ops& ops_for(Level level);

}  // namespace marlin::simd
