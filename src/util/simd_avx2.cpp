// AVX2 (+FMA +F16C) overrides for the simd::Ops table. This translation
// unit is compiled with -mavx2 -mfma -mf16c -ffp-contract=off (per-file,
// see src/CMakeLists.txt) — the rest of the library stays baseline x86-64
// so the binary starts on any CPU and only *calls* into here after the
// runtime probe (util/cpuid.cpp) says it may.
//
// Bit-identity rules (see util/simd_ops.hpp): multiplies and adds stay
// separate instructions (no vfmadd — FMA is enabled only because the F16C
// tier requires it on real CPUs), reductions are never reassociated, and
// -ffp-contract=off keeps the scalar tail loops honest too.

#if defined(MARLIN_HAVE_AVX2_TU)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/half.hpp"
#include "util/simd_ops.hpp"

namespace marlin::simd::detail {

namespace {

// 64207531 interleave (quant/pack.hpp); local copy, pinned by tests.
constexpr int kNib[8] = {4, 0, 5, 1, 6, 2, 7, 3};

constexpr int kRoundNearest = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

void axpy_f32_avx2(std::size_t n, float a, const float* x, float* y) {
  const __m256 va = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
    _mm256_storeu_ps(y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void add_f32_avx2(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void mul_f32_avx2(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(y + i), _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void axpy_f32_f64_avx2(std::size_t n, double a, const float* x, double* y) {
  const __m256d va = _mm256_set1_pd(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xd = _mm256_cvtps_pd(_mm_loadu_ps(x + i));
    const __m256d prod = _mm256_mul_pd(va, xd);
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * static_cast<double>(x[i]);
}

float max_abs_f32_avx2(std::size_t n, const float* x) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  __m256 vmax = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    vmax = _mm256_max_ps(vmax,
                         _mm256_and_ps(_mm256_loadu_ps(x + i), absmask));
  }
  __m128 m = _mm_max_ps(_mm256_castps256_ps128(vmax),
                        _mm256_extractf128_ps(vmax, 1));
  m = _mm_max_ps(m, _mm_movehl_ps(m, m));
  m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 1));
  float maxabs = _mm_cvtss_f32(m);
  for (; i < n; ++i) maxabs = std::max(maxabs, std::abs(x[i]));
  return maxabs;
}

void f16_to_f32_avx2(std::size_t n, const std::uint16_t* h, float* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(h + i));
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(bits));
  }
  for (; i < n; ++i) out[i] = half_bits_to_float(h[i]);
}

void f32_to_f16_avx2(std::size_t n, const float* f, std::uint16_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bits = _mm256_cvtps_ph(_mm256_loadu_ps(f + i),
                                         kRoundNearest);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), bits);
  }
  for (; i < n; ++i) out[i] = float_to_half_bits(f[i]);
}

void f16_accum_f32_avx2(std::size_t n, const float* v, std::uint16_t* out) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i bits =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(out + i));
    const __m256 sum =
        _mm256_add_ps(_mm256_cvtph_ps(bits), _mm256_loadu_ps(v + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_cvtps_ph(sum, kRoundNearest));
  }
  for (; i < n; ++i) {
    out[i] = float_to_half_bits(half_bits_to_float(out[i]) + v[i]);
  }
}

// Packs 4 groups of 8 nibble codes per iteration: byte-shuffle into nibble
// order, then two widening multiply-adds assemble each group's 8 nibbles
// into a 16-bit half, and an OR/permute compresses the four 32-bit results.
template <bool kInterleaved>
bool pack_u4_avx2(std::size_t groups, const std::uint8_t* codes,
                  std::uint32_t* out) {
  const __m256i hi_nibble = _mm256_set1_epi8(static_cast<char>(0xf0));
  const __m256i mul_nib = _mm256_set1_epi16(0x1001);      // b0 + 16 * b1
  const __m256i mul_pair = _mm256_set1_epi32(0x01000001);  // p0 + 256 * p1
  // Per group: byte j after the shuffle lands in nibble j, so order the
  // logical codes by their target nibble (inverse of kNib).
  const __m256i shuf = _mm256_setr_epi8(
      1, 3, 5, 7, 0, 2, 4, 6, 9, 11, 13, 15, 8, 10, 12, 14,
      1, 3, 5, 7, 0, 2, 4, 6, 9, 11, 13, 15, 8, 10, 12, 14);
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  std::size_t g = 0;
  for (; g + 4 <= groups; g += 4) {
    __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(codes + g * 8));
    if (!_mm256_testz_si256(v, hi_nibble)) return false;  // code >= 16
    if constexpr (kInterleaved) v = _mm256_shuffle_epi8(v, shuf);
    const __m256i pairs = _mm256_maddubs_epi16(v, mul_nib);
    const __m256i quads = _mm256_madd_epi16(pairs, mul_pair);
    const __m256i merged =
        _mm256_or_si256(quads, _mm256_srli_epi64(quads, 16));
    const __m256i packed = _mm256_permutevar8x32_epi32(merged, pick);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + g),
                     _mm256_castsi256_si128(packed));
  }
  for (; g < groups; ++g) {
    const std::uint8_t* c = codes + g * 8;
    std::uint32_t reg = 0;
    for (int i = 0; i < 8; ++i) {
      if (c[i] >= 16) return false;
      reg |= static_cast<std::uint32_t>(c[i])
             << (4 * (kInterleaved ? kNib[i] : i));
    }
    out[g] = reg;
  }
  return true;
}

void unpack_u4_linear_avx2(std::size_t nregs, const std::uint32_t* packed,
                           std::uint8_t* out) {
  const __m256i lo_mask = _mm256_set1_epi16(0x000f);
  std::size_t r = 0;
  for (; r + 4 <= nregs; r += 4) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(packed + r));
    const __m256i w = _mm256_cvtepu8_epi16(raw);  // one source byte per lane
    const __m256i lo = _mm256_and_si256(w, lo_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(w, 4), lo_mask);
    const __m256i res = _mm256_or_si256(lo, _mm256_slli_epi16(hi, 8));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + r * 8), res);
  }
  for (; r < nregs; ++r) {
    const std::uint32_t reg = packed[r];
    for (int j = 0; j < 8; ++j) {
      out[r * 8 + static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>((reg >> (4 * j)) & 0xfu);
    }
  }
}

void dequant_u4_planes_avx2(std::size_t nregs, const std::uint32_t* regs,
                            float* out) {
  const __m256i mask = _mm256_set1_epi32(0xf);
  const __m256 eight = _mm256_set1_ps(8.0f);
  for (int p = 0; p < 8; ++p) {
    float* plane = out + static_cast<std::size_t>(p) * nregs;
    std::size_t i = 0;
    for (; i + 8 <= nregs; i += 8) {
      const __m256i r =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(regs + i));
      const __m256i nib =
          _mm256_and_si256(_mm256_srli_epi32(r, 4 * p), mask);
      _mm256_storeu_ps(plane + i,
                       _mm256_sub_ps(_mm256_cvtepi32_ps(nib), eight));
    }
    for (; i < nregs; ++i) {
      plane[i] = static_cast<float>((regs[i] >> (4 * p)) & 0xfu) - 8.0f;
    }
  }
}

void encode_symmetric_avx2(std::size_t n, const float* v, float scale,
                           int bits, std::uint8_t* out) {
  const int zero = 1 << (bits - 1);
  const int lo = -zero, hi = zero - 1;
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256i vlo = _mm256_set1_epi32(lo), vhi = _mm256_set1_epi32(hi);
  const __m256i vzero = _mm256_set1_epi32(zero);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_div_ps(_mm256_loadu_ps(v + i), vscale);
    __m256i c = _mm256_cvtps_epi32(d);  // RTNE == nearbyint + cast
    c = _mm256_add_epi32(_mm256_min_epi32(_mm256_max_epi32(c, vlo), vhi),
                         vzero);
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(c),
                                        _mm256_extracti128_si256(c, 1));
    const __m128i p8 = _mm_packus_epi16(p16, p16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + i), p8);
  }
  for (; i < n; ++i) {
    const int code = std::clamp(
        static_cast<int>(std::nearbyint(v[i] / scale)), lo, hi);
    out[i] = static_cast<std::uint8_t>(code + zero);
  }
}

void quantize_asym_avx2(std::size_t n, const float* v, float scale,
                        float zero, int qmax, int* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vzero = _mm256_set1_ps(zero);
  const __m256i vmin = _mm256_setzero_si256();
  const __m256i vmax = _mm256_set1_epi32(qmax);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d =
        _mm256_div_ps(_mm256_sub_ps(_mm256_loadu_ps(v + i), vzero), vscale);
    __m256i c = _mm256_cvtps_epi32(d);
    c = _mm256_min_epi32(_mm256_max_epi32(c, vmin), vmax);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), c);
  }
  for (; i < n; ++i) {
    const int code =
        static_cast<int>(std::nearbyint((v[i] - zero) / scale));
    out[i] = std::clamp(code, 0, qmax);
  }
}

void dequant_asym_avx2(std::size_t n, const int* q, float scale, float zero,
                       float* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 vzero = _mm256_set1_ps(zero);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i)));
    _mm256_storeu_ps(out + i,
                     _mm256_add_ps(_mm256_mul_ps(f, vscale), vzero));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<float>(q[i]) * scale + zero;
  }
}

}  // namespace

void apply_avx2_overrides(Ops& t) {
  t.axpy_f32 = axpy_f32_avx2;
  t.add_f32 = add_f32_avx2;
  t.mul_f32 = mul_f32_avx2;
  t.axpy_f32_f64 = axpy_f32_f64_avx2;
  t.max_abs_f32 = max_abs_f32_avx2;
  t.f16_to_f32 = f16_to_f32_avx2;
  t.f32_to_f16 = f32_to_f16_avx2;
  t.f16_accum_f32 = f16_accum_f32_avx2;
  t.pack_u4_interleaved = pack_u4_avx2<true>;
  t.pack_u4_linear = pack_u4_avx2<false>;
  t.unpack_u4_linear = unpack_u4_linear_avx2;
  t.dequant_u4_planes = dequant_u4_planes_avx2;
  t.encode_symmetric = encode_symmetric_avx2;
  t.quantize_asym = quantize_asym_avx2;
  t.dequant_asym = dequant_asym_avx2;
}

}  // namespace marlin::simd::detail

#endif  // MARLIN_HAVE_AVX2_TU
