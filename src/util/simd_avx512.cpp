// AVX-512 (F/BW/VL/DQ) overrides for the simd::Ops table. Compiled with
// per-file ISA flags (src/CMakeLists.txt); only the kernels that benefit
// from 512-bit lanes are overridden — everything else (the nibble pack,
// the quantisation loops) is inherited from the AVX2 table.
//
// Same bit-identity rules as simd_avx2.cpp: separate multiply and add
// instructions, no reassociated ordered reductions (max is the only fold
// vectorized, and max is order-insensitive), FP16 conversions via the
// IEEE-correct VCVTPH2PS/VCVTPS2PH.

#if defined(MARLIN_HAVE_AVX512_TU)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "util/half.hpp"
#include "util/simd_ops.hpp"

namespace marlin::simd::detail {

namespace {

constexpr int kRoundNearest = _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC;

void axpy_f32_avx512(std::size_t n, float a, const float* x, float* y) {
  const __m512 va = _mm512_set1_ps(a);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(x + i));
    _mm512_storeu_ps(y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

void add_f32_avx512(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i, _mm512_add_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void mul_f32_avx512(std::size_t n, const float* x, float* y) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        y + i, _mm512_mul_ps(_mm512_loadu_ps(y + i), _mm512_loadu_ps(x + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void axpy_f32_f64_avx512(std::size_t n, double a, const float* x, double* y) {
  const __m512d va = _mm512_set1_pd(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d xd = _mm512_cvtps_pd(_mm256_loadu_ps(x + i));
    const __m512d prod = _mm512_mul_pd(va, xd);
    _mm512_storeu_pd(y + i, _mm512_add_pd(_mm512_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += a * static_cast<double>(x[i]);
}

float max_abs_f32_avx512(std::size_t n, const float* x) {
  __m512 vmax = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(x + i)));
  }
  float maxabs = _mm512_reduce_max_ps(vmax);
  for (; i < n; ++i) maxabs = std::max(maxabs, std::abs(x[i]));
  return maxabs;
}

void f16_to_f32_avx512(std::size_t n, const std::uint16_t* h, float* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(h + i));
    _mm512_storeu_ps(out + i, _mm512_cvtph_ps(bits));
  }
  for (; i < n; ++i) out[i] = half_bits_to_float(h[i]);
}

void f32_to_f16_avx512(std::size_t n, const float* f, std::uint16_t* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i bits =
        _mm512_cvtps_ph(_mm512_loadu_ps(f + i), kRoundNearest);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), bits);
  }
  for (; i < n; ++i) out[i] = float_to_half_bits(f[i]);
}

void f16_accum_f32_avx512(std::size_t n, const float* v, std::uint16_t* out) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256i bits =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(out + i));
    const __m512 sum =
        _mm512_add_ps(_mm512_cvtph_ps(bits), _mm512_loadu_ps(v + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtps_ph(sum, kRoundNearest));
  }
  for (; i < n; ++i) {
    out[i] = float_to_half_bits(half_bits_to_float(out[i]) + v[i]);
  }
}

void dequant_u4_planes_avx512(std::size_t nregs, const std::uint32_t* regs,
                              float* out) {
  const __m512i mask = _mm512_set1_epi32(0xf);
  const __m512 eight = _mm512_set1_ps(8.0f);
  for (int p = 0; p < 8; ++p) {
    float* plane = out + static_cast<std::size_t>(p) * nregs;
    std::size_t i = 0;
    for (; i + 16 <= nregs; i += 16) {
      const __m512i r =
          _mm512_loadu_si512(reinterpret_cast<const void*>(regs + i));
      const __m512i nib =
          _mm512_and_si512(_mm512_srli_epi32(r, static_cast<unsigned>(4 * p)),
                           mask);
      _mm512_storeu_ps(plane + i,
                       _mm512_sub_ps(_mm512_cvtepi32_ps(nib), eight));
    }
    for (; i < nregs; ++i) {
      plane[i] = static_cast<float>((regs[i] >> (4 * p)) & 0xfu) - 8.0f;
    }
  }
}

}  // namespace

void apply_avx512_overrides(Ops& t) {
  t.axpy_f32 = axpy_f32_avx512;
  t.add_f32 = add_f32_avx512;
  t.mul_f32 = mul_f32_avx512;
  t.axpy_f32_f64 = axpy_f32_f64_avx512;
  t.max_abs_f32 = max_abs_f32_avx512;
  t.f16_to_f32 = f16_to_f32_avx512;
  t.f32_to_f16 = f32_to_f16_avx512;
  t.f16_accum_f32 = f16_accum_f32_avx512;
  t.dequant_u4_planes = dequant_u4_planes_avx512;
}

}  // namespace marlin::simd::detail

#endif  // MARLIN_HAVE_AVX512_TU
