#include "util/cpuid.hpp"

#include <atomic>
#include <cstdlib>

#include "util/error.hpp"

namespace marlin::simd {

namespace {

// Explicit set_level override and the cached MARLIN_SIMD/auto resolution;
// -1 = unset. Relaxed atomics: levels are plain ints and every thread
// resolving concurrently computes the same value.
std::atomic<int> g_override{-1};
std::atomic<int> g_resolved{-1};

Level probe_max_level() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  const bool avx2 = __builtin_cpu_supports("avx2") &&
                    __builtin_cpu_supports("fma") &&
                    __builtin_cpu_supports("f16c");
  const bool avx512 = avx2 && __builtin_cpu_supports("avx512f") &&
                      __builtin_cpu_supports("avx512bw") &&
                      __builtin_cpu_supports("avx512vl") &&
                      __builtin_cpu_supports("avx512dq");
#if defined(MARLIN_HAVE_AVX512_TU)
  if (avx512) return Level::kAvx512;
#endif
#if defined(MARLIN_HAVE_AVX2_TU)
  if (avx2) return Level::kAvx2;
#endif
  (void)avx512;
  (void)avx2;
#endif
  return Level::kScalar;
}

Level resolve_from_env() {
  const char* env = std::getenv("MARLIN_SIMD");
  if (env == nullptr || *env == '\0' || std::string(env) == "auto") {
    return max_supported_level();
  }
  const Level l = level_by_name(env);
  MARLIN_CHECK(supported(l), "MARLIN_SIMD=" << env
                                            << " is not supported on this "
                                               "host (max: "
                                            << to_string(max_supported_level())
                                            << ")");
  return l;
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "?";
}

Level level_by_name(const std::string& name) {
  for (const Level l : {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    if (name == to_string(l)) return l;
  }
  MARLIN_CHECK(false, "unknown SIMD level `" << name
                                             << "`; known: scalar, avx2, "
                                                "avx512");
  return Level::kScalar;  // unreachable
}

Level max_supported_level() {
  static const Level max = probe_max_level();
  return max;
}

bool supported(Level level) {
  return static_cast<int>(level) <= static_cast<int>(max_supported_level());
}

Level active_level() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Level>(o);
  const int r = g_resolved.load(std::memory_order_relaxed);
  if (r >= 0) return static_cast<Level>(r);
  const Level l = resolve_from_env();
  g_resolved.store(static_cast<int>(l), std::memory_order_relaxed);
  return l;
}

void set_level(Level level) {
  MARLIN_CHECK(supported(level),
               "SIMD level " << to_string(level)
                             << " is not supported on this host (max: "
                             << to_string(max_supported_level()) << ")");
  g_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_level() {
  g_override.store(-1, std::memory_order_relaxed);
  g_resolved.store(-1, std::memory_order_relaxed);
}

}  // namespace marlin::simd
