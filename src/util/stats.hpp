#pragma once
// Small statistics helpers shared by tests, the eval module, and the serving
// simulator's latency metrics.

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace marlin {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double stddev(std::span<const double> xs);

/// p in [0, 100]; linear interpolation between order statistics.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// ||a - b||_F / ||a||_F over float spans; 0/0 -> 0.
[[nodiscard]] double relative_frobenius_error(std::span<const float> a,
                                              std::span<const float> b);

/// max_i |a_i - b_i|
[[nodiscard]] double max_abs_error(std::span<const float> a,
                                   std::span<const float> b);

}  // namespace marlin
