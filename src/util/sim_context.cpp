#include "util/sim_context.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/cli.hpp"
#include "util/error.hpp"

namespace marlin {

SimContext::SimContext(unsigned n_threads)
    : n_threads_(resolve_threads(n_threads)) {}

ThreadPool* SimContext::pool() const {
  if (serial()) return nullptr;
  std::call_once(started_, [this] {
    owned_ = std::make_unique<ThreadPool>(n_threads_ - 1);
  });
  return owned_.get();
}

void SimContext::parallel_for(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t)>& fn) const {
  if (begin >= end) return;
  if (serial() || end - begin == 1 || ThreadPool::on_worker_thread()) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  pool()->parallel_for(begin, end, fn);
}

unsigned SimContext::resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("MARLIN_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  return std::max(1u, std::thread::hardware_concurrency());
}

const SimContext& SimContext::serial_context() {
  static const SimContext ctx(1);
  return ctx;
}

SimContext make_sim_context(const CliArgs& args) {
  const std::int64_t threads = args.get_int("threads", 0);
  MARLIN_CHECK(threads >= 0, "--threads must be >= 0 (0 = auto)");
  return SimContext(static_cast<unsigned>(threads));
}

}  // namespace marlin
