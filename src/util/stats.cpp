#include "util/stats.hpp"

namespace marlin {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::vector<double> xs, double p) {
  MARLIN_CHECK(!xs.empty(), "percentile of empty sample");
  MARLIN_CHECK(p >= 0.0 && p <= 100.0, "percentile must be in [0,100]");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double relative_frobenius_error(std::span<const float> a,
                                std::span<const float> b) {
  MARLIN_CHECK(a.size() == b.size(), "size mismatch");
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    num += d * d;
    den += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : HUGE_VAL;
  return std::sqrt(num / den);
}

double max_abs_error(std::span<const float> a, std::span<const float> b) {
  MARLIN_CHECK(a.size() == b.size(), "size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(a[i]) - b[i]));
  }
  return m;
}

}  // namespace marlin
