#pragma once
// Pinned deterministic 64-bit hashing.
//
// Every content hash in the simulator — the router's session-affinity
// placement and the KV prefix cache's chained block keys — goes through
// this one mixer. It is the splitmix64 finalizer (Steele et al.) with
// fixed constants, so hashes are identical on every platform, compiler,
// and standard library. Never use std::hash for anything that reaches a
// golden file or a cross-run comparison: its values are
// implementation-defined.

#include <cstdint>

namespace marlin::util {

/// splitmix64 finalizer — the project's only hash mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace marlin::util
