#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace marlin {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  MARLIN_CHECK(!header_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  MARLIN_CHECK(cells.size() == header_.size(),
               "row has " << cells.size() << " cells, header has "
                          << header_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

Table& Table::add_row_numeric(const std::string& label,
                              const std::vector<double>& values,
                              int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  return add_row(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(width[c]))
         << (c == 0 ? std::left : std::right) << row[c];
      os << std::right;
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_seconds(double s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3);
  if (s >= 1.0) {
    os << s << " s";
  } else if (s >= 1e-3) {
    os << s * 1e3 << " ms";
  } else if (s >= 1e-6) {
    os << s * 1e6 << " us";
  } else {
    os << s * 1e9 << " ns";
  }
  return os.str();
}

std::string format_bytes(double bytes) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(2);
  constexpr double kKiB = 1024.0, kMiB = kKiB * 1024.0, kGiB = kMiB * 1024.0;
  if (bytes >= kGiB) {
    os << bytes / kGiB << " GiB";
  } else if (bytes >= kMiB) {
    os << bytes / kMiB << " MiB";
  } else if (bytes >= kKiB) {
    os << bytes / kKiB << " KiB";
  } else {
    os << bytes << " B";
  }
  return os.str();
}

}  // namespace marlin
