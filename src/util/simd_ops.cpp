#include "util/simd_ops.hpp"

#include <algorithm>
#include <cmath>

#include "util/half.hpp"

namespace marlin::simd {

namespace detail {

// The 64207531 interleave of quant/pack.hpp: nibble_of_logical[i] is the
// nibble (0 = least significant) storing logical weight i. Duplicated here
// (util must not depend on quant); pinned against quant/pack.hpp by
// tests/test_simd_dispatch.cpp.
constexpr int kNibbleOfLogical[8] = {4, 0, 5, 1, 6, 2, 7, 3};

namespace {

void axpy_f32_scalar(std::size_t n, float a, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

void add_f32_scalar(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void mul_f32_scalar(std::size_t n, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void axpy_f32_f64_scalar(std::size_t n, double a, const float* x, double* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * static_cast<double>(x[i]);
}

float max_abs_f32_scalar(std::size_t n, const float* x) {
  float maxabs = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    maxabs = std::max(maxabs, std::abs(x[i]));
  }
  return maxabs;
}

void f16_to_f32_scalar(std::size_t n, const std::uint16_t* h, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = half_bits_to_float(h[i]);
}

void f32_to_f16_scalar(std::size_t n, const float* f, std::uint16_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = float_to_half_bits(f[i]);
}

void f16_accum_f32_scalar(std::size_t n, const float* v, std::uint16_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = float_to_half_bits(half_bits_to_float(out[i]) + v[i]);
  }
}

template <bool kInterleaved>
bool pack_u4_scalar(std::size_t groups, const std::uint8_t* codes,
                    std::uint32_t* out) {
  for (std::size_t g = 0; g < groups; ++g) {
    const std::uint8_t* c = codes + g * 8;
    std::uint32_t reg = 0;
    for (int i = 0; i < 8; ++i) {
      if (c[i] >= 16) return false;
      const int nibble = kInterleaved ? kNibbleOfLogical[i] : i;
      reg |= static_cast<std::uint32_t>(c[i]) << (4 * nibble);
    }
    out[g] = reg;
  }
  return true;
}

void unpack_u4_linear_scalar(std::size_t nregs, const std::uint32_t* packed,
                             std::uint8_t* out) {
  for (std::size_t r = 0; r < nregs; ++r) {
    const std::uint32_t reg = packed[r];
    for (int j = 0; j < 8; ++j) {
      out[r * 8 + static_cast<std::size_t>(j)] =
          static_cast<std::uint8_t>((reg >> (4 * j)) & 0xfu);
    }
  }
}

void dequant_u4_planes_scalar(std::size_t nregs, const std::uint32_t* regs,
                              float* out) {
  for (int p = 0; p < 8; ++p) {
    float* plane = out + static_cast<std::size_t>(p) * nregs;
    for (std::size_t i = 0; i < nregs; ++i) {
      plane[i] =
          static_cast<float>((regs[i] >> (4 * p)) & 0xfu) - 8.0f;
    }
  }
}

void encode_symmetric_scalar(std::size_t n, const float* v, float scale,
                             int bits, std::uint8_t* out) {
  // Mirrors quant::encode_symmetric exactly (pinned by tests).
  const int zero = 1 << (bits - 1);
  const int lo = -zero, hi = zero - 1;
  for (std::size_t i = 0; i < n; ++i) {
    const int code = std::clamp(
        static_cast<int>(std::nearbyint(v[i] / scale)), lo, hi);
    out[i] = static_cast<std::uint8_t>(code + zero);
  }
}

void quantize_asym_scalar(std::size_t n, const float* v, float scale,
                          float zero, int qmax, int* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const int code =
        static_cast<int>(std::nearbyint((v[i] - zero) / scale));
    out[i] = std::clamp(code, 0, qmax);
  }
}

void dequant_asym_scalar(std::size_t n, const int* q, float scale, float zero,
                         float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(q[i]) * scale + zero;
  }
}

Ops make_scalar_table() {
  Ops t;
  t.level = Level::kScalar;
  t.axpy_f32 = axpy_f32_scalar;
  t.add_f32 = add_f32_scalar;
  t.mul_f32 = mul_f32_scalar;
  t.axpy_f32_f64 = axpy_f32_f64_scalar;
  t.max_abs_f32 = max_abs_f32_scalar;
  t.f16_to_f32 = f16_to_f32_scalar;
  t.f32_to_f16 = f32_to_f16_scalar;
  t.f16_accum_f32 = f16_accum_f32_scalar;
  t.pack_u4_interleaved = pack_u4_scalar<true>;
  t.pack_u4_linear = pack_u4_scalar<false>;
  t.unpack_u4_linear = unpack_u4_linear_scalar;
  t.dequant_u4_planes = dequant_u4_planes_scalar;
  t.encode_symmetric = encode_symmetric_scalar;
  t.quantize_asym = quantize_asym_scalar;
  t.dequant_asym = dequant_asym_scalar;
  return t;
}

}  // namespace

// Implemented by the per-ISA translation units (absent entries keep the
// inherited implementation).
#if defined(MARLIN_HAVE_AVX2_TU)
void apply_avx2_overrides(Ops& t);
#endif
#if defined(MARLIN_HAVE_AVX512_TU)
void apply_avx512_overrides(Ops& t);
#endif

}  // namespace detail

const Ops& ops_for(Level level) {
  static const Ops scalar = detail::make_scalar_table();
#if defined(MARLIN_HAVE_AVX2_TU)
  static const Ops avx2 = [] {
    Ops t = scalar;
    t.level = Level::kAvx2;
    detail::apply_avx2_overrides(t);
    return t;
  }();
#endif
#if defined(MARLIN_HAVE_AVX512_TU)
  static const Ops avx512 = [] {
#if defined(MARLIN_HAVE_AVX2_TU)
    Ops t = avx2;
#else
    Ops t = scalar;
#endif
    t.level = Level::kAvx512;
    detail::apply_avx512_overrides(t);
    return t;
  }();
#endif
  switch (level) {
    case Level::kAvx512:
#if defined(MARLIN_HAVE_AVX512_TU)
      return avx512;
#endif
      [[fallthrough]];
    case Level::kAvx2:
#if defined(MARLIN_HAVE_AVX2_TU)
      return avx2;
#endif
      [[fallthrough]];
    case Level::kScalar:
      break;
  }
  return scalar;
}

const Ops& ops() { return ops_for(active_level()); }

}  // namespace marlin::simd
