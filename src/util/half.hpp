#pragma once
// Software IEEE 754 binary16 ("half") type.
//
// MARLIN's dequantisation trick (paper §3.4, "Dequantization and Tensor
// Cores") manipulates the *bit patterns* of FP16 values: it splices INT4
// payloads into the mantissa of a half with exponent 50 (bits 0110010) and
// subtracts a magic constant. Reproducing that bit-for-bit requires a half
// type with exact IEEE semantics, including round-to-nearest-even on
// conversion from float, subnormals, and +/-inf. GPU tensor cores accumulate
// in FP32, which we mirror by performing all Half arithmetic through float.

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <type_traits>

namespace marlin {

/// Convert an IEEE binary32 value to binary16 bits with round-to-nearest-even.
std::uint16_t float_to_half_bits(float f) noexcept;

/// Convert IEEE binary16 bits to the exactly-representable binary32 value.
float half_bits_to_float(std::uint16_t h) noexcept;

/// IEEE 754 binary16 value type. Trivially copyable, 2 bytes, no padding.
class Half {
 public:
  constexpr Half() noexcept : bits_(0) {}
  explicit Half(float f) noexcept : bits_(float_to_half_bits(f)) {}
  explicit Half(double d) noexcept : Half(static_cast<float>(d)) {}
  explicit Half(int v) noexcept : Half(static_cast<float>(v)) {}

  /// Reinterpret raw binary16 bits as a Half (no conversion).
  static constexpr Half from_bits(std::uint16_t b) noexcept {
    Half h;
    h.bits_ = b;
    return h;
  }

  [[nodiscard]] constexpr std::uint16_t bits() const noexcept { return bits_; }
  [[nodiscard]] float to_float() const noexcept {
    return half_bits_to_float(bits_);
  }
  explicit operator float() const noexcept { return to_float(); }

  [[nodiscard]] constexpr bool is_negative() const noexcept {
    return (bits_ & 0x8000u) != 0;
  }
  [[nodiscard]] constexpr bool is_inf() const noexcept {
    return (bits_ & 0x7fffu) == 0x7c00u;
  }
  [[nodiscard]] constexpr bool is_nan() const noexcept {
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x03ffu) != 0;
  }

  friend Half operator+(Half a, Half b) noexcept {
    return Half(a.to_float() + b.to_float());
  }
  friend Half operator-(Half a, Half b) noexcept {
    return Half(a.to_float() - b.to_float());
  }
  friend Half operator*(Half a, Half b) noexcept {
    return Half(a.to_float() * b.to_float());
  }
  friend Half operator/(Half a, Half b) noexcept {
    return Half(a.to_float() / b.to_float());
  }
  friend Half operator-(Half a) noexcept {
    return Half::from_bits(static_cast<std::uint16_t>(a.bits_ ^ 0x8000u));
  }
  Half& operator+=(Half o) noexcept { return *this = *this + o; }
  Half& operator-=(Half o) noexcept { return *this = *this - o; }
  Half& operator*=(Half o) noexcept { return *this = *this * o; }

  friend bool operator==(Half a, Half b) noexcept {
    return a.to_float() == b.to_float();  // IEEE: -0 == +0, NaN != NaN
  }
  friend bool operator<(Half a, Half b) noexcept {
    return a.to_float() < b.to_float();
  }
  friend bool operator<=(Half a, Half b) noexcept {
    return a.to_float() <= b.to_float();
  }
  friend bool operator>(Half a, Half b) noexcept { return b < a; }
  friend bool operator>=(Half a, Half b) noexcept { return b <= a; }

 private:
  std::uint16_t bits_;
};

static_assert(sizeof(Half) == 2);
static_assert(std::is_standard_layout_v<Half>);

/// View a contiguous run of Half values as their raw binary16 bits (Half is
/// standard-layout around a single uint16_t), for the bulk converters below.
inline std::uint16_t* half_bits_ptr(Half* h) noexcept {
  return reinterpret_cast<std::uint16_t*>(h);
}
inline const std::uint16_t* half_bits_ptr(const Half* h) noexcept {
  return reinterpret_cast<const std::uint16_t*>(h);
}

/// Bulk conversions dispatched through the active SIMD level
/// (util/simd_ops.hpp); bit-identical to calling half_bits_to_float /
/// float_to_half_bits per element. Not noexcept: resolving the SIMD level
/// can throw on an invalid MARLIN_SIMD setting.
void halves_to_floats(std::size_t n, const Half* h, float* out);
void floats_to_halves(std::size_t n, const float* f, Half* out);

std::ostream& operator<<(std::ostream& os, Half h);

}  // namespace marlin
