#pragma once
// Column-aligned table printer used by every benchmark binary to emit the
// rows/series of the corresponding paper table or figure, plus a minimal CSV
// writer for machine-readable output.

#include <iosfwd>
#include <string>
#include <vector>

namespace marlin {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  Table& add_row_numeric(const std::string& label,
                         const std::vector<double>& values, int precision = 2);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers.
std::string format_double(double v, int precision);
std::string format_seconds(double s);   // "1.234 ms", "12.3 us", ...
std::string format_bytes(double bytes); // "1.50 GiB", ...

}  // namespace marlin
