#pragma once
// Minimal command-line flag parser for the examples and bench binaries.
// Supports `--name=value`, `--name value`, and bare `--flag` booleans.

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace marlin {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::unordered_map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace marlin
