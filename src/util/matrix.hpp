#pragma once
// Row-major owning matrix plus a lightweight strided, non-owning view.
//
// The library passes matrices across module boundaries as views (pointer,
// rows, cols, row stride) so that tiles, shards and sub-batches are zero-copy.

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace marlin {

using index_t = std::int64_t;

template <typename T>
class MatrixView;
template <typename T>
class ConstMatrixView;

/// Owning row-major matrix.
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(static_cast<std::size_t>(rows * cols), fill) {
    MARLIN_CHECK(rows >= 0 && cols >= 0, "matrix dims must be non-negative");
  }

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t size() const noexcept { return rows_ * cols_; }

  T& operator()(index_t i, index_t j) noexcept {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }
  const T& operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(i * cols_ + j)];
  }

  [[nodiscard]] T* data() noexcept { return data_.data(); }
  [[nodiscard]] const T* data() const noexcept { return data_.data(); }
  [[nodiscard]] std::span<T> row(index_t i) noexcept {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const T> row(index_t i) const noexcept {
    return {data_.data() + i * cols_, static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<T> flat() noexcept { return {data_}; }
  [[nodiscard]] std::span<const T> flat() const noexcept { return {data_}; }

  [[nodiscard]] MatrixView<T> view() noexcept;
  [[nodiscard]] ConstMatrixView<T> view() const noexcept;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<T> data_;
};

/// Mutable strided view over external storage.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, index_t rows, index_t cols, index_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t stride() const noexcept { return stride_; }
  [[nodiscard]] T* data() const noexcept { return data_; }

  T& operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(i * stride_ + j)];
  }

  /// Sub-block [r0, r0+nr) x [c0, c0+nc); bounds-checked.
  [[nodiscard]] MatrixView block(index_t r0, index_t c0, index_t nr,
                                 index_t nc) const {
    MARLIN_CHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_,
                 "block out of range");
    return {data_ + r0 * stride_ + c0, nr, nc, stride_};
  }

 private:
  T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, stride_ = 0;
};

/// Read-only strided view.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, index_t rows, index_t cols, index_t stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {}
  // Implicit widening from the mutable view is safe and convenient.
  ConstMatrixView(MatrixView<T> v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()), stride_(v.stride()) {}

  [[nodiscard]] index_t rows() const noexcept { return rows_; }
  [[nodiscard]] index_t cols() const noexcept { return cols_; }
  [[nodiscard]] index_t stride() const noexcept { return stride_; }
  [[nodiscard]] const T* data() const noexcept { return data_; }

  const T& operator()(index_t i, index_t j) const noexcept {
    return data_[static_cast<std::size_t>(i * stride_ + j)];
  }

  [[nodiscard]] ConstMatrixView block(index_t r0, index_t c0, index_t nr,
                                      index_t nc) const {
    MARLIN_CHECK(r0 >= 0 && c0 >= 0 && r0 + nr <= rows_ && c0 + nc <= cols_,
                 "block out of range");
    return {data_ + r0 * stride_ + c0, nr, nc, stride_};
  }

 private:
  const T* data_ = nullptr;
  index_t rows_ = 0, cols_ = 0, stride_ = 0;
};

template <typename T>
MatrixView<T> Matrix<T>::view() noexcept {
  return {data_.data(), rows_, cols_, cols_};
}
template <typename T>
ConstMatrixView<T> Matrix<T>::view() const noexcept {
  return {data_.data(), rows_, cols_, cols_};
}

}  // namespace marlin
