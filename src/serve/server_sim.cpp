#include "serve/server_sim.hpp"

#include <algorithm>
#include <optional>

#include "serve/parallel/interconnect.hpp"
#include "serve/parallel/parallel_engine.hpp"
#include "util/error.hpp"

namespace marlin::serve {

cluster::ClusterStats simulate_cluster_detailed(const Engine& engine,
                                                const ServingConfig& cfg,
                                                const SimContext& ctx) {
  sched::WorkloadConfig w;
  w.shape = cfg.shape;
  w.qps = cfg.qps;
  w.duration_s = cfg.duration_s;
  w.input_tokens = cfg.input_tokens;
  w.output_tokens = cfg.output_tokens;
  w.seed = cfg.seed;
  w.shared_prefix_tokens = cfg.shared_prefix_tokens;
  w.shared_prefix_groups = cfg.shared_prefix_groups;
  w.shared_prefix_share = cfg.shared_prefix_share;
  w.sampling_n = cfg.sampling_n;

  // Tenant mix: `tenant_shares[i]` is tenant id i's share, so scatter the
  // specs' traffic shares by id (ids need not be dense).
  if (!cfg.tenants.empty()) {
    index_t max_id = 0;
    for (const auto& t : cfg.tenants) {
      t.validate();
      MARLIN_CHECK(t.id < 4096, "tenant id " << t.id << " unreasonably large");
      max_id = std::max(max_id, t.id);
    }
    w.tenant_shares.assign(static_cast<std::size_t>(max_id) + 1, 0.0);
    for (const auto& t : cfg.tenants) {
      w.tenant_shares[static_cast<std::size_t>(t.id)] = t.traffic_share;
    }
  }

  // Validate unconditionally: a malformed microbatch count must not be
  // masked just because tp/pp happen to be 1 (the trivial path below
  // never reaches the ParallelEngine ctor that would catch it).
  cfg.parallel.validate();

  // Non-trivial parallel configs price steps through the per-rank worker
  // model; the trivial default stays on the engine itself so the legacy
  // goldens path is untouched (same objects, same calls, same bits).
  std::optional<parallel::ParallelEngine> sharded;
  if (!cfg.parallel.trivial()) sharded.emplace(engine, cfg.parallel);
  const StepModel& model =
      sharded ? static_cast<const StepModel&>(*sharded) : engine;

  index_t kv_blocks = cfg.kv_blocks;
  if (kv_blocks < 0) {
    kv_blocks = sharded
                    ? sharded->min_kv_block_budget(cfg.kv_block_size)
                    : sched::derive_kv_block_budget(engine, cfg.kv_block_size);
  }

  sched::SchedulerConfig sc;
  sc.policy = cfg.policy;
  sc.max_batch = cfg.max_batch;
  sc.prefill_chunk_tokens = cfg.prefill_chunk_tokens;
  sc.blocks.block_size = cfg.kv_block_size;
  sc.blocks.num_blocks = kv_blocks;
  cfg.prefix_cache.validate();
  sc.blocks.prefix_cache = cfg.prefix_cache;
  sc.tenants = cfg.tenants;
  sc.speculation = cfg.speculation;
  sc.slo = cfg.slo;

  // The draft engine shares the target's device, format and clocks — only
  // the model differs (TinyLlama-1.1B unless configured). It stays on a
  // single device even when the target verifies across a rank grid.
  std::optional<Engine> draft;
  if (cfg.speculation.enabled()) {
    EngineConfig dcfg = engine.config();
    dcfg.model =
        cfg.draft_model.name.empty() ? tinyllama_1_1b() : cfg.draft_model;
    dcfg.num_gpus = 1;
    draft.emplace(dcfg);
  }

  // Disaggregated pools: price unset transfer-link fields from the engine
  // (KV footprint per token) and the device's interconnect, so callers
  // only opt in to the pool shape and get physical pricing for free. An
  // explicit non-zero value always wins.
  cluster::ClusterOptions copts = cfg.cluster;
  if (copts.disagg.enabled) {
    if (copts.disagg.kv_bytes_per_token <= 0) {
      copts.disagg.kv_bytes_per_token = engine.kv_bytes_per_token();
    }
    if (copts.disagg.link_bytes_per_s <= 0 &&
        copts.disagg.link_latency_s <= 0) {
      const parallel::Interconnect link =
          parallel::Interconnect::of(engine.config().gpu);
      copts.disagg.link_bytes_per_s = link.bytes_per_s;
      copts.disagg.link_latency_s = link.latency_s;
    }
  }

  const sched::Scheduler scheduler(model, sc, draft ? &*draft : nullptr);
  return cluster::EventLoop(scheduler, copts)
      .run(sched::generate_trace(w), ctx, cfg.recorder);
}

sched::SchedStats simulate_serving_detailed(const Engine& engine,
                                            const ServingConfig& cfg,
                                            const SimContext& ctx) {
  return std::move(simulate_cluster_detailed(engine, cfg, ctx).sched);
}

ServingMetrics simulate_serving(const Engine& engine,
                                const ServingConfig& cfg) {
  return simulate_serving_detailed(engine, cfg).metrics;
}

}  // namespace marlin::serve
