#include "serve/server_sim.hpp"

namespace marlin::serve {

sched::SchedStats simulate_serving_detailed(const Engine& engine,
                                            const ServingConfig& cfg,
                                            const SimContext& ctx) {
  sched::WorkloadConfig w;
  w.shape = cfg.shape;
  w.qps = cfg.qps;
  w.duration_s = cfg.duration_s;
  w.input_tokens = cfg.input_tokens;
  w.output_tokens = cfg.output_tokens;
  w.seed = cfg.seed;

  sched::SchedulerConfig sc;
  sc.policy = cfg.policy;
  sc.max_batch = cfg.max_batch;
  sc.prefill_chunk_tokens = cfg.prefill_chunk_tokens;
  sc.blocks.block_size = cfg.kv_block_size;
  sc.blocks.num_blocks = cfg.kv_blocks;

  const sched::Scheduler scheduler(engine, sc);
  return scheduler.run(sched::generate_trace(w), ctx);
}

ServingMetrics simulate_serving(const Engine& engine,
                                const ServingConfig& cfg) {
  return simulate_serving_detailed(engine, cfg).metrics;
}

}  // namespace marlin::serve
