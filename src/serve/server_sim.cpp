#include "serve/server_sim.hpp"

#include <optional>

#include "serve/parallel/parallel_engine.hpp"

namespace marlin::serve {

sched::SchedStats simulate_serving_detailed(const Engine& engine,
                                            const ServingConfig& cfg,
                                            const SimContext& ctx) {
  sched::WorkloadConfig w;
  w.shape = cfg.shape;
  w.qps = cfg.qps;
  w.duration_s = cfg.duration_s;
  w.input_tokens = cfg.input_tokens;
  w.output_tokens = cfg.output_tokens;
  w.seed = cfg.seed;

  // Validate unconditionally: a malformed microbatch count must not be
  // masked just because tp/pp happen to be 1 (the trivial path below
  // never reaches the ParallelEngine ctor that would catch it).
  cfg.parallel.validate();

  // Non-trivial parallel configs price steps through the per-rank worker
  // model; the trivial default stays on the engine itself so the legacy
  // goldens path is untouched (same objects, same calls, same bits).
  std::optional<parallel::ParallelEngine> sharded;
  if (!cfg.parallel.trivial()) sharded.emplace(engine, cfg.parallel);
  const StepModel& model =
      sharded ? static_cast<const StepModel&>(*sharded) : engine;

  index_t kv_blocks = cfg.kv_blocks;
  if (kv_blocks < 0) {
    kv_blocks = sharded
                    ? sharded->min_kv_block_budget(cfg.kv_block_size)
                    : sched::derive_kv_block_budget(engine, cfg.kv_block_size);
  }

  sched::SchedulerConfig sc;
  sc.policy = cfg.policy;
  sc.max_batch = cfg.max_batch;
  sc.prefill_chunk_tokens = cfg.prefill_chunk_tokens;
  sc.blocks.block_size = cfg.kv_block_size;
  sc.blocks.num_blocks = kv_blocks;

  const sched::Scheduler scheduler(model, sc);
  return scheduler.run(sched::generate_trace(w), ctx);
}

ServingMetrics simulate_serving(const Engine& engine,
                                const ServingConfig& cfg) {
  return simulate_serving_detailed(engine, cfg).metrics;
}

}  // namespace marlin::serve
