#include "serve/server_sim.hpp"

#include <algorithm>
#include <deque>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace marlin::serve {

namespace {

struct Request {
  double arrival_s = 0;
  double first_token_s = -1;
  index_t generated = 0;
  double finish_s = -1;
};

}  // namespace

ServingMetrics simulate_serving(const Engine& engine,
                                const ServingConfig& cfg) {
  MARLIN_CHECK(cfg.qps > 0, "QPS must be positive");
  Rng rng(cfg.seed);

  // Pre-draw the arrival process.
  std::vector<Request> requests;
  double t = 0.0;
  while (t < cfg.duration_s) {
    t += rng.exponential(cfg.qps);
    if (t >= cfg.duration_s) break;
    Request r;
    r.arrival_s = t;
    requests.push_back(r);
  }

  std::deque<std::size_t> waiting;
  std::vector<std::size_t> running;
  std::size_t next_arrival = 0;

  double now = 0.0;
  double batch_weighted = 0.0;
  double decode_time_total = 0.0;

  auto admit_arrivals = [&](double upto) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_s <= upto) {
      waiting.push_back(next_arrival);
      ++next_arrival;
    }
  };

  while (next_arrival < requests.size() || !waiting.empty() ||
         !running.empty()) {
    admit_arrivals(now);

    if (waiting.empty() && running.empty()) {
      // Idle: jump to the next arrival.
      now = requests[next_arrival].arrival_s;
      admit_arrivals(now);
    }

    // Admit and prefill new requests as one batch (chunked to capacity).
    if (!waiting.empty() &&
        running.size() < static_cast<std::size_t>(cfg.max_batch)) {
      std::vector<std::size_t> admitted;
      while (!waiting.empty() &&
             running.size() + admitted.size() <
                 static_cast<std::size_t>(cfg.max_batch)) {
        admitted.push_back(waiting.front());
        waiting.pop_front();
      }
      const double t_prefill = engine.prefill_seconds(
          static_cast<index_t>(admitted.size()), cfg.input_tokens);
      now += t_prefill;
      for (const std::size_t id : admitted) {
        requests[id].first_token_s = now;  // prefill emits token 1
        requests[id].generated = 1;
        running.push_back(id);
      }
      continue;  // re-check arrivals before the next decode step
    }

    if (running.empty()) continue;

    // One decode step for all running sequences.
    double ctx_sum = 0.0;
    for (const std::size_t id : running) {
      ctx_sum += static_cast<double>(cfg.input_tokens) +
                 static_cast<double>(requests[id].generated);
    }
    const index_t batch = static_cast<index_t>(running.size());
    const double t_step = engine.decode_step_seconds(
        batch, ctx_sum / static_cast<double>(batch));
    now += t_step;
    batch_weighted += static_cast<double>(batch) * t_step;
    decode_time_total += t_step;

    std::vector<std::size_t> still_running;
    for (const std::size_t id : running) {
      ++requests[id].generated;
      if (requests[id].generated >= cfg.output_tokens) {
        requests[id].finish_s = now;
      } else {
        still_running.push_back(id);
      }
    }
    running = std::move(still_running);
  }

  ServingMetrics m;
  std::vector<double> tpots, ttfts;
  for (const Request& r : requests) {
    if (r.finish_s < 0) continue;
    ++m.completed;
    ttfts.push_back((r.first_token_s - r.arrival_s) * 1e3);
    tpots.push_back((r.finish_s - r.first_token_s) /
                    static_cast<double>(cfg.output_tokens - 1) * 1e3);
  }
  if (!tpots.empty()) {
    m.mean_tpot_ms = mean(tpots);
    m.mean_ttft_ms = mean(ttfts);
    m.p90_tpot_ms = percentile(tpots, 90.0);
    m.p90_ttft_ms = percentile(ttfts, 90.0);
  }
  m.mean_batch =
      decode_time_total > 0 ? batch_weighted / decode_time_total : 0.0;
  return m;
}

}  // namespace marlin::serve
