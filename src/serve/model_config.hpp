#pragma once
// Transformer model catalog for the end-to-end experiments (paper §5.2):
// Llama-2 7B/13B/70B, Llama-1 33B/65B, Yi-34B, Falcon-180B. Shapes are the
// public architecture parameters; they determine every linear-layer matmul
// the serving engine prices.

#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace marlin::serve {

struct ModelConfig {
  std::string name;
  index_t hidden = 0;
  index_t intermediate = 0;  // MLP inner dim
  index_t num_layers = 0;
  index_t num_heads = 0;
  index_t num_kv_heads = 0;  // < num_heads => grouped-query attention
  index_t head_dim = 0;
  index_t vocab = 32000;
  bool gated_mlp = true;  // SwiGLU (gate+up+down); Falcon uses plain 4h MLP

  /// Total parameter count of the transformer blocks + embeddings.
  [[nodiscard]] double num_params() const;
  /// Parameter count of ONE transformer block's linear layers — the unit
  /// the pipeline-parallel worker model shards by layer range.
  [[nodiscard]] double params_per_block() const;
  /// Parameter count of the input-embedding table (the LM head is the
  /// same shape); both stay FP16 in every serving configuration.
  [[nodiscard]] double embedding_params() const {
    return static_cast<double>(hidden) * static_cast<double>(vocab);
  }
  /// FP16 weight bytes.
  [[nodiscard]] double fp16_bytes() const { return num_params() * 2.0; }
};

/// One linear layer of a transformer block: K = input dim, N = output dim.
struct LayerShape {
  std::string name;
  index_t k = 0;
  index_t n = 0;
};

/// The linear layers of ONE transformer block (fused QKV, attention output,
/// fused gate+up / MLP up, MLP down).
std::vector<LayerShape> block_linear_layers(const ModelConfig& m);

ModelConfig llama2_7b();
ModelConfig llama2_13b();
ModelConfig llama2_70b();
ModelConfig llama1_33b();
ModelConfig llama1_65b();
ModelConfig yi_34b();
ModelConfig falcon_180b();
/// Small Llama-architecture model — the default speculative-decoding
/// draft for the Llama-2 family (shared 32k vocabulary).
ModelConfig tinyllama_1_1b();

ModelConfig model_by_name(const std::string& name);
std::vector<ModelConfig> all_models();

}  // namespace marlin::serve
