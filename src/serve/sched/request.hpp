#pragma once
// Request lifecycle for the serving scheduler.
//
// A request moves through an explicit state machine:
//
//   kQueued ──admit──► kPrefilling ──prefill done──► kRunning ──► kFinished
//      ▲                                               │
//      └───────────────── kPreempted ◄──preempt────────┘
//
// Preemption is recompute-style (vLLM's default): the victim's KV blocks
// are freed and, on re-admission, prefill covers the prompt *plus* every
// token generated so far. TTFT is unaffected (the first token was already
// emitted); TPOT absorbs the recompute cost. When the prefix cache is on,
// a preempted request's published prompt blocks usually survive in the
// cache, so the recompute prefill re-hits them instead of re-pricing the
// whole prompt.
//
// Requests may carry a shared-prefix tag (`prefix_id`/`prefix_tokens`):
// the first `prefix_tokens` prompt tokens are byte-identical across every
// request with the same tag (a shared system prompt or few-shot header).
// `append_prefix_chain` turns the tag into the chained per-block content
// hashes the BlockManager's prefix cache is keyed by.
//
// `num_sequences` > 1 models parallel sampling (n>1): one prompt, n
// decoded continuations. The prompt KV is shared via copy-on-write forks
// (`Request::forks` holds the extra sequences' handles); every sequence
// decodes in lockstep to the same output length.
//
// Every transition is validated — an illegal edge throws, so scheduler
// bugs surface as errors instead of silently corrupted metrics.

#include <cstdint>
#include <vector>

#include "serve/sched/sequence_blocks.hpp"
#include "util/matrix.hpp"

namespace marlin::serve::sched {

enum class RequestState { kQueued, kPrefilling, kRunning, kPreempted,
                          kFinished };

const char* to_string(RequestState s);

/// Is `from -> to` a legal lifecycle edge?
bool transition_allowed(RequestState from, RequestState to);

/// Seed of every chained prefix hash (`h_-1`) — fractional digits of pi,
/// pinned forever so cached-chain keys never drift across versions.
inline constexpr std::uint64_t kPrefixHashSeed = 0x243F6A8885A308D3ull;
/// Salt mixed with `prefix_id` to derive per-block content keys.
inline constexpr std::uint64_t kPrefixKeySalt = 0x452821E638D01377ull;

/// One client request: a prompt plus `num_sequences` sampled
/// continuations (1 = classic single-sequence decoding).
struct Request {
  Request(index_t id, double arrival_s, index_t prompt_tokens,
          index_t output_tokens, index_t tenant_id = 0);

  index_t id = 0;
  double arrival_s = 0;
  index_t prompt_tokens = 0;
  index_t output_tokens = 0;  // total output target incl. the prefill token
  /// Owning tenant (traffic class); 0 is the default single tenant.
  index_t tenant_id = 0;
  /// Shared-prefix tag: requests with the same non-negative id share
  /// their first `prefix_tokens` prompt tokens byte-for-byte. -1 = no
  /// shared prefix (nothing to cache).
  index_t prefix_id = -1;
  /// Length of the shared prefix in tokens (<= prompt_tokens).
  index_t prefix_tokens = 0;
  /// Parallel-sampling width (n>1 shares the prompt KV via CoW forks).
  index_t num_sequences = 1;

  RequestState state = RequestState::kQueued;
  /// Output tokens emitted so far (the prefill emits token 1).
  index_t generated = 0;
  /// Tokens prefilled in the current admission (chunked prefill cursor).
  index_t prefilled = 0;
  /// KV blocks of the primary sequence (ref-counted BlockManager handle).
  SequenceBlocks blocks;
  /// Extra sequences' handles (n>1 sampling), forked from `blocks` when
  /// prefill completes; empty until then and for n=1.
  std::vector<SequenceBlocks> forks;

  double first_token_s = -1;
  double finish_s = -1;
  index_t preemptions = 0;
  /// Speculative-decoding fractional-token accumulator: expected accepted
  /// tokens not yet committed (see Scheduler's speculation docs).
  double spec_credit = 0;
  /// True when the request could never fit in the KV budget and was
  /// refused outright (state kFinished, no tokens produced).
  bool rejected = false;
  /// True when the request was shed by deadline-aware admission: its
  /// TTFT SLO was already hopeless before it ever prefilled (state
  /// kFinished, no tokens produced).
  bool shed = false;
  /// Replica the cluster router placed the request on; -1 until routed
  /// (single-replica runs route everything to replica 0). A migration
  /// re-stamps this to the destination when the KV handoff completes.
  index_t replica = -1;
  /// Prefill -> decode handoffs under disaggregated pools (0 or 1 — a
  /// request migrates at most once).
  index_t migrations = 0;
  /// Set once the disaggregated EventLoop has decided this request's
  /// placement at prefill completion (migrate or decode in place), so a
  /// later pass — or a post-preemption re-prefill — never re-decides.
  /// Never read outside disaggregated runs.
  bool migration_decided = false;

  /// Validated state transition; throws on an illegal edge.
  void set_state(RequestState next);

  /// Tokens the next prefill must cover: the prompt plus, after a
  /// preemption, every already-generated token (recompute).
  [[nodiscard]] index_t prefill_target() const {
    return prompt_tokens + generated;
  }
  /// Tokens of KV one sequence holds at completion. The final output
  /// token is emitted without growing the cache (its KV is never
  /// written), hence the -1.
  [[nodiscard]] index_t max_kv_tokens() const {
    return prompt_tokens + output_tokens - 1;
  }
  /// Peak *physical* blocks across all sequences: full prompt blocks are
  /// shared once, everything past them is per-sequence (CoW divergence).
  /// Equals ceil(max_kv_tokens / block_size) for n=1 — the admission
  /// never-fits rule.
  [[nodiscard]] index_t max_kv_blocks(index_t block_size) const;
  /// Full prompt blocks inside the shared prefix — what the prefix cache
  /// can key (0 without a prefix tag).
  [[nodiscard]] index_t hashable_prefix_blocks(index_t block_size) const;
  /// Rebuilds `out` with the chained content hashes of the first
  /// min(hashable, max_blocks) prompt blocks: h_j = mix64(h_{j-1} ^
  /// key_j) with key_j = mix64(mix64(kPrefixKeySalt ^ prefix_id) + j).
  /// Deterministic and platform-pinned (util/hash.hpp).
  void append_prefix_chain(index_t block_size, index_t max_blocks,
                           std::vector<std::uint64_t>& out) const;
  [[nodiscard]] bool finished() const {
    return state == RequestState::kFinished;
  }
};

}  // namespace marlin::serve::sched
