#pragma once
// Request lifecycle for the serving scheduler.
//
// A request moves through an explicit state machine:
//
//   kQueued ──admit──► kPrefilling ──prefill done──► kRunning ──► kFinished
//      ▲                                               │
//      └───────────────── kPreempted ◄──preempt────────┘
//
// Preemption is recompute-style (vLLM's default): the victim's KV blocks
// are freed and, on re-admission, prefill covers the prompt *plus* every
// token generated so far. TTFT is unaffected (the first token was already
// emitted); TPOT absorbs the recompute cost.
//
// Every transition is validated — an illegal edge throws, so scheduler
// bugs surface as errors instead of silently corrupted metrics.

#include <vector>

#include "util/matrix.hpp"

namespace marlin::serve::sched {

enum class RequestState { kQueued, kPrefilling, kRunning, kPreempted,
                          kFinished };

const char* to_string(RequestState s);

/// Is `from -> to` a legal lifecycle edge?
bool transition_allowed(RequestState from, RequestState to);

/// One client request (single sequence — no beam / parallel sampling yet).
struct Request {
  Request(index_t id, double arrival_s, index_t prompt_tokens,
          index_t output_tokens, index_t tenant_id = 0);

  index_t id = 0;
  double arrival_s = 0;
  index_t prompt_tokens = 0;
  index_t output_tokens = 0;  // total output target incl. the prefill token
  /// Owning tenant (traffic class); 0 is the default single tenant.
  index_t tenant_id = 0;

  RequestState state = RequestState::kQueued;
  /// Output tokens emitted so far (the prefill emits token 1).
  index_t generated = 0;
  /// Tokens prefilled in the current admission (chunked prefill cursor).
  index_t prefilled = 0;
  /// KV-cache block ids currently held (owned by the BlockManager).
  std::vector<index_t> blocks;

  double first_token_s = -1;
  double finish_s = -1;
  index_t preemptions = 0;
  /// Speculative-decoding fractional-token accumulator: expected accepted
  /// tokens not yet committed (see Scheduler's speculation docs).
  double spec_credit = 0;
  /// True when the request could never fit in the KV budget and was
  /// refused outright (state kFinished, no tokens produced).
  bool rejected = false;
  /// True when the request was shed by deadline-aware admission: its
  /// TTFT SLO was already hopeless before it ever prefilled (state
  /// kFinished, no tokens produced).
  bool shed = false;
  /// Replica the cluster router placed the request on; -1 until routed
  /// (single-replica runs route everything to replica 0).
  index_t replica = -1;

  /// Validated state transition; throws on an illegal edge.
  void set_state(RequestState next);

  /// Tokens the next prefill must cover: the prompt plus, after a
  /// preemption, every already-generated token (recompute).
  [[nodiscard]] index_t prefill_target() const {
    return prompt_tokens + generated;
  }
  /// Tokens of KV the request holds at completion — its peak footprint.
  /// The final output token is emitted without growing the cache (its KV
  /// is never written), hence the -1.
  [[nodiscard]] index_t max_kv_tokens() const {
    return prompt_tokens + output_tokens - 1;
  }
  [[nodiscard]] bool finished() const {
    return state == RequestState::kFinished;
  }
};

}  // namespace marlin::serve::sched
