#pragma once
// Paged KV-cache accounting (vLLM-style block manager) with ref-counted
// block sharing and a hashed prefix cache.
//
// The KV cache is carved into fixed-size blocks of `block_size` tokens; a
// sequence references ceil(tokens / block_size) blocks through a
// `SequenceBlocks` handle. Every physical block carries a refcount, so
// blocks can be shared: `fork` hands a second sequence references to the
// same blocks (n>1 sampling shares the prompt), and the prefix cache
// serves admission lookups by bumping refcounts instead of allocating.
// `release` decrements; a block leaves circulation only at refcount 0.
//
// Admission applies a watermark rule: a new sequence is admitted only if
// its prefill allocation leaves `watermark` of the budget free, so running
// sequences have headroom to grow before the scheduler must preempt.
// Decode-time growth may dip into the watermark reserve. A budget of 0
// blocks means "unlimited" — allocation never fails, but ids and peak
// usage are still tracked (the pre-subsystem goldens configuration).
//
// Prefix cache: full prompt blocks are keyed by a chained content hash
// h_j = mix64(h_{j-1} ^ key_j) (the pinned splitmix64 mixer from
// util/hash.hpp — never std::hash, whose values are implementation-
// defined). A block's hash is assigned at admission but only *published*
// into the lookup table when its prefill completes — un-computed KV must
// not be hittable. When the last reference to a published block is
// released the block is not freed: it parks in an LRU list ("cached"),
// still counted as free budget, and is reclaimed into the free list on
// allocation pressure — deepest chain positions first — before any
// admission fails. A later identical prefix resurrects it with a
// refcount++ and skips recomputing that prefill chunk.
//
// Copy-on-write: growth declares the token range the sequence will write;
// any referenced block in that range that is shared (or published) is
// copied to a fresh block first, so forked sequences split only at their
// first divergent token.
//
// Multi-tenant quotas are soft (see `tenant.hpp`): a tenant past its
// quota is borrowing, and the scheduler reclaims from the most over-quota
// tenant when the cache runs dry. Charging rule for *shared* blocks: a
// physical block is charged to exactly one tenant at a time — the holder
// of the most recently acquired still-live reference ("last toucher
// pays"); releasing that reference moves the charge back to the previous
// holder. With sharing disabled this degenerates to the classic
// "allocator pays" rule.
//
// The real budget comes from the device: HBM capacity minus resident
// weights minus an activation reserve, divided by the per-token KV bytes
// of the model (see `derive_kv_block_budget`).

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "serve/engine.hpp"
#include "serve/sched/sequence_blocks.hpp"
#include "serve/sched/tenant.hpp"
#include "util/hash.hpp"
#include "util/matrix.hpp"

namespace marlin::serve::sched {

/// Hashed-prefix-cache knobs (disabled by default: the manager then
/// behaves bit-for-bit like the pre-cache allocator).
struct PrefixCacheConfig {
  /// Master switch: hash prompt blocks, serve admission lookups, park
  /// released published blocks in the LRU instead of freeing them.
  bool enabled = false;
  /// Cap on blocks parked in the LRU (0 = bounded only by the budget).
  index_t max_cached_blocks = 0;
  /// Minimum *full* shared-prefix blocks a request must carry before the
  /// cache engages for it — sub-block prefixes cannot be shared.
  index_t min_prefix_blocks = 1;

  /// Throws on out-of-range values.
  void validate() const;
};

struct BlockManagerConfig {
  index_t block_size = 16;  // tokens per KV block
  index_t num_blocks = 0;   // 0 = unlimited
  /// Fraction of the budget that must stay free after an admission.
  double watermark = 0.01;
  /// Soft per-tenant block quotas: `{tenant id, blocks}`. Tenants absent
  /// from the list are unquoted. See the header comment for semantics.
  std::vector<std::pair<index_t, index_t>> tenant_quotas;
  /// Hashed prefix cache (off by default).
  PrefixCacheConfig prefix_cache;
};

class BlockManager {
 public:
  explicit BlockManager(BlockManagerConfig cfg);

  [[nodiscard]] const BlockManagerConfig& config() const { return cfg_; }
  [[nodiscard]] index_t block_size() const { return cfg_.block_size; }
  [[nodiscard]] bool unlimited() const { return cfg_.num_blocks == 0; }
  [[nodiscard]] index_t total_blocks() const { return cfg_.num_blocks; }
  /// Blocks with at least one live reference. Cached (refcount-0 LRU)
  /// blocks do not count — they are reclaimable on demand.
  [[nodiscard]] index_t used_blocks() const { return used_; }
  /// Budget headroom: total minus used. Blocks parked in the prefix
  /// cache's LRU count as free — allocation evicts them transparently.
  [[nodiscard]] index_t free_blocks() const;
  [[nodiscard]] index_t watermark_blocks() const { return watermark_blocks_; }
  /// High-water mark of blocks simultaneously referenced.
  [[nodiscard]] index_t peak_used_blocks() const { return peak_used_; }

  // Cumulative traffic counters for the observability layer (plain
  // increments on the allocation paths — recording off or on, they cost
  // the same and allocate nothing).

  /// Total physical blocks handed out (fresh allocations and CoW copies;
  /// prefix-cache hits are counted in `prefix_cache_hit_blocks` instead).
  [[nodiscard]] index_t blocks_allocated_total() const {
    return allocated_total_;
  }
  /// Total physical blocks whose refcount dropped to zero (returned to
  /// the free list or parked in the prefix cache).
  [[nodiscard]] index_t blocks_freed_total() const { return freed_total_; }
  /// `grow_to` calls the budget refused — the scheduler preempts on each.
  [[nodiscard]] index_t grow_failures() const { return grow_failures_; }

  // Prefix-cache / sharing counters.

  /// Admission-time block lookups against the prefix table.
  [[nodiscard]] index_t prefix_cache_lookup_blocks() const {
    return prefix_lookups_total_;
  }
  /// Lookups served by an existing block (refcount++ instead of a fresh
  /// allocation + recomputed prefill) — the "blocks saved" figure.
  [[nodiscard]] index_t prefix_cache_hit_blocks() const {
    return prefix_hits_total_;
  }
  /// Cached blocks reclaimed into the free list under pressure.
  [[nodiscard]] index_t prefix_cache_evictions() const {
    return prefix_evictions_total_;
  }
  /// `fork` calls (one per extra sequence sharing a prompt).
  [[nodiscard]] index_t cow_forks() const { return cow_forks_total_; }
  /// Shared blocks copied before a write (the CoW split points).
  [[nodiscard]] index_t cow_copies() const { return cow_copies_total_; }
  /// Blocks currently parked in the LRU (refcount 0, content cached).
  [[nodiscard]] index_t cached_blocks() const { return cached_; }

  /// Blocks needed to hold `tokens` tokens of KV.
  [[nodiscard]] index_t blocks_for_tokens(index_t tokens) const;

  /// Watermark admission rule: can a sequence that prefills `tokens`
  /// tokens be admitted while leaving the reserve free?
  [[nodiscard]] bool can_admit(index_t tokens) const;
  /// Plain capacity check (decode growth — may consume the reserve).
  [[nodiscard]] bool can_allocate(index_t n) const;

  // ---- handle API ------------------------------------------------------

  /// Appends `n` fresh blocks to `seq` on `tenant`'s account; throws if
  /// the budget cannot cover them (soft quotas never fail an allocation).
  /// The single entry point that replaced the `allocate`/`allocate_into`
  /// pair: callers reserve `seq` to lifetime capacity up front, so a
  /// steady-state decode tick performs no heap allocation.
  void acquire(SequenceBlocks& seq, index_t n, index_t tenant = 0);

  /// Prefill-admission variant: `chain[j]` is the chained content hash of
  /// prompt block j (see `Request::append_prefix_chain`); `chain` may
  /// cover at most the first `n` blocks. The leading run of published
  /// matches is referenced from the cache, the remaining blocks are
  /// allocated fresh with their chain hashes attached (published when
  /// `publish` is called after prefill completes). Returns the number of
  /// cached blocks reused, also recorded as `seq.cached_prefix_blocks()`.
  index_t acquire_prefill(SequenceBlocks& seq, index_t n,
                          const std::vector<std::uint64_t>& chain,
                          index_t tenant = 0);

  /// Makes the hashed blocks of a fully prefilled sequence hittable.
  /// First publisher of a hash wins; a concurrent duplicate's blocks
  /// simply lose their hash and free normally. No-op when the cache is
  /// off.
  void publish(const SequenceBlocks& seq);

  /// Leading blocks of `chain` currently published (live or parked) —
  /// what an admission of this prefix would reuse. Read-only: refcounts
  /// and LRU order are untouched. The cluster router's prefix-affinity
  /// probe.
  [[nodiscard]] index_t cached_chain_blocks(
      const std::vector<std::uint64_t>& chain) const;

  /// Releases every reference `seq` holds on `tenant`'s account and
  /// clears the handle. Last-reference published blocks park in the LRU
  /// (deepest chain position first in eviction order); others return to
  /// the free list. Releasing a block the tenant does not hold throws
  /// (double-release guard).
  void release(SequenceBlocks& seq, index_t tenant = 0);

  /// New handle referencing every block of `parent` (refcount++ on each,
  /// no physical allocation) on `tenant`'s account — the n>1 sampling
  /// fork. `reserve_blocks` pre-sizes the child handle (0 = parent size).
  [[nodiscard]] SequenceBlocks fork(const SequenceBlocks& parent,
                                    index_t tenant = 0,
                                    index_t reserve_blocks = 0);

  /// Grows `seq` so it covers `tokens` tokens on `tenant`'s account,
  /// appending missing tail blocks and copy-on-write-copying any shared
  /// (or published) block the write range [`covered_tokens`, `tokens`)
  /// touches. `covered_tokens` is the KV the sequence has already
  /// written; pass `tokens` when only appending. Returns false (holdings
  /// untouched) if the budget cannot cover appends + copies.
  [[nodiscard]] bool grow_to(SequenceBlocks& seq, index_t tokens,
                             index_t covered_tokens, index_t tenant = 0);

  // ---- per-tenant quota accounting -------------------------------------

  /// Blocks charged to `tenant` (shared blocks charge their last-acquired
  /// live holder — see the header's charging rule).
  [[nodiscard]] index_t tenant_used_blocks(index_t tenant) const;
  /// True when the tenant carries a configured quota.
  [[nodiscard]] bool has_quota(index_t tenant) const;
  /// The tenant's *effective* quota: the configured value capped by the
  /// total budget (a quota cannot promise more than the cache holds).
  /// Returns kNoQuota for unquoted tenants.
  [[nodiscard]] index_t effective_quota(index_t tenant) const;
  /// Blocks the tenant holds beyond its effective quota (0 for unquoted
  /// or within-quota tenants) — the scheduler's reclaim preference key.
  [[nodiscard]] index_t over_quota_blocks(index_t tenant) const;
  /// Would `tenant` stay within its quota after `extra` more blocks?
  /// Unquoted tenants always fit.
  [[nodiscard]] bool within_quota(index_t tenant, index_t extra) const;

 private:
  /// Hasher for the prefix table: keys are already mix64 chain outputs,
  /// so identity is uniform. The table is never iterated — determinism
  /// cannot depend on bucket order.
  struct IdentityHash {
    std::size_t operator()(std::uint64_t x) const {
      return static_cast<std::size_t>(x);
    }
  };

  [[nodiscard]] bool cache_on() const { return cfg_.prefix_cache.enabled; }
  /// Grows the per-id state arrays to cover `id` (unlimited mode).
  void ensure_id(index_t id);
  /// Pops a free block id: free list first, then LRU eviction, then (in
  /// unlimited mode) a fresh id.
  [[nodiscard]] index_t pop_free_block();
  /// `tenant`'s charge-accounting slot, grown on first appearance.
  [[nodiscard]] index_t& tenant_slot(index_t tenant);
  /// Pops a recycled holder node (or mints one) carrying `tenant`.
  [[nodiscard]] index_t new_holder_node(index_t tenant);
  /// refcount++ with last-toucher charging; resurrects parked blocks.
  void acquire_ref(index_t id, index_t tenant);
  /// refcount-- with charge fallback; at zero, parks or frees the block.
  void release_ref(index_t id, index_t tenant);
  /// Drops a refcount-0 block's cache identity and frees its id.
  void scrub_to_free(index_t id);
  void lru_push_back(index_t id);
  void lru_remove(index_t id);
  /// Reclaims the LRU head into the free list.
  void evict_one();
  /// Raw-id bodies shared by the handle API (acquire/release/fork/CoW).
  void acquire_ids(std::vector<index_t>& out, index_t n, index_t tenant);
  void release_ids(std::vector<index_t>& ids, index_t tenant);

  BlockManagerConfig cfg_;
  index_t watermark_blocks_ = 0;
  index_t used_ = 0;
  index_t peak_used_ = 0;
  index_t allocated_total_ = 0;
  index_t freed_total_ = 0;
  index_t grow_failures_ = 0;
  index_t prefix_lookups_total_ = 0;
  index_t prefix_hits_total_ = 0;
  index_t prefix_evictions_total_ = 0;
  index_t cow_forks_total_ = 0;
  index_t cow_copies_total_ = 0;
  std::vector<index_t> free_list_;  // bounded mode: ids ready to reuse
  index_t next_fresh_ = 0;          // unlimited mode: next unseen id

  // Per-id state (indexed by block id; grown on demand in unlimited mode).
  std::vector<index_t> refcount_;
  /// Chain hash per id; meaningful iff `hashed_[id]`.
  std::vector<std::uint64_t> hash_;
  std::vector<std::uint8_t> hashed_;     // id carries a chain hash
  std::vector<std::uint8_t> published_;  // id owns the table_ entry
  std::vector<std::uint8_t> parked_;     // id sits in the LRU (refcount 0)
  std::vector<index_t> lru_prev_, lru_next_;  // -1-terminated, iff parked
  /// Holder stacks, stored as intrusive linked nodes in one shared pool.
  /// (A vector-of-vectors here costs one heap allocation per block id at
  /// construction — tens of milliseconds for HBM-derived budgets.)
  /// `holder_head_[id]` tops id's stack with the most recently acquired
  /// live holder — the charged tenant of the last-toucher rule — and
  /// nodes link toward older holders through `node_next_`. Freed nodes
  /// recycle through `node_free_head_`; the pool is pre-reserved to 2x
  /// the budget so steady-state reference traffic never allocates
  /// (heavier sharing grows it geometrically, amortized).
  std::vector<index_t> node_tenant_;
  std::vector<index_t> node_next_;
  index_t node_free_head_ = -1;
  std::vector<index_t> holder_head_;

  index_t lru_head_ = -1;  // next to evict
  index_t lru_tail_ = -1;  // most recently parked
  index_t cached_ = 0;     // blocks parked in the LRU
  /// hash -> published block id. Never iterated (see IdentityHash).
  std::unordered_map<std::uint64_t, index_t, IdentityHash> table_;

  std::map<index_t, index_t> quotas_;  // tenant -> configured quota
  /// Blocks charged per tenant, indexed by tenant id (ids are small and
  /// dense). A flat array keeps the per-block charge transfer of the
  /// last-toucher rule off the hot path's map; grown only when a new
  /// tenant id first appears, so steady-state traffic never allocates.
  std::vector<index_t> tenant_used_;
};

/// Shared budget arithmetic: paged KV blocks of `block_size` tokens that
/// fit in `hbm_bytes` beside `weight_bytes` of resident weights, holding
/// back `activation_reserve` of HBM. The headroom is clamped at zero and a
/// clear deficit error is thrown — a negative headroom must never reach the
/// block-count cast and underflow (reachable once tensor-parallel sharding
/// shrinks per-rank weights asymmetrically). `what` names the model/rank
/// for the message.
[[nodiscard]] index_t kv_blocks_that_fit(double hbm_bytes, double weight_bytes,
                                         double kv_bytes_per_token,
                                         index_t block_size,
                                         double activation_reserve,
                                         const std::string& what);

/// Per-GPU KV block budget of `engine` on its configured device: HBM bytes
/// minus resident weights minus `activation_reserve` of HBM, divided by
/// the bytes one block of KV occupies. Throws if the weights alone
/// overflow the device.
[[nodiscard]] index_t derive_kv_block_budget(const Engine& engine,
                                             index_t block_size,
                                             double activation_reserve = 0.1);

}  // namespace marlin::serve::sched
