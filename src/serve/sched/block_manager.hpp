#pragma once
// Paged KV-cache accounting (vLLM-style block manager).
//
// The KV cache is carved into fixed-size blocks of `block_size` tokens; a
// sequence owns ceil(tokens / block_size) blocks. The manager hands out
// block ids from a free list, enforces the per-GPU budget, and applies a
// watermark rule at admission: a new sequence is admitted only if its
// prefill allocation leaves `watermark` of the budget free, so running
// sequences have headroom to grow before the scheduler must preempt.
// Decode-time growth may dip into the watermark reserve.
//
// A budget of 0 blocks means "unlimited" — allocation never fails, but ids
// and peak usage are still tracked (this is the pre-subsystem goldens
// configuration).
//
// The real budget comes from the device: HBM capacity minus resident
// weights minus an activation reserve, divided by the per-token KV bytes
// of the model (see `derive_kv_block_budget`).

#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "util/matrix.hpp"

namespace marlin::serve::sched {

struct BlockManagerConfig {
  index_t block_size = 16;  // tokens per KV block
  index_t num_blocks = 0;   // 0 = unlimited
  /// Fraction of the budget that must stay free after an admission.
  double watermark = 0.01;
};

class BlockManager {
 public:
  explicit BlockManager(BlockManagerConfig cfg);

  [[nodiscard]] index_t block_size() const { return cfg_.block_size; }
  [[nodiscard]] bool unlimited() const { return cfg_.num_blocks == 0; }
  [[nodiscard]] index_t total_blocks() const { return cfg_.num_blocks; }
  [[nodiscard]] index_t used_blocks() const { return used_; }
  [[nodiscard]] index_t free_blocks() const;
  [[nodiscard]] index_t watermark_blocks() const { return watermark_blocks_; }
  /// High-water mark of blocks simultaneously in use.
  [[nodiscard]] index_t peak_used_blocks() const { return peak_used_; }

  /// Blocks needed to hold `tokens` tokens of KV.
  [[nodiscard]] index_t blocks_for_tokens(index_t tokens) const;

  /// Watermark admission rule: can a sequence that prefills `tokens`
  /// tokens be admitted while leaving the reserve free?
  [[nodiscard]] bool can_admit(index_t tokens) const;
  /// Plain capacity check (decode growth — may consume the reserve).
  [[nodiscard]] bool can_allocate(index_t n) const;

  /// Hands out `n` block ids; throws if the budget cannot cover them.
  [[nodiscard]] std::vector<index_t> allocate(index_t n);

  /// Returns blocks to the free list and clears `ids`. Freeing a block
  /// that is not currently allocated throws (double-free guard).
  void free(std::vector<index_t>& ids);

  /// Grows `held` so it covers `tokens` tokens, allocating only the
  /// missing tail blocks. Returns false (holdings untouched) if the
  /// budget cannot cover the growth.
  [[nodiscard]] bool grow_to(std::vector<index_t>& held, index_t tokens);

 private:
  BlockManagerConfig cfg_;
  index_t watermark_blocks_ = 0;
  index_t used_ = 0;
  index_t peak_used_ = 0;
  std::vector<index_t> free_list_;       // bounded mode: ids ready to reuse
  std::vector<bool> allocated_;          // per-id liveness (double-free guard)
  index_t next_fresh_ = 0;               // unlimited mode: next unseen id
};

/// Shared budget arithmetic: paged KV blocks of `block_size` tokens that
/// fit in `hbm_bytes` beside `weight_bytes` of resident weights, holding
/// back `activation_reserve` of HBM. The headroom is clamped at zero and a
/// clear deficit error is thrown — a negative headroom must never reach the
/// block-count cast and underflow (reachable once tensor-parallel sharding
/// shrinks per-rank weights asymmetrically). `what` names the model/rank
/// for the message.
[[nodiscard]] index_t kv_blocks_that_fit(double hbm_bytes, double weight_bytes,
                                         double kv_bytes_per_token,
                                         index_t block_size,
                                         double activation_reserve,
                                         const std::string& what);

/// Per-GPU KV block budget of `engine` on its configured device: HBM bytes
/// minus resident weights minus `activation_reserve` of HBM, divided by
/// the bytes one block of KV occupies. Throws if the weights alone
/// overflow the device.
[[nodiscard]] index_t derive_kv_block_budget(const Engine& engine,
                                             index_t block_size,
                                             double activation_reserve = 0.1);

}  // namespace marlin::serve::sched
