#pragma once
// Paged KV-cache accounting (vLLM-style block manager).
//
// The KV cache is carved into fixed-size blocks of `block_size` tokens; a
// sequence owns ceil(tokens / block_size) blocks. The manager hands out
// block ids from a free list, enforces the per-GPU budget, and applies a
// watermark rule at admission: a new sequence is admitted only if its
// prefill allocation leaves `watermark` of the budget free, so running
// sequences have headroom to grow before the scheduler must preempt.
// Decode-time growth may dip into the watermark reserve.
//
// A budget of 0 blocks means "unlimited" — allocation never fails, but ids
// and peak usage are still tracked (this is the pre-subsystem goldens
// configuration).
//
// The real budget comes from the device: HBM capacity minus resident
// weights minus an activation reserve, divided by the per-token KV bytes
// of the model (see `derive_kv_block_budget`).
//
// Multi-tenant quotas: every allocation is attributed to a tenant, and a
// tenant may carry a *soft* block quota. Quotas never make an allocation
// fail while free blocks exist — a tenant past its quota is simply
// *borrowing*, and the scheduler's preemption policy reclaims from the
// most over-quota tenant first when the cache runs dry. A quota larger
// than the total budget is effectively capped by it; an explicit quota of
// 0 marks a borrow-only tenant (any held block counts as over-quota).

#include <map>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/sched/tenant.hpp"
#include "util/matrix.hpp"

namespace marlin::serve::sched {

struct BlockManagerConfig {
  index_t block_size = 16;  // tokens per KV block
  index_t num_blocks = 0;   // 0 = unlimited
  /// Fraction of the budget that must stay free after an admission.
  double watermark = 0.01;
  /// Soft per-tenant block quotas: `{tenant id, blocks}`. Tenants absent
  /// from the list are unquoted. See the header comment for semantics.
  std::vector<std::pair<index_t, index_t>> tenant_quotas;
};

class BlockManager {
 public:
  explicit BlockManager(BlockManagerConfig cfg);

  [[nodiscard]] index_t block_size() const { return cfg_.block_size; }
  [[nodiscard]] bool unlimited() const { return cfg_.num_blocks == 0; }
  [[nodiscard]] index_t total_blocks() const { return cfg_.num_blocks; }
  [[nodiscard]] index_t used_blocks() const { return used_; }
  [[nodiscard]] index_t free_blocks() const;
  [[nodiscard]] index_t watermark_blocks() const { return watermark_blocks_; }
  /// High-water mark of blocks simultaneously in use.
  [[nodiscard]] index_t peak_used_blocks() const { return peak_used_; }

  // Cumulative traffic counters for the observability layer (plain
  // increments on the allocation paths — recording off or on, they cost
  // the same and allocate nothing).

  /// Total blocks handed out over the manager's lifetime.
  [[nodiscard]] index_t blocks_allocated_total() const {
    return allocated_total_;
  }
  /// Total blocks returned to the free list.
  [[nodiscard]] index_t blocks_freed_total() const { return freed_total_; }
  /// `grow_to` calls the budget refused — the scheduler preempts on each.
  [[nodiscard]] index_t grow_failures() const { return grow_failures_; }

  /// Blocks needed to hold `tokens` tokens of KV.
  [[nodiscard]] index_t blocks_for_tokens(index_t tokens) const;

  /// Watermark admission rule: can a sequence that prefills `tokens`
  /// tokens be admitted while leaving the reserve free?
  [[nodiscard]] bool can_admit(index_t tokens) const;
  /// Plain capacity check (decode growth — may consume the reserve).
  [[nodiscard]] bool can_allocate(index_t n) const;

  /// Hands out `n` block ids to `tenant`; throws if the budget cannot
  /// cover them. Soft quotas never fail an allocation (see header).
  [[nodiscard]] std::vector<index_t> allocate(index_t n, index_t tenant = 0);

  /// Like `allocate`, but appends the `n` new ids to `out` (same ids in
  /// the same order) — the hot-path variant that lets callers reuse a
  /// vector whose capacity was reserved up front, so a steady-state
  /// decode tick performs no heap allocation.
  void allocate_into(std::vector<index_t>& out, index_t n, index_t tenant = 0);

  /// Returns `tenant`'s blocks to the free list and clears `ids`. Freeing
  /// a block that is not currently allocated throws (double-free guard),
  /// as does returning more blocks than the tenant holds.
  void free(std::vector<index_t>& ids, index_t tenant = 0);

  /// Grows `held` so it covers `tokens` tokens, allocating only the
  /// missing tail blocks on `tenant`'s account. Returns false (holdings
  /// untouched) if the budget cannot cover the growth.
  [[nodiscard]] bool grow_to(std::vector<index_t>& held, index_t tokens,
                             index_t tenant = 0);

  // ---- per-tenant quota accounting -------------------------------------

  /// Blocks `tenant` currently holds.
  [[nodiscard]] index_t tenant_used_blocks(index_t tenant) const;
  /// True when the tenant carries a configured quota.
  [[nodiscard]] bool has_quota(index_t tenant) const;
  /// The tenant's *effective* quota: the configured value capped by the
  /// total budget (a quota cannot promise more than the cache holds).
  /// Returns kNoQuota for unquoted tenants.
  [[nodiscard]] index_t effective_quota(index_t tenant) const;
  /// Blocks the tenant holds beyond its effective quota (0 for unquoted
  /// or within-quota tenants) — the scheduler's reclaim preference key.
  [[nodiscard]] index_t over_quota_blocks(index_t tenant) const;
  /// Would `tenant` stay within its quota after `extra` more blocks?
  /// Unquoted tenants always fit.
  [[nodiscard]] bool within_quota(index_t tenant, index_t extra) const;

 private:
  BlockManagerConfig cfg_;
  index_t watermark_blocks_ = 0;
  index_t used_ = 0;
  index_t peak_used_ = 0;
  index_t allocated_total_ = 0;
  index_t freed_total_ = 0;
  index_t grow_failures_ = 0;
  std::vector<index_t> free_list_;       // bounded mode: ids ready to reuse
  std::vector<bool> allocated_;          // per-id liveness (double-free guard)
  index_t next_fresh_ = 0;               // unlimited mode: next unseen id
  std::map<index_t, index_t> quotas_;    // tenant -> configured soft quota
  std::map<index_t, index_t> tenant_used_;  // tenant -> live blocks
};

/// Shared budget arithmetic: paged KV blocks of `block_size` tokens that
/// fit in `hbm_bytes` beside `weight_bytes` of resident weights, holding
/// back `activation_reserve` of HBM. The headroom is clamped at zero and a
/// clear deficit error is thrown — a negative headroom must never reach the
/// block-count cast and underflow (reachable once tensor-parallel sharding
/// shrinks per-rank weights asymmetrically). `what` names the model/rank
/// for the message.
[[nodiscard]] index_t kv_blocks_that_fit(double hbm_bytes, double weight_bytes,
                                         double kv_bytes_per_token,
                                         index_t block_size,
                                         double activation_reserve,
                                         const std::string& what);

/// Per-GPU KV block budget of `engine` on its configured device: HBM bytes
/// minus resident weights minus `activation_reserve` of HBM, divided by
/// the bytes one block of KV occupies. Throws if the weights alone
/// overflow the device.
[[nodiscard]] index_t derive_kv_block_budget(const Engine& engine,
                                             index_t block_size,
                                             double activation_reserve = 0.1);

}  // namespace marlin::serve::sched
