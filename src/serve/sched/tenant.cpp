#include "serve/sched/tenant.hpp"

#include "util/error.hpp"

namespace marlin::serve::sched {

void TenantSpec::validate() const {
  MARLIN_CHECK(id >= 0, "tenant id must be >= 0 (got " << id << ")");
  MARLIN_CHECK(weight > 0.0,
               "tenant " << id << " needs a positive WFQ weight (got "
                         << weight << ")");
  MARLIN_CHECK(tier >= 0, "tenant " << id << " tier must be >= 0");
  MARLIN_CHECK(kv_block_quota >= kNoQuota,
               "tenant " << id << " KV quota must be -1 (none), 0 "
                         << "(borrow-only) or positive");
  MARLIN_CHECK(traffic_share > 0.0,
               "tenant " << id << " needs a positive traffic share");
}

TenantSpec tenant_spec_or_default(const std::vector<TenantSpec>& tenants,
                                  index_t tenant_id) {
  for (const auto& t : tenants) {
    if (t.id == tenant_id) return t;
  }
  TenantSpec spec;
  spec.id = tenant_id;
  return spec;
}

}  // namespace marlin::serve::sched
