#pragma once
// Trace-driven workload generation for the serving scheduler.
//
// Three arrival/length shapes, all drawn from one fixed-seed Rng so a
// trace is reproducible bit-for-bit across runs, platforms and thread
// counts (`--seed` on the serving benches plumbs straight into `seed`):
//
//   * kPoisson  — memoryless arrivals at `qps`, fixed prompt/output
//     lengths. Draw-for-draw identical to the pre-subsystem simulator's
//     arrival process, which keeps the fig15/fig16 goldens stable.
//   * kBursty   — on/off (interrupted-Poisson) arrivals: exponential ON
//     windows at an elevated rate separated by exponential OFF gaps, same
//     mean rate overall. Stresses admission and preemption.
//   * kShareGpt — Poisson arrivals with log-normal prompt and output
//     lengths (median = configured tokens), the standard stand-in for the
//     heavy-tailed ShareGPT conversation distribution.

#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace marlin::serve::sched {

enum class WorkloadShape { kPoisson, kBursty, kShareGpt };

const char* to_string(WorkloadShape s);
/// Parses "poisson" / "bursty" / "sharegpt" (case-sensitive); throws on
/// anything else, listing the known names.
WorkloadShape workload_by_name(const std::string& name);

struct TraceRequest {
  double arrival_s = 0;
  index_t input_tokens = 0;
  index_t output_tokens = 0;
  /// Owning tenant; 0 unless the workload configures a tenant mix.
  index_t tenant_id = 0;
  /// Shared-prefix group: requests with the same non-negative id start
  /// with the same `prefix_tokens` prompt tokens (system prompt /
  /// few-shot header). -1 = fully unique prompt.
  index_t prefix_id = -1;
  /// Length of the shared prefix in tokens (counted inside
  /// `input_tokens`); 0 when `prefix_id` is -1.
  index_t prefix_tokens = 0;
  /// Parallel-sampling width (n>1 decodes n continuations of one
  /// prompt, sharing the prompt KV copy-on-write).
  index_t num_sequences = 1;
};

struct WorkloadConfig {
  WorkloadShape shape = WorkloadShape::kPoisson;
  double qps = 1.0;        // mean arrival rate over the whole trace
  double duration_s = 120.0;
  index_t input_tokens = 64;   // fixed length; log-normal median for ShareGPT
  index_t output_tokens = 64;
  std::uint64_t seed = 42;

  // kBursty: mean window lengths; the ON rate is scaled so the mean rate
  // over ON+OFF stays `qps`.
  double burst_on_s = 4.0;
  double burst_off_s = 12.0;

  // kShareGpt: log-normal sigma (in log-token space) and length clamps.
  double length_sigma = 0.8;
  index_t min_tokens = 4;
  index_t max_input_tokens = 2048;
  index_t max_output_tokens = 1024;

  /// Per-tenant traffic mix: tenant id `i` receives `tenant_shares[i]` of
  /// the requests (shares are relative weights, not required to sum to 1).
  /// Empty = everything belongs to the single default tenant 0. Tenant
  /// assignment draws from a *separate* RNG stream derived from `seed`,
  /// after the trace is generated — configuring a mix leaves the arrival
  /// times and token lengths of the base trace bit-identical.
  std::vector<double> tenant_shares;

  /// Shared-prefix mix (system prompts): when `shared_prefix_tokens` > 0,
  /// each request independently starts with one of
  /// `shared_prefix_groups` shared headers with probability
  /// `shared_prefix_share`, which *prepends* `shared_prefix_tokens`
  /// tokens to its prompt. Like tenants, the assignment runs on its own
  /// RNG stream after trace generation, so the base trace (arrivals,
  /// unique-suffix lengths) is bit-identical with the mix on or off.
  index_t shared_prefix_tokens = 0;
  index_t shared_prefix_groups = 1;
  double shared_prefix_share = 1.0;
  /// Parallel-sampling width stamped on every request (n>1 sampling);
  /// 1 = classic single-sequence decoding.
  index_t sampling_n = 1;
};

/// Arrival-ordered trace for the configured shape; empty if the rate and
/// duration produce no arrivals.
std::vector<TraceRequest> generate_trace(const WorkloadConfig& cfg);

}  // namespace marlin::serve::sched
