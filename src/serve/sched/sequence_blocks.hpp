#pragma once
// Ref-counted KV block handle.
//
// `SequenceBlocks` is what a sequence holds instead of a naked
// `std::vector<index_t>` of block ids: the ids are still there (read-only
// for callers), but every mutation — acquiring blocks, growing, forking,
// releasing — goes through the `BlockManager`, which keeps a per-block
// refcount. Two sequences may therefore reference the same physical
// block (a shared prompt prefix, or a copy-on-write fork of an n>1
// sampling request); the block returns to the free list (or to the
// prefix cache's LRU) only when the last reference is released.
//
// Copying the struct copies the id list but does NOT acquire references —
// use `BlockManager::fork` for a real shared handle. The manager's
// double-release guard turns an accidentally copied-and-released handle
// into an error instead of silent corruption.

#include <cstddef>
#include <vector>

#include "util/matrix.hpp"

namespace marlin::serve::sched {

class BlockManager;

/// Handle to the KV blocks one sequence references (see header comment).
class SequenceBlocks {
 public:
  /// Block ids in sequence order, for pricing and tests. Mutation is the
  /// BlockManager's job.
  [[nodiscard]] const std::vector<index_t>& ids() const { return ids_; }
  /// Blocks referenced.
  [[nodiscard]] index_t count() const {
    return static_cast<index_t>(ids_.size());
  }
  [[nodiscard]] bool empty() const { return ids_.empty(); }
  /// Pre-sizes the id vector (reserve-to-lifetime keeps the steady-state
  /// decode tick allocation-free).
  void reserve(std::size_t blocks) { ids_.reserve(blocks); }
  /// Leading blocks served from the prefix cache at the last admission
  /// (refcount++ instead of a fresh allocation + recomputed prefill).
  [[nodiscard]] index_t cached_prefix_blocks() const { return cached_prefix_; }

 private:
  friend class BlockManager;
  std::vector<index_t> ids_;
  index_t cached_prefix_ = 0;
};

}  // namespace marlin::serve::sched
