#include "serve/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "obs/serve_recorder.hpp"
#include "serve/cluster/event_loop.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace marlin::serve::sched {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFcfs:
      return "fcfs";
    case SchedPolicy::kShortestJob:
      return "sjf";
    case SchedPolicy::kMaxUtilization:
      return "max-util";
    case SchedPolicy::kWeightedFair:
      return "wfq";
  }
  return "?";
}

SchedPolicy policy_by_name(const std::string& name) {
  for (const auto p : {SchedPolicy::kFcfs, SchedPolicy::kShortestJob,
                       SchedPolicy::kMaxUtilization,
                       SchedPolicy::kWeightedFair}) {
    if (name == to_string(p)) return p;
  }
  MARLIN_CHECK(false, "unknown scheduling policy `"
                          << name << "`; known: fcfs, sjf, max-util, wfq");
  return SchedPolicy::kFcfs;  // unreachable
}

double SpeculationConfig::expected_tokens_per_round() const {
  // Accepted draft prefix plus the target model's own token:
  // sum_{i=0..depth} acceptance^i. Summed termwise (depth is small) so
  // the value is bit-identical everywhere, acceptance == 1 included.
  double expected = 0.0;
  double term = 1.0;
  for (index_t i = 0; i <= depth; ++i) {
    expected += term;
    term *= acceptance;
  }
  return expected;
}

void SpeculationConfig::validate() const {
  MARLIN_CHECK(depth >= 0, "speculation depth must be >= 0");
  MARLIN_CHECK(acceptance >= 0.0 && acceptance <= 1.0,
               "draft acceptance must be in [0, 1] (got " << acceptance
                                                          << ")");
}

void SloConfig::validate() const {
  MARLIN_CHECK(ttft_deadline_ms >= 0,
               "negative TTFT deadline (" << ttft_deadline_ms << " ms)");
  MARLIN_CHECK(tpot_deadline_ms >= 0,
               "negative TPOT deadline (" << tpot_deadline_ms << " ms)");
}

namespace {

// One request's latency metrics — the single definition the metrics
// tail, the per-tenant split and the SLO accounting all report from.
double request_ttft_ms(const Request& r) {
  return (r.first_token_s - r.arrival_s) * 1e3;
}
double request_tpot_ms(const Request& r) {
  return (r.finish_s - r.first_token_s) /
         static_cast<double>(std::max<index_t>(1, r.output_tokens - 1)) * 1e3;
}

}  // namespace

std::vector<TenantMetrics> per_tenant_metrics(const SchedStats& stats) {
  std::map<index_t, TenantMetrics> by_tenant;
  std::map<index_t, std::vector<double>> ttfts, tpots;
  for (const Request& r : stats.requests) {
    TenantMetrics& t = by_tenant[r.tenant_id];
    t.tenant = r.tenant_id;
    t.preemptions += r.preemptions;
    if (r.rejected) {
      ++t.rejected;
      continue;
    }
    if (r.finish_s < 0) continue;
    ++t.completed;
    t.output_tokens += r.generated;
    ttfts[r.tenant_id].push_back(request_ttft_ms(r));
    tpots[r.tenant_id].push_back(request_tpot_ms(r));
  }
  std::vector<TenantMetrics> out;
  out.reserve(by_tenant.size());
  for (auto& [tenant, metrics] : by_tenant) {
    if (!ttfts[tenant].empty()) {
      metrics.mean_ttft_ms = mean(ttfts[tenant]);
      metrics.mean_tpot_ms = mean(tpots[tenant]);
    }
    out.push_back(metrics);
  }
  return out;
}

ServingMetrics metrics_from_requests(const std::vector<Request>& requests,
                                     double batch_weighted,
                                     double decode_time_total) {
  ServingMetrics m;
  std::vector<double> tpots, ttfts;
  for (const Request& r : requests) {
    if (r.finish_s < 0) continue;
    ++m.completed;
    ttfts.push_back(request_ttft_ms(r));
    tpots.push_back(request_tpot_ms(r));
  }
  if (!tpots.empty()) {
    m.mean_tpot_ms = mean(tpots);
    m.mean_ttft_ms = mean(ttfts);
    m.p50_tpot_ms = percentile(tpots, 50.0);
    m.p90_tpot_ms = percentile(tpots, 90.0);
    m.p99_tpot_ms = percentile(tpots, 99.0);
    m.p90_ttft_ms = percentile(ttfts, 90.0);
  }
  m.mean_batch =
      decode_time_total > 0 ? batch_weighted / decode_time_total : 0.0;
  return m;
}

namespace {

/// Admission priority key; smaller admits first. FCFS keeps queue order.
/// (kWeightedFair uses the separate double-valued WFQ key in Ticker.)
index_t policy_key(SchedPolicy policy, const Request& r) {
  switch (policy) {
    case SchedPolicy::kFcfs:
    case SchedPolicy::kWeightedFair:
      return 0;
    case SchedPolicy::kShortestJob:
      // Remaining service: prefill work plus the decode tokens still owed.
      return r.prefill_target() + (r.output_tokens - r.generated);
    case SchedPolicy::kMaxUtilization:
      // Smallest *lifetime* KV footprint packs the most sequences into
      // the budget; the admission scan skips over requests whose prefill
      // doesn't fit right now (e.g. a recompute-heavy preempted head).
      return r.max_kv_tokens();
  }
  return 0;
}

/// One tick's worth of scheduling against a ReplicaState — the former
/// Scheduler::run loop body, with its helper lambdas promoted to member
/// functions. Constructed per Scheduler::admit/step call (it only
/// bundles references); every floating-point operation happens in the
/// exact order of the legacy loop, which is what keeps a 1-replica
/// cluster byte-identical to the pre-cluster goldens.
class Ticker {
 public:
  Ticker(const SchedulerConfig& cfg, const StepModel& model,
         const StepModel* draft, double spec_expected, ReplicaState& s,
         std::vector<Request>& requests)
      : cfg_(cfg), model_(model), draft_(draft),
        wfq_(cfg.policy == SchedPolicy::kWeightedFair),
        spec_expected_(spec_expected), s_(s), requests_(requests) {}

  void admit();
  void step();

 private:
  [[nodiscard]] const TenantSpec& spec_of(index_t tenant) const {
    return s_.tenant_specs.find(tenant)->second;
  }
  void add_service(index_t tenant, index_t tokens) {
    if (!wfq_) return;
    s_.service_debt[tenant] +=
        static_cast<double>(tokens) / spec_of(tenant).weight;
  }

  // WFQ admission key; smaller admits first. Weighted service debt plus a
  // fixed penalty per priority tier, minus a linear aging credit: a
  // waiting request's key falls without bound while everyone else's only
  // rises with service, so no tier or debt can starve it.
  [[nodiscard]] double wfq_key(const Request& r) const {
    const TenantSpec& t = spec_of(r.tenant_id);
    return s_.service_debt.find(r.tenant_id)->second +
           static_cast<double>(t.tier) * cfg_.wfq_tier_penalty_tokens -
           cfg_.wfq_aging_tokens_per_s * (s_.now - r.arrival_s);
  }

  // A request that can never hold prompt + output tokens under the budget
  // (keeping the watermark free for its admission) would starve the queue
  // forever; refuse it outright. `max_kv_blocks` counts full prompt
  // blocks once across n>1 sampling sequences (CoW sharing).
  [[nodiscard]] bool never_fits(const Request& r) const {
    return !s_.bm.unlimited() &&
           r.max_kv_blocks(s_.bm.block_size()) + s_.bm.watermark_blocks() >
               s_.bm.total_blocks();
  }

  // Physical block references a request holds across all its sequences
  // (shared blocks count once per referencing sequence — the reclaim
  // planner treats this as an upper bound on what a preemption frees).
  [[nodiscard]] static index_t held_blocks(const Request& r) {
    index_t total = r.blocks.count();
    for (const SequenceBlocks& f : r.forks) total += f.count();
    return total;
  }

  // Deadline-aware admission: hopeless iff even an immediate solo
  // prefill (the request's best case) would miss the TTFT deadline.
  // Requests that already emitted their first token (preempted ones)
  // have their TTFT decided and are never shed.
  [[nodiscard]] bool slo_hopeless(const Request& r) const {
    const double deadline_ms = cfg_.slo.ttft_deadline_ms;
    if (deadline_ms <= 0 || r.first_token_s >= 0) return false;
    const double best_ttft_s = (s_.now - r.arrival_s) +
                               model_.prefill_seconds(1, r.prefill_target());
    return best_ttft_s * 1e3 > deadline_ms;
  }

  void preempt_running_at(std::size_t pos) {
    MARLIN_ASSERT(pos < s_.running.size());
    const std::size_t victim = s_.running[pos];
    s_.running.erase(s_.running.begin() + static_cast<std::ptrdiff_t>(pos));
    Request& v = requests_[victim];
    v.set_state(RequestState::kPreempted);
    const index_t blocks_freed = held_blocks(v);
    // Releasing decrements refcounts; published prompt blocks park in the
    // prefix cache, so the recompute prefill usually re-hits them.
    s_.bm.release(v.blocks, v.tenant_id);
    for (SequenceBlocks& f : v.forks) s_.bm.release(f, v.tenant_id);
    v.forks.clear();
    v.prefilled = 0;
    ++v.preemptions;
    ++s_.preemptions;
    s_.queue.push_front(victim);
    if (s_.obs != nullptr) {
      s_.obs->on_preempted(s_.now, v.id, s_.replica_id, blocks_freed);
    }
  }

  // The most over-quota tenant's last-admitted running sequence: the
  // single victim-preference rule shared by decode-growth preemption
  // (live BlockManager state) and admission reclaim (snapshot planning).
  // Skips `exclude_tenant`'s sequences (-1 excludes nobody — tenant ids
  // are >= 0) and positions flagged in `skip` (may be null); `over_fn`
  // maps a tenant to its over-quota block count. Returns running.size()
  // when every considered tenant is within quota.
  template <typename OverFn>
  [[nodiscard]] std::size_t most_over_quota_victim(
      index_t exclude_tenant, const OverFn& over_fn,
      const std::vector<bool>* skip) const {
    std::size_t best = s_.running.size();
    index_t worst_over = 0;
    for (std::size_t i = s_.running.size(); i-- > 0;) {
      const Request& v = requests_[s_.running[i]];
      if ((skip != nullptr && (*skip)[i]) || v.tenant_id == exclude_tenant) {
        continue;
      }
      const index_t over = over_fn(v.tenant_id);
      if (over > worst_over) {
        worst_over = over;
        best = i;
      }
    }
    return best;
  }

  // Decode-growth victim: under WFQ, the last-admitted sequence of the
  // most over-quota tenant (borrowers give their blocks back first); the
  // last-admitted sequence otherwise — and under WFQ when every tenant is
  // within quota, which reproduces the legacy rule.
  [[nodiscard]] std::size_t choose_victim_pos() const {
    MARLIN_ASSERT(!s_.running.empty());
    if (wfq_) {
      const auto live_over_quota = [this](index_t tenant) {
        return s_.bm.over_quota_blocks(tenant);
      };
      const std::size_t best =
          most_over_quota_victim(-1, live_over_quota, nullptr);
      if (best < s_.running.size()) return best;
    }
    return s_.running.size() - 1;
  }

  // WFQ borrow-and-reclaim: when a within-quota tenant's admission is
  // blocked, preempt over-quota borrowers (other tenants, last-admitted
  // first, most over-quota tenant first) until the candidate fits. A
  // quota is thus a capacity *guarantee*, while idle blocks stay
  // lendable. The greedy victim selection is planned on a snapshot
  // first and only executed when it fully covers the admission —
  // otherwise nobody is preempted, because a partial reclaim would
  // destroy victims' KV (recompute on re-admission) without admitting
  // anyone.
  void reclaim_for(const Request& r) {
    const index_t needed = s_.bm.blocks_for_tokens(r.prefill_target());
    if (!s_.bm.within_quota(r.tenant_id, needed)) {
      return;  // borrowers wait for genuinely free blocks
    }
    // Snapshot of the quantities the greedy loop mutates.
    index_t free = s_.bm.free_blocks();
    std::map<index_t, index_t> used;
    for (const std::size_t id : s_.running) {
      const index_t tenant = requests_[id].tenant_id;
      if (!used.contains(tenant)) {
        used[tenant] = s_.bm.tenant_used_blocks(tenant);
      }
    }
    const auto snapshot_over_quota = [&](index_t tenant) {
      const index_t quota = s_.bm.effective_quota(tenant);
      if (quota == kNoQuota) return index_t{0};
      return std::max<index_t>(0, used.find(tenant)->second - quota);
    };
    std::vector<bool> planned(s_.running.size(), false);
    std::vector<std::size_t> plan;  // victim request ids, greedy order
    while (needed + s_.bm.watermark_blocks() > free) {
      const std::size_t best =
          most_over_quota_victim(r.tenant_id, snapshot_over_quota, &planned);
      if (best >= s_.running.size()) return;  // infeasible: preempt nobody
      planned[best] = true;
      plan.push_back(s_.running[best]);
      const auto held = held_blocks(requests_[s_.running[best]]);
      free += held;
      used[requests_[s_.running[best]].tenant_id] -= held;
    }
    for (const std::size_t victim_id : plan) {
      const auto pos = static_cast<std::size_t>(
          std::find(s_.running.begin(), s_.running.end(), victim_id) -
          s_.running.begin());
      preempt_running_at(pos);
    }
  }

  // Committed tokens of one speculative propose-then-verify round for
  // `r`: the fractional accumulator keeps the long-run average at
  // `spec_expected_` while every round commits a whole number of tokens
  // (at least the target model's own token, at most what is still owed).
  [[nodiscard]] index_t commit_tokens(const Request& r) const {
    if (!cfg_.speculation.enabled()) return 1;
    const index_t remaining = r.output_tokens - r.generated;
    const auto c =
        static_cast<index_t>(std::floor(r.spec_credit + spec_expected_));
    return std::clamp<index_t>(c, 1, std::max<index_t>(1, remaining));
  }

  void prefill_round();
  void decode_round();

  const SchedulerConfig& cfg_;
  const StepModel& model_;
  const StepModel* draft_;
  bool wfq_;
  double spec_expected_;
  ReplicaState& s_;
  std::vector<Request>& requests_;
};

void Ticker::admit() {
  // Admission in policy order, bounded by batch cap and KV watermark.
  if (s_.queue.empty() ||
      s_.active() >= static_cast<std::size_t>(cfg_.max_batch)) {
    return;
  }
  // Reused scratch: `order`/`keyed` keep their grown capacity across
  // ticks; `taken` is lazily sized once and re-cleared via `order` below.
  ReplicaState::TickScratch& scr = s_.scratch;
  scr.order.assign(s_.queue.begin(), s_.queue.end());
  if (wfq_) {
    // Keys are loop-invariant during the sort; compute each once
    // instead of per comparison (stable on ties, like the other
    // policies).
    scr.keyed.clear();
    for (const std::size_t id : scr.order) {
      scr.keyed.emplace_back(wfq_key(requests_[id]), id);
    }
    std::stable_sort(
        scr.keyed.begin(), scr.keyed.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t i = 0; i < scr.keyed.size(); ++i) {
      scr.order[i] = scr.keyed[i].second;
    }
  } else if (cfg_.policy != SchedPolicy::kFcfs) {
    std::stable_sort(scr.order.begin(), scr.order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return policy_key(cfg_.policy, requests_[a]) <
                              policy_key(cfg_.policy, requests_[b]);
                     });
  }
  if (scr.taken.size() < requests_.size()) scr.taken.resize(requests_.size());
  for (const std::size_t id : scr.order) {
    if (s_.active() >= static_cast<std::size_t>(cfg_.max_batch)) break;
    Request& r = requests_[id];
    if (slo_hopeless(r)) {
      r.shed = true;
      r.set_state(RequestState::kFinished);
      ++s_.shed;
      scr.taken[id] = 1;
      if (s_.obs != nullptr) s_.obs->on_shed(s_.now, r.id);
      continue;
    }
    if (never_fits(r)) {
      r.rejected = true;
      r.set_state(RequestState::kFinished);
      ++s_.rejected;
      scr.taken[id] = 1;
      if (s_.obs != nullptr) s_.obs->on_rejected(s_.now, r.id);
      continue;
    }
    if (wfq_ && !s_.bm.can_admit(r.prefill_target())) {
      reclaim_for(r);
    }
    if (!s_.bm.can_admit(r.prefill_target())) {
      // FCFS and SJF respect head-of-line order; max-util and WFQ
      // keep scanning for anything that still fits.
      if (cfg_.policy == SchedPolicy::kMaxUtilization || wfq_) continue;
      break;
    }
    // Reserve the lifetime footprint up front so decode-time `grow_to`
    // never reallocates the block-id vector.
    r.blocks.reserve(
        static_cast<std::size_t>(s_.bm.blocks_for_tokens(r.max_kv_tokens())));
    const index_t need = s_.bm.blocks_for_tokens(r.prefill_target());
    index_t cached_tokens = 0;
    const PrefixCacheConfig& pc = s_.bm.config().prefix_cache;
    if (pc.enabled &&
        r.hashable_prefix_blocks(s_.bm.block_size()) >= pc.min_prefix_blocks) {
      r.append_prefix_chain(s_.bm.block_size(), need, scr.chain);
      const index_t hits =
          s_.bm.acquire_prefill(r.blocks, need, scr.chain, r.tenant_id);
      // Chunked prefill starts past the cached run — those tokens' KV
      // already exists, so their prefill compute is skipped outright.
      cached_tokens = hits * s_.bm.block_size();
      s_.prefix_tokens_skipped += cached_tokens;
      if (hits > 0 && s_.obs != nullptr) {
        s_.obs->on_prefix_cache_hit(s_.now, r.id, s_.replica_id, hits,
                                    cached_tokens);
      }
    } else {
      s_.bm.acquire(r.blocks, need, r.tenant_id);
    }
    r.set_state(RequestState::kPrefilling);
    r.prefilled = cached_tokens;
    s_.prefilling.push_back(id);
    scr.taken[id] = 1;
    if (s_.obs != nullptr) {
      s_.obs->on_admitted(s_.now, r.id, s_.replica_id, r.blocks.count());
    }
  }
  std::erase_if(s_.queue,
                [&](std::size_t id) { return scr.taken[id] != 0; });
  for (const std::size_t id : scr.order) scr.taken[id] = 0;
}

void Ticker::prefill_round() {
  // One prefill chunk round over the whole prefill flight.
  double total_new = 0.0;
  for (const std::size_t id : s_.prefilling) {
    const Request& r = requests_[id];
    index_t chunk = r.prefill_target() - r.prefilled;
    if (cfg_.prefill_chunk_tokens > 0) {
      chunk = std::min(chunk, cfg_.prefill_chunk_tokens);
    }
    total_new += static_cast<double>(chunk);
  }
  const auto count = static_cast<index_t>(s_.prefilling.size());
  // Mean new tokens per sequence prices the chunk; with a uniform
  // flight (the goldens path) this is exactly each sequence's prompt.
  const auto tokens_per_seq = static_cast<index_t>(
      std::llround(total_new / static_cast<double>(count)));
  const double t0 = s_.now;
  s_.now +=
      model_.prefill_seconds(count, std::max<index_t>(1, tokens_per_seq));
  ++s_.prefill_steps;
  if (s_.obs != nullptr) {
    s_.obs->on_prefill_step(t0, s_.now, s_.replica_id, count,
                            std::max<index_t>(1, tokens_per_seq));
  }

  // Stable in-place compaction (the write index trails the read index),
  // so no per-round vector is allocated.
  std::size_t keep = 0;
  for (const std::size_t id : s_.prefilling) {
    Request& r = requests_[id];
    index_t chunk = r.prefill_target() - r.prefilled;
    if (cfg_.prefill_chunk_tokens > 0) {
      chunk = std::min(chunk, cfg_.prefill_chunk_tokens);
    }
    r.prefilled += chunk;
    add_service(r.tenant_id, chunk);
    if (r.prefilled < r.prefill_target()) {
      s_.prefilling[keep++] = id;
      continue;
    }
    r.set_state(RequestState::kRunning);
    // The prompt KV now exists: publish the hashed blocks into the prefix
    // cache (no-op when the cache is off), then fork the extra sampling
    // sequences — they share every prompt block until their first
    // divergent write copy-on-writes the tail.
    s_.bm.publish(r.blocks);
    if (r.num_sequences > 1 && r.forks.empty()) {
      const index_t per_seq =
          s_.bm.blocks_for_tokens(r.max_kv_tokens());
      r.forks.reserve(static_cast<std::size_t>(r.num_sequences - 1));
      for (index_t k = 1; k < r.num_sequences; ++k) {
        r.forks.push_back(s_.bm.fork(r.blocks, r.tenant_id, per_seq));
      }
    }
    const bool first_token = r.first_token_s < 0;
    if (first_token) {
      r.first_token_s = s_.now;  // prefill emits #1
      if (cfg_.slo.ttft_deadline_ms > 0 &&
          request_ttft_ms(r) > cfg_.slo.ttft_deadline_ms) {
        ++s_.slo_ttft_violations;
        if (s_.obs != nullptr) s_.obs->on_slo_ttft_violation(s_.now, r.id);
      }
    }
    if (s_.obs != nullptr) {
      s_.obs->on_prefill_done(s_.now, r.id, first_token,
                              first_token ? request_ttft_ms(r) : 0.0);
    }
    r.generated = std::max<index_t>(r.generated, 1);
    s_.running.push_back(id);
  }
  s_.prefilling.resize(keep);
}

void Ticker::decode_round() {
  const SpeculationConfig& spec = cfg_.speculation;

  // Grow every running sequence's KV for the tokens this step commits
  // (one for plain decode, the speculative commit otherwise); preempt
  // the policy's victim when the budget runs dry.
  for (std::size_t i = 0; i < s_.running.size();) {
    Request& r = requests_[s_.running[i]];
    // KV the sequences have written so far: the last emitted token's KV
    // lands during this step, hence the -1. Every sequence of an n>1
    // request decodes in lockstep, so target and write range are shared;
    // growth past a still-shared block copy-on-writes it first.
    const index_t target =
        r.prompt_tokens + r.generated + commit_tokens(r) - 1;
    const index_t covered = r.prompt_tokens + r.generated - 1;
    bool preempted_self = false;
    for (std::size_t h = 0; h <= r.forks.size() && !preempted_self; ++h) {
      SequenceBlocks& seq = h == 0 ? r.blocks : r.forks[h - 1];
      while (!s_.bm.grow_to(seq, target, covered, r.tenant_id)) {
        MARLIN_ASSERT(!s_.running.empty());
        const std::size_t victim = choose_victim_pos();
        preempted_self = victim == i;
        preempt_running_at(victim);
        if (preempted_self) break;
        if (victim < i) --i;  // `r` shifted one slot left; keep growing it
      }
    }
    if (!preempted_self) ++i;
  }
  if (s_.running.empty()) return;

  // One decode step for all running sequences: a plain one-token step,
  // or a speculative round (draft proposes `depth` tokens sequentially,
  // the target verifies every candidate in one batched step).
  double ctx_sum = 0.0;
  index_t batch = 0;
  for (const std::size_t id : s_.running) {
    const Request& q = requests_[id];
    // Each of the n sampled sequences occupies a batch slot with the
    // same context length (lockstep decoding).
    batch += q.num_sequences;
    ctx_sum += static_cast<double>(q.num_sequences) *
               (static_cast<double>(q.prompt_tokens) +
                static_cast<double>(q.generated));
  }
  const double avg_ctx = ctx_sum / static_cast<double>(batch);
  const double t0 = s_.now;
  double t_step;
  if (spec.enabled()) {
    t_step = static_cast<double>(spec.depth) *
                 draft_->decode_step_seconds(batch, avg_ctx) +
             model_.verify_step_seconds(batch, avg_ctx, spec.depth);
    ++s_.spec_rounds;
    s_.spec_draft_tokens += spec.depth * batch;
  } else {
    t_step = model_.decode_step_seconds(batch, avg_ctx);
  }
  s_.now += t_step;
  s_.batch_weighted += static_cast<double>(batch) * t_step;
  s_.decode_time_total += t_step;
  ++s_.decode_steps;
  if (s_.obs != nullptr) {
    if (spec.enabled()) {
      s_.obs->on_spec_round(t0, s_.now, s_.replica_id, batch,
                            spec.depth * batch);
    } else {
      s_.obs->on_decode_step(t0, s_.now, s_.replica_id, batch, avg_ctx);
    }
    double compute_s = 0, comm_s = 0, bubble = 0;
    if (model_.decode_split(batch, avg_ctx, &compute_s, &comm_s, &bubble)) {
      s_.obs->on_decode_split(s_.now, s_.replica_id, compute_s, comm_s,
                              bubble);
    }
  }

  // Stable in-place compaction, as in prefill_round: a steady-state
  // decode tick must not allocate.
  std::size_t keep = 0;
  for (const std::size_t id : s_.running) {
    Request& r = requests_[id];
    const index_t committed = commit_tokens(r);
    if (spec.enabled()) {
      r.spec_credit =
          r.spec_credit + spec_expected_ - static_cast<double>(committed);
      s_.spec_committed_tokens += committed * r.num_sequences;
      if (s_.obs != nullptr) {
        s_.obs->on_spec_commit(committed * r.num_sequences);
      }
    }
    r.generated += committed;
    // Every sampled sequence consumes a batch slot, so WFQ charges the
    // tenant for all of them.
    add_service(r.tenant_id, committed * r.num_sequences);
    if (r.generated >= r.output_tokens) {
      r.finish_s = s_.now;
      if (cfg_.slo.tpot_deadline_ms > 0 &&
          request_tpot_ms(r) > cfg_.slo.tpot_deadline_ms) {
        ++s_.slo_tpot_violations;
        if (s_.obs != nullptr) s_.obs->on_slo_tpot_violation(s_.now, r.id);
      }
      r.set_state(RequestState::kFinished);
      s_.bm.release(r.blocks, r.tenant_id);
      for (SequenceBlocks& f : r.forks) s_.bm.release(f, r.tenant_id);
      r.forks.clear();
      if (s_.obs != nullptr) {
        s_.obs->on_finished(s_.now, r.id, r.tenant_id, r.generated,
                            request_ttft_ms(r), request_tpot_ms(r));
      }
    } else {
      s_.running[keep++] = id;
    }
  }
  s_.running.resize(keep);
}

void Ticker::step() {
  if (!s_.prefilling.empty()) {
    prefill_round();
    return;  // EventLoop re-checks arrivals before the next engine step
  }
  if (s_.running.empty()) return;
  decode_round();
}

}  // namespace

Scheduler::Scheduler(const StepModel& model, SchedulerConfig cfg,
                     const StepModel* draft_model)
    : model_(model), draft_model_(draft_model), cfg_(std::move(cfg)) {
  MARLIN_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  MARLIN_CHECK(cfg_.prefill_chunk_tokens >= 0, "negative prefill chunk");
  for (std::size_t i = 0; i < cfg_.tenants.size(); ++i) {
    cfg_.tenants[i].validate();
    for (std::size_t j = 0; j < i; ++j) {
      MARLIN_CHECK(cfg_.tenants[i].id != cfg_.tenants[j].id,
                   "duplicate tenant id " << cfg_.tenants[i].id);
    }
  }
  cfg_.speculation.validate();
  cfg_.slo.validate();
  MARLIN_CHECK(!cfg_.speculation.enabled() || draft_model_ != nullptr,
               "speculative decoding needs a draft StepModel");
  if (cfg_.policy == SchedPolicy::kWeightedFair) {
    MARLIN_CHECK(cfg_.wfq_aging_tokens_per_s > 0,
                 "WFQ needs a positive aging rate (starvation-proofness)");
    MARLIN_CHECK(cfg_.wfq_tier_penalty_tokens >= 0,
                 "negative WFQ tier penalty");
  }
  // Mirror the tenant specs' soft KV quotas into the block manager unless
  // quotas were configured there explicitly.
  if (cfg_.blocks.tenant_quotas.empty()) {
    for (const TenantSpec& t : cfg_.tenants) {
      if (t.kv_block_quota != kNoQuota) {
        cfg_.blocks.tenant_quotas.emplace_back(t.id, t.kv_block_quota);
      }
    }
  }
  if (cfg_.speculation.enabled()) {
    spec_expected_ = cfg_.speculation.expected_tokens_per_round();
  }
}

void Scheduler::register_tenants(ReplicaState& s,
                                 const std::vector<Request>& requests) const {
  for (const Request& r : requests) {
    if (!s.tenant_specs.contains(r.tenant_id)) {
      s.tenant_specs.emplace(r.tenant_id,
                             tenant_spec_or_default(cfg_.tenants, r.tenant_id));
      s.service_debt[r.tenant_id] = 0.0;
    }
  }
}

void Scheduler::admit(ReplicaState& s, std::vector<Request>& requests) const {
  Ticker(cfg_, model_, draft_model_, spec_expected_, s, requests).admit();
}

void Scheduler::step(ReplicaState& s, std::vector<Request>& requests) const {
  Ticker(cfg_, model_, draft_model_, spec_expected_, s, requests).step();
}

SchedStats Scheduler::run(const std::vector<TraceRequest>& trace,
                          const SimContext& ctx) const {
  cluster::ClusterStats stats =
      cluster::EventLoop(*this, cluster::ClusterOptions{}).run(trace, ctx);
  return std::move(stats.sched);
}

}  // namespace marlin::serve::sched
