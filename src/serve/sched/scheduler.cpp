#include "serve/sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace marlin::serve::sched {

const char* to_string(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFcfs:
      return "fcfs";
    case SchedPolicy::kShortestJob:
      return "sjf";
    case SchedPolicy::kMaxUtilization:
      return "max-util";
  }
  return "?";
}

SchedPolicy policy_by_name(const std::string& name) {
  for (const auto p : {SchedPolicy::kFcfs, SchedPolicy::kShortestJob,
                       SchedPolicy::kMaxUtilization}) {
    if (name == to_string(p)) return p;
  }
  MARLIN_CHECK(false, "unknown scheduling policy `"
                          << name << "`; known: fcfs, sjf, max-util");
  return SchedPolicy::kFcfs;  // unreachable
}

namespace {

/// Admission priority key; smaller admits first. FCFS keeps queue order.
index_t policy_key(SchedPolicy policy, const Request& r) {
  switch (policy) {
    case SchedPolicy::kFcfs:
      return 0;
    case SchedPolicy::kShortestJob:
      // Remaining service: prefill work plus the decode tokens still owed.
      return r.prefill_target() + (r.output_tokens - r.generated);
    case SchedPolicy::kMaxUtilization:
      // Smallest *lifetime* KV footprint packs the most sequences into
      // the budget; the admission scan skips over requests whose prefill
      // doesn't fit right now (e.g. a recompute-heavy preempted head).
      return r.max_kv_tokens();
  }
  return 0;
}

}  // namespace

Scheduler::Scheduler(const StepModel& model, SchedulerConfig cfg)
    : model_(model), cfg_(cfg) {
  MARLIN_CHECK(cfg_.max_batch >= 1, "max_batch must be >= 1");
  MARLIN_CHECK(cfg_.prefill_chunk_tokens >= 0, "negative prefill chunk");
}

SchedStats Scheduler::run(const std::vector<TraceRequest>& trace,
                          const SimContext& ctx) const {
  SchedStats stats;
  BlockManager bm(cfg_.blocks);

  std::vector<Request>& requests = stats.requests;
  requests.reserve(trace.size());
  index_t max_context = 1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    requests.emplace_back(static_cast<index_t>(i), trace[i].arrival_s,
                          trace[i].input_tokens, trace[i].output_tokens);
    max_context =
        std::max(max_context, trace[i].input_tokens + trace[i].output_tokens);
  }
  model_.warm_decode_cache(ctx, cfg_.max_batch,
                            static_cast<double>(max_context));

  std::deque<std::size_t> queue;
  std::vector<std::size_t> prefilling;  // admission order, this flight
  std::vector<std::size_t> running;     // admission order
  std::size_t next_arrival = 0;

  double now = 0.0;
  double batch_weighted = 0.0;
  double decode_time_total = 0.0;

  const auto admit_arrivals = [&](double upto) {
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_s <= upto) {
      queue.push_back(next_arrival);
      ++next_arrival;
    }
  };
  const auto active = [&] { return prefilling.size() + running.size(); };

  // A request that can never hold prompt + output tokens under the budget
  // (keeping the watermark free for its admission) would starve the queue
  // forever; refuse it outright.
  const auto never_fits = [&](const Request& r) {
    return !bm.unlimited() &&
           bm.blocks_for_tokens(r.max_kv_tokens()) + bm.watermark_blocks() >
               bm.total_blocks();
  };

  const auto preempt_last_running = [&] {
    const std::size_t victim = running.back();
    running.pop_back();
    Request& v = requests[victim];
    v.set_state(RequestState::kPreempted);
    bm.free(v.blocks);
    v.prefilled = 0;
    ++v.preemptions;
    ++stats.preemptions;
    queue.push_front(victim);
  };

  while (next_arrival < requests.size() || !queue.empty() ||
         !prefilling.empty() || !running.empty()) {
    admit_arrivals(now);

    if (queue.empty() && prefilling.empty() && running.empty()) {
      // Idle: jump to the next arrival.
      now = requests[next_arrival].arrival_s;
      admit_arrivals(now);
    }

    // Admission in policy order, bounded by batch cap and KV watermark.
    if (!queue.empty() && active() < static_cast<std::size_t>(cfg_.max_batch)) {
      std::vector<std::size_t> order(queue.begin(), queue.end());
      if (cfg_.policy != SchedPolicy::kFcfs) {
        std::stable_sort(order.begin(), order.end(),
                         [&](std::size_t a, std::size_t b) {
                           return policy_key(cfg_.policy, requests[a]) <
                                  policy_key(cfg_.policy, requests[b]);
                         });
      }
      std::vector<bool> taken(requests.size(), false);
      for (const std::size_t id : order) {
        if (active() >= static_cast<std::size_t>(cfg_.max_batch)) break;
        Request& r = requests[id];
        if (never_fits(r)) {
          r.rejected = true;
          r.set_state(RequestState::kFinished);
          ++stats.rejected;
          taken[id] = true;
          continue;
        }
        if (!bm.can_admit(r.prefill_target())) {
          // FCFS and SJF respect head-of-line order; max-util keeps
          // scanning for anything that still fits.
          if (cfg_.policy == SchedPolicy::kMaxUtilization) continue;
          break;
        }
        r.blocks = bm.allocate(bm.blocks_for_tokens(r.prefill_target()));
        r.set_state(RequestState::kPrefilling);
        r.prefilled = 0;
        prefilling.push_back(id);
        taken[id] = true;
      }
      std::erase_if(queue, [&](std::size_t id) { return taken[id]; });
    }

    // One prefill chunk round over the whole prefill flight.
    if (!prefilling.empty()) {
      double total_new = 0.0;
      for (const std::size_t id : prefilling) {
        const Request& r = requests[id];
        index_t chunk = r.prefill_target() - r.prefilled;
        if (cfg_.prefill_chunk_tokens > 0) {
          chunk = std::min(chunk, cfg_.prefill_chunk_tokens);
        }
        total_new += static_cast<double>(chunk);
      }
      const auto count = static_cast<index_t>(prefilling.size());
      // Mean new tokens per sequence prices the chunk; with a uniform
      // flight (the goldens path) this is exactly each sequence's prompt.
      const auto tokens_per_seq = static_cast<index_t>(
          std::llround(total_new / static_cast<double>(count)));
      now += model_.prefill_seconds(count, std::max<index_t>(1,
                                                              tokens_per_seq));
      ++stats.prefill_steps;

      std::vector<std::size_t> still_prefilling;
      for (const std::size_t id : prefilling) {
        Request& r = requests[id];
        index_t chunk = r.prefill_target() - r.prefilled;
        if (cfg_.prefill_chunk_tokens > 0) {
          chunk = std::min(chunk, cfg_.prefill_chunk_tokens);
        }
        r.prefilled += chunk;
        if (r.prefilled < r.prefill_target()) {
          still_prefilling.push_back(id);
          continue;
        }
        r.set_state(RequestState::kRunning);
        if (r.first_token_s < 0) r.first_token_s = now;  // prefill emits #1
        r.generated = std::max<index_t>(r.generated, 1);
        running.push_back(id);
      }
      prefilling = std::move(still_prefilling);
      continue;  // re-check arrivals before the next engine step
    }

    if (running.empty()) continue;

    // Grow every running sequence's KV for the token this step writes;
    // preempt from the back (lowest priority) when the budget runs dry.
    for (std::size_t i = 0; i < running.size();) {
      Request& r = requests[running[i]];
      bool preempted_self = false;
      while (!bm.grow_to(r.blocks, r.prompt_tokens + r.generated)) {
        MARLIN_ASSERT(!running.empty());
        preempted_self = running.back() == running[i];
        preempt_last_running();
        if (preempted_self) break;
      }
      if (!preempted_self) ++i;
    }
    if (running.empty()) continue;

    // One decode step for all running sequences.
    double ctx_sum = 0.0;
    for (const std::size_t id : running) {
      ctx_sum += static_cast<double>(requests[id].prompt_tokens) +
                 static_cast<double>(requests[id].generated);
    }
    const auto batch = static_cast<index_t>(running.size());
    const double t_step = model_.decode_step_seconds(
        batch, ctx_sum / static_cast<double>(batch));
    now += t_step;
    batch_weighted += static_cast<double>(batch) * t_step;
    decode_time_total += t_step;
    ++stats.decode_steps;

    std::vector<std::size_t> still_running;
    for (const std::size_t id : running) {
      Request& r = requests[id];
      ++r.generated;
      if (r.generated >= r.output_tokens) {
        r.finish_s = now;
        r.set_state(RequestState::kFinished);
        bm.free(r.blocks);
      } else {
        still_running.push_back(id);
      }
    }
    running = std::move(still_running);
  }

  ServingMetrics& m = stats.metrics;
  std::vector<double> tpots, ttfts;
  for (const Request& r : requests) {
    if (r.finish_s < 0) continue;
    ++m.completed;
    ttfts.push_back((r.first_token_s - r.arrival_s) * 1e3);
    tpots.push_back((r.finish_s - r.first_token_s) /
                    static_cast<double>(std::max<index_t>(
                        1, r.output_tokens - 1)) *
                    1e3);
  }
  if (!tpots.empty()) {
    m.mean_tpot_ms = mean(tpots);
    m.mean_ttft_ms = mean(ttfts);
    m.p90_tpot_ms = percentile(tpots, 90.0);
    m.p90_ttft_ms = percentile(ttfts, 90.0);
  }
  m.mean_batch =
      decode_time_total > 0 ? batch_weighted / decode_time_total : 0.0;
  stats.peak_kv_blocks = bm.peak_used_blocks();
  stats.sim_end_s = now;
  return stats;
}

}  // namespace marlin::serve::sched
