#include "serve/sched/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace marlin::serve::sched {

const char* to_string(WorkloadShape s) {
  switch (s) {
    case WorkloadShape::kPoisson:
      return "poisson";
    case WorkloadShape::kBursty:
      return "bursty";
    case WorkloadShape::kShareGpt:
      return "sharegpt";
  }
  return "?";
}

WorkloadShape workload_by_name(const std::string& name) {
  for (const auto s : {WorkloadShape::kPoisson, WorkloadShape::kBursty,
                       WorkloadShape::kShareGpt}) {
    if (name == to_string(s)) return s;
  }
  MARLIN_CHECK(false, "unknown workload `" << name
                                           << "`; known: poisson, bursty, "
                                              "sharegpt");
  return WorkloadShape::kPoisson;  // unreachable
}

namespace {

/// Log-normal token length with median `median`, clamped to [lo, hi].
index_t lognormal_tokens(Rng& rng, index_t median, double sigma, index_t lo,
                         index_t hi) {
  const double x =
      static_cast<double>(median) * std::exp(sigma * rng.normal());
  const auto t = static_cast<index_t>(std::llround(x));
  return std::clamp(t, lo, hi);
}

std::vector<TraceRequest> poisson_trace(const WorkloadConfig& cfg, Rng& rng,
                                        bool lognormal_lengths) {
  // NOTE: for fixed lengths this draw sequence is the exact arrival
  // process of the pre-subsystem `simulate_serving`, which the fig15/16
  // goldens pin down — lengths (when log-normal) are drawn *after* each
  // arrival so the arrival times themselves stay on the same stream.
  std::vector<TraceRequest> trace;
  double t = 0.0;
  while (t < cfg.duration_s) {
    t += rng.exponential(cfg.qps);
    if (t >= cfg.duration_s) break;
    TraceRequest r;
    r.arrival_s = t;
    if (lognormal_lengths) {
      r.input_tokens = lognormal_tokens(rng, cfg.input_tokens,
                                        cfg.length_sigma, cfg.min_tokens,
                                        cfg.max_input_tokens);
      r.output_tokens = lognormal_tokens(rng, cfg.output_tokens,
                                         cfg.length_sigma, cfg.min_tokens,
                                         cfg.max_output_tokens);
    } else {
      r.input_tokens = cfg.input_tokens;
      r.output_tokens = cfg.output_tokens;
    }
    trace.push_back(r);
  }
  return trace;
}

std::vector<TraceRequest> bursty_trace(const WorkloadConfig& cfg, Rng& rng) {
  // Interrupted Poisson: exponential ON windows at rate qps * (on+off)/on
  // separated by exponential OFF gaps, so the long-run mean rate is qps.
  const double cycle = cfg.burst_on_s + cfg.burst_off_s;
  const double on_rate = cfg.qps * cycle / cfg.burst_on_s;
  std::vector<TraceRequest> trace;
  double window_start = 0.0;
  while (window_start < cfg.duration_s) {
    const double on_len = rng.exponential(1.0 / cfg.burst_on_s);
    const double window_end =
        std::min(window_start + on_len, cfg.duration_s);
    double t = window_start;
    while (true) {
      t += rng.exponential(on_rate);
      if (t >= window_end) break;
      trace.push_back({t, cfg.input_tokens, cfg.output_tokens});
    }
    window_start = window_end + rng.exponential(1.0 / cfg.burst_off_s);
  }
  return trace;
}

}  // namespace

namespace {

/// Tags each request with a tenant drawn from the share mix. Runs on its
/// own RNG stream (`seed` xor a fixed salt) so the base trace — arrival
/// times and lengths — is bit-identical with and without a mix.
void assign_tenants(const WorkloadConfig& cfg,
                    std::vector<TraceRequest>& trace) {
  if (cfg.tenant_shares.empty()) return;
  double total = 0.0;
  for (const double s : cfg.tenant_shares) {
    MARLIN_CHECK(s >= 0.0, "tenant shares must be >= 0");
    total += s;
  }
  MARLIN_CHECK(total > 0.0, "tenant mix needs at least one positive share");
  constexpr std::uint64_t kTenantStreamSalt = 0x7E6A2C55D1B4F09Bull;
  Rng rng(cfg.seed ^ kTenantStreamSalt);
  for (auto& r : trace) {
    double u = rng.uniform() * total;
    // Conventional fall-back to the *last* bracket: if rounding leaves u
    // non-negative after every subtraction, the draw belongs to the tail.
    index_t tenant = static_cast<index_t>(cfg.tenant_shares.size()) - 1;
    for (std::size_t i = 0; i < cfg.tenant_shares.size(); ++i) {
      u -= cfg.tenant_shares[i];
      if (u < 0.0) {
        tenant = static_cast<index_t>(i);
        break;
      }
    }
    r.tenant_id = tenant;
  }
}

}  // namespace

std::vector<TraceRequest> generate_trace(const WorkloadConfig& cfg) {
  MARLIN_CHECK(cfg.qps > 0, "QPS must be positive");
  MARLIN_CHECK(cfg.duration_s > 0, "duration must be positive");
  MARLIN_CHECK(cfg.input_tokens >= 1 && cfg.output_tokens >= 1,
               "token counts must be >= 1");
  Rng rng(cfg.seed);
  std::vector<TraceRequest> trace;
  switch (cfg.shape) {
    case WorkloadShape::kPoisson:
      trace = poisson_trace(cfg, rng, /*lognormal_lengths=*/false);
      break;
    case WorkloadShape::kShareGpt:
      trace = poisson_trace(cfg, rng, /*lognormal_lengths=*/true);
      break;
    case WorkloadShape::kBursty:
      trace = bursty_trace(cfg, rng);
      break;
  }
  assign_tenants(cfg, trace);
  return trace;
}

}  // namespace marlin::serve::sched
