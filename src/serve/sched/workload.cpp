#include "serve/sched/workload.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace marlin::serve::sched {

const char* to_string(WorkloadShape s) {
  switch (s) {
    case WorkloadShape::kPoisson:
      return "poisson";
    case WorkloadShape::kBursty:
      return "bursty";
    case WorkloadShape::kShareGpt:
      return "sharegpt";
  }
  return "?";
}

WorkloadShape workload_by_name(const std::string& name) {
  for (const auto s : {WorkloadShape::kPoisson, WorkloadShape::kBursty,
                       WorkloadShape::kShareGpt}) {
    if (name == to_string(s)) return s;
  }
  MARLIN_CHECK(false, "unknown workload `" << name
                                           << "`; known: poisson, bursty, "
                                              "sharegpt");
  return WorkloadShape::kPoisson;  // unreachable
}

namespace {

/// Log-normal token length with median `median`, clamped to [lo, hi].
index_t lognormal_tokens(Rng& rng, index_t median, double sigma, index_t lo,
                         index_t hi) {
  const double x =
      static_cast<double>(median) * std::exp(sigma * rng.normal());
  const auto t = static_cast<index_t>(std::llround(x));
  return std::clamp(t, lo, hi);
}

std::vector<TraceRequest> poisson_trace(const WorkloadConfig& cfg, Rng& rng,
                                        bool lognormal_lengths) {
  // NOTE: for fixed lengths this draw sequence is the exact arrival
  // process of the pre-subsystem `simulate_serving`, which the fig15/16
  // goldens pin down — lengths (when log-normal) are drawn *after* each
  // arrival so the arrival times themselves stay on the same stream.
  std::vector<TraceRequest> trace;
  double t = 0.0;
  while (t < cfg.duration_s) {
    t += rng.exponential(cfg.qps);
    if (t >= cfg.duration_s) break;
    TraceRequest r;
    r.arrival_s = t;
    if (lognormal_lengths) {
      r.input_tokens = lognormal_tokens(rng, cfg.input_tokens,
                                        cfg.length_sigma, cfg.min_tokens,
                                        cfg.max_input_tokens);
      r.output_tokens = lognormal_tokens(rng, cfg.output_tokens,
                                         cfg.length_sigma, cfg.min_tokens,
                                         cfg.max_output_tokens);
    } else {
      r.input_tokens = cfg.input_tokens;
      r.output_tokens = cfg.output_tokens;
    }
    trace.push_back(r);
  }
  return trace;
}

std::vector<TraceRequest> bursty_trace(const WorkloadConfig& cfg, Rng& rng) {
  // Interrupted Poisson: exponential ON windows at rate qps * (on+off)/on
  // separated by exponential OFF gaps, so the long-run mean rate is qps.
  const double cycle = cfg.burst_on_s + cfg.burst_off_s;
  const double on_rate = cfg.qps * cycle / cfg.burst_on_s;
  std::vector<TraceRequest> trace;
  double window_start = 0.0;
  while (window_start < cfg.duration_s) {
    const double on_len = rng.exponential(1.0 / cfg.burst_on_s);
    const double window_end =
        std::min(window_start + on_len, cfg.duration_s);
    double t = window_start;
    while (true) {
      t += rng.exponential(on_rate);
      if (t >= window_end) break;
      trace.push_back({t, cfg.input_tokens, cfg.output_tokens});
    }
    window_start = window_end + rng.exponential(1.0 / cfg.burst_off_s);
  }
  return trace;
}

}  // namespace

namespace {

/// Tags each request with a tenant drawn from the share mix. Runs on its
/// own RNG stream (`seed` xor a fixed salt) so the base trace — arrival
/// times and lengths — is bit-identical with and without a mix.
void assign_tenants(const WorkloadConfig& cfg,
                    std::vector<TraceRequest>& trace) {
  if (cfg.tenant_shares.empty()) return;
  double total = 0.0;
  for (const double s : cfg.tenant_shares) {
    MARLIN_CHECK(s >= 0.0, "tenant shares must be >= 0");
    total += s;
  }
  MARLIN_CHECK(total > 0.0, "tenant mix needs at least one positive share");
  constexpr std::uint64_t kTenantStreamSalt = 0x7E6A2C55D1B4F09Bull;
  Rng rng(cfg.seed ^ kTenantStreamSalt);
  for (auto& r : trace) {
    double u = rng.uniform() * total;
    // Conventional fall-back to the *last* bracket: if rounding leaves u
    // non-negative after every subtraction, the draw belongs to the tail.
    index_t tenant = static_cast<index_t>(cfg.tenant_shares.size()) - 1;
    for (std::size_t i = 0; i < cfg.tenant_shares.size(); ++i) {
      u -= cfg.tenant_shares[i];
      if (u < 0.0) {
        tenant = static_cast<index_t>(i);
        break;
      }
    }
    r.tenant_id = tenant;
  }
}

/// Tags a `shared_prefix_share` fraction of requests with one of
/// `shared_prefix_groups` shared system-prompt headers, prepending the
/// header's tokens to the prompt. Own RNG stream, same contract as
/// `assign_tenants`: the base trace never changes.
void assign_prefixes(const WorkloadConfig& cfg,
                     std::vector<TraceRequest>& trace) {
  if (cfg.shared_prefix_tokens <= 0) return;
  MARLIN_CHECK(cfg.shared_prefix_groups >= 1,
               "shared-prefix mix needs at least one group");
  MARLIN_CHECK(cfg.shared_prefix_share >= 0.0 &&
                   cfg.shared_prefix_share <= 1.0,
               "shared_prefix_share must be in [0, 1]");
  constexpr std::uint64_t kPrefixStreamSalt = 0x3C79AC492BA7B653ull;
  Rng rng(cfg.seed ^ kPrefixStreamSalt);
  for (auto& r : trace) {
    // Both draws happen for every request so one request's tag never
    // shifts another's (insensitive to `share`).
    const double u = rng.uniform();
    const double g = rng.uniform();
    if (u >= cfg.shared_prefix_share) continue;
    r.prefix_id = std::min(
        static_cast<index_t>(g *
                             static_cast<double>(cfg.shared_prefix_groups)),
        cfg.shared_prefix_groups - 1);
    r.prefix_tokens = cfg.shared_prefix_tokens;
    r.input_tokens += cfg.shared_prefix_tokens;
  }
}

}  // namespace

std::vector<TraceRequest> generate_trace(const WorkloadConfig& cfg) {
  MARLIN_CHECK(cfg.qps > 0, "QPS must be positive");
  MARLIN_CHECK(cfg.duration_s > 0, "duration must be positive");
  MARLIN_CHECK(cfg.input_tokens >= 1 && cfg.output_tokens >= 1,
               "token counts must be >= 1");
  MARLIN_CHECK(cfg.shared_prefix_tokens >= 0,
               "negative shared-prefix length");
  MARLIN_CHECK(cfg.sampling_n >= 1, "sampling_n must be >= 1");
  Rng rng(cfg.seed);
  std::vector<TraceRequest> trace;
  switch (cfg.shape) {
    case WorkloadShape::kPoisson:
      trace = poisson_trace(cfg, rng, /*lognormal_lengths=*/false);
      break;
    case WorkloadShape::kShareGpt:
      trace = poisson_trace(cfg, rng, /*lognormal_lengths=*/true);
      break;
    case WorkloadShape::kBursty:
      trace = bursty_trace(cfg, rng);
      break;
  }
  assign_tenants(cfg, trace);
  assign_prefixes(cfg, trace);
  if (cfg.sampling_n > 1) {
    for (auto& r : trace) r.num_sequences = cfg.sampling_n;
  }
  return trace;
}

}  // namespace marlin::serve::sched
