#pragma once
// Multi-tenant serving: who a request belongs to and what that tenant is
// entitled to.
//
// A tenant is one customer / traffic class sharing the serving instance.
// Its spec carries the three knobs the weighted-fair-queuing scheduler
// arbitrates on:
//
//   * `weight`  — WFQ share. Admission orders requests by their tenant's
//     weighted service debt (tokens served / weight), so a weight-4 tenant
//     is entitled to 4x the tokens of a weight-1 tenant under contention.
//   * `tier`    — priority tier (lower = more latency-critical). A tier
//     adds a fixed service-debt penalty, so interactive traffic overtakes
//     batch traffic until aging erases the gap (starvation-proof).
//   * `kv_block_quota` — soft per-tenant cap on KV-cache blocks.
//     kNoQuota (-1) = unquoted; 0 = borrow-only (any held block counts as
//     over-quota); > 0 = the tenant's fair share of the paged cache.
//     Quotas never block allocation while free blocks exist ("borrow");
//     when the cache runs dry, preemption reclaims from the most
//     over-quota tenant first ("reclaim").
//
// `traffic_share` feeds the workload generator's tenant mix — it shapes
// the trace, not the scheduler.

#include <string>
#include <vector>

#include "util/matrix.hpp"

namespace marlin::serve::sched {

/// `TenantSpec::kv_block_quota` value meaning "no quota configured".
inline constexpr index_t kNoQuota = -1;

struct TenantSpec {
  index_t id = 0;
  std::string name = "default";
  double weight = 1.0;             // WFQ share; must be > 0
  int tier = 0;                    // priority tier, lower = higher priority
  index_t kv_block_quota = kNoQuota;  // soft KV block cap (see header)
  double traffic_share = 1.0;      // workload-mix share; must be > 0

  void validate() const;
};

/// Looks up `tenant_id` in `tenants`; returns a default-constructed spec
/// (weight 1, tier 0, no quota) with that id when absent, so requests from
/// unconfigured tenants are legal and neutral.
[[nodiscard]] TenantSpec tenant_spec_or_default(
    const std::vector<TenantSpec>& tenants, index_t tenant_id);

}  // namespace marlin::serve::sched
