#include "serve/sched/request.hpp"

#include "util/error.hpp"

namespace marlin::serve::sched {

const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kPrefilling:
      return "prefilling";
    case RequestState::kRunning:
      return "running";
    case RequestState::kPreempted:
      return "preempted";
    case RequestState::kFinished:
      return "finished";
  }
  return "?";
}

bool transition_allowed(RequestState from, RequestState to) {
  switch (from) {
    case RequestState::kQueued:
      // Admission starts prefill; rejection finishes without running.
      return to == RequestState::kPrefilling || to == RequestState::kFinished;
    case RequestState::kPrefilling:
      return to == RequestState::kRunning;
    case RequestState::kRunning:
      return to == RequestState::kPreempted || to == RequestState::kFinished;
    case RequestState::kPreempted:
      // Re-admission recomputes the KV from scratch.
      return to == RequestState::kPrefilling;
    case RequestState::kFinished:
      return false;
  }
  return false;
}

Request::Request(index_t id_, double arrival_s_, index_t prompt_tokens_,
                 index_t output_tokens_, index_t tenant_id_)
    : id(id_), arrival_s(arrival_s_), prompt_tokens(prompt_tokens_),
      output_tokens(output_tokens_), tenant_id(tenant_id_) {
  MARLIN_CHECK(prompt_tokens >= 1, "request needs at least one prompt token");
  MARLIN_CHECK(output_tokens >= 1, "request needs at least one output token");
  MARLIN_CHECK(tenant_id >= 0, "tenant id must be >= 0");
}

void Request::set_state(RequestState next) {
  MARLIN_CHECK(transition_allowed(state, next),
               "illegal request transition " << to_string(state) << " -> "
                                             << to_string(next) << " (id "
                                             << id << ")");
  state = next;
}

}  // namespace marlin::serve::sched
