#include "serve/sched/request.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace marlin::serve::sched {

const char* to_string(RequestState s) {
  switch (s) {
    case RequestState::kQueued:
      return "queued";
    case RequestState::kPrefilling:
      return "prefilling";
    case RequestState::kRunning:
      return "running";
    case RequestState::kPreempted:
      return "preempted";
    case RequestState::kFinished:
      return "finished";
  }
  return "?";
}

bool transition_allowed(RequestState from, RequestState to) {
  switch (from) {
    case RequestState::kQueued:
      // Admission starts prefill; rejection finishes without running.
      return to == RequestState::kPrefilling || to == RequestState::kFinished;
    case RequestState::kPrefilling:
      return to == RequestState::kRunning;
    case RequestState::kRunning:
      return to == RequestState::kPreempted || to == RequestState::kFinished;
    case RequestState::kPreempted:
      // Re-admission recomputes the KV from scratch.
      return to == RequestState::kPrefilling;
    case RequestState::kFinished:
      return false;
  }
  return false;
}

Request::Request(index_t id_, double arrival_s_, index_t prompt_tokens_,
                 index_t output_tokens_, index_t tenant_id_)
    : id(id_), arrival_s(arrival_s_), prompt_tokens(prompt_tokens_),
      output_tokens(output_tokens_), tenant_id(tenant_id_) {
  MARLIN_CHECK(prompt_tokens >= 1, "request needs at least one prompt token");
  MARLIN_CHECK(output_tokens >= 1, "request needs at least one output token");
  MARLIN_CHECK(tenant_id >= 0, "tenant id must be >= 0");
}

index_t Request::max_kv_blocks(index_t block_size) const {
  const index_t per_seq = (max_kv_tokens() + block_size - 1) / block_size;
  // Blocks fully inside the prompt stay shared across sequences; the
  // partial tail block (if any) is CoW-copied per sequence on the first
  // decode write, so it counts per sequence.
  const index_t shared = std::min(prompt_tokens / block_size, per_seq);
  return shared + num_sequences * (per_seq - shared);
}

index_t Request::hashable_prefix_blocks(index_t block_size) const {
  if (prefix_id < 0) return 0;
  return std::min(prefix_tokens, prompt_tokens) / block_size;
}

void Request::append_prefix_chain(index_t block_size, index_t max_blocks,
                                  std::vector<std::uint64_t>& out) const {
  out.clear();
  const index_t blocks =
      std::min(hashable_prefix_blocks(block_size), max_blocks);
  if (blocks <= 0) return;
  const std::uint64_t base =
      util::mix64(kPrefixKeySalt ^ static_cast<std::uint64_t>(prefix_id));
  std::uint64_t h = kPrefixHashSeed;
  for (index_t j = 0; j < blocks; ++j) {
    const std::uint64_t key = util::mix64(base + static_cast<std::uint64_t>(j));
    h = util::mix64(h ^ key);
    out.push_back(h);
  }
}

void Request::set_state(RequestState next) {
  MARLIN_CHECK(transition_allowed(state, next),
               "illegal request transition " << to_string(state) << " -> "
                                             << to_string(next) << " (id "
                                             << id << ")");
  state = next;
}

}  // namespace marlin::serve::sched
