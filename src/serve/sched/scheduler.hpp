#pragma once
// Continuous-batching scheduler policy over the engine cost model.
//
// The Scheduler is a *passive* per-replica policy object: it owns no
// clock and no loop. The cluster-level `cluster::EventLoop` (which owns
// the discrete-event clock for a whole fleet of replicas) *ticks* it —
// one `admit` pass plus one `step` per tick — against a `ReplicaState`
// holding that replica's mutable serving state. Each tick:
//
//   1. (EventLoop) arrivals up to the replica's clock join its queue;
//   2. `admit`: queued requests are admitted in policy order while the
//      batch cap and the KV watermark allow, allocating their prefill
//      blocks; hopeless requests are shed when an SLO is configured;
//   3. `step`: if any request is prefilling, one chunked-prefill step
//      runs (the whole remaining prompt when `prefill_chunk_tokens` is
//      0) — newly arrived requests can join the prefill flight between
//      chunks;
//   4. otherwise one decode step advances every running sequence by one
//      token. Before the step each sequence's KV is grown into fresh
//      blocks; when the budget is exhausted the *last-admitted* running
//      sequence is preempted (blocks freed, recompute on re-admission,
//      re-queued at the front).
//
// `Scheduler::run` is the single-replica convenience wrapper: it drives
// a 1-replica `cluster::EventLoop`, which reduces — engine call for
// engine call, floating-point add for add — to the original
// `simulate_serving` loop, which the fig15/fig16 goldens pin down.
//
// The event loop is strictly serial (its results are part of the
// bit-identical-across-threads contract); parallelism comes from warming
// the engine's decode memo on the SimContext pool before the loop runs.

// Multi-tenant weighted fair queuing (`--policy wfq`): requests carry a
// tenant id; admission orders the queue by each tenant's weighted service
// debt (tokens served / WFQ weight) plus a fixed priority-tier penalty,
// minus a linear aging credit — a waiting request's key falls without
// bound, so no tier or debt can starve it. Per-tenant KV quotas are soft:
// tenants borrow free blocks past their quota, and both admission and
// decode-growth preemption reclaim from the most over-quota tenant first.
//
// Speculative decoding (`SpeculationConfig`): a cheap draft model proposes
// `depth` tokens per round; the target model verifies all candidates in
// one batched step (`StepModel::verify_step_seconds`). Accepted-token
// counts follow the expected value of i.i.d. per-token acceptance through
// a per-request fractional accumulator, so a round commits a
// deterministic integer number of tokens — results stay bit-identical at
// every thread count. Composes with chunked prefill, preemption (a victim
// keeps its accumulator; its committed tokens are recomputed like any
// others), and the tensor/pipeline-parallel ParallelEngine.

#include <cstdint>
#include <deque>
#include <map>
#include <utility>
#include <vector>

#include "serve/engine.hpp"
#include "serve/sched/block_manager.hpp"
#include "serve/sched/request.hpp"
#include "serve/sched/tenant.hpp"
#include "serve/sched/workload.hpp"
#include "util/sim_context.hpp"

namespace marlin::obs {
class ServeRecorder;
}  // namespace marlin::obs

namespace marlin::serve {

/// Aggregate latency metrics of one serving simulation. Field set and
/// semantics predate the scheduler subsystem — golden tables and the
/// `simulate_serving` API depend on them.
struct ServingMetrics {
  double mean_tpot_ms = 0;  // time per output token (after the first)
  double mean_ttft_ms = 0;  // time to first token
  double p50_tpot_ms = 0;
  double p90_tpot_ms = 0;
  double p99_tpot_ms = 0;
  double p90_ttft_ms = 0;
  double mean_batch = 0;  // average decode batch the engine observed
  index_t completed = 0;
};

namespace sched {

enum class SchedPolicy {
  kFcfs,            // arrival order; preempted requests re-queue in front
  kShortestJob,     // least remaining work (prompt + remaining output) first
  kMaxUtilization,  // smallest lifetime KV footprint first, skipping
                    // non-fitting requests so admission packs the budget
  kWeightedFair,    // multi-tenant weighted fair queuing with priority
                    // tiers, starvation-proof aging and soft KV quotas
};

const char* to_string(SchedPolicy p);
/// Parses "fcfs" / "sjf" / "max-util" / "wfq"; throws on anything else.
SchedPolicy policy_by_name(const std::string& name);

/// Draft-model speculative decoding knobs. `depth == 0` disables
/// speculation and the scheduler's decode path is untouched.
struct SpeculationConfig {
  /// Draft tokens proposed per propose-then-verify round.
  index_t depth = 0;
  /// i.i.d. probability the target model accepts one draft token.
  double acceptance = 0.7;

  [[nodiscard]] bool enabled() const { return depth > 0; }
  /// Expected committed tokens per round: the accepted draft prefix plus
  /// the target model's own token, sum_{i=0..depth} acceptance^i.
  [[nodiscard]] double expected_tokens_per_round() const;
  void validate() const;
};

/// Per-request streaming service-level objectives. Deadlines of 0 are
/// "no deadline" — the default, which leaves every legacy code path and
/// golden untouched.
///
/// * `ttft_deadline_ms` drives **deadline-aware admission with
///   shed-on-hopeless**: at every admission pass a queued request whose
///   best case — admitted right now, prefilled alone — would already
///   miss the deadline is shed (state kFinished, `Request::shed`, no
///   tokens produced) instead of wasting KV blocks and batch slots on a
///   response the client has timed out on. Requests that already
///   emitted their first token (preempted ones) are never shed.
/// * `tpot_deadline_ms` is accounted, not enforced: a completed request
///   whose realized TPOT exceeds it counts as a violation
///   (`SchedStats::slo_tpot_violations`), as does a completed request
///   that was admitted in time but still missed its TTFT deadline.
struct SloConfig {
  double ttft_deadline_ms = 0;  // 0 = no TTFT deadline
  double tpot_deadline_ms = 0;  // 0 = no TPOT deadline

  [[nodiscard]] bool enabled() const {
    return ttft_deadline_ms > 0 || tpot_deadline_ms > 0;
  }
  void validate() const;
};

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFcfs;
  index_t max_batch = 128;
  /// Per-sequence prefill chunk in tokens; 0 = whole prompt in one step.
  index_t prefill_chunk_tokens = 0;
  BlockManagerConfig blocks;  // num_blocks == 0 keeps the KV unlimited

  /// Tenant catalog for kWeightedFair (weights, tiers, quotas). Requests
  /// from tenants absent here get a neutral default spec. The specs'
  /// `kv_block_quota`s are mirrored into `blocks.tenant_quotas` by the
  /// Scheduler constructor unless quotas were configured explicitly.
  std::vector<TenantSpec> tenants;
  /// WFQ tier spacing: one priority tier outranks this many tokens of
  /// weighted service debt.
  double wfq_tier_penalty_tokens = 8192.0;
  /// WFQ aging: waiting one second forgives this many tokens of weighted
  /// service debt (and, eventually, any tier penalty) — the
  /// starvation-proofness knob. Must be > 0 under kWeightedFair.
  double wfq_aging_tokens_per_s = 256.0;

  /// Speculative decoding; requires a draft model when enabled.
  SpeculationConfig speculation;

  /// Streaming SLOs (TTFT shed-on-hopeless + TPOT violation accounting);
  /// disabled by default.
  SloConfig slo;
};

/// One replica's mutable serving state — everything the passive
/// Scheduler policy is ticked against. The cluster `EventLoop` owns one
/// per replica (wrapped in `cluster::Replica`); request objects
/// themselves live in the cluster-wide trace-order vector and are
/// referenced here by index.
struct ReplicaState {
  explicit ReplicaState(const BlockManagerConfig& blocks) : bm(blocks) {}

  BlockManager bm;
  std::deque<std::size_t> queue;        // waiting request indices
  std::vector<std::size_t> prefilling;  // admission order, this flight
  std::vector<std::size_t> running;     // admission order
  /// The replica's discrete-event clock: the time its last engine step
  /// completed. Advanced by `Scheduler::step` and (when idle) by the
  /// EventLoop jumping to the next routed arrival.
  double now = 0;

  // Decode-batch bookkeeping for ServingMetrics::mean_batch.
  double batch_weighted = 0;
  double decode_time_total = 0;

  // WFQ state: one resolved spec and one weighted service-debt counter
  // (tokens served / weight) per tenant appearing in the trace.
  std::map<index_t, TenantSpec> tenant_specs;
  std::map<index_t, double> service_debt;

  /// Reusable per-tick scratch buffers. Kept on the replica (not on the
  /// per-call Ticker) so a steady-state decode tick performs zero heap
  /// allocations — admission and the round compaction reuse the capacity
  /// grown on earlier ticks. Contents are meaningless between calls.
  struct TickScratch {
    /// Queue snapshot, rearranged into policy order by `admit`.
    std::vector<std::size_t> order;
    /// Precomputed WFQ `(key, request)` pairs for the stable sort.
    std::vector<std::pair<double, std::size_t>> keyed;
    /// Per-request "left the queue this pass" flags; lazily sized to the
    /// request vector and re-cleared (via `order`) after every pass.
    std::vector<std::uint8_t> taken;
    /// Chained prefix hashes of the request being admitted (prefix cache
    /// lookups reuse this buffer's capacity).
    std::vector<std::uint64_t> chain;
  };
  /// Scratch reused across `Scheduler::admit` / `Scheduler::step` ticks.
  TickScratch scratch;

  /// This replica's id in the cluster fleet (stamped by
  /// `cluster::Replica`); annotates observability events.
  index_t replica_id = 0;
  /// Borrowed observability recorder. Null — the default, and the only
  /// golden configuration — is the recording-off fast path: every
  /// instrumentation site reduces to one pointer test, so the
  /// allocation-free steady-state decode tick is preserved.
  obs::ServeRecorder* obs = nullptr;

  // Counters the EventLoop sums into SchedStats.
  index_t preemptions = 0;
  index_t rejected = 0;
  index_t shed = 0;
  index_t prefill_steps = 0;
  index_t decode_steps = 0;
  index_t spec_rounds = 0;
  index_t spec_draft_tokens = 0;
  index_t spec_committed_tokens = 0;
  index_t slo_ttft_violations = 0;
  index_t slo_tpot_violations = 0;
  /// Prompt tokens whose prefill was skipped because their KV came out of
  /// the prefix cache (block-level counters live on `bm`).
  index_t prefix_tokens_skipped = 0;

  /// Requests in flight or waiting — a busy replica must be ticked.
  [[nodiscard]] bool busy() const {
    return !queue.empty() || !prefilling.empty() || !running.empty();
  }
  /// Admitted sequences (prefilling + running).
  [[nodiscard]] std::size_t active() const {
    return prefilling.size() + running.size();
  }
};

/// Everything one simulation produced: the golden-stable metrics plus
/// scheduler-level counters and the final per-request states (trace
/// order) for policy-behaviour assertions.
struct SchedStats {
  ServingMetrics metrics;
  index_t preemptions = 0;
  index_t rejected = 0;  // could never fit in the KV budget
  index_t shed = 0;      // SLO shed-on-hopeless (kFinished, no tokens)
  index_t prefill_steps = 0;
  index_t decode_steps = 0;
  index_t peak_kv_blocks = 0;
  double sim_end_s = 0;
  /// SLO accounting (0 when no deadline is configured): completed
  /// requests that missed their TTFT / TPOT deadline.
  index_t slo_ttft_violations = 0;
  index_t slo_tpot_violations = 0;
  /// Speculative decoding counters (all 0 when speculation is off):
  /// propose-then-verify rounds, draft tokens proposed, tokens committed.
  index_t spec_rounds = 0;
  index_t spec_draft_tokens = 0;
  index_t spec_committed_tokens = 0;
  /// Prefix-cache / CoW-sharing counters, summed over replicas (all 0
  /// with the cache off and n=1 sampling). Hit blocks are exactly the
  /// physical allocations (and their recomputed prefill) saved; the
  /// hit-rate is hits / lookups.
  index_t prefix_cache_hit_blocks = 0;
  index_t prefix_cache_lookup_blocks = 0;
  index_t prefix_cache_evictions = 0;
  index_t prefix_tokens_skipped = 0;
  index_t cow_forks = 0;
  index_t cow_copies = 0;
  std::vector<Request> requests;
};

/// Per-tenant slice of one simulation's outcome, for fairness assertions
/// and the multi-tenant bench tables.
struct TenantMetrics {
  index_t tenant = 0;
  index_t completed = 0;
  index_t rejected = 0;
  index_t preemptions = 0;
  index_t output_tokens = 0;  // tokens generated for this tenant
  double mean_ttft_ms = 0;
  double mean_tpot_ms = 0;
};

/// Splits `stats.requests` by tenant id, ascending. Tenants that never
/// appear in the trace are absent.
[[nodiscard]] std::vector<TenantMetrics> per_tenant_metrics(
    const SchedStats& stats);

class Scheduler {
 public:
  /// Prices steps against any StepModel: the single-device `Engine` or
  /// the multi-GPU `parallel::ParallelEngine` (max over ranks plus
  /// interconnect communication). `draft_model` prices the speculative
  /// draft passes and is required iff `cfg.speculation` is enabled; it is
  /// not owned and must outlive the scheduler.
  Scheduler(const StepModel& model, SchedulerConfig cfg,
            const StepModel* draft_model = nullptr);

  /// Runs the trace to completion on a single replica — a convenience
  /// wrapper that drives a 1-replica `cluster::EventLoop` with default
  /// cluster options, reproducing the pre-cluster scheduler loop
  /// bit-for-bit. `ctx` only pre-warms the step model's decode memo
  /// (per-rank step evaluation on the shared pool); the stats are
  /// bit-identical for every context.
  [[nodiscard]] SchedStats run(
      const std::vector<TraceRequest>& trace,
      const SimContext& ctx = SimContext::serial_context()) const;

  // ---- passive tick API (driven by cluster::EventLoop) -----------------

  /// Fresh per-replica state carved to this scheduler's block budget.
  [[nodiscard]] ReplicaState make_replica_state() const {
    return ReplicaState(cfg_.blocks);
  }

  /// Registers every tenant appearing in `requests` in `s` (resolved
  /// spec + zeroed service debt), exactly as the legacy loop did before
  /// its first iteration. Idempotent; call once per replica before
  /// ticking (including replicas the autoscaler adds mid-run).
  void register_tenants(ReplicaState& s,
                        const std::vector<Request>& requests) const;

  /// One admission pass in policy order, bounded by the batch cap and KV
  /// watermark: rejects never-fitting requests, sheds SLO-hopeless ones,
  /// reclaims quota under WFQ, and moves admitted requests to
  /// `s.prefilling`.
  void admit(ReplicaState& s, std::vector<Request>& requests) const;

  /// One engine step at `s.now`: a chunked-prefill round if any request
  /// is prefilling, otherwise KV growth / preemption plus one decode (or
  /// speculative propose-then-verify) round for every running sequence.
  /// Advances `s.now`; a no-op when nothing is admitted.
  void step(ReplicaState& s, std::vector<Request>& requests) const;

  [[nodiscard]] const SchedulerConfig& config() const { return cfg_; }
  [[nodiscard]] const StepModel& model() const { return model_; }
  [[nodiscard]] const StepModel* draft_model() const { return draft_model_; }

 private:
  const StepModel& model_;
  const StepModel* draft_model_;
  SchedulerConfig cfg_;
  double spec_expected_ = 1.0;  // expected committed tokens per round
};

/// The legacy metrics tail over the final request states (trace order):
/// mean/p90 TTFT and TPOT over completed requests, plus the
/// decode-time-weighted mean batch. Field semantics predate the
/// scheduler subsystem — golden tables depend on them.
[[nodiscard]] ServingMetrics metrics_from_requests(
    const std::vector<Request>& requests, double batch_weighted,
    double decode_time_total);

}  // namespace sched
}  // namespace marlin::serve
