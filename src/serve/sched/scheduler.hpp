#pragma once
// Continuous-batching scheduler over the engine cost model.
//
// A discrete-event clock advances through engine steps (prefill chunks
// and decode steps). Each scheduling round:
//
//   1. arrivals up to `now` join the wait queue;
//   2. queued requests are admitted in policy order while the batch cap
//      and the KV watermark allow, allocating their prefill blocks;
//   3. if any request is prefilling, one chunked-prefill step runs (the
//      whole remaining prompt when `prefill_chunk_tokens` is 0) — newly
//      arrived requests can join the prefill flight between chunks;
//   4. otherwise one decode step advances every running sequence by one
//      token. Before the step each sequence's KV is grown into fresh
//      blocks; when the budget is exhausted the *last-admitted* running
//      sequence is preempted (blocks freed, recompute on re-admission,
//      re-queued at the front).
//
// Under FCFS, an unlimited block budget and unchunked prefill this
// reduces — engine call for engine call, floating-point add for add — to
// the original `simulate_serving` loop, which the fig15/fig16 goldens
// pin down.
//
// The event loop itself is strictly serial (its results are part of the
// bit-identical-across-threads contract); parallelism comes from warming
// the engine's decode memo on the SimContext pool before the loop runs.

#include <vector>

#include "serve/engine.hpp"
#include "serve/sched/block_manager.hpp"
#include "serve/sched/request.hpp"
#include "serve/sched/workload.hpp"
#include "util/sim_context.hpp"

namespace marlin::serve {

/// Aggregate latency metrics of one serving simulation. Field set and
/// semantics predate the scheduler subsystem — golden tables and the
/// `simulate_serving` API depend on them.
struct ServingMetrics {
  double mean_tpot_ms = 0;  // time per output token (after the first)
  double mean_ttft_ms = 0;  // time to first token
  double p90_tpot_ms = 0;
  double p90_ttft_ms = 0;
  double mean_batch = 0;  // average decode batch the engine observed
  index_t completed = 0;
};

namespace sched {

enum class SchedPolicy {
  kFcfs,            // arrival order; preempted requests re-queue in front
  kShortestJob,     // least remaining work (prompt + remaining output) first
  kMaxUtilization,  // smallest lifetime KV footprint first, skipping
                    // non-fitting requests so admission packs the budget
};

const char* to_string(SchedPolicy p);
/// Parses "fcfs" / "sjf" / "max-util"; throws on anything else.
SchedPolicy policy_by_name(const std::string& name);

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFcfs;
  index_t max_batch = 128;
  /// Per-sequence prefill chunk in tokens; 0 = whole prompt in one step.
  index_t prefill_chunk_tokens = 0;
  BlockManagerConfig blocks;  // num_blocks == 0 keeps the KV unlimited
};

/// Everything one simulation produced: the golden-stable metrics plus
/// scheduler-level counters and the final per-request states (trace
/// order) for policy-behaviour assertions.
struct SchedStats {
  ServingMetrics metrics;
  index_t preemptions = 0;
  index_t rejected = 0;  // could never fit in the KV budget
  index_t prefill_steps = 0;
  index_t decode_steps = 0;
  index_t peak_kv_blocks = 0;
  double sim_end_s = 0;
  std::vector<Request> requests;
};

class Scheduler {
 public:
  /// Prices steps against any StepModel: the single-device `Engine` or
  /// the multi-GPU `parallel::ParallelEngine` (max over ranks plus
  /// interconnect communication).
  Scheduler(const StepModel& model, SchedulerConfig cfg);

  /// Runs the trace to completion. `ctx` only pre-warms the step model's
  /// decode memo (per-rank step evaluation on the shared pool); the
  /// stats are bit-identical for every context.
  [[nodiscard]] SchedStats run(
      const std::vector<TraceRequest>& trace,
      const SimContext& ctx = SimContext::serial_context()) const;

 private:
  const StepModel& model_;
  SchedulerConfig cfg_;
};

}  // namespace sched
}  // namespace marlin::serve
