#pragma once
// Continuous-batching scheduler over the engine cost model.
//
// A discrete-event clock advances through engine steps (prefill chunks
// and decode steps). Each scheduling round:
//
//   1. arrivals up to `now` join the wait queue;
//   2. queued requests are admitted in policy order while the batch cap
//      and the KV watermark allow, allocating their prefill blocks;
//   3. if any request is prefilling, one chunked-prefill step runs (the
//      whole remaining prompt when `prefill_chunk_tokens` is 0) — newly
//      arrived requests can join the prefill flight between chunks;
//   4. otherwise one decode step advances every running sequence by one
//      token. Before the step each sequence's KV is grown into fresh
//      blocks; when the budget is exhausted the *last-admitted* running
//      sequence is preempted (blocks freed, recompute on re-admission,
//      re-queued at the front).
//
// Under FCFS, an unlimited block budget and unchunked prefill this
// reduces — engine call for engine call, floating-point add for add — to
// the original `simulate_serving` loop, which the fig15/fig16 goldens
// pin down.
//
// The event loop itself is strictly serial (its results are part of the
// bit-identical-across-threads contract); parallelism comes from warming
// the engine's decode memo on the SimContext pool before the loop runs.

// Multi-tenant weighted fair queuing (`--policy wfq`): requests carry a
// tenant id; admission orders the queue by each tenant's weighted service
// debt (tokens served / WFQ weight) plus a fixed priority-tier penalty,
// minus a linear aging credit — a waiting request's key falls without
// bound, so no tier or debt can starve it. Per-tenant KV quotas are soft:
// tenants borrow free blocks past their quota, and both admission and
// decode-growth preemption reclaim from the most over-quota tenant first.
//
// Speculative decoding (`SpeculationConfig`): a cheap draft model proposes
// `depth` tokens per round; the target model verifies all candidates in
// one batched step (`StepModel::verify_step_seconds`). Accepted-token
// counts follow the expected value of i.i.d. per-token acceptance through
// a per-request fractional accumulator, so a round commits a
// deterministic integer number of tokens — results stay bit-identical at
// every thread count. Composes with chunked prefill, preemption (a victim
// keeps its accumulator; its committed tokens are recomputed like any
// others), and the tensor/pipeline-parallel ParallelEngine.

#include <vector>

#include "serve/engine.hpp"
#include "serve/sched/block_manager.hpp"
#include "serve/sched/request.hpp"
#include "serve/sched/tenant.hpp"
#include "serve/sched/workload.hpp"
#include "util/sim_context.hpp"

namespace marlin::serve {

/// Aggregate latency metrics of one serving simulation. Field set and
/// semantics predate the scheduler subsystem — golden tables and the
/// `simulate_serving` API depend on them.
struct ServingMetrics {
  double mean_tpot_ms = 0;  // time per output token (after the first)
  double mean_ttft_ms = 0;  // time to first token
  double p90_tpot_ms = 0;
  double p90_ttft_ms = 0;
  double mean_batch = 0;  // average decode batch the engine observed
  index_t completed = 0;
};

namespace sched {

enum class SchedPolicy {
  kFcfs,            // arrival order; preempted requests re-queue in front
  kShortestJob,     // least remaining work (prompt + remaining output) first
  kMaxUtilization,  // smallest lifetime KV footprint first, skipping
                    // non-fitting requests so admission packs the budget
  kWeightedFair,    // multi-tenant weighted fair queuing with priority
                    // tiers, starvation-proof aging and soft KV quotas
};

const char* to_string(SchedPolicy p);
/// Parses "fcfs" / "sjf" / "max-util" / "wfq"; throws on anything else.
SchedPolicy policy_by_name(const std::string& name);

/// Draft-model speculative decoding knobs. `depth == 0` disables
/// speculation and the scheduler's decode path is untouched.
struct SpeculationConfig {
  /// Draft tokens proposed per propose-then-verify round.
  index_t depth = 0;
  /// i.i.d. probability the target model accepts one draft token.
  double acceptance = 0.7;

  [[nodiscard]] bool enabled() const { return depth > 0; }
  /// Expected committed tokens per round: the accepted draft prefix plus
  /// the target model's own token, sum_{i=0..depth} acceptance^i.
  [[nodiscard]] double expected_tokens_per_round() const;
  void validate() const;
};

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFcfs;
  index_t max_batch = 128;
  /// Per-sequence prefill chunk in tokens; 0 = whole prompt in one step.
  index_t prefill_chunk_tokens = 0;
  BlockManagerConfig blocks;  // num_blocks == 0 keeps the KV unlimited

  /// Tenant catalog for kWeightedFair (weights, tiers, quotas). Requests
  /// from tenants absent here get a neutral default spec. The specs'
  /// `kv_block_quota`s are mirrored into `blocks.tenant_quotas` by the
  /// Scheduler constructor unless quotas were configured explicitly.
  std::vector<TenantSpec> tenants;
  /// WFQ tier spacing: one priority tier outranks this many tokens of
  /// weighted service debt.
  double wfq_tier_penalty_tokens = 8192.0;
  /// WFQ aging: waiting one second forgives this many tokens of weighted
  /// service debt (and, eventually, any tier penalty) — the
  /// starvation-proofness knob. Must be > 0 under kWeightedFair.
  double wfq_aging_tokens_per_s = 256.0;

  /// Speculative decoding; requires a draft model when enabled.
  SpeculationConfig speculation;
};

/// Everything one simulation produced: the golden-stable metrics plus
/// scheduler-level counters and the final per-request states (trace
/// order) for policy-behaviour assertions.
struct SchedStats {
  ServingMetrics metrics;
  index_t preemptions = 0;
  index_t rejected = 0;  // could never fit in the KV budget
  index_t prefill_steps = 0;
  index_t decode_steps = 0;
  index_t peak_kv_blocks = 0;
  double sim_end_s = 0;
  /// Speculative decoding counters (all 0 when speculation is off):
  /// propose-then-verify rounds, draft tokens proposed, tokens committed.
  index_t spec_rounds = 0;
  index_t spec_draft_tokens = 0;
  index_t spec_committed_tokens = 0;
  std::vector<Request> requests;
};

/// Per-tenant slice of one simulation's outcome, for fairness assertions
/// and the multi-tenant bench tables.
struct TenantMetrics {
  index_t tenant = 0;
  index_t completed = 0;
  index_t rejected = 0;
  index_t preemptions = 0;
  index_t output_tokens = 0;  // tokens generated for this tenant
  double mean_ttft_ms = 0;
  double mean_tpot_ms = 0;
};

/// Splits `stats.requests` by tenant id, ascending. Tenants that never
/// appear in the trace are absent.
[[nodiscard]] std::vector<TenantMetrics> per_tenant_metrics(
    const SchedStats& stats);

class Scheduler {
 public:
  /// Prices steps against any StepModel: the single-device `Engine` or
  /// the multi-GPU `parallel::ParallelEngine` (max over ranks plus
  /// interconnect communication). `draft_model` prices the speculative
  /// draft passes and is required iff `cfg.speculation` is enabled; it is
  /// not owned and must outlive the scheduler.
  Scheduler(const StepModel& model, SchedulerConfig cfg,
            const StepModel* draft_model = nullptr);

  /// Runs the trace to completion. `ctx` only pre-warms the step model's
  /// decode memo (per-rank step evaluation on the shared pool); the
  /// stats are bit-identical for every context.
  [[nodiscard]] SchedStats run(
      const std::vector<TraceRequest>& trace,
      const SimContext& ctx = SimContext::serial_context()) const;

 private:
  const StepModel& model_;
  const StepModel* draft_model_;
  SchedulerConfig cfg_;
};

}  // namespace sched
}  // namespace marlin::serve
