#include "serve/sched/block_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace marlin::serve::sched {

namespace {
std::size_t uz(index_t i) { return static_cast<std::size_t>(i); }
}  // namespace

void PrefixCacheConfig::validate() const {
  MARLIN_CHECK(max_cached_blocks >= 0, "max cached blocks must be >= 0");
  MARLIN_CHECK(min_prefix_blocks >= 1, "min prefix blocks must be >= 1");
}

BlockManager::BlockManager(BlockManagerConfig cfg) : cfg_(std::move(cfg)) {
  MARLIN_CHECK(cfg_.block_size >= 1, "block size must be >= 1 token");
  MARLIN_CHECK(cfg_.num_blocks >= 0, "negative block budget");
  MARLIN_CHECK(cfg_.watermark >= 0.0 && cfg_.watermark < 1.0,
               "watermark must be in [0, 1)");
  cfg_.prefix_cache.validate();
  if (!unlimited()) {
    watermark_blocks_ = static_cast<index_t>(
        std::ceil(cfg_.watermark * static_cast<double>(cfg_.num_blocks)));
    free_list_.reserve(uz(cfg_.num_blocks));
    // Stack of ids; popping from the back hands out 0, 1, 2, ... first.
    for (index_t i = cfg_.num_blocks - 1; i >= 0; --i) free_list_.push_back(i);
    const std::size_t n = uz(cfg_.num_blocks);
    refcount_.assign(n, 0);
    hash_.assign(n, 0);
    hashed_.assign(n, 0);
    published_.assign(n, 0);
    parked_.assign(n, 0);
    lru_prev_.assign(n, -1);
    lru_next_.assign(n, -1);
    holder_head_.assign(n, -1);
    // Two nodes per block cover single ownership plus one shared
    // reference without the pool ever reallocating on the steady-state
    // decode path; deeper sharing grows it geometrically.
    node_tenant_.reserve(2 * n);
    node_next_.reserve(2 * n);
    if (cache_on()) table_.reserve(n);
  }
  for (const auto& [tenant, quota] : cfg_.tenant_quotas) {
    MARLIN_CHECK(tenant >= 0, "tenant id must be >= 0");
    MARLIN_CHECK(quota >= 0, "tenant " << tenant
                                       << " quota must be >= 0 blocks");
    MARLIN_CHECK(!quotas_.contains(tenant),
                 "duplicate quota for tenant " << tenant);
    quotas_[tenant] = quota;
  }
}

index_t BlockManager::free_blocks() const {
  if (unlimited()) return std::numeric_limits<index_t>::max() / 2;
  // Parked (refcount-0 prefix-cached) blocks count as free: allocation
  // evicts them on demand before ever failing.
  return cfg_.num_blocks - used_;
}

index_t BlockManager::blocks_for_tokens(index_t tokens) const {
  return (tokens + cfg_.block_size - 1) / cfg_.block_size;
}

bool BlockManager::can_admit(index_t tokens) const {
  if (unlimited()) return true;
  return blocks_for_tokens(tokens) + watermark_blocks_ <= free_blocks();
}

bool BlockManager::can_allocate(index_t n) const {
  return unlimited() || n <= free_blocks();
}

void BlockManager::ensure_id(index_t id) {
  const std::size_t need = uz(id) + 1;
  if (refcount_.size() >= need) return;
  refcount_.resize(need, 0);
  hash_.resize(need, 0);
  hashed_.resize(need, 0);
  published_.resize(need, 0);
  parked_.resize(need, 0);
  lru_prev_.resize(need, -1);
  lru_next_.resize(need, -1);
  holder_head_.resize(need, -1);
}

index_t BlockManager::pop_free_block() {
  // Free list first; under pressure reclaim the LRU's oldest parked
  // block; only an unlimited cache mints fresh ids.
  if (free_list_.empty() && cached_ > 0) evict_one();
  if (!free_list_.empty()) {
    const index_t id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  MARLIN_ASSERT(unlimited());
  const index_t id = next_fresh_++;
  ensure_id(id);
  return id;
}

index_t& BlockManager::tenant_slot(index_t tenant) {
  if (uz(tenant) >= tenant_used_.size()) {
    tenant_used_.resize(uz(tenant) + 1, 0);
  }
  return tenant_used_[uz(tenant)];
}

index_t BlockManager::new_holder_node(index_t tenant) {
  if (node_free_head_ >= 0) {
    const index_t node = node_free_head_;
    node_free_head_ = node_next_[uz(node)];
    node_tenant_[uz(node)] = tenant;
    return node;
  }
  const auto node = static_cast<index_t>(node_tenant_.size());
  node_tenant_.push_back(tenant);
  node_next_.push_back(-1);
  return node;
}

void BlockManager::acquire_ref(index_t id, index_t tenant) {
  if (refcount_[uz(id)] == 0) {
    if (parked_[uz(id)] != 0) {  // resurrected from the prefix cache
      lru_remove(id);
      parked_[uz(id)] = 0;
      --cached_;
    }
    ++used_;
    peak_used_ = std::max(peak_used_, used_);
  } else {
    // Last toucher pays: the charge moves from the previous top holder.
    tenant_slot(node_tenant_[uz(holder_head_[uz(id)])]) -= 1;
  }
  tenant_slot(tenant) += 1;
  const index_t node = new_holder_node(tenant);
  node_next_[uz(node)] = holder_head_[uz(id)];
  holder_head_[uz(id)] = node;
  ++refcount_[uz(id)];
}

void BlockManager::release_ref(index_t id, index_t tenant) {
  MARLIN_CHECK(id >= 0 && id < static_cast<index_t>(refcount_.size()) &&
                   refcount_[uz(id)] > 0,
               "double-release or foreign KV block id " << id);
  // Walk the stack from the most recent holder toward older ones and
  // drop the first reference `tenant` holds.
  index_t prev = -1;
  index_t node = holder_head_[uz(id)];
  while (node >= 0 && node_tenant_[uz(node)] != tenant) {
    prev = node;
    node = node_next_[uz(node)];
  }
  MARLIN_CHECK(node >= 0, "tenant " << tenant << " releases KV block " << id
                                    << " it does not hold");
  if (prev < 0) {
    holder_head_[uz(id)] = node_next_[uz(node)];
    tenant_slot(tenant) -= 1;
    // The charge falls back to the previous holder (if any remain).
    if (holder_head_[uz(id)] >= 0) {
      tenant_slot(node_tenant_[uz(holder_head_[uz(id)])]) += 1;
    }
  } else {
    // A non-top reference never carried the charge.
    node_next_[uz(prev)] = node_next_[uz(node)];
  }
  node_next_[uz(node)] = node_free_head_;  // recycle
  node_free_head_ = node;
  if (--refcount_[uz(id)] == 0) {
    --used_;
    ++freed_total_;
    if (cache_on() && published_[uz(id)] != 0) {
      // Park instead of free: the content stays hittable until pressure
      // reclaims it.
      parked_[uz(id)] = 1;
      lru_push_back(id);
      ++cached_;
      if (cfg_.prefix_cache.max_cached_blocks > 0 &&
          cached_ > cfg_.prefix_cache.max_cached_blocks) {
        evict_one();
      }
    } else {
      scrub_to_free(id);
    }
  }
}

void BlockManager::scrub_to_free(index_t id) {
  if (published_[uz(id)] != 0) {
    table_.erase(hash_[uz(id)]);
    published_[uz(id)] = 0;
  }
  hashed_[uz(id)] = 0;
  free_list_.push_back(id);
}

void BlockManager::lru_push_back(index_t id) {
  lru_prev_[uz(id)] = lru_tail_;
  lru_next_[uz(id)] = -1;
  if (lru_tail_ >= 0) {
    lru_next_[uz(lru_tail_)] = id;
  } else {
    lru_head_ = id;
  }
  lru_tail_ = id;
}

void BlockManager::lru_remove(index_t id) {
  const index_t prev = lru_prev_[uz(id)];
  const index_t next = lru_next_[uz(id)];
  if (prev >= 0) {
    lru_next_[uz(prev)] = next;
  } else {
    lru_head_ = next;
  }
  if (next >= 0) {
    lru_prev_[uz(next)] = prev;
  } else {
    lru_tail_ = prev;
  }
  lru_prev_[uz(id)] = -1;
  lru_next_[uz(id)] = -1;
}

void BlockManager::evict_one() {
  MARLIN_ASSERT(lru_head_ >= 0);
  const index_t id = lru_head_;
  lru_remove(id);
  parked_[uz(id)] = 0;
  --cached_;
  ++prefix_evictions_total_;
  scrub_to_free(id);
}

void BlockManager::acquire_ids(std::vector<index_t>& out, index_t n,
                               index_t tenant) {
  MARLIN_CHECK(n >= 0, "negative allocation");
  MARLIN_CHECK(tenant >= 0, "tenant id must be >= 0");
  MARLIN_CHECK(can_allocate(n), "KV budget exhausted: need "
                                    << n << " blocks, " << free_blocks()
                                    << " free of " << cfg_.num_blocks);
  for (index_t i = 0; i < n; ++i) {
    const index_t id = pop_free_block();
    acquire_ref(id, tenant);
    out.push_back(id);
  }
  allocated_total_ += n;
}

void BlockManager::release_ids(std::vector<index_t>& ids, index_t tenant) {
  // Reverse order parks deeper chain positions closer to the LRU head, so
  // pressure reclaims the least valuable (deepest) prefix blocks first.
  for (auto it = ids.rbegin(); it != ids.rend(); ++it) {
    release_ref(*it, tenant);
  }
  ids.clear();
}

void BlockManager::acquire(SequenceBlocks& seq, index_t n, index_t tenant) {
  acquire_ids(seq.ids_, n, tenant);
}

index_t BlockManager::acquire_prefill(SequenceBlocks& seq, index_t n,
                                      const std::vector<std::uint64_t>& chain,
                                      index_t tenant) {
  MARLIN_CHECK(n >= 0, "negative allocation");
  MARLIN_CHECK(tenant >= 0, "tenant id must be >= 0");
  MARLIN_CHECK(static_cast<index_t>(chain.size()) <= n,
               "prefix chain covers " << chain.size()
                                      << " blocks but the allocation is "
                                      << n);
  // Pass 1 (read-only): the leading run of published matches, and how
  // many of them are parked — resurrecting a parked block consumes free
  // budget, referencing a live one does not.
  index_t hits = 0;
  index_t parked_hits = 0;
  if (cache_on()) {
    for (const std::uint64_t key : chain) {
      const auto it = table_.find(key);
      if (it == table_.end()) break;
      ++hits;
      if (parked_[uz(it->second)] != 0) ++parked_hits;
    }
    prefix_lookups_total_ += static_cast<index_t>(chain.size());
    prefix_hits_total_ += hits;
  }
  const index_t fresh = n - hits;
  MARLIN_CHECK(can_allocate(fresh + parked_hits),
               "KV budget exhausted: need " << fresh + parked_hits
                                            << " blocks, " << free_blocks()
                                            << " free of " << cfg_.num_blocks);
  // Pass 2: reference the cached run, then allocate the rest fresh; fresh
  // blocks inside the chain get their hash attached so `publish` can make
  // them hittable once their prefill completes.
  for (index_t j = 0; j < hits; ++j) {
    const index_t id = table_.find(chain[uz(j)])->second;
    acquire_ref(id, tenant);
    seq.ids_.push_back(id);
  }
  for (index_t j = hits; j < n; ++j) {
    const index_t id = pop_free_block();
    acquire_ref(id, tenant);
    if (cache_on() && j < static_cast<index_t>(chain.size())) {
      hashed_[uz(id)] = 1;
      hash_[uz(id)] = chain[uz(j)];
    }
    seq.ids_.push_back(id);
  }
  allocated_total_ += fresh;
  seq.cached_prefix_ = hits;
  return hits;
}

void BlockManager::publish(const SequenceBlocks& seq) {
  if (!cache_on()) return;
  for (const index_t id : seq.ids_) {
    if (hashed_[uz(id)] == 0 || published_[uz(id)] != 0) continue;
    const auto [it, inserted] = table_.try_emplace(hash_[uz(id)], id);
    if (inserted) {
      published_[uz(id)] = 1;
    } else {
      // A concurrent identical prefill published this content first;
      // this duplicate loses its hash and frees normally.
      hashed_[uz(id)] = 0;
    }
  }
}

index_t BlockManager::cached_chain_blocks(
    const std::vector<std::uint64_t>& chain) const {
  index_t run = 0;
  for (const std::uint64_t key : chain) {
    if (!table_.contains(key)) break;
    ++run;
  }
  return run;
}

void BlockManager::release(SequenceBlocks& seq, index_t tenant) {
  release_ids(seq.ids_, tenant);
  seq.cached_prefix_ = 0;
}

SequenceBlocks BlockManager::fork(const SequenceBlocks& parent, index_t tenant,
                                  index_t reserve_blocks) {
  MARLIN_CHECK(tenant >= 0, "tenant id must be >= 0");
  SequenceBlocks child;
  child.ids_.reserve(std::max(parent.ids_.size(), uz(reserve_blocks)));
  for (const index_t id : parent.ids_) {
    acquire_ref(id, tenant);
    child.ids_.push_back(id);
  }
  child.cached_prefix_ = parent.cached_prefix_;
  ++cow_forks_total_;
  return child;
}

bool BlockManager::grow_to(SequenceBlocks& seq, index_t tokens,
                           index_t covered_tokens, index_t tenant) {
  const index_t have = seq.count();
  const index_t need = blocks_for_tokens(tokens) - have;
  // Copy-on-write scan: blocks the write range [covered_tokens, tokens)
  // touches that are shared (refcount > 1) — or published, whose content
  // must stay valid for future cache hits — get copied before the write.
  const index_t first_write =
      std::clamp<index_t>(covered_tokens / cfg_.block_size, 0, have);
  index_t copies = 0;
  for (index_t k = first_write; k < have; ++k) {
    const index_t id = seq.ids_[uz(k)];
    if (refcount_[uz(id)] > 1 || published_[uz(id)] != 0) ++copies;
  }
  const index_t fresh = std::max<index_t>(need, 0) + copies;
  if (fresh <= 0) return true;
  if (!can_allocate(fresh)) {
    ++grow_failures_;
    return false;
  }
  for (index_t k = first_write; k < have && copies > 0; ++k) {
    const index_t old_id = seq.ids_[uz(k)];
    if (refcount_[uz(old_id)] > 1 || published_[uz(old_id)] != 0) {
      const index_t copy = pop_free_block();
      acquire_ref(copy, tenant);
      release_ref(old_id, tenant);
      seq.ids_[uz(k)] = copy;
      ++allocated_total_;
      ++cow_copies_total_;
      --copies;
    }
  }
  if (need > 0) acquire_ids(seq.ids_, need, tenant);
  return true;
}

index_t BlockManager::tenant_used_blocks(index_t tenant) const {
  if (tenant < 0 || uz(tenant) >= tenant_used_.size()) return 0;
  return tenant_used_[uz(tenant)];
}

bool BlockManager::has_quota(index_t tenant) const {
  return quotas_.contains(tenant);
}

index_t BlockManager::effective_quota(index_t tenant) const {
  const auto it = quotas_.find(tenant);
  if (it == quotas_.end()) return kNoQuota;
  // A quota cannot promise more than the cache holds (quota > budget is
  // legal configuration but clamps here); unlimited caches never clamp.
  return unlimited() ? it->second : std::min(it->second, cfg_.num_blocks);
}

index_t BlockManager::over_quota_blocks(index_t tenant) const {
  const index_t quota = effective_quota(tenant);
  if (quota == kNoQuota) return 0;
  return std::max<index_t>(0, tenant_used_blocks(tenant) - quota);
}

bool BlockManager::within_quota(index_t tenant, index_t extra) const {
  const index_t quota = effective_quota(tenant);
  if (quota == kNoQuota) return true;
  return tenant_used_blocks(tenant) + extra <= quota;
}

index_t kv_blocks_that_fit(double hbm_bytes, double weight_bytes,
                           double kv_bytes_per_token, index_t block_size,
                           double activation_reserve,
                           const std::string& what) {
  MARLIN_CHECK(block_size >= 1, "block size must be >= 1 token");
  MARLIN_CHECK(activation_reserve >= 0.0 && activation_reserve < 1.0,
               "activation reserve must be in [0, 1)");
  MARLIN_CHECK(kv_bytes_per_token > 0.0, "KV bytes per token must be > 0");
  const double available =
      hbm_bytes * (1.0 - activation_reserve) - weight_bytes;
  // Clamp the headroom at zero with a clear deficit message. Letting a
  // negative `available` reach the block-count cast below would underflow
  // into a garbage budget.
  MARLIN_CHECK(available > 0,
               what << " weights (" << weight_bytes / 1e9
                    << " GB) exceed the usable "
                    << hbm_bytes * (1.0 - activation_reserve) / 1e9
                    << " GB of HBM by "
                    << (weight_bytes -
                        hbm_bytes * (1.0 - activation_reserve)) /
                           1e9
                    << " GB; KV block budget clamps to 0");
  const double block_bytes =
      kv_bytes_per_token * static_cast<double>(block_size);
  const auto blocks = static_cast<index_t>(available / block_bytes);
  // A budget of 0 would mean "unlimited" downstream — refuse instead:
  // if not even one block fits next to the weights, the device can't
  // serve this model.
  MARLIN_CHECK(blocks >= 1, "no KV headroom: only "
                                << available / 1e9 << " GB left beside "
                                << what);
  return blocks;
}

index_t derive_kv_block_budget(const Engine& engine, index_t block_size,
                               double activation_reserve) {
  return kv_blocks_that_fit(
      engine.config().gpu.hbm_bytes(), engine.weight_bytes_per_gpu(),
      engine.kv_bytes_per_token(), block_size, activation_reserve,
      engine.config().model.name + std::string(" on ") +
          engine.config().gpu.name);
}

}  // namespace marlin::serve::sched
