#include "serve/sched/block_manager.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace marlin::serve::sched {

BlockManager::BlockManager(BlockManagerConfig cfg) : cfg_(cfg) {
  MARLIN_CHECK(cfg_.block_size >= 1, "block size must be >= 1 token");
  MARLIN_CHECK(cfg_.num_blocks >= 0, "negative block budget");
  MARLIN_CHECK(cfg_.watermark >= 0.0 && cfg_.watermark < 1.0,
               "watermark must be in [0, 1)");
  if (!unlimited()) {
    watermark_blocks_ = static_cast<index_t>(
        std::ceil(cfg_.watermark * static_cast<double>(cfg_.num_blocks)));
    allocated_.assign(static_cast<std::size_t>(cfg_.num_blocks), false);
    free_list_.reserve(static_cast<std::size_t>(cfg_.num_blocks));
    // Stack of ids; popping from the back hands out 0, 1, 2, ... first.
    for (index_t i = cfg_.num_blocks - 1; i >= 0; --i) free_list_.push_back(i);
  }
  for (const auto& [tenant, quota] : cfg_.tenant_quotas) {
    MARLIN_CHECK(tenant >= 0, "tenant id must be >= 0");
    MARLIN_CHECK(quota >= 0, "tenant " << tenant
                                       << " quota must be >= 0 blocks");
    MARLIN_CHECK(!quotas_.contains(tenant),
                 "duplicate quota for tenant " << tenant);
    quotas_[tenant] = quota;
  }
}

index_t BlockManager::free_blocks() const {
  if (unlimited()) return std::numeric_limits<index_t>::max() / 2;
  return cfg_.num_blocks - used_;
}

index_t BlockManager::blocks_for_tokens(index_t tokens) const {
  return (tokens + cfg_.block_size - 1) / cfg_.block_size;
}

bool BlockManager::can_admit(index_t tokens) const {
  if (unlimited()) return true;
  return blocks_for_tokens(tokens) + watermark_blocks_ <= free_blocks();
}

bool BlockManager::can_allocate(index_t n) const {
  return unlimited() || n <= free_blocks();
}

std::vector<index_t> BlockManager::allocate(index_t n, index_t tenant) {
  std::vector<index_t> ids;
  ids.reserve(static_cast<std::size_t>(std::max<index_t>(n, 0)));
  allocate_into(ids, n, tenant);
  return ids;
}

void BlockManager::allocate_into(std::vector<index_t>& out, index_t n,
                                 index_t tenant) {
  MARLIN_CHECK(n >= 0, "negative allocation");
  MARLIN_CHECK(tenant >= 0, "tenant id must be >= 0");
  MARLIN_CHECK(can_allocate(n), "KV budget exhausted: need "
                                    << n << " blocks, " << free_blocks()
                                    << " free of " << cfg_.num_blocks);
  for (index_t i = 0; i < n; ++i) {
    index_t id;
    if (!free_list_.empty()) {
      id = free_list_.back();
      free_list_.pop_back();
    } else {
      MARLIN_ASSERT(unlimited());
      id = next_fresh_++;
      allocated_.push_back(false);
    }
    MARLIN_ASSERT(!allocated_[static_cast<std::size_t>(id)]);
    allocated_[static_cast<std::size_t>(id)] = true;
    out.push_back(id);
  }
  used_ += n;
  tenant_used_[tenant] += n;
  allocated_total_ += n;
  peak_used_ = std::max(peak_used_, used_);
}

void BlockManager::free(std::vector<index_t>& ids, index_t tenant) {
  const auto n = static_cast<index_t>(ids.size());
  MARLIN_CHECK(tenant_used_blocks(tenant) >= n,
               "tenant " << tenant << " returns " << n << " blocks but holds "
                         << tenant_used_blocks(tenant));
  for (const index_t id : ids) {
    MARLIN_CHECK(id >= 0 &&
                     id < static_cast<index_t>(allocated_.size()) &&
                     allocated_[static_cast<std::size_t>(id)],
                 "double-free or foreign KV block id " << id);
    allocated_[static_cast<std::size_t>(id)] = false;
    free_list_.push_back(id);
  }
  used_ -= n;
  tenant_used_[tenant] -= n;
  freed_total_ += n;
  ids.clear();
}

bool BlockManager::grow_to(std::vector<index_t>& held, index_t tokens,
                           index_t tenant) {
  const index_t need =
      blocks_for_tokens(tokens) - static_cast<index_t>(held.size());
  if (need <= 0) return true;
  if (!can_allocate(need)) {
    ++grow_failures_;
    return false;
  }
  allocate_into(held, need, tenant);
  return true;
}

index_t BlockManager::tenant_used_blocks(index_t tenant) const {
  const auto it = tenant_used_.find(tenant);
  return it == tenant_used_.end() ? 0 : it->second;
}

bool BlockManager::has_quota(index_t tenant) const {
  return quotas_.contains(tenant);
}

index_t BlockManager::effective_quota(index_t tenant) const {
  const auto it = quotas_.find(tenant);
  if (it == quotas_.end()) return kNoQuota;
  // A quota cannot promise more than the cache holds (quota > budget is
  // legal configuration but clamps here); unlimited caches never clamp.
  return unlimited() ? it->second : std::min(it->second, cfg_.num_blocks);
}

index_t BlockManager::over_quota_blocks(index_t tenant) const {
  const index_t quota = effective_quota(tenant);
  if (quota == kNoQuota) return 0;
  return std::max<index_t>(0, tenant_used_blocks(tenant) - quota);
}

bool BlockManager::within_quota(index_t tenant, index_t extra) const {
  const index_t quota = effective_quota(tenant);
  if (quota == kNoQuota) return true;
  return tenant_used_blocks(tenant) + extra <= quota;
}

index_t kv_blocks_that_fit(double hbm_bytes, double weight_bytes,
                           double kv_bytes_per_token, index_t block_size,
                           double activation_reserve,
                           const std::string& what) {
  MARLIN_CHECK(block_size >= 1, "block size must be >= 1 token");
  MARLIN_CHECK(activation_reserve >= 0.0 && activation_reserve < 1.0,
               "activation reserve must be in [0, 1)");
  MARLIN_CHECK(kv_bytes_per_token > 0.0, "KV bytes per token must be > 0");
  const double available =
      hbm_bytes * (1.0 - activation_reserve) - weight_bytes;
  // Clamp the headroom at zero with a clear deficit message. Letting a
  // negative `available` reach the block-count cast below would underflow
  // into a garbage budget.
  MARLIN_CHECK(available > 0,
               what << " weights (" << weight_bytes / 1e9
                    << " GB) exceed the usable "
                    << hbm_bytes * (1.0 - activation_reserve) / 1e9
                    << " GB of HBM by "
                    << (weight_bytes -
                        hbm_bytes * (1.0 - activation_reserve)) /
                           1e9
                    << " GB; KV block budget clamps to 0");
  const double block_bytes =
      kv_bytes_per_token * static_cast<double>(block_size);
  const auto blocks = static_cast<index_t>(available / block_bytes);
  // A budget of 0 would mean "unlimited" downstream — refuse instead:
  // if not even one block fits next to the weights, the device can't
  // serve this model.
  MARLIN_CHECK(blocks >= 1, "no KV headroom: only "
                                << available / 1e9 << " GB left beside "
                                << what);
  return blocks;
}

index_t derive_kv_block_budget(const Engine& engine, index_t block_size,
                               double activation_reserve) {
  return kv_blocks_that_fit(
      engine.config().gpu.hbm_bytes(), engine.weight_bytes_per_gpu(),
      engine.kv_bytes_per_token(), block_size, activation_reserve,
      engine.config().model.name + std::string(" on ") +
          engine.config().gpu.name);
}

}  // namespace marlin::serve::sched
