#pragma once
// vLLM-like inference engine cost model (paper §5.2).
//
// A decode step for a batch of sequences prices:
//   * every transformer-block linear layer via the selected kernel model
//     (FP16 / MARLIN / Sparse-MARLIN), sharded Megatron-style under tensor
//     parallelism (QKV & gate/up column-split, O & down row-split);
//   * KV-cache attention reads (memory-bound paged attention);
//   * two ring all-reduces per block when tensor-parallel;
//   * a fixed per-step engine overhead (scheduler / sampler / Python),
//     calibrated once against the paper's measured 2.93x at batch 1 on A10.
// Prefill prices the same linear layers at M = total new tokens plus the
// quadratic attention term.

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "baselines/kernel_model.hpp"
#include "gpusim/clock.hpp"
#include "serve/model_config.hpp"
#include "util/sim_context.hpp"

namespace marlin::serve {

enum class WeightFormat { kFp16, kMarlin, kSparseMarlin };

const char* to_string(WeightFormat f);

/// Interface the serving scheduler prices engine steps against. `Engine`
/// implements it for the single-device cost model; the multi-GPU
/// `parallel::ParallelEngine` implements it as max-over-ranks compute plus
/// interconnect communication. Implementations must be deterministic: the
/// same (batch, context) query returns bit-identical seconds on every call
/// and thread count.
class StepModel {
 public:
  virtual ~StepModel() = default;

  /// Seconds to advance every sequence of `batch` by one token.
  [[nodiscard]] virtual double decode_step_seconds(index_t batch,
                                                   double avg_context)
      const = 0;
  /// Seconds to prefill `batch` sequences of `prompt_tokens` tokens each.
  [[nodiscard]] virtual double prefill_seconds(index_t batch,
                                               index_t prompt_tokens)
      const = 0;
  /// Seconds for one speculative-decoding *verification* step: every
  /// sequence of `batch` scores `1 + depth` candidate tokens (its own
  /// next token plus `depth` draft proposals) against `avg_context` of
  /// KV in a single batched forward pass. The linear layers run at
  /// `batch * (depth + 1)` tokens while the paged KV cache is streamed
  /// once (the candidates share the sequence's blocks), which is exactly
  /// why verification is cheaper than `depth + 1` decode steps on a
  /// memory-bound decode. `depth == 0` must equal `decode_step_seconds`
  /// bit-for-bit.
  [[nodiscard]] virtual double verify_step_seconds(index_t batch,
                                                   double avg_context,
                                                   index_t depth) const = 0;
  /// Pre-fills the decode memo on the context's pool (purely a warm-up;
  /// cached values must equal on-demand computation bit-for-bit).
  virtual void warm_decode_cache(const SimContext& ctx, index_t max_batch,
                                 double max_context) const = 0;

  /// Optional decode-step latency decomposition for the observability
  /// layer: when the model can attribute a decode step to compute vs
  /// interconnect communication plus a pipeline-bubble share (the
  /// multi-GPU `parallel::ParallelEngine`), it fills the three outputs
  /// and returns true. The default — the single-device Engine has no
  /// meaningful split — declines, and recording falls back to the
  /// undecomposed step time.
  [[nodiscard]] virtual bool decode_split(index_t /*batch*/,
                                          double /*avg_context*/,
                                          double* /*compute_s*/,
                                          double* /*comm_s*/,
                                          double* /*bubble_fraction*/) const {
    return false;
  }
};

struct EngineConfig {
  ModelConfig model;
  gpusim::DeviceSpec gpu;
  int num_gpus = 1;  // tensor parallel degree
  WeightFormat format = WeightFormat::kMarlin;
  index_t group_size = 128;
  gpusim::ClockModel clock{gpusim::ClockMode::kAutoThermal};
  /// Per-decode-step engine overhead outside the GPU kernels.
  double step_overhead_s = 1.8e-3;
  /// Fixed prefill-path overhead (tokenisation, scheduling, first-token
  /// detokenisation) — dominates TTFT and is why the paper's TTFT gains
  /// (1.5-1.9x) are much smaller than its TPOT gains.
  double prefill_overhead_s = 12e-3;
  /// Attention kernel streaming efficiency (paged KV gather).
  double attention_mem_efficiency = 0.70;
};

class Engine : public StepModel {
 public:
  explicit Engine(EngineConfig cfg);

  /// Seconds to advance every sequence of `batch` by one token, with the
  /// given mean context length. Results are memoised; the memo caches are
  /// mutex-guarded so one Engine can be shared by concurrent sweep workers
  /// (values are deterministic, so duplicated computation of a missing
  /// entry is benign).
  [[nodiscard]] double decode_step_seconds(index_t batch,
                                           double avg_context) const override;

  /// Seconds to prefill `batch` sequences of `prompt_tokens` tokens each.
  [[nodiscard]] double prefill_seconds(index_t batch,
                                       index_t prompt_tokens) const override;

  /// Speculative verification: linear layers at `batch * (depth + 1)`
  /// tokens, one shared KV stream per layer, all-reduces at the widened
  /// token count. Memoised like decode.
  [[nodiscard]] double verify_step_seconds(index_t batch, double avg_context,
                                           index_t depth) const override;

  [[nodiscard]] const EngineConfig& config() const { return cfg_; }
  /// Quantized+sharded weight bytes resident per GPU.
  [[nodiscard]] double weight_bytes_per_gpu() const;
  /// FP16 KV-cache bytes one context token occupies per GPU (K and V for
  /// every layer, sharded across the tensor-parallel group). The serving
  /// scheduler derives its block budget from this.
  [[nodiscard]] double kv_bytes_per_token() const;
  /// Quantized weight bits per parameter of the configured format (16 for
  /// FP16, 4.125 for MARLIN incl. group scales, 3.125 for Sparse-MARLIN).
  [[nodiscard]] double weight_bits() const;

  // Per-layer pricing — the building blocks the multi-GPU worker model
  // composes into per-rank / per-stage times. All are memoised where a
  // kernel-model estimate is involved and deterministic.

  /// One transformer block's linear layers at M tokens, Megatron-sharded
  /// across `tp` ranks (QKV & gate/up column-split, O & down row-split).
  [[nodiscard]] double block_linear_seconds(index_t m, int tp) const;
  /// The FP16 LM head with the vocab dimension column-split across `tp`.
  [[nodiscard]] double lm_head_seconds(index_t m, int tp) const;
  /// One layer of decode paged-attention (KV streaming + launch) for
  /// `batch` sequences at `avg_context`, KV heads sharded across `tp`.
  [[nodiscard]] double attention_layer_seconds(index_t batch,
                                               double avg_context,
                                               int tp) const;
  /// One layer of quadratic prefill attention at `m` total new tokens
  /// against `prompt_tokens` of context, heads sharded across `tp`.
  [[nodiscard]] double prefill_attention_layer_seconds(
      index_t m, index_t prompt_tokens, int tp) const;

  /// Pre-fills the decode memo for every batch in [1, max_batch] and the
  /// context buckets up to `max_context`, fanning the per-GPU step-model
  /// evaluations out on the context's shared pool. Purely a warm-up: the
  /// cached values are identical to on-demand computation, so simulation
  /// results are bit-identical whether or not (and on how many threads)
  /// this ran. A serial context skips the fan-out.
  void warm_decode_cache(const SimContext& ctx, index_t max_batch,
                         double max_context) const override;

 private:
  [[nodiscard]] double linear_layers_seconds(index_t m) const;
  [[nodiscard]] double attention_decode_seconds(index_t batch,
                                                double avg_context) const;
  [[nodiscard]] double allreduce_seconds(index_t tokens) const;

  EngineConfig cfg_;
  baselines::KernelModelPtr kernel_;
  /// Guards every memo cache; held only around lookups/inserts, never
  /// across the kernel-model estimates, so the cache fills concurrently
  /// without lock nesting (linear_layers_seconds runs under no lock when
  /// decode_step_seconds computes a miss).
  mutable std::mutex cache_mutex_;
  mutable std::map<std::pair<index_t, index_t>, double> decode_cache_;
  mutable std::map<std::tuple<index_t, index_t, index_t>, double>
      verify_cache_;
  mutable std::map<index_t, double> linear_cache_;
  mutable std::map<std::pair<index_t, int>, double> block_cache_;
  mutable std::map<std::pair<index_t, int>, double> head_cache_;
};

}  // namespace marlin::serve
