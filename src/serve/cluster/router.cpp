#include "serve/cluster/router.hpp"

#include "obs/serve_recorder.hpp"
#include "util/error.hpp"

namespace marlin::serve::cluster {

const char* to_string(Placement p) {
  switch (p) {
    case Placement::kRoundRobin:
      return "round-robin";
    case Placement::kLeastLoaded:
      return "least-loaded";
    case Placement::kSessionAffinity:
      return "session-affinity";
  }
  return "?";
}

Placement placement_by_name(const std::string& name) {
  for (const auto p : {Placement::kRoundRobin, Placement::kLeastLoaded,
                       Placement::kSessionAffinity}) {
    if (name == to_string(p)) return p;
  }
  MARLIN_CHECK(false, "unknown placement policy `"
                          << name
                          << "`; known: round-robin, least-loaded, "
                             "session-affinity");
  return Placement::kRoundRobin;  // unreachable
}

std::size_t Router::pick(const sched::Request& r,
                         const std::deque<Replica>& fleet,
                         const std::vector<sched::Request>& requests) {
  // The routable set, in id order (fleet is only ever appended to, so
  // deque order == id order). `routable_` is member scratch whose
  // capacity persists across arrivals.
  std::vector<std::size_t>& routable = routable_;
  routable.clear();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    if (fleet[i].routable()) routable.push_back(i);
  }
  MARLIN_CHECK(!routable.empty(),
               "router has no routable replica for request " << r.id);

  std::size_t chosen = routable[0];
  switch (placement_) {
    case Placement::kRoundRobin: {
      const std::size_t slot = rr_cursor_ % routable.size();
      rr_cursor_ = slot + 1;  // stays bounded as the routable set resizes
      chosen = routable[slot];
      break;
    }
    case Placement::kLeastLoaded: {
      std::size_t best = routable[0];
      index_t best_load = fleet[best].outstanding_tokens(requests);
      for (std::size_t k = 1; k < routable.size(); ++k) {
        const index_t load = fleet[routable[k]].outstanding_tokens(requests);
        if (load < best_load) {  // ties keep the lowest id
          best_load = load;
          best = routable[k];
        }
      }
      chosen = best;
      break;
    }
    case Placement::kSessionAffinity: {
      const auto h = mix64(static_cast<std::uint64_t>(r.tenant_id));
      chosen = routable[static_cast<std::size_t>(h % routable.size())];
      break;
    }
  }
  if (obs_ != nullptr) {
    obs_->on_route(r.arrival_s, r.id, r.tenant_id, fleet[chosen].id(),
                   to_string(placement_));
  }
  return chosen;
}

void Router::probe_cached_prefix(const sched::Request& r,
                                 const std::deque<Replica>& fleet,
                                 std::vector<index_t>& out) const {
  out.resize(fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    out[i] = fleet[i].routable() ? fleet[i].cached_prefix_blocks(r)
                                 : index_t{-1};
  }
}

}  // namespace marlin::serve::cluster
