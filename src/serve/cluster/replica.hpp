#pragma once
// One serving replica: a {StepModel, BlockManager, Scheduler} bundle with
// an add/drain lifecycle, driven by the cluster EventLoop.
//
// The Replica owns its mutable `sched::ReplicaState` (clock, queue,
// flights, KV block manager, WFQ state, counters) and borrows the passive
// `sched::Scheduler` policy object that ticks it — the scheduler in turn
// references the StepModel pricing the engine steps, so one Scheduler
// (and one warmed decode memo) can be shared by every replica of a
// homogeneous fleet while each Replica keeps fully independent state.
//
// Lifecycle: kActive replicas accept routed requests; `begin_drain` stops
// new placements while queued and in-flight work keeps being served;
// a drained replica retires (kRetired) once it goes idle. Retired
// replicas keep their counters for the end-of-run ClusterStats.

#include <vector>

#include "serve/sched/scheduler.hpp"

namespace marlin::serve::cluster {

enum class ReplicaLifecycle { kActive, kDraining, kRetired };

const char* to_string(ReplicaLifecycle lc);

/// Pool membership under disaggregated serving. Unified replicas (the
/// default, and the only role outside disaggregation) both prefill and
/// decode; prefill-role replicas take arrivals and hand requests off at
/// prefill completion; decode-role replicas never take arrivals — they
/// only receive migrated requests.
enum class ReplicaRole { kUnified, kPrefill, kDecode };

const char* to_string(ReplicaRole role);

class Replica {
 public:
  /// `scheduler` is borrowed and must outlive the replica; its config
  /// carves this replica's private KV block budget.
  Replica(index_t id, const sched::Scheduler& scheduler,
          ReplicaRole role = ReplicaRole::kUnified);

  [[nodiscard]] index_t id() const { return id_; }
  [[nodiscard]] ReplicaLifecycle lifecycle() const { return lifecycle_; }
  [[nodiscard]] ReplicaRole role() const { return role_; }
  /// Accepts new placements: active (draining/retired replicas only
  /// finish what they already hold) and not decode-role (the decode pool
  /// is fed by migration, never by the router).
  [[nodiscard]] bool routable() const {
    return lifecycle_ == ReplicaLifecycle::kActive &&
           role_ != ReplicaRole::kDecode;
  }
  /// Requests waiting or in flight — a busy replica must keep ticking.
  [[nodiscard]] bool busy() const { return state_.busy(); }
  /// The replica's discrete-event clock (time its last step completed).
  [[nodiscard]] double now() const { return state_.now; }
  [[nodiscard]] index_t routed() const { return routed_; }

  /// Clock-advance to `t` if `t` is in the future (idle jump / fleet
  /// join); never moves the clock backwards.
  void advance_to(double t);

  /// Accepts request `request_id`: stamps its placement, advances the
  /// clock to its arrival (a request cannot be seen early) and queues it.
  void deliver(std::size_t request_id, std::vector<sched::Request>& requests);

  /// One scheduler tick: an admission pass, then one engine step.
  void tick(std::vector<sched::Request>& requests);

  /// Registers every tenant in `requests` with this replica's WFQ state
  /// (idempotent) — required before the first tick, including for
  /// replicas the autoscaler adds mid-run.
  void register_tenants(const std::vector<sched::Request>& requests);

  /// Attaches the observability recorder (borrowed; null detaches — the
  /// default, recording-off fast path). The EventLoop sets this on every
  /// replica it creates when a recorder is supplied.
  void set_observer(obs::ServeRecorder* obs) { state_.obs = obs; }

  /// Stops new placements; already-routed work keeps being served.
  void begin_drain();
  /// Retires a draining replica once idle. Returns true on the
  /// kDraining -> kRetired transition.
  bool try_retire();

  // ---- prefill -> decode migration (disaggregated pools) ---------------

  /// Source half of a migration: removes a request whose prefill just
  /// completed from this replica's running batch and releases every KV
  /// reference it holds here (published prompt blocks park in the local
  /// prefix cache as usual). Throws unless the request is currently
  /// running on this replica — a queued, preempted or finished request
  /// must never migrate.
  void migrate_out(std::size_t request_id,
                   std::vector<sched::Request>& requests);

  /// Destination half, called at the migration decision: re-acquires the
  /// request's prefill KV through the handle API — the leading run of its
  /// prefix chain is served from this replica's prefix cache where
  /// published, and only the remainder needs the wire — publishes it, and
  /// re-forks the extra sampling sequences. The request is *not* running
  /// here yet (the transfer is still in flight); `finish_migration`
  /// delivers it. Returns the prompt tokens the local cache skipped.
  index_t begin_migration(std::size_t request_id,
                          std::vector<sched::Request>& requests);

  /// Completes an in-flight migration at `ready_s`: stamps the placement,
  /// advances the clock (the request cannot decode before its KV landed)
  /// and appends it to the running batch.
  void finish_migration(std::size_t request_id, double ready_s,
                        std::vector<sched::Request>& requests);

  [[nodiscard]] index_t migrated_in() const { return migrated_in_; }
  [[nodiscard]] index_t migrated_out() const { return migrated_out_; }

  /// Total tokens of outstanding work (prefill still owed plus decode
  /// tokens still owed) across queued and in-flight requests — the
  /// least-loaded placement key.
  [[nodiscard]] index_t outstanding_tokens(
      const std::vector<sched::Request>& requests) const;

  /// Leading blocks of `r`'s prompt already resident in this replica's
  /// prefix cache — 0 when the cache is off or `r` has no shared-prefix
  /// tag. Read-only probe (no refcounts move); the router's
  /// prefix-affinity placement key.
  [[nodiscard]] index_t cached_prefix_blocks(const sched::Request& r) const;

  /// Direct state access for the EventLoop's stats aggregation and for
  /// white-box tests.
  [[nodiscard]] const sched::ReplicaState& state() const { return state_; }

 private:
  index_t id_;
  const sched::Scheduler* scheduler_;
  sched::ReplicaState state_;
  ReplicaLifecycle lifecycle_ = ReplicaLifecycle::kActive;
  ReplicaRole role_ = ReplicaRole::kUnified;
  index_t routed_ = 0;
  index_t migrated_in_ = 0;
  index_t migrated_out_ = 0;
  /// Scratch for `cached_prefix_blocks` (probes run once per arrival;
  /// retained capacity keeps the routing path allocation-free).
  mutable std::vector<std::uint64_t> probe_chain_;
};

}  // namespace marlin::serve::cluster
