#pragma once
// Cluster-level discrete-event loop: the clock that used to live inside
// Scheduler::run, hoisted one level up so it can drive a whole fleet of
// replicas behind a front-end Router.
//
// The loop is strictly serial and deterministic (part of the
// bit-identical-across-threads contract; parallelism lives below, in
// StepModel evaluation). Each iteration:
//
//   1. The *frontier* is the earliest busy replica's clock — or, when the
//      whole fleet is idle, the next undelivered arrival's time.
//   2. The autoscaler (if enabled) evaluates at every multiple of its
//      interval the frontier has passed, adding replicas or draining the
//      highest-id one against the observed queue depth.
//   3. The Router delivers every arrival with `arrival_s <= frontier` to
//      its placed replica (which advances an idle replica's clock to the
//      arrival — a request cannot be seen early).
//   4. The earliest busy replica (ties: lowest id) is *ticked*: one
//      admission pass plus one engine step (see Scheduler's passive API).
//
// With one replica this reduces — engine call for engine call — to the
// original Scheduler::run loop: step 3 is its `admit_arrivals(now)`, the
// idle frontier is its idle jump, and step 4 is its loop body. That
// equivalence is what keeps every pre-cluster golden byte-identical
// through the refactor (and is pinned by test_serve_cluster).

#include <vector>

#include "serve/cluster/replica.hpp"
#include "serve/cluster/router.hpp"
#include "serve/sched/scheduler.hpp"
#include "util/sim_context.hpp"

namespace marlin::serve::cluster {

/// Deterministic trace-driven autoscaler. Evaluates on the simulated
/// clock (every `interval_s` of the event-loop frontier) against the mean
/// queue depth per routable replica — purely a function of the trace, so
/// runs reproduce bit-identically.
struct AutoscalerConfig {
  bool enabled = false;
  index_t min_replicas = 1;
  index_t max_replicas = 8;
  /// Simulated seconds between evaluations.
  double interval_s = 5.0;
  /// Scale up (add one replica) when mean queued requests per routable
  /// replica exceeds this.
  double scale_up_queue_per_replica = 8.0;
  /// Scale down (drain the highest-id routable replica) when the mean
  /// falls below this.
  double scale_down_queue_per_replica = 1.0;

  void validate() const;
};

struct ClusterOptions {
  /// Initial fleet size. The defaults — one replica, round-robin, no
  /// autoscaler, which a lone replica both make trivial — are exactly the
  /// legacy single-engine configuration.
  index_t replicas = 1;
  Placement placement = Placement::kRoundRobin;
  AutoscalerConfig autoscaler;

  void validate() const;
};

/// One replica's end-of-run accounting.
struct ReplicaStats {
  index_t id = 0;
  ReplicaLifecycle lifecycle = ReplicaLifecycle::kActive;
  double clock_s = 0;    // final value of the replica's clock
  index_t routed = 0;    // requests the router placed here
  index_t completed = 0;
  index_t shed = 0;
  index_t preemptions = 0;
  index_t prefill_steps = 0;
  index_t decode_steps = 0;
  index_t peak_kv_blocks = 0;
  /// KV blocks still allocated after the run — always 0 unless a
  /// lifecycle bug leaks them (asserted by tests).
  index_t leaked_kv_blocks = 0;
};

/// Fleet-level outcome: the legacy SchedStats (metrics over all requests,
/// counters summed across replicas — for one replica bit-identical to the
/// pre-cluster Scheduler::run) plus the per-replica split and autoscaler
/// accounting.
struct ClusterStats {
  sched::SchedStats sched;
  std::vector<ReplicaStats> replicas;
  index_t replicas_added = 0;    // autoscaler additions beyond the initial
  index_t replicas_drained = 0;  // drains begun (retired or still busy)
  index_t peak_replicas = 0;     // max simultaneously routable
};

class EventLoop {
 public:
  /// `scheduler` is the shared passive policy (and step-model pricing)
  /// every replica is ticked with; borrowed, must outlive the loop.
  EventLoop(const sched::Scheduler& scheduler, ClusterOptions opts);

  /// Runs `trace` (ascending arrival times) to completion. `ctx` only
  /// pre-warms the step model's decode memo — results are bit-identical
  /// for every context. Stateless across calls: every run builds a fresh
  /// fleet, so repeat runs reproduce exactly. `obs` (borrowed, may be
  /// null) attaches the observability recorder to the router, every
  /// replica and the autoscaler; the run's scheduling decisions are
  /// identical with or without it.
  [[nodiscard]] ClusterStats run(
      const std::vector<sched::TraceRequest>& trace,
      const SimContext& ctx = SimContext::serial_context(),
      obs::ServeRecorder* obs = nullptr) const;

 private:
  const sched::Scheduler& scheduler_;
  ClusterOptions opts_;
};

}  // namespace marlin::serve::cluster
