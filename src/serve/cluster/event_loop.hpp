#pragma once
// Cluster-level discrete-event loop: the clock that used to live inside
// Scheduler::run, hoisted one level up so it can drive a whole fleet of
// replicas behind a front-end Router.
//
// The loop is strictly serial and deterministic (part of the
// bit-identical-across-threads contract; parallelism lives below, in
// StepModel evaluation). Each iteration:
//
//   1. The *frontier* is the earliest busy replica's clock — or, when the
//      whole fleet is idle, the next undelivered arrival's time.
//   2. The autoscaler (if enabled) evaluates at every multiple of its
//      interval the frontier has passed, adding replicas or draining the
//      highest-id one against the observed queue depth.
//   3. The Router delivers every arrival with `arrival_s <= frontier` to
//      its placed replica (which advances an idle replica's clock to the
//      arrival — a request cannot be seen early).
//   4. The earliest busy replica (ties: lowest id) is *ticked*: one
//      admission pass plus one engine step (see Scheduler's passive API).
//
// With one replica this reduces — engine call for engine call — to the
// original Scheduler::run loop: step 3 is its `admit_arrivals(now)`, the
// idle frontier is its idle jump, and step 4 is its loop body. That
// equivalence is what keeps every pre-cluster golden byte-identical
// through the refactor (and is pinned by test_serve_cluster).

#include <vector>

#include "serve/cluster/replica.hpp"
#include "serve/cluster/router.hpp"
#include "serve/sched/scheduler.hpp"
#include "util/sim_context.hpp"

namespace marlin::serve::cluster {

/// Deterministic trace-driven autoscaler. Evaluates on the simulated
/// clock (every `interval_s` of the event-loop frontier) against the mean
/// queue depth per routable replica — purely a function of the trace, so
/// runs reproduce bit-identically.
struct AutoscalerConfig {
  bool enabled = false;
  index_t min_replicas = 1;
  index_t max_replicas = 8;
  /// Simulated seconds between evaluations.
  double interval_s = 5.0;
  /// Scale up (add one replica) when mean queued requests per routable
  /// replica exceeds this.
  double scale_up_queue_per_replica = 8.0;
  /// Scale down (drain the highest-id routable replica) when the mean
  /// falls below this.
  double scale_down_queue_per_replica = 1.0;

  void validate() const;
};

/// Disaggregated prefill/decode pools. When enabled the fleet is
/// `prefill_replicas` prefill-role replicas (ids 0..P-1, the only ones
/// the Router places arrivals on) plus `decode_replicas` decode-role
/// replicas (ids P..P+D-1); `ClusterOptions::replicas` is ignored. At
/// prefill completion a request migrates to the decode replica with the
/// least outstanding work (ties: lowest id), its KV priced as one
/// point-to-point transfer on the link: bytes = `kv_bytes_per_token` x
/// the prompt tokens whose blocks the destination's prefix cache does
/// not already hold, seconds = bytes / `link_bytes_per_s` +
/// `link_latency_s` (a zero-rate, zero-latency link is free — the
/// differential-test configuration). The transfer latency lands on the
/// request's TTFT. Requests migrate at most once; when no active decode
/// replica can hold the KV (or the source is draining), the request
/// decodes in place — the unified fallback.
struct DisaggConfig {
  bool enabled = false;
  index_t prefill_replicas = 1;
  index_t decode_replicas = 1;
  /// KV bytes one context token occupies. `simulate_cluster_detailed`
  /// fills 0 from the engine; a direct EventLoop caller picks its own.
  double kv_bytes_per_token = 0;
  /// Transfer link. 0 bytes/s means infinitely fast (only the latency
  /// term is paid); 0/0 is the zero-cost link.
  double link_bytes_per_s = 0;
  double link_latency_s = 0;

  /// Seconds one KV transfer of `bytes` takes on the link.
  [[nodiscard]] double transfer_seconds(double bytes) const {
    return (link_bytes_per_s > 0 ? bytes / link_bytes_per_s : 0.0) +
           link_latency_s;
  }
  void validate() const;
};

struct ClusterOptions {
  /// Initial fleet size. The defaults — one replica, round-robin, no
  /// autoscaler, which a lone replica both make trivial — are exactly the
  /// legacy single-engine configuration.
  index_t replicas = 1;
  Placement placement = Placement::kRoundRobin;
  AutoscalerConfig autoscaler;
  /// Disaggregated prefill/decode pools (sizes the fleet by itself when
  /// enabled; mutually exclusive with the autoscaler).
  DisaggConfig disagg;

  void validate() const;
};

/// One replica's end-of-run accounting.
struct ReplicaStats {
  index_t id = 0;
  ReplicaLifecycle lifecycle = ReplicaLifecycle::kActive;
  ReplicaRole role = ReplicaRole::kUnified;
  double clock_s = 0;    // final value of the replica's clock
  index_t routed = 0;    // requests the router placed here
  index_t completed = 0;
  index_t shed = 0;
  index_t preemptions = 0;
  index_t prefill_steps = 0;
  index_t decode_steps = 0;
  index_t peak_kv_blocks = 0;
  /// KV blocks still allocated after the run — always 0 unless a
  /// lifecycle bug leaks them (asserted by tests).
  index_t leaked_kv_blocks = 0;
  /// Disaggregation traffic: requests this replica handed off at prefill
  /// completion / received into its decode batch.
  index_t migrated_out = 0;
  index_t migrated_in = 0;
};

/// Per-link KV-transfer accounting under disaggregation, keyed by the
/// (source, destination) replica pair in first-use order.
struct LinkStats {
  index_t src = 0;
  index_t dst = 0;
  index_t transfers = 0;
  double bytes = 0;
  double seconds = 0;
};

/// Fleet-level outcome: the legacy SchedStats (metrics over all requests,
/// counters summed across replicas — for one replica bit-identical to the
/// pre-cluster Scheduler::run) plus the per-replica split and autoscaler
/// accounting.
struct ClusterStats {
  sched::SchedStats sched;
  std::vector<ReplicaStats> replicas;
  index_t replicas_added = 0;    // autoscaler additions beyond the initial
  index_t replicas_drained = 0;  // drains begun (retired or still busy)
  index_t peak_replicas = 0;     // max simultaneously routable

  // Disaggregation accounting (all zero when disagg is off).
  index_t migrations = 0;  // prefill -> decode handoffs completed or begun
  /// Prompt tokens whose KV actually crossed the wire (migrated tokens
  /// minus destination prefix-cache hits).
  index_t transferred_tokens = 0;
  /// Prompt tokens a destination's prefix cache spared the wire.
  index_t transfer_skipped_tokens = 0;
  double transfer_bytes = 0;
  double transfer_seconds = 0;  // summed per-transfer link time
  std::vector<LinkStats> links;
};

class EventLoop {
 public:
  /// `scheduler` is the shared passive policy (and step-model pricing)
  /// every replica is ticked with; borrowed, must outlive the loop.
  EventLoop(const sched::Scheduler& scheduler, ClusterOptions opts);

  /// Runs `trace` (ascending arrival times) to completion. `ctx` only
  /// pre-warms the step model's decode memo — results are bit-identical
  /// for every context. Stateless across calls: every run builds a fresh
  /// fleet, so repeat runs reproduce exactly. `obs` (borrowed, may be
  /// null) attaches the observability recorder to the router, every
  /// replica and the autoscaler; the run's scheduling decisions are
  /// identical with or without it.
  [[nodiscard]] ClusterStats run(
      const std::vector<sched::TraceRequest>& trace,
      const SimContext& ctx = SimContext::serial_context(),
      obs::ServeRecorder* obs = nullptr) const;

 private:
  const sched::Scheduler& scheduler_;
  ClusterOptions opts_;
};

}  // namespace marlin::serve::cluster
