#include "serve/cluster/event_loop.hpp"

#include <algorithm>
#include <deque>

#include "obs/serve_recorder.hpp"
#include "util/error.hpp"

namespace marlin::serve::cluster {

void AutoscalerConfig::validate() const {
  MARLIN_CHECK(min_replicas >= 1, "autoscaler min_replicas must be >= 1");
  MARLIN_CHECK(max_replicas >= min_replicas,
               "autoscaler max_replicas (" << max_replicas
                                           << ") below min_replicas ("
                                           << min_replicas << ")");
  MARLIN_CHECK(interval_s > 0, "autoscaler interval must be > 0");
  MARLIN_CHECK(scale_down_queue_per_replica >= 0,
               "negative autoscaler scale-down threshold");
  MARLIN_CHECK(scale_up_queue_per_replica > scale_down_queue_per_replica,
               "autoscaler scale-up threshold must exceed scale-down "
               "(hysteresis)");
}

void DisaggConfig::validate() const {
  if (!enabled) return;
  MARLIN_CHECK(prefill_replicas >= 1,
               "disaggregation needs at least one prefill replica");
  MARLIN_CHECK(decode_replicas >= 1,
               "disaggregation needs at least one decode replica");
  MARLIN_CHECK(kv_bytes_per_token >= 0,
               "negative disagg kv_bytes_per_token");
  MARLIN_CHECK(link_bytes_per_s >= 0 && link_latency_s >= 0,
               "negative disagg link pricing");
}

void ClusterOptions::validate() const {
  MARLIN_CHECK(replicas >= 1, "cluster needs at least one replica");
  autoscaler.validate();
  disagg.validate();
  MARLIN_CHECK(!(disagg.enabled && autoscaler.enabled),
               "disaggregated pools and the autoscaler are mutually "
               "exclusive (pool sizes are fixed)");
  if (autoscaler.enabled) {
    MARLIN_CHECK(replicas >= autoscaler.min_replicas &&
                     replicas <= autoscaler.max_replicas,
                 "initial replica count " << replicas
                                          << " outside autoscaler bounds ["
                                          << autoscaler.min_replicas << ", "
                                          << autoscaler.max_replicas << "]");
  }
}

EventLoop::EventLoop(const sched::Scheduler& scheduler, ClusterOptions opts)
    : scheduler_(scheduler), opts_(opts) {
  opts_.validate();
}

ClusterStats EventLoop::run(const std::vector<sched::TraceRequest>& trace,
                            const SimContext& ctx,
                            obs::ServeRecorder* obs) const {
  ClusterStats stats;
  std::vector<sched::Request>& requests = stats.sched.requests;
  requests.reserve(trace.size());
  index_t max_context = 1;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    requests.emplace_back(static_cast<index_t>(i), trace[i].arrival_s,
                          trace[i].input_tokens, trace[i].output_tokens,
                          trace[i].tenant_id);
    requests.back().prefix_id = trace[i].prefix_id;
    requests.back().prefix_tokens = trace[i].prefix_tokens;
    requests.back().num_sequences = std::max<index_t>(
        1, trace[i].num_sequences);
    max_context =
        std::max(max_context, trace[i].input_tokens + trace[i].output_tokens);
  }
  const sched::SchedulerConfig& cfg = scheduler_.config();
  scheduler_.model().warm_decode_cache(ctx, cfg.max_batch,
                                       static_cast<double>(max_context));
  if (scheduler_.draft_model() != nullptr) {
    scheduler_.draft_model()->warm_decode_cache(
        ctx, cfg.max_batch, static_cast<double>(max_context));
  }

  // The fleet only ever grows (a deque keeps references stable); retired
  // replicas stay in place so ids keep indexing it. Under disaggregation
  // the prefill pool takes ids 0..P-1 and the decode pool P..P+D-1.
  const DisaggConfig& disagg = opts_.disagg;
  const index_t initial_replicas =
      disagg.enabled ? disagg.prefill_replicas + disagg.decode_replicas
                     : opts_.replicas;
  std::deque<Replica> fleet;
  for (index_t i = 0; i < initial_replicas; ++i) {
    const ReplicaRole role =
        !disagg.enabled ? ReplicaRole::kUnified
        : (i < disagg.prefill_replicas ? ReplicaRole::kPrefill
                                       : ReplicaRole::kDecode);
    fleet.emplace_back(i, scheduler_, role);
    fleet.back().register_tenants(requests);
    if (obs != nullptr) {
      fleet.back().set_observer(obs);
      obs->on_replica_start(0.0, i);
    }
  }
  Router router(opts_.placement, obs);
  std::size_t next_arrival = 0;

  const auto routable_count = [&] {
    index_t n = 0;
    for (const Replica& rep : fleet) n += rep.routable() ? 1 : 0;
    return n;
  };
  const auto earliest_busy = [&]() -> Replica* {
    Replica* best = nullptr;
    for (Replica& rep : fleet) {
      // Strict < keeps the lowest id on ties.
      if (rep.busy() && (best == nullptr || rep.now() < best->now())) {
        best = &rep;
      }
    }
    return best;
  };
  const auto retire_drained = [&] {
    for (Replica& rep : fleet) {
      if (rep.try_retire() && obs != nullptr) {
        obs->on_replica_retire(rep.now(), rep.id());
      }
    }
  };

  // ---- prefill -> decode migration (disaggregated pools) ---------------
  // A migration decided at time t releases the KV on the source and
  // acquires it on the destination immediately (the receive buffer is
  // held for the transfer's duration), then the request sits in flight
  // until `ready_s = t + link time`, when it joins the destination's
  // decode batch. In-flight handoffs are loop events like arrivals: they
  // bound the idle frontier and are delivered once the frontier passes.
  struct PendingMigration {
    std::size_t request_id;
    std::size_t dest;  // fleet index
    double ready_s;
  };
  std::vector<PendingMigration> pending;
  index_t migration_ttft_violations = 0;

  const auto link_stats_for = [&](index_t src, index_t dst) -> LinkStats& {
    for (LinkStats& l : stats.links) {
      if (l.src == src && l.dst == dst) return l;
    }
    stats.links.push_back(LinkStats{src, dst, 0, 0.0, 0.0});
    return stats.links.back();
  };

  // Scans a prefill replica right after its tick for requests whose
  // prefill just completed. Each is decided exactly once: migrate when an
  // active decode replica can hold the KV, otherwise decode in place (the
  // unified fallback — also taken on a draining source, which finishes
  // its work where it is).
  const auto scan_migrations = [&](Replica& src) {
    for (std::size_t pos = 0; pos < src.state().running.size();) {
      const std::size_t id = src.state().running[pos];
      sched::Request& r = requests[id];
      if (r.migration_decided ||
          r.state != sched::RequestState::kRunning) {
        ++pos;
        continue;
      }
      r.migration_decided = true;
      if (src.lifecycle() != ReplicaLifecycle::kActive ||
          r.generated >= r.output_tokens) {
        ++pos;
        continue;
      }
      const index_t need =
          src.state().bm.blocks_for_tokens(r.prefill_target());
      Replica* dest = nullptr;
      index_t dest_load = 0;
      for (Replica& rep : fleet) {
        if (rep.role() != ReplicaRole::kDecode ||
            rep.lifecycle() != ReplicaLifecycle::kActive ||
            !rep.state().bm.can_allocate(need)) {
          continue;
        }
        // Strict < keeps the lowest id on ties.
        const index_t load = rep.outstanding_tokens(requests);
        if (dest == nullptr || load < dest_load) {
          dest = &rep;
          dest_load = load;
        }
      }
      if (dest == nullptr) {  // decode pool full: decode in place
        ++pos;
        continue;
      }
      const double t0 = src.now();
      src.migrate_out(id, requests);  // shrinks running at `pos`
      const index_t skipped = dest->begin_migration(id, requests);
      const index_t moved = std::max<index_t>(0, r.prompt_tokens - skipped);
      const double bytes =
          disagg.kv_bytes_per_token * static_cast<double>(moved);
      const double ready_s = t0 + disagg.transfer_seconds(bytes);
      // The first token cannot be streamed before its KV handoff
      // completes: the transfer latency lands on TTFT, and a deadline the
      // prefill met can be missed on the wire.
      const sched::SloConfig& slo = scheduler_.config().slo;
      if (slo.ttft_deadline_ms > 0 && r.first_token_s >= 0) {
        const double old_ms = (r.first_token_s - r.arrival_s) * 1e3;
        const double new_ms = (ready_s - r.arrival_s) * 1e3;
        if (old_ms <= slo.ttft_deadline_ms &&
            new_ms > slo.ttft_deadline_ms) {
          ++migration_ttft_violations;
          if (obs != nullptr) obs->on_slo_ttft_violation(ready_s, r.id);
        }
      }
      r.first_token_s = ready_s;
      ++r.migrations;
      ++stats.migrations;
      stats.transferred_tokens += moved;
      stats.transfer_skipped_tokens += skipped;
      stats.transfer_bytes += bytes;
      stats.transfer_seconds += ready_s - t0;
      LinkStats& link = link_stats_for(src.id(), dest->id());
      ++link.transfers;
      link.bytes += bytes;
      link.seconds += ready_s - t0;
      if (obs != nullptr) {
        obs->on_kv_transfer(t0, ready_s, r.id, src.id(), dest->id(), bytes,
                            moved);
      }
      pending.push_back(
          PendingMigration{id, static_cast<std::size_t>(dest->id()),
                           ready_s});
    }
  };

  const AutoscalerConfig& as = opts_.autoscaler;
  double next_eval_s = as.interval_s;
  stats.peak_replicas = routable_count();

  // Autoscaler catch-up: evaluate at every interval multiple the frontier
  // has passed (before delivery, so new replicas are routable for the
  // arrivals at this frontier and queue depth is measured pre-delivery).
  const auto autoscale_upto = [&](double frontier) {
    if (!as.enabled) return;
    while (next_eval_s <= frontier) {
      const double t_eval = next_eval_s;
      next_eval_s += as.interval_s;
      retire_drained();
      const index_t routable = routable_count();
      index_t queued = 0;
      for (const Replica& rep : fleet) {
        if (rep.routable()) {
          queued += static_cast<index_t>(rep.state().queue.size());
        }
      }
      const double load =
          static_cast<double>(queued) / static_cast<double>(routable);
      if (load > as.scale_up_queue_per_replica &&
          routable < as.max_replicas) {
        const index_t new_id = static_cast<index_t>(fleet.size());
        fleet.emplace_back(new_id, scheduler_);
        fleet.back().advance_to(t_eval);  // joins at the evaluation time
        fleet.back().register_tenants(requests);
        if (obs != nullptr) {
          fleet.back().set_observer(obs);
          obs->on_autoscaler_eval(t_eval, load, routable, "scale-up");
          obs->on_replica_start(t_eval, new_id);
        }
        ++stats.replicas_added;
        stats.peak_replicas = std::max(stats.peak_replicas, routable_count());
      } else if (load < as.scale_down_queue_per_replica &&
                 routable > as.min_replicas) {
        if (obs != nullptr) {
          obs->on_autoscaler_eval(t_eval, load, routable, "scale-down");
        }
        // Drain the highest-id routable replica (the newest addition —
        // LIFO keeps the stable core replicas serving).
        for (std::size_t i = fleet.size(); i-- > 0;) {
          if (fleet[i].routable()) {
            fleet[i].begin_drain();
            ++stats.replicas_drained;
            if (obs != nullptr) {
              obs->on_replica_drain(t_eval, fleet[i].id());
            }
            break;
          }
        }
        retire_drained();
      } else if (obs != nullptr) {
        obs->on_autoscaler_eval(t_eval, load, routable, "hold");
      }
    }
  };

  while (true) {
    Replica* target = earliest_busy();
    double frontier;
    if (target == nullptr) {
      // Idle jump to the next event: an undelivered arrival or an
      // in-flight migration, whichever lands first. Neither left means
      // the trace is drained.
      bool have_event = false;
      frontier = 0.0;
      if (next_arrival < requests.size()) {
        frontier = requests[next_arrival].arrival_s;
        have_event = true;
      }
      for (const PendingMigration& p : pending) {
        if (!have_event || p.ready_s < frontier) {
          frontier = p.ready_s;
          have_event = true;
        }
      }
      if (!have_event) break;
    } else {
      frontier = target->now();
    }

    autoscale_upto(frontier);

    // Deliver every in-flight migration the frontier has passed (list
    // order is decision order, so ties resolve deterministically).
    for (std::size_t i = 0; i < pending.size();) {
      if (pending[i].ready_s <= frontier) {
        fleet[pending[i].dest].finish_migration(pending[i].request_id,
                                                pending[i].ready_s, requests);
        pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }

    // Deliver (route) every arrival the frontier has passed.
    while (next_arrival < requests.size() &&
           requests[next_arrival].arrival_s <= frontier) {
      const std::size_t placed =
          router.pick(requests[next_arrival], fleet, requests);
      fleet[placed].deliver(next_arrival, requests);
      ++next_arrival;
    }

    // Delivery can wake a replica whose clock is earlier than the old
    // frontier; re-pick so ticks stay globally time-ordered.
    target = earliest_busy();
    MARLIN_ASSERT(target != nullptr);

    // Liveness guard: a tick of a busy replica must change *something*
    // (the clock, a flight, or a terminal counter) or the loop would spin
    // forever on a scheduler bug.
    const double now_before = target->now();
    const std::size_t queue_before = target->state().queue.size();
    const std::size_t active_before = target->state().active();
    const index_t terminal_before =
        target->state().rejected + target->state().shed;

    target->tick(requests);

    MARLIN_CHECK(!target->busy() || target->now() != now_before ||
                     target->state().queue.size() != queue_before ||
                     target->state().active() != active_before ||
                     target->state().rejected + target->state().shed !=
                         terminal_before,
                 "event loop stalled: replica " << target->id()
                                                << " made no progress at t="
                                                << target->now());

    if (disagg.enabled && target->role() == ReplicaRole::kPrefill) {
      scan_migrations(*target);
    }

    retire_drained();
  }

  // Legacy SchedStats over the whole fleet: counters summed, metrics over
  // the trace-order request vector — for one replica this is exactly what
  // the pre-cluster Scheduler::run computed.
  double batch_weighted = 0;
  double decode_time_total = 0;
  for (const Replica& rep : fleet) {
    const sched::ReplicaState& s = rep.state();
    stats.sched.preemptions += s.preemptions;
    stats.sched.rejected += s.rejected;
    stats.sched.shed += s.shed;
    stats.sched.prefill_steps += s.prefill_steps;
    stats.sched.decode_steps += s.decode_steps;
    stats.sched.spec_rounds += s.spec_rounds;
    stats.sched.spec_draft_tokens += s.spec_draft_tokens;
    stats.sched.spec_committed_tokens += s.spec_committed_tokens;
    stats.sched.slo_ttft_violations += s.slo_ttft_violations;
    stats.sched.slo_tpot_violations += s.slo_tpot_violations;
    stats.sched.prefix_cache_lookup_blocks += s.bm.prefix_cache_lookup_blocks();
    stats.sched.prefix_cache_hit_blocks += s.bm.prefix_cache_hit_blocks();
    stats.sched.prefix_cache_evictions += s.bm.prefix_cache_evictions();
    stats.sched.prefix_tokens_skipped += s.prefix_tokens_skipped;
    stats.sched.cow_forks += s.bm.cow_forks();
    stats.sched.cow_copies += s.bm.cow_copies();
    stats.sched.peak_kv_blocks =
        std::max(stats.sched.peak_kv_blocks, s.bm.peak_used_blocks());
    stats.sched.sim_end_s = std::max(stats.sched.sim_end_s, s.now);
    batch_weighted += s.batch_weighted;
    decode_time_total += s.decode_time_total;
  }
  stats.sched.slo_ttft_violations += migration_ttft_violations;
  stats.sched.metrics =
      sched::metrics_from_requests(requests, batch_weighted,
                                   decode_time_total);

  stats.replicas.reserve(fleet.size());
  for (const Replica& rep : fleet) {
    const sched::ReplicaState& s = rep.state();
    ReplicaStats r;
    r.id = rep.id();
    r.lifecycle = rep.lifecycle();
    r.role = rep.role();
    r.clock_s = s.now;
    r.routed = rep.routed();
    r.shed = s.shed;
    r.preemptions = s.preemptions;
    r.prefill_steps = s.prefill_steps;
    r.decode_steps = s.decode_steps;
    r.peak_kv_blocks = s.bm.peak_used_blocks();
    r.leaked_kv_blocks = s.bm.used_blocks();
    r.migrated_in = rep.migrated_in();
    r.migrated_out = rep.migrated_out();
    stats.replicas.push_back(r);
  }
  for (const sched::Request& r : requests) {
    if (r.finish_s >= 0 && r.replica >= 0) {
      ++stats.replicas[static_cast<std::size_t>(r.replica)].completed;
    }
  }
  if (obs != nullptr) {
    index_t allocated = 0;
    index_t freed = 0;
    index_t grow_failures = 0;
    for (const Replica& rep : fleet) {
      const sched::ReplicaState& s = rep.state();
      allocated += s.bm.blocks_allocated_total();
      freed += s.bm.blocks_freed_total();
      grow_failures += s.bm.grow_failures();
    }
    obs->on_run_end(stats.sched.sim_end_s, stats.sched.peak_kv_blocks,
                    stats.peak_replicas, allocated, freed, grow_failures);
    obs->on_prefix_cache_run_end(stats.sched.prefix_cache_lookup_blocks,
                                 stats.sched.prefix_cache_hit_blocks,
                                 stats.sched.prefix_cache_evictions,
                                 stats.sched.cow_forks,
                                 stats.sched.cow_copies);
  }
  return stats;
}

}  // namespace marlin::serve::cluster
