#include "serve/cluster/replica.hpp"

#include <algorithm>

#include "obs/serve_recorder.hpp"
#include "util/error.hpp"

namespace marlin::serve::cluster {

const char* to_string(ReplicaLifecycle lc) {
  switch (lc) {
    case ReplicaLifecycle::kActive:
      return "active";
    case ReplicaLifecycle::kDraining:
      return "draining";
    case ReplicaLifecycle::kRetired:
      return "retired";
  }
  return "?";
}

const char* to_string(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kUnified:
      return "unified";
    case ReplicaRole::kPrefill:
      return "prefill";
    case ReplicaRole::kDecode:
      return "decode";
  }
  return "?";
}

Replica::Replica(index_t id, const sched::Scheduler& scheduler,
                 ReplicaRole role)
    : id_(id), scheduler_(&scheduler),
      state_(scheduler.make_replica_state()), role_(role) {
  state_.replica_id = id;
}

void Replica::advance_to(double t) { state_.now = std::max(state_.now, t); }

void Replica::deliver(std::size_t request_id,
                      std::vector<sched::Request>& requests) {
  MARLIN_ASSERT(request_id < requests.size());
  MARLIN_CHECK(lifecycle_ == ReplicaLifecycle::kActive,
               "routed a request to " << to_string(lifecycle_) << " replica "
                                      << id_);
  sched::Request& r = requests[request_id];
  r.replica = id_;
  advance_to(r.arrival_s);
  state_.queue.push_back(request_id);
  ++routed_;
  if (state_.obs != nullptr) {
    state_.obs->on_request_queued(r.arrival_s, r.id, r.tenant_id, id_);
  }
}

void Replica::tick(std::vector<sched::Request>& requests) {
  scheduler_->admit(state_, requests);
  scheduler_->step(state_, requests);
  if (state_.obs != nullptr) {
    state_.obs->on_tick(state_.now, id_,
                        static_cast<index_t>(state_.queue.size()),
                        static_cast<index_t>(state_.running.size()),
                        state_.bm.used_blocks(), state_.bm.total_blocks());
  }
}

void Replica::register_tenants(const std::vector<sched::Request>& requests) {
  scheduler_->register_tenants(state_, requests);
}

void Replica::begin_drain() {
  if (lifecycle_ == ReplicaLifecycle::kActive) {
    lifecycle_ = ReplicaLifecycle::kDraining;
  }
}

bool Replica::try_retire() {
  if (lifecycle_ != ReplicaLifecycle::kDraining || state_.busy()) {
    return false;
  }
  lifecycle_ = ReplicaLifecycle::kRetired;
  return true;
}

void Replica::migrate_out(std::size_t request_id,
                          std::vector<sched::Request>& requests) {
  MARLIN_ASSERT(request_id < requests.size());
  sched::Request& r = requests[request_id];
  MARLIN_CHECK(r.state == sched::RequestState::kRunning,
               "cannot migrate request " << r.id << " in state "
                                         << to_string(r.state)
                                         << " (only running requests whose "
                                            "prefill completed may move)");
  MARLIN_CHECK(r.replica == id_, "request " << r.id << " is placed on replica "
                                            << r.replica << ", not " << id_);
  const auto it =
      std::find(state_.running.begin(), state_.running.end(), request_id);
  MARLIN_CHECK(it != state_.running.end(),
               "request " << r.id << " is not in replica " << id_
                          << "'s running batch");
  state_.running.erase(it);
  state_.bm.release(r.blocks, r.tenant_id);
  for (sched::SequenceBlocks& f : r.forks) state_.bm.release(f, r.tenant_id);
  r.forks.clear();
  ++migrated_out_;
}

index_t Replica::begin_migration(std::size_t request_id,
                                 std::vector<sched::Request>& requests) {
  MARLIN_ASSERT(request_id < requests.size());
  sched::Request& r = requests[request_id];
  sched::BlockManager& bm = state_.bm;
  r.blocks.reserve(
      static_cast<std::size_t>(bm.blocks_for_tokens(r.max_kv_tokens())));
  const index_t need = bm.blocks_for_tokens(r.prefill_target());
  index_t cached_tokens = 0;
  const sched::PrefixCacheConfig& pc = bm.config().prefix_cache;
  if (pc.enabled &&
      r.hashable_prefix_blocks(bm.block_size()) >= pc.min_prefix_blocks) {
    r.append_prefix_chain(bm.block_size(), need, probe_chain_);
    const index_t hits =
        bm.acquire_prefill(r.blocks, need, probe_chain_, r.tenant_id);
    // Blocks already published here don't cross the wire; count the
    // skipped tokens like a prefill-side cache hit.
    cached_tokens = hits * bm.block_size();
    state_.prefix_tokens_skipped += cached_tokens;
    if (hits > 0 && state_.obs != nullptr) {
      state_.obs->on_prefix_cache_hit(state_.now, r.id, id_, hits,
                                      cached_tokens);
    }
  } else {
    bm.acquire(r.blocks, need, r.tenant_id);
  }
  bm.publish(r.blocks);
  if (r.num_sequences > 1) {
    const index_t per_seq = bm.blocks_for_tokens(r.max_kv_tokens());
    r.forks.reserve(static_cast<std::size_t>(r.num_sequences - 1));
    for (index_t k = 1; k < r.num_sequences; ++k) {
      r.forks.push_back(bm.fork(r.blocks, r.tenant_id, per_seq));
    }
  }
  return cached_tokens;
}

void Replica::finish_migration(std::size_t request_id, double ready_s,
                               std::vector<sched::Request>& requests) {
  MARLIN_ASSERT(request_id < requests.size());
  sched::Request& r = requests[request_id];
  r.replica = id_;
  advance_to(ready_s);
  state_.running.push_back(request_id);
  ++migrated_in_;
}

index_t Replica::outstanding_tokens(
    const std::vector<sched::Request>& requests) const {
  index_t total = 0;
  const auto owed = [&](std::size_t id) {
    const sched::Request& r = requests[id];
    return (r.prefill_target() - r.prefilled) +
           (r.output_tokens - r.generated);
  };
  for (const std::size_t id : state_.queue) total += owed(id);
  for (const std::size_t id : state_.prefilling) total += owed(id);
  for (const std::size_t id : state_.running) total += owed(id);
  return total;
}

index_t Replica::cached_prefix_blocks(const sched::Request& r) const {
  const sched::BlockManager& bm = state_.bm;
  if (!bm.config().prefix_cache.enabled) return 0;
  r.append_prefix_chain(bm.block_size(),
                        bm.blocks_for_tokens(r.prefill_target()),
                        probe_chain_);
  return bm.cached_chain_blocks(probe_chain_);
}

}  // namespace marlin::serve::cluster
