#include "serve/cluster/replica.hpp"

#include <algorithm>

#include "obs/serve_recorder.hpp"
#include "util/error.hpp"

namespace marlin::serve::cluster {

const char* to_string(ReplicaLifecycle lc) {
  switch (lc) {
    case ReplicaLifecycle::kActive:
      return "active";
    case ReplicaLifecycle::kDraining:
      return "draining";
    case ReplicaLifecycle::kRetired:
      return "retired";
  }
  return "?";
}

Replica::Replica(index_t id, const sched::Scheduler& scheduler)
    : id_(id), scheduler_(&scheduler),
      state_(scheduler.make_replica_state()) {
  state_.replica_id = id;
}

void Replica::advance_to(double t) { state_.now = std::max(state_.now, t); }

void Replica::deliver(std::size_t request_id,
                      std::vector<sched::Request>& requests) {
  MARLIN_ASSERT(request_id < requests.size());
  MARLIN_CHECK(lifecycle_ == ReplicaLifecycle::kActive,
               "routed a request to " << to_string(lifecycle_) << " replica "
                                      << id_);
  sched::Request& r = requests[request_id];
  r.replica = id_;
  advance_to(r.arrival_s);
  state_.queue.push_back(request_id);
  ++routed_;
  if (state_.obs != nullptr) {
    state_.obs->on_request_queued(r.arrival_s, r.id, r.tenant_id, id_);
  }
}

void Replica::tick(std::vector<sched::Request>& requests) {
  scheduler_->admit(state_, requests);
  scheduler_->step(state_, requests);
  if (state_.obs != nullptr) {
    state_.obs->on_tick(state_.now, id_,
                        static_cast<index_t>(state_.queue.size()),
                        static_cast<index_t>(state_.running.size()),
                        state_.bm.used_blocks(), state_.bm.total_blocks());
  }
}

void Replica::register_tenants(const std::vector<sched::Request>& requests) {
  scheduler_->register_tenants(state_, requests);
}

void Replica::begin_drain() {
  if (lifecycle_ == ReplicaLifecycle::kActive) {
    lifecycle_ = ReplicaLifecycle::kDraining;
  }
}

bool Replica::try_retire() {
  if (lifecycle_ != ReplicaLifecycle::kDraining || state_.busy()) {
    return false;
  }
  lifecycle_ = ReplicaLifecycle::kRetired;
  return true;
}

index_t Replica::outstanding_tokens(
    const std::vector<sched::Request>& requests) const {
  index_t total = 0;
  const auto owed = [&](std::size_t id) {
    const sched::Request& r = requests[id];
    return (r.prefill_target() - r.prefilled) +
           (r.output_tokens - r.generated);
  };
  for (const std::size_t id : state_.queue) total += owed(id);
  for (const std::size_t id : state_.prefilling) total += owed(id);
  for (const std::size_t id : state_.running) total += owed(id);
  return total;
}

index_t Replica::cached_prefix_blocks(const sched::Request& r) const {
  const sched::BlockManager& bm = state_.bm;
  if (!bm.config().prefix_cache.enabled) return 0;
  r.append_prefix_chain(bm.block_size(),
                        bm.blocks_for_tokens(r.prefill_target()),
                        probe_chain_);
  return bm.cached_chain_blocks(probe_chain_);
}

}  // namespace marlin::serve::cluster
