#pragma once
// Front-end request router: picks the replica a newly arrived request is
// placed on. Placement is pluggable and strictly deterministic — the
// router sees arrivals in trace order at deterministic points of the
// EventLoop, so every policy reproduces bit-identically at any thread
// count.
//
//   * kRoundRobin     — rotate over routable replicas in id order.
//   * kLeastLoaded    — fewest outstanding tokens (prefill + decode still
//                       owed across queue and flights); ties go to the
//                       lowest replica id.
//   * kSessionAffinity — hash the tenant id onto the routable set, so one
//                       tenant's requests land on one replica while the
//                       fleet size holds (the hook prefix caching will
//                       later exploit). Uses a fixed splitmix64-style
//                       mixer, never std::hash (implementation-defined).

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "serve/cluster/replica.hpp"
#include "util/hash.hpp"

namespace marlin::serve::cluster {

enum class Placement { kRoundRobin, kLeastLoaded, kSessionAffinity };

const char* to_string(Placement p);
/// Parses "round-robin" / "least-loaded" / "session-affinity"; throws on
/// anything else.
Placement placement_by_name(const std::string& name);

/// Deterministic 64-bit mix (splitmix64 finalizer) — the session-affinity
/// hash. The implementation moved to `util/hash.hpp` when the prefix
/// cache started chaining it over KV blocks; this alias keeps the
/// historical spelling (and its known-answer tests) stable.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  return util::mix64(x);
}

class Router {
 public:
  /// `obs` (borrowed, may be null) records one placement instant per
  /// arrival on the cluster/router trace track.
  explicit Router(Placement placement, obs::ServeRecorder* obs = nullptr)
      : placement_(placement), obs_(obs) {}

  [[nodiscard]] Placement placement() const { return placement_; }

  /// Picks the routable replica for `r` and returns its index into
  /// `fleet`. Throws if no replica is routable.
  [[nodiscard]] std::size_t pick(const sched::Request& r,
                                 const std::deque<Replica>& fleet,
                                 const std::vector<sched::Request>& requests);

  /// Read-only prefix-cache probe over the fleet: resizes `out` to
  /// `fleet.size()` and fills `out[i]` with the blocks of `r`'s prompt
  /// replica `i` already holds cached, or -1 when replica `i` is not
  /// routable. Groundwork for a prefix-affinity placement policy; no
  /// refcounts move and no placement is made.
  void probe_cached_prefix(const sched::Request& r,
                           const std::deque<Replica>& fleet,
                           std::vector<index_t>& out) const;

 private:
  Placement placement_;
  obs::ServeRecorder* obs_;
  std::size_t rr_cursor_ = 0;  // next round-robin *routable-set* slot
  /// Reused routable-set scratch: `pick` runs once per arrival, and the
  /// capacity retained here keeps the routing hot path allocation-free.
  std::vector<std::size_t> routable_;
};

}  // namespace marlin::serve::cluster
