#pragma once
// Per-rank worker model for tensor/pipeline-parallel serving.
//
// The world is a tensor_parallel x pipeline_parallel grid of ranks. Each
// worker is one rank: it owns
//
//   * its weight shard — a contiguous range of transformer blocks (the
//     rank's pipeline stage, balanced to within one layer, remainders on
//     the early stages) column/row-split across the tensor-parallel
//     group, plus the FP16 embedding table on stage 0 and the FP16 LM
//     head on the last stage;
//   * its KV blocks — a per-rank paged-cache budget derived from
//     `DeviceSpec::hbm_gb` minus the rank's weight shard (the rank only
//     caches KV for its own layers, sharded across TP). Block allocation
//     is mirrored across ranks in lockstep, so the scheduler drives one
//     logical BlockManager sized to the *minimum* rank budget;
//   * its compute time — the engine's per-layer prices composed over the
//     stage's layer range, which the ParallelEngine maxes over ranks.
//
// Workers are immutable models (safe to share across concurrent sweeps);
// mutable per-simulation state lives in the BlockManager instances they
// hand out.

#include "serve/engine.hpp"
#include "serve/parallel/parallel_config.hpp"
#include "serve/sched/block_manager.hpp"

namespace marlin::serve::parallel {

/// Coordinates of one rank in the parallelism grid.
struct RankId {
  int tp = 0;     // position in the tensor-parallel group
  int stage = 0;  // pipeline stage
};

class Worker {
 public:
  Worker(const Engine& engine, const ParallelConfig& cfg, RankId rank);

  [[nodiscard]] const RankId& rank() const { return rank_; }
  [[nodiscard]] index_t first_layer() const { return first_layer_; }
  /// Transformer blocks this rank's pipeline stage owns.
  [[nodiscard]] index_t num_layers() const { return num_layers_; }
  [[nodiscard]] bool has_embedding() const { return rank_.stage == 0; }
  [[nodiscard]] bool has_lm_head() const;

  /// Bytes of weights resident on this rank: the stage's blocks at the
  /// engine's quantized width plus the FP16 embedding/head where owned,
  /// all divided across the tensor-parallel group.
  [[nodiscard]] double weight_shard_bytes() const;
  /// KV bytes one context token occupies on THIS rank (its layers only,
  /// KV heads sharded across TP).
  [[nodiscard]] double kv_bytes_per_token() const;
  /// Paged KV block budget of this rank: HBM minus the weight shard minus
  /// an activation reserve, in blocks of `block_size` tokens. Throws with
  /// a clear deficit message when the shard alone overflows the device.
  [[nodiscard]] index_t kv_block_budget(index_t block_size,
                                        double activation_reserve = 0.1) const;
  /// A fresh per-simulation BlockManager over this rank's budget.
  [[nodiscard]] sched::BlockManager make_block_manager(
      index_t block_size, double activation_reserve = 0.1) const;

  /// Compute seconds of one decode microbatch of `mb_tokens` sequences at
  /// `avg_context` on this rank (linear layers + paged attention + LM
  /// head where owned; no communication).
  [[nodiscard]] double decode_compute_seconds(index_t mb_tokens,
                                              double avg_context) const;
  /// Compute seconds of one prefill microbatch totalling `mb_tokens` new
  /// tokens of `prompt_tokens`-long prompts on this rank.
  [[nodiscard]] double prefill_compute_seconds(index_t mb_tokens,
                                               index_t prompt_tokens) const;
  /// Compute seconds of one speculative *verification* microbatch of
  /// `seqs` sequences, each scoring `1 + depth` candidate tokens: linear
  /// layers (and LM head, where owned) run at `seqs * (depth + 1)` tokens
  /// while each sequence's paged KV is streamed once per layer.
  [[nodiscard]] double verify_compute_seconds(index_t seqs,
                                              double avg_context,
                                              index_t depth) const;
  /// Tensor-parallel all-reduce seconds this rank pays per microbatch of
  /// `tokens` (two ring all-reduces per owned transformer block).
  [[nodiscard]] double tp_comm_seconds(index_t tokens) const;
  /// Per-microbatch decode stage seconds with each block's all-reduces
  /// split into `comm_buckets` chunks whose transfer overlaps the next
  /// block's compute. `comm_buckets <= 1` (or TP=1) reproduces
  /// `decode_compute_seconds + tp_comm_seconds` bit-for-bit; the result
  /// is never above that serialized schedule.
  [[nodiscard]] double overlapped_decode_stage_seconds(index_t mb_tokens,
                                                       double avg_context,
                                                       int comm_buckets) const;

 private:
  const Engine* engine_;
  ParallelConfig cfg_;
  RankId rank_;
  index_t first_layer_ = 0;
  index_t num_layers_ = 0;
};

}  // namespace marlin::serve::parallel
