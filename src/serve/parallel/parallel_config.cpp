#include "serve/parallel/parallel_config.hpp"

#include <sstream>

#include "util/error.hpp"

namespace marlin::serve::parallel {

void ParallelConfig::validate() const {
  MARLIN_CHECK(tensor_parallel >= 1,
               "tensor-parallel degree must be >= 1, got " << tensor_parallel);
  MARLIN_CHECK(pipeline_parallel >= 1,
               "pipeline-parallel degree must be >= 1, got "
                   << pipeline_parallel);
  MARLIN_CHECK(microbatches >= 0,
               "microbatch count must be >= 0 (0 = one per stage), got "
                   << microbatches);
  MARLIN_CHECK(comm_buckets >= 1,
               "comm-bucket count must be >= 1 (1 = serialized), got "
                   << comm_buckets);
}

std::string ParallelConfig::to_string() const {
  std::ostringstream os;
  os << "tp" << tensor_parallel << " pp" << pipeline_parallel;
  if (microbatches > 0 && microbatches != pipeline_parallel) {
    os << " mb" << microbatches;
  }
  if (comm_buckets > 1) os << " cb" << comm_buckets;
  return os.str();
}

}  // namespace marlin::serve::parallel
