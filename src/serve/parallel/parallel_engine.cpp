#include "serve/parallel/parallel_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace marlin::serve::parallel {

namespace {

/// Microbatch count and per-microbatch sequence count for a step over
/// `batch` sequences: never more microbatches than sequences, sizes are
/// the ceiling split (the pipeline is paced by its largest microbatch).
struct MicrobatchPlan {
  int count = 1;
  index_t seqs = 0;
};

MicrobatchPlan plan_microbatches(const ParallelConfig& cfg, index_t batch) {
  MicrobatchPlan p;
  p.count = static_cast<int>(
      std::min<index_t>(cfg.effective_microbatches(), batch));
  p.count = std::max(p.count, 1);
  p.seqs = (batch + p.count - 1) / p.count;
  return p;
}

}  // namespace

ParallelEngine::ParallelEngine(const Engine& engine, ParallelConfig cfg)
    : engine_(engine), cfg_(cfg), link_(Interconnect::of(engine.config().gpu)) {
  cfg_.validate();
  MARLIN_CHECK(cfg_.trivial() || engine_.config().num_gpus == 1,
               "ParallelConfig owns all sharding: configure the Engine with "
               "num_gpus == 1 (got "
                   << engine_.config().num_gpus << ") instead of combining it "
                   << "with " << cfg_.to_string());
  workers_.reserve(static_cast<std::size_t>(cfg_.world_size()));
  for (int stage = 0; stage < cfg_.pipeline_parallel; ++stage) {
    for (int tp = 0; tp < cfg_.tensor_parallel; ++tp) {
      workers_.emplace_back(engine_, cfg_, RankId{tp, stage});
    }
  }
}

StepBreakdown ParallelEngine::decode_breakdown_at(
    index_t batch, double bucket_context) const {
  const auto mb = plan_microbatches(cfg_, batch);
  StepBreakdown b;
  b.microbatches = mb.count;

  // Per-microbatch stage time: max over every rank of compute plus its
  // tensor-parallel all-reduce share. Iterate in rank order with a strict
  // greater-than so the argmax is deterministic. With comm_buckets > 1
  // the schedule the step actually pays is the overlapped one, tracked as
  // a second max over the same rank order; comm_buckets == 1 keeps both
  // maxima equal by construction.
  double stage_max = 0.0;
  double stage_max_overlapped = 0.0;
  for (const Worker& w : workers_) {
    const double compute = w.decode_compute_seconds(mb.seqs, bucket_context);
    const double comm = w.tp_comm_seconds(mb.seqs);
    if (compute + comm > stage_max) {
      stage_max = compute + comm;
      b.stage_compute_s = compute;
      b.tp_comm_s = comm;
    }
    stage_max_overlapped = std::max(
        stage_max_overlapped,
        w.overlapped_decode_stage_seconds(mb.seqs, bucket_context,
                                          cfg_.comm_buckets));
  }

  const int pp = cfg_.pipeline_parallel;
  const double activation_bytes =
      static_cast<double>(mb.seqs) *
      static_cast<double>(engine_.config().model.hidden) * 2.0;
  b.pp_send_s = static_cast<double>(pp - 1) *
                link_.transfer_seconds(activation_bytes);

  const double slots = static_cast<double>(mb.count + pp - 1);
  b.bubble_fraction = static_cast<double>(pp - 1) / slots;
  b.overlap_saved_s = slots * (stage_max - stage_max_overlapped);
  b.total_s = slots * stage_max_overlapped + b.pp_send_s +
              engine_.config().step_overhead_s;
  return b;
}

StepBreakdown ParallelEngine::decode_breakdown(index_t batch,
                                               double avg_context) const {
  MARLIN_CHECK(batch >= 1, "batch must be >= 1");
  if (cfg_.trivial()) {
    StepBreakdown b;
    b.total_s = engine_.decode_step_seconds(batch, avg_context);
    b.stage_compute_s = b.total_s - engine_.config().step_overhead_s;
    return b;
  }
  // Mirror the Engine's 64-token context bucketing so memo hits and fresh
  // computations see the same context value.
  const auto bucket = static_cast<index_t>(avg_context / 64.0);
  return decode_breakdown_at(batch, static_cast<double>(bucket) * 64.0 + 32.0);
}

bool ParallelEngine::decode_split(index_t batch, double avg_context,
                                  double* compute_s, double* comm_s,
                                  double* bubble_fraction) const {
  // Trivial configs delegate to the wrapped Engine, which has no split.
  if (cfg_.trivial()) return false;
  const StepBreakdown b = decode_breakdown(batch, avg_context);
  *compute_s = b.stage_compute_s;
  *comm_s = b.tp_comm_s + b.pp_send_s;
  *bubble_fraction = b.bubble_fraction;
  return true;
}

double ParallelEngine::decode_step_seconds(index_t batch,
                                           double avg_context) const {
  MARLIN_CHECK(batch >= 1, "batch must be >= 1");
  if (cfg_.trivial()) return engine_.decode_step_seconds(batch, avg_context);
  const auto bucket = static_cast<index_t>(avg_context / 64.0);
  const auto key = std::make_pair(batch, bucket);
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = decode_cache_.find(key); it != decode_cache_.end()) {
      return it->second;
    }
  }
  const double t =
      decode_breakdown_at(batch, static_cast<double>(bucket) * 64.0 + 32.0)
          .total_s;
  const std::lock_guard lock(cache_mutex_);
  decode_cache_[key] = t;
  return t;
}

double ParallelEngine::verify_step_seconds(index_t batch, double avg_context,
                                           index_t depth) const {
  MARLIN_CHECK(batch >= 1, "batch must be >= 1");
  MARLIN_CHECK(depth >= 0, "speculation depth must be >= 0");
  if (cfg_.trivial()) {
    return engine_.verify_step_seconds(batch, avg_context, depth);
  }
  if (depth == 0) return decode_step_seconds(batch, avg_context);
  const auto bucket = static_cast<index_t>(avg_context / 64.0);
  const auto key = std::make_tuple(batch, bucket, depth);
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = verify_cache_.find(key); it != verify_cache_.end()) {
      return it->second;
    }
  }
  const double ctx = static_cast<double>(bucket) * 64.0 + 32.0;
  const auto mb = plan_microbatches(cfg_, batch);
  const index_t mb_tokens = mb.seqs * (depth + 1);

  // Same composition as a decode step, with each stage verifying the
  // widened candidate batch: compute and TP all-reduces price
  // (depth + 1)x the tokens, activations on the stage boundaries carry
  // every candidate.
  double stage_max = 0.0;
  for (const Worker& w : workers_) {
    const double t = w.verify_compute_seconds(mb.seqs, ctx, depth) +
                     w.tp_comm_seconds(mb_tokens);
    stage_max = std::max(stage_max, t);
  }
  const int pp = cfg_.pipeline_parallel;
  const double activation_bytes =
      static_cast<double>(mb_tokens) *
      static_cast<double>(engine_.config().model.hidden) * 2.0;
  const double send = pp > 1 ? static_cast<double>(pp - 1) *
                                   link_.transfer_seconds(activation_bytes)
                             : 0.0;
  const double t = static_cast<double>(mb.count + pp - 1) * stage_max + send +
                   engine_.config().step_overhead_s;
  const std::lock_guard lock(cache_mutex_);
  verify_cache_[key] = t;
  return t;
}

double ParallelEngine::prefill_seconds(index_t batch,
                                       index_t prompt_tokens) const {
  if (cfg_.trivial()) return engine_.prefill_seconds(batch, prompt_tokens);
  MARLIN_CHECK(batch >= 1, "batch must be >= 1");
  const auto mb = plan_microbatches(cfg_, batch);
  const index_t mb_tokens = mb.seqs * std::max<index_t>(1, prompt_tokens);

  double stage_max = 0.0;
  for (const Worker& w : workers_) {
    const double t = w.prefill_compute_seconds(mb_tokens, prompt_tokens) +
                     w.tp_comm_seconds(mb_tokens);
    stage_max = std::max(stage_max, t);
  }
  const int pp = cfg_.pipeline_parallel;
  const double activation_bytes =
      static_cast<double>(mb_tokens) *
      static_cast<double>(engine_.config().model.hidden) * 2.0;
  const double send = pp > 1 ? static_cast<double>(pp - 1) *
                                   link_.transfer_seconds(activation_bytes)
                             : 0.0;
  return static_cast<double>(mb.count + pp - 1) * stage_max + send +
         engine_.config().prefill_overhead_s;
}

void ParallelEngine::warm_decode_cache(const SimContext& ctx,
                                       index_t max_batch,
                                       double max_context) const {
  if (cfg_.trivial()) {
    engine_.warm_decode_cache(ctx, max_batch, max_context);
    return;
  }
  if (ctx.serial()) return;
  MARLIN_CHECK(max_batch >= 1, "batch must be >= 1");
  // One task per batch size fills the per-rank step model (and, through
  // it, the Engine's per-block memo) concurrently; cached values equal
  // on-demand computation bit-for-bit, so warming never changes results.
  const auto buckets = static_cast<index_t>(max_context / 64.0) + 1;
  ctx.parallel_for(1, max_batch + 1, [&](std::int64_t batch) {
    for (index_t b = 0; b < buckets; ++b) {
      (void)decode_step_seconds(batch, static_cast<double>(b) * 64.0 + 1.0);
    }
  });
}

index_t ParallelEngine::min_kv_block_budget(index_t block_size,
                                            double activation_reserve) const {
  index_t budget = 0;
  for (const Worker& w : workers_) {
    const index_t b = w.kv_block_budget(block_size, activation_reserve);
    budget = budget == 0 ? b : std::min(budget, b);
  }
  return budget;
}

double ParallelEngine::max_weight_shard_bytes() const {
  double bytes = 0.0;
  for (const Worker& w : workers_) {
    bytes = std::max(bytes, w.weight_shard_bytes());
  }
  return bytes;
}

}  // namespace marlin::serve::parallel
