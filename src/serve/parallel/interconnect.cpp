#include "serve/parallel/interconnect.hpp"

#include "util/error.hpp"

namespace marlin::serve::parallel {

double Interconnect::transfer_seconds(double bytes) const {
  MARLIN_CHECK(bytes >= 0.0, "negative transfer size");
  return bytes / bytes_per_s + latency_s;
}

double Interconnect::allreduce_seconds(double bytes, int ranks) const {
  MARLIN_CHECK(bytes >= 0.0, "negative all-reduce size");
  MARLIN_CHECK(ranks >= 1, "all-reduce needs at least one rank");
  if (ranks == 1) return 0.0;
  const double g = static_cast<double>(ranks);
  // Ring: reduce-scatter + all-gather, each moving (g-1)/g of the payload
  // per rank across g-1 latency-bound steps. Deliberately finer than the
  // legacy Engine::allreduce_seconds (one hop per op), which is pinned by
  // the fig14/table2 goldens and must not change.
  return 2.0 * (g - 1.0) / g * bytes / bytes_per_s +
         2.0 * (g - 1.0) * latency_s;
}

}  // namespace marlin::serve::parallel
