#pragma once
// Interconnect timing model for the multi-GPU serving simulator.
//
// Prices the two communication patterns the parallelism model needs on
// the device's NVLink/PCIe link (`DeviceSpec::interconnect_*`):
//
//   * ring all-reduce across the tensor-parallel group — each rank moves
//     2(g-1)/g of the payload over 2(g-1) latency-bound steps;
//   * point-to-point activation send/recv across a pipeline-stage
//     boundary — one serialized transfer plus one hop of latency.

#include "gpusim/device.hpp"

namespace marlin::serve::parallel {

struct Interconnect {
  double bytes_per_s = 0;
  double latency_s = 0;

  [[nodiscard]] static Interconnect of(const gpusim::DeviceSpec& d) {
    return {d.interconnect_bytes_per_s(), d.interconnect_latency_s};
  }

  /// One point-to-point transfer of `bytes` (pipeline activation
  /// send/recv across one stage boundary).
  [[nodiscard]] double transfer_seconds(double bytes) const;

  /// One ring all-reduce of `bytes` across `ranks` peers; free when the
  /// group is a single rank.
  [[nodiscard]] double allreduce_seconds(double bytes, int ranks) const;
};

}  // namespace marlin::serve::parallel
