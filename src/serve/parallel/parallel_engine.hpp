#pragma once
// Multi-GPU tensor/pipeline-parallel step model over the single-device
// Engine cost model.
//
// A step is priced as the pipeline schedule of `microbatches` microbatches
// over `pipeline_parallel` stages, each stage's per-microbatch time being
// the max over its tensor-parallel ranks of (layer compute + two ring
// all-reduces per block), plus the activation send/recv the last
// microbatch pays on every stage boundary:
//
//   T_stage = max over ranks of (compute + tp all-reduce)   [per microbatch]
//   step    = (microbatches + stages - 1) * T_stage_max
//             + (stages - 1) * send(activation bytes)
//             + engine step overhead (once, global)
//
// The fill/drain bubble fraction is (stages-1)/(microbatches+stages-1).
//
// With `ParallelConfig::comm_buckets > 1` a decode stage's per-block
// all-reduces are split into chunks that overlap the next block's compute
// (see Worker::overlapped_decode_stage_seconds); the stage time becomes
// the max over ranks of that overlapped schedule, never above the
// serialized one, and the difference is surfaced per step as
// `StepBreakdown::overlap_saved_s`. The default (1 bucket) reproduces the
// serialized pricing bit-for-bit.
//
// The trivial config (TP=1, PP=1) delegates every query to the wrapped
// Engine, so it reproduces the legacy single-device numbers — and the
// fig15/fig16/serve_scheduler goldens — bit-for-bit. Non-trivial configs
// require the Engine to be configured with num_gpus == 1: the
// ParallelConfig owns all sharding (the legacy `num_gpus` weight split
// must not compound with it).
//
// Deterministic and memoised like the Engine; safe to share across
// concurrent sweep workers. `warm_decode_cache` fans the per-rank step
// evaluation onto the SimContext pool with bit-identical results.

#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "serve/engine.hpp"
#include "serve/parallel/interconnect.hpp"
#include "serve/parallel/worker.hpp"

namespace marlin::serve::parallel {

/// Where one decode step's latency goes, for benches and tests.
struct StepBreakdown {
  double total_s = 0;
  /// Slowest stage's per-microbatch compute (max over ranks).
  double stage_compute_s = 0;
  /// That stage's tensor-parallel all-reduce share per microbatch.
  double tp_comm_s = 0;
  /// Activation send/recv the last microbatch pays across all boundaries.
  double pp_send_s = 0;
  int microbatches = 1;
  /// Pipeline fill/drain bubble fraction, (pp-1)/(mb+pp-1).
  double bubble_fraction = 0;
  /// Seconds the bucketed all-reduce/compute overlap removed from the
  /// serialized schedule (0 when `comm_buckets` is 1, the default).
  double overlap_saved_s = 0;
};

class ParallelEngine final : public StepModel {
 public:
  ParallelEngine(const Engine& engine, ParallelConfig cfg);

  [[nodiscard]] double decode_step_seconds(index_t batch,
                                           double avg_context) const override;
  [[nodiscard]] double prefill_seconds(index_t batch,
                                       index_t prompt_tokens) const override;
  /// Speculative verification across the rank grid: the whole draft batch
  /// is verified in one pipelined step — per-microbatch stage time is the
  /// max over ranks of `Worker::verify_compute_seconds` plus the TP
  /// all-reduce at the widened `(depth + 1)x` token count, with the usual
  /// pipeline fill/drain and activation sends. Memoised like decode.
  [[nodiscard]] double verify_step_seconds(index_t batch, double avg_context,
                                           index_t depth) const override;
  void warm_decode_cache(const SimContext& ctx, index_t max_batch,
                         double max_context) const override;

  /// Latency decomposition of one decode step (not memoised; the total
  /// equals decode_step_seconds bit-for-bit).
  [[nodiscard]] StepBreakdown decode_breakdown(index_t batch,
                                               double avg_context) const;

  /// Observability split over `decode_breakdown`: per-microbatch stage
  /// compute, communication (TP all-reduce share plus activation sends)
  /// and the pipeline bubble fraction.
  [[nodiscard]] bool decode_split(index_t batch, double avg_context,
                                  double* compute_s, double* comm_s,
                                  double* bubble_fraction) const override;

  [[nodiscard]] const ParallelConfig& config() const { return cfg_; }
  [[nodiscard]] const Engine& engine() const { return engine_; }
  /// All world_size() workers, stage-major ((tp 0..n, stage 0), ...).
  [[nodiscard]] const std::vector<Worker>& workers() const { return workers_; }
  [[nodiscard]] const Interconnect& link() const { return link_; }

  /// The binding per-rank KV block budget: block allocation is mirrored
  /// across ranks, so the scheduler budget is the minimum over workers.
  [[nodiscard]] index_t min_kv_block_budget(
      index_t block_size, double activation_reserve = 0.1) const;
  /// Largest weight shard any rank holds.
  [[nodiscard]] double max_weight_shard_bytes() const;

 private:
  [[nodiscard]] StepBreakdown decode_breakdown_at(index_t batch,
                                                  double bucket_context) const;

  const Engine& engine_;
  ParallelConfig cfg_;
  std::vector<Worker> workers_;
  Interconnect link_;
  mutable std::mutex cache_mutex_;
  mutable std::map<std::pair<index_t, index_t>, double> decode_cache_;
  mutable std::map<std::tuple<index_t, index_t, index_t>, double>
      verify_cache_;
};

}  // namespace marlin::serve::parallel
