#pragma once
// Multi-GPU parallelism configuration for the serving timing model.
//
// Tensor parallelism (TP) splits every linear layer Megatron-style across
// `tensor_parallel` ranks and pays two ring all-reduces per transformer
// block. Pipeline parallelism (PP) splits the layer stack into
// `pipeline_parallel` contiguous stages and pays one activation send/recv
// per stage boundary; a step is split into `microbatches` microbatches so
// stages overlap (fill/drain bubbles shrink as microbatches grow).
//
// The trivial config (TP=1, PP=1) is the single-device model and is
// guaranteed to reproduce the legacy `Engine` numbers bit-for-bit.

#include <string>

namespace marlin::serve::parallel {

struct ParallelConfig {
  int tensor_parallel = 1;
  int pipeline_parallel = 1;
  /// Microbatches per engine step under pipeline parallelism;
  /// 0 = one per pipeline stage (the classic fill/drain minimum).
  int microbatches = 0;
  /// Chunks each per-block tensor-parallel all-reduce is split into so
  /// its transfer overlaps the next block's compute (decode steps only).
  /// 1 = the serialized compute-then-communicate pricing, bit-identical
  /// to the pre-overlap model. More buckets hide more bandwidth time but
  /// pay the ring's latency term once per chunk; the stage time is never
  /// priced above the serialized schedule.
  int comm_buckets = 1;

  [[nodiscard]] int world_size() const {
    return tensor_parallel * pipeline_parallel;
  }
  [[nodiscard]] bool trivial() const {
    return tensor_parallel == 1 && pipeline_parallel == 1;
  }
  [[nodiscard]] int effective_microbatches() const {
    return microbatches > 0 ? microbatches : pipeline_parallel;
  }

  /// Throws on a malformed config (degrees < 1, negative microbatches,
  /// comm buckets < 1).
  void validate() const;
  /// Compact label, e.g. "tp2 pp2", "tp1 pp4 mb8" or "tp4 pp1 cb4".
  [[nodiscard]] std::string to_string() const;
};

}  // namespace marlin::serve::parallel
