#include "serve/parallel/worker.hpp"

#include <algorithm>
#include <sstream>

#include "serve/parallel/interconnect.hpp"
#include "util/error.hpp"

namespace marlin::serve::parallel {

Worker::Worker(const Engine& engine, const ParallelConfig& cfg, RankId rank)
    : engine_(&engine), cfg_(cfg), rank_(rank) {
  cfg_.validate();
  MARLIN_CHECK(rank_.tp >= 0 && rank_.tp < cfg_.tensor_parallel,
               "tp rank " << rank_.tp << " outside tensor-parallel group of "
                          << cfg_.tensor_parallel);
  MARLIN_CHECK(rank_.stage >= 0 && rank_.stage < cfg_.pipeline_parallel,
               "stage " << rank_.stage << " outside pipeline of "
                        << cfg_.pipeline_parallel);
  const index_t layers = engine.config().model.num_layers;
  MARLIN_CHECK(cfg_.pipeline_parallel <= layers,
               "pipeline-parallel degree " << cfg_.pipeline_parallel
                                           << " exceeds the model's " << layers
                                           << " layers");
  // Balanced contiguous partition; the first `rem` stages take one extra
  // layer (the last stage already carries the LM head).
  const index_t base = layers / cfg_.pipeline_parallel;
  const index_t rem = layers % cfg_.pipeline_parallel;
  const auto stage = static_cast<index_t>(rank_.stage);
  num_layers_ = base + (stage < rem ? 1 : 0);
  first_layer_ = stage * base + std::min(stage, rem);
}

bool Worker::has_lm_head() const {
  return rank_.stage == cfg_.pipeline_parallel - 1;
}

double Worker::weight_shard_bytes() const {
  const auto& model = engine_->config().model;
  const double tp = static_cast<double>(cfg_.tensor_parallel);
  double bytes = model.params_per_block() * static_cast<double>(num_layers_) *
                 engine_->weight_bits() / 8.0 / tp;
  // Embedding and LM head stay FP16, vocab-split across the TP group.
  if (has_embedding()) bytes += model.embedding_params() * 2.0 / tp;
  if (has_lm_head()) bytes += model.embedding_params() * 2.0 / tp;
  return bytes;
}

double Worker::kv_bytes_per_token() const {
  const auto& model = engine_->config().model;
  return 2.0 * static_cast<double>(num_layers_) *
         static_cast<double>(model.num_kv_heads) *
         static_cast<double>(model.head_dim) * 2.0 /
         static_cast<double>(cfg_.tensor_parallel);
}

index_t Worker::kv_block_budget(index_t block_size,
                                double activation_reserve) const {
  std::ostringstream what;
  what << engine_->config().model.name << " rank (tp " << rank_.tp
       << ", stage " << rank_.stage << ", " << num_layers_ << " layers)";
  return sched::kv_blocks_that_fit(
      engine_->config().gpu.hbm_bytes(), weight_shard_bytes(),
      kv_bytes_per_token(), block_size, activation_reserve,
      what.str() + " on " + engine_->config().gpu.name);
}

sched::BlockManager Worker::make_block_manager(
    index_t block_size, double activation_reserve) const {
  sched::BlockManagerConfig bc;
  bc.block_size = block_size;
  bc.num_blocks = kv_block_budget(block_size, activation_reserve);
  return sched::BlockManager(bc);
}

double Worker::decode_compute_seconds(index_t mb_tokens,
                                      double avg_context) const {
  const double layers = static_cast<double>(num_layers_);
  double t = layers * engine_->block_linear_seconds(mb_tokens,
                                                    cfg_.tensor_parallel) +
             layers * engine_->attention_layer_seconds(mb_tokens, avg_context,
                                                       cfg_.tensor_parallel);
  if (has_lm_head()) {
    t += engine_->lm_head_seconds(mb_tokens, cfg_.tensor_parallel);
  }
  return t;
}

double Worker::prefill_compute_seconds(index_t mb_tokens,
                                       index_t prompt_tokens) const {
  const double layers = static_cast<double>(num_layers_);
  double t = layers * engine_->block_linear_seconds(mb_tokens,
                                                    cfg_.tensor_parallel) +
             layers * engine_->prefill_attention_layer_seconds(
                          mb_tokens, prompt_tokens, cfg_.tensor_parallel);
  if (has_lm_head()) {
    t += engine_->lm_head_seconds(mb_tokens, cfg_.tensor_parallel);
  }
  return t;
}

double Worker::verify_compute_seconds(index_t seqs, double avg_context,
                                      index_t depth) const {
  const index_t m = seqs * (depth + 1);
  const double layers = static_cast<double>(num_layers_);
  double t = layers * engine_->block_linear_seconds(m,
                                                    cfg_.tensor_parallel) +
             layers * engine_->attention_layer_seconds(seqs, avg_context,
                                                       cfg_.tensor_parallel);
  if (has_lm_head()) {
    t += engine_->lm_head_seconds(m, cfg_.tensor_parallel);
  }
  return t;
}

double Worker::overlapped_decode_stage_seconds(index_t mb_tokens,
                                               double avg_context,
                                               int comm_buckets) const {
  const double serialized =
      decode_compute_seconds(mb_tokens, avg_context) +
      tp_comm_seconds(mb_tokens);
  if (comm_buckets <= 1 || cfg_.tensor_parallel == 1 || num_layers_ == 0) {
    return serialized;
  }
  // Per-block pieces: compute of one transformer block, and its two ring
  // all-reduces. Splitting an all-reduce into `comm_buckets` chunks keeps
  // the chunks in flight back to back on the link, so the ring's latency
  // hops amortize across the pipeline and the block's total wire time
  // stays the unchunked cost — what chunking buys is a bounded *exposed
  // tail*: once the last block's compute retires, only its final chunk is
  // still draining.
  const double block_compute =
      engine_->block_linear_seconds(mb_tokens, cfg_.tensor_parallel) +
      engine_->attention_layer_seconds(mb_tokens, avg_context,
                                       cfg_.tensor_parallel);
  const Interconnect link = Interconnect::of(engine_->config().gpu);
  const double bytes = static_cast<double>(mb_tokens) *
                       static_cast<double>(engine_->config().model.hidden) *
                       2.0;
  const double block_comm =
      2.0 * link.allreduce_seconds(bytes, cfg_.tensor_parallel);
  const double tail =
      2.0 * link.allreduce_seconds(bytes / static_cast<double>(comm_buckets),
                                   cfg_.tensor_parallel);
  // Two-stage software pipeline over the block sequence: block j's chunked
  // all-reduces drain while block j+1 computes, so the slower of the two
  // paces the middle of the chain and only the last block's final chunks
  // are fully exposed. Clamp at the serialized schedule — overlap must
  // never price a step slower.
  const double layers = static_cast<double>(num_layers_);
  double t = block_compute +
             (layers - 1.0) * std::max(block_compute, block_comm) + tail;
  if (has_lm_head()) {
    t += engine_->lm_head_seconds(mb_tokens, cfg_.tensor_parallel);
  }
  return std::min(serialized, t);
}

double Worker::tp_comm_seconds(index_t tokens) const {
  if (cfg_.tensor_parallel == 1) return 0.0;
  // Interconnect is a pure projection of the DeviceSpec (the single
  // source of truth), so rebuilding it here agrees with
  // ParallelEngine::link() by construction.
  const Interconnect link = Interconnect::of(engine_->config().gpu);
  const double bytes = static_cast<double>(tokens) *
                       static_cast<double>(engine_->config().model.hidden) *
                       2.0;
  // Two all-reduces per transformer block (attention out, MLP down).
  return 2.0 * static_cast<double>(num_layers_) *
         link.allreduce_seconds(bytes, cfg_.tensor_parallel);
}

}  // namespace marlin::serve::parallel
