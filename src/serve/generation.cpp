#include "serve/generation.hpp"

namespace marlin::serve {

GenerationResult generation_time(const Engine& engine, index_t batch,
                                 index_t input_tokens,
                                 index_t output_tokens) {
  GenerationResult r;
  r.prefill_seconds = engine.prefill_seconds(batch, input_tokens);
  for (index_t t = 1; t < output_tokens; ++t) {
    const double ctx = static_cast<double>(input_tokens + t);
    r.decode_seconds += engine.decode_step_seconds(batch, ctx);
  }
  const double total_out =
      static_cast<double>(batch) * static_cast<double>(output_tokens - 1);
  r.output_tokens_per_s =
      r.decode_seconds > 0 ? total_out / r.decode_seconds : 0.0;
  return r;
}

}  // namespace marlin::serve
