#pragma once
// Batched generation benchmark (paper Figure 14 and Table 2): total time to
// produce output tokens 2..64 — i.e. the pure decode phase after prefill —
// for a fixed batch of sequences with 64 input tokens each.

#include "serve/engine.hpp"

namespace marlin::serve {

struct GenerationResult {
  double decode_seconds = 0;   // tokens 2..output_tokens (paper's metric)
  double prefill_seconds = 0;  // token 1
  double output_tokens_per_s = 0;
};

GenerationResult generation_time(const Engine& engine, index_t batch,
                                 index_t input_tokens, index_t output_tokens);

}  // namespace marlin::serve
