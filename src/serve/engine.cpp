#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace marlin::serve {

const char* to_string(WeightFormat f) {
  switch (f) {
    case WeightFormat::kFp16:
      return "vLLM FP16";
    case WeightFormat::kMarlin:
      return "vLLM MARLIN";
    case WeightFormat::kSparseMarlin:
      return "vLLM Sparse-MARLIN";
  }
  return "?";
}

namespace {

baselines::KernelModelPtr make_kernel(WeightFormat f) {
  switch (f) {
    case WeightFormat::kFp16:
      return baselines::make_kernel_model("fp16");
    case WeightFormat::kMarlin:
      return baselines::make_kernel_model("marlin");
    case WeightFormat::kSparseMarlin:
      return baselines::make_kernel_model("sparse-marlin");
  }
  return nullptr;
}

/// Megatron sharding: the first linear of each pair splits N, the second
/// splits K; both keep per-GPU work at 1/g with two all-reduces per block.
core::MatmulProblem shard(const LayerShape& l, index_t m, int num_gpus,
                          index_t group_size, bool split_n) {
  core::MatmulProblem p;
  p.m = m;
  p.k = split_n ? l.k : std::max<index_t>(64, l.k / num_gpus);
  p.n = split_n ? std::max<index_t>(64, l.n / num_gpus) : l.n;
  p.group_size = group_size;
  return p;
}

}  // namespace

Engine::Engine(EngineConfig cfg)
    : cfg_(std::move(cfg)), kernel_(make_kernel(cfg_.format)) {
  MARLIN_CHECK(cfg_.num_gpus >= 1, "need at least one GPU");
}

double Engine::block_linear_seconds(index_t m, int tp) const {
  MARLIN_CHECK(tp >= 1, "tensor-parallel degree must be >= 1");
  const auto key = std::make_pair(m, tp);
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = block_cache_.find(key); it != block_cache_.end()) {
      return it->second;
    }
  }
  double per_block = 0.0;
  const auto layers = block_linear_layers(cfg_.model);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const bool split_n = layers[i].name == "qkv_proj" ||
                         layers[i].name == "gate_up_proj" ||
                         layers[i].name == "up_proj";
    const core::MatmulProblem p =
        shard(layers[i], m, tp, cfg_.group_size, split_n);
    per_block += kernel_->estimate(p, cfg_.gpu, cfg_.clock).seconds;
  }
  const std::lock_guard lock(cache_mutex_);
  block_cache_[key] = per_block;
  return per_block;
}

double Engine::lm_head_seconds(index_t m, int tp) const {
  MARLIN_CHECK(tp >= 1, "tensor-parallel degree must be >= 1");
  const auto key = std::make_pair(m, tp);
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = head_cache_.find(key); it != head_cache_.end()) {
      return it->second;
    }
  }
  // The LM head stays FP16 in all configurations (vLLM does not quantize
  // it); under tensor parallelism its vocab dimension is column-split.
  core::MatmulProblem head;
  head.m = m;
  head.k = cfg_.model.hidden;
  head.n = std::max<index_t>(64, cfg_.model.vocab / tp);
  head.group_size = cfg_.group_size;
  const double t = baselines::make_kernel_model("fp16")
                       ->estimate(head, cfg_.gpu, cfg_.clock)
                       .seconds;
  const std::lock_guard lock(cache_mutex_);
  head_cache_[key] = t;
  return t;
}

double Engine::linear_layers_seconds(index_t m) const {
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = linear_cache_.find(m); it != linear_cache_.end()) {
      return it->second;
    }
  }
  double total = block_linear_seconds(m, cfg_.num_gpus) *
                 static_cast<double>(cfg_.model.num_layers);
  total += lm_head_seconds(m, cfg_.num_gpus);
  const std::lock_guard lock(cache_mutex_);
  linear_cache_[m] = total;
  return total;
}

double Engine::kv_bytes_per_token() const {
  // 2 (K and V) * layers * kv_heads * head_dim * 2 bytes, sharded.
  return 2.0 * static_cast<double>(cfg_.model.num_layers) *
         static_cast<double>(cfg_.model.num_kv_heads) *
         static_cast<double>(cfg_.model.head_dim) * 2.0 / cfg_.num_gpus;
}

double Engine::attention_layer_seconds(index_t batch, double avg_context,
                                       int tp) const {
  MARLIN_CHECK(tp >= 1, "tensor-parallel degree must be >= 1");
  // One layer's share of the paged-attention KV stream: K and V heads are
  // sharded across the tensor-parallel group, plus the per-layer launch.
  const double kv_bytes = 2.0 * static_cast<double>(cfg_.model.num_kv_heads) *
                          static_cast<double>(cfg_.model.head_dim) * 2.0 / tp *
                          avg_context * static_cast<double>(batch);
  return kv_bytes /
             (cfg_.gpu.gmem_bytes_per_s() * cfg_.attention_mem_efficiency) +
         cfg_.gpu.kernel_launch_s;
}

double Engine::prefill_attention_layer_seconds(index_t m,
                                               index_t prompt_tokens,
                                               int tp) const {
  MARLIN_CHECK(tp >= 1, "tensor-parallel degree must be >= 1");
  // ~4 * tokens * ctx * q_heads * head_dim FLOPs per layer (scores +
  // values), heads sharded across tp, at moderate tensor-core efficiency.
  const double attn_flops =
      4.0 * static_cast<double>(m) * static_cast<double>(prompt_tokens) *
      static_cast<double>(cfg_.model.num_heads) *
      static_cast<double>(cfg_.model.head_dim) / tp;
  const double clock = cfg_.clock.effective_clock_ghz(cfg_.gpu, 0.0);
  return attn_flops / (cfg_.gpu.tc_flops(clock) * 0.5);
}

double Engine::attention_decode_seconds(index_t batch,
                                        double avg_context) const {
  // Paged attention is dominated by streaming the KV cache of every
  // sequence.
  const double kv_bytes =
      kv_bytes_per_token() * avg_context * static_cast<double>(batch);
  const double t_mem =
      kv_bytes /
      (cfg_.gpu.gmem_bytes_per_s() * cfg_.attention_mem_efficiency);
  // One fused attention kernel launch per layer.
  const double t_launch =
      static_cast<double>(cfg_.model.num_layers) * cfg_.gpu.kernel_launch_s;
  return t_mem + t_launch;
}

double Engine::allreduce_seconds(index_t tokens) const {
  // Legacy num_gpus pricing: one latency hop per all-reduce. The
  // parallel::Interconnect model charges 2(g-1) hops per ring instead;
  // this copy must keep its arithmetic as-is because the fig14/table2
  // goldens pin it down bit-for-bit.
  if (cfg_.num_gpus <= 1) return 0.0;
  const double g = cfg_.num_gpus;
  const double bytes = static_cast<double>(tokens) *
                       static_cast<double>(cfg_.model.hidden) * 2.0;
  const double ring = 2.0 * (g - 1.0) / g * bytes /
                      (cfg_.gpu.interconnect_bandwidth_gbs * 1e9);
  const double per_op = ring + cfg_.gpu.interconnect_latency_s;
  // Two all-reduces per transformer block (attention out, MLP down).
  return 2.0 * static_cast<double>(cfg_.model.num_layers) * per_op;
}

double Engine::decode_step_seconds(index_t batch, double avg_context) const {
  MARLIN_CHECK(batch >= 1, "batch must be >= 1");
  // Bucket contexts to keep the memo small (64-token buckets).
  const index_t ctx_bucket = static_cast<index_t>(avg_context / 64.0);
  const auto key = std::make_pair(batch, ctx_bucket);
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = decode_cache_.find(key); it != decode_cache_.end()) {
      return it->second;
    }
  }
  const double ctx = static_cast<double>(ctx_bucket) * 64.0 + 32.0;
  const double t = linear_layers_seconds(batch) +
                   attention_decode_seconds(batch, ctx) +
                   allreduce_seconds(batch) + cfg_.step_overhead_s;
  const std::lock_guard lock(cache_mutex_);
  decode_cache_[key] = t;
  return t;
}

double Engine::verify_step_seconds(index_t batch, double avg_context,
                                   index_t depth) const {
  MARLIN_CHECK(batch >= 1, "batch must be >= 1");
  MARLIN_CHECK(depth >= 0, "speculation depth must be >= 0");
  if (depth == 0) return decode_step_seconds(batch, avg_context);
  const auto ctx_bucket = static_cast<index_t>(avg_context / 64.0);
  const auto key = std::make_tuple(batch, ctx_bucket, depth);
  {
    const std::lock_guard lock(cache_mutex_);
    if (const auto it = verify_cache_.find(key); it != verify_cache_.end()) {
      return it->second;
    }
  }
  // The linear layers see every candidate token (batch * (depth + 1) of
  // them), but each sequence's paged KV is streamed once per layer — the
  // depth + 1 query positions share the fetch, which is the whole point
  // of verifying a draft in one batched step instead of depth + 1 decode
  // steps. Same 64-token context bucketing as decode.
  const double ctx = static_cast<double>(ctx_bucket) * 64.0 + 32.0;
  const index_t m = batch * (depth + 1);
  const double t = linear_layers_seconds(m) +
                   attention_decode_seconds(batch, ctx) +
                   allreduce_seconds(m) + cfg_.step_overhead_s;
  const std::lock_guard lock(cache_mutex_);
  verify_cache_[key] = t;
  return t;
}

double Engine::prefill_seconds(index_t batch, index_t prompt_tokens) const {
  const index_t m = batch * prompt_tokens;
  // Quadratic attention term: ~4 * tokens * ctx * q_heads * head_dim FLOPs
  // per layer (scores + values), at moderate tensor-core efficiency.
  const double attn_flops =
      4.0 * static_cast<double>(m) * static_cast<double>(prompt_tokens) *
      static_cast<double>(cfg_.model.num_heads) *
      static_cast<double>(cfg_.model.head_dim) *
      static_cast<double>(cfg_.model.num_layers) / cfg_.num_gpus;
  const double clock = cfg_.clock.effective_clock_ghz(cfg_.gpu, 0.0);
  const double t_attn = attn_flops / (cfg_.gpu.tc_flops(clock) * 0.5);
  return linear_layers_seconds(m) + t_attn + allreduce_seconds(m) +
         cfg_.prefill_overhead_s;
}

void Engine::warm_decode_cache(const SimContext& ctx, index_t max_batch,
                               double max_context) const {
  if (ctx.serial()) return;
  MARLIN_CHECK(max_batch >= 1, "batch must be >= 1");
  // One task per batch size fills the (mutex-guarded) linear-layer memo —
  // the expensive kernel-model part — concurrently; every 64-token context
  // bucket is then priced from the already-cached linear time.
  const auto buckets = static_cast<index_t>(max_context / 64.0) + 1;
  ctx.parallel_for(1, max_batch + 1, [&](std::int64_t batch) {
    for (index_t b = 0; b < buckets; ++b) {
      (void)decode_step_seconds(batch, static_cast<double>(b) * 64.0 + 1.0);
    }
  });
}

double Engine::weight_bits() const {
  return cfg_.format == WeightFormat::kFp16     ? 16.0
         : cfg_.format == WeightFormat::kMarlin ? 4.125
                                                : 3.125;
}

double Engine::weight_bytes_per_gpu() const {
  return cfg_.model.num_params() * weight_bits() / 8.0 / cfg_.num_gpus;
}

}  // namespace marlin::serve
