#pragma once
// Discrete-event serving simulator (paper Figures 15/16): Poisson client
// arrivals at a given QPS, continuous batching, TPOT and TTFT metrics.
//
// Scheduling follows vLLM's continuous batching: newly arrived requests
// are admitted (up to max_batch) and prefilled as a batch; all running
// requests then advance one token per engine step. Because MARLIN's steps
// are faster, the *average batch size the engine observes is smaller* at
// equal QPS — the mechanism the paper gives for speedups growing with QPS.

#include "serve/engine.hpp"

namespace marlin::serve {

struct ServingConfig {
  double qps = 1.0;
  double duration_s = 120.0;  // arrival window; sim drains afterwards
  index_t input_tokens = 64;
  index_t output_tokens = 64;
  index_t max_batch = 128;
  std::uint64_t seed = 42;
};

struct ServingMetrics {
  double mean_tpot_ms = 0;  // time per output token (after the first)
  double mean_ttft_ms = 0;  // time to first token
  double p90_tpot_ms = 0;
  double p90_ttft_ms = 0;
  double mean_batch = 0;  // average decode batch the engine observed
  index_t completed = 0;
};

ServingMetrics simulate_serving(const Engine& engine,
                                const ServingConfig& cfg);

}  // namespace marlin::serve
