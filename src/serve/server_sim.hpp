#pragma once
// Serving simulation entry point (paper Figures 15/16) — a thin adapter
// over the request-level scheduler subsystem in serve/sched/.
//
// `simulate_serving` turns a ServingConfig into a workload trace plus a
// scheduler configuration and runs the continuous-batching scheduler.
// The defaults (Poisson arrivals, FCFS, unlimited KV blocks, unchunked
// prefill) reproduce the pre-subsystem simulator bit-for-bit — the
// fig15/fig16 golden tables hold — while the extra knobs open the
// scheduler's policy, workload and KV-budget space to the benches.

#include "serve/cluster/event_loop.hpp"
#include "serve/engine.hpp"
#include "serve/parallel/parallel_config.hpp"
#include "serve/sched/scheduler.hpp"

namespace marlin::serve {

struct ServingConfig {
  double qps = 1.0;
  double duration_s = 120.0;  // arrival window; sim drains afterwards
  index_t input_tokens = 64;
  index_t output_tokens = 64;
  index_t max_batch = 128;
  std::uint64_t seed = 42;

  /// Arrival/length shape (fixed lengths for kPoisson/kBursty; log-normal
  /// around the configured tokens for kShareGpt).
  sched::WorkloadShape shape = sched::WorkloadShape::kPoisson;
  /// Admission policy; FCFS matches the pre-subsystem behaviour.
  sched::SchedPolicy policy = sched::SchedPolicy::kFcfs;
  /// KV-cache block budget; 0 = unlimited (the goldens configuration),
  /// negative = derive from the device HBM next to the resident weights
  /// (per-rank aware: under TP/PP the minimum rank budget binds).
  index_t kv_blocks = 0;
  index_t kv_block_size = 16;
  /// Per-sequence prefill chunk tokens; 0 = whole prompt per step.
  index_t prefill_chunk_tokens = 0;
  /// Hashed prefix cache over full prompt blocks (off by default, which
  /// keeps every legacy golden bit-identical). When enabled, admissions
  /// of requests with a shared-prefix tag reuse cached blocks instead of
  /// re-prefilling them.
  sched::PrefixCacheConfig prefix_cache;
  /// Shared-prefix workload mix (see WorkloadConfig): when
  /// `shared_prefix_tokens` > 0, a `shared_prefix_share` fraction of
  /// requests prepend one of `shared_prefix_groups` shared headers of
  /// that many tokens to their prompt, drawn on a side RNG stream.
  index_t shared_prefix_tokens = 0;
  index_t shared_prefix_groups = 1;
  double shared_prefix_share = 1.0;
  /// Parallel-sampling width stamped on every request (n>1 decodes n
  /// continuations of one prompt, sharing the prompt KV copy-on-write).
  index_t sampling_n = 1;
  /// Multi-GPU sharding. The default (TP=1, PP=1) runs the engine
  /// directly and reproduces the single-device goldens byte-for-byte;
  /// anything else prices steps through `parallel::ParallelEngine` (max
  /// over ranks plus interconnect communication) and requires the engine
  /// to be configured with num_gpus == 1.
  parallel::ParallelConfig parallel{};

  /// Multi-tenant serving: tenant specs (WFQ weights, priority tiers,
  /// soft KV block quotas, traffic shares). Empty = everything belongs to
  /// the single default tenant 0 and nothing changes. The workload mixes
  /// tenants by `traffic_share` on a side RNG stream (base trace stays
  /// bit-identical); `policy = wfq` arbitrates between them.
  std::vector<sched::TenantSpec> tenants;

  /// Speculative decoding (depth 0 = off). When enabled, the simulation
  /// builds a draft engine from `draft_model` — same device, weight
  /// format and clocks as the target; TinyLlama-1.1B when unnamed — and
  /// every decode step becomes a propose-then-verify round. Under a
  /// non-trivial `parallel` config the draft stays replicated on a single
  /// device while the target verifies across the rank grid.
  sched::SpeculationConfig speculation;
  ModelConfig draft_model{};

  /// Streaming SLOs (TTFT shed-on-hopeless admission + TPOT violation
  /// accounting); disabled by default, which leaves every legacy path and
  /// golden untouched.
  sched::SloConfig slo;

  /// Cluster shape: replica count, placement policy, autoscaler. The
  /// default 1-replica round-robin cluster reproduces the single-engine
  /// goldens byte-for-byte (each replica carves its own `kv_blocks`
  /// budget; the step-model memo is shared).
  cluster::ClusterOptions cluster{};

  /// Observability recorder (borrowed, may be null — the default). When
  /// set, the run emits request-lifecycle spans, scheduler/cluster events
  /// and metrics into it; the scheduling decisions themselves are
  /// identical with or without a recorder attached.
  obs::ServeRecorder* recorder = nullptr;
};

/// Full cluster statistics: the fleet-summed SchedStats plus per-replica
/// accounting. `ctx` pre-warms the engine's decode memo on its pool; the
/// results are bit-identical for every context.
cluster::ClusterStats simulate_cluster_detailed(
    const Engine& engine, const ServingConfig& cfg,
    const SimContext& ctx = SimContext::serial_context());

/// Full scheduler statistics (metrics + preemptions, KV peak, per-request
/// outcomes) — the `.sched` slice of `simulate_cluster_detailed`.
sched::SchedStats simulate_serving_detailed(
    const Engine& engine, const ServingConfig& cfg,
    const SimContext& ctx = SimContext::serial_context());

ServingMetrics simulate_serving(const Engine& engine,
                                const ServingConfig& cfg);

}  // namespace marlin::serve
