#include "serve/model_config.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace marlin::serve {

double ModelConfig::params_per_block() const {
  const double h = static_cast<double>(hidden);
  const double kvh = static_cast<double>(num_kv_heads * head_dim);
  const double qh = static_cast<double>(num_heads * head_dim);
  double per_block = h * (qh + 2.0 * kvh)  // QKV
                     + qh * h;             // attention output
  if (gated_mlp) {
    per_block += 3.0 * h * static_cast<double>(intermediate);
  } else {
    per_block += 2.0 * h * static_cast<double>(intermediate);
  }
  return per_block;
}

double ModelConfig::num_params() const {
  return params_per_block() * static_cast<double>(num_layers) +
         2.0 * static_cast<double>(hidden) *
             static_cast<double>(vocab);  // embed + lm_head
}

std::vector<LayerShape> block_linear_layers(const ModelConfig& m) {
  std::vector<LayerShape> v;
  const index_t q = m.num_heads * m.head_dim;
  const index_t kv = m.num_kv_heads * m.head_dim;
  v.push_back({"qkv_proj", m.hidden, q + 2 * kv});
  v.push_back({"o_proj", q, m.hidden});
  if (m.gated_mlp) {
    v.push_back({"gate_up_proj", m.hidden, 2 * m.intermediate});
  } else {
    v.push_back({"up_proj", m.hidden, m.intermediate});
  }
  v.push_back({"down_proj", m.intermediate, m.hidden});
  return v;
}

ModelConfig llama2_7b() {
  return {"Llama-2-7B", 4096, 11008, 32, 32, 32, 128, 32000, true};
}
ModelConfig llama2_13b() {
  return {"Llama-2-13B", 5120, 13824, 40, 40, 40, 128, 32000, true};
}
ModelConfig llama2_70b() {
  return {"Llama-2-70B", 8192, 28672, 80, 64, 8, 128, 32000, true};
}
ModelConfig llama1_33b() {
  return {"LLaMA-33B", 6656, 17920, 60, 52, 52, 128, 32000, true};
}
ModelConfig llama1_65b() {
  return {"LLaMA-65B", 8192, 22016, 80, 64, 64, 128, 32000, true};
}
ModelConfig yi_34b() {
  return {"Yi-34B", 7168, 20480, 60, 56, 8, 128, 64000, true};
}
ModelConfig falcon_180b() {
  // Falcon uses parallel attention + a plain 4h MLP and GQA with 8 KV heads.
  return {"Falcon-180B", 14848, 4 * 14848, 80, 232, 8, 64, 65024, false};
}
ModelConfig tinyllama_1_1b() {
  // The standard small Llama-architecture draft model for speculative
  // decoding against Llama-2 targets (same 32k vocabulary, GQA).
  return {"TinyLlama-1.1B", 2048, 5632, 22, 32, 4, 64, 32000, true};
}

std::vector<ModelConfig> all_models() {
  return {llama2_7b(),  llama2_13b(), llama1_33b(),    llama1_65b(),
          llama2_70b(), yi_34b(),     falcon_180b(),   tinyllama_1_1b()};
}

ModelConfig model_by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const auto& m : all_models()) {
    std::string ml(m.name);
    std::transform(ml.begin(), ml.end(), ml.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (ml == lower) return m;
  }
  MARLIN_CHECK(false, "unknown model `" << name << "`");
  return {};  // unreachable
}

}  // namespace marlin::serve
