#include "core/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace marlin::core {

index_t StripedPartition::max_stripe_len() const {
  index_t mx = 0;
  for (const auto& s : sm_tiles) {
    mx = std::max(mx, static_cast<index_t>(s.size()));
  }
  return mx;
}

index_t StripedPartition::min_stripe_len() const {
  index_t mn = total_tiles();
  for (const auto& s : sm_tiles) {
    mn = std::min(mn, static_cast<index_t>(s.size()));
  }
  return mn;
}

index_t StripedPartition::reduction_steps() const {
  index_t steps = 0;
  for (const auto& col : segments) {
    if (!col.empty()) steps += static_cast<index_t>(col.size()) - 1;
  }
  return steps;
}

index_t StripedPartition::max_column_depth() const {
  index_t mx = 0;
  for (const auto& col : segments) {
    mx = std::max(mx, static_cast<index_t>(col.size()));
  }
  return mx;
}

namespace {

void build_segments(StripedPartition& part) {
  part.segments.assign(
      static_cast<std::size_t>(part.tile_cols * part.m_blocks), {});
  for (int sm = 0; sm < part.num_sms; ++sm) {
    const auto& tiles = part.sm_tiles[static_cast<std::size_t>(sm)];
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      const auto& t = tiles[i];
      const std::size_t key =
          static_cast<std::size_t>(t.m_block * part.tile_cols + t.col);
      auto& segs = part.segments[key];
      if (!segs.empty() && segs.back().sm == sm &&
          segs.back().row_end == t.row) {
        segs.back().row_end = t.row + 1;  // extend this SM's segment
      } else {
        segs.push_back({sm, t.row, t.row + 1});
      }
    }
  }
  // Reduction proceeds bottom-to-top: the bottom-most segment finishes
  // first (its SM started there or reached it earliest in column order).
  for (auto& segs : part.segments) {
    std::sort(segs.begin(), segs.end(),
              [](const ColumnSegment& a, const ColumnSegment& b) {
                return a.row_begin > b.row_begin;
              });
  }
}

}  // namespace

StripedPartition striped_partition(index_t tile_rows, index_t tile_cols,
                                   int num_sms, index_t m_blocks) {
  MARLIN_CHECK(tile_rows > 0 && tile_cols > 0 && m_blocks > 0,
               "empty tile grid");
  MARLIN_CHECK(num_sms > 0, "need at least one SM");
  StripedPartition part;
  part.tile_rows = tile_rows;
  part.tile_cols = tile_cols;
  part.m_blocks = m_blocks;
  part.num_sms = num_sms;
  part.sm_tiles.assign(static_cast<std::size_t>(num_sms), {});

  const index_t total = part.total_tiles();
  const index_t base = total / num_sms;
  const index_t rem = total % num_sms;

  index_t next = 0;  // linear index, column-major over the replicated grid
  for (int sm = 0; sm < num_sms; ++sm) {
    const index_t len = base + (sm < rem ? 1 : 0);
    auto& stripe = part.sm_tiles[static_cast<std::size_t>(sm)];
    stripe.reserve(static_cast<std::size_t>(len));
    for (index_t i = 0; i < len; ++i, ++next) {
      const index_t vcol = next / tile_rows;
      const index_t row = next % tile_rows;
      stripe.push_back({row, vcol % tile_cols, vcol / tile_cols});
    }
  }
  MARLIN_ASSERT(next == total);
  build_segments(part);
  return part;
}

PartitionStats striped_partition_stats(index_t tile_rows, index_t tile_cols,
                                       int num_sms, index_t m_blocks) {
  MARLIN_CHECK(tile_rows > 0 && tile_cols > 0 && m_blocks > 0,
               "empty tile grid");
  MARLIN_CHECK(num_sms > 0, "need at least one SM");
  PartitionStats st;
  st.total_tiles = tile_rows * tile_cols * m_blocks;
  const index_t base = st.total_tiles / num_sms;
  const index_t rem = st.total_tiles % num_sms;
  st.max_stripe = base + (rem > 0 ? 1 : 0);
  st.min_stripe = base;
  st.active_sms = static_cast<int>(
      std::min<index_t>(num_sms, st.total_tiles));

  // A stripe boundary strictly inside a column splits it into one more
  // segment; a column with S segments needs S-1 serial reduction steps.
  std::vector<index_t> depth(
      static_cast<std::size_t>(tile_cols * m_blocks), 1);
  for (int sm = 1; sm < num_sms; ++sm) {
    const index_t b =
        static_cast<index_t>(sm) * base + std::min<index_t>(sm, rem);
    if (b >= st.total_tiles) break;
    if (b % tile_rows != 0) {
      ++st.reduction_steps;
      ++depth[static_cast<std::size_t>(b / tile_rows)];
    }
  }
  for (const index_t d : depth) {
    st.max_column_depth = std::max(st.max_column_depth, d);
  }
  return st;
}

StripedPartition columnwise_partition(index_t tile_rows, index_t tile_cols,
                                      int num_sms, index_t m_blocks) {
  MARLIN_CHECK(tile_rows > 0 && tile_cols > 0 && m_blocks > 0,
               "empty tile grid");
  MARLIN_CHECK(num_sms > 0, "need at least one SM");
  StripedPartition part;
  part.tile_rows = tile_rows;
  part.tile_cols = tile_cols;
  part.m_blocks = m_blocks;
  part.num_sms = num_sms;
  part.sm_tiles.assign(static_cast<std::size_t>(num_sms), {});

  const index_t vcols = tile_cols * m_blocks;
  for (index_t vc = 0; vc < vcols; ++vc) {
    const int sm = static_cast<int>(vc % num_sms);
    auto& stripe = part.sm_tiles[static_cast<std::size_t>(sm)];
    for (index_t r = 0; r < tile_rows; ++r) {
      stripe.push_back({r, vc % tile_cols, vc / tile_cols});
    }
  }
  build_segments(part);
  return part;
}

}  // namespace marlin::core
