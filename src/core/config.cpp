#include "core/config.hpp"

#include <algorithm>

namespace marlin::core {

double smem_stage_bytes(const MatmulProblem& p, const KernelConfig& cfg) {
  const double m_eff = static_cast<double>(std::min<index_t>(p.m_padded(), cfg.m_block));
  const double width = static_cast<double>(std::min<index_t>(cfg.n_sm_tile, std::max<index_t>(64, p.n)));
  const double b_bytes = static_cast<double>(cfg.k_sm_tile) * width *
                         p.weight_bits_per_element() / 8.0;
  const double a_bytes =
      m_eff * static_cast<double>(cfg.k_sm_tile) * (p.activation_bits / 8.0);
  return b_bytes + a_bytes;
}

int max_pipeline_depth(const MatmulProblem& p, const KernelConfig& cfg,
                       const gpusim::DeviceSpec& d) {
  const double stage = smem_stage_bytes(p, cfg);
  int depth = static_cast<int>(d.smem_per_sm_bytes / stage);
  depth -= depth % 2;  // even, so the unrolled indices realign (§3.4)
  return std::max(2, depth);
}

KernelConfig choose_config(const MatmulProblem& p,
                           const gpusim::DeviceSpec& d) {
  KernelConfig cfg;
  // Prefer the widest tile: it maximises Eq. (1) headroom and amortises the
  // cp.async latency over larger transfers. Narrow tiles only when the
  // output dim is too small to feed every SM with wide ones.
  cfg.n_sm_tile = 64;
  for (const index_t n_sm : {256, 128}) {
    if (p.n < n_sm) continue;
    const index_t tiles =
        ((p.n + n_sm - 1) / n_sm) * ((p.k + 63) / 64);
    if (tiles >= d.num_sms) {
      cfg.n_sm_tile = n_sm;
      break;
    }
  }
  cfg.n_sm_tile = std::min<index_t>(cfg.n_sm_tile, std::max<index_t>(64, p.n));

  // 8 warps when the tile offers enough slab-level parallelism: a tile has
  // n_subtiles * 4 (slabs) independent warp slots.
  const int slots = cfg.n_subtiles(std::min(cfg.n_sm_tile, p.n)) * 4;
  cfg.num_warps = std::min(8, slots);
  cfg.pipeline_depth = std::min(4, max_pipeline_depth(p, cfg, d));
  cfg.m_block = 64;
  return cfg;
}

}  // namespace marlin::core
