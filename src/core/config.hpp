#pragma once
// MARLIN kernel launch configuration and the shape/device heuristic that
// selects it (paper §3.4 "Bound By Weight Loading" and "Warp Layout").

#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"

#include "core/problem.hpp"

namespace marlin::core {

struct KernelConfig {
  index_t n_sm_tile = 256;  // N_sm in {64, 128, 256}
  index_t k_sm_tile = 64;   // K_sm — fixed: 16-byte loads need K >= 64
  int num_warps = 8;        // warps cooperating on one C_sm tile
  int pipeline_depth = 4;   // P (even, see §3.4)
  index_t m_block = 64;     // virtual-replication batch block for M >> 64
  /// Cap on SMs used by the timing model (0 = all). For tiny tile grids the
  /// tuner prefers a column-aligned launch over splitting every column into
  /// many serially-reduced stripes.
  int sm_limit = 0;

  /// Warp layout per Figure 4: fixed warp tile width 64, remaining warps
  /// split over K_sm (16-row slabs).
  [[nodiscard]] int n_subtiles(index_t tile_width) const {
    return static_cast<int>(tile_width / 64);
  }
};

/// Shared-memory bytes of ONE pipeline stage: the B tile (packed codes +
/// scales) plus the A tile (m_eff x K_sm halves, XOR-swizzled in place).
/// The paper picks P=4 because "this seemed sufficient ... while fitting
/// into shared memory even for M = 64" — P stages must satisfy
/// P * stage_bytes <= smem_per_sm.
[[nodiscard]] double smem_stage_bytes(const MatmulProblem& p,
                                      const KernelConfig& cfg);

/// Largest even pipeline depth whose buffers fit in shared memory (even,
/// per §3.4, so the unrolled pipeline and register-buffer indices realign
/// every P iterations).
[[nodiscard]] int max_pipeline_depth(const MatmulProblem& p,
                                     const KernelConfig& cfg,
                                     const gpusim::DeviceSpec& d);

/// Pick the widest N_sm in {64, 128, 256} with enough column tiles to feed
/// every SM, warps = 8 capped by the available slab-level parallelism, and
/// pipeline depth 4 clamped to the shared-memory budget.
[[nodiscard]] KernelConfig choose_config(const MatmulProblem& p,
                                         const gpusim::DeviceSpec& d);

}  // namespace marlin::core
