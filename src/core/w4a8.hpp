#pragma once
// W4A8 extension: INT4 weights x INT8 activations on the INT8 tensor cores
// (paper §6, the QQQ follow-up). Integer MMAs accumulate in INT32; group
// scales and the per-token activation scale are applied at the FP32
// epilogue, exactly like the QQQ kernel's two-level scheme.

#include "core/problem.hpp"
#include "gpusim/clock.hpp"
#include "gpusim/estimate.hpp"
#include "quant/int8_act.hpp"
#include "quant/qweights.hpp"

namespace marlin::core {

/// Functional W4A8 matmul: INT32 accumulation per scale group, FP32
/// epilogue. Output FP16 (like MARLIN).
Matrix<Half> w4a8_matmul(const quant::Int8Activations& a,
                         const quant::QuantizedWeights& b);

/// Timing: the MARLIN schedule with 1-byte activations and 2x MMA rate.
[[nodiscard]] gpusim::KernelEstimate w4a8_estimate_auto(
    const MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock);

}  // namespace marlin::core
