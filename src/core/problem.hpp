#pragma once
// Problem descriptor shared by all kernel models: C[M,N] = A[M,K] * B[K,N],
// A in FP16, B quantized (and possibly 2:4 sparse), C in FP16.

#include "quant/qweights.hpp"
#include "util/matrix.hpp"

namespace marlin::core {

struct MatmulProblem {
  index_t m = 0;  // batch (tokens)
  index_t k = 0;  // reduction dim
  index_t n = 0;  // output dim
  /// Scale granularity of B: quant::kPerColumn or a positive group size.
  index_t group_size = 128;
  /// B additionally stored in the 2:4 sparse format.
  bool sparse24 = false;
  /// Stored weight precision (4 = INT4; 2/3/8 for the "extreme
  /// compression" extension of paper §7).
  int weight_bits = 4;
  /// Activation precision: 16 (FP16) or 8 (the W4A8 / QQQ follow-up of
  /// paper §6, which runs MMAs on the INT8 tensor cores at 2x rate).
  int activation_bits = 16;

  [[nodiscard]] double flops() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
  }
  /// mma.sync granularity: compute cost is paid in 16-row steps.
  [[nodiscard]] index_t m_padded() const { return (m + 15) / 16 * 16; }

  /// Stored bits per weight of B (incl. FP16 group scales; 2-bit metadata
  /// for the sparse format).
  [[nodiscard]] double weight_bits_per_element() const {
    const double scale_bits =
        group_size == quant::kPerColumn
            ? 16.0 / static_cast<double>(k)
            : 16.0 / static_cast<double>(group_size);
    const double wb = static_cast<double>(weight_bits);
    if (!sparse24) return wb + scale_bits;
    return wb * 0.5 + 1.0 + scale_bits;  // codes on half + 4b meta / 4 elems
  }
  [[nodiscard]] double weight_bytes() const {
    return weight_bits_per_element() / 8.0 * static_cast<double>(k) *
           static_cast<double>(n);
  }
  [[nodiscard]] double a_bytes() const {
    return activation_bits / 8.0 * static_cast<double>(m) *
           static_cast<double>(k);
  }
  [[nodiscard]] double c_bytes() const {
    return 2.0 * static_cast<double>(m) * static_cast<double>(n);
  }
};

}  // namespace marlin::core
