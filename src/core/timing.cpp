#include "core/timing.hpp"

#include <algorithm>
#include <cmath>

#include "core/partition.hpp"
#include "gpusim/pipeline.hpp"
#include "gpusim/warp_exec.hpp"

namespace marlin::core {

namespace {

gpusim::KernelEstimate estimate_impl(const MatmulProblem& p,
                                     const KernelConfig& cfg,
                                     const gpusim::DeviceSpec& d,
                                     const gpusim::ClockModel& clock,
                                     const MarlinPerfParams& perf,
                                     bool sparse) {
  MARLIN_CHECK(p.m > 0 && p.k > 0 && p.n > 0, "empty problem");
  const double m_eff =
      static_cast<double>(std::min<index_t>(p.m_padded(), cfg.m_block));

  const index_t tile_rows = (p.k + cfg.k_sm_tile - 1) / cfg.k_sm_tile;
  const index_t tile_cols = (p.n + cfg.n_sm_tile - 1) / cfg.n_sm_tile;
  const index_t m_blocks =
      std::max<index_t>(1, (p.m + cfg.m_block - 1) / cfg.m_block);
  const int sms = cfg.sm_limit > 0 ? std::min(cfg.sm_limit, d.num_sms)
                                   : d.num_sms;
  const PartitionStats part =
      striped_partition_stats(tile_rows, tile_cols, sms, m_blocks);

  const double width = std::min<double>(static_cast<double>(cfg.n_sm_tile),
                                        static_cast<double>(p.n));
  const double bits_w = p.weight_bits_per_element();
  const double tile_b_bytes =
      static_cast<double>(cfg.k_sm_tile) * width * bits_w / 8.0;

  // --- Compute side. ---
  gpusim::WarpExecParams wp;
  wp.num_warps = cfg.num_warps;
  wp.warp_tile_m = static_cast<int>(std::min<double>(m_eff, 64.0));
  wp.warp_tile_n = 64;
  const double e_tc = std::min(perf.tc_efficiency_cap,
                               gpusim::tensor_core_utilization(d, wp));
  // Sparse tensor cores and the INT8 pipes (W4A8) each double MMA rate.
  const double tc_mult = (sparse ? d.sparse_tc_multiplier : 1.0) *
                         (p.activation_bits == 8 ? 2.0 : 1.0);

  // Thermal feedback: effective clock depends on how long the tensor pipes
  // stay busy, which depends on the clock; two fixed-point iterations
  // converge well within model accuracy.
  double clock_ghz = d.boost_clock_ghz;
  gpusim::KernelEstimate est;
  for (int iter = 0; iter < 2; ++iter) {
    const double tc_per_sm =
        d.tc_flops(clock_ghz) * tc_mult / d.num_sms * e_tc;
    const double tile_flops = 2.0 * std::min<double>(m_eff, 64.0) *
                              static_cast<double>(cfg.k_sm_tile) * width;
    const double t_tile_comp = tile_flops / tc_per_sm;

    // --- Memory side (per active SM). ---
    const double bw_share =
        d.gmem_bytes_per_s() * perf.mem_efficiency / part.active_sms;
    // Besides the B stream, each SM carries its share of the one-time A
    // read and the C write-out (plus reduction re-reads/writes).
    const double reduce_bytes = static_cast<double>(part.reduction_steps) *
                                m_eff * width * 2.0 * 2.0;
    const double shared_stream_bytes =
        (p.a_bytes() + p.c_bytes() + reduce_bytes) / part.active_sms;
    const double tiles_max = static_cast<double>(part.max_stripe);
    const double tile_load_s =
        (tile_b_bytes + shared_stream_bytes / std::max(1.0, tiles_max)) /
        bw_share;

    // --- L2 bound (Eq. 1): every tile also pulls its A block from L2. ---
    const double l2_share =
        d.l2_bytes_per_s() * perf.l2_efficiency / part.active_sms;
    const double a_block_bytes = m_eff * static_cast<double>(cfg.k_sm_tile) * 2.0;
    const double t_tile_l2 = (a_block_bytes + tile_b_bytes) / l2_share;

    // --- Software pipeline over the SM's stripe. ---
    gpusim::PipelineParams pp;
    pp.depth = cfg.pipeline_depth;
    pp.num_tiles = static_cast<int>(std::min<index_t>(
        part.max_stripe, static_cast<index_t>(1) << 22));
    pp.tile_load_s = std::max(tile_load_s, t_tile_l2);
    pp.load_latency_s = perf.load_latency_s;
    pp.tile_compute_s = t_tile_comp;
    const gpusim::PipelineResult pipe = gpusim::simulate_pipeline(pp);

    const double t_reduce =
        part.max_column_depth > 1
            ? static_cast<double>(part.max_column_depth - 1) *
                  (m_eff * width * 2.0 * 2.0 /
                       (d.l2_bytes_per_s() * perf.l2_efficiency) +
                   perf.reduction_step_latency_s)
            : 0.0;

    est.seconds = d.kernel_launch_s + pipe.total_s + t_reduce;
    est.breakdown.launch_s = d.kernel_launch_s;
    est.breakdown.mem_s = tiles_max * pp.tile_load_s;
    est.breakdown.l2_s = tiles_max * t_tile_l2;
    est.breakdown.compute_s = tiles_max * t_tile_comp;
    est.breakdown.reduce_s = t_reduce;
    est.breakdown.pipeline_fill_s =
        pp.tile_load_s * cfg.pipeline_depth + perf.load_latency_s;
    est.effective_clock_ghz = clock_ghz;

    // Thermal / locked-clock feedback for the next iteration.
    const double busy_fraction =
        est.seconds > 0
            ? std::min(1.0, est.breakdown.compute_s / est.seconds)
            : 0.0;
    clock_ghz = clock.effective_clock_ghz(d, busy_fraction * est.seconds);
    if (clock.mode != gpusim::ClockMode::kAutoThermal) {
      clock_ghz = clock.effective_clock_ghz(d, 0.0);
    }
  }

  est.useful_flops = p.flops();
  est.traffic.gmem_read_bytes = static_cast<std::int64_t>(
      p.weight_bytes() + p.a_bytes() +
      static_cast<double>(part.reduction_steps) * m_eff * width * 2.0);
  est.traffic.gmem_write_bytes = static_cast<std::int64_t>(
      p.c_bytes() +
      static_cast<double>(part.reduction_steps) * m_eff * width * 2.0);
  est.traffic.l2_read_bytes = static_cast<std::int64_t>(
      static_cast<double>(part.total_tiles) *
      (m_eff * static_cast<double>(cfg.k_sm_tile) * 2.0 + tile_b_bytes));
  return est;
}

}  // namespace

gpusim::KernelEstimate marlin_estimate(const MatmulProblem& p,
                                       const KernelConfig& cfg,
                                       const gpusim::DeviceSpec& d,
                                       const gpusim::ClockModel& clock,
                                       const MarlinPerfParams& perf) {
  MatmulProblem dense = p;
  dense.sparse24 = false;
  return estimate_impl(dense, cfg, d, clock, perf, /*sparse=*/false);
}

gpusim::KernelEstimate sparse_marlin_estimate(const MatmulProblem& p,
                                              const KernelConfig& cfg,
                                              const gpusim::DeviceSpec& d,
                                              const gpusim::ClockModel& clock,
                                              const MarlinPerfParams& perf) {
  MatmulProblem sp = p;
  sp.sparse24 = true;
  return estimate_impl(sp, cfg, d, clock, perf, /*sparse=*/true);
}

namespace {

/// The kernel auto-tuner: try every legal tile width and keep the fastest —
/// mirroring how the CUDA MARLIN picks its launch configuration per shape.
template <typename EstimateFn>
gpusim::KernelEstimate tuned_estimate(const MatmulProblem& p,
                                      const gpusim::DeviceSpec& d,
                                      const EstimateFn& estimate) {
  gpusim::KernelEstimate best;
  bool first = true;
  for (const index_t n_sm : {64, 128, 256}) {
    if (n_sm > std::max<index_t>(64, p.n)) continue;
    KernelConfig cfg = choose_config(p, d);
    cfg.n_sm_tile = n_sm;
    cfg.num_warps = std::min(8, cfg.n_subtiles(std::min(n_sm, p.n)) * 4);
    const index_t tile_cols = (p.n + n_sm - 1) / n_sm;
    const index_t m_blocks =
        std::max<index_t>(1, (p.m + cfg.m_block - 1) / cfg.m_block);
    for (const int sm_limit :
         {0, static_cast<int>(std::min<index_t>(tile_cols * m_blocks,
                                                d.num_sms))}) {
      cfg.sm_limit = sm_limit;
      const auto est = estimate(cfg);
      if (first || est.seconds < best.seconds) {
        best = est;
        first = false;
      }
    }
  }
  return best;
}

}  // namespace

gpusim::KernelEstimate marlin_estimate_auto(const MatmulProblem& p,
                                            const gpusim::DeviceSpec& d,
                                            const gpusim::ClockModel& clock) {
  return tuned_estimate(p, d, [&](const KernelConfig& cfg) {
    return marlin_estimate(p, cfg, d, clock);
  });
}

gpusim::KernelEstimate sparse_marlin_estimate_auto(
    const MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock) {
  return tuned_estimate(p, d, [&](const KernelConfig& cfg) {
    return sparse_marlin_estimate(p, cfg, d, clock);
  });
}

}  // namespace marlin::core
