#pragma once
// Striped partitioning (paper §3.4 "Striped Partitioning", Figure 5).
//
// The B tile grid (tile_rows x tile_cols) is flattened column-major and cut
// into #SM contiguous stripes of near-equal length, so a stripe may start
// mid-column and spill into the next column. Every column an SM touches
// yields one partial result; partials of a column are combined by a
// *serial* bottom-to-top reduction in the FP16 output buffer (the lock
// buffer protocol).
//
// For M >> 64 the grid is virtually replicated along the batch dimension
// (paper: "for batchsizes >> 64 we can virtually replicate B for the
// striped index calculations"): each m-block of 64 input rows gets its own
// copy of the tile columns, which drastically reduces reduction steps for
// prefill-sized batches.

#include <vector>

#include "util/matrix.hpp"

namespace marlin::core {

struct TileCoord {
  index_t row = 0;      // K_sm-tile row
  index_t col = 0;      // N_sm-tile column
  index_t m_block = 0;  // virtual replication index (batch block)
};

struct ColumnSegment {
  int sm = -1;
  index_t row_begin = 0;  // inclusive, in tile rows
  index_t row_end = 0;    // exclusive
};

struct StripedPartition {
  index_t tile_rows = 0;
  index_t tile_cols = 0;
  index_t m_blocks = 1;
  int num_sms = 0;

  /// Per SM, the tiles of its stripe in processing order (top-to-bottom,
  /// column-major across the virtually replicated grid).
  std::vector<std::vector<TileCoord>> sm_tiles;

  /// segments[m_block * tile_cols + col]: contributing SMs ordered
  /// bottom-to-top (reduction order).
  std::vector<std::vector<ColumnSegment>> segments;

  [[nodiscard]] index_t total_tiles() const {
    return tile_rows * tile_cols * m_blocks;
  }
  [[nodiscard]] index_t max_stripe_len() const;
  [[nodiscard]] index_t min_stripe_len() const;
  /// Number of serial global-reduction steps (sum over columns of
  /// segments-1).
  [[nodiscard]] index_t reduction_steps() const;
  /// Longest serial reduction chain of any single column.
  [[nodiscard]] index_t max_column_depth() const;
};

[[nodiscard]] StripedPartition striped_partition(index_t tile_rows,
                                                 index_t tile_cols,
                                                 int num_sms,
                                                 index_t m_blocks = 1);

/// The naive alternative the paper compares against conceptually: each SM
/// owns whole columns (no stripes). Used by the partitioning ablation.
[[nodiscard]] StripedPartition columnwise_partition(index_t tile_rows,
                                                    index_t tile_cols,
                                                    int num_sms,
                                                    index_t m_blocks = 1);

/// Closed-form summary of striped_partition for the analytic timing layer —
/// identical numbers without materialising per-tile vectors (the Fig. 1
/// matrix alone has ~83k tiles; prefill batches multiply that).
struct PartitionStats {
  index_t total_tiles = 0;
  index_t max_stripe = 0;
  index_t min_stripe = 0;
  index_t reduction_steps = 0;
  index_t max_column_depth = 1;
  int active_sms = 0;
};
[[nodiscard]] PartitionStats striped_partition_stats(index_t tile_rows,
                                                     index_t tile_cols,
                                                     int num_sms,
                                                     index_t m_blocks = 1);

}  // namespace marlin::core
