#pragma once
// Functional (bit-faithful) execution of the dense MARLIN kernel on the
// host simulator.
//
// The kernel is executed exactly as the CUDA implementation schedules it:
//   * the B tile grid is cut into striped per-SM workloads (Figure 5);
//   * within a tile, warps own fixed-width-64 subtiles and split the K_sm
//     slabs (Figure 4 / Algorithm 1), accumulating FP32 partials;
//   * B fragments are unpacked per thread from the 16-byte reshuffled
//     vectors and dequantised with the exact lop3/packed-FP16 bit trick;
//   * grouped scales are applied at dequantisation time (FP16), per-column
//     scales once at output;
//   * warps tree-reduce their partials (logarithmic shared-memory
//     reduction), then column partials are serially reduced bottom-to-top
//     in FP16 directly in the output buffer — the lock-buffer protocol.
// Data traffic at each memory level is recorded as the kernel runs; the
// timing layer prices the identical schedule.
//
// On the host, SM workloads run on the SimContext's shared pool (they are
// data-parallel; the serial FP16 reduction is performed as an ordered
// second phase, which is the same dataflow the GPU lock buffer enforces),
// so results are bit-identical at every thread count.

#include "core/config.hpp"
#include "core/partition.hpp"
#include "gpusim/memory.hpp"
#include "layout/repack.hpp"
#include "util/matrix.hpp"
#include "util/sim_context.hpp"

namespace marlin::core {

struct FunctionalResult {
  Matrix<Half> c;
  gpusim::TrafficCounters traffic;
  index_t reduction_steps = 0;
  index_t tiles_processed = 0;
  index_t max_stripe_len = 0;
};

/// C = A * dequant(B). A is M x K FP16; B is the repacked MARLIN weight
/// stream. `num_sms` controls the striped partition (use the target
/// device's SM count); `ctx` parallelises SM execution on its shared pool
/// (the default serial context runs inline).
FunctionalResult marlin_matmul(
    ConstMatrixView<Half> a, const layout::MarlinWeights& b,
    const KernelConfig& cfg, int num_sms,
    const SimContext& ctx = SimContext::serial_context());

/// Reference: plain FP32-accumulate GEMM over the dequantised weights.
/// Rows are independent; `ctx` fans them out with bit-identical results.
Matrix<float> reference_matmul(
    ConstMatrixView<Half> a, ConstMatrixView<float> w,
    const SimContext& ctx = SimContext::serial_context());

}  // namespace marlin::core
