#include "core/l2_replay.hpp"

#include <algorithm>
#include <vector>

#include "core/partition.hpp"
#include "util/error.hpp"

namespace marlin::core {

L2ReplayResult replay_schedule_through_l2(const MatmulProblem& p,
                                          const KernelConfig& cfg,
                                          const gpusim::DeviceSpec& d,
                                          bool evict_first_b) {
  MARLIN_CHECK(p.k % cfg.k_sm_tile == 0, "K must align with K_sm");
  const index_t tile_rows = p.k / cfg.k_sm_tile;
  const index_t tile_cols = (p.n + cfg.n_sm_tile - 1) / cfg.n_sm_tile;
  const index_t m_blocks =
      std::max<index_t>(1, (p.m + cfg.m_block - 1) / cfg.m_block);
  const StripedPartition part =
      striped_partition(tile_rows, tile_cols, d.num_sms, m_blocks);

  gpusim::L2Cache cache(static_cast<std::int64_t>(d.l2_size_bytes));

  // Address map: A occupies [0, 2*M*K); B follows, tiles laid contiguously.
  const std::uint64_t a_base = 0;
  const std::uint64_t b_base = static_cast<std::uint64_t>(p.m) *
                               static_cast<std::uint64_t>(p.k) * 2;
  const double bits_w = p.weight_bits_per_element();

  L2ReplayResult res;
  const auto b_hint = evict_first_b ? gpusim::CacheHint::kEvictFirst
                                    : gpusim::CacheHint::kNormal;

  // Warm A once (the first-touch GMEM read that fills L2).
  cache.access_range(a_base, p.m * p.k * 2, gpusim::CacheHint::kNormal);
  cache.reset_stats();

  // Interleave the stripes round-robin, one tile per SM per round.
  std::vector<std::size_t> cursor(part.sm_tiles.size(), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t sm = 0; sm < part.sm_tiles.size(); ++sm) {
      const auto& stripe = part.sm_tiles[sm];
      if (cursor[sm] >= stripe.size()) continue;
      progress = true;
      const TileCoord& t = stripe[cursor[sm]++];

      // B tile: streamed once, with the configured hint.
      const index_t width =
          std::min<index_t>(cfg.n_sm_tile, p.n - t.col * cfg.n_sm_tile);
      const auto tile_bytes = static_cast<std::int64_t>(
          static_cast<double>(cfg.k_sm_tile) * static_cast<double>(width) *
          bits_w / 8.0);
      const std::uint64_t b_addr =
          b_base + static_cast<std::uint64_t>(
                       (t.row * tile_cols + t.col) * tile_bytes);
      {
        const auto before = cache.stats();
        cache.access_range(b_addr, tile_bytes, b_hint);
        res.b_stats.hits += cache.stats().hits - before.hits;
        res.b_stats.misses += cache.stats().misses - before.misses;
      }

      // A block re-read for this tile's reduction rows and batch block.
      const index_t m0 = t.m_block * cfg.m_block;
      const index_t m_rows = std::min<index_t>(cfg.m_block, p.m - m0);
      const auto before = cache.stats();
      for (index_t r = 0; r < m_rows; ++r) {
        const std::uint64_t row_addr =
            a_base + static_cast<std::uint64_t>(
                         ((m0 + r) * p.k + t.row * cfg.k_sm_tile) * 2);
        cache.access_range(row_addr, cfg.k_sm_tile * 2,
                           gpusim::CacheHint::kNormal);
      }
      res.a_stats.hits += cache.stats().hits - before.hits;
      res.a_stats.misses += cache.stats().misses - before.misses;
    }
  }
  return res;
}

}  // namespace marlin::core
