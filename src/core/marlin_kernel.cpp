#include "core/marlin_kernel.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "layout/fragment.hpp"
#include "quant/dequant_trick.hpp"

namespace marlin::core {

namespace {

using layout::MarlinWeights;

/// One SM's partial result for one (m_block, column) pair.
struct ColumnPartial {
  index_t key = 0;  // m_block * tile_cols + col
  Matrix<float> acc;
};

struct SmOutput {
  std::vector<ColumnPartial> partials;
  gpusim::TrafficCounters traffic;
};

struct Grid {
  index_t m = 0, k = 0, n = 0;
  index_t tile_rows = 0, tile_cols = 0, m_blocks = 0;
  index_t n_sm = 0;  // configured tile width

  [[nodiscard]] index_t tile_width(index_t col) const {
    return std::min(n_sm, n - col * n_sm);
  }
  [[nodiscard]] index_t m_rows(index_t m_block, index_t m_block_size) const {
    return std::min<index_t>(m_block_size, m - m_block * m_block_size);
  }
};

/// Dequantise the 16 x 64 weight block (slab, chunk) from the packed
/// per-thread fragments, applying grouped scales if configured.
void assemble_weight_block(const MarlinWeights& b, index_t slab, index_t chunk,
                           bool grouped, float out[16][64]) {
  const bool asym = b.asymmetric();
  for (int lane = 0; lane < 32; ++lane) {
    const int tg = lane >> 2;
    for (int block = 0; block < 4; ++block) {
      const std::uint32_t reg =
          b.packed[b.packed_index(slab, chunk, lane, block)];
      const auto vals = quant::dequant8(reg);
      for (int w = 0; w < 8; ++w) {
        const layout::Coord c = layout::weight_block16_coord(lane, w);
        const int col = block * 16 + c.col;
        float v = vals[static_cast<std::size_t>(w)].to_float();
        const index_t g = b.cfg.group_of_row(slab * 16 + c.row);
        const int packed_pos = tg * 8 + 2 * block + ((w & 4) ? 1 : 0);
        if (asym) {
          // AWQ format: re-centre the signed code on the stored zero point.
          v += 8.0f -
               static_cast<float>(b.zeros_packed(g, chunk * 64 + packed_pos));
        }
        if (grouped) {
          v *= b.scales_packed(g, chunk * 64 + packed_pos).to_float();
        }
        out[c.row][col] = v;
      }
    }
  }
}

/// Logarithmic shared-memory reduction of the warp partials of one subtile
/// (paper: Harris 2007), recording SMEM traffic.
void warp_tree_reduce(std::vector<Matrix<float>>& parts,
                      gpusim::TrafficCounters& traffic) {
  index_t active = static_cast<index_t>(parts.size());
  while (active > 1) {
    const index_t half = (active + 1) / 2;
    for (index_t i = 0; i + half < active; ++i) {
      auto& dst = parts[static_cast<std::size_t>(i)];
      const auto& src = parts[static_cast<std::size_t>(i + half)];
      for (index_t r = 0; r < dst.rows(); ++r) {
        for (index_t c = 0; c < dst.cols(); ++c) dst(r, c) += src(r, c);
      }
      const std::int64_t bytes = dst.size() * 4;
      traffic.smem_read_bytes += bytes;
      traffic.smem_write_bytes += bytes;
    }
    active = half;
  }
}

/// Execute one SM's stripe; returns its column partials and traffic.
SmOutput run_sm(ConstMatrixView<Half> a, const MarlinWeights& b,
                const KernelConfig& cfg, const Grid& grid,
                const std::vector<TileCoord>& stripe) {
  SmOutput out;
  const bool grouped = b.cfg.group_size != quant::kPerColumn;

  const index_t scale_groups_bytes_per_tile =
      grouped ? (64 / b.cfg.group_size + 1) * 2 : 0;  // upper bound per col

  index_t cur_key = -1;
  index_t cur_col = -1, cur_mb = -1;
  index_t width = 0, m0 = 0, m_rows = 0;
  int n_subtiles = 0, warps_per_sub = 0;
  // Per warp: FP32 accumulator of its 64-wide subtile.
  std::vector<Matrix<float>> warp_acc;

  float wblock[16][64];

  auto flush_column = [&]() {
    if (cur_key < 0) return;
    // Tree-reduce the k-split warps of each subtile, then concatenate.
    Matrix<float> acc(m_rows, width);
    for (int j = 0; j < n_subtiles; ++j) {
      std::vector<Matrix<float>> parts;
      for (int w = j; w < cfg.num_warps; w += n_subtiles) {
        parts.push_back(std::move(warp_acc[static_cast<std::size_t>(w)]));
      }
      warp_tree_reduce(parts, out.traffic);
      for (index_t r = 0; r < m_rows; ++r) {
        for (index_t c = 0; c < 64; ++c) {
          acc(r, j * 64 + c) = parts[0](r, c);
        }
      }
    }
    out.partials.push_back({cur_key, std::move(acc)});
    cur_key = -1;
  };

  for (const TileCoord& t : stripe) {
    const index_t key = t.m_block * grid.tile_cols + t.col;
    if (key != cur_key) {
      flush_column();
      cur_key = key;
      cur_col = t.col;
      cur_mb = t.m_block;
      width = grid.tile_width(cur_col);
      m0 = cur_mb * cfg.m_block;
      m_rows = grid.m_rows(cur_mb, cfg.m_block);
      n_subtiles = static_cast<int>(width / 64);
      MARLIN_CHECK(cfg.num_warps >= n_subtiles,
                   "need at least one warp per 64-wide subtile");
      warps_per_sub = cfg.num_warps / n_subtiles;
      warp_acc.assign(static_cast<std::size_t>(cfg.num_warps), {});
      for (auto& wa : warp_acc) wa = Matrix<float>(m_rows, 64, 0.0f);
    }

    // --- B tile load (streamed once, evict-first). ---
    out.traffic.gmem_read_bytes += 64 * width / 2;
    if (grouped) {
      out.traffic.gmem_read_bytes += scale_groups_bytes_per_tile * width;
    }
    // --- A block re-read through L2. ---
    out.traffic.l2_read_bytes += m_rows * 64 * 2;

    // --- Tensor-core main loop: slabs x subtiles, split across warps. ---
    const index_t k0 = t.row * 64;
    for (int s = 0; s < 4; ++s) {  // 4 slabs of 16 reduction rows
      const index_t slab = t.row * 4 + s;
      for (int j = 0; j < n_subtiles; ++j) {
        const index_t chunk = (cur_col * grid.n_sm) / 64 + j;
        // Warp owning (slab s, subtile j) per Algorithm 1.
        const int rank = s % warps_per_sub;
        const int warp = j + rank * n_subtiles;
        auto& acc = warp_acc[static_cast<std::size_t>(warp)];

        assemble_weight_block(b, slab, chunk, grouped, wblock);
        // mma.sync emulation: FP16 inputs, FP32 accumulate.
        for (index_t r = 0; r < m_rows; ++r) {
          const Half* arow = &a(m0 + r, k0 + s * 16);
          float* crow = &acc(r, 0);
          for (int kk = 0; kk < 16; ++kk) {
            const float av = arow[kk].to_float();
            if (av == 0.0f) continue;
            const float* wrow = wblock[kk];
            for (int c = 0; c < 64; ++c) crow[c] += av * wrow[c];
          }
        }
      }
    }
  }
  flush_column();
  return out;
}

}  // namespace

Matrix<float> reference_matmul(ConstMatrixView<Half> a,
                               ConstMatrixView<float> w,
                               const SimContext& ctx) {
  MARLIN_CHECK(a.cols() == w.rows(), "inner dims mismatch");
  Matrix<float> c(a.rows(), w.cols(), 0.0f);
  ctx.parallel_for(0, a.rows(), [&](std::int64_t i) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const float av = a(i, k).to_float();
      if (av == 0.0f) continue;
      for (index_t j = 0; j < w.cols(); ++j) {
        c(i, j) += av * w(k, j);
      }
    }
  });
  return c;
}

FunctionalResult marlin_matmul(ConstMatrixView<Half> a,
                               const layout::MarlinWeights& b,
                               const KernelConfig& cfg, int num_sms,
                               const SimContext& ctx) {
  const index_t m = a.rows(), k = a.cols(), n = b.n;
  MARLIN_CHECK(k == b.k, "A cols must equal B rows");
  MARLIN_CHECK(k % 64 == 0, "K must be divisible by 64");
  MARLIN_CHECK(n % 64 == 0, "N must be divisible by 64");
  MARLIN_CHECK(cfg.n_sm_tile % 64 == 0, "N_sm must be a multiple of 64");
  MARLIN_CHECK(num_sms > 0, "need at least one SM");

  Grid grid;
  grid.m = m;
  grid.k = k;
  grid.n = n;
  grid.n_sm = cfg.n_sm_tile;
  grid.tile_rows = k / 64;
  grid.tile_cols = (n + cfg.n_sm_tile - 1) / cfg.n_sm_tile;
  grid.m_blocks = std::max<index_t>(1, (m + cfg.m_block - 1) / cfg.m_block);

  const StripedPartition part = striped_partition(
      grid.tile_rows, grid.tile_cols, num_sms, grid.m_blocks);

  // --- Phase 1: data-parallel stripe execution. Outputs are indexed by
  // SM, so the execution order (and thread count) cannot affect them. ---
  std::vector<SmOutput> outputs(static_cast<std::size_t>(num_sms));
  ctx.parallel_for(0, num_sms, [&](std::int64_t sm) {
    outputs[static_cast<std::size_t>(sm)] =
        run_sm(a, b, cfg, grid, part.sm_tiles[static_cast<std::size_t>(sm)]);
  });

  FunctionalResult res;
  res.c = Matrix<Half>(m, n);
  res.max_stripe_len = part.max_stripe_len();
  res.tiles_processed = part.total_tiles();
  // A is read from GMEM once in total (it then lives in L2; the per-tile
  // re-reads were counted as L2 traffic by each SM).
  res.traffic.gmem_read_bytes += m * k * 2;
  for (const auto& o : outputs) res.traffic += o.traffic;

  // Index partials: (sm, key) -> matrix.
  std::vector<std::vector<const Matrix<float>*>> by_sm(
      static_cast<std::size_t>(num_sms));
  std::vector<std::vector<index_t>> keys_by_sm(
      static_cast<std::size_t>(num_sms));
  for (int sm = 0; sm < num_sms; ++sm) {
    for (const auto& p : outputs[static_cast<std::size_t>(sm)].partials) {
      by_sm[static_cast<std::size_t>(sm)].push_back(&p.acc);
      keys_by_sm[static_cast<std::size_t>(sm)].push_back(p.key);
    }
  }
  auto find_partial = [&](int sm, index_t key) -> const Matrix<float>& {
    const auto& keys = keys_by_sm[static_cast<std::size_t>(sm)];
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) return *by_sm[static_cast<std::size_t>(sm)][i];
    }
    MARLIN_CHECK(false, "missing partial for sm " << sm << " key " << key);
    return *by_sm[0][0];  // unreachable
  };

  const bool per_column = b.cfg.group_size == quant::kPerColumn;
  const auto perm = layout::scale_chunk_perm();

  // --- Phase 2: serial bottom-to-top FP16 reduction per column (the lock
  // buffer protocol), directly in the output buffer. ---
  for (index_t key = 0;
       key < static_cast<index_t>(part.segments.size()); ++key) {
    const auto& segs = part.segments[static_cast<std::size_t>(key)];
    if (segs.empty()) continue;
    const index_t mb = key / grid.tile_cols;
    const index_t col = key % grid.tile_cols;
    const index_t width = grid.tile_width(col);
    const index_t m0 = mb * cfg.m_block;
    const index_t m_rows = grid.m_rows(mb, cfg.m_block);
    const index_t c0 = col * cfg.n_sm_tile;

    bool first = true;
    for (const ColumnSegment& seg : segs) {
      const Matrix<float>& partial = find_partial(seg.sm, key);
      for (index_t r = 0; r < m_rows; ++r) {
        for (index_t c = 0; c < width; ++c) {
          float v = partial(r, c);
          if (per_column) {
            // Output scaling (per-column scales applied once at write-out).
            const index_t chunk = (c0 + c) / 64;
            const int pos_in_chunk = static_cast<int>((c0 + c) % 64);
            // scales_packed stores permuted columns; invert the perm.
            int packed_pos = 0;
            for (int p = 0; p < 64; ++p) {
              if (perm[static_cast<std::size_t>(p)] == pos_in_chunk) {
                packed_pos = p;
                break;
              }
            }
            v *= b.scales_packed(0, chunk * 64 + packed_pos).to_float();
          }
          Half& out = res.c(m0 + r, c0 + c);
          if (first) {
            out = Half(v);
          } else {
            out = Half(out.to_float() + v);  // FP16 in-place reduction
          }
        }
      }
      const std::int64_t bytes = m_rows * width * 2;
      res.traffic.gmem_write_bytes += bytes;
      if (!first) {
        res.traffic.gmem_read_bytes += bytes;
        ++res.reduction_steps;
      }
      first = false;
    }
  }
  MARLIN_ASSERT(res.reduction_steps == part.reduction_steps());
  return res;
}

}  // namespace marlin::core
