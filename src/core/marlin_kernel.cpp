#include "core/marlin_kernel.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <utility>
#include <vector>

#include "layout/fragment.hpp"
#include "quant/dequant_trick.hpp"
#include "quant/pack.hpp"
#include "util/simd_ops.hpp"

namespace marlin::core {

namespace {

using layout::MarlinWeights;

/// One SM's partial result for one (m_block, column) pair.
struct ColumnPartial {
  index_t key = 0;  // m_block * tile_cols + col
  Matrix<float> acc;
};

struct SmOutput {
  std::vector<ColumnPartial> partials;
  gpusim::TrafficCounters traffic;
};

struct Grid {
  index_t m = 0, k = 0, n = 0;
  index_t tile_rows = 0, tile_cols = 0, m_blocks = 0;
  index_t n_sm = 0;  // configured tile width

  [[nodiscard]] index_t tile_width(index_t col) const {
    return std::min(n_sm, n - col * n_sm);
  }
  [[nodiscard]] index_t m_rows(index_t m_block, index_t m_block_size) const {
    return std::min<index_t>(m_block_size, m - m_block * m_block_size);
  }
};

/// Static maps driving the plane-major weight-block assembly. A (slab,
/// chunk) block's 128 packed registers are contiguous (register index
/// reg = lane * 4 + block); nibble position ("plane") p of register reg
/// holds logical weight w_of_p[p].
struct AssembleTables {
  /// dst[p * 128 + reg] = row * 64 + col inside the 16x64 output block.
  std::array<int, 1024> dst;
  /// halfsel[p]: which 8-column half of the thread group the plane's
  /// logical weight addresses ((w & 4) ? 1 : 0).
  std::array<int, 8> halfsel;
  /// ppos[half * 128 + reg] = packed scale/zero column within the chunk
  /// (tg * 8 + 2 * block + half).
  std::array<int, 256> ppos;
};

const AssembleTables& assemble_tables() {
  static const AssembleTables tables = [] {
    AssembleTables t{};
    // Invert the pack interleave: nibble p stores logical weight w_of_p[p].
    std::array<int, 8> w_of_p{};
    for (int w = 0; w < 8; ++w) {
      w_of_p[static_cast<std::size_t>(
          quant::kInterleaveNibbleOfLogical[static_cast<std::size_t>(w)])] = w;
    }
    for (int p = 0; p < 8; ++p) {
      const int w = w_of_p[static_cast<std::size_t>(p)];
      t.halfsel[static_cast<std::size_t>(p)] = (w & 4) ? 1 : 0;
      for (int lane = 0; lane < 32; ++lane) {
        for (int block = 0; block < 4; ++block) {
          const layout::Coord c = layout::weight_block16_coord(lane, w);
          t.dst[static_cast<std::size_t>(p * 128 + lane * 4 + block)] =
              c.row * 64 + block * 16 + c.col;
        }
      }
    }
    for (int half = 0; half < 2; ++half) {
      for (int lane = 0; lane < 32; ++lane) {
        for (int block = 0; block < 4; ++block) {
          t.ppos[static_cast<std::size_t>(half * 128 + lane * 4 + block)] =
              (lane >> 2) * 8 + 2 * block + half;
        }
      }
    }
    return t;
  }();
  return tables;
}

/// Per-SM scratch for assemble_weight_block (lives on run_sm's stack).
struct AssembleScratch {
  float planes[1024];  ///< plane-major dequantised nibbles
  float shift2[256];   ///< per-half zero-point shift (asym only)
  float scale2[256];   ///< per-half group scale (grouped only)
};

/// Dequantise the 16 x 64 weight block (slab, chunk) from the packed
/// per-thread fragments, applying grouped scales if configured. Plane-major
/// so the nibble extraction and scale application vectorize; the per-element
/// float operations (shift add, scale multiply) are exactly those of the
/// scalar reference, so results are bit-identical at every SIMD level.
void assemble_weight_block(const MarlinWeights& b, index_t slab, index_t chunk,
                           bool grouped, const simd::Ops& o,
                           AssembleScratch& scr, float out[16][64]) {
  const AssembleTables& t = assemble_tables();
  const bool asym = b.asymmetric();
  const std::uint32_t* regs = &b.packed[b.packed_index(slab, chunk, 0, 0)];
  o.dequant_u4_planes(128, regs, scr.planes);

  if (asym || grouped) {
    // The repack guarantees group_size % 16 == 0 (or per-column), so the
    // group index is constant across the slab's 16 rows.
    const index_t g = b.cfg.group_of_row(slab * 16);
    for (int i = 0; i < 256; ++i) {
      const index_t col = chunk * 64 + t.ppos[static_cast<std::size_t>(i)];
      if (asym) {
        scr.shift2[i] = 8.0f - static_cast<float>(b.zeros_packed(g, col));
      }
      if (grouped) {
        scr.scale2[i] = b.scales_packed(g, col).to_float();
      }
    }
  }

  float* const o0 = &out[0][0];
  for (int p = 0; p < 8; ++p) {
    float* plane = scr.planes + p * 128;
    const int half = t.halfsel[static_cast<std::size_t>(p)];
    if (asym) o.add_f32(128, scr.shift2 + half * 128, plane);
    if (grouped) o.mul_f32(128, scr.scale2 + half * 128, plane);
    const int* dst = t.dst.data() + p * 128;
    for (int reg = 0; reg < 128; ++reg) o0[dst[reg]] = plane[reg];
  }
}

/// Logarithmic shared-memory reduction of the warp partials of one subtile
/// (paper: Harris 2007), recording SMEM traffic.
void warp_tree_reduce(std::vector<Matrix<float>>& parts,
                      gpusim::TrafficCounters& traffic, const simd::Ops& o) {
  index_t active = static_cast<index_t>(parts.size());
  while (active > 1) {
    const index_t half = (active + 1) / 2;
    for (index_t i = 0; i + half < active; ++i) {
      auto& dst = parts[static_cast<std::size_t>(i)];
      const auto& src = parts[static_cast<std::size_t>(i + half)];
      o.add_f32(static_cast<std::size_t>(dst.size()), &src(0, 0), &dst(0, 0));
      const std::int64_t bytes = dst.size() * 4;
      traffic.smem_read_bytes += bytes;
      traffic.smem_write_bytes += bytes;
    }
    active = half;
  }
}

/// Execute one SM's stripe; returns its column partials and traffic.
SmOutput run_sm(ConstMatrixView<Half> a, const MarlinWeights& b,
                const KernelConfig& cfg, const Grid& grid,
                const std::vector<TileCoord>& stripe) {
  SmOutput out;
  const bool grouped = b.cfg.group_size != quant::kPerColumn;
  const simd::Ops& o = simd::ops();

  const index_t scale_groups_bytes_per_tile =
      grouped ? (64 / b.cfg.group_size + 1) * 2 : 0;  // upper bound per col

  index_t cur_key = -1;
  index_t cur_col = -1, cur_mb = -1;
  index_t width = 0, m0 = 0, m_rows = 0;
  int n_subtiles = 0, warps_per_sub = 0;
  // Per warp: FP32 accumulator of its 64-wide subtile.
  std::vector<Matrix<float>> warp_acc;

  float wblock[16][64];
  float afl[16];
  AssembleScratch scratch;

  auto flush_column = [&]() {
    if (cur_key < 0) return;
    // Tree-reduce the k-split warps of each subtile, then concatenate.
    Matrix<float> acc(m_rows, width);
    for (int j = 0; j < n_subtiles; ++j) {
      std::vector<Matrix<float>> parts;
      for (int w = j; w < cfg.num_warps; w += n_subtiles) {
        parts.push_back(std::move(warp_acc[static_cast<std::size_t>(w)]));
      }
      warp_tree_reduce(parts, out.traffic, o);
      for (index_t r = 0; r < m_rows; ++r) {
        for (index_t c = 0; c < 64; ++c) {
          acc(r, j * 64 + c) = parts[0](r, c);
        }
      }
    }
    out.partials.push_back({cur_key, std::move(acc)});
    cur_key = -1;
  };

  for (const TileCoord& t : stripe) {
    const index_t key = t.m_block * grid.tile_cols + t.col;
    if (key != cur_key) {
      flush_column();
      cur_key = key;
      cur_col = t.col;
      cur_mb = t.m_block;
      width = grid.tile_width(cur_col);
      m0 = cur_mb * cfg.m_block;
      m_rows = grid.m_rows(cur_mb, cfg.m_block);
      n_subtiles = static_cast<int>(width / 64);
      MARLIN_CHECK(cfg.num_warps >= n_subtiles,
                   "need at least one warp per 64-wide subtile");
      warps_per_sub = cfg.num_warps / n_subtiles;
      warp_acc.assign(static_cast<std::size_t>(cfg.num_warps), {});
      for (auto& wa : warp_acc) wa = Matrix<float>(m_rows, 64, 0.0f);
    }

    // --- B tile load (streamed once, evict-first). ---
    out.traffic.gmem_read_bytes += 64 * width / 2;
    if (grouped) {
      out.traffic.gmem_read_bytes += scale_groups_bytes_per_tile * width;
    }
    // --- A block re-read through L2. ---
    out.traffic.l2_read_bytes += m_rows * 64 * 2;

    // --- Tensor-core main loop: slabs x subtiles, split across warps. ---
    const index_t k0 = t.row * 64;
    for (int s = 0; s < 4; ++s) {  // 4 slabs of 16 reduction rows
      const index_t slab = t.row * 4 + s;
      for (int j = 0; j < n_subtiles; ++j) {
        const index_t chunk = (cur_col * grid.n_sm) / 64 + j;
        // Warp owning (slab s, subtile j) per Algorithm 1.
        const int rank = s % warps_per_sub;
        const int warp = j + rank * n_subtiles;
        auto& acc = warp_acc[static_cast<std::size_t>(warp)];

        assemble_weight_block(b, slab, chunk, grouped, o, scratch, wblock);
        // mma.sync emulation: FP16 inputs, FP32 accumulate. The axpy runs
        // across the 64 independent output columns — the k reduction order
        // is unchanged, so accumulation stays bit-identical.
        for (index_t r = 0; r < m_rows; ++r) {
          o.f16_to_f32(16, half_bits_ptr(&a(m0 + r, k0 + s * 16)), afl);
          float* crow = &acc(r, 0);
          for (int kk = 0; kk < 16; ++kk) {
            const float av = afl[kk];
            if (av == 0.0f) continue;
            o.axpy_f32(64, av, wblock[kk], crow);
          }
        }
      }
    }
  }
  flush_column();
  return out;
}

}  // namespace

Matrix<float> reference_matmul(ConstMatrixView<Half> a,
                               ConstMatrixView<float> w,
                               const SimContext& ctx) {
  MARLIN_CHECK(a.cols() == w.rows(), "inner dims mismatch");
  Matrix<float> c(a.rows(), w.cols(), 0.0f);
  const simd::Ops& o = simd::ops();
  ctx.parallel_for(0, a.rows(), [&](std::int64_t i) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const float av = a(i, k).to_float();
      if (av == 0.0f) continue;
      o.axpy_f32(static_cast<std::size_t>(w.cols()), av, &w(k, 0), &c(i, 0));
    }
  });
  return c;
}

FunctionalResult marlin_matmul(ConstMatrixView<Half> a,
                               const layout::MarlinWeights& b,
                               const KernelConfig& cfg, int num_sms,
                               const SimContext& ctx) {
  const index_t m = a.rows(), k = a.cols(), n = b.n;
  MARLIN_CHECK(k == b.k, "A cols must equal B rows");
  MARLIN_CHECK(k % 64 == 0, "K must be divisible by 64");
  MARLIN_CHECK(n % 64 == 0, "N must be divisible by 64");
  MARLIN_CHECK(cfg.n_sm_tile % 64 == 0, "N_sm must be a multiple of 64");
  MARLIN_CHECK(num_sms > 0, "need at least one SM");

  Grid grid;
  grid.m = m;
  grid.k = k;
  grid.n = n;
  grid.n_sm = cfg.n_sm_tile;
  grid.tile_rows = k / 64;
  grid.tile_cols = (n + cfg.n_sm_tile - 1) / cfg.n_sm_tile;
  grid.m_blocks = std::max<index_t>(1, (m + cfg.m_block - 1) / cfg.m_block);

  const StripedPartition part = striped_partition(
      grid.tile_rows, grid.tile_cols, num_sms, grid.m_blocks);

  // --- Phase 1: data-parallel stripe execution. Outputs are indexed by
  // SM, so the execution order (and thread count) cannot affect them. ---
  std::vector<SmOutput> outputs(static_cast<std::size_t>(num_sms));
  ctx.parallel_for(0, num_sms, [&](std::int64_t sm) {
    outputs[static_cast<std::size_t>(sm)] =
        run_sm(a, b, cfg, grid, part.sm_tiles[static_cast<std::size_t>(sm)]);
  });

  FunctionalResult res;
  res.c = Matrix<Half>(m, n);
  res.max_stripe_len = part.max_stripe_len();
  res.tiles_processed = part.total_tiles();
  // A is read from GMEM once in total (it then lives in L2; the per-tile
  // re-reads were counted as L2 traffic by each SM).
  res.traffic.gmem_read_bytes += m * k * 2;
  for (const auto& o : outputs) res.traffic += o.traffic;

  // Index partials: (sm, key) -> matrix.
  std::vector<std::vector<const Matrix<float>*>> by_sm(
      static_cast<std::size_t>(num_sms));
  std::vector<std::vector<index_t>> keys_by_sm(
      static_cast<std::size_t>(num_sms));
  for (int sm = 0; sm < num_sms; ++sm) {
    for (const auto& p : outputs[static_cast<std::size_t>(sm)].partials) {
      by_sm[static_cast<std::size_t>(sm)].push_back(&p.acc);
      keys_by_sm[static_cast<std::size_t>(sm)].push_back(p.key);
    }
  }
  auto find_partial = [&](int sm, index_t key) -> const Matrix<float>& {
    const auto& keys = keys_by_sm[static_cast<std::size_t>(sm)];
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] == key) return *by_sm[static_cast<std::size_t>(sm)][i];
    }
    MARLIN_CHECK(false, "missing partial for sm " << sm << " key " << key);
    return *by_sm[0][0];  // unreachable
  };

  const bool per_column = b.cfg.group_size == quant::kPerColumn;
  const auto perm = layout::scale_chunk_perm();
  // Invert the scale permutation once (original position -> packed column).
  std::array<int, 64> inv_perm{};
  for (int p = 0; p < 64; ++p) {
    inv_perm[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])] = p;
  }
  const simd::Ops& o = simd::ops();
  std::vector<float> colscale(static_cast<std::size_t>(cfg.n_sm_tile));
  std::vector<float> scaled(static_cast<std::size_t>(cfg.n_sm_tile));

  // --- Phase 2: serial bottom-to-top FP16 reduction per column (the lock
  // buffer protocol), directly in the output buffer. ---
  for (index_t key = 0;
       key < static_cast<index_t>(part.segments.size()); ++key) {
    const auto& segs = part.segments[static_cast<std::size_t>(key)];
    if (segs.empty()) continue;
    const index_t mb = key / grid.tile_cols;
    const index_t col = key % grid.tile_cols;
    const index_t width = grid.tile_width(col);
    const index_t m0 = mb * cfg.m_block;
    const index_t m_rows = grid.m_rows(mb, cfg.m_block);
    const index_t c0 = col * cfg.n_sm_tile;

    if (per_column) {
      // Output scaling (per-column scales applied once at write-out);
      // scales_packed stores permuted columns, hence inv_perm.
      for (index_t c = 0; c < width; ++c) {
        const index_t chunk = (c0 + c) / 64;
        const int packed_pos =
            inv_perm[static_cast<std::size_t>((c0 + c) % 64)];
        colscale[static_cast<std::size_t>(c)] =
            b.scales_packed(0, chunk * 64 + packed_pos).to_float();
      }
    }

    bool first = true;
    for (const ColumnSegment& seg : segs) {
      const Matrix<float>& partial = find_partial(seg.sm, key);
      for (index_t r = 0; r < m_rows; ++r) {
        const float* prow = &partial(r, 0);
        if (per_column) {
          std::memcpy(scaled.data(), prow,
                      static_cast<std::size_t>(width) * sizeof(float));
          o.mul_f32(static_cast<std::size_t>(width), colscale.data(),
                    scaled.data());
          prow = scaled.data();
        }
        std::uint16_t* crow = half_bits_ptr(&res.c(m0 + r, c0));
        if (first) {
          o.f32_to_f16(static_cast<std::size_t>(width), prow, crow);
        } else {
          // FP16 in-place reduction
          o.f16_accum_f32(static_cast<std::size_t>(width), prow, crow);
        }
      }
      const std::int64_t bytes = m_rows * width * 2;
      res.traffic.gmem_write_bytes += bytes;
      if (!first) {
        res.traffic.gmem_read_bytes += bytes;
        ++res.reduction_steps;
      }
      first = false;
    }
  }
  MARLIN_ASSERT(res.reduction_steps == part.reduction_steps());
  return res;
}

}  // namespace marlin::core
