#pragma once
// Replays the striped MARLIN schedule's memory accesses through the L2
// cache simulator — the bridge between the schedule layer and the cache
// model that quantifies the paper's §3.4 claim: streaming B with the
// cp.async `evict_first` hint keeps the repeatedly re-read A operand
// L2-resident; without the hint the B stream evicts it.

#include "core/config.hpp"
#include "core/problem.hpp"
#include "gpusim/device.hpp"
#include "gpusim/l2cache.hpp"

namespace marlin::core {

struct L2ReplayResult {
  gpusim::CacheStats a_stats;  // A block re-reads (excluding first touch)
  gpusim::CacheStats b_stats;  // B tile stream
  [[nodiscard]] double a_hit_rate() const { return a_stats.hit_rate(); }
};

/// Replays tile-by-tile, interleaving the SM stripes round-robin (the
/// closest serial approximation of concurrent SMs sharing one L2).
/// `evict_first_b` selects the hint used for the B stream.
L2ReplayResult replay_schedule_through_l2(const MatmulProblem& p,
                                          const KernelConfig& cfg,
                                          const gpusim::DeviceSpec& d,
                                          bool evict_first_b);

}  // namespace marlin::core
