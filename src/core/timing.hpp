#pragma once
// Schedule-driven analytic timing for MARLIN and Sparse-MARLIN.
//
// The estimator prices the *same schedule* the functional kernel executes:
// the striped partition determines each SM's tile count and the serial
// reduction structure; the cp.async pipeline is simulated per SM; the warp
// model yields the sustainable tensor-core fraction; and Eq. (1) decides
// whether the kernel is bound by the GMEM weight stream or by L2 traffic.
// Calibration inputs are only public device specs plus the efficiency
// constants below (documented, shared by all figures).

#include "core/config.hpp"
#include "core/problem.hpp"
#include "gpusim/clock.hpp"
#include "gpusim/estimate.hpp"

namespace marlin::core {

struct MarlinPerfParams {
  /// Achieved fraction of GMEM peak for the streaming B reads. MARLIN's
  /// 16-byte per-thread loads of offline-reshuffled tiles hit close to
  /// peak; 0.92 matches the ~3.87x endpoint of paper Fig. 1.
  double mem_efficiency = 0.92;
  /// Achieved fraction of aggregate L2 bandwidth for A-block re-reads.
  double l2_efficiency = 0.85;
  /// Cap on tensor-pipe utilisation from the dequant/scale companion work
  /// that shares issue slots with the MMAs (paper reports ~10% off peak
  /// compute in the large-batch regime).
  double tc_efficiency_cap = 0.90;
  /// cp.async GMEM->SMEM latency hidden by the software pipeline.
  double load_latency_s = 6.0e-7;
  /// Lock acquisition + partial flush cost per serial reduction step.
  double reduction_step_latency_s = 1.5e-6;
};

/// Dense MARLIN (INT4 weights, FP16 activations).
[[nodiscard]] gpusim::KernelEstimate marlin_estimate(
    const MatmulProblem& p, const KernelConfig& cfg,
    const gpusim::DeviceSpec& d, const gpusim::ClockModel& clock,
    const MarlinPerfParams& perf = {});

/// Sparse-MARLIN (INT4 + 2:4). Weight bytes shrink to 0.75x of dense INT4
/// (codes on half the positions + 2-bit metadata) and MMAs run on the
/// sparse tensor cores at sparse_tc_multiplier x throughput.
[[nodiscard]] gpusim::KernelEstimate sparse_marlin_estimate(
    const MatmulProblem& p, const KernelConfig& cfg,
    const gpusim::DeviceSpec& d, const gpusim::ClockModel& clock,
    const MarlinPerfParams& perf = {});

/// Convenience: estimate with the shape-chosen config.
[[nodiscard]] gpusim::KernelEstimate marlin_estimate_auto(
    const MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock);
[[nodiscard]] gpusim::KernelEstimate sparse_marlin_estimate_auto(
    const MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock);

}  // namespace marlin::core
