#include "core/w4a8.hpp"

#include <algorithm>

#include "core/timing.hpp"

namespace marlin::core {

Matrix<Half> w4a8_matmul(const quant::Int8Activations& a,
                         const quant::QuantizedWeights& b) {
  const index_t m = a.rows(), k = a.cols(), n = b.n;
  MARLIN_CHECK(k == b.k, "inner dims mismatch");
  MARLIN_CHECK(b.cfg.bits == 4, "weights must be INT4");

  const index_t g =
      b.cfg.group_size == quant::kPerColumn ? k : b.cfg.group_size;
  Matrix<Half> c(m, n);
  for (index_t i = 0; i < m; ++i) {
    const float a_scale = a.row_scale[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < n; ++j) {
      // INT32 accumulation within each scale group; FP32 across groups.
      double acc = 0.0;
      for (index_t g0 = 0; g0 < k; g0 += g) {
        const index_t g1 = std::min(k, g0 + g);
        std::int64_t acc32 = 0;
        for (index_t t = g0; t < g1; ++t) {
          acc32 += static_cast<std::int64_t>(a.q(i, t)) *
                   (static_cast<int>(b.codes(t, j)) - 8);
        }
        acc += static_cast<double>(acc32) *
               b.scales(b.cfg.group_of_row(g0), j).to_float();
      }
      c(i, j) = Half(static_cast<float>(acc * a_scale));
    }
  }
  return c;
}

gpusim::KernelEstimate w4a8_estimate_auto(const MatmulProblem& p,
                                          const gpusim::DeviceSpec& d,
                                          const gpusim::ClockModel& clock) {
  MatmulProblem w4a8 = p;
  w4a8.activation_bits = 8;
  return marlin_estimate_auto(w4a8, d, clock);
}

}  // namespace marlin::core
