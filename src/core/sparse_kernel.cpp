#include "core/sparse_kernel.hpp"

#include <algorithm>
#include <vector>

#include "core/partition.hpp"

namespace marlin::core {

namespace {

struct SmOutput {
  std::vector<std::pair<index_t, Matrix<float>>> partials;
  gpusim::TrafficCounters traffic;
};

}  // namespace

FunctionalResult sparse_marlin_matmul(ConstMatrixView<Half> a,
                                      const sparse::Sparse24Weights& b,
                                      const KernelConfig& cfg, int num_sms,
                                      const SimContext& ctx) {
  const index_t m = a.rows(), k = a.cols(), n = b.n;
  MARLIN_CHECK(k == b.k, "A cols must equal B (original) rows");
  MARLIN_CHECK(k % 64 == 0, "K must be divisible by 64");
  MARLIN_CHECK(n % 64 == 0, "N must be divisible by 64");
  MARLIN_CHECK(num_sms > 0, "need at least one SM");

  const index_t tile_rows = k / 64;
  const index_t tile_cols = (n + cfg.n_sm_tile - 1) / cfg.n_sm_tile;
  const index_t m_blocks =
      std::max<index_t>(1, (m + cfg.m_block - 1) / cfg.m_block);
  const StripedPartition part =
      striped_partition(tile_rows, tile_cols, num_sms, m_blocks);

  auto tile_width = [&](index_t col) {
    return std::min<index_t>(cfg.n_sm_tile, n - col * cfg.n_sm_tile);
  };
  auto m_rows_of = [&](index_t mb) {
    return std::min<index_t>(cfg.m_block, m - mb * cfg.m_block);
  };

  std::vector<SmOutput> outputs(static_cast<std::size_t>(num_sms));
  auto run_one = [&](std::int64_t sm) {
    SmOutput& out = outputs[static_cast<std::size_t>(sm)];
    index_t cur_key = -1;
    Matrix<float> acc;
    index_t width = 0, m0 = 0, m_rows = 0, c0 = 0;

    auto flush = [&]() {
      if (cur_key < 0) return;
      out.partials.emplace_back(cur_key, std::move(acc));
      cur_key = -1;
    };

    for (const TileCoord& t :
         part.sm_tiles[static_cast<std::size_t>(sm)]) {
      const index_t key = t.m_block * tile_cols + t.col;
      if (key != cur_key) {
        flush();
        cur_key = key;
        width = tile_width(t.col);
        m0 = t.m_block * cfg.m_block;
        m_rows = m_rows_of(t.m_block);
        c0 = t.col * cfg.n_sm_tile;
        acc = Matrix<float>(m_rows, width, 0.0f);
      }

      // Compressed stream: codes (0.25 B / original element) + metadata
      // (4 bits per 4-row group) + grouped scales.
      out.traffic.gmem_read_bytes += 64 * width / 4;  // nz codes
      out.traffic.gmem_read_bytes += 64 * width / 8;  // 2-bit metadata
      if (b.cfg.group_size != quant::kPerColumn) {
        out.traffic.gmem_read_bytes += (64 / b.cfg.group_size + 1) * 2 * width;
      }
      // A block via L2 (transposed on the fly by ldmatrix .trans — free).
      out.traffic.l2_read_bytes += m_rows * 64 * 2;

      const index_t k0 = t.row * 64;
      for (index_t g = 0; g < 16; ++g) {  // 16 groups of 4 original rows
        const index_t group = (k0 + g * 4) / 4;
        for (index_t c = 0; c < width; ++c) {
          const index_t col = c0 + c;
          const auto [i0, i1] = sparse::meta_select(b, group, col);
          // The two surviving codes of this group/column.
          for (int t2 = 0; t2 < 2; ++t2) {
            const int sel = (t2 == 0) ? i0 : i1;
            const index_t row = k0 + g * 4 + sel;
            const int code = b.nz_codes(group * 2 + t2, col);
            const float scale =
                b.scales(b.cfg.group_of_row(row), col).to_float();
            const float wv = static_cast<float>(code - 8) * scale;
            if (wv == 0.0f) continue;
            for (index_t r = 0; r < m_rows; ++r) {
              // SPTC selection: only the metadata-addressed A element of
              // this 4-group is consumed.
              acc(r, c) += a(m0 + r, row).to_float() * wv;
            }
          }
        }
      }
    }
    flush();
  };

  ctx.parallel_for(0, num_sms, run_one);

  FunctionalResult res;
  res.c = Matrix<Half>(m, n);
  res.max_stripe_len = part.max_stripe_len();
  res.tiles_processed = part.total_tiles();
  res.traffic.gmem_read_bytes += m * k * 2;
  for (const auto& o : outputs) res.traffic += o.traffic;

  auto find_partial = [&](int sm, index_t key) -> const Matrix<float>& {
    for (const auto& [pk, mat] :
         outputs[static_cast<std::size_t>(sm)].partials) {
      if (pk == key) return mat;
    }
    MARLIN_CHECK(false, "missing partial for sm " << sm << " key " << key);
    return outputs[0].partials[0].second;  // unreachable
  };

  // Serial bottom-to-top FP16 reduction (lock buffer protocol).
  for (index_t key = 0;
       key < static_cast<index_t>(part.segments.size()); ++key) {
    const auto& segs = part.segments[static_cast<std::size_t>(key)];
    if (segs.empty()) continue;
    const index_t mb = key / tile_cols;
    const index_t col = key % tile_cols;
    const index_t width = tile_width(col);
    const index_t m0 = mb * cfg.m_block;
    const index_t m_rows = m_rows_of(mb);
    const index_t c0 = col * cfg.n_sm_tile;

    bool first = true;
    for (const ColumnSegment& seg : segs) {
      const Matrix<float>& partial = find_partial(seg.sm, key);
      for (index_t r = 0; r < m_rows; ++r) {
        for (index_t c = 0; c < width; ++c) {
          Half& out = res.c(m0 + r, c0 + c);
          out = first ? Half(partial(r, c))
                      : Half(out.to_float() + partial(r, c));
        }
      }
      const std::int64_t bytes = m_rows * width * 2;
      res.traffic.gmem_write_bytes += bytes;
      if (!first) {
        res.traffic.gmem_read_bytes += bytes;
        ++res.reduction_steps;
      }
      first = false;
    }
  }
  return res;
}

}  // namespace marlin::core
