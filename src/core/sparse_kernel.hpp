#pragma once
// Functional Sparse-MARLIN kernel (paper §4).
//
// The CUDA kernel reformulates A*B as (B^T A^T)^T so the sparse operand
// sits on the LHS of mma.sp; functionally the product is unchanged, so the
// host simulation computes C = A * decompress(B) directly — but it does so
// by emulating the *SPTC operand selection*: for every group of 4 original
// reduction rows only the two metadata-addressed A elements are read and
// multiplied with the two stored non-zero codes. Striping, the serial
// FP16 lock-buffer reduction and traffic accounting mirror the dense
// kernel; the compressed stream moves 0.75x the dense INT4 bytes.

#include "core/config.hpp"
#include "core/marlin_kernel.hpp"
#include "sparse/compressed.hpp"

namespace marlin::core {

FunctionalResult sparse_marlin_matmul(
    ConstMatrixView<Half> a, const sparse::Sparse24Weights& b,
    const KernelConfig& cfg, int num_sms,
    const SimContext& ctx = SimContext::serial_context());

}  // namespace marlin::core
