#pragma once
// KernelModel adapters over the core MARLIN / Sparse-MARLIN estimators so
// benchmarks can treat every kernel uniformly.

#include "baselines/kernel_model.hpp"
#include "core/timing.hpp"

namespace marlin::baselines {

class MarlinModel final : public KernelModel {
 public:
  [[nodiscard]] std::string name() const override { return "marlin"; }
  [[nodiscard]] gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const override {
    return core::marlin_estimate_auto(p, d, clock);
  }
};

class SparseMarlinModel final : public KernelModel {
 public:
  [[nodiscard]] std::string name() const override { return "sparse-marlin"; }
  [[nodiscard]] gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const override {
    return core::sparse_marlin_estimate_auto(p, d, clock);
  }
};

/// W4A8 extension (paper §6 / QQQ): INT8 activations on the INT8 pipes.
class MarlinW4A8Model final : public KernelModel {
 public:
  [[nodiscard]] std::string name() const override { return "marlin-w4a8"; }
  [[nodiscard]] gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const override {
    core::MatmulProblem w4a8 = p;
    w4a8.activation_bits = 8;
    return core::marlin_estimate_auto(w4a8, d, clock);
  }
};

}  // namespace marlin::baselines
