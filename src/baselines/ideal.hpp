#pragma once
// Ideal roofline bounds — the "Ideal" / "Ideal Dense" / "Ideal Sparse"
// reference lines of paper Figures 1, 10, 12 and 13.
//
// An ideal kernel moves exactly the mandatory bytes and executes exactly
// the (16-row-padded) MMAs with the *same* streaming/TC efficiencies as the
// FP16 CUTLASS baseline — so "ideal INT4 / ideal FP16" equals the storage
// ratio 16 / 4.125 = 3.879x in the memory-bound regime, exactly the
// asymptote the paper quotes.

#include "baselines/fp16_gemm.hpp"
#include "baselines/kernel_model.hpp"

namespace marlin::baselines {

class IdealModel final : public KernelModel {
 public:
  /// bits_mode: 16 (dense FP16), 4 (INT4+scales), 3 (INT4+2:4).
  IdealModel(std::string name, double weight_bits, bool sparse,
             Fp16PerfParams eff = {})
      : name_(std::move(name)),
        weight_bits_(weight_bits),
        sparse_(sparse),
        eff_(eff) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const override;

 private:
  std::string name_;
  double weight_bits_;
  bool sparse_;
  Fp16PerfParams eff_;
};

/// Factory helpers with the paper's exact storage overheads at group 128.
KernelModelPtr ideal_dense_fp16();
KernelModelPtr ideal_int4_g128();
KernelModelPtr ideal_sparse_int4_g128();

}  // namespace marlin::baselines
