#include "baselines/comparators.hpp"

#include <algorithm>
#include <cmath>

namespace marlin::baselines {

ComparatorParams torch_int4_params() {
  ComparatorParams p;
  p.name = "torch-int4";
  p.mem_efficiency = 0.86;
  p.m_tile = 32;
  p.uses_tensor_cores = true;
  p.compute_efficiency = 0.60;
  p.dequant_cycles_per_weight = 5.0;
  p.dequant_overlap = 0.70;
  return p;
}

ComparatorParams exllamav2_params() {
  ComparatorParams p;
  p.name = "exllamav2";
  p.mem_efficiency = 0.88;
  p.m_tile = 16;
  p.uses_tensor_cores = true;
  p.compute_efficiency = 0.45;
  p.dequant_cycles_per_weight = 4.0;
  p.dequant_overlap = 0.70;
  return p;
}

ComparatorParams awq_params() {
  ComparatorParams p;
  p.name = "awq";
  p.mem_efficiency = 0.84;
  p.m_tile = 16;
  p.uses_tensor_cores = true;
  p.compute_efficiency = 0.40;
  p.dequant_cycles_per_weight = 6.0;
  p.dequant_overlap = 0.60;
  return p;
}

ComparatorParams bitsandbytes_params() {
  ComparatorParams p;
  p.name = "bitsandbytes";
  p.mem_efficiency = 0.55;
  p.m_tile = 8;
  p.uses_tensor_cores = false;
  p.compute_efficiency = 0.50;
  p.dequant_cycles_per_weight = 8.0;
  p.dequant_overlap = 0.50;
  return p;
}

gpusim::KernelEstimate ComparatorModel::estimate(
    const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock) const {
  gpusim::KernelEstimate est;
  est.useful_flops = p.flops();
  const double clock_ghz = clock.effective_clock_ghz(d, 1e9);  // sustained
  est.effective_clock_ghz = clock_ghz;

  // Tensor-core kernels pay mma granularity (M padded to 16); CUDA-core
  // kernels (bitsandbytes) process the actual rows.
  const double mp = params_.uses_tensor_cores
                        ? static_cast<double>(p.m_padded())
                        : static_cast<double>(p.m);
  // B is re-streamed and re-dequantised once per M-tile.
  const double rereads =
      std::max(1.0, std::ceil(mp / static_cast<double>(params_.m_tile)));

  const double b_bytes = p.weight_bytes();
  const double bytes = rereads * b_bytes + p.a_bytes() + p.c_bytes();
  const double t_mem =
      bytes / (d.gmem_bytes_per_s() * params_.mem_efficiency);

  const double peak = params_.uses_tensor_cores ? d.tc_flops(clock_ghz)
                                                : d.fma_flops(clock_ghz);
  const double t_comp = 2.0 * mp * static_cast<double>(p.k) *
                        static_cast<double>(p.n) /
                        (peak * params_.compute_efficiency);

  // CUDA-core dequant: ops throughput is one op per FMA lane per cycle.
  const double cuda_ops_per_s = d.fma_flops(clock_ghz) / 2.0;
  const double t_deq = rereads * static_cast<double>(p.k) *
                       static_cast<double>(p.n) *
                       params_.dequant_cycles_per_weight / cuda_ops_per_s;

  est.breakdown.mem_s = t_mem;
  est.breakdown.compute_s = t_comp;
  est.breakdown.dequant_s = (1.0 - params_.dequant_overlap) * t_deq;
  est.breakdown.launch_s = d.kernel_launch_s;
  est.seconds = std::max(t_mem, t_comp) + est.breakdown.dequant_s +
                d.kernel_launch_s;
  est.traffic.gmem_read_bytes =
      static_cast<std::int64_t>(rereads * b_bytes + p.a_bytes());
  est.traffic.gmem_write_bytes = static_cast<std::int64_t>(p.c_bytes());
  return est;
}

}  // namespace marlin::baselines
