#pragma once
// Common interface for every kernel timing model the benchmarks compare:
// MARLIN, Sparse-MARLIN, the FP16 CUTLASS-like baseline, the four
// open-source 4-bit comparators, and the ideal roofline bounds.

#include <memory>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "gpusim/clock.hpp"
#include "gpusim/estimate.hpp"

namespace marlin::baselines {

class KernelModel {
 public:
  virtual ~KernelModel() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const = 0;
};

using KernelModelPtr = std::unique_ptr<KernelModel>;

/// "fp16", "marlin", "sparse-marlin", "torch-int4", "exllamav2", "awq",
/// "bitsandbytes", "ideal-dense", "ideal-int4", "ideal-sparse".
KernelModelPtr make_kernel_model(const std::string& name);

/// The comparator set of paper Figure 1 (torch-int4, exllamav2, awq,
/// bitsandbytes), in plot order.
std::vector<KernelModelPtr> open_source_comparators();

}  // namespace marlin::baselines
