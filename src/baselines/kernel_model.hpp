#pragma once
// Common interface for every kernel timing model the benchmarks compare:
// MARLIN, Sparse-MARLIN, the FP16 CUTLASS-like baseline, the four
// open-source 4-bit comparators, and the ideal roofline bounds.

#include <memory>
#include <string>
#include <vector>

#include "core/problem.hpp"
#include "gpusim/clock.hpp"
#include "gpusim/estimate.hpp"
#include "util/sim_context.hpp"

namespace marlin::baselines {

class KernelModel {
 public:
  virtual ~KernelModel() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const = 0;

  /// Estimates every sweep point, fanned out on the context's pool; models
  /// are stateless so points are independent, and results come back in
  /// point order regardless of the thread count.
  [[nodiscard]] std::vector<gpusim::KernelEstimate> estimate_sweep(
      const SimContext& ctx, const std::vector<core::MatmulProblem>& points,
      const gpusim::DeviceSpec& d, const gpusim::ClockModel& clock) const;
};

using KernelModelPtr = std::unique_ptr<KernelModel>;

/// "fp16", "marlin", "sparse-marlin", "torch-int4", "exllamav2", "awq",
/// "bitsandbytes", "ideal-dense", "ideal-int4", "ideal-sparse".
KernelModelPtr make_kernel_model(const std::string& name);

/// The comparator set of paper Figure 1 (torch-int4, exllamav2, awq,
/// bitsandbytes), in plot order.
std::vector<KernelModelPtr> open_source_comparators();

}  // namespace marlin::baselines
