#include "baselines/kernel_model.hpp"

namespace marlin::baselines {

std::vector<gpusim::KernelEstimate> KernelModel::estimate_sweep(
    const SimContext& ctx, const std::vector<core::MatmulProblem>& points,
    const gpusim::DeviceSpec& d, const gpusim::ClockModel& clock) const {
  std::vector<gpusim::KernelEstimate> out(points.size());
  ctx.parallel_for(0, static_cast<std::int64_t>(points.size()),
                   [&](std::int64_t i) {
                     out[static_cast<std::size_t>(i)] =
                         estimate(points[static_cast<std::size_t>(i)], d,
                                  clock);
                   });
  return out;
}

}  // namespace marlin::baselines
