#include "baselines/fp16_gemm.hpp"

#include <algorithm>
#include <cmath>

namespace marlin::baselines {

gpusim::KernelEstimate Fp16CutlassModel::estimate(
    const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock) const {
  gpusim::KernelEstimate est;
  est.useful_flops = p.flops();

  const double mp = static_cast<double>(p.m_padded());
  const double bytes =
      2.0 * (static_cast<double>(p.k) * static_cast<double>(p.n)) +
      p.a_bytes() + p.c_bytes();
  const double t_mem =
      bytes / (d.gmem_bytes_per_s() * params_.mem_efficiency);

  // Wave quantisation over threadblock tiles.
  const double tiles_m =
      std::ceil(mp / static_cast<double>(std::min<index_t>(
                         params_.tile_m, static_cast<index_t>(mp))));
  const double tiles_n =
      std::ceil(static_cast<double>(p.n) /
                static_cast<double>(params_.tile_n));
  const double tiles = tiles_m * tiles_n;
  const double waves = std::ceil(tiles / d.num_sms);
  const double quant_factor =
      tiles >= d.num_sms ? waves * d.num_sms / tiles : 1.0;

  double clock_ghz = clock.effective_clock_ghz(d, 0.0);
  double t_comp = 0.0;
  for (int iter = 0; iter < 2; ++iter) {
    t_comp = 2.0 * mp * static_cast<double>(p.k) *
             static_cast<double>(p.n) * quant_factor /
             (d.tc_flops(clock_ghz) * params_.tc_efficiency);
    clock_ghz = clock.effective_clock_ghz(
        d, std::min(t_comp, std::max(t_comp, t_mem)));
  }

  est.breakdown.mem_s = t_mem;
  est.breakdown.compute_s = t_comp;
  est.breakdown.launch_s = d.kernel_launch_s;
  est.seconds = std::max(t_mem, t_comp) + d.kernel_launch_s;
  est.effective_clock_ghz = clock_ghz;
  est.traffic.gmem_read_bytes = static_cast<std::int64_t>(
      2.0 * static_cast<double>(p.k) * static_cast<double>(p.n) +
      p.a_bytes());
  est.traffic.gmem_write_bytes = static_cast<std::int64_t>(p.c_bytes());
  return est;
}

Matrix<Half> fp16_gemm(ConstMatrixView<Half> a, ConstMatrixView<Half> b) {
  MARLIN_CHECK(a.cols() == b.rows(), "inner dims mismatch");
  Matrix<Half> c(a.rows(), b.cols());
  Matrix<float> acc(a.rows(), b.cols(), 0.0f);
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t k = 0; k < a.cols(); ++k) {
      const float av = a(i, k).to_float();
      if (av == 0.0f) continue;
      for (index_t j = 0; j < b.cols(); ++j) {
        acc(i, j) += av * b(k, j).to_float();
      }
    }
  }
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < b.cols(); ++j) c(i, j) = Half(acc(i, j));
  }
  return c;
}

}  // namespace marlin::baselines
