#pragma once
// Timing models of the open-source 4-bit kernels paper Figure 1 compares
// against. Each model encodes the *architectural reason* the kernel
// degrades with batch size, with constants calibrated once against the
// published curves (same constants for every figure):
//
//  * All four dequantise B inside their GEMM main loop with a fixed,
//    small M-tile. A batch of M' = ceil(M/16)*16 rows therefore re-streams
//    and re-dequantises B ceil(M'/m_tile) times — the dominant collapse
//    mechanism once M exceeds the tile height (B is hundreds of MB, far
//    beyond L2, so re-reads hit GMEM).
//  * Dequantisation runs on CUDA cores and is only partially overlapped
//    with math (no MARLIN-style static pipeline), adding a cost
//    proportional to the dequantised volume.
//  * Tensor-core utilisation is capped well below CUTLASS because the
//    interleaved dequant work starves the MMA pipes (bitsandbytes performs
//    its multiply-accumulate on CUDA cores entirely).
//
// At locked base clock (paper Fig. 10) CUDA-core dequant slows down
// proportionally while GMEM bandwidth does not — which is exactly why the
// paper observes prior kernels losing *relative* performance at base clock
// while MARLIN (fully overlapped) is unaffected.

#include "baselines/kernel_model.hpp"

namespace marlin::baselines {

struct ComparatorParams {
  std::string name;
  double mem_efficiency = 0.85;   // B-stream fraction of GMEM peak
  index_t m_tile = 16;            // M-tile height; B re-read per tile
  bool uses_tensor_cores = true;  // false: FP32-FMA CUDA-core math
  double compute_efficiency = 0.5;
  double dequant_cycles_per_weight = 4.0;  // CUDA-core ops per weight
  double dequant_overlap = 0.7;   // fraction hidden behind mem/math
};

/// torch-nightly INT4 (tinygemm-style): decent tiles, moderate overlap.
ComparatorParams torch_int4_params();
/// ExLlamaV2: excellent at M<=16, fixed 16-row tile, weak TC utilisation.
ComparatorParams exllamav2_params();
/// AWQ GEMM kernel: similar structure, heavier dequant path.
ComparatorParams awq_params();
/// bitsandbytes NF4-style: double dequant on CUDA cores, no tensor cores.
ComparatorParams bitsandbytes_params();

class ComparatorModel final : public KernelModel {
 public:
  explicit ComparatorModel(ComparatorParams params)
      : params_(std::move(params)) {}
  [[nodiscard]] std::string name() const override { return params_.name; }
  [[nodiscard]] gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const override;

 private:
  ComparatorParams params_;
};

}  // namespace marlin::baselines
