#include "baselines/ideal.hpp"

#include <algorithm>

namespace marlin::baselines {

gpusim::KernelEstimate IdealModel::estimate(
    const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
    const gpusim::ClockModel& clock) const {
  gpusim::KernelEstimate est;
  est.useful_flops = p.flops();
  const double clock_ghz = clock.effective_clock_ghz(d, 1e9);  // sustained
  est.effective_clock_ghz = clock_ghz;

  const double b_bytes = weight_bits_ / 8.0 * static_cast<double>(p.k) *
                         static_cast<double>(p.n);
  const double bytes = b_bytes + p.a_bytes() + p.c_bytes();
  const double t_mem = bytes / (d.gmem_bytes_per_s() * eff_.mem_efficiency);

  const double tc_mult = sparse_ ? d.sparse_tc_multiplier : 1.0;
  const double t_comp = 2.0 * static_cast<double>(p.m_padded()) *
                        static_cast<double>(p.k) * static_cast<double>(p.n) /
                        (d.tc_flops(clock_ghz) * tc_mult *
                         eff_.tc_efficiency);

  est.breakdown.mem_s = t_mem;
  est.breakdown.compute_s = t_comp;
  est.seconds = std::max(t_mem, t_comp);
  est.traffic.gmem_read_bytes =
      static_cast<std::int64_t>(b_bytes + p.a_bytes());
  est.traffic.gmem_write_bytes = static_cast<std::int64_t>(p.c_bytes());
  return est;
}

KernelModelPtr ideal_dense_fp16() {
  return std::make_unique<IdealModel>("ideal-dense", 16.0, false);
}

KernelModelPtr ideal_int4_g128() {
  // 4 bits + FP16 scale per 128 weights = 4.125 bits (paper: 3.87x bound).
  return std::make_unique<IdealModel>("ideal-int4", 4.125, false);
}

KernelModelPtr ideal_sparse_int4_g128() {
  // 2 bits of codes + 1 bit metadata + 0.125 scale = 3.125 bits.
  return std::make_unique<IdealModel>("ideal-sparse", 3.125, true);
}

}  // namespace marlin::baselines
