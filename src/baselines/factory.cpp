#include "baselines/comparators.hpp"
#include "baselines/fp16_gemm.hpp"
#include "baselines/ideal.hpp"
#include "baselines/kernel_model.hpp"
#include "baselines/marlin_model.hpp"
#include "util/error.hpp"

namespace marlin::baselines {

KernelModelPtr make_kernel_model(const std::string& name) {
  if (name == "fp16") return std::make_unique<Fp16CutlassModel>();
  if (name == "marlin") return std::make_unique<MarlinModel>();
  if (name == "sparse-marlin") return std::make_unique<SparseMarlinModel>();
  if (name == "marlin-w4a8") return std::make_unique<MarlinW4A8Model>();
  if (name == "torch-int4") {
    return std::make_unique<ComparatorModel>(torch_int4_params());
  }
  if (name == "exllamav2") {
    return std::make_unique<ComparatorModel>(exllamav2_params());
  }
  if (name == "awq") return std::make_unique<ComparatorModel>(awq_params());
  if (name == "bitsandbytes") {
    return std::make_unique<ComparatorModel>(bitsandbytes_params());
  }
  if (name == "ideal-dense") return ideal_dense_fp16();
  if (name == "ideal-int4") return ideal_int4_g128();
  if (name == "ideal-sparse") return ideal_sparse_int4_g128();
  MARLIN_CHECK(false, "unknown kernel model `" << name << "`");
  return nullptr;  // unreachable
}

std::vector<KernelModelPtr> open_source_comparators() {
  std::vector<KernelModelPtr> v;
  v.push_back(make_kernel_model("torch-int4"));
  v.push_back(make_kernel_model("exllamav2"));
  v.push_back(make_kernel_model("awq"));
  v.push_back(make_kernel_model("bitsandbytes"));
  return v;
}

}  // namespace marlin::baselines
