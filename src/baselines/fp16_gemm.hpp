#pragma once
// FP16 dense GEMM baseline — what PyTorch dispatches to CUTLASS
// (paper Figures 1/9/10/12/13 measure speedup *over this*).

#include "baselines/kernel_model.hpp"
#include "util/half.hpp"
#include "util/matrix.hpp"

namespace marlin::baselines {

struct Fp16PerfParams {
  double mem_efficiency = 0.92;  // streaming efficiency of a tuned GEMM
  double tc_efficiency = 0.95;   // CUTLASS tensor-core utilisation
  index_t tile_m = 128;          // threadblock tile (wave quantisation)
  index_t tile_n = 128;
};

class Fp16CutlassModel final : public KernelModel {
 public:
  explicit Fp16CutlassModel(Fp16PerfParams params = {}) : params_(params) {}
  [[nodiscard]] std::string name() const override { return "fp16"; }
  [[nodiscard]] gpusim::KernelEstimate estimate(
      const core::MatmulProblem& p, const gpusim::DeviceSpec& d,
      const gpusim::ClockModel& clock) const override;

 private:
  Fp16PerfParams params_;
};

/// Functional FP16 GEMM with FP32 accumulation (reference baseline for the
/// functional kernel tests and the quickstart example).
Matrix<Half> fp16_gemm(ConstMatrixView<Half> a, ConstMatrixView<Half> b);

}  // namespace marlin::baselines
