#include "obs/serve_recorder.hpp"

#include <algorithm>
#include <string>

namespace marlin::obs {

namespace {

constexpr std::int64_t kClusterPid = 1;
constexpr std::int64_t kRouterTid = 1;
constexpr std::int64_t kAutoscalerTid = 2;
constexpr std::int64_t kRequestsPid = 2;
constexpr std::int64_t kReplicaPidBase = 10;
constexpr std::int64_t kEngineTid = 0;
constexpr std::int64_t kLifecycleTid = 1;

std::int64_t replica_pid(index_t replica) {
  return kReplicaPidBase + static_cast<std::int64_t>(replica);
}

}  // namespace

ServeRecorder::ServeRecorder(TraceRecorder* trace, MetricsRegistry* metrics)
    : trace_(trace), metrics_(metrics) {
  if (trace_ != nullptr) {
    trace_->set_process_name(kClusterPid, "cluster");
    trace_->set_thread_name(kClusterPid, kRouterTid, "router");
    trace_->set_thread_name(kClusterPid, kAutoscalerTid, "autoscaler");
    trace_->set_process_name(kRequestsPid, "requests");
  }
  if (metrics_ != nullptr) {
    MetricsRegistry& m = *metrics_;
    routed_ = &m.counter("marlin_requests_routed_total",
                         "Requests the router placed on a replica");
    completed_ = &m.counter("marlin_requests_completed_total",
                            "Requests that finished generating");
    rejected_ = &m.counter("marlin_requests_rejected_total",
                           "Requests that could never fit the KV budget");
    shed_ = &m.counter("marlin_requests_shed_total",
                       "Requests shed by deadline-aware admission");
    preemptions_ = &m.counter("marlin_preemptions_total",
                              "Recompute preemptions of running sequences");
    prefill_steps_ =
        &m.counter("marlin_prefill_steps_total", "Chunked-prefill rounds");
    decode_steps_ =
        &m.counter("marlin_decode_steps_total", "Decode engine steps");
    spec_rounds_ = &m.counter("marlin_spec_rounds_total",
                              "Speculative propose-then-verify rounds");
    spec_draft_tokens_ = &m.counter("marlin_spec_draft_tokens_total",
                                    "Draft tokens proposed");
    spec_committed_tokens_ = &m.counter("marlin_spec_committed_tokens_total",
                                        "Tokens committed by verification");
    prefix_cache_hits_ = &m.counter("marlin_prefix_cache_hits_total",
                                    "Admissions that reused cached prefix "
                                    "blocks");
    prefix_cache_hit_blocks_ =
        &m.counter("marlin_prefix_cache_hit_blocks_total",
                   "KV blocks reused from the prefix cache");
    prefix_tokens_skipped_ =
        &m.counter("marlin_prefix_tokens_skipped_total",
                   "Prefill tokens skipped thanks to cached prefixes");
    slo_ttft_violations_ = &m.counter("marlin_slo_ttft_violations_total",
                                      "Completed requests past the TTFT "
                                      "deadline");
    slo_tpot_violations_ = &m.counter("marlin_slo_tpot_violations_total",
                                      "Completed requests past the TPOT "
                                      "deadline");
    kv_transfers_ = &m.counter("marlin_kv_transfers_total",
                               "Prefill -> decode KV handoffs (disaggregated "
                               "pools)");
    kv_transfer_bytes_ = &m.counter("marlin_kv_transfer_bytes_total",
                                    "KV bytes moved prefill -> decode");
    kv_transfer_seconds_ = &m.counter("marlin_kv_transfer_seconds_total",
                                      "Link seconds spent moving KV "
                                      "prefill -> decode");
    replicas_started_ =
        &m.counter("marlin_replicas_started_total", "Replicas brought up");
    replicas_drained_ = &m.counter("marlin_replicas_drained_total",
                                   "Replica drains begun by the autoscaler");
    replicas_retired_ = &m.counter("marlin_replicas_retired_total",
                                   "Drained replicas that went idle");
    autoscaler_evals_ = &m.counter("marlin_autoscaler_evaluations_total",
                                   "Autoscaler evaluation points");
    queue_depth_gauge_ = &m.gauge("marlin_queue_depth",
                                  "Queued requests at the last tick, summed "
                                  "over replicas sampled at that instant");
    kv_used_gauge_ = &m.gauge("marlin_kv_blocks_used_peak",
                              "Peak KV blocks simultaneously in use on any "
                              "replica");
    ttft_ms_ = &m.histogram(
        "marlin_ttft_ms", "Time to first token (milliseconds)",
        {25, 50, 100, 250, 500, 1000, 2500, 5000, 10000});
    tpot_ms_ = &m.histogram("marlin_tpot_ms",
                            "Time per output token (milliseconds)",
                            {1, 2.5, 5, 10, 25, 50, 100, 250});
    queue_depth_hist_ = &m.histogram(
        "marlin_queue_depth_per_tick", "Per-replica queue depth per tick",
        {0, 1, 2, 4, 8, 16, 32, 64, 128});
    decode_batch_ =
        &m.histogram("marlin_decode_batch", "Decode step batch size",
                     {1, 2, 4, 8, 16, 32, 64, 128});
  }
}

void ServeRecorder::name_replica(index_t replica) {
  if (trace_ == nullptr) return;
  trace_->set_process_name(replica_pid(replica),
                           "replica " + std::to_string(replica));
  trace_->set_thread_name(replica_pid(replica), kEngineTid, "engine");
  trace_->set_thread_name(replica_pid(replica), kLifecycleTid, "lifecycle");
}

double ServeRecorder::clamp_lifecycle(index_t replica, double t_s) {
  double& last = lifecycle_last_s_[replica];
  last = std::max(last, t_s);
  return last;
}

void ServeRecorder::on_replica_start(double t_s, index_t replica) {
  name_replica(replica);
  if (trace_ != nullptr) {
    trace_->instant(replica_pid(replica), kLifecycleTid, "start", "replica",
                    clamp_lifecycle(replica, t_s));
  }
  if (replicas_started_ != nullptr) replicas_started_->inc();
}

void ServeRecorder::on_replica_drain(double t_s, index_t replica) {
  if (trace_ != nullptr) {
    trace_->instant(replica_pid(replica), kLifecycleTid, "drain", "replica",
                    clamp_lifecycle(replica, t_s));
  }
  if (replicas_drained_ != nullptr) replicas_drained_->inc();
}

void ServeRecorder::on_replica_retire(double t_s, index_t replica) {
  if (trace_ != nullptr) {
    trace_->instant(replica_pid(replica), kLifecycleTid, "retire", "replica",
                    clamp_lifecycle(replica, t_s));
  }
  if (replicas_retired_ != nullptr) replicas_retired_->inc();
}

void ServeRecorder::on_autoscaler_eval(double t_s, double queue_per_replica,
                                       index_t routable, const char* action) {
  if (trace_ != nullptr) {
    trace_->instant(kClusterPid, kAutoscalerTid, action, "autoscaler", t_s,
                    {{"queue_per_replica", queue_per_replica},
                     {"routable", static_cast<std::int64_t>(routable)}});
  }
  if (autoscaler_evals_ != nullptr) autoscaler_evals_->inc();
}

void ServeRecorder::on_route(double t_s, index_t request, index_t tenant,
                             index_t replica, const char* placement) {
  if (trace_ != nullptr) {
    trace_->instant(kClusterPid, kRouterTid, placement, "router", t_s,
                    {{"request", static_cast<std::int64_t>(request)},
                     {"tenant", static_cast<std::int64_t>(tenant)},
                     {"replica", static_cast<std::int64_t>(replica)}});
  }
  if (routed_ != nullptr) routed_->inc();
}

void ServeRecorder::on_request_queued(double t_s, index_t request,
                                      index_t tenant, index_t replica) {
  if (trace_ != nullptr) {
    trace_->begin(kRequestsPid, static_cast<std::int64_t>(request), "queued",
                  "request", t_s,
                  {{"tenant", static_cast<std::int64_t>(tenant)},
                   {"replica", static_cast<std::int64_t>(replica)}});
  }
}

void ServeRecorder::on_admitted(double t_s, index_t request, index_t replica,
                                index_t kv_blocks) {
  if (trace_ != nullptr) {
    const auto tid = static_cast<std::int64_t>(request);
    trace_->end(kRequestsPid, tid, "queued", "request", t_s);
    trace_->begin(kRequestsPid, tid, "prefill", "request", t_s,
                  {{"replica", static_cast<std::int64_t>(replica)},
                   {"kv_blocks", static_cast<std::int64_t>(kv_blocks)}});
  }
}

void ServeRecorder::on_prefix_cache_hit(double t_s, index_t request,
                                        index_t replica, index_t blocks,
                                        index_t tokens) {
  if (trace_ != nullptr) {
    trace_->instant(kRequestsPid, static_cast<std::int64_t>(request),
                    "prefix-cache-hit", "request", t_s,
                    {{"replica", static_cast<std::int64_t>(replica)},
                     {"blocks", static_cast<std::int64_t>(blocks)},
                     {"tokens", static_cast<std::int64_t>(tokens)}});
  }
  if (prefix_cache_hits_ != nullptr) prefix_cache_hits_->inc();
  if (prefix_cache_hit_blocks_ != nullptr) {
    prefix_cache_hit_blocks_->inc(static_cast<double>(blocks));
  }
  if (prefix_tokens_skipped_ != nullptr) {
    prefix_tokens_skipped_->inc(static_cast<double>(tokens));
  }
}

void ServeRecorder::on_prefill_done(double t_s, index_t request,
                                    bool first_token, double ttft_ms) {
  if (trace_ != nullptr) {
    const auto tid = static_cast<std::int64_t>(request);
    trace_->end(kRequestsPid, tid, "prefill", "request", t_s);
    trace_->begin(kRequestsPid, tid, "decode", "request", t_s);
  }
  if (first_token && ttft_ms_ != nullptr) ttft_ms_->observe(ttft_ms);
}

void ServeRecorder::on_preempted(double t_s, index_t request, index_t replica,
                                 index_t blocks_freed) {
  if (trace_ != nullptr) {
    const auto tid = static_cast<std::int64_t>(request);
    trace_->end(kRequestsPid, tid, "decode", "request", t_s);
    trace_->instant(kRequestsPid, tid, "preempt", "request", t_s,
                    {{"replica", static_cast<std::int64_t>(replica)},
                     {"blocks_freed",
                      static_cast<std::int64_t>(blocks_freed)}});
    trace_->begin(kRequestsPid, tid, "queued", "request", t_s);
  }
  if (preemptions_ != nullptr) preemptions_->inc();
}

void ServeRecorder::on_rejected(double t_s, index_t request) {
  if (trace_ != nullptr) {
    const auto tid = static_cast<std::int64_t>(request);
    trace_->end(kRequestsPid, tid, "queued", "request", t_s);
    trace_->instant(kRequestsPid, tid, "reject", "request", t_s);
  }
  if (rejected_ != nullptr) rejected_->inc();
}

void ServeRecorder::on_shed(double t_s, index_t request) {
  if (trace_ != nullptr) {
    const auto tid = static_cast<std::int64_t>(request);
    trace_->end(kRequestsPid, tid, "queued", "request", t_s);
    trace_->instant(kRequestsPid, tid, "shed", "request", t_s);
  }
  if (shed_ != nullptr) shed_->inc();
}

void ServeRecorder::on_finished(double t_s, index_t request, index_t tenant,
                                index_t output_tokens, double ttft_ms,
                                double tpot_ms) {
  if (trace_ != nullptr) {
    const auto tid = static_cast<std::int64_t>(request);
    trace_->end(kRequestsPid, tid, "decode", "request", t_s);
    trace_->instant(kRequestsPid, tid, "finish", "request", t_s,
                    {{"output_tokens",
                      static_cast<std::int64_t>(output_tokens)},
                     {"ttft_ms", ttft_ms},
                     {"tpot_ms", tpot_ms}});
  }
  if (metrics_ != nullptr) {
    completed_->inc();
    if (tpot_ms_ != nullptr) tpot_ms_->observe(tpot_ms);
    metrics_
        ->counter("marlin_tenant_tokens_generated_total",
                  "Output tokens generated, per tenant",
                  "tenant=\"" + std::to_string(tenant) + "\"")
        .inc(static_cast<double>(output_tokens));
  }
}

void ServeRecorder::on_slo_ttft_violation(double t_s, index_t request) {
  if (trace_ != nullptr) {
    trace_->instant(kRequestsPid, static_cast<std::int64_t>(request),
                    "slo-ttft-violation", "slo", t_s);
  }
  if (slo_ttft_violations_ != nullptr) slo_ttft_violations_->inc();
}

void ServeRecorder::on_slo_tpot_violation(double t_s, index_t request) {
  if (trace_ != nullptr) {
    trace_->instant(kRequestsPid, static_cast<std::int64_t>(request),
                    "slo-tpot-violation", "slo", t_s);
  }
  if (slo_tpot_violations_ != nullptr) slo_tpot_violations_->inc();
}

void ServeRecorder::on_kv_transfer(double t0_s, double t1_s, index_t request,
                                   index_t src, index_t dst, double bytes,
                                   index_t tokens) {
  if (trace_ != nullptr) {
    trace_->complete(kRequestsPid, static_cast<std::int64_t>(request),
                     "kv-transfer", "request", t0_s, t1_s,
                     {{"src", static_cast<std::int64_t>(src)},
                      {"dst", static_cast<std::int64_t>(dst)},
                      {"bytes", bytes},
                      {"tokens", static_cast<std::int64_t>(tokens)}});
  }
  if (kv_transfers_ != nullptr) kv_transfers_->inc();
  if (kv_transfer_bytes_ != nullptr) kv_transfer_bytes_->inc(bytes);
  if (kv_transfer_seconds_ != nullptr) {
    kv_transfer_seconds_->inc(t1_s - t0_s);
  }
}

void ServeRecorder::on_prefill_step(double t0_s, double t1_s, index_t replica,
                                    index_t batch, index_t tokens_per_seq) {
  name_replica(replica);
  if (trace_ != nullptr) {
    trace_->complete(replica_pid(replica), kEngineTid, "prefill", "engine",
                     t0_s, t1_s,
                     {{"batch", static_cast<std::int64_t>(batch)},
                      {"tokens_per_seq",
                       static_cast<std::int64_t>(tokens_per_seq)}});
  }
  if (prefill_steps_ != nullptr) prefill_steps_->inc();
}

void ServeRecorder::on_decode_step(double t0_s, double t1_s, index_t replica,
                                   index_t batch, double avg_context) {
  name_replica(replica);
  if (trace_ != nullptr) {
    trace_->complete(replica_pid(replica), kEngineTid, "decode", "engine",
                     t0_s, t1_s,
                     {{"batch", static_cast<std::int64_t>(batch)},
                      {"avg_context", avg_context}});
  }
  if (decode_steps_ != nullptr) decode_steps_->inc();
  if (decode_batch_ != nullptr) {
    decode_batch_->observe(static_cast<double>(batch));
  }
}

void ServeRecorder::on_spec_round(double t0_s, double t1_s, index_t replica,
                                  index_t batch, index_t draft_tokens) {
  name_replica(replica);
  if (trace_ != nullptr) {
    trace_->complete(replica_pid(replica), kEngineTid, "spec-round", "engine",
                     t0_s, t1_s,
                     {{"batch", static_cast<std::int64_t>(batch)},
                      {"draft_tokens",
                       static_cast<std::int64_t>(draft_tokens)}});
  }
  if (decode_steps_ != nullptr) decode_steps_->inc();
  if (spec_rounds_ != nullptr) spec_rounds_->inc();
  if (spec_draft_tokens_ != nullptr) {
    spec_draft_tokens_->inc(static_cast<double>(draft_tokens));
  }
  if (decode_batch_ != nullptr) {
    decode_batch_->observe(static_cast<double>(batch));
  }
}

void ServeRecorder::on_spec_commit(index_t tokens) {
  if (spec_committed_tokens_ != nullptr) {
    spec_committed_tokens_->inc(static_cast<double>(tokens));
  }
}

void ServeRecorder::on_decode_split(double t_s, index_t replica,
                                    double compute_s, double comm_s,
                                    double bubble_fraction) {
  if (trace_ != nullptr) {
    trace_->counter(replica_pid(replica), kEngineTid, "decode_split_ms", t_s,
                    {{"compute", compute_s * 1e3}, {"comm", comm_s * 1e3}});
    trace_->counter(replica_pid(replica), kEngineTid, "bubble_fraction", t_s,
                    {{"bubble", bubble_fraction}});
  }
}

void ServeRecorder::on_tick(double t_s, index_t replica, index_t queued,
                            index_t running, index_t kv_used,
                            index_t kv_total) {
  name_replica(replica);
  if (trace_ != nullptr) {
    trace_->counter(replica_pid(replica), kEngineTid, "occupancy", t_s,
                    {{"queued", static_cast<std::int64_t>(queued)},
                     {"running", static_cast<std::int64_t>(running)}});
    trace_->counter(replica_pid(replica), kEngineTid, "kv_blocks", t_s,
                    {{"used", static_cast<std::int64_t>(kv_used)},
                     {"total", static_cast<std::int64_t>(kv_total)}});
  }
  if (metrics_ != nullptr) {
    queue_depth_gauge_->set(static_cast<double>(queued));
    queue_depth_hist_->observe(static_cast<double>(queued));
    kv_used_gauge_->set_max(static_cast<double>(kv_used));
  }
}

void ServeRecorder::on_run_end(double sim_end_s, index_t peak_kv_blocks,
                               index_t peak_replicas,
                               index_t kv_blocks_allocated,
                               index_t kv_blocks_freed,
                               index_t kv_grow_failures) {
  if (metrics_ == nullptr) return;
  MetricsRegistry& m = *metrics_;
  m.gauge("marlin_sim_end_seconds", "Simulated time the run finished at")
      .set(sim_end_s);
  m.gauge("marlin_kv_blocks_peak", "Fleet-wide peak KV blocks in use")
      .set(static_cast<double>(peak_kv_blocks));
  m.gauge("marlin_replicas_peak", "Peak simultaneously routable replicas")
      .set(static_cast<double>(peak_replicas));
  m.counter("marlin_kv_blocks_allocated_total",
            "KV blocks handed out over the run")
      .inc(static_cast<double>(kv_blocks_allocated));
  m.counter("marlin_kv_blocks_freed_total",
            "KV blocks returned over the run")
      .inc(static_cast<double>(kv_blocks_freed));
  m.counter("marlin_kv_grow_failures_total",
            "Decode KV growths refused by the budget (preemption pressure)")
      .inc(static_cast<double>(kv_grow_failures));
}

void ServeRecorder::on_prefix_cache_run_end(index_t lookup_blocks,
                                            index_t hit_blocks,
                                            index_t evictions,
                                            index_t cow_forks,
                                            index_t cow_copies) {
  if (metrics_ == nullptr) return;
  MetricsRegistry& m = *metrics_;
  m.counter("marlin_prefix_cache_lookup_blocks_total",
            "Prompt blocks probed against the prefix cache")
      .inc(static_cast<double>(lookup_blocks));
  m.counter("marlin_prefix_cache_evictions_total",
            "Cached-but-idle prefix blocks reclaimed under pressure")
      .inc(static_cast<double>(evictions));
  m.counter("marlin_cow_forks_total",
            "Sequences forked to share a prompt copy-on-write")
      .inc(static_cast<double>(cow_forks));
  m.counter("marlin_cow_copies_total",
            "Shared KV blocks copied on first divergent write")
      .inc(static_cast<double>(cow_copies));
  m.gauge("marlin_prefix_cache_hit_rate",
          "Fraction of probed prompt blocks served from the prefix cache")
      .set(lookup_blocks > 0 ? static_cast<double>(hit_blocks) /
                                   static_cast<double>(lookup_blocks)
                             : 0.0);
}

}  // namespace marlin::obs
