#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace marlin::obs {

char phase_char(TracePhase ph) {
  switch (ph) {
    case TracePhase::kBegin:
      return 'B';
    case TracePhase::kEnd:
      return 'E';
    case TracePhase::kComplete:
      return 'X';
    case TracePhase::kInstant:
      return 'i';
    case TracePhase::kCounter:
      return 'C';
    case TracePhase::kMetadata:
      return 'M';
  }
  return '?';
}

std::string format_fixed_trimmed(double v, int max_decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") return "0";
  return s;
}

namespace {

constexpr double kMicrosPerSecond = 1e6;

/// JSON string escaping for names/categories/arg values. The recorder's
/// strings are all ASCII literals today, but the writer must never emit
/// an invalid document.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_args(std::string& out, const std::vector<TraceArg>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ',';
    append_json_string(out, args[i].key);
    out += ':';
    switch (args[i].kind) {
      case TraceArg::Kind::kInt:
        out += std::to_string(args[i].int_value);
        break;
      case TraceArg::Kind::kDouble:
        out += format_fixed_trimmed(args[i].double_value, 6);
        break;
      case TraceArg::Kind::kString:
        append_json_string(out, args[i].string_value);
        break;
    }
  }
  out += '}';
}

void append_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":";
  append_json_string(out, e.name);
  if (!e.cat.empty()) {
    out += ",\"cat\":";
    append_json_string(out, e.cat);
  }
  out += ",\"ph\":\"";
  out += phase_char(e.ph);
  out += "\",\"pid\":";
  out += std::to_string(e.pid);
  out += ",\"tid\":";
  out += std::to_string(e.tid);
  out += ",\"ts\":";
  out += format_fixed_trimmed(e.ts_us, 3);
  if (e.ph == TracePhase::kComplete) {
    out += ",\"dur\":";
    out += format_fixed_trimmed(e.dur_us, 3);
  }
  if (e.ph == TracePhase::kInstant) out += ",\"s\":\"t\"";  // thread-scoped
  if (!e.args.empty() || e.ph == TracePhase::kMetadata ||
      e.ph == TracePhase::kCounter) {
    out += ',';
    append_args(out, e.args);
  }
  out += '}';
}

}  // namespace

void TraceRecorder::begin(std::int64_t pid, std::int64_t tid,
                          std::string name, std::string cat, double t_s,
                          std::vector<TraceArg> args) {
  events_.push_back({std::move(name), std::move(cat), TracePhase::kBegin,
                     t_s * kMicrosPerSecond, 0, pid, tid, std::move(args)});
}

void TraceRecorder::end(std::int64_t pid, std::int64_t tid, std::string name,
                        std::string cat, double t_s) {
  events_.push_back({std::move(name), std::move(cat), TracePhase::kEnd,
                     t_s * kMicrosPerSecond, 0, pid, tid, {}});
}

void TraceRecorder::complete(std::int64_t pid, std::int64_t tid,
                             std::string name, std::string cat, double t0_s,
                             double t1_s, std::vector<TraceArg> args) {
  MARLIN_ASSERT(t1_s >= t0_s);
  events_.push_back({std::move(name), std::move(cat), TracePhase::kComplete,
                     t0_s * kMicrosPerSecond, (t1_s - t0_s) * kMicrosPerSecond,
                     pid, tid, std::move(args)});
}

void TraceRecorder::instant(std::int64_t pid, std::int64_t tid,
                            std::string name, std::string cat, double t_s,
                            std::vector<TraceArg> args) {
  events_.push_back({std::move(name), std::move(cat), TracePhase::kInstant,
                     t_s * kMicrosPerSecond, 0, pid, tid, std::move(args)});
}

void TraceRecorder::counter(std::int64_t pid, std::int64_t tid,
                            std::string name, double t_s,
                            std::vector<TraceArg> args) {
  events_.push_back({std::move(name), "counter", TracePhase::kCounter,
                     t_s * kMicrosPerSecond, 0, pid, tid, std::move(args)});
}

void TraceRecorder::set_process_name(std::int64_t pid, std::string name) {
  for (const TraceEvent& m : metadata_) {
    if (m.name == "process_name" && m.pid == pid) return;
  }
  metadata_.push_back({"process_name", {}, TracePhase::kMetadata, 0, 0, pid,
                       0, {TraceArg("name", std::move(name))}});
}

void TraceRecorder::set_thread_name(std::int64_t pid, std::int64_t tid,
                                    std::string name) {
  for (const TraceEvent& m : metadata_) {
    if (m.name == "thread_name" && m.pid == pid && m.tid == tid) return;
  }
  metadata_.push_back({"thread_name", {}, TracePhase::kMetadata, 0, 0, pid,
                       tid, {TraceArg("name", std::move(name))}});
}

std::string TraceRecorder::to_json() const {
  // Metadata first, sorted by (pid, tid, name) so the byte stream does
  // not depend on registration order; then every event in recording
  // order (itself deterministic — the event loop is strictly serial).
  std::vector<const TraceEvent*> meta;
  meta.reserve(metadata_.size());
  for (const TraceEvent& m : metadata_) meta.push_back(&m);
  std::sort(meta.begin(), meta.end(),
            [](const TraceEvent* a, const TraceEvent* b) {
              if (a->pid != b->pid) return a->pid < b->pid;
              if (a->tid != b->tid) return a->tid < b->tid;
              return a->name < b->name;
            });

  std::string out;
  out.reserve((meta.size() + events_.size()) * 96 + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto emit = [&](const TraceEvent& e) {
    if (!first) out += ",\n";
    first = false;
    append_event(out, e);
  };
  for (const TraceEvent* m : meta) emit(*m);
  for (const TraceEvent& e : events_) emit(e);
  out += "\n]}\n";
  return out;
}

void TraceRecorder::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  MARLIN_CHECK(out.good(), "cannot open trace output file `" << path << "`");
  out << to_json();
  MARLIN_CHECK(out.good(), "failed writing trace output file `" << path
                                                                << "`");
}

}  // namespace marlin::obs
