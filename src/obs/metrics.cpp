#include "obs/metrics.hpp"

#include <cmath>

#include "obs/trace.hpp"
#include "util/error.hpp"

namespace marlin::obs {

std::string format_metric_value(double v) {
  if (std::floor(v) == v && std::abs(v) < 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return format_fixed_trimmed(v, 6);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1, 0) {
  MARLIN_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    MARLIN_CHECK(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly ascending ("
                     << bounds_[i - 1] << " !< " << bounds_[i] << ")");
  }
}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();  // +Inf
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::cumulative_count(std::size_t i) const {
  MARLIN_ASSERT(i < counts_.size());
  std::uint64_t total = 0;
  for (std::size_t b = 0; b <= i; ++b) total += counts_[b];
  return total;
}

MetricsRegistry::Family& MetricsRegistry::family_of(const std::string& name,
                                                    const std::string& help,
                                                    Kind kind) {
  auto [it, inserted] = families_.try_emplace(name);
  if (inserted) {
    it->second.kind = kind;
    it->second.help = help;
  } else {
    MARLIN_CHECK(it->second.kind == kind,
                 "metric `" << name
                            << "` registered as two instrument kinds");
  }
  return it->second;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help,
                                  const std::string& labels) {
  return family_of(name, help, Kind::kCounter).counters[labels];
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help,
                              const std::string& labels) {
  return family_of(name, help, Kind::kGauge).gauges[labels];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds,
                                      const std::string& labels) {
  Family& fam = family_of(name, help, Kind::kHistogram);
  auto it = fam.histograms.find(labels);
  if (it == fam.histograms.end()) {
    it = fam.histograms.emplace(labels, Histogram(std::move(upper_bounds)))
             .first;
  } else {
    MARLIN_CHECK(it->second.upper_bounds() == upper_bounds,
                 "metric `" << name
                            << "` re-registered with different buckets");
  }
  return it->second;
}

namespace {

/// `name{labels}` / `name{labels,extra}` series line prefix; plain `name`
/// when both are empty.
std::string series_name(const std::string& name, const std::string& labels,
                        const std::string& extra = "") {
  std::string out = name;
  if (!labels.empty() || !extra.empty()) {
    out += '{';
    out += labels;
    if (!labels.empty() && !extra.empty()) out += ',';
    out += extra;
    out += '}';
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::expose() const {
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# HELP " + name + " " + fam.help + "\n";
    switch (fam.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        for (const auto& [labels, c] : fam.counters) {
          out += series_name(name, labels) + " " +
                 format_metric_value(c.value()) + "\n";
        }
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        for (const auto& [labels, g] : fam.gauges) {
          out += series_name(name, labels) + " " +
                 format_metric_value(g.value()) + "\n";
        }
        break;
      case Kind::kHistogram:
        out += "# TYPE " + name + " histogram\n";
        for (const auto& [labels, h] : fam.histograms) {
          const auto& bounds = h.upper_bounds();
          for (std::size_t i = 0; i < bounds.size(); ++i) {
            out += series_name(name + "_bucket", labels,
                               "le=\"" + format_metric_value(bounds[i]) +
                                   "\"") +
                   " " + std::to_string(h.cumulative_count(i)) + "\n";
          }
          out += series_name(name + "_bucket", labels, "le=\"+Inf\"") + " " +
                 std::to_string(h.count()) + "\n";
          out += series_name(name + "_sum", labels) + " " +
                 format_metric_value(h.sum()) + "\n";
          out += series_name(name + "_count", labels) + " " +
                 std::to_string(h.count()) + "\n";
        }
        break;
    }
  }
  return out;
}

}  // namespace marlin::obs
