#pragma once
// Deterministic Chrome trace-event recording for the serving simulator.
//
// A TraceRecorder accumulates structured events stamped on the *simulated*
// clock and serializes them as Chrome trace-event JSON — the format
// Perfetto (https://ui.perfetto.dev) and chrome://tracing load directly.
// Determinism is a hard contract, matching the simulator's
// bit-identical-across-threads guarantee:
//
//   * events are kept in recording order (the cluster EventLoop is
//     strictly serial, so that order is itself deterministic);
//   * timestamps are fixed-format decimal microseconds (three fractional
//     digits, trailing zeros trimmed), never locale- or
//     platform-dependent;
//   * metadata (process/thread naming) events are emitted first, sorted
//     by (pid, tid), so the byte stream is independent of when names
//     were registered.
//
// The recorder is deliberately dumb storage: it knows nothing about
// requests or replicas. The serving-specific event taxonomy (track
// layout, span protocol) lives in obs::ServeRecorder.

#include <cstdint>
#include <string>
#include <vector>

namespace marlin::obs {

/// The Chrome trace-event phases the recorder emits: duration-span
/// begin/end pairs, self-contained complete events, instants, counter
/// samples, and process/thread-naming metadata.
enum class TracePhase { kBegin, kEnd, kComplete, kInstant, kCounter,
                        kMetadata };

/// The single-character `ph` field of the JSON event ('B', 'E', 'X', 'i',
/// 'C', 'M').
[[nodiscard]] char phase_char(TracePhase ph);

/// One event argument: a key plus an integer, floating-point or string
/// value (rendered into the event's `args` object).
struct TraceArg {
  enum class Kind { kInt, kDouble, kString };

  TraceArg(std::string key_, std::int64_t v)
      : key(std::move(key_)), kind(Kind::kInt), int_value(v) {}
  TraceArg(std::string key_, double v)
      : key(std::move(key_)), kind(Kind::kDouble), double_value(v) {}
  TraceArg(std::string key_, std::string v)
      : key(std::move(key_)), kind(Kind::kString),
        string_value(std::move(v)) {}

  std::string key;
  Kind kind;
  std::int64_t int_value = 0;
  double double_value = 0;
  std::string string_value;
};

/// One recorded event. `ts_us`/`dur_us` are simulated microseconds;
/// `pid`/`tid` select the Perfetto track (see ServeRecorder for the
/// serving layout).
struct TraceEvent {
  std::string name;
  std::string cat;
  TracePhase ph = TracePhase::kInstant;
  double ts_us = 0;
  double dur_us = 0;  // kComplete only
  std::int64_t pid = 0;
  std::int64_t tid = 0;
  std::vector<TraceArg> args;
};

/// Fixed-format decimal rendering shared by the trace writer (and its
/// tests): `%.*f` with trailing zeros — and a then-trailing dot —
/// trimmed, so "12.500" prints as "12.5" and "3.000" as "3". Never
/// scientific, never locale-dependent.
[[nodiscard]] std::string format_fixed_trimmed(double v, int max_decimals);

class TraceRecorder {
 public:
  /// Opens a duration span on track (pid, tid); must be closed by an
  /// `end` with the same name on the same track. `t_s` is simulated
  /// seconds.
  void begin(std::int64_t pid, std::int64_t tid, std::string name,
             std::string cat, double t_s, std::vector<TraceArg> args = {});
  void end(std::int64_t pid, std::int64_t tid, std::string name,
           std::string cat, double t_s);
  /// Self-contained span [t0_s, t1_s] (phase 'X').
  void complete(std::int64_t pid, std::int64_t tid, std::string name,
                std::string cat, double t0_s, double t1_s,
                std::vector<TraceArg> args = {});
  void instant(std::int64_t pid, std::int64_t tid, std::string name,
               std::string cat, double t_s,
               std::vector<TraceArg> args = {});
  /// Counter sample: every arg becomes one series of the counter track.
  void counter(std::int64_t pid, std::int64_t tid, std::string name,
               double t_s, std::vector<TraceArg> args);

  /// Names the Perfetto process/thread rows. Idempotent per (pid, tid);
  /// emitted before all other events regardless of registration time.
  void set_process_name(std::int64_t pid, std::string name);
  void set_thread_name(std::int64_t pid, std::int64_t tid, std::string name);

  /// Recorded events, recording order, metadata excluded — the white-box
  /// surface the span-balance and monotonicity tests walk.
  [[nodiscard]] const std::vector<TraceEvent>& events() const {
    return events_;
  }

  /// The full Chrome trace-event JSON document (one event per line;
  /// byte-deterministic per the header contract).
  [[nodiscard]] std::string to_json() const;
  /// Writes `to_json()` to `path`; throws on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
  std::vector<TraceEvent> metadata_;
};

}  // namespace marlin::obs
