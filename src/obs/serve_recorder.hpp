#pragma once
// Serving-stack observability facade: the single place the event taxonomy
// of the simulator lives. The scheduler, block manager, router, replicas
// and event loop call the typed `on_*` hooks below; the recorder fans
// each hook out to a Chrome-trace event stream (TraceRecorder) and/or a
// metrics registry (MetricsRegistry) — either sink may be null, and a
// null ServeRecorder pointer at the instrumentation sites is the
// recording-off fast path (one pointer test, no allocation, no work —
// the steady-state decode tick stays allocation-free).
//
// Perfetto track layout (process = pid, thread = tid):
//
//   pid 1  "cluster"      tid 1 "router"     — placement instants
//                         tid 2 "autoscaler" — evaluation instants
//   pid 2  "requests"     tid = request id   — lifecycle spans
//                         queued → prefill → decode (B/E pairs), with
//                         shed / reject / preempt / SLO-violation
//                         instants; a preemption closes `decode` and
//                         re-opens `queued`
//   pid 10+r "replica r"  tid 0 "engine"     — prefill / decode /
//                         spec-round steps (X), plus counter tracks
//                         (queue depth, running, KV blocks, the
//                         parallel decode compute/comm/bubble split)
//                         tid 1 "lifecycle"  — start / drain / retire
//
// Timestamps are simulated seconds; every hook is called from the
// strictly serial EventLoop in deterministic order, which is what makes
// the serialized trace and exposition byte-identical across `--threads`.

#include <cstdint>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/matrix.hpp"

namespace marlin::obs {

class ServeRecorder {
 public:
  /// Either sink may be null; both borrowed, must outlive the recorder.
  ServeRecorder(TraceRecorder* trace, MetricsRegistry* metrics);

  [[nodiscard]] TraceRecorder* trace() const { return trace_; }
  [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }

  // ---- cluster: router / autoscaler / replica lifecycle ----------------
  void on_replica_start(double t_s, index_t replica);
  void on_replica_drain(double t_s, index_t replica);
  void on_replica_retire(double t_s, index_t replica);
  /// One autoscaler evaluation; `action` is "hold" / "scale-up" /
  /// "scale-down".
  void on_autoscaler_eval(double t_s, double queue_per_replica,
                          index_t routable, const char* action);
  /// Router placed `request` on `replica` under `placement`.
  void on_route(double t_s, index_t request, index_t tenant, index_t replica,
                const char* placement);

  // ---- request lifecycle (scheduler admission / step) ------------------
  void on_request_queued(double t_s, index_t request, index_t tenant,
                         index_t replica);
  void on_admitted(double t_s, index_t request, index_t replica,
                   index_t kv_blocks);
  /// Admission found `blocks` of the request's prompt already resident in
  /// the replica's prefix cache, skipping `tokens` of prefill work.
  void on_prefix_cache_hit(double t_s, index_t request, index_t replica,
                           index_t blocks, index_t tokens);
  /// Prefill completed; `first_token` marks the first completion (a
  /// re-prefill after preemption recomputes, TTFT already decided).
  void on_prefill_done(double t_s, index_t request, bool first_token,
                       double ttft_ms);
  void on_preempted(double t_s, index_t request, index_t replica,
                    index_t blocks_freed);
  void on_rejected(double t_s, index_t request);
  void on_shed(double t_s, index_t request);
  void on_finished(double t_s, index_t request, index_t tenant,
                   index_t output_tokens, double ttft_ms, double tpot_ms);
  void on_slo_ttft_violation(double t_s, index_t request);
  void on_slo_tpot_violation(double t_s, index_t request);
  /// Disaggregated prefill -> decode KV handoff: `tokens` of prompt KV
  /// (`bytes` on the wire) moved from replica `src` to `dst` over
  /// [t0, t1]. Rendered as a span on the request's lifecycle row.
  void on_kv_transfer(double t0_s, double t1_s, index_t request, index_t src,
                      index_t dst, double bytes, index_t tokens);

  // ---- engine steps ----------------------------------------------------
  void on_prefill_step(double t0_s, double t1_s, index_t replica,
                       index_t batch, index_t tokens_per_seq);
  void on_decode_step(double t0_s, double t1_s, index_t replica,
                      index_t batch, double avg_context);
  void on_spec_round(double t0_s, double t1_s, index_t replica, index_t batch,
                     index_t draft_tokens);
  /// Tokens one speculative round committed for one request.
  void on_spec_commit(index_t tokens);
  /// Parallel decode pricing split (ParallelEngine only): compute vs
  /// interconnect seconds of the step, plus the pipeline bubble fraction
  /// — rendered as counter tracks under the replica's engine row.
  void on_decode_split(double t_s, index_t replica, double compute_s,
                       double comm_s, double bubble_fraction);

  /// Per-tick replica occupancy sample (queue depth, flights, KV blocks).
  void on_tick(double t_s, index_t replica, index_t queued, index_t running,
               index_t kv_used, index_t kv_total);

  // ---- end of run ------------------------------------------------------
  void on_run_end(double sim_end_s, index_t peak_kv_blocks,
                  index_t peak_replicas, index_t kv_blocks_allocated,
                  index_t kv_blocks_freed, index_t kv_grow_failures);
  /// Fleet-wide prefix-cache / copy-on-write totals (all zero when the
  /// cache is off and every request samples n=1).
  void on_prefix_cache_run_end(index_t lookup_blocks, index_t hit_blocks,
                               index_t evictions, index_t cow_forks,
                               index_t cow_copies);

 private:
  /// Ensures "replica r" process/thread rows are named (idempotent).
  void name_replica(index_t replica);
  /// Lifecycle instants live on one per-replica track but are stamped by
  /// different clocks (autoscaler evaluation time vs the replica's own
  /// clock); the clamp keeps that track monotone.
  double clamp_lifecycle(index_t replica, double t_s);

  TraceRecorder* trace_;
  MetricsRegistry* metrics_;
  std::map<index_t, double> lifecycle_last_s_;

  // Hot instruments, resolved once in the constructor (null when
  // `metrics_` is null).
  Counter* routed_ = nullptr;
  Counter* completed_ = nullptr;
  Counter* rejected_ = nullptr;
  Counter* shed_ = nullptr;
  Counter* preemptions_ = nullptr;
  Counter* prefill_steps_ = nullptr;
  Counter* decode_steps_ = nullptr;
  Counter* spec_rounds_ = nullptr;
  Counter* spec_draft_tokens_ = nullptr;
  Counter* spec_committed_tokens_ = nullptr;
  Counter* prefix_cache_hits_ = nullptr;
  Counter* prefix_cache_hit_blocks_ = nullptr;
  Counter* prefix_tokens_skipped_ = nullptr;
  Counter* slo_ttft_violations_ = nullptr;
  Counter* slo_tpot_violations_ = nullptr;
  Counter* kv_transfers_ = nullptr;
  Counter* kv_transfer_bytes_ = nullptr;
  Counter* kv_transfer_seconds_ = nullptr;
  Counter* replicas_started_ = nullptr;
  Counter* replicas_drained_ = nullptr;
  Counter* replicas_retired_ = nullptr;
  Counter* autoscaler_evals_ = nullptr;
  Gauge* queue_depth_gauge_ = nullptr;
  Gauge* kv_used_gauge_ = nullptr;
  Histogram* ttft_ms_ = nullptr;
  Histogram* tpot_ms_ = nullptr;
  Histogram* queue_depth_hist_ = nullptr;
  Histogram* decode_batch_ = nullptr;
};

}  // namespace marlin::obs
