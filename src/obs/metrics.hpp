#pragma once
// Deterministic serving metrics: counters, gauges and fixed-bucket
// histograms behind a registry with Prometheus-style text exposition.
//
// Determinism contract (the metrics twin of the trace recorder's): the
// exposition is byte-identical across runs, platforms and thread counts —
// families render sorted by metric name, series sorted by label string,
// and values in fixed decimal (integral values without a fraction,
// others with up to six trimmed decimals). There is no clock and no
// locking: metrics are only ever touched from the strictly serial
// cluster EventLoop.
//
// Instruments are owned by the registry (stable references — callers
// cache the `Counter&`/`Histogram&` they update on the hot path) and are
// plain accumulators; nothing here allocates after registration except
// the exposition itself.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace marlin::obs {

/// Fixed-decimal metric value rendering: integral values print without a
/// fraction ("42"), others with up to six trimmed decimals ("0.125").
[[nodiscard]] std::string format_metric_value(double v);

/// Monotonically increasing accumulator.
class Counter {
 public:
  void inc(double delta = 1.0) { value_ += delta; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Last-write-wins sample.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  /// Keeps the running maximum (peak gauges).
  void set_max(double v) { value_ = value_ < v ? v : value_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram with Prometheus `le` (less-or-equal) semantics:
/// an observation lands in the first bucket whose upper bound is >= the
/// value, or in the implicit +Inf bucket past the last bound.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly ascending.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Observations in bucket `i` alone (`bounds_.size()` = the +Inf
  /// bucket).
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i];
  }
  /// Cumulative count of observations <= `upper_bounds()[i]` — the value
  /// the `_bucket{le=...}` exposition lines carry.
  [[nodiscard]] std::uint64_t cumulative_count(std::size_t i) const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // one per bound, +Inf last
  std::uint64_t count_ = 0;
  double sum_ = 0;
};

/// Name/help-indexed instrument store with deterministic text exposition.
/// `labels` is a preformatted Prometheus label list without braces (e.g.
/// `tenant="3"`); the empty string is the unlabelled series. Re-looking
/// up a series returns the same instrument; registering one name as two
/// different instrument kinds (or a histogram with different buckets)
/// throws.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const std::string& help,
                   const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> upper_bounds,
                       const std::string& labels = "");

  /// Prometheus-style text exposition (`# HELP` / `# TYPE` plus one line
  /// per series), byte-deterministic per the header contract.
  [[nodiscard]] std::string expose() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    // One entry per label set; std::map keeps references stable and the
    // exposition order sorted.
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
  };

  Family& family_of(const std::string& name, const std::string& help,
                    Kind kind);

  std::map<std::string, Family> families_;
};

}  // namespace marlin::obs
