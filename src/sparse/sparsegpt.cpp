#include "sparse/sparsegpt.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <vector>

#include "quant/uniform.hpp"

namespace marlin::sparse {

SparseGptResult sparsegpt_24_quantize(ConstMatrixView<float> w,
                                      const Matrix<double>& hessian,
                                      const quant::GptqConfig& cfg) {
  using quant::encode_symmetric;
  using quant::kPerColumn;
  using quant::symmetric_scale;

  const index_t k = w.rows(), n = w.cols();
  MARLIN_CHECK(k % 4 == 0, "K must be divisible by 4");
  MARLIN_CHECK(hessian.rows() == k && hessian.cols() == k,
               "hessian must be K x K");
  const index_t g =
      cfg.quant.group_size == kPerColumn ? k : cfg.quant.group_size;
  MARLIN_CHECK(g % 4 == 0 || cfg.quant.group_size == kPerColumn,
               "group size must align with 4-row sparsity blocks");

  // Damping as in GPTQ.
  Matrix<double> h = hessian;
  double mean_diag = 0.0;
  for (index_t i = 0; i < k; ++i) mean_diag += h(i, i);
  mean_diag /= static_cast<double>(k);
  MARLIN_CHECK(mean_diag > 0.0, "hessian has zero diagonal");
  for (index_t i = 0; i < k; ++i) h(i, i) += cfg.damping * mean_diag;
  const Matrix<double> u = quant::upper_cholesky_of_inverse(h);

  Matrix<double> work(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) work(i, j) = w(i, j);
  }

  SparseGptResult res;
  res.weights = quant::QuantizedWeights(k, n, cfg.quant);
  res.mask.keep = Matrix<std::uint8_t>(k, n, 0);
  auto& q = res.weights;

  std::vector<float> scales_now(static_cast<std::size_t>(n), 1.0f);
  std::vector<std::uint8_t> prune_row(static_cast<std::size_t>(n));
  std::vector<double> err_row(static_cast<std::size_t>(n));
  const int zero = 1 << (cfg.quant.bits - 1);

  for (index_t row = 0; row < k; ++row) {
    // Group scales from the compensated weights at group boundaries.
    if (row % g == 0) {
      const index_t g1 = std::min(k, row + g);
      const index_t gi = cfg.quant.group_of_row(row);
      std::vector<float> vals;
      for (index_t j = 0; j < n; ++j) {
        vals.clear();
        for (index_t i = row; i < g1; ++i) {
          vals.push_back(static_cast<float>(work(i, j)));
        }
        const Half sh(symmetric_scale(vals, cfg.quant.bits, 1.0f));
        q.scales(gi, j) = sh;
        scales_now[static_cast<std::size_t>(j)] = sh.to_float();
      }
    }

    // At 4-row block starts, decide which 2 of the next 4 rows each column
    // prunes, using OBS saliency on the compensated values.
    if (row % 4 == 0) {
      for (index_t j = 0; j < n; ++j) {
        std::array<std::pair<double, int>, 4> sal;
        for (int t = 0; t < 4; ++t) {
          const double wv = work(row + t, j);
          const double d = u(row + t, row + t);
          sal[static_cast<std::size_t>(t)] = {wv * wv / (d * d), t};
        }
        std::sort(sal.begin(), sal.end());
        // Two smallest saliencies are pruned.
        std::uint8_t pruned = 0;
        pruned |= static_cast<std::uint8_t>(1u << sal[0].second);
        pruned |= static_cast<std::uint8_t>(1u << sal[1].second);
        prune_row[static_cast<std::size_t>(j)] = pruned;
      }
    }

    const double d = u(row, row);
    const int t_in_block = static_cast<int>(row % 4);
    for (index_t j = 0; j < n; ++j) {
      const double wv = work(row, j);
      const bool prune =
          (prune_row[static_cast<std::size_t>(j)] >> t_in_block) & 1u;
      double dq;
      if (prune) {
        q.codes(row, j) = static_cast<std::uint8_t>(zero);  // exact zero
        dq = 0.0;
      } else {
        const float s = scales_now[static_cast<std::size_t>(j)];
        const std::uint8_t code =
            encode_symmetric(static_cast<float>(wv), s, cfg.quant.bits);
        q.codes(row, j) = code;
        dq = (static_cast<int>(code) - zero) * static_cast<double>(s);
        res.mask.keep(row, j) = 1;
      }
      const double err = (wv - dq) / d;
      err_row[static_cast<std::size_t>(j)] = err;
      res.hessian_weighted_error += err * err;
    }

    for (index_t r = row + 1; r < k; ++r) {
      const double f = u(row, r);
      if (f == 0.0) continue;
      double* wr = &work(r, 0);
      for (index_t j = 0; j < n; ++j) {
        wr[j] -= err_row[static_cast<std::size_t>(j)] * f;
      }
    }
  }
  return res;
}

}  // namespace marlin::sparse
