#include "sparse/compressed.hpp"

#include "util/error.hpp"

namespace marlin::sparse {

Sparse24Weights compress_24(const quant::QuantizedWeights& q,
                            const SparseMask& mask) {
  MARLIN_CHECK(is_valid_24(mask), "mask is not valid 2:4");
  MARLIN_CHECK(mask.rows() == q.k && mask.cols() == q.n, "shape mismatch");
  MARLIN_CHECK(q.k % 4 == 0, "K must be divisible by 4");

  Sparse24Weights s;
  s.k = q.k;
  s.n = q.n;
  s.cfg = q.cfg;
  s.nz_codes = Matrix<std::uint8_t>(q.k / 2, q.n);
  s.meta = Matrix<std::uint8_t>(q.k / 4, q.n);
  s.scales = q.scales;

  for (index_t j = 0; j < q.n; ++j) {
    for (index_t g = 0; g < q.k / 4; ++g) {
      int idx[2] = {-1, -1};
      int found = 0;
      for (int t = 0; t < 4; ++t) {
        if (mask.keep(g * 4 + t, j)) {
          MARLIN_ASSERT(found < 2);
          idx[found++] = t;
        } else {
          // A pruned position must decode to exactly zero (code 8 with the
          // symmetric zero-point) or the compression would lose information.
          MARLIN_CHECK(q.codes(g * 4 + t, j) == 8,
                       "pruned position has non-zero code");
        }
      }
      MARLIN_ASSERT(found == 2);
      s.meta(g, j) = static_cast<std::uint8_t>(idx[0] | (idx[1] << 2));
      s.nz_codes(g * 2 + 0, j) = q.codes(g * 4 + idx[0], j);
      s.nz_codes(g * 2 + 1, j) = q.codes(g * 4 + idx[1], j);
    }
  }
  return s;
}

Matrix<float> decompress_24(const Sparse24Weights& s) {
  Matrix<float> out(s.k, s.n, 0.0f);
  for (index_t j = 0; j < s.n; ++j) {
    for (index_t g = 0; g < s.k / 4; ++g) {
      const auto [i0, i1] = meta_select(s, g, j);
      for (int t = 0; t < 2; ++t) {
        const index_t row = g * 4 + (t == 0 ? i0 : i1);
        const int code = s.nz_codes(g * 2 + t, j);
        const float scale =
            s.scales(s.cfg.group_of_row(row), j).to_float();
        out(row, j) = static_cast<float>(code - 8) * scale;
      }
    }
  }
  return out;
}

std::pair<int, int> meta_select(const Sparse24Weights& s, index_t group,
                                index_t col) {
  const std::uint8_t nib = s.meta(group, col);
  return {nib & 0x3, (nib >> 2) & 0x3};
}

std::vector<std::uint16_t> pack_metadata_words(const Sparse24Weights& s) {
  MARLIN_CHECK(s.k % 16 == 0, "K must be divisible by 16 for metadata words");
  const index_t words_per_col = s.k / 16;
  std::vector<std::uint16_t> out(
      static_cast<std::size_t>(words_per_col * s.n));
  for (index_t j = 0; j < s.n; ++j) {
    for (index_t w = 0; w < words_per_col; ++w) {
      std::uint16_t word = 0;
      for (int t = 0; t < 4; ++t) {
        word = static_cast<std::uint16_t>(
            word | (static_cast<std::uint16_t>(s.meta(w * 4 + t, j)) << (4 * t)));
      }
      out[static_cast<std::size_t>(j * words_per_col + w)] = word;
    }
  }
  return out;
}

ReshuffledMeta reshuffle_metadata(const Sparse24Weights& s) {
  MARLIN_CHECK(s.k % 16 == 0 && s.n % 8 == 0,
               "need 16-row slabs and 8-column blocks");
  const auto words = pack_metadata_words(s);
  const index_t words_per_col = s.k / 16;
  const index_t slabs = words_per_col;
  const index_t blocks = s.n / 8;

  // Figure 8 (2b): within an 8-column block, the 128-bit vector read by one
  // 8-thread metadata group packs columns in the order
  //   0, 2, 4, 6, 1, 3, 5, 7 — threads T0/T1 then hold the metadata for the
  // first two mma.sp steps and T2/T3 for the remaining two, satisfying the
  // sparsity-selector constraint.
  static constexpr int kColOrder[8] = {0, 2, 4, 6, 1, 3, 5, 7};

  ReshuffledMeta r;
  r.words.resize(static_cast<std::size_t>(slabs));
  r.source_col.resize(static_cast<std::size_t>(slabs));
  for (index_t slab = 0; slab < slabs; ++slab) {
    auto& wrow = r.words[static_cast<std::size_t>(slab)];
    auto& crow = r.source_col[static_cast<std::size_t>(slab)];
    wrow.resize(static_cast<std::size_t>(blocks));
    crow.resize(static_cast<std::size_t>(blocks));
    for (index_t b = 0; b < blocks; ++b) {
      auto& wv = wrow[static_cast<std::size_t>(b)];
      auto& cv = crow[static_cast<std::size_t>(b)];
      wv.resize(8);
      cv.resize(8);
      for (int i = 0; i < 8; ++i) {
        const index_t col = b * 8 + kColOrder[i];
        wv[static_cast<std::size_t>(i)] =
            words[static_cast<std::size_t>(col * words_per_col + slab)];
        cv[static_cast<std::size_t>(i)] = col;
      }
    }
  }
  return r;
}

}  // namespace marlin::sparse
