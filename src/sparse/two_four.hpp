#pragma once
// 2:4 structured sparsity (paper §4).
//
// The weight operand B (K x N, reduction dim K) is pruned so that every
// group of 4 consecutive K-elements of a column keeps exactly 2 non-zeros —
// the format Ampere Sparse Tensor Cores execute at 2x MMA throughput.

#include <cstdint>

#include "util/matrix.hpp"

namespace marlin::sparse {

/// keep(i, j) == 1 iff element (i, j) survives pruning; every aligned group
/// of 4 rows of a column has exactly two 1s.
struct SparseMask {
  Matrix<std::uint8_t> keep;

  [[nodiscard]] index_t rows() const { return keep.rows(); }
  [[nodiscard]] index_t cols() const { return keep.cols(); }
};

/// Magnitude pruning: keep the 2 largest |w| per group of 4.
SparseMask prune_24_magnitude(ConstMatrixView<float> w);

/// Hessian-aware pruning (SparseGPT-style saliency): keep the 2 elements
/// with largest w^2 * h_diag per group, where h_diag is the diagonal of the
/// calibration Hessian over the K dimension.
SparseMask prune_24_saliency(ConstMatrixView<float> w,
                             std::span<const double> h_diag);

/// True iff every aligned 4-group of every column has exactly 2 non-zeros.
[[nodiscard]] bool is_valid_24(const SparseMask& mask);

/// W with pruned entries zeroed.
Matrix<float> apply_mask(ConstMatrixView<float> w, const SparseMask& mask);

}  // namespace marlin::sparse
