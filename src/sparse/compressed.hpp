#pragma once
// Compressed 2:4 weight structures (paper §4, Figures 7 and 8).
//
// Two data structures encode a 2:4-sparse INT4 matrix:
//  (1) non-zero values: the K/2 x N surviving codes, further packed 8-per-
//      uint32 like dense MARLIN (Figure 7, steps 1a/1b);
//  (2) metadata indices: for each group of 4 original rows, the two 2-bit
//      positions of the survivors, packed 4 bits per group and 4 groups per
//      16-bit word (Figure 8), then reshuffled so a single ldmatrix serves
//      four consecutive mma.sp steps with the sparsity-selector constraint
//      (threads {T0,T1} carry metadata for their 4-thread group).

#include <cstdint>
#include <vector>

#include "quant/qweights.hpp"
#include "sparse/two_four.hpp"

namespace marlin::sparse {

struct Sparse24Weights {
  index_t k = 0;  // ORIGINAL reduction dim (uncompressed)
  index_t n = 0;
  quant::QuantConfig cfg;
  /// Surviving codes, row-compressed: (K/2) x N, values 0..15.
  Matrix<std::uint8_t> nz_codes;
  /// meta(g, j): 4-bit nibble for 4-row group g of column j:
  /// low 2 bits = index of first survivor, high 2 bits = second (ascending).
  Matrix<std::uint8_t> meta;  // (K/4) x N
  Matrix<Half> scales;        // groups(K) x N — groups over ORIGINAL rows

  [[nodiscard]] index_t compressed_k() const { return k / 2; }
  /// Storage bits per ORIGINAL weight: 4-bit codes on half the elements,
  /// 2-bit indices per non-zero, plus scales (paper: 3.125 b/w at g=128
  /// excluding scales' 0.125).
  [[nodiscard]] double bits_per_weight() const {
    const double code_bits = 4.0 * 0.5;
    const double meta_bits = 1.0;  // 4 bits / 4-row group
    const double scale_bits = 16.0 * static_cast<double>(scales.rows()) *
                              static_cast<double>(n) /
                              (static_cast<double>(k) * static_cast<double>(n));
    return code_bits + meta_bits + scale_bits;
  }
};

/// Compress quantized weights whose pruned entries encode exact zero
/// (code == 8). `mask` must be valid 2:4.
Sparse24Weights compress_24(const quant::QuantizedWeights& q,
                            const SparseMask& mask);

/// Reference inverse: dense K x N floats with zeros restored.
Matrix<float> decompress_24(const Sparse24Weights& s);

/// Figure 8 metadata word stream: 16-bit words covering 16 original rows of
/// one column (4 nibbles, bottom group in the low nibble).
std::vector<std::uint16_t> pack_metadata_words(const Sparse24Weights& s);

/// Figure 8 (2a/2b): reshuffled metadata so that one 128-bit load per
/// 8-thread group feeds four mma.sp steps. Returns, for each (row-slab of
/// 16 original rows x column-block of 8), the 8 words in load order and a
/// map back to (column, slab) so tests can verify the round trip.
struct ReshuffledMeta {
  /// words[slab][block][i]: i-th 16-bit word of the 128-bit vector.
  std::vector<std::vector<std::vector<std::uint16_t>>> words;
  /// source_col[slab][block][i]: original column the word came from.
  std::vector<std::vector<std::vector<index_t>>> source_col;
};
ReshuffledMeta reshuffle_metadata(const Sparse24Weights& s);

/// Emulates the SPTC operand selection: for group g of column j, returns
/// the two original row indices the metadata addresses.
std::pair<int, int> meta_select(const Sparse24Weights& s, index_t group,
                                index_t col);

}  // namespace marlin::sparse
