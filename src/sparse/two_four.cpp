#include "sparse/two_four.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace marlin::sparse {

namespace {

template <typename Score>
SparseMask prune_with_score(ConstMatrixView<float> w, Score&& score) {
  const index_t k = w.rows(), n = w.cols();
  MARLIN_CHECK(k % 4 == 0, "K must be divisible by 4 for 2:4 sparsity");
  SparseMask mask;
  mask.keep = Matrix<std::uint8_t>(k, n, 0);
  for (index_t j = 0; j < n; ++j) {
    for (index_t g = 0; g < k; g += 4) {
      std::array<std::pair<double, int>, 4> scored;
      for (int t = 0; t < 4; ++t) {
        scored[static_cast<std::size_t>(t)] = {score(g + t, j), t};
      }
      std::sort(scored.begin(), scored.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      mask.keep(g + scored[0].second, j) = 1;
      mask.keep(g + scored[1].second, j) = 1;
    }
  }
  return mask;
}

}  // namespace

SparseMask prune_24_magnitude(ConstMatrixView<float> w) {
  return prune_with_score(
      w, [&](index_t i, index_t j) { return std::abs(w(i, j)); });
}

SparseMask prune_24_saliency(ConstMatrixView<float> w,
                             std::span<const double> h_diag) {
  MARLIN_CHECK(static_cast<index_t>(h_diag.size()) == w.rows(),
               "h_diag size must equal K");
  return prune_with_score(w, [&](index_t i, index_t j) {
    const double x = w(i, j);
    return x * x * h_diag[static_cast<std::size_t>(i)];
  });
}

bool is_valid_24(const SparseMask& mask) {
  const index_t k = mask.rows(), n = mask.cols();
  if (k % 4 != 0) return false;
  for (index_t j = 0; j < n; ++j) {
    for (index_t g = 0; g < k; g += 4) {
      int kept = 0;
      for (int t = 0; t < 4; ++t) kept += mask.keep(g + t, j);
      if (kept != 2) return false;
    }
  }
  return true;
}

Matrix<float> apply_mask(ConstMatrixView<float> w, const SparseMask& mask) {
  MARLIN_CHECK(w.rows() == mask.rows() && w.cols() == mask.cols(),
               "shape mismatch");
  Matrix<float> out(w.rows(), w.cols());
  for (index_t i = 0; i < w.rows(); ++i) {
    for (index_t j = 0; j < w.cols(); ++j) {
      out(i, j) = mask.keep(i, j) ? w(i, j) : 0.0f;
    }
  }
  return out;
}

}  // namespace marlin::sparse
