#pragma once
// SparseGPT-lite: one-shot joint 2:4 pruning + INT4 quantization
// (Frantar & Alistarh 2023, simplified).
//
// Rows of the K x N weight matrix are processed top-to-bottom as in GPTQ.
// At the start of every aligned 4-row block, each column selects the two
// rows to prune by the OBS saliency w^2 / [U]_rr^2 evaluated on the
// *error-compensated* weights (U = upper Cholesky factor of H^{-1}).
// Pruned entries are driven to exactly zero (code 8), kept entries are
// quantized, and both errors are propagated through U — so later rows
// compensate for earlier pruning, the property that separates SparseGPT
// from magnitude pruning.

#include "quant/gptq.hpp"
#include "sparse/two_four.hpp"

namespace marlin::sparse {

struct SparseGptResult {
  quant::QuantizedWeights weights;  // dense codes with exact zeros at pruned
  SparseMask mask;
  double hessian_weighted_error = 0.0;
};

SparseGptResult sparsegpt_24_quantize(ConstMatrixView<float> w,
                                      const Matrix<double>& hessian,
                                      const quant::GptqConfig& cfg);

}  // namespace marlin::sparse
