#include "quant/int8_act.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace marlin::quant {

Int8Activations quantize_activations_int8(ConstMatrixView<Half> a) {
  const index_t m = a.rows(), k = a.cols();
  MARLIN_CHECK(m > 0 && k > 0, "empty activations");
  Int8Activations out;
  out.q = Matrix<std::int8_t>(m, k);
  out.row_scale.resize(static_cast<std::size_t>(m));
  for (index_t i = 0; i < m; ++i) {
    float maxabs = 0.0f;
    for (index_t j = 0; j < k; ++j) {
      maxabs = std::max(maxabs, std::abs(a(i, j).to_float()));
    }
    const float s = maxabs > 0 ? maxabs / 127.0f : 1.0f;
    out.row_scale[static_cast<std::size_t>(i)] = s;
    for (index_t j = 0; j < k; ++j) {
      const int code = std::clamp(
          static_cast<int>(std::nearbyint(a(i, j).to_float() / s)), -127,
          127);
      out.q(i, j) = static_cast<std::int8_t>(code);
    }
  }
  return out;
}

Matrix<float> dequantize_activations(const Int8Activations& a) {
  Matrix<float> out(a.rows(), a.cols());
  for (index_t i = 0; i < a.rows(); ++i) {
    for (index_t j = 0; j < a.cols(); ++j) out(i, j) = a.decode(i, j);
  }
  return out;
}

}  // namespace marlin::quant
