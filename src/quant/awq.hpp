#pragma once
// AWQ-format support (paper §6: "since the original release of our kernel
// for the GPTQ format, a version of MARLIN supporting AWQ has been
// introduced independently in vLLM").
//
// AWQ (Lin et al., 2023) protects activation-salient weight channels by
// scaling input channels with s_i = E|x_i|^alpha before *asymmetric*
// grouped quantization; at inference the inverse scale folds into the
// preceding operation. This module implements:
//   * asymmetric grouped INT4 quantization (scales + integer zero points),
//   * the activation-aware channel-scale search over alpha,
// and layout/repack.hpp grows an AWQ repack that carries packed zero
// points through the MARLIN tile format (what vLLM's awq-marlin does).

#include "quant/qweights.hpp"
#include "util/matrix.hpp"

namespace marlin::quant {

/// Asymmetric grouped weights: decode(i, j) = (code - zero) * scale.
/// When produced by AWQ, the stored codes quantize the *channel-scaled*
/// weights W'[i, :] = W[i, :] * channel_scale[i]; the caller divides
/// activations by channel_scale (as real deployments fold it upstream).
struct AsymmetricQuantizedWeights {
  index_t k = 0;
  index_t n = 0;
  QuantConfig cfg;
  Matrix<std::uint8_t> codes;  // K x N in [0, 2^bits)
  Matrix<Half> scales;         // groups x N
  Matrix<std::uint8_t> zeros;  // groups x N, integer zero points
  std::vector<float> channel_scale;  // size K; empty => all ones

  AsymmetricQuantizedWeights() = default;
  AsymmetricQuantizedWeights(index_t k_, index_t n_, QuantConfig cfg_)
      : k(k_),
        n(n_),
        cfg(cfg_),
        codes(k_, n_),
        scales(cfg_.groups_for(k_), n_),
        zeros(cfg_.groups_for(k_), n_) {}

  /// Decoded value of the *scaled* weight W'.
  [[nodiscard]] float decode_scaled(index_t row, index_t col) const {
    const index_t g = cfg.group_of_row(row);
    return (static_cast<int>(codes(row, col)) -
            static_cast<int>(zeros(g, col))) *
           scales(g, col).to_float();
  }
  /// Effective weight of the original W (channel scale divided back out).
  [[nodiscard]] float decode(index_t row, index_t col) const {
    const float cs = channel_scale.empty()
                         ? 1.0f
                         : channel_scale[static_cast<std::size_t>(row)];
    return decode_scaled(row, col) / cs;
  }
  [[nodiscard]] Matrix<float> dequantize() const {
    Matrix<float> out(k, n);
    for (index_t i = 0; i < k; ++i) {
      for (index_t j = 0; j < n; ++j) out(i, j) = decode(i, j);
    }
    return out;
  }
};

/// Plain asymmetric grouped round-to-nearest quantization (the paper's
/// §2.2 formula applied per group and column).
AsymmetricQuantizedWeights quantize_asymmetric_grouped(
    ConstMatrixView<float> w, const QuantConfig& cfg);

struct AwqConfig {
  QuantConfig quant;
  int alpha_grid = 20;  // alpha in {0, 1/grid, ..., 1}
};

struct AwqResult {
  AsymmetricQuantizedWeights weights;
  double alpha = 0;
  /// Activation-second-moment-weighted reconstruction error of the chosen
  /// scaling (the objective the alpha search minimises).
  double weighted_error = 0;
};

/// Activation-aware quantization: search the channel-scale exponent alpha
/// minimising E_x ||x W - x_hat W_hat||^2 under a diagonal activation
/// model, then quantize the scaled weights asymmetrically.
AwqResult awq_quantize(ConstMatrixView<float> w, ConstMatrixView<float> calib,
                       const AwqConfig& cfg);

}  // namespace marlin::quant
