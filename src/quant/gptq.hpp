#pragma once
// GPTQ (Frantar et al., 2022) post-training quantization, in the MARLIN
// variant the paper describes in §3.5:
//   (a) per-group scales chosen by searching clipping thresholds
//       (QuantConfig::clip_search), and
//   (b) calibration sequences of variable length (HessianAccumulator
//       accepts any number of rows per call).
//
// Orientation: the weight operand is K x N (reduction dim x outputs); the
// Hessian H = 2 X^T X is K x K, built from calibration activations X
// (tokens x K). Rows are quantized top-to-bottom; the quantisation error of
// row k is propagated into the remaining rows through row k of the upper
// Cholesky factor U of H^{-1} (the classic GPTQ update).

#include "quant/linalg.hpp"
#include "quant/qweights.hpp"

namespace marlin::quant {

struct GptqConfig {
  QuantConfig quant;
  /// Diagonal damping as a fraction of mean(diag(H)) ("percdamp").
  double damping = 0.01;
  /// GPTQ `desc_act`: quantize rows in order of decreasing Hessian
  /// diagonal so the most activation-salient rows are handled first, while
  /// later (error-compensated) rows absorb their residuals. The result
  /// carries QuantizedWeights::group_index and must be converted before
  /// the MARLIN repack (the real kernel has the same restriction).
  bool act_order = false;
};

struct GptqResult {
  QuantizedWeights weights;
  /// Sum over all elements of ((w - q) / U_kk)^2 — proportional to the
  /// increase in expected layer-output MSE under the calibration
  /// distribution; the eval module maps this to the perplexity proxy.
  double hessian_weighted_error = 0.0;
};

/// Accumulates H = 2 X^T X over calibration sequences of arbitrary length
/// (paper §3.5 modification (b)).
class HessianAccumulator {
 public:
  explicit HessianAccumulator(index_t k);

  /// x: tokens x K activations of one calibration sequence (any #tokens).
  void add_sequence(ConstMatrixView<float> x);

  [[nodiscard]] index_t dim() const { return k_; }
  [[nodiscard]] index_t num_tokens() const { return tokens_; }
  /// Mean-normalised Hessian 2/N * X^T X.
  [[nodiscard]] Matrix<double> hessian() const;

 private:
  index_t k_;
  index_t tokens_ = 0;
  Matrix<double> gram_;
};

/// Quantize W (K x N) given a calibration Hessian (K x K).
GptqResult gptq_quantize(ConstMatrixView<float> w,
                         const Matrix<double>& hessian,
                         const GptqConfig& cfg);

inline GptqResult gptq_quantize(ConstMatrixView<float> w,
                                const HessianAccumulator& acc,
                                const GptqConfig& cfg) {
  return gptq_quantize(w, acc.hessian(), cfg);
}

}  // namespace marlin::quant
