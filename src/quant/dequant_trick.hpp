#pragma once
// Bit-exact emulation of MARLIN's INT4 -> FP16 dequantisation
// (paper §3.4 "Dequantization and Tensor Cores", after Kim et al. 2022).
//
// GPUs can treat one 32-bit register as two packed FP16 lanes. For each
// extraction step k of a packed register q (interleave pattern 64207531):
//
//   t = (q >> 4k) & 0x000f000f | 0x64006400        // one lop3 instruction
//
// Each 16-bit lane of t is now an FP16 number with exponent pattern
// 0110010 (biased exponent 25, i.e. 2^10 = 1024) whose low 4 mantissa bits
// are the INT4 code v: the lane decodes to 1024 + v. Subtracting the magic
// constant 1032.0 (bits 0x6408 — the "-8" signed offset fused into the low
// bits) yields exactly v - 8, the signed weight, with no rounding anywhere.

#include <array>
#include <cstdint>
#include <utility>

#include "util/half.hpp"

namespace marlin::quant {

inline constexpr std::uint32_t kDequantMask = 0x000f000fu;
inline constexpr std::uint32_t kDequantExp = 0x64006400u;  // 2x FP16 1024.0
inline constexpr std::uint16_t kDequantMagic = 0x6408u;    // FP16 1032.0

/// Emulates the lop3: (q >> shift_nibbles*4) & mask | exponent-splice.
[[nodiscard]] constexpr std::uint32_t lop3_splice(std::uint32_t q,
                                                  int extraction_step) {
  return ((q >> (4 * extraction_step)) & kDequantMask) | kDequantExp;
}

/// Dequantise extraction step k of a packed register. Returns the pair
/// (high lane, low lane) = (logical weight 2k, logical weight 2k+1), as
/// *signed* FP16 values in [-8, 7]; exact, no rounding.
[[nodiscard]] inline std::pair<Half, Half> dequant_step(std::uint32_t q,
                                                        int extraction_step) {
  const std::uint32_t t = lop3_splice(q, extraction_step);
  const Half magic = Half::from_bits(kDequantMagic);
  const Half lo = Half::from_bits(static_cast<std::uint16_t>(t & 0xffffu));
  const Half hi = Half::from_bits(static_cast<std::uint16_t>(t >> 16));
  return {hi - magic, lo - magic};
}

/// Dequantise a whole packed register into logical order w0..w7 (signed).
[[nodiscard]] inline std::array<Half, 8> dequant8(std::uint32_t q) {
  std::array<Half, 8> out{};
  for (int k = 0; k < 4; ++k) {
    const auto [even, odd] = dequant_step(q, k);
    out[static_cast<std::size_t>(2 * k)] = even;
    out[static_cast<std::size_t>(2 * k + 1)] = odd;
  }
  return out;
}

/// The "naive" conversion the paper calls slow: shift, mask, integer
/// subtract, int->float cast, float->half. Functionally identical; used by
/// the dequant ablation and as a cross-check in tests.
[[nodiscard]] inline Half dequant_naive_code(std::uint8_t code) {
  return Half(static_cast<float>(static_cast<int>(code) - 8));
}

}  // namespace marlin::quant
