#pragma once
// Uniform quantization primitives: the paper's §2.2 asymmetric min-max
// definition (used for analysis/tests) and the symmetric round-to-nearest
// (RTN) quantizer that produces MARLIN-format weights.

#include <span>
#include <vector>

#include "quant/qweights.hpp"
#include "util/matrix.hpp"

namespace marlin::quant {

/// Paper §2.2: Q(v, b) = round((v - z) / s) with z = min(v),
/// s = (max(v) - min(v)) / (2^b - 1). Returns integer levels in [0, 2^b-1].
struct AsymmetricParams {
  float scale = 1.0f;
  float zero = 0.0f;
};
AsymmetricParams asymmetric_params(std::span<const float> v, int bits);
std::vector<int> quantize_asymmetric(std::span<const float> v, int bits,
                                     const AsymmetricParams& p);
std::vector<float> dequantize_asymmetric(std::span<const int> q,
                                         const AsymmetricParams& p);

/// Symmetric scale for a group: s = max|v| / (2^(b-1) - 1), so the code
/// range [-(2^(b-1)-1), 2^(b-1)-1] covers the data. `clip` in (0, 1]
/// shrinks the scale (clipping outliers), which the §3.5 search sweeps.
float symmetric_scale(std::span<const float> v, int bits, float clip = 1.0f);

/// Encode one value against a symmetric scale: clamp(round(v/s), -8, 7)+8
/// for 4 bits. Returns the stored code in [0, 2^b).
std::uint8_t encode_symmetric(float v, float scale, int bits);

/// Round-to-nearest quantization of a K x N weight matrix into MARLIN's
/// symmetric grouped format. If cfg.clip_search is set, per-group clipping
/// thresholds are chosen by minimising the group's squared reconstruction
/// error over a small grid (paper §3.5 modification (a)).
QuantizedWeights quantize_rtn(ConstMatrixView<float> w, const QuantConfig& cfg);

/// Mean squared reconstruction error ||W - deq(Q)||^2 / (K*N).
double reconstruction_mse(ConstMatrixView<float> w, const QuantizedWeights& q);

}  // namespace marlin::quant
