#pragma once
// INT4 register packing with MARLIN's interleave (paper §3.4):
// "within an INT32, weights are stored interleaved, according to the
// pattern 64207531, to power the parallel decoding".
//
// The pattern lists the logical weight index held by each nibble from most-
// significant to least-significant: nibbles 7..0 hold logical weights
// 6,4,2,0,7,5,3,1. Equivalently, extraction step k (k = 0..3) applies
// (x >> 4k) & 0x000f000f and obtains logical weight 2k+1 in the low half
// and logical weight 2k in the high half — exactly the two FP16 lanes the
// packed-half dequantisation produces per step.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace marlin::quant {

/// nibble_of_logical[i] = which nibble (0 = least significant) stores
/// logical weight i.
inline constexpr std::array<int, 8> kInterleaveNibbleOfLogical = {
    4, 0, 5, 1, 6, 2, 7, 3};

/// Pack 8 INT4 codes (values 0..15, logical order) into one uint32 with the
/// 64207531 interleave.
[[nodiscard]] std::uint32_t pack8_interleaved(
    std::span<const std::uint8_t> codes8);

/// Inverse of pack8_interleaved.
[[nodiscard]] std::array<std::uint8_t, 8> unpack8_interleaved(
    std::uint32_t packed);

/// Pack a flat array (size divisible by 8) of INT4 codes.
[[nodiscard]] std::vector<std::uint32_t> pack_interleaved(
    std::span<const std::uint8_t> codes);

/// Plain non-interleaved packing (nibble i = logical weight i) — the layout
/// "naive" kernels use; kept for the dequant ablation.
[[nodiscard]] std::uint32_t pack8_linear(std::span<const std::uint8_t> codes8);
[[nodiscard]] std::array<std::uint8_t, 8> unpack8_linear(std::uint32_t packed);

/// Generic fixed-width packing for the "extreme compression" extension
/// (paper §7): bits in {2, 4, 8}, 32/bits codes per register, linear order.
[[nodiscard]] std::vector<std::uint32_t> pack_bits(
    std::span<const std::uint8_t> codes, int bits);
[[nodiscard]] std::vector<std::uint8_t> unpack_bits(
    std::span<const std::uint32_t> packed, int bits, std::size_t count);

}  // namespace marlin::quant
