#include "quant/uniform.hpp"

#include <algorithm>
#include <cmath>

#include "util/simd_ops.hpp"

namespace marlin::quant {

AsymmetricParams asymmetric_params(std::span<const float> v, int bits) {
  MARLIN_CHECK(!v.empty(), "empty vector");
  MARLIN_CHECK(bits >= 2 && bits <= 8, "bits out of range");
  const auto [mn, mx] = std::minmax_element(v.begin(), v.end());
  AsymmetricParams p;
  p.zero = *mn;
  const float range = *mx - *mn;
  const float levels = static_cast<float>((1 << bits) - 1);
  p.scale = range > 0 ? range / levels : 1.0f;
  return p;
}

std::vector<int> quantize_asymmetric(std::span<const float> v, int bits,
                                     const AsymmetricParams& p) {
  std::vector<int> q(v.size());
  const int qmax = (1 << bits) - 1;
  simd::ops().quantize_asym(v.size(), v.data(), p.scale, p.zero, qmax,
                            q.data());
  return q;
}

std::vector<float> dequantize_asymmetric(std::span<const int> q,
                                         const AsymmetricParams& p) {
  std::vector<float> v(q.size());
  simd::ops().dequant_asym(q.size(), q.data(), p.scale, p.zero, v.data());
  return v;
}

float symmetric_scale(std::span<const float> v, int bits, float clip) {
  MARLIN_CHECK(clip > 0.0f && clip <= 1.0f, "clip must be in (0,1]");
  const float maxabs = simd::ops().max_abs_f32(v.size(), v.data());
  const float levels = static_cast<float>((1 << (bits - 1)) - 1);  // 7 for b=4
  const float s = clip * maxabs / levels;
  return s > 0 ? s : 1.0f;
}

std::uint8_t encode_symmetric(float v, float scale, int bits) {
  const int zero = 1 << (bits - 1);
  const int lo = -zero, hi = zero - 1;
  const int code = std::clamp(
      static_cast<int>(std::nearbyint(v / scale)), lo, hi);
  return static_cast<std::uint8_t>(code + zero);
}

namespace {

/// Squared error of a group quantized against scale s (as the FP16 value the
/// kernel will actually multiply with, to keep the search honest).
double group_sq_error(std::span<const float> v, float s_fp32, int bits) {
  const float s = Half(s_fp32).to_float();
  const int zero = 1 << (bits - 1);
  double err = 0.0;
  for (const float x : v) {
    const int code = static_cast<int>(encode_symmetric(x, s, bits)) - zero;
    const double d = static_cast<double>(x) - static_cast<double>(code) * s;
    err += d * d;
  }
  return err;
}

/// §3.5 (a): grid search over clipping fractions; returns the best scale.
float search_clipped_scale(std::span<const float> v, int bits) {
  float best_s = symmetric_scale(v, bits, 1.0f);
  double best_err = group_sq_error(v, best_s, bits);
  for (float clip = 0.95f; clip >= 0.45f; clip -= 0.05f) {
    const float s = symmetric_scale(v, bits, clip);
    const double err = group_sq_error(v, s, bits);
    if (err < best_err) {
      best_err = err;
      best_s = s;
    }
  }
  return best_s;
}

}  // namespace

QuantizedWeights quantize_rtn(ConstMatrixView<float> w,
                              const QuantConfig& cfg) {
  const index_t k = w.rows(), n = w.cols();
  MARLIN_CHECK(k > 0 && n > 0, "empty weight matrix");
  if (cfg.group_size != kPerColumn) {
    MARLIN_CHECK(cfg.group_size > 0, "group size must be positive");
  }
  QuantizedWeights q(k, n, cfg);

  const index_t g = cfg.group_size == kPerColumn ? k : cfg.group_size;
  std::vector<float> col_group;
  col_group.reserve(static_cast<std::size_t>(g));
  std::vector<std::uint8_t> enc(static_cast<std::size_t>(g));
  const simd::Ops& o = simd::ops();

  for (index_t j = 0; j < n; ++j) {
    for (index_t g0 = 0; g0 < k; g0 += g) {
      const index_t g1 = std::min(k, g0 + g);
      col_group.clear();
      for (index_t i = g0; i < g1; ++i) col_group.push_back(w(i, j));

      const float s = cfg.clip_search
                          ? search_clipped_scale(col_group, cfg.bits)
                          : symmetric_scale(col_group, cfg.bits, 1.0f);
      const Half sh(s);
      q.scales(cfg.group_of_row(g0), j) = sh;
      o.encode_symmetric(col_group.size(), col_group.data(), sh.to_float(),
                         cfg.bits, enc.data());
      for (index_t i = g0; i < g1; ++i) {
        q.codes(i, j) = enc[static_cast<std::size_t>(i - g0)];
      }
    }
  }
  return q;
}

double reconstruction_mse(ConstMatrixView<float> w,
                          const QuantizedWeights& q) {
  MARLIN_CHECK(w.rows() == q.k && w.cols() == q.n, "shape mismatch");
  double err = 0.0;
  for (index_t i = 0; i < q.k; ++i) {
    for (index_t j = 0; j < q.n; ++j) {
      const double d = w(i, j) - q.decode(i, j);
      err += d * d;
    }
  }
  return err / (static_cast<double>(q.k) * static_cast<double>(q.n));
}

}  // namespace marlin::quant
