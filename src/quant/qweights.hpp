#pragma once
// Quantized-weight containers shared by RTN, GPTQ, the repack pipeline and
// the kernels.
//
// Orientation convention (paper §3.4): the weight operand B is K x N —
// K the input (reduction) dimension, N the output dimension. MARLIN uses
// *symmetric* INT4: stored codes are in [0, 15] and decode as (code - 8) *
// scale, with one FP16 scale per column (group_size == kPerColumn) or one
// per G consecutive weights of a column.

#include <cstdint>

#include "util/error.hpp"
#include "util/half.hpp"
#include "util/matrix.hpp"

namespace marlin::quant {

inline constexpr index_t kPerColumn = -1;

struct QuantConfig {
  int bits = 4;
  index_t group_size = 128;  // kPerColumn for one scale per column
  /// Paper §3.5 (a): search a per-group clipping threshold instead of
  /// using plain max-abs scaling.
  bool clip_search = false;

  [[nodiscard]] index_t groups_for(index_t k) const {
    return group_size == kPerColumn ? 1 : (k + group_size - 1) / group_size;
  }
  [[nodiscard]] index_t group_of_row(index_t row) const {
    return group_size == kPerColumn ? 0 : row / group_size;
  }
};

/// Unpacked (one code per byte) quantized weights; the layout module turns
/// this into the packed, tile-reshuffled MARLIN format.
struct QuantizedWeights {
  index_t k = 0;
  index_t n = 0;
  QuantConfig cfg;
  Matrix<std::uint8_t> codes;  // K x N, values in [0, 2^bits)
  Matrix<Half> scales;         // groups x N
  /// Act-order (GPTQ `desc_act`) support: group_index[row] overrides the
  /// default row -> group mapping. Empty for standard checkpoints. The
  /// MARLIN repack refuses non-empty mappings — like the real kernel, the
  /// format needs act-order checkpoints converted (rows re-permuted) first.
  std::vector<index_t> group_index;

  QuantizedWeights() = default;
  QuantizedWeights(index_t k_, index_t n_, QuantConfig cfg_)
      : k(k_), n(n_), cfg(cfg_), codes(k_, n_), scales(cfg_.groups_for(k_), n_) {}

  [[nodiscard]] index_t num_groups() const { return cfg.groups_for(k); }

  [[nodiscard]] index_t group_of(index_t row) const {
    return group_index.empty() ? cfg.group_of_row(row)
                               : group_index[static_cast<std::size_t>(row)];
  }

  /// Decoded value of element (row, col).
  [[nodiscard]] float decode(index_t row, index_t col) const {
    const int zero = 1 << (cfg.bits - 1);
    const float s = scales(group_of(row), col).to_float();
    return (static_cast<int>(codes(row, col)) - zero) * s;
  }

  /// Full dequantised matrix (reference path for tests and baselines).
  [[nodiscard]] Matrix<float> dequantize() const {
    Matrix<float> out(k, n);
    for (index_t i = 0; i < k; ++i) {
      for (index_t j = 0; j < n; ++j) out(i, j) = decode(i, j);
    }
    return out;
  }

  /// Model storage footprint in bits per weight, incl. group scales
  /// (paper Fig. 6 x-axis: 4-bit g=128 -> 4.125 bits/weight).
  [[nodiscard]] double bits_per_weight() const {
    const double scale_bits =
        16.0 * static_cast<double>(num_groups()) * static_cast<double>(n);
    return cfg.bits + scale_bits / (static_cast<double>(k) * static_cast<double>(n));
  }
};

}  // namespace marlin::quant
