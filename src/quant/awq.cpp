#include "quant/awq.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace marlin::quant {

AsymmetricQuantizedWeights quantize_asymmetric_grouped(
    ConstMatrixView<float> w, const QuantConfig& cfg) {
  const index_t k = w.rows(), n = w.cols();
  MARLIN_CHECK(k > 0 && n > 0, "empty weight matrix");
  AsymmetricQuantizedWeights q(k, n, cfg);

  const index_t g = cfg.group_size == kPerColumn ? k : cfg.group_size;
  const int qmax = (1 << cfg.bits) - 1;
  for (index_t j = 0; j < n; ++j) {
    for (index_t g0 = 0; g0 < k; g0 += g) {
      const index_t g1 = std::min(k, g0 + g);
      float mn = w(g0, j), mx = w(g0, j);
      for (index_t i = g0; i < g1; ++i) {
        mn = std::min(mn, w(i, j));
        mx = std::max(mx, w(i, j));
      }
      // Paper §2.2: s = (max - min) / (2^b - 1), z maps min to code 0; the
      // integer zero point is round(-min/s) so that 0.0 decodes exactly.
      float s = (mx - mn) / static_cast<float>(qmax);
      if (s <= 0) s = 1.0f;
      const Half sh(s);
      const float sf = sh.to_float();
      const int zero = std::clamp(
          static_cast<int>(std::nearbyint(-mn / sf)), 0, qmax);
      const index_t gi = cfg.group_of_row(g0);
      q.scales(gi, j) = sh;
      q.zeros(gi, j) = static_cast<std::uint8_t>(zero);
      for (index_t i = g0; i < g1; ++i) {
        const int code = std::clamp(
            static_cast<int>(std::nearbyint(w(i, j) / sf)) + zero, 0, qmax);
        q.codes(i, j) = static_cast<std::uint8_t>(code);
      }
    }
  }
  return q;
}

namespace {

/// Diagonal activation model: error = sum_i E[x_i^2] * sum_j err(i,j)^2.
double weighted_error(ConstMatrixView<float> w,
                      const AsymmetricQuantizedWeights& q,
                      std::span<const double> x2) {
  double err = 0.0;
  for (index_t i = 0; i < w.rows(); ++i) {
    double row = 0.0;
    for (index_t j = 0; j < w.cols(); ++j) {
      const double d = static_cast<double>(w(i, j)) - q.decode(i, j);
      row += d * d;
    }
    err += x2[static_cast<std::size_t>(i)] * row;
  }
  return err;
}

}  // namespace

AwqResult awq_quantize(ConstMatrixView<float> w, ConstMatrixView<float> calib,
                       const AwqConfig& cfg) {
  const index_t k = w.rows(), n = w.cols();
  MARLIN_CHECK(calib.cols() == k, "calibration width must equal K");
  MARLIN_CHECK(cfg.alpha_grid >= 1, "need at least one alpha step");

  // Channel statistics: mean |x_i| (saliency) and E[x_i^2] (objective).
  std::vector<double> mean_abs(static_cast<std::size_t>(k), 0.0);
  std::vector<double> x2(static_cast<std::size_t>(k), 0.0);
  for (index_t t = 0; t < calib.rows(); ++t) {
    for (index_t i = 0; i < k; ++i) {
      const double x = calib(t, i);
      mean_abs[static_cast<std::size_t>(i)] += std::abs(x);
      x2[static_cast<std::size_t>(i)] += x * x;
    }
  }
  const double inv_t = 1.0 / static_cast<double>(calib.rows());
  for (index_t i = 0; i < k; ++i) {
    mean_abs[static_cast<std::size_t>(i)] =
        std::max(1e-8, mean_abs[static_cast<std::size_t>(i)] * inv_t);
    x2[static_cast<std::size_t>(i)] *= inv_t;
  }

  Matrix<float> scaled(k, n);
  AwqResult best;
  bool first = true;
  for (int step = 0; step <= cfg.alpha_grid; ++step) {
    const double alpha =
        static_cast<double>(step) / static_cast<double>(cfg.alpha_grid);
    // s_i = (mean|x_i|)^alpha, normalised to geometric mean 1 so the
    // overall weight magnitude (and thus group ranges) stays comparable.
    std::vector<float> s(static_cast<std::size_t>(k));
    double log_sum = 0.0;
    for (index_t i = 0; i < k; ++i) {
      log_sum += alpha * std::log(mean_abs[static_cast<std::size_t>(i)]);
    }
    const double norm = std::exp(log_sum / static_cast<double>(k));
    for (index_t i = 0; i < k; ++i) {
      s[static_cast<std::size_t>(i)] = static_cast<float>(
          std::pow(mean_abs[static_cast<std::size_t>(i)], alpha) / norm);
    }

    for (index_t i = 0; i < k; ++i) {
      for (index_t j = 0; j < n; ++j) {
        scaled(i, j) = w(i, j) * s[static_cast<std::size_t>(i)];
      }
    }
    auto q = quantize_asymmetric_grouped(scaled.view(), cfg.quant);
    q.channel_scale = s;
    const double err = weighted_error(w, q, x2);
    if (first || err < best.weighted_error) {
      best.weights = std::move(q);
      best.alpha = alpha;
      best.weighted_error = err;
      first = false;
    }
  }
  return best;
}

}  // namespace marlin::quant
