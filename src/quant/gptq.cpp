#include "quant/gptq.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "quant/uniform.hpp"

namespace marlin::quant {

HessianAccumulator::HessianAccumulator(index_t k) : k_(k), gram_(k, k, 0.0) {
  MARLIN_CHECK(k > 0, "hessian dim must be positive");
}

void HessianAccumulator::add_sequence(ConstMatrixView<float> x) {
  MARLIN_CHECK(x.cols() == k_, "activation width " << x.cols()
                                                   << " != hessian dim " << k_);
  for (index_t r = 0; r < x.rows(); ++r) {
    for (index_t i = 0; i < k_; ++i) {
      const double xi = x(r, i);
      if (xi == 0.0) continue;
      for (index_t j = i; j < k_; ++j) {
        gram_(i, j) += xi * static_cast<double>(x(r, j));
      }
    }
  }
  tokens_ += x.rows();
}

Matrix<double> HessianAccumulator::hessian() const {
  MARLIN_CHECK(tokens_ > 0, "no calibration data accumulated");
  Matrix<double> h(k_, k_, 0.0);
  const double norm = 2.0 / static_cast<double>(tokens_);
  for (index_t i = 0; i < k_; ++i) {
    for (index_t j = i; j < k_; ++j) {
      h(i, j) = gram_(i, j) * norm;
      h(j, i) = h(i, j);
    }
  }
  return h;
}

namespace {

/// Per-column scale over rows [g0, g1) of the working copy, optionally with
/// the §3.5 clipping-threshold search.
float group_scale(const Matrix<double>& w, index_t g0, index_t g1, index_t col,
                  const QuantConfig& cfg) {
  std::vector<float> vals;
  vals.reserve(static_cast<std::size_t>(g1 - g0));
  for (index_t i = g0; i < g1; ++i) {
    vals.push_back(static_cast<float>(w(i, col)));
  }
  if (!cfg.clip_search) return symmetric_scale(vals, cfg.bits, 1.0f);
  float best_s = symmetric_scale(vals, cfg.bits, 1.0f);
  double best_err = HUGE_VAL;
  for (float clip = 1.0f; clip >= 0.45f; clip -= 0.05f) {
    const float s_raw = symmetric_scale(vals, cfg.bits, clip);
    const float s = Half(s_raw).to_float();
    double err = 0.0;
    const int zero = 1 << (cfg.bits - 1);
    for (const float v : vals) {
      const int code = static_cast<int>(encode_symmetric(v, s, cfg.bits)) - zero;
      const double d = static_cast<double>(v) - static_cast<double>(code) * s;
      err += d * d;
    }
    if (err < best_err) {
      best_err = err;
      best_s = s_raw;
    }
  }
  return best_s;
}

}  // namespace

GptqResult gptq_quantize(ConstMatrixView<float> w,
                         const Matrix<double>& hessian,
                         const GptqConfig& cfg) {
  const index_t k = w.rows(), n = w.cols();
  MARLIN_CHECK(hessian.rows() == k && hessian.cols() == k,
               "hessian must be K x K");

  if (cfg.act_order) {
    // desc_act: process rows by decreasing Hessian diagonal. Permute W and
    // H, run the standard algorithm, then scatter codes back to the
    // original row order, recording each row's scale group.
    std::vector<index_t> perm(static_cast<std::size_t>(k));
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
      return hessian(a, a) > hessian(b, b);
    });

    Matrix<float> wp(k, n);
    Matrix<double> hp(k, k);
    for (index_t i = 0; i < k; ++i) {
      const index_t pi = perm[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < n; ++j) wp(i, j) = w(pi, j);
      for (index_t j = 0; j < k; ++j) {
        hp(i, j) = hessian(pi, perm[static_cast<std::size_t>(j)]);
      }
    }
    GptqConfig inner = cfg;
    inner.act_order = false;
    GptqResult permuted = gptq_quantize(wp.view(), hp, inner);

    GptqResult res;
    res.hessian_weighted_error = permuted.hessian_weighted_error;
    res.weights = QuantizedWeights(k, n, cfg.quant);
    res.weights.scales = std::move(permuted.weights.scales);
    res.weights.group_index.resize(static_cast<std::size_t>(k));
    for (index_t i = 0; i < k; ++i) {
      const index_t pi = perm[static_cast<std::size_t>(i)];
      for (index_t j = 0; j < n; ++j) {
        res.weights.codes(pi, j) = permuted.weights.codes(i, j);
      }
      res.weights.group_index[static_cast<std::size_t>(pi)] =
          cfg.quant.group_of_row(i);
    }
    return res;
  }

  // Damping + dead-feature handling, exactly as in the reference GPTQ.
  Matrix<double> h = hessian;
  double mean_diag = 0.0;
  for (index_t i = 0; i < k; ++i) mean_diag += h(i, i);
  mean_diag /= static_cast<double>(k);
  MARLIN_CHECK(mean_diag > 0.0, "hessian has zero diagonal");
  const double lambda = cfg.damping * mean_diag;

  Matrix<double> work(k, n);
  for (index_t i = 0; i < k; ++i) {
    const bool dead = h(i, i) == 0.0;
    if (dead) h(i, i) = 1.0;
    h(i, i) += lambda;
    for (index_t j = 0; j < n; ++j) {
      work(i, j) = dead ? 0.0 : static_cast<double>(w(i, j));
    }
  }

  const Matrix<double> u = upper_cholesky_of_inverse(h);

  GptqResult res;
  res.weights = QuantizedWeights(k, n, cfg.quant);
  auto& q = res.weights;

  const index_t g =
      cfg.quant.group_size == kPerColumn ? k : cfg.quant.group_size;
  std::vector<float> scales_now(static_cast<std::size_t>(n), 1.0f);
  std::vector<double> err_row(static_cast<std::size_t>(n));

  for (index_t row = 0; row < k; ++row) {
    if (row % g == 0) {
      const index_t g1 = std::min(k, row + g);
      const index_t gi = cfg.quant.group_of_row(row);
      for (index_t j = 0; j < n; ++j) {
        const float s = group_scale(work, row, g1, j, cfg.quant);
        const Half sh(s);
        q.scales(gi, j) = sh;
        scales_now[static_cast<std::size_t>(j)] = sh.to_float();
      }
    }

    const double d = u(row, row);
    for (index_t j = 0; j < n; ++j) {
      const double wv = work(row, j);
      const float s = scales_now[static_cast<std::size_t>(j)];
      const std::uint8_t code =
          encode_symmetric(static_cast<float>(wv), s, cfg.quant.bits);
      q.codes(row, j) = code;
      const double dq =
          (static_cast<int>(code) - (1 << (cfg.quant.bits - 1))) *
          static_cast<double>(s);
      const double err = (wv - dq) / d;
      err_row[static_cast<std::size_t>(j)] = err;
      res.hessian_weighted_error += err * err;
    }

    // Propagate: W[row+1:, :] -= err ⊗ U[row, row+1:].
    for (index_t r = row + 1; r < k; ++r) {
      const double f = u(row, r);
      if (f == 0.0) continue;
      double* wr = &work(r, 0);
      for (index_t j = 0; j < n; ++j) {
        wr[j] -= err_row[static_cast<std::size_t>(j)] * f;
      }
    }
  }
  return res;
}

}  // namespace marlin::quant
