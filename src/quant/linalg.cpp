#include "quant/linalg.hpp"

#include <cmath>

#include "util/simd_ops.hpp"

namespace marlin::quant {

Matrix<double> cholesky_lower(const Matrix<double>& h) {
  const index_t n = h.rows();
  MARLIN_CHECK(h.cols() == n, "matrix must be square");
  Matrix<double> l(n, n, 0.0);
  for (index_t j = 0; j < n; ++j) {
    double diag = h(j, j);
    for (index_t t = 0; t < j; ++t) diag -= l(j, t) * l(j, t);
    MARLIN_CHECK(diag > 0.0, "matrix not positive definite at pivot " << j);
    l(j, j) = std::sqrt(diag);
    for (index_t i = j + 1; i < n; ++i) {
      double s = h(i, j);
      for (index_t t = 0; t < j; ++t) s -= l(i, t) * l(j, t);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Matrix<double> spd_inverse(const Matrix<double>& h) {
  const index_t n = h.rows();
  const Matrix<double> l = cholesky_lower(h);
  // Solve L Y = I, then L^T X = Y, column by column.
  Matrix<double> inv(n, n, 0.0);
  std::vector<double> y(static_cast<std::size_t>(n));
  for (index_t c = 0; c < n; ++c) {
    for (index_t i = 0; i < n; ++i) {
      double s = (i == c) ? 1.0 : 0.0;
      for (index_t t = 0; t < i; ++t) s -= l(i, t) * y[static_cast<std::size_t>(t)];
      y[static_cast<std::size_t>(i)] = s / l(i, i);
    }
    for (index_t i = n - 1; i >= 0; --i) {
      double s = y[static_cast<std::size_t>(i)];
      for (index_t t = i + 1; t < n; ++t) s -= l(t, i) * inv(t, c);
      inv(i, c) = s / l(i, i);
    }
  }
  return inv;
}

Matrix<double> upper_cholesky_of_inverse(const Matrix<double>& h) {
  const index_t n = h.rows();
  // H^{-1} = L L^T  =>  H^{-1} = U^T U with U = L^T (upper triangular).
  const Matrix<double> l = cholesky_lower(spd_inverse(h));
  Matrix<double> u(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j <= i; ++j) u(j, i) = l(i, j);
  }
  return u;
}

Matrix<double> gram(ConstMatrixView<float> a) {
  const index_t m = a.rows(), n = a.cols();
  Matrix<double> g(n, n, 0.0);
  const simd::Ops& o = simd::ops();
  for (index_t r = 0; r < m; ++r) {
    for (index_t i = 0; i < n; ++i) {
      const double ai = a(r, i);
      if (ai == 0.0) continue;
      o.axpy_f32_f64(static_cast<std::size_t>(n - i), ai, &a(r, i), &g(i, i));
    }
  }
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

}  // namespace marlin::quant
