#pragma once
// Per-token INT8 activation quantization for the W4A8 extension
// (paper §6: "recent independent follow-up to MARLIN extended our approach
// to the case where activations are quantized to 8 bits, while weights are
// quantized to 4 bits" — QQQ, Zhang et al. 2024).
//
// Each token (row) gets one FP32 scale = max|x| / 127; symmetric codes in
// [-127, 127]. Per-token scaling is the standard choice because activation
// outliers are token-local.

#include <cstdint>
#include <vector>

#include "util/half.hpp"
#include "util/matrix.hpp"

namespace marlin::quant {

struct Int8Activations {
  Matrix<std::int8_t> q;          // tokens x K
  std::vector<float> row_scale;   // per token

  [[nodiscard]] index_t rows() const { return q.rows(); }
  [[nodiscard]] index_t cols() const { return q.cols(); }
  [[nodiscard]] float decode(index_t i, index_t j) const {
    return static_cast<float>(q(i, j)) *
           row_scale[static_cast<std::size_t>(i)];
  }
};

Int8Activations quantize_activations_int8(ConstMatrixView<Half> a);

/// Reference dequantisation (for error-bound tests).
Matrix<float> dequantize_activations(const Int8Activations& a);

}  // namespace marlin::quant
