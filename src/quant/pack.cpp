#include "quant/pack.hpp"

#include <bit>
#include <cstring>

#include "util/error.hpp"
#include "util/simd_ops.hpp"

namespace marlin::quant {

std::uint32_t pack8_interleaved(std::span<const std::uint8_t> codes8) {
  MARLIN_CHECK(codes8.size() == 8, "need exactly 8 codes");
  std::uint32_t out = 0;
  for (int i = 0; i < 8; ++i) {
    MARLIN_CHECK(codes8[static_cast<std::size_t>(i)] < 16, "code out of range");
    const int nibble = kInterleaveNibbleOfLogical[static_cast<std::size_t>(i)];
    out |= static_cast<std::uint32_t>(codes8[static_cast<std::size_t>(i)])
           << (4 * nibble);
  }
  return out;
}

std::array<std::uint8_t, 8> unpack8_interleaved(std::uint32_t packed) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    const int nibble = kInterleaveNibbleOfLogical[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((packed >> (4 * nibble)) & 0xfu);
  }
  return out;
}

std::vector<std::uint32_t> pack_interleaved(
    std::span<const std::uint8_t> codes) {
  MARLIN_CHECK(codes.size() % 8 == 0, "size must be a multiple of 8");
  std::vector<std::uint32_t> out(codes.size() / 8);
  if (!simd::ops().pack_u4_interleaved(out.size(), codes.data(), out.data())) {
    // Out-of-range code somewhere: re-run the checked scalar path so the
    // caller gets the exact error it always got.
    for (std::size_t i = 0; i < codes.size(); i += 8) {
      out[i / 8] = pack8_interleaved(codes.subspan(i, 8));
    }
  }
  return out;
}

std::uint32_t pack8_linear(std::span<const std::uint8_t> codes8) {
  MARLIN_CHECK(codes8.size() == 8, "need exactly 8 codes");
  std::uint32_t out = 0;
  for (int i = 0; i < 8; ++i) {
    MARLIN_CHECK(codes8[static_cast<std::size_t>(i)] < 16, "code out of range");
    out |= static_cast<std::uint32_t>(codes8[static_cast<std::size_t>(i)])
           << (4 * i);
  }
  return out;
}

std::array<std::uint8_t, 8> unpack8_linear(std::uint32_t packed) {
  std::array<std::uint8_t, 8> out{};
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((packed >> (4 * i)) & 0xfu);
  }
  return out;
}

std::vector<std::uint32_t> pack_bits(std::span<const std::uint8_t> codes,
                                     int bits) {
  MARLIN_CHECK(bits == 2 || bits == 4 || bits == 8,
               "supported widths: 2, 4, 8 bits");
  const int per_reg = 32 / bits;
  MARLIN_CHECK(codes.size() % static_cast<std::size_t>(per_reg) == 0,
               "size must be a multiple of " << per_reg);
  const std::uint32_t mask = (bits == 32) ? ~0u : ((1u << bits) - 1u);
  std::vector<std::uint32_t> out(codes.size() / static_cast<std::size_t>(per_reg));
  if (bits == 4) {
    if (simd::ops().pack_u4_linear(out.size(), codes.data(), out.data())) {
      return out;
    }
    // Out-of-range code: fall through to the checked loop for the error.
  } else if (bits == 8 && std::endian::native == std::endian::little) {
    // Byte-per-code: packing 4 codes little-endian into a uint32 is memcpy
    // (and every uint8 is in range for 8 bits).
    if (!codes.empty()) std::memcpy(out.data(), codes.data(), codes.size());
    return out;
  }
  for (std::size_t i = 0; i < codes.size(); i += static_cast<std::size_t>(per_reg)) {
    std::uint32_t reg = 0;
    for (int j = 0; j < per_reg; ++j) {
      const std::uint8_t c = codes[i + static_cast<std::size_t>(j)];
      MARLIN_CHECK((c & ~mask) == 0, "code out of range for " << bits
                                                              << " bits");
      reg |= static_cast<std::uint32_t>(c) << (bits * j);
    }
    out[i / static_cast<std::size_t>(per_reg)] = reg;
  }
  return out;
}

std::vector<std::uint8_t> unpack_bits(std::span<const std::uint32_t> packed,
                                      int bits, std::size_t count) {
  MARLIN_CHECK(bits == 2 || bits == 4 || bits == 8,
               "supported widths: 2, 4, 8 bits");
  const int per_reg = 32 / bits;
  MARLIN_CHECK(count <= packed.size() * static_cast<std::size_t>(per_reg),
               "count exceeds packed data");
  const std::uint32_t mask = (1u << bits) - 1u;
  std::vector<std::uint8_t> out(count);
  std::size_t start = 0;
  if (bits == 4) {
    const std::size_t full_regs = count / 8;
    simd::ops().unpack_u4_linear(full_regs, packed.data(), out.data());
    start = full_regs * 8;
  } else if (bits == 8 && std::endian::native == std::endian::little) {
    if (count > 0) std::memcpy(out.data(), packed.data(), count);
    start = count;
  }
  for (std::size_t i = start; i < count; ++i) {
    const std::uint32_t reg = packed[i / static_cast<std::size_t>(per_reg)];
    const int j = static_cast<int>(i % static_cast<std::size_t>(per_reg));
    out[i] = static_cast<std::uint8_t>((reg >> (bits * j)) & mask);
  }
  return out;
}

}  // namespace marlin::quant
