#pragma once
// Small dense linear algebra needed by GPTQ: Cholesky factorisation,
// triangular solves, SPD inverse, and the upper-Cholesky-of-inverse that
// GPTQ's error propagation uses.

#include "util/matrix.hpp"

namespace marlin::quant {

/// In: SPD matrix H (n x n). Out: lower-triangular L with L L^T = H.
/// Throws marlin::Error if H is not positive definite.
Matrix<double> cholesky_lower(const Matrix<double>& h);

/// Inverse of an SPD matrix via its Cholesky factorisation.
Matrix<double> spd_inverse(const Matrix<double>& h);

/// Upper-triangular U with U^T U = H^{-1}. GPTQ consumes row k of U:
/// the diagonal scales the quantisation error and the tail propagates it
/// into not-yet-quantised rows.
Matrix<double> upper_cholesky_of_inverse(const Matrix<double>& h);

/// C = A^T A for an m x n input (result n x n), accumulated in double.
Matrix<double> gram(ConstMatrixView<float> a);

}  // namespace marlin::quant
