#pragma once
// Synthetic LLM layer generator (substitution for real checkpoints +
// calibration text — see DESIGN.md §1).
//
// Weights are heavy-tailed (Student-t) with log-normal per-column scale
// diversity; calibration activations have an AR(1)-style feature
// correlation plus log-normal per-feature magnitudes, reproducing the two
// properties that make LLM quantization non-trivial: outlier features and
// strongly non-diagonal Hessians (which is exactly what GPTQ exploits over
// RTN).

#include "util/matrix.hpp"
#include "util/rng.hpp"

namespace marlin::eval {

struct SyntheticLayer {
  Matrix<float> w;      // K x N weights
  Matrix<float> calib;  // tokens x K calibration activations
};

struct SyntheticParams {
  double weight_tail_dof = 5.0;    // Student-t dof for weights
  double weight_scale = 0.02;      // base std-dev
  double column_scale_sigma = 0.3; // log-normal sigma of per-column scales
  double feature_corr = 0.6;       // AR(1) rho across the K features
  double feature_scale_sigma = 0.8;// log-normal sigma of feature magnitudes
};

SyntheticLayer make_synthetic_layer(index_t k, index_t n, index_t tokens,
                                    std::uint64_t seed,
                                    const SyntheticParams& p = {});

}  // namespace marlin::eval
