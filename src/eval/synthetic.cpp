#include "eval/synthetic.hpp"

#include <cmath>
#include <vector>

namespace marlin::eval {

SyntheticLayer make_synthetic_layer(index_t k, index_t n, index_t tokens,
                                    std::uint64_t seed,
                                    const SyntheticParams& p) {
  Rng rng(seed);
  SyntheticLayer layer;
  layer.w = Matrix<float>(k, n);
  layer.calib = Matrix<float>(tokens, k);

  std::vector<double> col_scale(static_cast<std::size_t>(n));
  for (auto& s : col_scale) {
    s = p.weight_scale * std::exp(p.column_scale_sigma * rng.normal());
  }
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      layer.w(i, j) = static_cast<float>(
          col_scale[static_cast<std::size_t>(j)] *
          rng.student_t(p.weight_tail_dof));
    }
  }

  // Per-feature magnitudes (activation "outlier channels").
  std::vector<double> feat_scale(static_cast<std::size_t>(k));
  for (auto& s : feat_scale) {
    s = std::exp(p.feature_scale_sigma * rng.normal());
  }
  // AR(1) across the feature axis makes the Hessian strongly off-diagonal.
  const double rho = p.feature_corr;
  const double noise = std::sqrt(1.0 - rho * rho);
  for (index_t t = 0; t < tokens; ++t) {
    double prev = rng.normal();
    layer.calib(t, 0) =
        static_cast<float>(prev * feat_scale[0]);
    for (index_t f = 1; f < k; ++f) {
      prev = rho * prev + noise * rng.normal();
      layer.calib(t, f) =
          static_cast<float>(prev * feat_scale[static_cast<std::size_t>(f)]);
    }
  }
  return layer;
}

}  // namespace marlin::eval
