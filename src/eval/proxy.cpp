#include "eval/proxy.hpp"

#include <cmath>

#include "util/error.hpp"

namespace marlin::eval {

double perplexity_proxy(double base_ppl, double nmse, double kappa) {
  MARLIN_CHECK(nmse >= 0, "nmse must be non-negative");
  return base_ppl * std::exp(kappa * nmse);
}

double accuracy_proxy(double base_acc, double nmse, double sensitivity) {
  MARLIN_CHECK(nmse >= 0, "nmse must be non-negative");
  return base_acc - sensitivity * std::sqrt(nmse) * 100.0;
}

std::vector<double> perplexity_proxy(const SimContext& ctx, double base_ppl,
                                     const std::vector<double>& nmse,
                                     double kappa) {
  // Scalar math per point — pool dispatch would cost more than the work.
  (void)ctx;
  std::vector<double> out;
  out.reserve(nmse.size());
  for (const double e : nmse) {
    out.push_back(perplexity_proxy(base_ppl, e, kappa));
  }
  return out;
}

double calibrate_kappa(double base_ppl, double anchor_ppl,
                       double anchor_nmse) {
  MARLIN_CHECK(anchor_nmse > 0, "anchor nmse must be positive");
  return std::log(anchor_ppl / base_ppl) / anchor_nmse;
}

double calibrate_sensitivity(double base_acc, double anchor_acc,
                             double anchor_nmse) {
  MARLIN_CHECK(anchor_nmse > 0, "anchor nmse must be positive");
  return (base_acc - anchor_acc) / (std::sqrt(anchor_nmse) * 100.0);
}

std::vector<ModelQualityRef> llama2_ppl_refs() {
  // FP16 wikitext-2 perplexities as reported in the GPTQ/AWQ literature.
  return {{"Llama-2-7B", 6.74, 5.47},
          {"Llama-2-13B", 13.0, 4.88},
          {"Llama-2-70B", 68.9, 3.32}};
}

}  // namespace marlin::eval
