#include "eval/metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace marlin::eval {

double layer_output_nmse(ConstMatrixView<float> w,
                         ConstMatrixView<float> w_hat,
                         ConstMatrixView<float> calib) {
  MARLIN_CHECK(w.rows() == w_hat.rows() && w.cols() == w_hat.cols(),
               "weight shapes differ");
  MARLIN_CHECK(calib.cols() == w.rows(), "calib width must equal K");
  double num = 0.0, den = 0.0;
  std::vector<double> y(static_cast<std::size_t>(w.cols()));
  std::vector<double> e(static_cast<std::size_t>(w.cols()));
  for (index_t t = 0; t < calib.rows(); ++t) {
    std::fill(y.begin(), y.end(), 0.0);
    std::fill(e.begin(), e.end(), 0.0);
    for (index_t i = 0; i < w.rows(); ++i) {
      const double x = calib(t, i);
      if (x == 0.0) continue;
      for (index_t j = 0; j < w.cols(); ++j) {
        const double wij = w(i, j);
        y[static_cast<std::size_t>(j)] += x * wij;
        e[static_cast<std::size_t>(j)] += x * (wij - w_hat(i, j));
      }
    }
    for (index_t j = 0; j < w.cols(); ++j) {
      num += e[static_cast<std::size_t>(j)] * e[static_cast<std::size_t>(j)];
      den += y[static_cast<std::size_t>(j)] * y[static_cast<std::size_t>(j)];
    }
  }
  return den > 0 ? num / den : 0.0;
}

std::vector<double> layer_output_nmse_sweep(
    const SimContext& ctx, ConstMatrixView<float> w,
    const std::vector<Matrix<float>>& w_hats, ConstMatrixView<float> calib) {
  std::vector<double> out(w_hats.size());
  ctx.parallel_for(0, static_cast<std::int64_t>(w_hats.size()),
                   [&](std::int64_t i) {
                     out[static_cast<std::size_t>(i)] = layer_output_nmse(
                         w, w_hats[static_cast<std::size_t>(i)].view(),
                         calib);
                   });
  return out;
}

double weight_nmse(ConstMatrixView<float> w, ConstMatrixView<float> w_hat) {
  MARLIN_CHECK(w.rows() == w_hat.rows() && w.cols() == w_hat.cols(),
               "weight shapes differ");
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < w.rows(); ++i) {
    for (index_t j = 0; j < w.cols(); ++j) {
      const double d = static_cast<double>(w(i, j)) - w_hat(i, j);
      num += d * d;
      den += static_cast<double>(w(i, j)) * w(i, j);
    }
  }
  return den > 0 ? num / den : 0.0;
}

}  // namespace marlin::eval
