#pragma once
// Layer-quality metrics used by the Fig. 6 / Table 1 reproductions.

#include <vector>

#include "util/matrix.hpp"
#include "util/sim_context.hpp"

namespace marlin::eval {

/// Normalised layer-output error ||X (W - W_hat)||_F^2 / ||X W||_F^2 —
/// the quantity GPTQ minimises (expected over the calibration set).
[[nodiscard]] double layer_output_nmse(ConstMatrixView<float> w,
                                       ConstMatrixView<float> w_hat,
                                       ConstMatrixView<float> calib);

/// layer_output_nmse for a batch of candidate reconstructions against the
/// same reference — the hot loop of the Fig. 6 / Table 1 quality sweeps —
/// fanned out on the context, results in candidate order.
[[nodiscard]] std::vector<double> layer_output_nmse_sweep(
    const SimContext& ctx, ConstMatrixView<float> w,
    const std::vector<Matrix<float>>& w_hats, ConstMatrixView<float> calib);

/// Plain weight-space NMSE ||W - W_hat||_F^2 / ||W||_F^2.
[[nodiscard]] double weight_nmse(ConstMatrixView<float> w,
                                 ConstMatrixView<float> w_hat);

}  // namespace marlin::eval
