#pragma once
// Proxy mappings from *measured* synthetic-layer reconstruction error to
// the paper's reported quality metrics (Fig. 6 perplexity, Table 1 task
// accuracy). See DESIGN.md §1: we cannot run Llama-2 here, so the
// algorithmic comparisons (GPTQ vs RTN, clip search on/off, dense vs 2:4)
// are measured for real on synthetic layers, and only the final mapping to
// PPL / accuracy units is modelled:
//
//   PPL(q)  = PPL_base * exp(kappa * nmse)            (monotone, exact at 0)
//   Acc(q)  = Acc_base - sens * sqrt(nmse) * 100      (percentage points)
//
// kappa / sens are calibrated ONCE so that the INT4 g=128 GPTQ operating
// point lands on the paper's own Llama-2-7B numbers; every other point
// (other bit-widths, group sizes, RTN, sparse) then follows from measured
// error ratios. Knowledge-distillation recovery for the INT4+2:4 model
// (Table 1, fine-tuned) is modelled as recovering a documented fraction of
// the drop plus the paper's reported uplift — we cannot fine-tune here.

#include <string>
#include <vector>

#include "util/sim_context.hpp"

namespace marlin::eval {

struct QualityAnchors {
  /// Calibrated so GPTQ INT4 g=128 on the synthetic model maps to the
  /// paper-reported degradation.
  double kappa = 0;  // set by calibrate_* below
  double accuracy_sensitivity = 0;
};

/// Perplexity proxy (lower is better).
[[nodiscard]] double perplexity_proxy(double base_ppl, double nmse,
                                      double kappa);

/// Task-accuracy proxy in percentage points.
[[nodiscard]] double accuracy_proxy(double base_acc, double nmse,
                                    double sensitivity);

/// Batched perplexity mapping over one Pareto sweep's measured NMSE
/// points, in input order. Takes the session context for API uniformity
/// with the heavier eval sweeps, but the per-point math is a handful of
/// FLOPs, so it deliberately runs inline rather than on the pool.
[[nodiscard]] std::vector<double> perplexity_proxy(
    const SimContext& ctx, double base_ppl, const std::vector<double>& nmse,
    double kappa);

/// kappa such that perplexity_proxy(base, anchor_nmse) == anchor_ppl.
[[nodiscard]] double calibrate_kappa(double base_ppl, double anchor_ppl,
                                     double anchor_nmse);

/// sensitivity such that accuracy_proxy(base, anchor_nmse) == anchor_acc.
[[nodiscard]] double calibrate_sensitivity(double base_acc, double anchor_acc,
                                           double anchor_nmse);

/// Published FP16 wikitext-2 perplexities used as Fig. 6 anchors.
struct ModelQualityRef {
  std::string name;
  double params_billions;
  double fp16_ppl;
};
std::vector<ModelQualityRef> llama2_ppl_refs();  // 7B/13B/70B

}  // namespace marlin::eval
