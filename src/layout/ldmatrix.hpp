#pragma once
// Emulation of the ldmatrix.sync.aligned.m8n8.x4 address pattern.
//
// ldmatrix loads four 8x8 FP16 matrices from shared memory: thread t
// supplies the byte address of one 16-byte row (threads 0-7 address the
// rows of sub-matrix 0, 8-15 of sub-matrix 1, ...). For MARLIN's A operand
// a 16x16 block is fetched as the four 8x8 quadrants in the order
// (top-left, bottom-left, top-right, bottom-right), matching the a0..a7
// fragment layout. The generated addresses are what the SMEM bank model
// checks for conflicts.

#include <array>
#include <cstdint>

#include "layout/swizzle.hpp"

namespace marlin::layout {

/// Byte addresses supplied by all 32 threads for one 16x16 A block whose
/// top-left logical vector coordinate is (block_row16 * 16, block_vcol * 2)
/// inside a SMEM tile of `vectors_per_row` 16-byte vectors per row.
/// `swizzled` selects the i(i^j) layout (true) or the linear layout (false).
[[nodiscard]] inline std::array<std::uint64_t, 32> ldmatrix_x4_addresses(
    int block_row16, int block_vcol, int vectors_per_row, bool swizzled) {
  std::array<std::uint64_t, 32> addr{};
  for (int t = 0; t < 32; ++t) {
    const int sub = t / 8;       // which 8x8 sub-matrix
    const int r = t % 8;         // row within the sub-matrix
    const int row = block_row16 * 16 + (sub % 2) * 8 + r;
    const int vcol = block_vcol * 2 + sub / 2;
    addr[static_cast<std::size_t>(t)] =
        swizzled ? swizzled_offset_bytes(row, vcol, vectors_per_row)
                 : linear_offset_bytes(row, vcol, vectors_per_row);
  }
  return addr;
}

/// Byte addresses for a warp's cp.async *write* of a contiguous row range:
/// thread t writes logical vector (row0 + t / vectors_per_row,
/// t % vectors_per_row). This is how the global->shared copy of A lands in
/// SMEM; with the swizzle it must also be conflict-free (paper §3.4 notes
/// this undocumented requirement).
[[nodiscard]] inline std::array<std::uint64_t, 32> smem_store_addresses(
    int row0, int vectors_per_row, bool swizzled) {
  std::array<std::uint64_t, 32> addr{};
  for (int t = 0; t < 32; ++t) {
    const int row = row0 + t / vectors_per_row;
    const int col = t % vectors_per_row;
    addr[static_cast<std::size_t>(t)] =
        swizzled ? swizzled_offset_bytes(row, col, vectors_per_row)
                 : linear_offset_bytes(row, col, vectors_per_row);
  }
  return addr;
}

}  // namespace marlin::layout
