#pragma once
// Shared-memory XOR swizzle for the activation operand A (paper §3.4
// "Shared Memory Layouts").
//
// A shared-memory A tile is addressed in 16-byte vectors (8 FP16 values).
// Storing logical vector (i, j) at physical vector slot (i, i XOR j) makes
// both the ldmatrix.sync reads (which gather vectors (i..i+7, j) per 8x8
// block) and the cp.async writes (a warp writing a contiguous row range)
// conflict-free across the 32 shared-memory banks. The layout tests verify
// both properties against the gpusim bank model.

#include <cstdint>

namespace marlin::layout {

inline constexpr int kVectorBytes = 16;

/// Physical vector-slot column for logical (row, col).
[[nodiscard]] constexpr int swizzle_col(int row, int col) {
  return row ^ col;
}

/// Byte offset inside a SMEM tile of `vectors_per_row` 16-byte vectors.
[[nodiscard]] constexpr std::uint64_t swizzled_offset_bytes(
    int row, int col, int vectors_per_row) {
  return (static_cast<std::uint64_t>(row) *
              static_cast<std::uint64_t>(vectors_per_row) +
          static_cast<std::uint64_t>(swizzle_col(row, col) %
                                     vectors_per_row)) *
         kVectorBytes;
}

/// Identity layout (no swizzle) for the ablation/counter-example tests.
[[nodiscard]] constexpr std::uint64_t linear_offset_bytes(
    int row, int col, int vectors_per_row) {
  return (static_cast<std::uint64_t>(row) *
              static_cast<std::uint64_t>(vectors_per_row) +
          static_cast<std::uint64_t>(col)) *
         kVectorBytes;
}

}  // namespace marlin::layout
