#pragma once
// Offline weight/scale reshuffling into the MARLIN storage format
// (paper §3.4: "we simplify things by reshuffling 16 x 64 tiles so that
// they are laid out contiguously in memory", and "reorganize weights such
// that the 16-byte vector read by each thread contains precisely its
// necessary 8 quantized weights of 4 separate 16x16 Tensor Core blocks").
//
// Storage layout of `packed` (one uint32 = 8 interleaved INT4 codes):
//   slab   = k / 16          (16 reduction rows)
//   chunk  = n / 64          (64 output columns = 4 blocks of 16)
//   offset = ((slab * num_chunks + chunk) * 32 + lane) * 4 + block
// so each thread's four uint32 for a (slab, chunk) pair are contiguous —
// one 16-byte vector per thread, the widest load on Ampere.
//
// Scales are permuted per 64-column chunk so that each thread-group's 8
// scales for the chunk are contiguous (one 16-byte half vector):
//   packed column tg*8 + m  <-  original column m*8 + tg,
// where tg = lane/4 is the fragment column-group of the thread.

#include <array>
#include <cstdint>
#include <vector>

#include "quant/awq.hpp"
#include "quant/qweights.hpp"
#include "util/matrix.hpp"

namespace marlin::layout {

inline constexpr index_t kSlabRows = 16;   // reduction rows per slab
inline constexpr index_t kChunkCols = 64;  // output columns per chunk

struct MarlinWeights {
  index_t k = 0;
  index_t n = 0;
  quant::QuantConfig cfg;
  std::vector<std::uint32_t> packed;
  Matrix<Half> scales_packed;  // groups x N, column-permuted per chunk
  /// AWQ-format extension (vLLM awq-marlin): integer zero points, permuted
  /// like the scales. Empty for the symmetric GPTQ format.
  Matrix<std::uint8_t> zeros_packed;

  [[nodiscard]] bool asymmetric() const { return zeros_packed.size() > 0; }

  [[nodiscard]] index_t num_slabs() const { return k / kSlabRows; }
  [[nodiscard]] index_t num_chunks() const { return n / kChunkCols; }
  [[nodiscard]] std::size_t packed_index(index_t slab, index_t chunk, int lane,
                                         int block) const {
    return static_cast<std::size_t>(
        ((slab * num_chunks() + chunk) * 32 + lane) * 4 + block);
  }
  /// Storage bytes of the packed weight stream (0.5 B/weight).
  [[nodiscard]] std::int64_t weight_bytes() const {
    return static_cast<std::int64_t>(packed.size()) * 4;
  }
  [[nodiscard]] std::int64_t scale_bytes() const {
    return scales_packed.size() * 2;
  }
};

/// Permutation within a 64-column chunk: packed position -> original column.
[[nodiscard]] std::array<int, 64> scale_chunk_perm();

/// Repack unpacked quantized weights (K divisible by 16, N by 64) into the
/// MARLIN format. This is the "conversion script" equivalent for GPTQ
/// checkpoints (paper §3.5).
MarlinWeights marlin_repack(const quant::QuantizedWeights& q);

/// AWQ repack: same tile/interleave layout plus packed zero points. The
/// stored stream quantizes the channel-scaled W'; activations must be
/// divided by `channel_scale` upstream (returned unchanged for the caller).
MarlinWeights marlin_repack_awq(const quant::AsymmetricQuantizedWeights& q);

/// Reference inverse: fully dequantise a MarlinWeights back to K x N floats
/// (bit-identical to QuantizedWeights::dequantize of the source; for AWQ,
/// to the *scaled* weights W').
Matrix<float> marlin_unpack_dequant(const MarlinWeights& mw);

}  // namespace marlin::layout
