#include "layout/repack.hpp"

#include <array>
#include <cstring>

#include "layout/fragment.hpp"
#include "quant/dequant_trick.hpp"
#include "quant/pack.hpp"
#include "util/simd_ops.hpp"

namespace marlin::layout {

namespace {

/// Static gather map for one 16x64 code tile: register g = lane * 4 + block
/// (the contiguous packed order of MarlinWeights::packed_index), logical
/// weight w, source position src[g * 8 + w] = row * 64 + (block * 16 + col)
/// inside the tile.
const std::array<int, 1024>& repack_gather_map() {
  static const std::array<int, 1024> map = [] {
    std::array<int, 1024> m{};
    for (int lane = 0; lane < 32; ++lane) {
      for (int block = 0; block < 4; ++block) {
        for (int w = 0; w < 8; ++w) {
          const Coord c = weight_block16_coord(lane, w);
          m[static_cast<std::size_t>((lane * 4 + block) * 8 + w)] =
              c.row * 64 + block * 16 + c.col;
        }
      }
    }
    return m;
  }();
  return map;
}

}  // namespace

std::array<int, 64> scale_chunk_perm() {
  std::array<int, 64> perm{};
  for (int tg = 0; tg < 8; ++tg) {
    for (int m = 0; m < 8; ++m) {
      perm[static_cast<std::size_t>(tg * 8 + m)] = m * 8 + tg;
    }
  }
  return perm;
}

MarlinWeights marlin_repack(const quant::QuantizedWeights& q) {
  MARLIN_CHECK(q.cfg.bits == 4, "MARLIN format packs 4-bit codes");
  MARLIN_CHECK(q.group_index.empty(),
               "act-order (desc_act) checkpoints must be converted to "
               "sequential groups before the MARLIN repack");
  MARLIN_CHECK(q.k % kSlabRows == 0,
               "K=" << q.k << " must be divisible by " << kSlabRows);
  MARLIN_CHECK(q.n % kChunkCols == 0,
               "N=" << q.n << " must be divisible by " << kChunkCols);
  if (q.cfg.group_size != quant::kPerColumn) {
    MARLIN_CHECK(q.cfg.group_size % kSlabRows == 0,
                 "group size must align with 16-row slabs");
  }

  MarlinWeights mw;
  mw.k = q.k;
  mw.n = q.n;
  mw.cfg = q.cfg;
  mw.packed.resize(static_cast<std::size_t>(mw.num_slabs() * mw.num_chunks()) *
                   32 * 4);

  // Copy each 16x64 tile into a contiguous staging buffer, gather its 128
  // registers' worth of codes into logical order, then nibble-pack all 128
  // in one dispatched call (the packed registers for one (slab, chunk) are
  // contiguous: packed_index(slab, chunk, lane, block) orders them as
  // lane * 4 + block).
  const auto& gather = repack_gather_map();
  const simd::Ops& ops = simd::ops();
  std::array<std::uint8_t, 16 * 64> tile;
  std::array<std::uint8_t, 1024> codes1024;
  for (index_t slab = 0; slab < mw.num_slabs(); ++slab) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int r = 0; r < 16; ++r) {
        std::memcpy(&tile[static_cast<std::size_t>(r) * 64],
                    &q.codes(slab * kSlabRows + r, chunk * kChunkCols), 64);
      }
      for (std::size_t i = 0; i < 1024; ++i) {
        codes1024[i] = tile[static_cast<std::size_t>(gather[i])];
      }
      std::uint32_t* dst = &mw.packed[mw.packed_index(slab, chunk, 0, 0)];
      if (!ops.pack_u4_interleaved(128, codes1024.data(), dst)) {
        // Out-of-range code: re-pack this tile through the checked scalar
        // path so the caller sees the exact historical error.
        for (int g = 0; g < 128; ++g) {
          dst[g] = quant::pack8_interleaved(
              {&codes1024[static_cast<std::size_t>(g) * 8], 8});
        }
      }
    }
  }

  // Scales: permute columns within each 64-wide chunk.
  const auto perm = scale_chunk_perm();
  mw.scales_packed = Matrix<Half>(q.scales.rows(), q.scales.cols());
  for (index_t g = 0; g < q.scales.rows(); ++g) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int p = 0; p < 64; ++p) {
        mw.scales_packed(g, chunk * kChunkCols + p) =
            q.scales(g, chunk * kChunkCols + perm[static_cast<std::size_t>(p)]);
      }
    }
  }
  return mw;
}

MarlinWeights marlin_repack_awq(const quant::AsymmetricQuantizedWeights& q) {
  // Reuse the symmetric repack for codes and scales by staging through a
  // QuantizedWeights, then attach the permuted zero points.
  quant::QuantizedWeights staged(q.k, q.n, q.cfg);
  staged.codes = q.codes;
  staged.scales = q.scales;
  MarlinWeights mw = marlin_repack(staged);

  const auto perm = scale_chunk_perm();
  mw.zeros_packed = Matrix<std::uint8_t>(q.zeros.rows(), q.zeros.cols());
  for (index_t g = 0; g < q.zeros.rows(); ++g) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int p = 0; p < 64; ++p) {
        mw.zeros_packed(g, chunk * kChunkCols + p) =
            q.zeros(g, chunk * kChunkCols + perm[static_cast<std::size_t>(p)]);
      }
    }
  }
  return mw;
}

Matrix<float> marlin_unpack_dequant(const MarlinWeights& mw) {
  Matrix<float> out(mw.k, mw.n);
  const auto perm = scale_chunk_perm();
  // Inverse scale permutation: original column -> packed position.
  std::array<int, 64> inv{};
  for (int p = 0; p < 64; ++p) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])] = p;

  for (index_t slab = 0; slab < mw.num_slabs(); ++slab) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int lane = 0; lane < 32; ++lane) {
        for (int block = 0; block < 4; ++block) {
          const std::uint32_t reg =
              mw.packed[mw.packed_index(slab, chunk, lane, block)];
          const auto vals = quant::dequant8(reg);
          for (int w = 0; w < 8; ++w) {
            const Coord c = weight_block16_coord(lane, w);
            const index_t row = slab * kSlabRows + c.row;
            const index_t col = chunk * kChunkCols + block * 16 + c.col;
            const index_t g = mw.cfg.group_of_row(row);
            const index_t packed_col =
                chunk * kChunkCols +
                inv[static_cast<std::size_t>(block * 16 + c.col)];
            const Half s = mw.scales_packed(g, packed_col);
            // dequant8 yields code-8; the asymmetric path re-centres on the
            // stored zero point instead of the fixed 8.
            float v = vals[static_cast<std::size_t>(w)].to_float();
            if (mw.asymmetric()) {
              v += 8.0f - static_cast<float>(mw.zeros_packed(g, packed_col));
            }
            out(row, col) = v * s.to_float();
          }
        }
      }
    }
  }
  return out;
}

}  // namespace marlin::layout
