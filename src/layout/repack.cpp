#include "layout/repack.hpp"

#include <array>

#include "layout/fragment.hpp"
#include "quant/dequant_trick.hpp"
#include "quant/pack.hpp"

namespace marlin::layout {

std::array<int, 64> scale_chunk_perm() {
  std::array<int, 64> perm{};
  for (int tg = 0; tg < 8; ++tg) {
    for (int m = 0; m < 8; ++m) {
      perm[static_cast<std::size_t>(tg * 8 + m)] = m * 8 + tg;
    }
  }
  return perm;
}

MarlinWeights marlin_repack(const quant::QuantizedWeights& q) {
  MARLIN_CHECK(q.cfg.bits == 4, "MARLIN format packs 4-bit codes");
  MARLIN_CHECK(q.group_index.empty(),
               "act-order (desc_act) checkpoints must be converted to "
               "sequential groups before the MARLIN repack");
  MARLIN_CHECK(q.k % kSlabRows == 0,
               "K=" << q.k << " must be divisible by " << kSlabRows);
  MARLIN_CHECK(q.n % kChunkCols == 0,
               "N=" << q.n << " must be divisible by " << kChunkCols);
  if (q.cfg.group_size != quant::kPerColumn) {
    MARLIN_CHECK(q.cfg.group_size % kSlabRows == 0,
                 "group size must align with 16-row slabs");
  }

  MarlinWeights mw;
  mw.k = q.k;
  mw.n = q.n;
  mw.cfg = q.cfg;
  mw.packed.resize(static_cast<std::size_t>(mw.num_slabs() * mw.num_chunks()) *
                   32 * 4);

  std::array<std::uint8_t, 8> codes{};
  for (index_t slab = 0; slab < mw.num_slabs(); ++slab) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int lane = 0; lane < 32; ++lane) {
        for (int block = 0; block < 4; ++block) {
          for (int w = 0; w < 8; ++w) {
            const Coord c = weight_block16_coord(lane, w);
            const index_t row = slab * kSlabRows + c.row;
            const index_t col = chunk * kChunkCols + block * 16 + c.col;
            codes[static_cast<std::size_t>(w)] = q.codes(row, col);
          }
          mw.packed[mw.packed_index(slab, chunk, lane, block)] =
              quant::pack8_interleaved(codes);
        }
      }
    }
  }

  // Scales: permute columns within each 64-wide chunk.
  const auto perm = scale_chunk_perm();
  mw.scales_packed = Matrix<Half>(q.scales.rows(), q.scales.cols());
  for (index_t g = 0; g < q.scales.rows(); ++g) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int p = 0; p < 64; ++p) {
        mw.scales_packed(g, chunk * kChunkCols + p) =
            q.scales(g, chunk * kChunkCols + perm[static_cast<std::size_t>(p)]);
      }
    }
  }
  return mw;
}

MarlinWeights marlin_repack_awq(const quant::AsymmetricQuantizedWeights& q) {
  // Reuse the symmetric repack for codes and scales by staging through a
  // QuantizedWeights, then attach the permuted zero points.
  quant::QuantizedWeights staged(q.k, q.n, q.cfg);
  staged.codes = q.codes;
  staged.scales = q.scales;
  MarlinWeights mw = marlin_repack(staged);

  const auto perm = scale_chunk_perm();
  mw.zeros_packed = Matrix<std::uint8_t>(q.zeros.rows(), q.zeros.cols());
  for (index_t g = 0; g < q.zeros.rows(); ++g) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int p = 0; p < 64; ++p) {
        mw.zeros_packed(g, chunk * kChunkCols + p) =
            q.zeros(g, chunk * kChunkCols + perm[static_cast<std::size_t>(p)]);
      }
    }
  }
  return mw;
}

Matrix<float> marlin_unpack_dequant(const MarlinWeights& mw) {
  Matrix<float> out(mw.k, mw.n);
  const auto perm = scale_chunk_perm();
  // Inverse scale permutation: original column -> packed position.
  std::array<int, 64> inv{};
  for (int p = 0; p < 64; ++p) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(p)])] = p;

  for (index_t slab = 0; slab < mw.num_slabs(); ++slab) {
    for (index_t chunk = 0; chunk < mw.num_chunks(); ++chunk) {
      for (int lane = 0; lane < 32; ++lane) {
        for (int block = 0; block < 4; ++block) {
          const std::uint32_t reg =
              mw.packed[mw.packed_index(slab, chunk, lane, block)];
          const auto vals = quant::dequant8(reg);
          for (int w = 0; w < 8; ++w) {
            const Coord c = weight_block16_coord(lane, w);
            const index_t row = slab * kSlabRows + c.row;
            const index_t col = chunk * kChunkCols + block * 16 + c.col;
            const index_t g = mw.cfg.group_of_row(row);
            const index_t packed_col =
                chunk * kChunkCols +
                inv[static_cast<std::size_t>(block * 16 + c.col)];
            const Half s = mw.scales_packed(g, packed_col);
            // dequant8 yields code-8; the asymmetric path re-centres on the
            // stored zero point instead of the fixed 8.
            float v = vals[static_cast<std::size_t>(w)].to_float();
            if (mw.asymmetric()) {
              v += 8.0f - static_cast<float>(mw.zeros_packed(g, packed_col));
            }
            out(row, col) = v * s.to_float();
          }
        }
      }
    }
  }
  return out;
}

}  // namespace marlin::layout
