#pragma once
// Thread <-> matrix-element mappings for Ampere mma.sync.m16n8k16 fragments
// (PTX ISA §9.7.13; "Warp-level matrix fragment" layouts).
//
// These mappings are dictated by the microarchitecture: each of the 32
// threads of a warp holds a fixed set of elements of the A (16x16), B
// (16x8) and C/D (16x8) operands. MARLIN's offline weight reshuffle is
// defined *in terms of* this mapping: the 16-byte vector each thread loads
// must contain exactly its B-fragment weights for four separate 16x16
// weight blocks (paper §3.4).

#include <cstdint>

#include "util/error.hpp"

namespace marlin::layout {

struct Coord {
  int row = 0;
  int col = 0;
};

/// A operand (m16 x k16, FP16): 8 elements per thread, indices 0..7.
[[nodiscard]] constexpr Coord mma_a_coord(int lane, int idx) {
  const int group = lane >> 2;         // 0..7
  const int tig = lane & 3;            // thread-in-group 0..3
  const int row = group + ((idx & 2) ? 8 : 0);
  const int col = tig * 2 + (idx & 1) + ((idx & 4) ? 8 : 0);
  return {row, col};
}

/// B operand (k16 x n8, FP16): 4 elements per thread, indices 0..3.
[[nodiscard]] constexpr Coord mma_b_coord(int lane, int idx) {
  const int group = lane >> 2;
  const int tig = lane & 3;
  const int row = tig * 2 + (idx & 1) + ((idx & 2) ? 8 : 0);
  const int col = group;
  return {row, col};
}

/// C/D accumulator (m16 x n8, FP32): 4 elements per thread, indices 0..3.
[[nodiscard]] constexpr Coord mma_c_coord(int lane, int idx) {
  const int group = lane >> 2;
  const int tig = lane & 3;
  const int row = group + ((idx & 2) ? 8 : 0);
  const int col = tig * 2 + (idx & 1);
  return {row, col};
}

/// A 16x16 *weight* block feeds two k16n8 mma B-operands (n = 0..7 and
/// n = 8..15). Per thread that is 8 weights; logical order within the
/// thread's packed register: first the n8-block 0 fragment (idx 0..3), then
/// the n8-block 1 fragment (idx 0..3).
[[nodiscard]] constexpr Coord weight_block16_coord(int lane, int w) {
  MARLIN_ASSERT(w >= 0 && w < 8);
  const Coord c = mma_b_coord(lane, w & 3);
  return {c.row, c.col + ((w & 4) ? 8 : 0)};
}

}  // namespace marlin::layout
