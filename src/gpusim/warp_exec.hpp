#pragma once
// Warp-level tensor-core utilisation model (paper §3.4 "Warp Layout").
//
// An Ampere SM has four scheduler partitions, each with one tensor pipe.
// A warp working on an Mwa x Nwa output tile advances all of its
// accumulators by one k-step (k=16) per round, issuing
//   streams = ceil(Mwa/16) * ceil(Nwa/8)
// independent mma.sync ops. Ops in the *next* round depend on the same
// accumulators, so a warp alone can keep at most `streams` MMAs in flight.
// By Little's law the pipe saturates when
//   (warps per scheduler) * streams * issue_cycles >= latency_cycles.
// Narrow warp tiles (small Nwa) reduce `streams` and stall the pipe — this
// is exactly why MARLIN fixes the warp tile width at 64 and splits across
// K_sm instead (Figure 4 / Algorithm 1).
//
// Each mma also needs companion work (lop3 dequantisation of the next B
// fragment, ldmatrix for A, addressing) that issues on the scheduler's
// single dispatch port; with too few warps this dispatch stream cannot be
// hidden either.

#include "gpusim/device.hpp"

namespace marlin::gpusim {

struct WarpExecParams {
  int num_warps = 8;   // warps per SM working on the tile
  int warp_tile_m = 16;
  int warp_tile_n = 64;
  /// Tensor-pipe occupancy per mma.sync(m16n8k16), in cycles. Derived from
  /// the A10 peak: 125 TF / 1.695 GHz / 72 SMs = 1024 FLOP/cycle/SM =
  /// 256 FLOP/cycle/partition; one mma is 2048 FLOPs*2 = 4096... measured as
  /// 16 cycles of pipe occupancy per partition on GA10x.
  double mma_issue_cycles = 16.0;
  /// Dependent-use latency of mma accumulators (microbenchmarked ~24-32 on
  /// Ampere; Sun et al. 2022).
  double mma_latency_cycles = 24.0;
  /// Scheduler dispatch slots consumed per mma for companion instructions
  /// (dequant lop3s, shared loads, address bookkeeping).
  double aux_dispatch_per_mma = 6.0;
};

/// Fraction of tensor-core peak sustainable with this configuration, in
/// (0, 1]. Monotone non-decreasing in num_warps and warp_tile_n.
[[nodiscard]] double tensor_core_utilization(const DeviceSpec& d,
                                             const WarpExecParams& p);

}  // namespace marlin::gpusim
