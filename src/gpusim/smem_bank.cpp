#include "gpusim/smem_bank.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "util/error.hpp"

namespace marlin::gpusim {

int phase_conflict_transactions(
    std::span<const std::uint64_t> byte_addresses) {
  // A 16-byte access touches 4 consecutive banks starting at (addr/4) % 32.
  // Hardware can broadcast identical chunks, so we count *distinct* chunk
  // addresses per starting bank.
  std::array<std::vector<std::uint64_t>, kNumBanks> per_bank;
  for (const std::uint64_t addr : byte_addresses) {
    MARLIN_CHECK(addr % 16 == 0, "16-byte accesses must be 16-byte aligned");
    const int bank = static_cast<int>((addr / kBankWidthBytes) % kNumBanks);
    auto& v = per_bank[bank];
    if (std::find(v.begin(), v.end(), addr) == v.end()) v.push_back(addr);
  }
  int worst = 1;
  for (const auto& v : per_bank) {
    worst = std::max(worst, static_cast<int>(v.size()));
  }
  return worst;
}

int warp_conflict_transactions(
    std::span<const std::uint64_t, 32> byte_addresses) {
  int worst = 1;
  for (int phase = 0; phase < 4; ++phase) {
    worst = std::max(
        worst, phase_conflict_transactions(
                   byte_addresses.subspan(static_cast<std::size_t>(phase) * 8,
                                          8)));
  }
  return worst;
}

}  // namespace marlin::gpusim
