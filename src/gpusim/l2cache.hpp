#pragma once
// Set-associative L2 cache simulator with the Ampere `evict_first` cache
// hint (paper §3.4 "Bound By Weight Loading"):
//
//   "every read will always be put into the L2 cache, potentially evicting
//    parts of A that are still needed by some SMs. To avoid such cache
//    pollution, we use the cp.async instruction with an evict_first
//    cache-hint."
//
// Lines fetched with kEvictFirst are inserted at the LRU end of their set,
// so the streaming B operand cannot displace the re-used A working set.
// The l2 tests replay exactly this access pattern and measure A's hit rate
// with and without the hint.

#include <cstdint>
#include <vector>

namespace marlin::gpusim {

enum class CacheHint {
  kNormal,      // insert at MRU (default allocation policy)
  kEvictFirst,  // insert at LRU — dropped before any other line
};

struct CacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  [[nodiscard]] double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total)
                     : 0.0;
  }
};

class L2Cache {
 public:
  L2Cache(std::int64_t size_bytes, int ways = 16, int line_bytes = 128);

  /// Access one byte address; fetches the whole line on miss. Returns true
  /// on hit. The hint applies to the *inserted* line on a miss (and
  /// refreshes position on hit only for kNormal).
  bool access(std::uint64_t addr, CacheHint hint = CacheHint::kNormal);

  /// Access a contiguous byte range (every covered line).
  void access_range(std::uint64_t addr, std::int64_t bytes, CacheHint hint);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] int num_sets() const { return num_sets_; }
  [[nodiscard]] int ways() const { return ways_; }
  [[nodiscard]] int line_bytes() const { return line_bytes_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    bool valid = false;
  };

  int ways_;
  int line_bytes_;
  int num_sets_;
  // sets_[set] holds `ways_` lines ordered MRU -> LRU.
  std::vector<std::vector<Line>> sets_;
  CacheStats stats_;
};

}  // namespace marlin::gpusim
