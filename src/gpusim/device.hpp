#pragma once
// Ampere-class device catalog.
//
// All numbers are *public* datasheet values (NVIDIA A10/A100 datasheets,
// GA102 whitepaper). They are the only calibration inputs of the timing
// model. Two sanity anchors from the paper: on A10 the FP16 tensor-core
// peak is 125 TFLOP/s at boost and 65.3 TFLOP/s at base clock, giving the
// 208.3 and 108.8 FLOP/byte ridge points drawn in paper Figure 11.

#include <string>
#include <vector>

namespace marlin::gpusim {

struct DeviceSpec {
  std::string name;
  int num_sms = 0;
  double base_clock_ghz = 0;
  double boost_clock_ghz = 0;
  double gmem_bandwidth_gbs = 0;  // GB/s (1e9 bytes)
  double l2_size_bytes = 0;
  double l2_bandwidth_gbs = 0;  // aggregate L2 read bandwidth
  double smem_per_sm_bytes = 0;
  /// Dense FP16 tensor-core peak with FP32 accumulate, at boost clock.
  double fp16_tc_tflops_boost = 0;
  /// FP32 FMA (CUDA core) peak at boost clock — comparator kernels that do
  /// their multiply-accumulate on CUDA cores are capped by this.
  double fp32_fma_tflops_boost = 0;
  /// 2:4 sparse tensor cores double MMA throughput on Ampere.
  double sparse_tc_multiplier = 2.0;
  /// Fixed host-side kernel launch latency.
  double kernel_launch_s = 5e-6;
  /// On-device memory capacity (GB, 1e9 bytes) — bounds the KV-cache block
  /// budget of the serving scheduler once weights are resident.
  double hbm_gb = 24.0;
  int warp_schedulers_per_sm = 4;
  /// Per-GPU interconnect used for tensor-parallel all-reduce and
  /// pipeline-parallel activation send/recv (NVLink or PCIe; bandwidth is
  /// the per-GPU aggregate, latency is one hop).
  std::string interconnect_name = "PCIe 4.0 x16";
  double interconnect_bandwidth_gbs = 32.0;  // PCIe 4.0 x16 default
  double interconnect_latency_s = 10e-6;
  [[nodiscard]] double interconnect_bytes_per_s() const {
    return interconnect_bandwidth_gbs * 1e9;
  }

  [[nodiscard]] double clock_ratio(double clock_ghz) const {
    return clock_ghz / boost_clock_ghz;
  }
  /// Tensor-core peak in FLOP/s at the given clock.
  [[nodiscard]] double tc_flops(double clock_ghz) const {
    return fp16_tc_tflops_boost * 1e12 * clock_ratio(clock_ghz);
  }
  [[nodiscard]] double fma_flops(double clock_ghz) const {
    return fp32_fma_tflops_boost * 1e12 * clock_ratio(clock_ghz);
  }
  [[nodiscard]] double gmem_bytes_per_s() const {
    return gmem_bandwidth_gbs * 1e9;
  }
  [[nodiscard]] double hbm_bytes() const { return hbm_gb * 1e9; }
  [[nodiscard]] double l2_bytes_per_s() const { return l2_bandwidth_gbs * 1e9; }
  /// FLOP-per-byte ridge point at the given clock (paper §3.1).
  [[nodiscard]] double flops_per_byte(double clock_ghz) const {
    return tc_flops(clock_ghz) / gmem_bytes_per_s();
  }
};

/// NVIDIA A10 (GA102, inference-optimised): 72 SMs, 600 GB/s GDDR6.
DeviceSpec a10();
/// NVIDIA A100 80GB SXM (GA100): 108 SMs, ~2 TB/s HBM2e, NVLink.
DeviceSpec a100_80g();
/// NVIDIA GeForce RTX 3090 (GA102): GeForce parts run FP16 tensor ops with
/// FP32 accumulate at half rate — 71 TFLOP/s.
DeviceSpec rtx3090();
/// NVIDIA RTX A6000 (GA102 workstation): full-rate TC, 768 GB/s.
DeviceSpec rtxa6000();

/// Lookup by case-insensitive name ("a10", "A100", ...). Throws if unknown.
DeviceSpec device_by_name(const std::string& name);
/// All catalog entries.
std::vector<DeviceSpec> all_devices();

}  // namespace marlin::gpusim
