#include "gpusim/l2cache.hpp"

#include "util/error.hpp"

namespace marlin::gpusim {

namespace {
[[nodiscard]] bool is_pow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }
}  // namespace

L2Cache::L2Cache(std::int64_t size_bytes, int ways, int line_bytes)
    : ways_(ways), line_bytes_(line_bytes) {
  MARLIN_CHECK(ways >= 1, "need at least one way");
  MARLIN_CHECK(is_pow2(line_bytes), "line size must be a power of two");
  const std::int64_t lines = size_bytes / line_bytes;
  MARLIN_CHECK(lines >= ways, "cache smaller than one set");
  num_sets_ = static_cast<int>(lines / ways);  // modulo indexing; any count
  sets_.assign(static_cast<std::size_t>(num_sets_),
               std::vector<Line>(static_cast<std::size_t>(ways_)));
}

bool L2Cache::access(std::uint64_t addr, CacheHint hint) {
  const std::uint64_t line_addr = addr / static_cast<std::uint64_t>(line_bytes_);
  const auto set_idx =
      static_cast<std::size_t>(line_addr % static_cast<std::uint64_t>(num_sets_));
  const std::uint64_t tag = line_addr / static_cast<std::uint64_t>(num_sets_);
  auto& set = sets_[set_idx];

  for (std::size_t i = 0; i < set.size(); ++i) {
    if (set[i].valid && set[i].tag == tag) {
      ++stats_.hits;
      if (hint == CacheHint::kNormal && i != 0) {
        // Move to MRU.
        const Line l = set[i];
        set.erase(set.begin() + static_cast<std::ptrdiff_t>(i));
        set.insert(set.begin(), l);
      }
      return true;
    }
  }

  ++stats_.misses;
  set.pop_back();  // evict LRU
  const Line l{tag, true};
  if (hint == CacheHint::kEvictFirst) {
    set.push_back(l);  // LRU position: first to go
  } else {
    set.insert(set.begin(), l);  // MRU
  }
  return false;
}

void L2Cache::access_range(std::uint64_t addr, std::int64_t bytes,
                           CacheHint hint) {
  const std::uint64_t first = addr / static_cast<std::uint64_t>(line_bytes_);
  const std::uint64_t last =
      (addr + static_cast<std::uint64_t>(bytes) - 1) /
      static_cast<std::uint64_t>(line_bytes_);
  for (std::uint64_t line = first; line <= last; ++line) {
    access(line * static_cast<std::uint64_t>(line_bytes_), hint);
  }
}

}  // namespace marlin::gpusim
