#include "gpusim/warp_exec.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace marlin::gpusim {

double tensor_core_utilization(const DeviceSpec& d, const WarpExecParams& p) {
  MARLIN_CHECK(p.num_warps >= 1, "need at least one warp");
  MARLIN_CHECK(p.warp_tile_m >= 1 && p.warp_tile_n >= 1, "bad warp tile");

  const int schedulers = d.warp_schedulers_per_sm;
  const double warps_per_sched =
      static_cast<double>(p.num_warps) / schedulers;

  const double m_blocks = std::ceil(p.warp_tile_m / 16.0);
  const double n_blocks = std::ceil(p.warp_tile_n / 8.0);
  const double streams = m_blocks * n_blocks;

  // (1) Dependency bound: in-flight MMAs available vs needed (Little's law).
  const double needed = p.mma_latency_cycles / p.mma_issue_cycles;
  const double available = std::max(1.0, warps_per_sched) * streams;
  const double dep_util = std::min(1.0, available / needed);

  // (2) Dispatch bound: per k-step and warp, the scheduler must issue
  // streams mma + streams*aux companion instructions, one per cycle, while
  // the tensor pipe is busy streams*issue cycles. With enough warps the
  // companion stream of one warp hides under the pipe-time of the others.
  const double pipe_cycles = streams * p.mma_issue_cycles;
  const double dispatch_cycles = streams * (1.0 + p.aux_dispatch_per_mma);
  const double busy_cycles =
      std::max(pipe_cycles,
               dispatch_cycles / std::max(1.0, warps_per_sched));
  const double dispatch_util = pipe_cycles / busy_cycles;

  return std::max(0.05, dep_util * dispatch_util);
}

}  // namespace marlin::gpusim
