#include "gpusim/pipeline.hpp"

#include <algorithm>
#include <vector>

#include "util/error.hpp"

namespace marlin::gpusim {

PipelineResult simulate_pipeline(const PipelineParams& p) {
  MARLIN_CHECK(p.depth >= 1, "pipeline depth must be >= 1");
  MARLIN_CHECK(p.num_tiles >= 0, "negative tile count");
  PipelineResult r;
  if (p.num_tiles == 0) return r;

  const int n = p.num_tiles;
  std::vector<double> compute_done(static_cast<std::size_t>(n), 0.0);

  double mem_free = 0.0;      // when the memory engine can start the next load
  double compute_free = 0.0;  // when the tensor cores finish the current tile

  for (int i = 0; i < n; ++i) {
    // Buffer slot for tile i frees once tile i-P finished computing.
    const double slot_free =
        (i >= p.depth) ? compute_done[static_cast<std::size_t>(i - p.depth)]
                       : 0.0;
    const double load_start = std::max(mem_free, slot_free);
    mem_free = load_start + p.tile_load_s;
    const double data_ready = mem_free + p.load_latency_s;

    const double compute_start = std::max(data_ready, compute_free);
    compute_free = compute_start + p.tile_compute_s;
    compute_done[static_cast<std::size_t>(i)] = compute_free;
  }

  r.total_s = compute_free;
  const double steady = std::max(p.tile_load_s, p.tile_compute_s);
  r.ideal_s = p.tile_load_s + p.load_latency_s +
              static_cast<double>(n - 1) * steady + p.tile_compute_s;
  r.stall_s = std::max(0.0, r.total_s - r.ideal_s);
  r.stall_fraction = r.total_s > 0 ? r.stall_s / r.total_s : 0.0;
  return r;
}

}  // namespace marlin::gpusim
