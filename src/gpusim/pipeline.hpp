#pragma once
// Discrete simulation of the cp.async multi-buffer software pipeline
// (paper §3.4 "Memory Load Pipelining", Figure 3).
//
// The kernel prefetches the tile used P-1 iterations ahead; one extra buffer
// holds the current tile. The simulation tracks the memory engine (tile
// transfers are serialised at streaming bandwidth, plus a fixed GMEM->SMEM
// latency) and the compute engine (one tile's worth of tensor-core math),
// with buffer recycling after compute completes. This yields both the total
// time and the stall fraction, which the pipeline-depth ablation sweeps.

namespace marlin::gpusim {

struct PipelineParams {
  int depth = 4;              // P: number of in-flight buffers
  int num_tiles = 0;          // tiles processed by one SM
  double tile_load_s = 0;     // bandwidth-limited transfer time per tile
  double load_latency_s = 0;  // fixed cp.async GMEM latency component
  double tile_compute_s = 0;  // tensor-core time per tile
};

struct PipelineResult {
  double total_s = 0;
  double ideal_s = 0;     // max(load, compute) steady state + first fill
  double stall_s = 0;     // total - ideal (>= 0)
  double stall_fraction = 0;
};

[[nodiscard]] PipelineResult simulate_pipeline(const PipelineParams& p);

}  // namespace marlin::gpusim
