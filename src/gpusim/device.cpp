#include "gpusim/device.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string_view>

#include "util/error.hpp"

namespace marlin::gpusim {

namespace {

/// Case-insensitive comparison without building lowered copies.
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Levenshtein distance, case-insensitive — cheap on the short catalog
/// names; drives the "did you mean" suggestion.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cur = row[j];
      const bool eq = std::tolower(static_cast<unsigned char>(a[i - 1])) ==
                      std::tolower(static_cast<unsigned char>(b[j - 1]));
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, prev + (eq ? 0 : 1)});
      prev = cur;
    }
  }
  return row[b.size()];
}

}  // namespace

DeviceSpec a10() {
  DeviceSpec d;
  d.name = "A10";
  d.num_sms = 72;
  d.base_clock_ghz = 0.885;
  d.boost_clock_ghz = 1.695;
  d.gmem_bandwidth_gbs = 600.0;
  d.hbm_gb = 24.0;
  d.l2_size_bytes = 6.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 1800.0;
  d.smem_per_sm_bytes = 100.0 * 1024;
  d.fp16_tc_tflops_boost = 125.0;  // -> 65.3 TF at 885 MHz base clock
  d.fp32_fma_tflops_boost = 31.2;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_bandwidth_gbs = 32.0;  // PCIe 4.0 x16
  return d;
}

DeviceSpec a100_80g() {
  DeviceSpec d;
  d.name = "A100";
  d.num_sms = 108;
  d.base_clock_ghz = 1.275;
  d.boost_clock_ghz = 1.410;
  d.gmem_bandwidth_gbs = 2039.0;
  d.hbm_gb = 80.0;
  d.l2_size_bytes = 40.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 4800.0;
  d.smem_per_sm_bytes = 164.0 * 1024;
  d.fp16_tc_tflops_boost = 312.0;
  d.fp32_fma_tflops_boost = 19.5;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_name = "NVLink 3";
  d.interconnect_bandwidth_gbs = 600.0;
  d.interconnect_latency_s = 6e-6;
  return d;
}

DeviceSpec rtx3090() {
  DeviceSpec d;
  d.name = "RTX3090";
  d.num_sms = 82;
  d.base_clock_ghz = 1.395;
  d.boost_clock_ghz = 1.695;
  d.gmem_bandwidth_gbs = 936.0;
  d.hbm_gb = 24.0;
  d.l2_size_bytes = 6.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 2300.0;
  d.smem_per_sm_bytes = 100.0 * 1024;
  d.fp16_tc_tflops_boost = 71.0;  // GeForce: half-rate FP32 accumulate
  d.fp32_fma_tflops_boost = 35.6;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_bandwidth_gbs = 32.0;
  return d;
}

DeviceSpec rtxa6000() {
  DeviceSpec d;
  d.name = "RTXA6000";
  d.num_sms = 84;
  d.base_clock_ghz = 1.455;
  d.boost_clock_ghz = 1.800;
  d.gmem_bandwidth_gbs = 768.0;
  d.hbm_gb = 48.0;
  d.l2_size_bytes = 6.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 2000.0;
  d.smem_per_sm_bytes = 100.0 * 1024;
  d.fp16_tc_tflops_boost = 154.8;
  d.fp32_fma_tflops_boost = 38.7;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_name = "NVLink bridge / PCIe 4.0";
  d.interconnect_bandwidth_gbs = 56.2;  // NVLink bridge pairs / PCIe mix
  return d;
}

std::vector<DeviceSpec> all_devices() {
  return {a10(), rtx3090(), rtxa6000(), a100_80g()};
}

DeviceSpec device_by_name(const std::string& name) {
  static const std::vector<DeviceSpec> catalog = all_devices();
  for (const auto& d : catalog) {
    if (iequals(d.name, name)) return d;
  }
  const DeviceSpec* closest = nullptr;
  // Suggest only plausible typos: at most half the request may differ.
  std::size_t best = name.size() / 2 + 1;
  std::ostringstream known;
  for (const auto& d : catalog) {
    if (&d != &catalog.front()) known << ", ";
    known << d.name;
    const std::size_t dist = edit_distance(d.name, name);
    if (dist < best) {
      best = dist;
      closest = &d;
    }
  }
  MARLIN_CHECK(false, "unknown device `"
                          << name << "`"
                          << (closest != nullptr
                                  ? "; did you mean `" + closest->name + "`?"
                                  : "")
                          << " known: " << known.str());
  return {};  // unreachable
}

}  // namespace marlin::gpusim
