#include "gpusim/device.hpp"

#include <algorithm>
#include <cctype>

#include "util/error.hpp"

namespace marlin::gpusim {

DeviceSpec a10() {
  DeviceSpec d;
  d.name = "A10";
  d.num_sms = 72;
  d.base_clock_ghz = 0.885;
  d.boost_clock_ghz = 1.695;
  d.gmem_bandwidth_gbs = 600.0;
  d.l2_size_bytes = 6.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 1800.0;
  d.smem_per_sm_bytes = 100.0 * 1024;
  d.fp16_tc_tflops_boost = 125.0;  // -> 65.3 TF at 885 MHz base clock
  d.fp32_fma_tflops_boost = 31.2;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_bandwidth_gbs = 32.0;  // PCIe 4.0 x16
  return d;
}

DeviceSpec a100_80g() {
  DeviceSpec d;
  d.name = "A100";
  d.num_sms = 108;
  d.base_clock_ghz = 1.275;
  d.boost_clock_ghz = 1.410;
  d.gmem_bandwidth_gbs = 2039.0;
  d.l2_size_bytes = 40.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 4800.0;
  d.smem_per_sm_bytes = 164.0 * 1024;
  d.fp16_tc_tflops_boost = 312.0;
  d.fp32_fma_tflops_boost = 19.5;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_bandwidth_gbs = 600.0;  // NVLink 3
  d.interconnect_latency_s = 6e-6;
  return d;
}

DeviceSpec rtx3090() {
  DeviceSpec d;
  d.name = "RTX3090";
  d.num_sms = 82;
  d.base_clock_ghz = 1.395;
  d.boost_clock_ghz = 1.695;
  d.gmem_bandwidth_gbs = 936.0;
  d.l2_size_bytes = 6.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 2300.0;
  d.smem_per_sm_bytes = 100.0 * 1024;
  d.fp16_tc_tflops_boost = 71.0;  // GeForce: half-rate FP32 accumulate
  d.fp32_fma_tflops_boost = 35.6;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_bandwidth_gbs = 32.0;
  return d;
}

DeviceSpec rtxa6000() {
  DeviceSpec d;
  d.name = "RTXA6000";
  d.num_sms = 84;
  d.base_clock_ghz = 1.455;
  d.boost_clock_ghz = 1.800;
  d.gmem_bandwidth_gbs = 768.0;
  d.l2_size_bytes = 6.0 * 1024 * 1024;
  d.l2_bandwidth_gbs = 2000.0;
  d.smem_per_sm_bytes = 100.0 * 1024;
  d.fp16_tc_tflops_boost = 154.8;
  d.fp32_fma_tflops_boost = 38.7;
  d.kernel_launch_s = 2.5e-6;
  d.interconnect_bandwidth_gbs = 56.2;  // NVLink bridge pairs / PCIe mix
  return d;
}

std::vector<DeviceSpec> all_devices() {
  return {a10(), rtx3090(), rtxa6000(), a100_80g()};
}

DeviceSpec device_by_name(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (const auto& d : all_devices()) {
    std::string dl(d.name);
    std::transform(dl.begin(), dl.end(), dl.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (dl == lower) return d;
  }
  MARLIN_CHECK(false, "unknown device `" << name
                                         << "`; known: A10, RTX3090, "
                                            "RTXA6000, A100");
  return {};  // unreachable
}

}  // namespace marlin::gpusim
