#pragma once
// Roofline helpers (paper Figure 11).

#include <algorithm>

#include "gpusim/device.hpp"

namespace marlin::gpusim {

/// Attainable FLOP/s at a given arithmetic intensity and clock:
/// min(peak_flops(clock), intensity * GMEM bandwidth).
[[nodiscard]] inline double roofline_attainable_flops(const DeviceSpec& d,
                                                      double clock_ghz,
                                                      double intensity) {
  return std::min(d.tc_flops(clock_ghz), intensity * d.gmem_bytes_per_s());
}

/// Intensity of the memory/compute ridge point at a given clock.
[[nodiscard]] inline double roofline_ridge_intensity(const DeviceSpec& d,
                                                     double clock_ghz) {
  return d.flops_per_byte(clock_ghz);
}

}  // namespace marlin::gpusim
