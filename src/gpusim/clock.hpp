#pragma once
// Clock / thermal model.
//
// Paper Figures 10/11/13 distinguish three regimes: boost clock (short
// bursts), locked base clock (production "sustained" setting), and
// automatic thermal throttling under long compute-heavy kernels (the
// "Thermal Throttling" band of Figure 11, where measured FLOP/s decay from
// the boost-clock roof towards the base-clock roof).

#include "gpusim/device.hpp"

namespace marlin::gpusim {

enum class ClockMode {
  kBoost,        // short benchmark bursts, no throttling
  kLockedBase,   // `nvidia-smi -lgc` style locked base clock
  kAutoThermal,  // boost that decays under sustained compute load
};

struct ClockModel {
  ClockMode mode = ClockMode::kBoost;

  /// Thermal decay parameters for kAutoThermal: the clock approaches base
  /// as accumulated compute-energy (utilisation-weighted busy seconds)
  /// exceeds the thermal budget. Values chosen to move the knee of the
  /// decay to kernels in the multi-millisecond range, as observed in paper
  /// Figure 11 for large matrices at large batch.
  double thermal_budget_s = 2e-3;
  double thermal_decay_s = 8e-3;

  /// Effective SM clock for a kernel that keeps tensor pipes busy for
  /// `compute_busy_s` seconds (utilisation-weighted).
  [[nodiscard]] double effective_clock_ghz(const DeviceSpec& d,
                                           double compute_busy_s) const {
    switch (mode) {
      case ClockMode::kBoost:
        return d.boost_clock_ghz;
      case ClockMode::kLockedBase:
        return d.base_clock_ghz;
      case ClockMode::kAutoThermal: {
        if (compute_busy_s <= thermal_budget_s) return d.boost_clock_ghz;
        const double over = compute_busy_s - thermal_budget_s;
        const double f = over / (over + thermal_decay_s);  // in [0, 1)
        return d.boost_clock_ghz - f * (d.boost_clock_ghz - d.base_clock_ghz);
      }
    }
    return d.boost_clock_ghz;
  }
};

}  // namespace marlin::gpusim
