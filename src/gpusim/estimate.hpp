#pragma once
// Common result type for all kernel timing models (MARLIN, Sparse-MARLIN,
// FP16 baseline, comparator kernels). Carries enough detail to drive both
// the speedup figures and the roofline plot.

#include "gpusim/memory.hpp"

namespace marlin::gpusim {

struct TimeBreakdown {
  double mem_s = 0;            // GMEM streaming
  double l2_s = 0;             // L2-served re-reads (A tiles)
  double compute_s = 0;        // tensor-core / CUDA-core math
  double dequant_s = 0;        // non-overlapped dequantisation (baselines)
  double reduce_s = 0;         // global partial-result reduction
  double pipeline_fill_s = 0;  // software pipeline warm-up
  double launch_s = 0;         // kernel launch
};

struct KernelEstimate {
  double seconds = 0;
  TimeBreakdown breakdown;
  double useful_flops = 0;  // 2*M*K*N
  TrafficCounters traffic;
  double effective_clock_ghz = 0;

  [[nodiscard]] double achieved_tflops() const {
    return seconds > 0 ? useful_flops / seconds / 1e12 : 0.0;
  }
  /// FLOPs per byte of GMEM traffic — x-axis of the roofline plot.
  [[nodiscard]] double arithmetic_intensity() const {
    const double bytes = static_cast<double>(traffic.gmem_total());
    return bytes > 0 ? useful_flops / bytes : 0.0;
  }
};

}  // namespace marlin::gpusim
