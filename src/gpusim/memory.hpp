#pragma once
// Memory hierarchy traffic accounting and bandwidth timing.
//
// The functional kernels record the bytes they move at each level into
// TrafficCounters; the timing layer prices those bytes with the device
// bandwidths. L2 residency of the activation operand A — the paper's key
// Eq. (1) condition — is checked explicitly.

#include <cstdint>

#include "gpusim/device.hpp"

namespace marlin::gpusim {

struct TrafficCounters {
  std::int64_t gmem_read_bytes = 0;
  std::int64_t gmem_write_bytes = 0;
  std::int64_t l2_read_bytes = 0;   // reads served by L2 (incl. GMEM fills)
  std::int64_t smem_read_bytes = 0;
  std::int64_t smem_write_bytes = 0;

  TrafficCounters& operator+=(const TrafficCounters& o) {
    gmem_read_bytes += o.gmem_read_bytes;
    gmem_write_bytes += o.gmem_write_bytes;
    l2_read_bytes += o.l2_read_bytes;
    smem_read_bytes += o.smem_read_bytes;
    smem_write_bytes += o.smem_write_bytes;
    return *this;
  }
  [[nodiscard]] std::int64_t gmem_total() const {
    return gmem_read_bytes + gmem_write_bytes;
  }
};

/// Paper Eq. (1): global loading of A-blocks stays hidden behind the B
/// stream as long as reading both A_sm and B_sm from L2 is faster than
/// reading B_sm from GMEM:
///   (2*M*K_sm + 0.5*K_sm*N_sm) / B_l2  <  (0.5*K_sm*N_sm) / B_gl
[[nodiscard]] inline bool a_loads_hidden_by_l2(const DeviceSpec& d, double m,
                                               double k_sm, double n_sm) {
  const double lhs = (2.0 * m * k_sm + 0.5 * k_sm * n_sm) / d.l2_bytes_per_s();
  const double rhs = (0.5 * k_sm * n_sm) / d.gmem_bytes_per_s();
  return lhs < rhs;
}

/// Time to stream `bytes` from GMEM at efficiency `eff` (fraction of peak).
[[nodiscard]] inline double gmem_time_s(const DeviceSpec& d, double bytes,
                                        double eff) {
  return bytes / (d.gmem_bytes_per_s() * eff);
}

[[nodiscard]] inline double l2_time_s(const DeviceSpec& d, double bytes,
                                      double eff) {
  return bytes / (d.l2_bytes_per_s() * eff);
}

}  // namespace marlin::gpusim
