#pragma once
// Shared-memory bank conflict model.
//
// Ampere shared memory has 32 banks of 4-byte words. A warp-wide access is
// split into phases; for 128-bit (16-byte) per-thread accesses the hardware
// issues 4 phases of 8 threads each. Within one phase, the number of
// serialised transactions equals the maximum number of *distinct* 16-byte
// chunks that fall into the same bank group. The MARLIN shared-memory
// layout for A (the i(i XOR j) swizzle, paper §3.4) is designed so that
// both the ldmatrix reads and the cp.async writes are conflict-free; the
// layout tests verify this against this model.

#include <cstdint>
#include <span>

namespace marlin::gpusim {

inline constexpr int kNumBanks = 32;
inline constexpr int kBankWidthBytes = 4;

/// Number of serialised transactions for one phase of 16-byte accesses.
/// `byte_addresses` holds the base address of each thread's 16-byte access.
/// Conflict-free == 1.
[[nodiscard]] int phase_conflict_transactions(
    std::span<const std::uint64_t> byte_addresses);

/// Full warp access of 32 threads x 16 bytes, split into 4 phases of 8
/// threads (hardware order: threads 0-7, 8-15, 16-23, 24-31). Returns the
/// *maximum* transactions over phases; 1 means the whole access is
/// conflict-free.
[[nodiscard]] int warp_conflict_transactions(
    std::span<const std::uint64_t, 32> byte_addresses);

}  // namespace marlin::gpusim
