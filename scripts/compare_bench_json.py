#!/usr/bin/env python3
"""Compare two checked-in bench perf records for regressions.

Each PR regenerates ``BENCH_<pr>.json`` at the repository root via the
``bench-json`` build target (one ``{bench, wall_s, points, threads,
simd}`` record per golden bench). This script diffs two of those files —
by default the two newest by PR number — and fails when

  * a bench present in the old file is missing from the new one
    (coverage regressed), unless ``--allow-missing``;
  * a matched bench (same ``bench`` name and ``simd`` level) got slower
    by more than the tolerance.

Wall-clocks are machine-dependent, so the tolerance is deliberately
loose: a run only counts as a regression when it is BOTH ``--tolerance``
(fractional, default 0.60 = 60%) slower AND at least ``--min-delta-s``
(default 0.05 s) slower in absolute terms — sub-tenth-of-a-second jitter
on tiny benches never trips the gate. On a pinned CI runner the
tolerance can be tightened with ``--tolerance 0.25`` or similar.

Usage:
  compare_bench_json.py OLD.json NEW.json [options]
  compare_bench_json.py [--root DIR] [options]   # auto-pick two newest

Exit status: 0 = no regressions, 1 = regressions or malformed input.
"""

import argparse
import glob
import json
import os
import re
import sys


def load_records(path):
    """Returns {(bench, simd): record} for the JSON array in ``path``."""
    with open(path, encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ValueError(f"{os.path.basename(path)}: expected a JSON array")
    records = {}
    for i, rec in enumerate(data):
        if not isinstance(rec, dict):
            raise ValueError(f"{os.path.basename(path)}[{i}]: not an object")
        bench = rec.get("bench")
        wall = rec.get("wall_s")
        if not isinstance(bench, str) or not bench:
            raise ValueError(
                f"{os.path.basename(path)}[{i}]: missing `bench`")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool):
            raise ValueError(
                f"{os.path.basename(path)}[{i}]: missing `wall_s`")
        # Older files (pre PR 7) carry no `simd` key; match them to the
        # empty level so the series stays comparable across that change.
        key = (bench, rec.get("simd", ""))
        records[key] = rec
    return records


def newest_two(root):
    """The two highest-numbered BENCH_<n>.json under ``root``."""
    numbered = []
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if m:
            numbered.append((int(m.group(1)), path))
    numbered.sort()
    if len(numbered) < 2:
        return None
    return numbered[-2][1], numbered[-1][1]


def main():
    parser = argparse.ArgumentParser(
        description="diff two BENCH_*.json perf records for regressions")
    parser.add_argument("old", nargs="?", help="baseline BENCH_*.json")
    parser.add_argument("new", nargs="?", help="candidate BENCH_*.json")
    parser.add_argument("--root", default=".",
                        help="repo root for auto-discovery when OLD/NEW "
                             "are omitted (default: .)")
    parser.add_argument("--tolerance", type=float, default=0.60,
                        help="fractional slowdown that counts as a "
                             "regression (default 0.60)")
    parser.add_argument("--min-delta-s", type=float, default=0.05,
                        help="absolute slowdown floor in seconds; smaller "
                             "deltas never regress (default 0.05)")
    parser.add_argument("--allow-missing", action="store_true",
                        help="don't fail when a bench disappears from the "
                             "new file")
    args = parser.parse_args()

    if (args.old is None) != (args.new is None):
        parser.error("pass both OLD and NEW, or neither")
    if args.old is None:
        pair = newest_two(os.path.abspath(args.root))
        if pair is None:
            # A repo with a single BENCH_*.json (first PR with the gate)
            # has no baseline yet; that is not a failure.
            print(f"fewer than two BENCH_*.json under {args.root}; "
                  "nothing to compare")
            return 0
        old_path, new_path = pair
    else:
        old_path, new_path = args.old, args.new

    try:
        old = load_records(old_path)
        new = load_records(new_path)
    except (OSError, ValueError, json.JSONDecodeError) as err:
        print(f"compare_bench_json: {err}")
        return 1

    old_name = os.path.basename(old_path)
    new_name = os.path.basename(new_path)
    failures = []
    compared = 0
    matched = set()
    for key, old_rec in sorted(old.items()):
        bench, simd = key
        label = f"{bench}" + (f" [{simd}]" if simd else "")
        new_rec = new.get(key)
        if new_rec is not None:
            matched.add(key)
        elif simd == "":
            # Schema bridge: records predating the `simd` key (pre PR 7)
            # match a new record of the same bench when it is unambiguous.
            candidates = [k for k in new if k[0] == bench]
            if len(candidates) == 1:
                matched.add(candidates[0])
                new_rec = new[candidates[0]]
        if new_rec is None:
            if not args.allow_missing:
                failures.append(f"{label}: in {old_name} but missing from "
                                f"{new_name}")
            continue
        compared += 1
        old_wall = float(old_rec["wall_s"])
        new_wall = float(new_rec["wall_s"])
        delta = new_wall - old_wall
        limit = old_wall * args.tolerance
        if delta > args.min_delta_s and delta > limit:
            failures.append(
                f"{label}: {old_wall:.3f} s -> {new_wall:.3f} s "
                f"(+{delta:.3f} s, +{delta / old_wall * 100.0:.0f}%; "
                f"tolerance {args.tolerance * 100.0:.0f}% and "
                f"{args.min_delta_s:.3f} s)")
        else:
            print(f"  ok {label}: {old_wall:.3f} s -> {new_wall:.3f} s")
    for key in sorted(set(new) - set(old) - matched):
        bench, simd = key
        print(f"  new {bench}" + (f" [{simd}]" if simd else ""))

    if failures:
        print(f"{len(failures)} perf-trajectory problem(s) "
              f"({old_name} -> {new_name}):")
        for f in failures:
            print(" ", f)
        return 1
    print(f"compared {compared} bench record(s) ({old_name} -> {new_name}): "
          "no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
