#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace emitted by ``--trace-out``.

The serving benches write Chrome trace-event JSON (``obs::TraceRecorder``,
loadable at https://ui.perfetto.dev). This check keeps the emitted stream
structurally sound:

  * the file parses and carries a ``traceEvents`` array;
  * every event has ``name``/``ph``/``pid``/``tid``/``ts`` with a known
    phase (B E X i C M) and a finite non-negative timestamp;
  * per (pid, tid) track, timestamps are non-decreasing in file order
    (metadata excluded) — the recorder's determinism contract;
  * B/E spans balance per track with matching names (LIFO nesting), and
    no span is left open at the end;
  * X events carry a non-negative ``dur``; instants carry scope ``t``.

Usage:  check_trace_json.py TRACE.json [--min-events N]
Exit status: 0 = trace is well-formed, 1 = problems found.
"""

import argparse
import json
import math
import sys

KNOWN_PHASES = {"B", "E", "X", "i", "C", "M"}


def main():
    parser = argparse.ArgumentParser(
        description="validate a --trace-out Chrome trace-event file")
    parser.add_argument("trace", help="trace JSON written by --trace-out")
    parser.add_argument("--min-events", type=int, default=1,
                        help="fail when fewer non-metadata events than this "
                             "(default 1)")
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"check_trace_json: {err}")
        return 1

    events = data.get("traceEvents") if isinstance(data, dict) else None
    if not isinstance(events, list):
        print("check_trace_json: no `traceEvents` array")
        return 1

    failures = []
    last_ts = {}      # (pid, tid) -> last event timestamp on the track
    open_spans = {}   # (pid, tid) -> stack of open B-span names
    counted = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            failures.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        ph = ev.get("ph")
        pid = ev.get("pid")
        tid = ev.get("tid")
        ts = ev.get("ts")
        if not isinstance(name, str) or not name:
            failures.append(f"{where}: missing `name`")
            continue
        if ph not in KNOWN_PHASES:
            failures.append(f"{where} ({name}): unknown phase {ph!r}")
            continue
        if not isinstance(pid, int) or not isinstance(tid, int):
            failures.append(f"{where} ({name}): non-integer pid/tid")
            continue
        if (not isinstance(ts, (int, float)) or isinstance(ts, bool)
                or not math.isfinite(ts) or ts < 0):
            failures.append(f"{where} ({name}): bad ts {ts!r}")
            continue
        if ph == "M":
            continue  # metadata names tracks; it carries no timeline
        counted += 1
        track = (pid, tid)
        if ts < last_ts.get(track, 0.0):
            failures.append(
                f"{where} ({name}): ts {ts} goes backwards on track "
                f"pid={pid} tid={tid} (last {last_ts[track]})")
        last_ts[track] = ts
        if ph == "B":
            open_spans.setdefault(track, []).append(name)
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                failures.append(
                    f"{where} ({name}): E without open B on track "
                    f"pid={pid} tid={tid}")
            elif stack[-1] != name:
                failures.append(
                    f"{where}: E `{name}` does not match open B "
                    f"`{stack[-1]}` on track pid={pid} tid={tid}")
            else:
                stack.pop()
        elif ph == "X":
            dur = ev.get("dur")
            if (not isinstance(dur, (int, float)) or isinstance(dur, bool)
                    or not math.isfinite(dur) or dur < 0):
                failures.append(f"{where} ({name}): X without valid `dur`")
        elif ph == "i":
            if ev.get("s") != "t":
                failures.append(
                    f"{where} ({name}): instant without scope `t`")

    for (pid, tid), stack in sorted(open_spans.items()):
        for name in stack:
            failures.append(
                f"span `{name}` still open at end of trace on track "
                f"pid={pid} tid={tid}")
    if counted < args.min_events:
        failures.append(
            f"only {counted} non-metadata event(s); expected at least "
            f"{args.min_events}")

    if failures:
        print(f"{len(failures)} trace problem(s) in {args.trace}:")
        for f in failures[:50]:
            print(" ", f)
        if len(failures) > 50:
            print(f"  ... and {len(failures) - 50} more")
        return 1
    print(f"checked {args.trace}: {counted} events on {len(last_ts)} "
          "tracks, all well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
