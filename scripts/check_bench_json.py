#!/usr/bin/env python3
"""Fail when the checked-in bench perf records are missing or malformed.

The golden benches append one machine-readable record each when run with
``--bench-json FILE`` (see ``BenchJsonReporter`` in ``bench/common.hpp``);
the ``bench-json`` build target regenerates the checked-in ``BENCH_*.json``
at the repository root. This check keeps that artifact honest: the file
must exist, parse as a JSON array, and every record must carry

    bench    non-empty string, unique across the file
    wall_s   non-negative finite number
    points   positive integer
    threads  positive integer

Extra keys (e.g. ``simd``, the active dispatch level recorded since
PR 7) are tolerated so newer records can carry more context without
invalidating older BENCH_*.json files. Known optional keys are still
shape-checked when present:

    cache_hit_rate   number in [0, 1] (prefix-cache benches)
    blocks_saved     non-negative number (prefix-cache benches)
    transfer_s       non-negative number (disaggregated-serving benches)
    migrations       non-negative number (disaggregated-serving benches)

Wall-times are machine-dependent by design and are NOT compared — only
shape is validated, so the check is deterministic across hosts.

Usage:  check_bench_json.py [repo_root]
Exit status: 0 = every BENCH_*.json is well-formed, 1 = problems found.
"""

import glob
import json
import math
import os
import sys


def check_record(path: str, i: int, rec: object, failures: list) -> str:
    where = f"{os.path.basename(path)}[{i}]"
    if not isinstance(rec, dict):
        failures.append(f"{where}: record is not a JSON object")
        return ""
    bench = rec.get("bench")
    if not isinstance(bench, str) or not bench:
        failures.append(f"{where}: `bench` must be a non-empty string")
        bench = ""
    wall = rec.get("wall_s")
    if (not isinstance(wall, (int, float)) or isinstance(wall, bool)
            or not math.isfinite(wall) or wall < 0):
        failures.append(f"{where}: `wall_s` must be a non-negative number")
    for key in ("points", "threads"):
        val = rec.get(key)
        if not isinstance(val, int) or isinstance(val, bool) or val <= 0:
            failures.append(f"{where}: `{key}` must be a positive integer")
    # Optional keys are validated only when present.
    hit_rate = rec.get("cache_hit_rate")
    if hit_rate is not None and (
            not isinstance(hit_rate, (int, float)) or isinstance(hit_rate, bool)
            or not math.isfinite(hit_rate) or not 0.0 <= hit_rate <= 1.0):
        failures.append(f"{where}: `cache_hit_rate` must be in [0, 1]")
    for key in ("blocks_saved", "transfer_s", "migrations"):
        val = rec.get(key)
        if val is not None and (
                not isinstance(val, (int, float)) or isinstance(val, bool)
                or not math.isfinite(val) or val < 0):
            failures.append(f"{where}: `{key}` must be a non-negative "
                            "number")
    return bench


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print(f"no BENCH_*.json found under {root} — run "
              "`cmake --build <dir> --target bench-json` and commit the "
              "result")
        return 1

    failures = []
    records = 0
    for path in paths:
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            failures.append(f"{os.path.basename(path)}: {err}")
            continue
        if not isinstance(data, list) or not data:
            failures.append(
                f"{os.path.basename(path)}: expected a non-empty JSON array")
            continue
        seen = set()
        for i, rec in enumerate(data):
            bench = check_record(path, i, rec, failures)
            if bench in seen:
                failures.append(
                    f"{os.path.basename(path)}[{i}]: duplicate bench "
                    f"`{bench}`")
            seen.add(bench)
        records += len(data)

    if failures:
        print(f"{len(failures)} bench-json problem(s):")
        for f in failures:
            print(" ", f)
        return 1
    print(f"checked {len(paths)} bench-json file(s), {records} records: "
          "all well-formed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
