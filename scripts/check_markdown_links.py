#!/usr/bin/env python3
"""Fail on broken intra-repo markdown links.

Scans every tracked-looking ``*.md`` file under the repository root
(skipping build directories and ``.git``) for inline links and verifies
that relative targets exist on disk. External links (http/https/mailto)
are ignored — this is a fast, dependency-free, deterministic check meant
for CI and ``ctest -L docs``, not a crawler.

Anchors are validated only for same-file links (``#section``), by
slugifying the file's headings the way GitHub does.

Usage:  check_markdown_links.py [repo_root]
Exit status: 0 = all links resolve, 1 = at least one broken link.
"""

import os
import re
import sys

SKIP_DIRS = {".git", ".ccache", "node_modules"}
# [text](target) — skipping images is unnecessary; their paths must exist
# too. Nested parens in URLs are rare enough to ignore.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def heading_anchors(md_text: str) -> set:
    anchors = set()
    for line in md_text.splitlines():
        m = re.match(r"^#{1,6}\s+(.*)$", line)
        if not m:
            continue
        slug = m.group(1).strip().lower()
        slug = re.sub(r"[^\w\- ]", "", slug)
        slug = slug.replace(" ", "-")
        anchors.add(slug)
    return anchors


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = []
    md_files = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames
            if d not in SKIP_DIRS and not d.startswith("build")
        ]
        md_files.extend(
            os.path.join(dirpath, f) for f in filenames if f.endswith(".md"))

    for path in sorted(md_files):
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        anchors = None
        rel = os.path.relpath(path, root)
        for lineno, line in enumerate(text.splitlines(), start=1):
            for m in LINK_RE.finditer(line):
                target = m.group(1)
                if target.startswith(EXTERNAL):
                    continue
                if target.startswith("#"):
                    if anchors is None:
                        anchors = heading_anchors(text)
                    if target[1:].lower() not in anchors:
                        failures.append(
                            f"{rel}:{lineno}: missing anchor `{target}`")
                    continue
                file_part = target.split("#", 1)[0]
                if not file_part:
                    continue
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(resolved):
                    failures.append(
                        f"{rel}:{lineno}: broken link `{target}`")

    if failures:
        print(f"{len(failures)} broken markdown link(s):")
        for f in failures:
            print(" ", f)
        return 1
    print(f"checked {len(md_files)} markdown files: all intra-repo links "
          "resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
