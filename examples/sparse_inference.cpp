// Sparse inference walkthrough: SparseGPT-lite joint 2:4 pruning + INT4
// quantization, compression into the Sparse-MARLIN structures (paper
// Figures 7/8), functional verification, and the expected speedup uplift.
//
//   $ ./sparse_inference --k 256 --n 128    # --threads N parallelises

#include <iostream>

#include "common.hpp"
#include "baselines/kernel_model.hpp"
#include "core/sparse_kernel.hpp"
#include "eval/metrics.hpp"
#include "eval/synthetic.hpp"
#include "quant/gptq.hpp"
#include "sparse/compressed.hpp"
#include "sparse/sparsegpt.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(
      args, "sparse_inference",
      "joint 2:4 pruning + INT4 quantization walkthrough",
      {{"--k N", "reduction dim (default 256)"},
       {"--n N", "output dim (default 128)"},
       {"--m N", "batch (default 16)"}});
  const SimContext ctx = make_sim_context(args);
  const index_t k = args.get_int("k", 256);
  const index_t n = args.get_int("n", 128);
  const index_t m = args.get_int("m", 16);

  // 1. Joint 2:4 prune + quantize with Hessian-aware selection.
  const auto layer = eval::make_synthetic_layer(k, n, 3 * k, 777);
  quant::HessianAccumulator acc(k);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig cfg;
  cfg.quant.group_size = 64;
  const auto sg =
      sparse::sparsegpt_24_quantize(layer.w.view(), acc.hessian(), cfg);
  const double nmse = eval::layer_output_nmse(
      layer.w.view(), sg.weights.dequantize().view(), layer.calib.view());
  std::cout << "SparseGPT-lite 2:4 + INT4: layer output NMSE = "
            << format_double(nmse, 5) << "\n";

  // 2. Compress into the Sparse-MARLIN structures.
  const auto s24 = sparse::compress_24(sg.weights, sg.mask);
  std::cout << "compressed: " << s24.compressed_k() << "x" << n
            << " non-zero codes + " << k / 4 << "x" << n
            << " metadata nibbles = "
            << format_double(s24.bits_per_weight(), 3) << " bits/weight\n";

  // 3. Run the functional Sparse-MARLIN kernel (per-SM stripes on the
  //    context pool) and verify.
  Rng rng(3);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }
  core::KernelConfig kcfg;
  kcfg.n_sm_tile = std::min<index_t>(128, n);
  const auto res = core::sparse_marlin_matmul(a.view(), s24, kcfg, 8, ctx);
  const auto ref = core::reference_matmul(
      a.view(), sparse::decompress_24(s24).view(), ctx);
  double max_err = 0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      max_err = std::max(max_err,
                         static_cast<double>(std::abs(res.c(i, j).to_float() - ref(i, j))));
    }
  }
  std::cout << "functional Sparse-MARLIN max |err|: "
            << format_double(max_err, 4) << "\n\n";

  // 4. Projected uplift on an A10 at several batch sizes, fanned out per
  //    kernel model on the context.
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{gpusim::ClockMode::kBoost};
  std::vector<core::MatmulProblem> points;
  for (const index_t batch : {1, 16, 64, 128}) {
    points.push_back({batch, 18432, 73728, 128, false});
  }
  const auto tf = baselines::make_kernel_model("fp16")->estimate_sweep(
      ctx, points, d, clock);
  const auto tm = baselines::make_kernel_model("marlin")->estimate_sweep(
      ctx, points, d, clock);
  const auto ts =
      baselines::make_kernel_model("sparse-marlin")
          ->estimate_sweep(ctx, points, d, clock);
  Table table({"batch", "fp16", "marlin", "sparse-marlin",
               "sparse vs dense"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row({std::to_string(points[i].m),
                   format_seconds(tf[i].seconds),
                   format_seconds(tm[i].seconds),
                   format_seconds(ts[i].seconds),
                   format_double(tm[i].seconds / ts[i].seconds, 2)});
  }
  table.print(std::cout);
  return 0;
}
