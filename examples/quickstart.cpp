// Quickstart: quantize a weight matrix to the MARLIN format, run the
// functional MARLIN kernel, verify the result, and estimate the kernel's
// runtime on an NVIDIA A10.
//
//   $ ./quickstart              # --threads N parallelises the simulator
//
// This walks the whole public API surface in ~60 lines:
//   quantize_rtn -> marlin_repack -> marlin_matmul -> marlin_estimate_auto.

#include <iostream>

#include "common.hpp"
#include "baselines/kernel_model.hpp"
#include "core/marlin_kernel.hpp"
#include "core/timing.hpp"
#include "layout/repack.hpp"
#include "quant/uniform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(
      args, "quickstart",
      "quantize one layer, run the kernel, check the output");
  const SimContext ctx = make_sim_context(args);
  const index_t m = 16, k = 512, n = 512;

  // 1. A random FP32 weight matrix and an FP16 activation batch.
  Rng rng(1234);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }

  // 2. Symmetric INT4 quantization with group-128 scales, then the offline
  //    repack into MARLIN's tile/fragment/interleave layout.
  quant::QuantConfig qcfg;
  qcfg.group_size = 128;
  const auto q = quant::quantize_rtn(w.view(), qcfg);
  const auto mw = layout::marlin_repack(q);
  std::cout << "quantized " << k << "x" << n << " to "
            << format_bytes(static_cast<double>(mw.weight_bytes())) << " + "
            << format_bytes(static_cast<double>(mw.scale_bytes()))
            << " of scales (" << format_double(q.bits_per_weight(), 3)
            << " bits/weight)\n";

  // 3. Run the functional kernel (the bit-faithful host simulation); the
  //    context fans the per-SM stripes out on its shared pool.
  const auto res = core::marlin_matmul(a.view(), mw, core::KernelConfig{},
                                       /*num_sms=*/8, ctx);

  // 4. Verify against an FP32 reference on the dequantised weights.
  const auto ref =
      core::reference_matmul(a.view(), q.dequantize().view(), ctx);
  double max_err = 0;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      max_err = std::max(max_err,
                         static_cast<double>(std::abs(res.c(i, j).to_float() - ref(i, j))));
    }
  }
  std::cout << "functional kernel max |err| vs FP32 reference: "
            << format_double(max_err, 4) << " (FP16 output rounding)\n";

  // 5. What would this cost on real hardware? Ask the timing model — here
  //    for a production-sized layer (a Llama-2-7B MLP projection).
  const core::MatmulProblem p{m, 4096, 2 * 11008, 128, false};
  const gpusim::ClockModel clock{gpusim::ClockMode::kBoost};
  const auto d = gpusim::a10();
  const auto est = core::marlin_estimate_auto(p, d, clock);
  const auto fp16 =
      baselines::make_kernel_model("fp16")->estimate(p, d, clock);
  std::cout << "A10 estimate for a 4096x22016 layer at batch " << m
            << ": MARLIN " << format_seconds(est.seconds) << " vs FP16 "
            << format_seconds(fp16.seconds) << " -> "
            << format_double(fp16.seconds / est.seconds, 2) << "x speedup\n";
  return 0;
}
