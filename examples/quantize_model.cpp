// Quantize a (synthetic) multi-layer model with GPTQ into the MARLIN
// format and report the quality/size trade-off per layer — the offline
// pipeline a deployment would run once per checkpoint. Layers are
// independent, so `--threads N` quantizes them concurrently on the
// SimContext pool (per-layer seeds keep the report deterministic).
//
//   $ ./quantize_model --layers 4 --k 512 --n 256 --group 128 --clip

#include <iostream>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "eval/synthetic.hpp"
#include "layout/repack.hpp"
#include "quant/gptq.hpp"
#include "quant/uniform.hpp"
#include "util/cli.hpp"
#include "util/sim_context.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(
      args, "quantize_model",
      "GPTQ-quantize a synthetic model, report quality and size",
      {{"--layers N", "layer count (default 4)"},
       {"--k N", "reduction dim (default 512)"},
       {"--n N", "output dim (default 256)"},
       {"--tokens N", "calibration tokens (default 2*k)"},
       {"--group N", "quantization group size (default 128)"},
       {"--clip", "clip-search the quantization grid (default on)"}});
  const SimContext ctx = make_sim_context(args);
  const index_t layers = args.get_int("layers", 4);
  const index_t k = args.get_int("k", 512);
  const index_t n = args.get_int("n", 256);
  const index_t tokens = args.get_int("tokens", 2 * k);

  quant::GptqConfig cfg;
  cfg.quant.group_size = args.get_int("group", 128);
  cfg.quant.clip_search = args.get_bool("clip", true);

  std::cout << "GPTQ-quantizing " << layers << " synthetic layers of " << k
            << "x" << n << " (group " << cfg.quant.group_size
            << ", clip search " << (cfg.quant.clip_search ? "on" : "off")
            << ")\n\n";

  struct LayerReport {
    std::vector<std::string> row;
    double bytes = 0;
  };
  std::vector<LayerReport> reports(static_cast<std::size_t>(layers));
  ctx.parallel_for(0, layers, [&](std::int64_t l) {
    const auto layer =
        eval::make_synthetic_layer(k, n, tokens, 9000 + 17 * l);

    // Variable-length calibration sequences (paper §3.5 (b)).
    quant::HessianAccumulator acc(k);
    index_t row = 0;
    Rng rng(l + 1);
    while (row < tokens) {
      const index_t len =
          std::min<index_t>(tokens - row,
                            16 + static_cast<index_t>(rng.uniform_int(64)));
      acc.add_sequence(layer.calib.view().block(row, 0, len, k));
      row += len;
    }

    const auto gptq = quant::gptq_quantize(layer.w.view(), acc, cfg);
    const auto rtn = quant::quantize_rtn(layer.w.view(), cfg.quant);
    const double e_gptq = eval::layer_output_nmse(
        layer.w.view(), gptq.weights.dequantize().view(),
        layer.calib.view());
    const double e_rtn = eval::layer_output_nmse(
        layer.w.view(), rtn.dequantize().view(), layer.calib.view());

    const auto mw = layout::marlin_repack(gptq.weights);
    const double bytes =
        static_cast<double>(mw.weight_bytes() + mw.scale_bytes());

    auto& report = reports[static_cast<std::size_t>(l)];
    report.bytes = bytes;
    report.row = {"layer_" + std::to_string(l), format_double(e_rtn, 5),
                  format_double(e_gptq, 5),
                  format_double(e_gptq / e_rtn, 2),
                  format_double(gptq.weights.bits_per_weight(), 3),
                  format_bytes(bytes)};
  });

  Table table({"layer", "RTN nmse", "GPTQ nmse", "GPTQ/RTN", "bits/weight",
               "packed size"});
  double total_bytes = 0;
  const double fp16_bytes = 2.0 * static_cast<double>(layers) *
                            static_cast<double>(k) * static_cast<double>(n);
  for (const auto& report : reports) {
    table.add_row(report.row);
    total_bytes += report.bytes;
  }
  table.print(std::cout);
  std::cout << "\nmodel size: " << format_bytes(total_bytes) << " vs "
            << format_bytes(fp16_bytes) << " FP16 ("
            << format_double(fp16_bytes / total_bytes, 2)
            << "x compression)\n";
  return 0;
}
