// Layer benchmark explorer: estimate any kernel on any layer shape and GPU.
//
//   $ ./layer_benchmark --device a10 --k 18432 --n 73728 --m 16
//   $ ./layer_benchmark --device a100 --model llama-2-7b --m 32 --base-clock
//
// With --model, every linear layer of one transformer block is shown;
// otherwise the explicit --k/--n shape is used. `--threads N` fans the
// per-kernel estimates out on the SimContext pool.

#include <iostream>

#include "common.hpp"
#include "baselines/kernel_model.hpp"
#include "serve/model_config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(
      args, "layer_benchmark",
      "estimate any kernel on any layer shape and GPU",
      {{"--device D", "GPU (default a10)"},
       {"--m N", "batch (default 16)"},
       {"--group N", "quantization group size (default 128)"},
       {"--base-clock", "lock to base clocks instead of thermal model"},
       {"--model M", "use a real model's layer shapes instead of --k/--n"},
       {"--k N", "custom reduction dim (default 18432)"},
       {"--n N", "custom output dim (default 73728)"}});
  const SimContext ctx = make_sim_context(args);
  const auto device = gpusim::device_by_name(
      args.get_string("device", "a10"));
  const index_t m = args.get_int("m", 16);
  const index_t group = args.get_int("group", 128);
  const gpusim::ClockModel clock{args.get_bool("base-clock", false)
                                     ? gpusim::ClockMode::kLockedBase
                                     : gpusim::ClockMode::kBoost};

  std::vector<serve::LayerShape> shapes;
  if (args.has("model")) {
    const auto model = serve::model_by_name(args.get_string("model", ""));
    shapes = serve::block_linear_layers(model);
    std::cout << "layers of one " << model.name << " block, batch " << m
              << ", " << device.name << "\n\n";
  } else {
    shapes.push_back({"custom", args.get_int("k", 18432),
                      args.get_int("n", 73728)});
    std::cout << "custom layer, batch " << m << ", " << device.name
              << "\n\n";
  }

  const std::vector<std::string> kernels{"fp16",      "marlin",
                                         "sparse-marlin", "torch-int4",
                                         "exllamav2", "awq", "bitsandbytes"};
  std::vector<core::MatmulProblem> points;
  points.reserve(shapes.size());
  for (const auto& shape : shapes) {
    points.push_back({m, shape.k, shape.n, group, false});
  }

  // One estimate sweep per kernel, each fanned out over the layer shapes.
  std::vector<std::vector<gpusim::KernelEstimate>> by_kernel(kernels.size());
  ctx.parallel_for(0, static_cast<std::int64_t>(kernels.size()),
                   [&](std::int64_t ki) {
                     const auto model = baselines::make_kernel_model(
                         kernels[static_cast<std::size_t>(ki)]);
                     by_kernel[static_cast<std::size_t>(ki)] =
                         model->estimate_sweep(ctx, points, device, clock);
                   });

  Table table({"layer", "kernel", "time", "TFLOP/s", "GB moved",
               "speedup vs fp16"});
  for (std::size_t si = 0; si < shapes.size(); ++si) {
    const double t_fp16 = by_kernel[0][si].seconds;
    for (std::size_t ki = 0; ki < kernels.size(); ++ki) {
      const auto& est = by_kernel[ki][si];
      table.add_row(
          {shapes[si].name + " " + std::to_string(shapes[si].k) + "x" +
               std::to_string(shapes[si].n),
           kernels[ki], format_seconds(est.seconds),
           format_double(est.achieved_tflops(), 1),
           format_double(static_cast<double>(est.traffic.gmem_total()) / 1e9,
                         2),
           format_double(t_fp16 / est.seconds, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
