// Serving simulation: a vLLM-style server under trace-driven client load,
// comparing weight formats — the paper's §5.2 client-count experiment as a
// runnable tool, now on top of the request-level scheduler subsystem
// (paged KV cache, admission policies, preemption). The three engine
// simulations run concurrently under `--threads N` (fixed seed keeps the
// table deterministic).
//
//   $ ./serving_simulation --model llama-2-7b --device rtxa6000 --qps 5
//   $ ./serving_simulation --model llama-2-70b --device a100 --tp 4 --pp 2
//   $ ./serving_simulation --workload sharegpt --policy sjf --kv-blocks 256
//
// `--tp/--pp/--microbatches` shard the model across a tensor/pipeline-
// parallel rank grid (per-rank workers, interconnect-priced all-reduce and
// activation send/recv); `--gpus` is the legacy single-model weight split
// and cannot be combined with them.

#include <iostream>

#include "common.hpp"
#include "serve/parallel/parallel_engine.hpp"
#include "serve/server_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  namespace sched = serve::sched;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(
      args, "serving_simulation",
      "trace-driven serving comparison of weight formats (FP16 / MARLIN / "
      "Sparse-MARLIN) on the request-level scheduler",
      {{"--model M", "target model (default llama-2-7b)"},
       {"--device D", "GPU (default rtxa6000)"},
       {"--gpus N", "legacy single-model weight split (default 1; exclusive "
                    "with --tp/--pp)"},
       {"--qps Q", "mean arrival rate (default 2.5)"},
       {"--duration S", "arrival window seconds (default 120)"},
       {"--input-tokens N", "prompt tokens (default 64)"},
       {"--output-tokens N", "output tokens (default 64)"},
       {"--seed S", "workload-trace seed (default 42)"},
       {"--workload W", "arrival shape: poisson | bursty | sharegpt"},
       {"--policy P", "admission policy: fcfs | sjf | max-util | wfq"},
       {"--kv-blocks N", "KV budget in blocks (-1 = derive from HBM, 0 = "
                         "unlimited)"},
       {"--kv-block-size N", "tokens per KV block (default 16)"},
       {"--prefill-chunk N", "per-sequence prefill chunk tokens (0 = whole "
                             "prompt)"},
       {"--prefix-cache", "enable the hashed prefix cache"},
       {"--prefix-cache-blocks N",
        "cap on evicted-but-cached blocks kept for reuse (0 = no cap)"},
       {"--shared-prefix-tokens N",
        "shared system-prompt length prepended to tagged prompts (0 = "
        "off)"},
       {"--shared-prefix-groups N", "distinct shared headers (default 1)"},
       {"--shared-prefix-share F",
        "fraction of requests carrying a shared header (default 1.0)"},
       {"--sampling-n N", "parallel-sampling width per request (default 1)"},
       {"--tp N", "tensor-parallel degree (default 1)"},
       {"--pp N", "pipeline-parallel degree (default 1)"},
       {"--microbatches N", "pipeline microbatches (0 = one per stage)"},
       {"--comm-buckets N", "all-reduce chunks overlapped with the next "
                            "block's compute (default 1 = serialized)"},
       {"--tenants N", "split traffic over N equal-weight tenants (pair "
                       "with --policy wfq)"},
       {"--spec-depth D", "speculative draft tokens per round (0 = off)"},
       {"--spec-accept A", "per-token draft acceptance (default 0.7)"},
       {"--draft-model M", "draft model (default tinyllama-1.1b)"},
       {"--replicas N", "engine replicas behind the router (default 1)"},
       {"--placement P", "replica placement: round-robin | least-loaded | "
                         "session-affinity"},
       {"--prefill-replicas N",
        "disaggregated pools: prefill-role replicas (pair with "
        "--decode-replicas; overrides --replicas)"},
       {"--decode-replicas N",
        "disaggregated pools: decode-role replicas fed by KV migration"},
       {"--ttft-slo MS", "TTFT deadline ms (shed-on-hopeless; 0 = off)"},
       {"--tpot-slo MS", "TPOT deadline ms (violation accounting; 0 = off)"},
       {"--autoscale", "enable the trace-driven autoscaler"},
       {"--autoscale-max N", "autoscaler replica ceiling (default 8)"},
       {"--trace-out FILE",
        "write a Chrome/Perfetto trace of a serial re-run of this exact "
        "config (MARLIN engine)"},
       {"--metrics-out FILE",
        "write the Prometheus-style metrics exposition of the same run"}});
  const SimContext ctx = make_sim_context(args);
  const bench::ServeCliOptions cli = bench::parse_serve_cli(args, 2.5, 120.0);
  serve::EngineConfig ecfg;
  ecfg.model = serve::model_by_name(
      args.get_string("model", "llama-2-7b"));
  ecfg.gpu = gpusim::device_by_name(args.get_string("device", "rtxa6000"));
  ecfg.num_gpus = static_cast<int>(args.get_int("gpus", 1));

  serve::ServingConfig scfg;
  scfg.qps = cli.qps;
  scfg.duration_s = cli.duration_s;
  scfg.input_tokens = args.get_int("input-tokens", 64);
  scfg.output_tokens = args.get_int("output-tokens", 64);
  scfg.seed = cli.seed;
  cli.apply_prefix_cache(scfg);
  scfg.shape = cli.workload;
  scfg.policy = cli.policy;
  // --kv-blocks: -1 derives the budget from the device HBM next to the
  // weights (per-rank aware under --tp/--pp); 0 keeps it unlimited; any
  // positive count is used as-is.
  scfg.kv_blocks = args.get_int("kv-blocks", 0);
  scfg.kv_block_size = args.get_int("kv-block-size", 16);
  scfg.prefill_chunk_tokens = args.get_int("prefill-chunk", 0);
  scfg.shared_prefix_tokens = args.get_int("shared-prefix-tokens", 0);
  scfg.shared_prefix_groups = args.get_int("shared-prefix-groups", 1);
  scfg.shared_prefix_share = args.get_double("shared-prefix-share", 1.0);
  scfg.sampling_n = args.get_int("sampling-n", 1);
  scfg.parallel.tensor_parallel = static_cast<int>(args.get_int("tp", 1));
  scfg.parallel.pipeline_parallel = static_cast<int>(args.get_int("pp", 1));
  scfg.parallel.microbatches =
      static_cast<int>(args.get_int("microbatches", 0));
  scfg.parallel.comm_buckets =
      static_cast<int>(args.get_int("comm-buckets", 1));
  scfg.parallel.validate();
  // --tenants N: N equal-weight, equal-share tenants — enough to exercise
  // the multi-tenant machinery (see bench_serve_multitenant for tiered
  // mixes with quotas).
  const index_t tenants = args.get_int("tenants", 0);
  for (index_t t = 0; t < tenants; ++t) {
    sched::TenantSpec spec;
    spec.id = t;
    spec.name = "tenant" + std::to_string(t);
    scfg.tenants.push_back(spec);
  }
  scfg.speculation.depth = args.get_int("spec-depth", 0);
  scfg.speculation.acceptance = args.get_double("spec-accept", 0.7);
  if (args.has("draft-model")) {
    scfg.draft_model =
        serve::model_by_name(args.get_string("draft-model", ""));
  }
  // Cluster shape: replicas behind the router, streaming SLOs, autoscaler.
  // The defaults (1 replica, no SLO) are exactly the legacy single-engine
  // simulation.
  scfg.cluster.replicas = args.get_int("replicas", 1);
  scfg.cluster.placement = serve::cluster::placement_by_name(
      args.get_string("placement", "round-robin"));
  scfg.slo.ttft_deadline_ms = args.get_double("ttft-slo", 0.0);
  scfg.slo.tpot_deadline_ms = args.get_double("tpot-slo", 0.0);
  scfg.cluster.autoscaler.enabled = args.get_bool("autoscale", false);
  scfg.cluster.autoscaler.max_replicas = args.get_int("autoscale-max", 8);
  // Disaggregated pools: --prefill-replicas/--decode-replicas size the
  // fleet directly (KV pricing and the transfer link derive from the
  // engine and device inside simulate_cluster_detailed).
  if (args.has("prefill-replicas") || args.has("decode-replicas")) {
    scfg.cluster.disagg.enabled = true;
    scfg.cluster.disagg.prefill_replicas = args.get_int("prefill-replicas", 1);
    scfg.cluster.disagg.decode_replicas = args.get_int("decode-replicas", 1);
  }

  const int world = scfg.parallel.world_size();
  std::cout << ecfg.model.name << " on "
            << (scfg.parallel.trivial() ? ecfg.num_gpus : world) << "x "
            << ecfg.gpu.name;
  if (!scfg.parallel.trivial()) {
    std::cout << " (" << scfg.parallel.to_string() << ", "
              << ecfg.gpu.interconnect_name << ")";
  }
  std::cout << ", " << scfg.qps << " QPS " << sched::to_string(scfg.shape)
            << ", " << scfg.input_tokens << " in / " << scfg.output_tokens
            << " out, policy " << sched::to_string(scfg.policy);
  if (!scfg.tenants.empty()) {
    std::cout << ", " << scfg.tenants.size() << " tenants";
  }
  if (scfg.speculation.enabled()) {
    std::cout << ", speculative depth " << scfg.speculation.depth
              << " (accept "
              << format_double(scfg.speculation.acceptance, 2) << ", draft "
              << (scfg.draft_model.name.empty()
                      ? serve::tinyllama_1_1b().name  // server_sim's default
                      : scfg.draft_model.name)
              << ")";
  }
  const bool clustered = scfg.cluster.replicas > 1 ||
                         scfg.cluster.autoscaler.enabled ||
                         scfg.cluster.disagg.enabled || scfg.slo.enabled();
  if (clustered) {
    if (scfg.cluster.disagg.enabled) {
      std::cout << ", pools " << scfg.cluster.disagg.prefill_replicas
                << " prefill + " << scfg.cluster.disagg.decode_replicas
                << " decode";
    } else {
      std::cout << ", " << scfg.cluster.replicas << " replicas ("
                << serve::cluster::to_string(scfg.cluster.placement) << ")";
    }
    if (scfg.cluster.autoscaler.enabled) {
      std::cout << ", autoscale<=" << scfg.cluster.autoscaler.max_replicas;
    }
    if (scfg.slo.enabled()) {
      std::cout << ", SLO " << scfg.slo.ttft_deadline_ms << "/"
                << scfg.slo.tpot_deadline_ms << " ms";
    }
  }
  std::cout << "\n\n";

  const std::vector<serve::WeightFormat> formats{
      serve::WeightFormat::kFp16, serve::WeightFormat::kMarlin,
      serve::WeightFormat::kSparseMarlin};
  std::vector<std::vector<std::string>> rows(formats.size());
  std::vector<std::string> cluster_rows(formats.size());
  ctx.parallel_for(0, static_cast<std::int64_t>(formats.size()),
                   [&](std::int64_t i) {
                     auto cfg = ecfg;
                     cfg.format = formats[static_cast<std::size_t>(i)];
                     const serve::Engine engine(cfg);
                     const auto cs =
                         serve::simulate_cluster_detailed(engine, scfg);
                     const auto& st = cs.sched;
                     const auto& m = st.metrics;
                     if (clustered) {
                       std::ostringstream cl;
                       cl << serve::to_string(cfg.format) << ": peak "
                          << cs.peak_replicas << " replicas (+"
                          << cs.replicas_added << "/-" << cs.replicas_drained
                          << " scaled), shed " << st.shed
                          << ", TTFT viol " << st.slo_ttft_violations
                          << ", TPOT viol " << st.slo_tpot_violations;
                       if (cs.migrations > 0) {
                         cl << ", migrations " << cs.migrations << " ("
                            << format_bytes(cs.transfer_bytes) << " in "
                            << format_double(cs.transfer_seconds, 3) << " s)";
                       }
                       cluster_rows[static_cast<std::size_t>(i)] = cl.str();
                     }
                     double weights_per_gpu = engine.weight_bytes_per_gpu();
                     if (!scfg.parallel.trivial()) {
                       weights_per_gpu =
                           serve::parallel::ParallelEngine(engine,
                                                           scfg.parallel)
                               .max_weight_shard_bytes();
                     }
                     rows[static_cast<std::size_t>(i)] = {
                         serve::to_string(cfg.format),
                         format_double(m.mean_tpot_ms, 2),
                         format_double(m.p90_tpot_ms, 2),
                         format_double(m.mean_ttft_ms, 2),
                         format_double(m.p90_ttft_ms, 2),
                         format_double(m.mean_batch, 1),
                         std::to_string(m.completed),
                         std::to_string(st.preemptions),
                         format_bytes(weights_per_gpu)};
                   });

  Table table({"engine", "TPOT ms", "p90 TPOT", "TTFT ms", "p90 TTFT",
               "mean batch", "completed", "preempt", "weights/GPU"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  if (clustered) {
    std::cout << "\nCluster:\n";
    for (const auto& line : cluster_rows) std::cout << "  " << line << "\n";
  }

  // `--trace-out` / `--metrics-out`: record the exact configured run on
  // the MARLIN engine in one serial re-run.
  if (!cli.trace_out.empty() || !cli.metrics_out.empty()) {
    auto cfg = ecfg;
    cfg.format = serve::WeightFormat::kMarlin;
    const serve::Engine engine(cfg);
    bench::maybe_write_observation(cli, engine, scfg);
  }
  return 0;
}
