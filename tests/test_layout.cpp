// Layout library: mma fragment maps, the i(i^j) shared-memory swizzle
// (verified conflict-free against the bank model), ldmatrix addressing,
// and the MARLIN weight/scale repack round trip.

#include <gtest/gtest.h>

#include <set>

#include "gpusim/smem_bank.hpp"
#include "layout/fragment.hpp"
#include "layout/ldmatrix.hpp"
#include "layout/repack.hpp"
#include "layout/swizzle.hpp"
#include "quant/uniform.hpp"
#include "util/rng.hpp"

namespace marlin::layout {
namespace {

TEST(Fragment, ACoversAll256ElementsOnce) {
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < 32; ++lane) {
    for (int idx = 0; idx < 8; ++idx) {
      const Coord c = mma_a_coord(lane, idx);
      EXPECT_GE(c.row, 0);
      EXPECT_LT(c.row, 16);
      EXPECT_GE(c.col, 0);
      EXPECT_LT(c.col, 16);
      EXPECT_TRUE(seen.insert({c.row, c.col}).second)
          << "duplicate element (" << c.row << "," << c.col << ")";
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Fragment, BCoversK16N8Once) {
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < 32; ++lane) {
    for (int idx = 0; idx < 4; ++idx) {
      const Coord c = mma_b_coord(lane, idx);
      EXPECT_LT(c.row, 16);
      EXPECT_LT(c.col, 8);
      EXPECT_TRUE(seen.insert({c.row, c.col}).second);
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST(Fragment, CCoversM16N8Once) {
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < 32; ++lane) {
    for (int idx = 0; idx < 4; ++idx) {
      const Coord c = mma_c_coord(lane, idx);
      EXPECT_LT(c.row, 16);
      EXPECT_LT(c.col, 8);
      EXPECT_TRUE(seen.insert({c.row, c.col}).second);
    }
  }
  EXPECT_EQ(seen.size(), 128u);
}

TEST(Fragment, WeightBlock16CoversAll256Once) {
  // The per-thread 8 weights of a 16x16 block (two n8 mma operands).
  std::set<std::pair<int, int>> seen;
  for (int lane = 0; lane < 32; ++lane) {
    for (int w = 0; w < 8; ++w) {
      const Coord c = weight_block16_coord(lane, w);
      EXPECT_LT(c.row, 16);
      EXPECT_LT(c.col, 16);
      EXPECT_TRUE(seen.insert({c.row, c.col}).second);
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(Swizzle, IsAPermutationPerRowGroup) {
  // For any power-of-two row count <= vectors_per_row, each row maps its
  // vector columns to a permutation (no two logical vectors collide).
  const int vpr = 8;
  std::set<std::uint64_t> offsets;
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < vpr; ++c) {
      EXPECT_TRUE(offsets.insert(swizzled_offset_bytes(r, c, vpr)).second);
    }
  }
  EXPECT_EQ(offsets.size(), 16u * 8u);
}

TEST(Swizzle, LdmatrixConflictFreeWhereLinearIsNot) {
  // ldmatrix of a 16x16 A block: with the swizzle, all four 8-thread
  // phases are conflict-free; the linear layout conflicts badly (8 rows
  // x same vector column all hit one bank group).
  for (int block_vcol = 0; block_vcol < 4; ++block_vcol) {
    const auto sw = ldmatrix_x4_addresses(0, block_vcol, 8, true);
    const auto lin = ldmatrix_x4_addresses(0, block_vcol, 8, false);
    EXPECT_EQ(gpusim::warp_conflict_transactions(sw), 1)
        << "swizzled ldmatrix must be conflict-free, vcol=" << block_vcol;
    EXPECT_GT(gpusim::warp_conflict_transactions(lin), 1)
        << "linear layout must conflict (sanity of the bank model)";
  }
}

TEST(Swizzle, StoreOfContiguousRowsConflictFree) {
  // cp.async writes of a warp (contiguous logical vectors) must also be
  // conflict-free under the swizzle — the undocumented property §3.4 notes.
  for (int row0 = 0; row0 < 16; row0 += 4) {
    const auto sw = smem_store_addresses(row0, 8, true);
    EXPECT_EQ(gpusim::warp_conflict_transactions(sw), 1) << "row0=" << row0;
  }
}

TEST(Swizzle, StorePreservesContiguousFootprint) {
  // A warp writing 4 rows x 8 vectors lands on exactly that 512-byte
  // region, merely permuted ("written permuted but still overall
  // contiguously").
  const auto sw = smem_store_addresses(4, 8, true);
  std::set<std::uint64_t> got(sw.begin(), sw.end());
  std::set<std::uint64_t> want;
  for (int i = 0; i < 32; ++i) {
    want.insert(static_cast<std::uint64_t>(4 * 8 * 16 + i * 16));
  }
  EXPECT_EQ(got, want);
}

TEST(ScalePerm, IsAPermutation) {
  const auto perm = scale_chunk_perm();
  std::set<int> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(ScalePerm, ThreadGroupScalesAreContiguous) {
  // Thread-group tg covers original columns tg + 8*m; packed positions
  // tg*8..tg*8+7 — one 16-byte vector per thread group.
  const auto perm = scale_chunk_perm();
  for (int tg = 0; tg < 8; ++tg) {
    for (int m = 0; m < 8; ++m) {
      EXPECT_EQ(perm[static_cast<std::size_t>(tg * 8 + m)], m * 8 + tg);
    }
  }
}

quant::QuantizedWeights random_qweights(index_t k, index_t n, index_t group,
                                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  quant::QuantConfig cfg;
  cfg.group_size = group;
  return quant::quantize_rtn(w.view(), cfg);
}

struct RepackCase {
  index_t k, n, group;
};

class RepackRoundTrip : public ::testing::TestWithParam<RepackCase> {};

TEST_P(RepackRoundTrip, UnpackEqualsDirectDequant) {
  const auto [k, n, group] = GetParam();
  const auto q = random_qweights(k, n, group, 1000 + k + n);
  const MarlinWeights mw = marlin_repack(q);
  const Matrix<float> direct = q.dequantize();
  const Matrix<float> viapack = marlin_unpack_dequant(mw);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_EQ(direct(i, j), viapack(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, RepackRoundTrip,
    ::testing::Values(RepackCase{64, 64, 64}, RepackCase{128, 64, 128},
                      RepackCase{64, 128, quant::kPerColumn},
                      RepackCase{192, 256, 64}, RepackCase{128, 192, 32}));

TEST(Repack, PackedSizeIsHalfByteGranular) {
  const auto q = random_qweights(128, 128, 64, 9);
  const MarlinWeights mw = marlin_repack(q);
  EXPECT_EQ(mw.weight_bytes(), 128 * 128 / 2);
  EXPECT_EQ(mw.scale_bytes(), (128 / 64) * 128 * 2);
}

TEST(Repack, EachThreadVectorIsContiguous16Bytes) {
  // Stream layout: the 4 uint32 of (slab, chunk, lane) must be adjacent.
  const auto q = random_qweights(64, 64, 64, 10);
  const MarlinWeights mw = marlin_repack(q);
  for (int lane = 0; lane < 32; ++lane) {
    const auto base = mw.packed_index(0, 0, lane, 0);
    for (int b = 1; b < 4; ++b) {
      EXPECT_EQ(mw.packed_index(0, 0, lane, b), base + static_cast<std::size_t>(b));
    }
  }
}

TEST(Repack, RejectsMisalignedShapes) {
  EXPECT_THROW(marlin_repack(random_qweights(60, 64, 60, 1)), marlin::Error);
  EXPECT_THROW(marlin_repack(random_qweights(64, 60, 64, 1)), marlin::Error);
}

}  // namespace
}  // namespace marlin::layout
