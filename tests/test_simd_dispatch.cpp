// Runtime SIMD dispatch (util/cpuid.hpp + util/simd_ops.hpp): level
// selection precedence, known answers of the op tables against the quant/
// reference implementations, the bit-identity contract across every level
// this host supports (levels the host lacks are skipped gracefully), an
// end-to-end pipeline identity check, and the zero-allocation contract of
// the serving steady-state decode tick.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include "core/marlin_kernel.hpp"
#include "layout/repack.hpp"
#include "quant/dequant_trick.hpp"
#include "quant/linalg.hpp"
#include "quant/pack.hpp"
#include "quant/uniform.hpp"
#include "serve/server_sim.hpp"
#include "util/cpuid.hpp"
#include "util/half.hpp"
#include "util/rng.hpp"
#include "util/simd_ops.hpp"

// ------------------------------------------------------------------------
// Counting global allocator: every replaceable operator new in this test
// binary bumps one relaxed counter, so tests can assert that a code window
// performed zero heap allocations. Single-threaded tests read it exactly.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

std::uint64_t alloc_count() {
  return g_new_calls.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a =
      std::max(sizeof(void*), static_cast<std::size_t>(al));
  void* p = nullptr;
  if (posix_memalign(&p, a, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace marlin {
namespace {

constexpr std::array<simd::Level, 3> kAllLevels = {
    simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512};

/// Restores MARLIN_SIMD and drops any override/cached resolution on exit,
/// so tests may fiddle with the selection state freely.
class SimdStateGuard {
 public:
  SimdStateGuard() {
    if (const char* cur = std::getenv("MARLIN_SIMD")) {
      saved_ = cur;
      had_env_ = true;
    }
    simd::reset_level();
  }
  ~SimdStateGuard() {
    if (had_env_) {
      setenv("MARLIN_SIMD", saved_.c_str(), 1);
    } else {
      unsetenv("MARLIN_SIMD");
    }
    simd::reset_level();
  }

 private:
  std::string saved_;
  bool had_env_ = false;
};

// ------------------------------------------------------------- selection

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const simd::Level l : kAllLevels) {
    EXPECT_EQ(simd::level_by_name(simd::to_string(l)), l);
  }
  EXPECT_THROW((void)simd::level_by_name("neon"), Error);
  EXPECT_THROW((void)simd::level_by_name("AVX2"), Error);  // case-sensitive
  EXPECT_THROW((void)simd::level_by_name("auto"), Error);  // env-only token
}

TEST(SimdDispatch, SupportMonotoneAndClampedByBuild) {
  EXPECT_TRUE(simd::supported(simd::Level::kScalar));
  const simd::Level max = simd::max_supported_level();
  for (const simd::Level l : kAllLevels) {
    EXPECT_EQ(simd::supported(l),
              static_cast<int>(l) <= static_cast<int>(max));
  }
}

TEST(SimdDispatch, EnvUnsetEmptyOrAutoPickMax) {
  SimdStateGuard guard;
  unsetenv("MARLIN_SIMD");
  simd::reset_level();
  EXPECT_EQ(simd::active_level(), simd::max_supported_level());
  setenv("MARLIN_SIMD", "", 1);
  simd::reset_level();
  EXPECT_EQ(simd::active_level(), simd::max_supported_level());
  setenv("MARLIN_SIMD", "auto", 1);
  simd::reset_level();
  EXPECT_EQ(simd::active_level(), simd::max_supported_level());
}

TEST(SimdDispatch, SetLevelBeatsEnvAndResetRereadsIt) {
  SimdStateGuard guard;
  setenv("MARLIN_SIMD", "scalar", 1);
  simd::reset_level();
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);

  // An explicit override wins over the environment ...
  simd::set_level(simd::max_supported_level());
  EXPECT_EQ(simd::active_level(), simd::max_supported_level());
  EXPECT_EQ(simd::ops().level, simd::max_supported_level());

  // ... and dropping it re-reads MARLIN_SIMD.
  simd::reset_level();
  EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  EXPECT_EQ(simd::ops().level, simd::Level::kScalar);
}

TEST(SimdDispatch, UnknownOrUnsupportedRequestsThrow) {
  SimdStateGuard guard;
  setenv("MARLIN_SIMD", "sse9", 1);
  simd::reset_level();
  EXPECT_THROW((void)simd::active_level(), Error);

  const simd::Level max = simd::max_supported_level();
  for (const simd::Level l : kAllLevels) {
    if (simd::supported(l)) continue;
    EXPECT_THROW(simd::set_level(l), Error);
    setenv("MARLIN_SIMD", simd::to_string(l), 1);
    simd::reset_level();
    EXPECT_THROW((void)simd::active_level(), Error);
  }
  (void)max;
}

TEST(SimdDispatch, OpsForReportsItsLevelAndFallsBack) {
  EXPECT_EQ(simd::ops_for(simd::Level::kScalar).level, simd::Level::kScalar);
  for (const simd::Level l : kAllLevels) {
    const simd::Ops& t = simd::ops_for(l);
    if (simd::supported(l)) {
      EXPECT_EQ(t.level, l);
    } else {
      // Unsupported levels fall back to something at or below the request.
      EXPECT_LE(static_cast<int>(t.level), static_cast<int>(l));
    }
  }
}

// --------------------------------------------------------- known answers
//
// The scalar table is the reference the vector levels are compared to, so
// pin it against the quant/ module's own implementations first.

TEST(SimdKnownAnswer, PackMatchesQuantPack8) {
  Rng rng(11);
  for (const simd::Level l : kAllLevels) {
    if (!simd::supported(l)) continue;
    const simd::Ops& t = simd::ops_for(l);
    for (int rep = 0; rep < 200; ++rep) {
      std::array<std::uint8_t, 8> codes{};
      for (auto& c : codes) {
        c = static_cast<std::uint8_t>(rng.uniform_int(16));
      }
      std::uint32_t inter = 0, linear = 0;
      ASSERT_TRUE(t.pack_u4_interleaved(1, codes.data(), &inter));
      ASSERT_TRUE(t.pack_u4_linear(1, codes.data(), &linear));
      EXPECT_EQ(inter, quant::pack8_interleaved(codes));
      EXPECT_EQ(linear, quant::pack8_linear(codes));
    }
  }
}

TEST(SimdKnownAnswer, PackRejectsOutOfRangeCodes) {
  for (const simd::Level l : kAllLevels) {
    if (!simd::supported(l)) continue;
    const simd::Ops& t = simd::ops_for(l);
    // Bad codes both inside the vector body and in the scalar tail.
    for (const std::size_t bad : {std::size_t{0}, std::size_t{13},
                                  std::size_t{95}, std::size_t{98}}) {
      std::vector<std::uint8_t> codes(13 * 8, 7);
      codes[bad] = 16;
      std::vector<std::uint32_t> out(13);
      EXPECT_FALSE(t.pack_u4_interleaved(13, codes.data(), out.data()))
          << simd::to_string(l) << " bad index " << bad;
      EXPECT_FALSE(t.pack_u4_linear(13, codes.data(), out.data()));
    }
  }
}

TEST(SimdKnownAnswer, UnpackInvertsLinearPack) {
  Rng rng(12);
  for (const simd::Level l : kAllLevels) {
    if (!simd::supported(l)) continue;
    const simd::Ops& t = simd::ops_for(l);
    std::vector<std::uint8_t> codes(29 * 8);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.uniform_int(16));
    std::vector<std::uint32_t> packed(29);
    ASSERT_TRUE(t.pack_u4_linear(29, codes.data(), packed.data()));
    std::vector<std::uint8_t> back(29 * 8, 0xff);
    t.unpack_u4_linear(29, packed.data(), back.data());
    EXPECT_EQ(back, codes);
  }
}

TEST(SimdKnownAnswer, DequantPlanesMatchDequant8) {
  // Plane p of register r holds (float)((r >> 4p) & 0xF) - 8, which for
  // the interleaved layout means logical weight i of quant::dequant8 sits
  // on plane kInterleaveNibbleOfLogical[i] — the exact relation the
  // kernel's weight-block assembly relies on.
  Rng rng(13);
  const std::size_t nregs = 21;
  std::vector<std::uint32_t> regs(nregs);
  for (auto& r : regs) {
    r = static_cast<std::uint32_t>(rng.next_u64());
  }
  for (const simd::Level l : kAllLevels) {
    if (!simd::supported(l)) continue;
    const simd::Ops& t = simd::ops_for(l);
    std::vector<float> planes(8 * nregs);
    t.dequant_u4_planes(nregs, regs.data(), planes.data());
    for (std::size_t r = 0; r < nregs; ++r) {
      const auto vals = quant::dequant8(regs[r]);
      for (int i = 0; i < 8; ++i) {
        const int p = quant::kInterleaveNibbleOfLogical[
            static_cast<std::size_t>(i)];
        EXPECT_EQ(planes[static_cast<std::size_t>(p) * nregs + r],
                  vals[static_cast<std::size_t>(i)].to_float())
            << simd::to_string(l) << " reg " << r << " weight " << i;
      }
    }
  }
}

TEST(SimdKnownAnswer, F16ToF32ExhaustiveOverAllPatterns) {
  // Every binary16 pattern except signalling NaNs (hardware conversions
  // quiet those; the library never constructs one — float_to_half_bits
  // always sets the quiet bit) must convert bit-identically to the
  // software reference, subnormals and quiet NaNs included.
  std::vector<std::uint16_t> in;
  in.reserve(1u << 16);
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const auto h = static_cast<std::uint16_t>(b);
    const bool snan =
        (h & 0x7c00u) == 0x7c00u && (h & 0x03ffu) != 0 && !(h & 0x0200u);
    if (!snan) in.push_back(h);
  }
  std::vector<float> ref(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    ref[i] = half_bits_to_float(in[i]);
  }
  for (const simd::Level l : kAllLevels) {
    if (!simd::supported(l)) continue;
    std::vector<float> out(in.size());
    simd::ops_for(l).f16_to_f32(in.size(), in.data(), out.data());
    EXPECT_EQ(std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)),
              0)
        << simd::to_string(l);
  }
}

TEST(SimdKnownAnswer, F32ToF16RoundsToNearestEven) {
  // Ties, overflow-to-inf, underflow-to-zero, subnormal halves, quiet
  // NaNs: the documented hard cases of IEEE RTNE conversion.
  const std::vector<float> in = {
      0.0f, -0.0f, 1.0f, -2.5f,
      1.0009765f,   // between 1.0 and 1.0 + 2^-10: rounds down (even)
      1.00098f,     // just above the tie: rounds up
      2049.0f,      // tie at 2048 + 1: rounds to even 2048
      2051.0f,      // tie: rounds to even 2052
      65504.0f,     // max finite half
      65520.0f,     // halfway to inf: rounds to inf
      65519.0f,     // just below: stays 65504
      1e6f, -1e38f,  // far overflow -> +/-inf
      5.9604645e-8f,   // half of the smallest subnormal: ties to zero
      6.0e-8f,         // just above: smallest subnormal
      6.1035156e-5f,   // smallest normal half
      3.0e-5f,         // subnormal range
      1e-40f,          // float subnormal -> zero
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
  };
  std::vector<std::uint16_t> ref(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    ref[i] = float_to_half_bits(in[i]);
  }
  for (const simd::Level l : kAllLevels) {
    if (!simd::supported(l)) continue;
    std::vector<std::uint16_t> out(in.size());
    simd::ops_for(l).f32_to_f16(in.size(), in.data(), out.data());
    EXPECT_EQ(out, ref) << simd::to_string(l);
  }
}

// ---------------------------------------------------------- bit identity
//
// Random data at awkward lengths (vector body + ragged tail), every
// supported level compared byte-for-byte against the scalar table.

constexpr std::array<std::size_t, 13> kSizes = {0, 1, 3, 7,  8,  9,  15,
                                                16, 17, 31, 33, 64, 67};

template <typename T>
void expect_bytes_eq(const std::vector<T>& got, const std::vector<T>& want,
                     simd::Level l, const char* what, std::size_t n) {
  ASSERT_EQ(got.size(), want.size());
  if (got.empty()) return;  // data() may be null; memcmp is nonnull
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(T)), 0)
      << what << " differs from scalar at level " << simd::to_string(l)
      << " (n=" << n << ")";
}

TEST(SimdBitIdentity, ElementwiseFloatKernels) {
  Rng rng(21);
  const simd::Ops& scalar = simd::ops_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    std::vector<float> x(n), y0(n);
    std::vector<double> d0(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<float>(rng.normal());
      y0[i] = static_cast<float>(rng.normal());
      d0[i] = rng.normal();
    }
    const float a = static_cast<float>(rng.normal());

    std::vector<float> axpy_ref = y0, add_ref = y0, mul_ref = y0;
    std::vector<double> dref = d0;
    scalar.axpy_f32(n, a, x.data(), axpy_ref.data());
    scalar.add_f32(n, x.data(), add_ref.data());
    scalar.mul_f32(n, x.data(), mul_ref.data());
    scalar.axpy_f32_f64(n, static_cast<double>(a), x.data(), dref.data());
    const float max_ref = scalar.max_abs_f32(n, x.data());

    for (const simd::Level l : kAllLevels) {
      if (l == simd::Level::kScalar || !simd::supported(l)) continue;
      const simd::Ops& t = simd::ops_for(l);
      std::vector<float> y = y0;
      std::vector<double> d = d0;
      t.axpy_f32(n, a, x.data(), y.data());
      expect_bytes_eq(y, axpy_ref, l, "axpy_f32", n);
      y = y0;
      t.add_f32(n, x.data(), y.data());
      expect_bytes_eq(y, add_ref, l, "add_f32", n);
      y = y0;
      t.mul_f32(n, x.data(), y.data());
      expect_bytes_eq(y, mul_ref, l, "mul_f32", n);
      t.axpy_f32_f64(n, static_cast<double>(a), x.data(), d.data());
      expect_bytes_eq(d, dref, l, "axpy_f32_f64", n);
      EXPECT_EQ(t.max_abs_f32(n, x.data()), max_ref)
          << "max_abs_f32 at " << simd::to_string(l) << " n=" << n;
    }
  }
}

TEST(SimdBitIdentity, HalfConversionKernels) {
  Rng rng(22);
  const simd::Ops& scalar = simd::ops_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    std::vector<float> f(n), v(n);
    std::vector<std::uint16_t> h0(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix magnitudes so subnormal halves and overflow both occur.
      f[i] = static_cast<float>(rng.normal() *
                                std::pow(10.0, rng.uniform(-8.0, 6.0)));
      v[i] = static_cast<float>(rng.normal());
      h0[i] = float_to_half_bits(static_cast<float>(rng.normal()));
    }
    std::vector<float> to_f32_ref(n);
    std::vector<std::uint16_t> to_f16_ref(n), accum_ref = h0;
    scalar.f16_to_f32(n, h0.data(), to_f32_ref.data());
    scalar.f32_to_f16(n, f.data(), to_f16_ref.data());
    scalar.f16_accum_f32(n, v.data(), accum_ref.data());

    for (const simd::Level l : kAllLevels) {
      if (l == simd::Level::kScalar || !simd::supported(l)) continue;
      const simd::Ops& t = simd::ops_for(l);
      std::vector<float> fo(n);
      t.f16_to_f32(n, h0.data(), fo.data());
      expect_bytes_eq(fo, to_f32_ref, l, "f16_to_f32", n);
      std::vector<std::uint16_t> ho(n);
      t.f32_to_f16(n, f.data(), ho.data());
      expect_bytes_eq(ho, to_f16_ref, l, "f32_to_f16", n);
      ho = h0;
      t.f16_accum_f32(n, v.data(), ho.data());
      expect_bytes_eq(ho, accum_ref, l, "f16_accum_f32", n);
    }
  }
}

TEST(SimdBitIdentity, PackUnpackDequantKernels) {
  Rng rng(23);
  const simd::Ops& scalar = simd::ops_for(simd::Level::kScalar);
  for (const std::size_t groups : kSizes) {
    std::vector<std::uint8_t> codes(groups * 8);
    for (auto& c : codes) c = static_cast<std::uint8_t>(rng.uniform_int(16));
    std::vector<std::uint32_t> inter_ref(groups), lin_ref(groups);
    ASSERT_TRUE(
        scalar.pack_u4_interleaved(groups, codes.data(), inter_ref.data()));
    ASSERT_TRUE(scalar.pack_u4_linear(groups, codes.data(), lin_ref.data()));
    std::vector<std::uint8_t> unpack_ref(groups * 8);
    scalar.unpack_u4_linear(groups, lin_ref.data(), unpack_ref.data());
    std::vector<float> planes_ref(8 * groups);
    scalar.dequant_u4_planes(groups, inter_ref.data(), planes_ref.data());

    for (const simd::Level l : kAllLevels) {
      if (l == simd::Level::kScalar || !simd::supported(l)) continue;
      const simd::Ops& t = simd::ops_for(l);
      std::vector<std::uint32_t> out(groups);
      ASSERT_TRUE(t.pack_u4_interleaved(groups, codes.data(), out.data()));
      expect_bytes_eq(out, inter_ref, l, "pack_u4_interleaved", groups);
      ASSERT_TRUE(t.pack_u4_linear(groups, codes.data(), out.data()));
      expect_bytes_eq(out, lin_ref, l, "pack_u4_linear", groups);
      std::vector<std::uint8_t> up(groups * 8);
      t.unpack_u4_linear(groups, lin_ref.data(), up.data());
      expect_bytes_eq(up, unpack_ref, l, "unpack_u4_linear", groups);
      std::vector<float> planes(8 * groups);
      t.dequant_u4_planes(groups, inter_ref.data(), planes.data());
      expect_bytes_eq(planes, planes_ref, l, "dequant_u4_planes", groups);
    }
  }
}

TEST(SimdBitIdentity, QuantizeKernels) {
  Rng rng(24);
  const simd::Ops& scalar = simd::ops_for(simd::Level::kScalar);
  for (const std::size_t n : kSizes) {
    std::vector<float> v(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Values straddling the clamp range and .5 rounding ties.
      v[i] = static_cast<float>(rng.normal(0.0, 6.0));
      if (rng.uniform() < 0.25) {
        v[i] = std::nearbyint(v[i]) + 0.5f;
      }
    }
    const float scale = 0.375f, zero = -1.25f;
    std::vector<int> q0(n);
    for (std::size_t i = 0; i < n; ++i) {
      q0[i] = static_cast<int>(rng.uniform_int(16));
    }
    for (const int bits : {2, 4, 8}) {
      std::vector<std::uint8_t> enc_ref(n);
      scalar.encode_symmetric(n, v.data(), scale, bits, enc_ref.data());
      for (const simd::Level l : kAllLevels) {
        if (l == simd::Level::kScalar || !simd::supported(l)) continue;
        std::vector<std::uint8_t> enc(n);
        simd::ops_for(l).encode_symmetric(n, v.data(), scale, bits,
                                          enc.data());
        expect_bytes_eq(enc, enc_ref, l, "encode_symmetric", n);
      }
    }
    std::vector<int> q_ref(n);
    std::vector<float> dq_ref(n);
    scalar.quantize_asym(n, v.data(), scale, zero, 15, q_ref.data());
    scalar.dequant_asym(n, q0.data(), scale, zero, dq_ref.data());
    for (const simd::Level l : kAllLevels) {
      if (l == simd::Level::kScalar || !simd::supported(l)) continue;
      const simd::Ops& t = simd::ops_for(l);
      std::vector<int> q(n);
      t.quantize_asym(n, v.data(), scale, zero, 15, q.data());
      expect_bytes_eq(q, q_ref, l, "quantize_asym", n);
      std::vector<float> dq(n);
      t.dequant_asym(n, q0.data(), scale, zero, dq.data());
      expect_bytes_eq(dq, dq_ref, l, "dequant_asym", n);
    }
  }
}

// ------------------------------------------------------------ end to end
//
// The whole host pipeline — RTN quantization, MARLIN repack, functional
// kernel, FP32 reference GEMM and the GPTQ gram matrix — must produce
// byte-identical artifacts under every dispatch level.

struct PipelineArtifacts {
  quant::QuantizedWeights q;
  layout::MarlinWeights mw;
  Matrix<Half> c;
  Matrix<float> ref;
  Matrix<double> gram;
};

PipelineArtifacts run_pipeline() {
  const index_t m = 5, k = 64, n = 128;
  Rng rng(31);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  Matrix<Half> a(m, k);
  Matrix<float> af(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      af(i, j) = static_cast<float>(rng.normal());
      a(i, j) = Half(af(i, j));
    }
  }
  PipelineArtifacts out;
  quant::QuantConfig qcfg;
  qcfg.group_size = 32;
  qcfg.clip_search = true;  // exercises max_abs + encode search loops
  out.q = quant::quantize_rtn(w.view(), qcfg);
  out.mw = layout::marlin_repack(out.q);
  core::KernelConfig kcfg;
  kcfg.n_sm_tile = 64;
  kcfg.num_warps = 4;
  out.c = core::marlin_matmul(a.view(), out.mw, kcfg, 4).c;
  out.ref = core::reference_matmul(a.view(), out.q.dequantize().view());
  out.gram = quant::gram(af.view());
  return out;
}

TEST(SimdEndToEnd, PipelineBitIdenticalAcrossLevels) {
  SimdStateGuard guard;
  simd::set_level(simd::Level::kScalar);
  const PipelineArtifacts want = run_pipeline();
  for (const simd::Level l : kAllLevels) {
    if (l == simd::Level::kScalar || !simd::supported(l)) continue;
    simd::set_level(l);
    const PipelineArtifacts got = run_pipeline();
    EXPECT_EQ(std::memcmp(got.q.codes.data(), want.q.codes.data(),
                          static_cast<std::size_t>(want.q.codes.size())),
              0)
        << "RTN codes differ at " << simd::to_string(l);
    EXPECT_EQ(std::memcmp(got.q.scales.data(), want.q.scales.data(),
                          static_cast<std::size_t>(want.q.scales.size()) *
                              sizeof(Half)),
              0)
        << "RTN scales differ at " << simd::to_string(l);
    ASSERT_EQ(got.mw.packed.size(), want.mw.packed.size());
    EXPECT_EQ(got.mw.packed, want.mw.packed)
        << "repacked stream differs at " << simd::to_string(l);
    EXPECT_EQ(std::memcmp(got.c.data(), want.c.data(),
                          static_cast<std::size_t>(want.c.size()) *
                              sizeof(Half)),
              0)
        << "kernel output differs at " << simd::to_string(l);
    EXPECT_EQ(std::memcmp(got.ref.data(), want.ref.data(),
                          static_cast<std::size_t>(want.ref.size()) *
                              sizeof(float)),
              0)
        << "reference GEMM differs at " << simd::to_string(l);
    EXPECT_EQ(std::memcmp(got.gram.data(), want.gram.data(),
                          static_cast<std::size_t>(want.gram.size()) *
                              sizeof(double)),
              0)
        << "gram matrix differs at " << simd::to_string(l);
  }
}

// ------------------------------------------------- allocation regression
//
// A steady-state decode tick (no arrivals, no admissions, every running
// sequence growing within its reserved block vector) must perform zero
// heap allocations: the scheduler reuses ReplicaState scratch, the block
// manager recycles its free list, and the engine serves decode times from
// its warmed memo.

TEST(HotPath, SteadyStateDecodeTickDoesNotAllocate) {
  serve::EngineConfig ecfg;
  ecfg.model = serve::llama2_7b();
  ecfg.gpu = gpusim::rtxa6000();
  ecfg.format = serve::WeightFormat::kMarlin;
  const serve::Engine engine(ecfg);

  serve::sched::SchedulerConfig scfg;
  scfg.policy = serve::sched::SchedPolicy::kFcfs;
  scfg.max_batch = 8;
  scfg.blocks.block_size = 16;
  scfg.blocks.num_blocks = 256;
  const serve::sched::Scheduler sched(engine, scfg);

  std::vector<serve::sched::Request> requests;
  for (index_t i = 0; i < 8; ++i) {
    requests.emplace_back(i, 0.0, 64, 32);
  }
  // Warm the decode memo for every (batch, context-bucket) pair the run
  // can touch, exactly as EventLoop::run pre-warms before ticking.
  for (index_t batch = 1; batch <= scfg.max_batch; ++batch) {
    for (index_t b = 0; b < 4; ++b) {
      (void)engine.decode_step_seconds(batch,
                                       static_cast<double>(b) * 64.0 + 1.0);
    }
  }

  serve::sched::ReplicaState s = sched.make_replica_state();
  sched.register_tenants(s, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) s.queue.push_back(i);

  // Warm-up ticks: one admission (grows the scratch and reserves each
  // request's lifetime block vector), the prefill round, and two decode
  // rounds to settle every lazily-grown container.
  while (s.decode_steps < 2) {
    ASSERT_TRUE(s.busy());
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  ASSERT_EQ(s.running.size(), requests.size());

  const std::uint64_t before = alloc_count();
  for (int tick = 0; tick < 5; ++tick) {
    sched.admit(s, requests);  // empty queue: must also be free of allocs
    sched.step(s, requests);
  }
  const std::uint64_t allocs = alloc_count() - before;
  EXPECT_EQ(allocs, 0u)
      << allocs << " heap allocations across 5 steady-state decode ticks";
  EXPECT_EQ(s.decode_steps, 7);
  EXPECT_EQ(s.running.size(), requests.size());  // still mid-decode

  // Drain to completion: every block returns to the manager.
  while (s.busy()) {
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  EXPECT_EQ(s.bm.used_blocks(), 0);
}

}  // namespace
}  // namespace marlin
