// Cluster serving tier: single-replica EventLoop equivalence with the
// legacy scheduler loop (including through the server_sim path), router
// placement determinism, replica add/drain lifecycle, SLO shed
// accounting, autoscaler round trips with no KV-block leaks, config
// validation, and disaggregated prefill/decode pools (zero-cost-link
// differential equivalence, priced KV transfers, migration edge cases).

#include <gtest/gtest.h>

#include "serve/server_sim.hpp"

namespace marlin::serve::cluster {
namespace {

const Engine& test_engine() {
  static const Engine engine = [] {
    EngineConfig cfg;
    cfg.model = llama2_7b();
    cfg.gpu = gpusim::rtxa6000();
    cfg.format = WeightFormat::kMarlin;
    return Engine(cfg);
  }();
  return engine;
}

sched::SchedulerConfig sched_cfg(index_t kv_blocks) {
  sched::SchedulerConfig cfg;
  cfg.blocks.block_size = 16;
  cfg.blocks.num_blocks = kv_blocks;
  return cfg;
}

std::vector<sched::TraceRequest> make_trace(
    double qps, double duration_s,
    sched::WorkloadShape shape = sched::WorkloadShape::kPoisson,
    std::vector<double> tenant_shares = {}) {
  sched::WorkloadConfig w;
  w.shape = shape;
  w.qps = qps;
  w.duration_s = duration_s;
  w.tenant_shares = std::move(tenant_shares);
  return sched::generate_trace(w);
}

// Bitwise equality of everything the goldens depend on plus the full
// per-request outcome — "equivalent" here means equivalent to the double.
void expect_sched_equal(const sched::SchedStats& a,
                        const sched::SchedStats& b) {
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.metrics.mean_ttft_ms, b.metrics.mean_ttft_ms);
  EXPECT_EQ(a.metrics.p50_tpot_ms, b.metrics.p50_tpot_ms);
  EXPECT_EQ(a.metrics.p90_tpot_ms, b.metrics.p90_tpot_ms);
  EXPECT_EQ(a.metrics.p99_tpot_ms, b.metrics.p99_tpot_ms);
  EXPECT_EQ(a.metrics.p90_ttft_ms, b.metrics.p90_ttft_ms);
  EXPECT_EQ(a.metrics.mean_batch, b.metrics.mean_batch);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_EQ(a.prefill_steps, b.prefill_steps);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.peak_kv_blocks, b.peak_kv_blocks);
  EXPECT_EQ(a.sim_end_s, b.sim_end_s);
  EXPECT_EQ(a.slo_ttft_violations, b.slo_ttft_violations);
  EXPECT_EQ(a.slo_tpot_violations, b.slo_tpot_violations);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].first_token_s, b.requests[i].first_token_s);
    EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    EXPECT_EQ(a.requests[i].generated, b.requests[i].generated);
    EXPECT_EQ(a.requests[i].preemptions, b.requests[i].preemptions);
  }
}

// ------------------------------------------- single-replica equivalence

TEST(SingleReplicaEquivalence, EventLoopMatchesSchedulerRunAllPlacements) {
  const sched::Scheduler sch(test_engine(), sched_cfg(96));
  const auto trace = make_trace(6.0, 20.0);
  const sched::SchedStats base = sch.run(trace);
  EXPECT_GT(base.metrics.completed, 0);
  // Placement cannot matter with one replica; every policy must reduce to
  // the legacy loop bit-for-bit.
  for (const auto placement :
       {Placement::kRoundRobin, Placement::kLeastLoaded,
        Placement::kSessionAffinity}) {
    ClusterOptions opts;
    opts.placement = placement;
    const ClusterStats cs = EventLoop(sch, opts).run(trace);
    expect_sched_equal(base, cs.sched);
    ASSERT_EQ(cs.replicas.size(), 1u);
    EXPECT_EQ(cs.replicas[0].routed,
              static_cast<index_t>(trace.size()));
    EXPECT_EQ(cs.replicas[0].leaked_kv_blocks, 0);
    EXPECT_EQ(cs.peak_replicas, 1);
    EXPECT_EQ(cs.replicas_added, 0);
    EXPECT_EQ(cs.replicas_drained, 0);
  }
}

TEST(SingleReplicaEquivalence, ServerSimPathsAgree) {
  ServingConfig sc;
  sc.qps = 4.0;
  sc.duration_s = 15.0;
  sc.kv_blocks = 96;
  const sched::SchedStats legacy =
      simulate_serving_detailed(test_engine(), sc);
  const ClusterStats cs = simulate_cluster_detailed(test_engine(), sc);
  expect_sched_equal(legacy, cs.sched);
  // No SLO configured: the new accounting must stay inert.
  EXPECT_EQ(cs.sched.shed, 0);
  EXPECT_EQ(cs.sched.slo_ttft_violations, 0);
  EXPECT_EQ(cs.sched.slo_tpot_violations, 0);
  // Single-replica runs still stamp the placement.
  for (const auto& r : cs.sched.requests) EXPECT_EQ(r.replica, 0);
}

TEST(SingleReplicaEquivalence, RepeatRunsReproduceBitIdentically) {
  const sched::Scheduler sch(test_engine(), sched_cfg(64));
  const auto trace = make_trace(8.0, 10.0);
  const EventLoop loop(sch, ClusterOptions{});
  expect_sched_equal(loop.run(trace).sched, loop.run(trace).sched);
}

// ------------------------------------------------------------- placement

std::vector<sched::Request> some_requests(index_t n, index_t tenants = 1) {
  std::vector<sched::Request> requests;
  for (index_t i = 0; i < n; ++i) {
    requests.emplace_back(i, /*arrival_s=*/0.1 * static_cast<double>(i),
                          /*prompt_tokens=*/8, /*output_tokens=*/4,
                          /*tenant_id=*/i % tenants);
  }
  return requests;
}

TEST(RouterPlacement, RoundRobinRotatesOverRoutableInIdOrder) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  std::deque<Replica> fleet;
  for (index_t i = 0; i < 3; ++i) fleet.emplace_back(i, sch);
  auto requests = some_requests(8);
  Router router(Placement::kRoundRobin);
  for (const std::size_t expected : {0u, 1u, 2u, 0u, 1u}) {
    EXPECT_EQ(router.pick(requests[0], fleet, requests), expected);
  }
  // A drained replica drops out of the rotation.
  fleet[1].begin_drain();
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(router.pick(requests[0], fleet, requests), 1u);
  }
}

TEST(RouterPlacement, LeastLoadedByOutstandingTokensTiesToLowestId) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  std::deque<Replica> fleet;
  for (index_t i = 0; i < 3; ++i) fleet.emplace_back(i, sch);
  auto requests = some_requests(4);
  Router router(Placement::kLeastLoaded);
  // All empty: tie goes to replica 0.
  EXPECT_EQ(router.pick(requests[3], fleet, requests), 0u);
  // Each delivery adds 8 + 4 = 12 outstanding tokens.
  fleet[0].deliver(0, requests);
  EXPECT_EQ(fleet[0].outstanding_tokens(requests), 12);
  EXPECT_EQ(router.pick(requests[3], fleet, requests), 1u);
  fleet[1].deliver(1, requests);
  EXPECT_EQ(router.pick(requests[3], fleet, requests), 2u);
  fleet[2].deliver(2, requests);  // all tied again
  EXPECT_EQ(router.pick(requests[3], fleet, requests), 0u);
}

TEST(RouterPlacement, SessionAffinityPinsTenantsViaMix64) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  std::deque<Replica> fleet;
  for (index_t i = 0; i < 3; ++i) fleet.emplace_back(i, sch);
  auto requests = some_requests(16, /*tenants=*/8);
  Router router(Placement::kSessionAffinity);
  std::vector<std::size_t> hit(3, 0);
  for (const auto& r : requests) {
    const std::size_t picked = router.pick(r, fleet, requests);
    // The placement is a pure function of the tenant id and fleet size —
    // repeat picks (and the same tenant's later requests) pin to it.
    EXPECT_EQ(picked,
              mix64(static_cast<std::uint64_t>(r.tenant_id)) % 3u);
    EXPECT_EQ(router.pick(r, fleet, requests), picked);
    ++hit[picked];
  }
  // 8 tenants over 3 replicas: the mix spreads them across the fleet.
  for (const std::size_t h : hit) EXPECT_GT(h, 0u);
}

TEST(RouterPlacement, Mix64IsAPinnedPlatformIndependentFunction) {
  // splitmix64 finalizer known-answer values — these may never change, or
  // session-affinity placements (and goldens) silently reshuffle.
  EXPECT_EQ(mix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(mix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_NE(mix64(2), mix64(3));
}

TEST(RouterPlacement, NoRoutableReplicaThrows) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  std::deque<Replica> fleet;
  fleet.emplace_back(0, sch);
  auto requests = some_requests(1);
  fleet[0].begin_drain();
  Router router(Placement::kRoundRobin);
  EXPECT_THROW((void)router.pick(requests[0], fleet, requests), Error);
}

// ------------------------------------------------------ replica lifecycle

TEST(ReplicaLifecycle, DrainRetireRoundTrip) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  Replica rep(0, sch);
  EXPECT_TRUE(rep.routable());
  EXPECT_FALSE(rep.busy());
  EXPECT_FALSE(rep.try_retire());  // active replicas never retire
  rep.begin_drain();
  EXPECT_EQ(rep.lifecycle(), ReplicaLifecycle::kDraining);
  EXPECT_FALSE(rep.routable());
  EXPECT_TRUE(rep.try_retire());  // idle + draining -> retired
  EXPECT_EQ(rep.lifecycle(), ReplicaLifecycle::kRetired);
  EXPECT_FALSE(rep.try_retire());
}

TEST(ReplicaLifecycle, DrainingReplicaFinishesHeldWorkButRefusesNew) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  Replica rep(0, sch);
  auto requests = some_requests(2);
  rep.deliver(0, requests);
  EXPECT_TRUE(rep.busy());
  rep.begin_drain();
  EXPECT_FALSE(rep.try_retire());  // still busy
  EXPECT_THROW(rep.deliver(1, requests), Error);
  while (rep.busy()) rep.tick(requests);
  EXPECT_EQ(requests[0].state, sched::RequestState::kFinished);
  EXPECT_GE(requests[0].finish_s, 0.0);
  EXPECT_TRUE(rep.try_retire());
  EXPECT_EQ(rep.state().bm.used_blocks(), 0);  // nothing leaked
}

TEST(ReplicaLifecycle, ClockNeverMovesBackwards) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  Replica rep(3, sch);
  rep.advance_to(5.0);
  rep.advance_to(3.0);
  EXPECT_EQ(rep.now(), 5.0);
  // Delivery stamps the placement but cannot rewind the clock either.
  auto requests = some_requests(1);
  rep.deliver(0, requests);
  EXPECT_EQ(requests[0].replica, 3);
  EXPECT_EQ(rep.now(), 5.0);
}

// ----------------------------------------------------------- SLO shedding

TEST(SloShedding, TightTtftDeadlineShedsHopelessRequestsOnly) {
  ServingConfig sc;
  sc.qps = 30.0;
  sc.duration_s = 8.0;
  sc.kv_blocks = 64;
  sc.slo.ttft_deadline_ms = 30.0;
  const ClusterStats cs = simulate_cluster_detailed(test_engine(), sc);
  const sched::SchedStats& st = cs.sched;
  EXPECT_GT(st.shed, 0);
  ASSERT_EQ(cs.replicas.size(), 1u);
  EXPECT_EQ(cs.replicas[0].shed, st.shed);
  index_t shed = 0;
  for (const auto& r : st.requests) {
    EXPECT_TRUE(r.finished());
    if (!r.shed) continue;
    ++shed;
    // Shed before ever producing work: no tokens, no KV, no latency
    // sample (finish_s < 0 keeps it out of the metrics like a reject).
    EXPECT_EQ(r.generated, 0);
    EXPECT_TRUE(r.blocks.empty());
    EXPECT_LT(r.first_token_s, 0.0);
    EXPECT_LT(r.finish_s, 0.0);
    EXPECT_EQ(r.preemptions, 0);  // preempted requests are never shed
    EXPECT_FALSE(r.rejected);
  }
  EXPECT_EQ(shed, st.shed);
  // Every request ends exactly one way.
  EXPECT_EQ(st.metrics.completed + st.rejected + st.shed,
            static_cast<index_t>(st.requests.size()));
}

TEST(SloShedding, TpotDeadlineOnlyAccountsViolations) {
  ServingConfig sc;
  sc.qps = 2.0;
  sc.duration_s = 10.0;
  sc.slo.tpot_deadline_ms = 0.001;  // impossible: every completion violates
  const ClusterStats cs = simulate_cluster_detailed(test_engine(), sc);
  EXPECT_EQ(cs.sched.shed, 0);  // no TTFT deadline, nothing is shed
  EXPECT_GT(cs.sched.metrics.completed, 0);
  EXPECT_EQ(cs.sched.slo_tpot_violations, cs.sched.metrics.completed);
}

// ------------------------------------------------------------- autoscaler

ServingConfig bursty_autoscaled() {
  ServingConfig sc;
  // Long enough for several ON/OFF burst cycles: the OFF gaps are where
  // the scale-down evaluations actually fire.
  sc.shape = sched::WorkloadShape::kBursty;
  sc.qps = 24.0;
  sc.duration_s = 40.0;
  sc.kv_blocks = 96;
  sc.cluster.autoscaler.enabled = true;
  sc.cluster.autoscaler.min_replicas = 1;
  sc.cluster.autoscaler.max_replicas = 4;
  sc.cluster.autoscaler.interval_s = 2.0;
  sc.cluster.autoscaler.scale_up_queue_per_replica = 4.0;
  sc.cluster.autoscaler.scale_down_queue_per_replica = 0.5;
  return sc;
}

TEST(Autoscaler, AddDrainRoundTripWithoutKvLeaks) {
  const ServingConfig sc = bursty_autoscaled();
  const ClusterStats cs = simulate_cluster_detailed(test_engine(), sc);
  EXPECT_GT(cs.replicas_added, 0);
  EXPECT_GT(cs.replicas_drained, 0);
  EXPECT_GT(cs.peak_replicas, 1);
  EXPECT_LE(cs.peak_replicas, sc.cluster.autoscaler.max_replicas);
  // Retired replicas stay in the fleet (ids keep indexing it).
  EXPECT_EQ(cs.replicas.size(),
            static_cast<std::size_t>(1 + cs.replicas_added));
  index_t routed = 0;
  index_t completed = 0;
  for (const auto& rep : cs.replicas) {
    EXPECT_EQ(rep.leaked_kv_blocks, 0);
    // The run only ends when everything drained, so nothing may still be
    // mid-drain.
    EXPECT_NE(rep.lifecycle, ReplicaLifecycle::kDraining);
    routed += rep.routed;
    completed += rep.completed;
  }
  EXPECT_EQ(routed, static_cast<index_t>(cs.sched.requests.size()));
  EXPECT_EQ(completed, cs.sched.metrics.completed);
  EXPECT_EQ(cs.sched.metrics.completed + cs.sched.rejected + cs.sched.shed,
            static_cast<index_t>(cs.sched.requests.size()));
}

TEST(Autoscaler, RunsReproduceBitIdentically) {
  const ServingConfig sc = bursty_autoscaled();
  const ClusterStats a = simulate_cluster_detailed(test_engine(), sc);
  const ClusterStats b = simulate_cluster_detailed(test_engine(), sc);
  expect_sched_equal(a.sched, b.sched);
  EXPECT_EQ(a.replicas_added, b.replicas_added);
  EXPECT_EQ(a.replicas_drained, b.replicas_drained);
  EXPECT_EQ(a.peak_replicas, b.peak_replicas);
}

// ------------------------------------------ disaggregated prefill/decode

// Arrivals spaced so far apart that each request drains completely before
// the next lands: with no overlap, a 1 prefill + 1 decode pool over a
// zero-cost link performs the exact same engine steps at the exact same
// clock values as one unified replica — the differential configuration.
std::vector<sched::TraceRequest> sparse_trace(index_t n, double gap_s) {
  std::vector<sched::TraceRequest> trace;
  for (index_t i = 0; i < n; ++i) {
    sched::TraceRequest r;
    r.arrival_s = gap_s * static_cast<double>(i);
    r.input_tokens = 64;
    r.output_tokens = 32;
    trace.push_back(r);
  }
  return trace;
}

ClusterOptions disagg_1p1d(double kv_bytes_per_token = 0.0,
                           double link_bytes_per_s = 0.0,
                           double link_latency_s = 0.0) {
  ClusterOptions opts;
  opts.disagg.enabled = true;
  opts.disagg.prefill_replicas = 1;
  opts.disagg.decode_replicas = 1;
  opts.disagg.kv_bytes_per_token = kv_bytes_per_token;
  opts.disagg.link_bytes_per_s = link_bytes_per_s;
  opts.disagg.link_latency_s = link_latency_s;
  return opts;
}

TEST(DisaggDifferential, ZeroCostLinkMatchesUnifiedAndLegacyBitForBit) {
  const sched::Scheduler sch(test_engine(), sched_cfg(96));
  const auto trace = sparse_trace(4, 20.0);
  for (const int threads : {1, 4}) {
    const SimContext ctx(threads);
    const sched::SchedStats legacy = sch.run(trace, ctx);
    EXPECT_EQ(legacy.metrics.completed, 4);
    const ClusterStats unified =
        EventLoop(sch, ClusterOptions{}).run(trace, ctx);
    const ClusterStats disagg =
        EventLoop(sch, disagg_1p1d()).run(trace, ctx);
    expect_sched_equal(legacy, unified.sched);
    expect_sched_equal(legacy, disagg.sched);
    // The handoffs really happened — equivalence is not migration
    // having silently fallen back to in-place decoding.
    EXPECT_EQ(disagg.migrations, 4);
    EXPECT_EQ(disagg.transfer_seconds, 0.0);
    ASSERT_EQ(disagg.replicas.size(), 2u);
    EXPECT_EQ(disagg.replicas[0].role, ReplicaRole::kPrefill);
    EXPECT_EQ(disagg.replicas[1].role, ReplicaRole::kDecode);
    EXPECT_EQ(disagg.replicas[0].migrated_out, 4);
    EXPECT_EQ(disagg.replicas[1].migrated_in, 4);
    EXPECT_EQ(disagg.replicas[0].decode_steps, 0);
    EXPECT_EQ(disagg.replicas[0].leaked_kv_blocks, 0);
    EXPECT_EQ(disagg.replicas[1].leaked_kv_blocks, 0);
  }
}

TEST(DisaggMigration, PricedLinkDelaysTtftAndAccountsPerLink) {
  const sched::Scheduler sch(test_engine(), sched_cfg(96));
  const auto trace = sparse_trace(3, 20.0);
  // 1 KB per token over a 1 MB/s link with 1 ms setup: 64 tokens take
  // 64/1000 + 0.001 seconds per transfer — large enough to observe.
  const ClusterStats cs =
      EventLoop(sch, disagg_1p1d(1e3, 1e6, 1e-3)).run(trace);
  const ClusterStats free_link =
      EventLoop(sch, disagg_1p1d()).run(trace);
  EXPECT_EQ(cs.migrations, 3);
  EXPECT_EQ(cs.transferred_tokens, 3 * 64);
  EXPECT_DOUBLE_EQ(cs.transfer_bytes, 3.0 * 64.0 * 1e3);
  // Accumulated as (arrival - start) differences, so allow float slack.
  EXPECT_NEAR(cs.transfer_seconds, 3.0 * (64.0 * 1e3 / 1e6 + 1e-3), 1e-12);
  // The wire time lands on TTFT, token for token.
  const double per_transfer_s = 64.0 * 1e3 / 1e6 + 1e-3;
  ASSERT_EQ(cs.sched.requests.size(), free_link.sched.requests.size());
  for (std::size_t i = 0; i < cs.sched.requests.size(); ++i) {
    EXPECT_NEAR(cs.sched.requests[i].first_token_s,
                free_link.sched.requests[i].first_token_s + per_transfer_s,
                1e-9);
    EXPECT_EQ(cs.sched.requests[i].migrations, 1);
  }
  EXPECT_GT(cs.sched.metrics.mean_ttft_ms,
            free_link.sched.metrics.mean_ttft_ms);
  // Per-link accounting: one prefill replica, one decode replica, one
  // directed link carrying everything.
  ASSERT_EQ(cs.links.size(), 1u);
  EXPECT_EQ(cs.links[0].src, 0);
  EXPECT_EQ(cs.links[0].dst, 1);
  EXPECT_EQ(cs.links[0].transfers, 3);
  EXPECT_DOUBLE_EQ(cs.links[0].bytes, cs.transfer_bytes);
  EXPECT_DOUBLE_EQ(cs.links[0].seconds, cs.transfer_seconds);
}

TEST(DisaggMigration, TransferCanMissATtftDeadlineThePrefillMet) {
  sched::SchedulerConfig cfg = sched_cfg(96);
  // Generous enough that the prefill itself always makes the deadline
  // (nothing is shed), tight enough that a ~6 s transfer cannot.
  cfg.slo.ttft_deadline_ms = 2000.0;
  const sched::Scheduler sch(test_engine(), cfg);
  const auto trace = sparse_trace(2, 30.0);
  const ClusterStats free_link =
      EventLoop(sch, disagg_1p1d()).run(trace);
  EXPECT_EQ(free_link.sched.shed, 0);
  EXPECT_EQ(free_link.sched.slo_ttft_violations, 0);
  const ClusterStats slow =
      EventLoop(sch, disagg_1p1d(1e3, 1e4, 0.0)).run(trace);  // 6.4 s/transfer
  EXPECT_EQ(slow.migrations, 2);
  EXPECT_EQ(slow.sched.slo_ttft_violations, 2);
}

TEST(DisaggMigration, FullDecodePoolFallsBackToDecodingInPlace) {
  // A tight per-replica budget (8 blocks) and three near-simultaneous
  // requests: the first migration parks ~5 blocks on the lone decode
  // replica, so the next prefill completion cannot fit its 5 whole blocks
  // there and decodes in place on the prefill replica, unified-style.
  const sched::Scheduler sch(test_engine(), sched_cfg(8));
  std::vector<sched::TraceRequest> trace;
  for (index_t i = 0; i < 3; ++i) {
    sched::TraceRequest r;
    r.arrival_s = 0.02 * static_cast<double>(i);
    r.input_tokens = 64;
    r.output_tokens = 32;
    trace.push_back(r);
  }
  const ClusterStats cs = EventLoop(sch, disagg_1p1d()).run(trace);
  EXPECT_GE(cs.migrations, 1);  // the first handoff always fits
  EXPECT_LT(cs.migrations, 3);  // at least one fell back in place
  ASSERT_EQ(cs.replicas.size(), 2u);
  // In-place fallback means the prefill replica really decoded.
  EXPECT_GT(cs.replicas[0].decode_steps, 0);
  EXPECT_EQ(cs.sched.metrics.completed + cs.sched.rejected + cs.sched.shed,
            3);
  EXPECT_EQ(cs.replicas[0].leaked_kv_blocks, 0);
  EXPECT_EQ(cs.replicas[1].leaked_kv_blocks, 0);
  // Fallback is a placement decision, not a failure: nothing was shed or
  // rejected by it.
  EXPECT_EQ(cs.sched.metrics.completed, 3);
}

TEST(DisaggMigration, OnlyRunningRequestsMayMigrateOut) {
  const sched::Scheduler sch(test_engine(), sched_cfg(96));
  Replica src(0, sch, ReplicaRole::kPrefill);
  std::vector<sched::Request> requests;
  requests.emplace_back(0, 0.0, 64, 8);
  requests.emplace_back(1, 0.0, 64, 8);
  src.register_tenants(requests);
  src.deliver(0, requests);
  // Still queued: no prefill has produced KV worth moving.
  EXPECT_THROW(src.migrate_out(0, requests), Error);
  while (!requests[0].finished()) src.tick(requests);
  // Finished requests cannot move either.
  EXPECT_THROW(src.migrate_out(0, requests), Error);
  // A preempted request freed its KV — the guard refuses it outright
  // (the EventLoop's decision pass additionally skips non-running
  // states, so this throw is the backstop, not the normal path).
  sched::Request& preempted = requests[1];
  preempted.set_state(sched::RequestState::kPrefilling);
  preempted.set_state(sched::RequestState::kRunning);
  preempted.set_state(sched::RequestState::kPreempted);
  EXPECT_THROW(src.migrate_out(1, requests), Error);
  EXPECT_EQ(src.state().bm.used_blocks(), 0);
}

TEST(DisaggMigration, DrainingPrefillReplicaFinishesItsWorkInPlace) {
  const sched::Scheduler sch(test_engine(), sched_cfg(96));
  Replica src(0, sch, ReplicaRole::kPrefill);
  std::vector<sched::Request> requests;
  requests.emplace_back(0, 0.0, 64, 8);
  src.register_tenants(requests);
  src.deliver(0, requests);
  while (requests[0].state != sched::RequestState::kRunning) {
    src.tick(requests);
  }
  src.begin_drain();
  // The EventLoop's decision pass leaves requests on a non-active source
  // alone; the draining replica finishes them where they are.
  EXPECT_FALSE(src.routable());
  while (!requests[0].finished()) src.tick(requests);
  EXPECT_EQ(requests[0].replica, 0);
  EXPECT_GE(requests[0].finish_s, 0.0);
  EXPECT_EQ(src.migrated_out(), 0);
  EXPECT_TRUE(src.try_retire());
  EXPECT_EQ(src.state().bm.used_blocks(), 0);
}

TEST(DisaggMigration, DestinationPrefixCacheSkipsTransferredBlocks) {
  sched::SchedulerConfig cfg = sched_cfg(96);
  cfg.blocks.prefix_cache.enabled = true;
  const sched::Scheduler sch(test_engine(), cfg);
  Replica src(0, sch, ReplicaRole::kPrefill);
  Replica dst(1, sch, ReplicaRole::kDecode);
  std::vector<sched::Request> requests;
  for (index_t i = 0; i < 2; ++i) {
    sched::Request& r = requests.emplace_back(i, 0.0, 64, 8);
    r.prefix_id = 7;
    r.prefix_tokens = 64;  // 4 full blocks of shared prefix
  }
  src.register_tenants(requests);
  dst.register_tenants(requests);

  // First request: cold destination cache, everything crosses the wire.
  src.deliver(0, requests);
  while (requests[0].state != sched::RequestState::kRunning) {
    src.tick(requests);
  }
  src.migrate_out(0, requests);
  EXPECT_EQ(dst.begin_migration(0, requests), 0);
  dst.finish_migration(0, src.now(), requests);
  while (!requests[0].finished()) dst.tick(requests);
  EXPECT_EQ(dst.migrated_in(), 1);

  // Second request shares the prefix: releasing the first parked its
  // published prompt blocks in the destination's cache, so the re-acquire
  // hits and those tokens never cross the wire.
  src.deliver(1, requests);
  while (requests[1].state != sched::RequestState::kRunning) {
    src.tick(requests);
  }
  src.migrate_out(1, requests);
  const index_t skipped = dst.begin_migration(1, requests);
  EXPECT_EQ(skipped, 64);
  EXPECT_EQ(dst.state().prefix_tokens_skipped, 64);
  dst.finish_migration(1, src.now(), requests);
  while (!requests[1].finished()) dst.tick(requests);
  EXPECT_EQ(src.state().bm.used_blocks(), 0);
  // Only parked (refcount-0, cached) blocks remain on the destination.
  EXPECT_EQ(dst.state().bm.used_blocks(), 0);
}

TEST(DisaggMigration, EndToEndServerSimPricesTransfersFromTheEngine) {
  ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 12.0;
  sc.kv_blocks = 96;
  sc.cluster.disagg.enabled = true;
  sc.cluster.disagg.prefill_replicas = 1;
  sc.cluster.disagg.decode_replicas = 1;
  const ClusterStats cs = simulate_cluster_detailed(test_engine(), sc);
  EXPECT_GT(cs.migrations, 0);
  EXPECT_GT(cs.transferred_tokens, 0);
  // kv_bytes_per_token auto-derives from the engine (> 0), and the link
  // from the device interconnect, so real time accrues on the wire.
  EXPECT_GT(cs.transfer_bytes, 0.0);
  EXPECT_GT(cs.transfer_seconds, 0.0);
  EXPECT_EQ(cs.sched.metrics.completed + cs.sched.rejected + cs.sched.shed,
            static_cast<index_t>(cs.sched.requests.size()));
  for (const auto& rep : cs.replicas) {
    EXPECT_EQ(rep.leaked_kv_blocks, 0);
  }
  // Bit-identical repeat.
  const ClusterStats again = simulate_cluster_detailed(test_engine(), sc);
  expect_sched_equal(cs.sched, again.sched);
  EXPECT_EQ(cs.migrations, again.migrations);
  EXPECT_EQ(cs.transfer_bytes, again.transfer_bytes);
}

// ------------------------------------------------------------- validation

TEST(ClusterValidation, BadOptionsThrow) {
  const sched::Scheduler sch(test_engine(), sched_cfg(0));
  ClusterOptions opts;
  opts.replicas = 0;
  EXPECT_THROW(opts.validate(), Error);
  EXPECT_THROW(EventLoop(sch, opts), Error);

  AutoscalerConfig as;
  as.interval_s = 0.0;
  EXPECT_THROW(as.validate(), Error);
  as = AutoscalerConfig{};
  as.max_replicas = 2;
  as.min_replicas = 4;
  EXPECT_THROW(as.validate(), Error);
  as = AutoscalerConfig{};
  as.scale_up_queue_per_replica = 1.0;  // no hysteresis gap
  as.scale_down_queue_per_replica = 1.0;
  EXPECT_THROW(as.validate(), Error);

  opts = ClusterOptions{};
  opts.autoscaler.enabled = true;
  opts.replicas = opts.autoscaler.max_replicas + 1;
  EXPECT_THROW(opts.validate(), Error);

  // Disaggregation: pool sizes must be positive, pricing non-negative,
  // and the autoscaler cannot resize fixed pools.
  opts = ClusterOptions{};
  opts.disagg.enabled = true;
  opts.disagg.prefill_replicas = 0;
  EXPECT_THROW(opts.validate(), Error);
  opts.disagg.prefill_replicas = 1;
  opts.disagg.decode_replicas = 0;
  EXPECT_THROW(opts.validate(), Error);
  opts.disagg.decode_replicas = 1;
  opts.disagg.kv_bytes_per_token = -1.0;
  EXPECT_THROW(opts.validate(), Error);
  opts.disagg.kv_bytes_per_token = 0.0;
  opts.disagg.link_latency_s = -1e-6;
  EXPECT_THROW(opts.validate(), Error);
  opts.disagg.link_latency_s = 0.0;
  opts.validate();  // the zero-cost link itself is legal
  opts.autoscaler.enabled = true;
  EXPECT_THROW(opts.validate(), Error);
}

TEST(ClusterValidation, NegativeSloDeadlinesThrow) {
  sched::SloConfig slo;
  slo.ttft_deadline_ms = -1.0;
  EXPECT_THROW(slo.validate(), Error);
  sched::SchedulerConfig cfg = sched_cfg(0);
  cfg.slo.tpot_deadline_ms = -0.5;
  EXPECT_THROW(sched::Scheduler(test_engine(), cfg), Error);
}

}  // namespace
}  // namespace marlin::serve::cluster
