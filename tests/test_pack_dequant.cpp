// INT4 packing (64207531 interleave) and the bit-exact lop3 dequantisation
// trick — the paper's §3.4 "Dequantization and Tensor Cores".

#include <gtest/gtest.h>

#include <array>

#include "quant/dequant_trick.hpp"
#include "quant/pack.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace marlin::quant {
namespace {

std::array<std::uint8_t, 8> random_codes(Rng& rng) {
  std::array<std::uint8_t, 8> c{};
  for (auto& x : c) x = static_cast<std::uint8_t>(rng.uniform_int(16));
  return c;
}

TEST(Pack, InterleavePatternIsDocumented64207531) {
  // Logical weights 0..7 packed; nibble n (LSB first) must hold logical
  // weight per the pattern: MSB->LSB reads 6,4,2,0,7,5,3,1.
  std::array<std::uint8_t, 8> codes{0, 1, 2, 3, 4, 5, 6, 7};
  const std::uint32_t packed = pack8_interleaved(codes);
  const int nibble_logical[8] = {1, 3, 5, 7, 0, 2, 4, 6};  // LSB..MSB
  for (int n = 0; n < 8; ++n) {
    EXPECT_EQ((packed >> (4 * n)) & 0xfu,
              static_cast<std::uint32_t>(nibble_logical[n]))
        << "nibble " << n;
  }
}

TEST(Pack, RoundTripInterleaved) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto codes = random_codes(rng);
    const auto back = unpack8_interleaved(pack8_interleaved(codes));
    EXPECT_EQ(back, codes);
  }
}

TEST(Pack, RoundTripLinear) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto codes = random_codes(rng);
    EXPECT_EQ(unpack8_linear(pack8_linear(codes)), codes);
  }
}

TEST(Pack, InterleavedDiffersFromLinear) {
  std::array<std::uint8_t, 8> codes{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_NE(pack8_interleaved(codes), pack8_linear(codes));
}

TEST(Pack, FlatArray) {
  Rng rng(3);
  std::vector<std::uint8_t> codes(64);
  for (auto& c : codes) c = static_cast<std::uint8_t>(rng.uniform_int(16));
  const auto packed = pack_interleaved(codes);
  ASSERT_EQ(packed.size(), 8u);
  for (std::size_t g = 0; g < 8; ++g) {
    const auto grp = unpack8_interleaved(packed[g]);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(grp[static_cast<std::size_t>(i)], codes[g * 8 + static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Pack, RejectsBadInput) {
  std::array<std::uint8_t, 8> codes{};
  codes[3] = 16;  // out of INT4 range
  EXPECT_THROW((void)pack8_interleaved(codes), marlin::Error);
  EXPECT_THROW(pack_interleaved(std::vector<std::uint8_t>(7)),
               marlin::Error);
}

TEST(DequantTrick, SpliceProducesExponent1024Lanes) {
  // After the lop3, each 16-bit lane must be FP16 with value 1024 + code.
  const std::uint32_t q = pack8_interleaved({{5, 9, 0, 15, 3, 7, 12, 1}});
  for (int step = 0; step < 4; ++step) {
    const std::uint32_t t = lop3_splice(q, step);
    const float lo = Half::from_bits(static_cast<std::uint16_t>(t)).to_float();
    const float hi = Half::from_bits(static_cast<std::uint16_t>(t >> 16)).to_float();
    EXPECT_GE(lo, 1024.0f);
    EXPECT_LE(lo, 1039.0f);
    EXPECT_GE(hi, 1024.0f);
    EXPECT_LE(hi, 1039.0f);
  }
}

class DequantAllCodes : public ::testing::TestWithParam<int> {};

TEST_P(DequantAllCodes, TrickMatchesNaiveExactly) {
  // For every code value in every slot position, the packed-FP16 trick must
  // produce the same bits as the naive int -> float -> half conversion.
  const int code = GetParam();
  for (int slot = 0; slot < 8; ++slot) {
    std::array<std::uint8_t, 8> codes{};
    codes.fill(3);  // arbitrary background
    codes[static_cast<std::size_t>(slot)] = static_cast<std::uint8_t>(code);
    const std::uint32_t packed = pack8_interleaved(codes);
    const auto vals = dequant8(packed);
    const Half expect = dequant_naive_code(static_cast<std::uint8_t>(code));
    EXPECT_EQ(vals[static_cast<std::size_t>(slot)].bits(), expect.bits())
        << "code=" << code << " slot=" << slot;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCodes, DequantAllCodes, ::testing::Range(0, 16));

TEST(DequantTrick, PairsMatchExtractionSteps) {
  // Extraction step k yields (logical 2k, logical 2k+1) as (hi, lo).
  Rng rng(4);
  for (int rep = 0; rep < 500; ++rep) {
    const auto codes = random_codes(rng);
    const std::uint32_t packed = pack8_interleaved(codes);
    for (int k = 0; k < 4; ++k) {
      const auto [even, odd] = dequant_step(packed, k);
      EXPECT_EQ(even.to_float(),
                static_cast<float>(codes[static_cast<std::size_t>(2 * k)]) - 8.0f);
      EXPECT_EQ(odd.to_float(),
                static_cast<float>(codes[static_cast<std::size_t>(2 * k + 1)]) - 8.0f);
    }
  }
}

TEST(DequantTrick, WholeRegisterRandomised) {
  Rng rng(5);
  for (int rep = 0; rep < 2000; ++rep) {
    const auto codes = random_codes(rng);
    const auto vals = dequant8(pack8_interleaved(codes));
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(vals[static_cast<std::size_t>(i)].to_float(),
                static_cast<float>(codes[static_cast<std::size_t>(i)]) - 8.0f);
    }
  }
}

TEST(DequantTrick, MagicConstantsMatchPaperDescription) {
  // Exponent splice 0x6400 is FP16 1024 (biased exponent pattern 0110010).
  EXPECT_EQ(Half::from_bits(kDequantExp & 0xffffu).to_float(), 1024.0f);
  // Magic subtrahend = 1024 + 8: the signed offset fused into the low bits.
  EXPECT_EQ(Half::from_bits(kDequantMagic).to_float(), 1032.0f);
}

}  // namespace
}  // namespace marlin::quant
