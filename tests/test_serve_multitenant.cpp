// Multi-tenant scheduling + speculative decoding: per-tenant quota
// arithmetic edge cases (zero-quota tenants, quota > budget,
// borrow-then-reclaim round trips), WFQ fairness/tiering/aging, tenant
// trace mixes, and the speculative propose-then-verify step mode
// (determinism across thread counts included).

#include <gtest/gtest.h>

#include "serve/parallel/parallel_engine.hpp"
#include "serve/server_sim.hpp"

namespace marlin::serve::sched {
namespace {

// ------------------------------------------------------- quota arithmetic

BlockManagerConfig quota_cfg(
    index_t num_blocks,
    std::vector<std::pair<index_t, index_t>> quotas) {
  BlockManagerConfig cfg;
  cfg.block_size = 16;
  cfg.num_blocks = num_blocks;
  cfg.watermark = 0.0;
  cfg.tenant_quotas = std::move(quotas);
  return cfg;
}

TEST(TenantQuota, SoftQuotaTracksPerTenantUsage) {
  BlockManager bm(quota_cfg(16, {{0, 4}, {1, 8}}));
  SequenceBlocks a, b, c;
  bm.acquire(a, 4, /*tenant=*/0);
  EXPECT_EQ(bm.tenant_used_blocks(0), 4);
  EXPECT_EQ(bm.over_quota_blocks(0), 0);
  EXPECT_TRUE(bm.within_quota(0, 0));
  EXPECT_FALSE(bm.within_quota(0, 1));
  // Soft: exceeding the quota is *allowed* while free blocks exist...
  bm.acquire(b, 3, /*tenant=*/0);
  EXPECT_EQ(bm.tenant_used_blocks(0), 7);
  EXPECT_EQ(bm.over_quota_blocks(0), 3);  // ...but counts as borrowing.
  // An unquoted tenant never reads as over-quota.
  bm.acquire(c, 5, /*tenant=*/7);
  EXPECT_FALSE(bm.has_quota(7));
  EXPECT_EQ(bm.effective_quota(7), kNoQuota);
  EXPECT_EQ(bm.over_quota_blocks(7), 0);
  bm.release(a, 0);
  bm.release(b, 0);
  bm.release(c, 7);
  EXPECT_EQ(bm.tenant_used_blocks(0), 0);
}

TEST(TenantQuota, ZeroQuotaTenantIsBorrowOnly) {
  // An explicit quota of 0 is NOT "no quota": the tenant may only borrow,
  // so any held block immediately reads as over-quota (the preferred
  // preemption victim).
  BlockManager bm(quota_cfg(8, {{3, 0}}));
  EXPECT_TRUE(bm.has_quota(3));
  EXPECT_EQ(bm.effective_quota(3), 0);
  EXPECT_TRUE(bm.within_quota(3, 0));
  EXPECT_FALSE(bm.within_quota(3, 1));
  SequenceBlocks held;
  bm.acquire(held, 2, /*tenant=*/3);
  EXPECT_EQ(bm.over_quota_blocks(3), 2);
  bm.release(held, 3);
  EXPECT_EQ(bm.over_quota_blocks(3), 0);
}

TEST(TenantQuota, QuotaLargerThanBudgetClampsToBudget) {
  // A quota can be configured past the budget, but it cannot promise more
  // blocks than the cache holds: the *effective* quota clamps.
  BlockManager bm(quota_cfg(8, {{0, 100}}));
  EXPECT_EQ(bm.effective_quota(0), 8);
  EXPECT_TRUE(bm.within_quota(0, 8));
  EXPECT_FALSE(bm.within_quota(0, 9));
  // Unlimited caches have nothing to clamp against.
  BlockManager unlimited(quota_cfg(0, {{0, 100}}));
  EXPECT_EQ(unlimited.effective_quota(0), 100);
}

TEST(TenantQuota, BorrowThenReclaimRoundTrip) {
  // Borrow: tenant 0 (quota 3) takes 6 of 8 blocks while the cache is
  // idle. Reclaim: freeing the borrowed half restores the quota budget
  // and the over-quota reading drops back to zero — the accounting the
  // scheduler's reclaim preemption relies on.
  BlockManager bm(quota_cfg(8, {{0, 3}, {1, 5}}));
  SequenceBlocks within, borrowed, t1;
  bm.acquire(within, 3, /*tenant=*/0);
  bm.acquire(borrowed, 3, /*tenant=*/0);
  EXPECT_EQ(bm.over_quota_blocks(0), 3);
  EXPECT_EQ(bm.free_blocks(), 2);
  // Tenant 1 cannot take its full quota right now — reclaim target exists.
  EXPECT_FALSE(bm.can_allocate(5));
  bm.release(borrowed, 0);
  EXPECT_EQ(bm.over_quota_blocks(0), 0);
  EXPECT_EQ(bm.tenant_used_blocks(0), 3);
  bm.acquire(t1, 5, /*tenant=*/1);
  EXPECT_EQ(bm.over_quota_blocks(1), 0);
  EXPECT_EQ(bm.free_blocks(), 0);
  bm.release(within, 0);
  bm.release(t1, 1);
  EXPECT_EQ(bm.used_blocks(), 0);
}

TEST(TenantQuota, OverFreeAndDuplicateQuotasThrow) {
  BlockManager bm(quota_cfg(8, {{0, 4}}));
  SequenceBlocks held;
  bm.acquire(held, 2, /*tenant=*/0);
  // Copying a handle copies ids but acquires no references; releasing the
  // copy on tenant 1's account (which holds nothing) must throw before
  // corrupting the per-tenant counters.
  SequenceBlocks wrong_tenant = held;
  EXPECT_THROW(bm.release(wrong_tenant, 1), Error);
  bm.release(held, 0);
  EXPECT_THROW(BlockManager(quota_cfg(8, {{0, 4}, {0, 2}})), Error);
  EXPECT_THROW(BlockManager(quota_cfg(8, {{0, -1}})), Error);
}

TEST(TenantSpecValidation, RejectsBadSpecs) {
  TenantSpec t;
  t.weight = 0.0;
  EXPECT_THROW(t.validate(), Error);
  t.weight = 1.0;
  t.kv_block_quota = -2;
  EXPECT_THROW(t.validate(), Error);
  t.kv_block_quota = kNoQuota;
  t.traffic_share = 0.0;
  EXPECT_THROW(t.validate(), Error);
  t.traffic_share = 1.0;
  t.validate();  // default-ish spec is fine
  EXPECT_EQ(tenant_spec_or_default({t}, 5).id, 5);  // absent id -> neutral
}

// ---------------------------------------------------------- tenant mixes

TEST(TenantMix, AssignmentLeavesBaseTraceBitIdentical) {
  WorkloadConfig w;
  w.shape = WorkloadShape::kShareGpt;
  w.qps = 6.0;
  w.duration_s = 40.0;
  const auto base = generate_trace(w);
  w.tenant_shares = {0.2, 0.3, 0.5};
  const auto mixed = generate_trace(w);
  ASSERT_EQ(base.size(), mixed.size());
  bool multi_tenant = false;
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ(base[i].arrival_s, mixed[i].arrival_s);
    EXPECT_EQ(base[i].input_tokens, mixed[i].input_tokens);
    EXPECT_EQ(base[i].output_tokens, mixed[i].output_tokens);
    EXPECT_EQ(base[i].tenant_id, 0);
    EXPECT_GE(mixed[i].tenant_id, 0);
    EXPECT_LT(mixed[i].tenant_id, 3);
    multi_tenant |= mixed[i].tenant_id != 0;
  }
  EXPECT_TRUE(multi_tenant);
  // Same seed -> same assignment; mixes are reproducible.
  const auto again = generate_trace(w);
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    EXPECT_EQ(mixed[i].tenant_id, again[i].tenant_id);
  }
  w.tenant_shares = {1.0, -0.5};
  EXPECT_THROW(generate_trace(w), Error);
}

// ------------------------------------------------------------------- wfq

EngineConfig a6000_marlin() {
  EngineConfig cfg;
  cfg.model = llama2_7b();
  cfg.gpu = gpusim::rtxa6000();
  cfg.format = WeightFormat::kMarlin;
  return cfg;
}

TEST(WeightedFairQueuing, NameRoundTripsAndValidates) {
  EXPECT_EQ(policy_by_name("wfq"), SchedPolicy::kWeightedFair);
  EXPECT_STREQ(to_string(SchedPolicy::kWeightedFair), "wfq");
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kWeightedFair;
  cfg.wfq_aging_tokens_per_s = 0.0;  // starvation-proofness knob required
  EXPECT_THROW(Scheduler(engine, cfg), Error);
  cfg.wfq_aging_tokens_per_s = 256.0;
  cfg.tenants = {TenantSpec{}, TenantSpec{}};  // duplicate id 0
  EXPECT_THROW(Scheduler(engine, cfg), Error);
}

TEST(WeightedFairQueuing, HigherTierAndWeightWinAdmission) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kWeightedFair;
  cfg.max_batch = 1;  // pure queueing: admission order == service order
  TenantSpec fast;
  fast.id = 0;
  fast.tier = 0;
  fast.weight = 4.0;
  TenantSpec slow;
  slow.id = 1;
  slow.tier = 1;
  slow.weight = 1.0;
  cfg.tenants = {fast, slow};
  const Scheduler s(engine, cfg);
  // Tenant 1's request arrives *first*; with everything else equal the
  // tier-0 tenant still overtakes at the admission point.
  std::vector<TraceRequest> trace{
      {0.0, 64, 8, 1}, {0.0, 64, 8, 0}, {0.0, 64, 8, 1}, {0.0, 64, 8, 0}};
  const auto stats = s.run(trace);
  EXPECT_LT(stats.requests[1].first_token_s, stats.requests[0].first_token_s);
  EXPECT_LT(stats.requests[3].first_token_s, stats.requests[2].first_token_s);
  EXPECT_EQ(stats.metrics.completed, 4);
}

TEST(WeightedFairQueuing, ServiceDebtBalancesTokenShares) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kWeightedFair;
  cfg.max_batch = 2;
  TenantSpec heavy;
  heavy.id = 0;
  heavy.weight = 3.0;
  TenantSpec light;
  light.id = 1;
  light.weight = 1.0;
  cfg.tenants = {heavy, light};
  const Scheduler s(engine, cfg);
  // Alternating arrivals, same shapes: the weight-3 tenant should finish
  // its work no later than the weight-1 tenant on average.
  std::vector<TraceRequest> trace;
  for (index_t i = 0; i < 12; ++i) {
    trace.push_back({0.0, 32, 16, i % 2});
  }
  const auto stats = s.run(trace);
  const auto tenants = per_tenant_metrics(stats);
  ASSERT_EQ(tenants.size(), 2u);
  EXPECT_EQ(tenants[0].completed + tenants[1].completed, 12);
  EXPECT_LE(tenants[0].mean_ttft_ms, tenants[1].mean_ttft_ms);
}

TEST(WeightedFairQueuing, AgingIsStarvationProof) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kWeightedFair;
  cfg.max_batch = 1;
  // A brutal tier gap with weak aging would park tier-9 forever behind a
  // steady tier-0 stream; the aging credit must push it through anyway.
  TenantSpec vip;
  vip.id = 0;
  vip.tier = 0;
  TenantSpec dirt;
  dirt.id = 1;
  dirt.tier = 9;
  cfg.tenants = {vip, dirt};
  cfg.wfq_tier_penalty_tokens = 1e6;
  cfg.wfq_aging_tokens_per_s = 1e7;  // 0.9 s of waiting beats 9 tiers
  const Scheduler s(engine, cfg);
  std::vector<TraceRequest> trace;
  trace.push_back({0.0, 64, 8, 1});  // the starvation candidate
  for (index_t i = 0; i < 40; ++i) {
    trace.push_back({static_cast<double>(i) * 0.05, 64, 8, 0});
  }
  const auto stats = s.run(trace);
  EXPECT_EQ(stats.metrics.completed, 41);
  // It cannot be the last to finish: aging lifts it over the vip stream.
  index_t later = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (stats.requests[i].finish_s > stats.requests[0].finish_s) ++later;
  }
  EXPECT_GT(later, 0);
}

TEST(WeightedFairQueuing, ReclaimPreemptsOverQuotaBorrower) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kWeightedFair;
  cfg.blocks.num_blocks = 8;  // 128 KV tokens
  cfg.blocks.watermark = 0.0;
  TenantSpec hog;  // borrow-prone: tiny quota, long outputs
  hog.id = 0;
  hog.kv_block_quota = 2;
  TenantSpec guest;
  guest.id = 1;
  guest.kv_block_quota = 4;
  cfg.tenants = {hog, guest};
  const Scheduler s(engine, cfg);
  // Tenant 0 fills the whole cache while alone (borrowing past quota 2),
  // then tenant 1 arrives: its admission must reclaim via preemption
  // instead of waiting for tenant 0 to finish.
  std::vector<TraceRequest> trace{
      {0.0, 48, 60, 0}, {0.0, 48, 60, 0},  // 3 blocks each, growing
      {0.2, 48, 8, 1}};
  const auto stats = s.run(trace);
  EXPECT_GT(stats.preemptions, 0);
  EXPECT_EQ(stats.metrics.completed, 3);
  // The reclaim victim is a tenant-0 sequence (tenant 1 never preempted).
  EXPECT_EQ(stats.requests[2].preemptions, 0);
  EXPECT_GT(stats.requests[0].preemptions + stats.requests[1].preemptions,
            0);
}

TEST(WeightedFairQueuing, InfeasibleReclaimPreemptsNobody) {
  // The blocked tenant is within quota, but the cache is held by an
  // *unquoted* tenant — nothing is reclaimable, so reclaim must be a
  // no-op (a partial preemption would waste the victim's KV recompute
  // without admitting anyone) and the claimant simply waits.
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.policy = SchedPolicy::kWeightedFair;
  cfg.blocks.num_blocks = 8;
  cfg.blocks.watermark = 0.0;
  TenantSpec guest;
  guest.id = 1;
  guest.kv_block_quota = 4;
  cfg.tenants = {guest};  // tenant 0 stays unquoted
  const Scheduler s(engine, cfg);
  // Each hog peaks at 48 + 8 - 1 = 55 tokens = 4 blocks: together they
  // fill the budget exactly, with no growth shortage of their own.
  const std::vector<TraceRequest> trace{
      {0.0, 48, 8, 0}, {0.0, 48, 8, 0},
      {0.1, 48, 8, 1}};  // within quota 4, must wait
  const auto stats = s.run(trace);
  EXPECT_EQ(stats.preemptions, 0);
  EXPECT_EQ(stats.metrics.completed, 3);
  // The guest was admitted only after capacity freed up naturally.
  EXPECT_GT(stats.requests[2].first_token_s, stats.requests[0].arrival_s);
}

TEST(WeightedFairQueuing, SingleTenantMatchesFcfsStructure) {
  // With one neutral tenant and no quotas, wfq degenerates to FCFS: same
  // completions, same step counts, same preemption count.
  const Engine engine(a6000_marlin());
  ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 15.0;
  sc.kv_blocks = 128;
  const auto fcfs = simulate_serving_detailed(engine, sc);
  sc.policy = SchedPolicy::kWeightedFair;
  const auto wfq = simulate_serving_detailed(engine, sc);
  EXPECT_EQ(fcfs.metrics.completed, wfq.metrics.completed);
  EXPECT_EQ(fcfs.decode_steps, wfq.decode_steps);
  EXPECT_EQ(fcfs.prefill_steps, wfq.prefill_steps);
  EXPECT_EQ(fcfs.metrics.mean_tpot_ms, wfq.metrics.mean_tpot_ms);
}

// ---------------------------------------------------- speculative decoding

TEST(Speculation, ExpectedTokensPerRound) {
  SpeculationConfig spec;
  spec.depth = 4;
  spec.acceptance = 0.8;
  EXPECT_NEAR(spec.expected_tokens_per_round(),
              1.0 + 0.8 + 0.64 + 0.512 + 0.4096, 1e-12);
  spec.acceptance = 1.0;
  EXPECT_DOUBLE_EQ(spec.expected_tokens_per_round(), 5.0);
  spec.acceptance = 0.0;
  EXPECT_DOUBLE_EQ(spec.expected_tokens_per_round(), 1.0);
  spec.acceptance = 1.5;
  EXPECT_THROW(spec.validate(), Error);
  spec.acceptance = 0.7;
  spec.depth = -1;
  EXPECT_THROW(spec.validate(), Error);
}

TEST(Speculation, VerifyStepDepthZeroEqualsDecodeStep) {
  const Engine engine(a6000_marlin());
  EXPECT_EQ(engine.verify_step_seconds(8, 256.0, 0),
            engine.decode_step_seconds(8, 256.0));
  // Verifying depth d costs more than one decode step but less than
  // d + 1 of them — the whole point of batched verification.
  const double decode = engine.decode_step_seconds(8, 256.0);
  const double verify = engine.verify_step_seconds(8, 256.0, 4);
  EXPECT_GT(verify, decode);
  EXPECT_LT(verify, 5.0 * decode);
}

TEST(Speculation, ParallelVerifyComposesAcrossRankGrid) {
  EngineConfig cfg = a6000_marlin();
  cfg.model = llama2_13b();
  cfg.gpu = gpusim::a100_80g();
  const Engine engine(cfg);
  const parallel::ParallelEngine trivial(engine, {1, 1, 0});
  EXPECT_EQ(trivial.verify_step_seconds(8, 256.0, 4),
            engine.verify_step_seconds(8, 256.0, 4));
  const parallel::ParallelEngine grid(engine, {2, 2, 0});
  EXPECT_EQ(grid.verify_step_seconds(8, 256.0, 0),
            grid.decode_step_seconds(8, 256.0));
  const double decode = grid.decode_step_seconds(8, 256.0);
  const double verify = grid.verify_step_seconds(8, 256.0, 4);
  EXPECT_GT(verify, decode);
  EXPECT_LT(verify, 5.0 * decode);
}

TEST(Speculation, RequiresDraftModelAndCommitsFasterSchedule) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.speculation.depth = 4;
  EXPECT_THROW(Scheduler(engine, cfg), Error);  // no draft model

  ServingConfig sc;
  sc.qps = 4.0;
  sc.duration_s = 20.0;
  const auto plain = simulate_serving_detailed(engine, sc);
  sc.speculation.depth = 4;
  sc.speculation.acceptance = 0.8;
  const auto spec = simulate_serving_detailed(engine, sc);

  EXPECT_EQ(plain.spec_rounds, 0);
  EXPECT_GT(spec.spec_rounds, 0);
  EXPECT_GT(spec.spec_draft_tokens, 0);
  EXPECT_EQ(spec.metrics.completed, plain.metrics.completed);
  // Fewer engine rounds deliver the same tokens...
  EXPECT_LT(spec.decode_steps, plain.decode_steps);
  // ...at better TPOT (depth-4 verify + draft beats 3.36 decode steps).
  EXPECT_LT(spec.metrics.mean_tpot_ms, plain.metrics.mean_tpot_ms);
  // Long-run commit rate tracks the expected value.
  const double per_round =
      static_cast<double>(spec.spec_committed_tokens) /
      static_cast<double>(spec.spec_draft_tokens) * 4.0;
  EXPECT_NEAR(per_round, 3.3616, 0.2);
  for (const auto& r : spec.requests) {
    EXPECT_EQ(r.generated, r.output_tokens);  // never over-committed
  }
}

TEST(Speculation, ComposesWithPreemptionAndChunkedPrefill) {
  const Engine engine(a6000_marlin());
  ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 15.0;
  sc.kv_blocks = 96;  // tight: forces preemption under speculation
  sc.prefill_chunk_tokens = 16;
  sc.speculation.depth = 3;
  sc.speculation.acceptance = 0.7;
  const auto stats = simulate_serving_detailed(engine, sc);
  EXPECT_GT(stats.preemptions, 0);
  EXPECT_GT(stats.spec_rounds, 0);
  EXPECT_LE(stats.peak_kv_blocks, 96);
  for (const auto& r : stats.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
    EXPECT_EQ(r.generated, r.output_tokens);
  }
}

TEST(Speculation, BitIdenticalAcrossThreadCounts) {
  const Engine engine(a6000_marlin());
  ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 15.0;
  sc.kv_blocks = 128;
  sc.policy = SchedPolicy::kWeightedFair;
  sc.tenants = {TenantSpec{0, "a", 2.0, 0, 48, 1.0},
                TenantSpec{1, "b", 1.0, 1, 48, 1.0}};
  sc.speculation.depth = 4;
  sc.speculation.acceptance = 0.8;
  const SimContext serial(1);
  const SimContext pooled(4);
  const auto a = simulate_serving_detailed(engine, sc, serial);
  const auto b = simulate_serving_detailed(engine, sc, pooled);
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.metrics.mean_ttft_ms, b.metrics.mean_ttft_ms);
  EXPECT_EQ(a.metrics.p90_ttft_ms, b.metrics.p90_ttft_ms);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.spec_rounds, b.spec_rounds);
  EXPECT_EQ(a.spec_committed_tokens, b.spec_committed_tokens);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].finish_s, b.requests[i].finish_s);
    EXPECT_EQ(a.requests[i].tenant_id, b.requests[i].tenant_id);
  }
}

TEST(PerTenantMetrics, SplitsByTenant) {
  const Engine engine(a6000_marlin());
  ServingConfig sc;
  sc.qps = 6.0;
  sc.duration_s = 20.0;
  sc.policy = SchedPolicy::kWeightedFair;
  sc.tenants = {TenantSpec{0, "a", 1.0, 0, kNoQuota, 1.0},
                TenantSpec{1, "b", 1.0, 0, kNoQuota, 1.0}};
  const auto stats = simulate_serving_detailed(engine, sc);
  const auto tenants = per_tenant_metrics(stats);
  ASSERT_EQ(tenants.size(), 2u);
  index_t completed = 0, tokens = 0;
  for (const auto& t : tenants) {
    completed += t.completed;
    tokens += t.output_tokens;
    EXPECT_GT(t.completed, 0);
  }
  EXPECT_EQ(completed, stats.metrics.completed);
  index_t generated = 0;
  for (const auto& r : stats.requests) generated += r.generated;
  EXPECT_EQ(tokens, generated);
}

}  // namespace
}  // namespace marlin::serve::sched
