// L2 cache simulator and the evict_first hint — validating the paper's
// §3.4 cache-pollution argument: streaming B with evict_first preserves
// the A working set's residency; streaming it normally thrashes A.

#include <gtest/gtest.h>

#include "gpusim/l2cache.hpp"
#include "util/error.hpp"

namespace marlin::gpusim {
namespace {

TEST(L2Cache, Geometry) {
  const L2Cache c(6 * 1024 * 1024, 16, 128);
  EXPECT_EQ(c.ways(), 16);
  EXPECT_EQ(c.num_sets(), 6 * 1024 * 1024 / 128 / 16);  // 3072 sets (A10)
  EXPECT_THROW(L2Cache(64, 16, 128), marlin::Error);  // smaller than a set
}

TEST(L2Cache, HitAfterFill) {
  L2Cache c(64 * 1024, 4, 128);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(64));  // same line
  EXPECT_FALSE(c.access(128));
  EXPECT_EQ(c.stats().hits, 2);
  EXPECT_EQ(c.stats().misses, 2);
}

TEST(L2Cache, LruEvictionOrder) {
  // 4-way set: fill 4 lines of one set, access the first again (MRU),
  // insert a 5th -> the 2nd line (now LRU) must be gone.
  L2Cache c(4 * 128, 4, 128);  // a single set
  for (int i = 0; i < 4; ++i) c.access(static_cast<std::uint64_t>(i) * 128);
  EXPECT_TRUE(c.access(0));               // refresh line 0
  c.access(4ull * 128);                   // insert line 4, evicts line 1
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(2ull * 128));      // probe survivors before refills
  EXPECT_TRUE(c.access(3ull * 128));
  EXPECT_FALSE(c.access(1ull * 128));     // evicted
}

TEST(L2Cache, EvictFirstLinesGoFirst) {
  L2Cache c(4 * 128, 4, 128);
  for (int i = 0; i < 3; ++i) c.access(static_cast<std::uint64_t>(i) * 128);
  c.access(3ull * 128, CacheHint::kEvictFirst);  // LRU insert
  c.access(4ull * 128);                          // must evict line 3, not 0
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(1ull * 128));
  EXPECT_TRUE(c.access(2ull * 128));
  EXPECT_FALSE(c.access(3ull * 128));
}

/// Replays the MARLIN access pattern: A (working set smaller than L2) is
/// re-read by every SM-tile while B streams through exactly once.
double a_hit_rate_with_b_stream(CacheHint b_hint) {
  L2Cache cache(1 * 1024 * 1024, 16, 128);  // 1 MiB model L2
  const std::int64_t a_bytes = 256 * 1024;  // A working set: fits
  const std::int64_t b_total = 16 * 1024 * 1024;  // B: 16x the cache
  const std::uint64_t b_base = 1ull << 32;

  // Warm A once.
  cache.access_range(0, a_bytes, CacheHint::kNormal);
  cache.reset_stats();

  std::int64_t b_pos = 0;
  // One iteration streams 2 MiB of B — twice the cache, the regime where
  // unhinted streaming wipes every set.
  const std::int64_t b_chunk = 2 * 1024 * 1024;
  CacheStats a_stats;
  while (b_pos < b_total) {
    cache.access_range(b_base + static_cast<std::uint64_t>(b_pos), b_chunk,
                       b_hint);
    b_pos += b_chunk;
    // Every iteration the SMs re-read part of A.
    const auto before = cache.stats();
    cache.access_range(0, a_bytes / 8, CacheHint::kNormal);
    a_stats.hits += cache.stats().hits - before.hits;
    a_stats.misses += cache.stats().misses - before.misses;
  }
  return a_stats.hit_rate();
}

TEST(L2Cache, EvictFirstProtectsTheAWorkingSet) {
  const double with_hint = a_hit_rate_with_b_stream(CacheHint::kEvictFirst);
  const double without = a_hit_rate_with_b_stream(CacheHint::kNormal);
  EXPECT_GT(with_hint, 0.95) << "A must stay L2-resident under the hint";
  EXPECT_LT(without, 0.5) << "plain streaming must thrash A";
}

TEST(L2Cache, RangeAccessCountsEveryLine) {
  L2Cache c(64 * 1024, 4, 128);
  c.access_range(0, 1024, CacheHint::kNormal);  // 8 lines
  EXPECT_EQ(c.stats().misses, 8);
  c.access_range(0, 1024, CacheHint::kNormal);
  EXPECT_EQ(c.stats().hits, 8);
}

}  // namespace
}  // namespace marlin::gpusim
