// Dense linear algebra and GPTQ (with the paper's §3.5 modifications).

#include <gtest/gtest.h>

#include <cmath>

#include "quant/gptq.hpp"
#include "quant/linalg.hpp"
#include "quant/uniform.hpp"
#include "layout/repack.hpp"
#include "eval/metrics.hpp"
#include "eval/synthetic.hpp"
#include "util/rng.hpp"

namespace marlin::quant {
namespace {

Matrix<double> random_spd(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<double> a(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  Matrix<double> h(n, n, 0.0);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      for (index_t t = 0; t < n; ++t) h(i, j) += a(t, i) * a(t, j);
    }
    h(i, i) += static_cast<double>(n);  // well conditioned
  }
  return h;
}

TEST(Cholesky, ReconstructsMatrix) {
  const auto h = random_spd(24, 1);
  const auto l = cholesky_lower(h);
  for (index_t i = 0; i < 24; ++i) {
    for (index_t j = 0; j < 24; ++j) {
      double s = 0;
      for (index_t t = 0; t < 24; ++t) s += l(i, t) * l(j, t);
      EXPECT_NEAR(s, h(i, j), 1e-9 * std::abs(h(i, j)) + 1e-9);
      if (j > i) {
        EXPECT_DOUBLE_EQ(l(i, j), 0.0);  // lower triangular
      }
    }
  }
}

TEST(Cholesky, RejectsIndefinite) {
  Matrix<double> h(2, 2, 0.0);
  h(0, 0) = 1.0;
  h(1, 1) = -1.0;
  EXPECT_THROW(cholesky_lower(h), marlin::Error);
}

TEST(SpdInverse, ProducesIdentity) {
  const auto h = random_spd(16, 2);
  const auto inv = spd_inverse(h);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      double s = 0;
      for (index_t t = 0; t < 16; ++t) s += h(i, t) * inv(t, j);
      EXPECT_NEAR(s, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(UpperCholeskyOfInverse, SatisfiesUtU) {
  const auto h = random_spd(20, 3);
  const auto u = upper_cholesky_of_inverse(h);
  const auto inv = spd_inverse(h);
  for (index_t i = 0; i < 20; ++i) {
    for (index_t j = 0; j < 20; ++j) {
      if (j < i) {
        EXPECT_DOUBLE_EQ(u(i, j), 0.0);  // upper triangular
      }
      double s = 0;
      for (index_t t = 0; t < 20; ++t) s += u(t, i) * u(t, j);
      EXPECT_NEAR(s, inv(i, j), 1e-8);
    }
  }
}

TEST(Gram, MatchesDirectComputation) {
  Rng rng(4);
  Matrix<float> x(10, 6);
  for (index_t i = 0; i < 10; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      x(i, j) = static_cast<float>(rng.normal());
    }
  }
  const auto g = gram(x.view());
  for (index_t i = 0; i < 6; ++i) {
    for (index_t j = 0; j < 6; ++j) {
      double s = 0;
      for (index_t t = 0; t < 10; ++t) {
        s += static_cast<double>(x(t, i)) * x(t, j);
      }
      EXPECT_NEAR(g(i, j), s, 1e-9);
    }
  }
}

TEST(Hessian, VariableLengthSequencesEqualConcatenation) {
  // §3.5 (b): accumulating sequences of different lengths must equal one
  // accumulation of the concatenated activations.
  Rng rng(5);
  Matrix<float> x(48, 8);
  for (index_t i = 0; i < 48; ++i) {
    for (index_t j = 0; j < 8; ++j) x(i, j) = static_cast<float>(rng.normal());
  }
  HessianAccumulator split(8), whole(8);
  whole.add_sequence(x.view());
  split.add_sequence(x.view().block(0, 0, 7, 8));
  split.add_sequence(x.view().block(7, 0, 20, 8));
  split.add_sequence(x.view().block(27, 0, 21, 8));
  EXPECT_EQ(split.num_tokens(), whole.num_tokens());
  const auto h1 = split.hessian();
  const auto h2 = whole.hessian();
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 8; ++j) EXPECT_NEAR(h1(i, j), h2(i, j), 1e-9);
  }
}

TEST(Hessian, RejectsEmptyAndMismatched) {
  HessianAccumulator acc(8);
  EXPECT_THROW(acc.hessian(), marlin::Error);
  Matrix<float> bad(4, 7);
  EXPECT_THROW(acc.add_sequence(bad.view()), marlin::Error);
}

struct GptqCase {
  index_t k, n, group;
};

class GptqBeatsRtn : public ::testing::TestWithParam<GptqCase> {};

TEST_P(GptqBeatsRtn, OnCorrelatedCalibration) {
  // The central GPTQ claim: with a correlated Hessian, error-compensated
  // quantization beats round-to-nearest in *layer output* error.
  const auto [k, n, group] = GetParam();
  const auto layer = eval::make_synthetic_layer(k, n, 4 * k, 1234 + k + n);

  HessianAccumulator acc(k);
  acc.add_sequence(layer.calib.view());

  GptqConfig cfg;
  cfg.quant.group_size = group;
  const auto gptq = gptq_quantize(layer.w.view(), acc, cfg);
  const auto rtn = quantize_rtn(layer.w.view(), cfg.quant);

  const auto w_gptq = gptq.weights.dequantize();
  const auto w_rtn = rtn.dequantize();
  const double e_gptq = eval::layer_output_nmse(layer.w.view(), w_gptq.view(),
                                                layer.calib.view());
  const double e_rtn = eval::layer_output_nmse(layer.w.view(), w_rtn.view(),
                                               layer.calib.view());
  EXPECT_LT(e_gptq, e_rtn) << "GPTQ must beat RTN on correlated data";
  EXPECT_LT(e_gptq, 0.75 * e_rtn);  // and substantially so
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GptqBeatsRtn,
    ::testing::Values(GptqCase{64, 16, 64}, GptqCase{128, 24, 64},
                      GptqCase{128, 16, kPerColumn},
                      GptqCase{256, 16, 128}));

TEST(Gptq, ClipSearchImprovesHeavyTails) {
  const auto layer = eval::make_synthetic_layer(128, 16, 512, 42);
  HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  GptqConfig plain;
  plain.quant.group_size = 64;
  GptqConfig clipped = plain;
  clipped.quant.clip_search = true;
  const auto r_plain = gptq_quantize(layer.w.view(), acc, plain);
  const auto r_clip = gptq_quantize(layer.w.view(), acc, clipped);
  const double e_plain = eval::layer_output_nmse(
      layer.w.view(), r_plain.weights.dequantize().view(),
      layer.calib.view());
  const double e_clip = eval::layer_output_nmse(
      layer.w.view(), r_clip.weights.dequantize().view(),
      layer.calib.view());
  EXPECT_LT(e_clip, e_plain * 1.02);  // never meaningfully worse
}

TEST(Gptq, ScalesAreFp16AndCodesInRange) {
  const auto layer = eval::make_synthetic_layer(128, 8, 256, 7);
  HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  GptqConfig cfg;
  cfg.quant.group_size = 32;
  const auto r = gptq_quantize(layer.w.view(), acc, cfg);
  EXPECT_EQ(r.weights.scales.rows(), 4);
  for (index_t i = 0; i < 128; ++i) {
    for (index_t j = 0; j < 8; ++j) EXPECT_LT(r.weights.codes(i, j), 16);
  }
  EXPECT_GT(r.hessian_weighted_error, 0.0);
}

TEST(Gptq, ActOrderValidAndCompetitiveOnHeterogeneousHessian) {
  // Strong per-feature scale diversity makes the Hessian diagonal very
  // heterogeneous — the regime desc_act was designed for.
  eval::SyntheticParams sp;
  sp.feature_scale_sigma = 1.2;
  const auto layer = eval::make_synthetic_layer(128, 16, 512, 911, sp);
  HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  const auto h = acc.hessian();

  GptqConfig plain;
  plain.quant.group_size = 32;
  GptqConfig ao = plain;
  ao.act_order = true;
  const auto r_plain = gptq_quantize(layer.w.view(), h, plain);
  const auto r_ao = gptq_quantize(layer.w.view(), h, ao);

  // Structure: group_index present, one entry per row, values in range.
  ASSERT_EQ(r_ao.weights.group_index.size(), 128u);
  for (const index_t g : r_ao.weights.group_index) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, r_ao.weights.num_groups());
  }
  // Every group must be assigned exactly group_size rows.
  std::vector<int> counts(static_cast<std::size_t>(r_ao.weights.num_groups()));
  for (const index_t g : r_ao.weights.group_index) {
    ++counts[static_cast<std::size_t>(g)];
  }
  for (const int c : counts) EXPECT_EQ(c, 32);

  // Quality: act-order is competitive (typically better) on this regime.
  const double e_plain = eval::layer_output_nmse(
      layer.w.view(), r_plain.weights.dequantize().view(),
      layer.calib.view());
  const double e_ao = eval::layer_output_nmse(
      layer.w.view(), r_ao.weights.dequantize().view(), layer.calib.view());
  EXPECT_LT(e_ao, e_plain * 1.1);
  EXPECT_LT(e_ao, 0.05);
}

TEST(Gptq, ActOrderCheckpointsRejectedByMarlinRepack) {
  const auto layer = eval::make_synthetic_layer(64, 64, 256, 912);
  HessianAccumulator acc(64);
  acc.add_sequence(layer.calib.view());
  GptqConfig cfg;
  cfg.quant.group_size = 32;
  cfg.act_order = true;
  const auto r = gptq_quantize(layer.w.view(), acc, cfg);
  EXPECT_THROW(layout::marlin_repack(r.weights), marlin::Error);
}

TEST(Gptq, HessianShapeMismatchThrows) {
  Matrix<float> w(64, 8, 0.1f);
  Matrix<double> h(32, 32, 0.0);
  GptqConfig cfg;
  EXPECT_THROW(gptq_quantize(w.view(), h, cfg), marlin::Error);
}

}  // namespace
}  // namespace marlin::quant
