// Observability layer: trace-recorder span protocol and byte-determinism,
// metrics registry semantics (histogram `le` buckets, kind safety,
// sorted exposition), the ServeRecorder taxonomy over a full cluster
// simulation (balanced spans, per-track monotone timestamps, metrics
// cross-checked against SchedStats), and the recording-off fast path
// (identical results, zero allocations in the steady-state decode tick).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/serve_recorder.hpp"
#include "obs/trace.hpp"
#include "serve/server_sim.hpp"

// Counting global allocator (same pattern as test_simd_dispatch): every
// replaceable operator new in this binary bumps one relaxed counter, so
// tests can assert a code window performed zero heap allocations.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

std::uint64_t alloc_count() {
  return g_new_calls.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a =
      std::max(sizeof(void*), static_cast<std::size_t>(al));
  void* p = nullptr;
  if (posix_memalign(&p, a, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace marlin::obs {
namespace {

// ------------------------------------------------------- value formatting

TEST(Formatting, FixedTrimmedDropsTrailingZerosAndDot) {
  EXPECT_EQ(format_fixed_trimmed(12.5, 3), "12.5");
  EXPECT_EQ(format_fixed_trimmed(3.0, 3), "3");
  EXPECT_EQ(format_fixed_trimmed(0.125, 6), "0.125");
  EXPECT_EQ(format_fixed_trimmed(-2.50, 2), "-2.5");
  EXPECT_EQ(format_fixed_trimmed(0.0, 3), "0");
  // A negative value that rounds to zero must not print "-0".
  EXPECT_EQ(format_fixed_trimmed(-1e-9, 3), "0");
}

TEST(Formatting, MetricValueIntegralWithoutFraction) {
  EXPECT_EQ(format_metric_value(42.0), "42");
  EXPECT_EQ(format_metric_value(0.0), "0");
  EXPECT_EQ(format_metric_value(0.125), "0.125");
  EXPECT_EQ(format_metric_value(-3.0), "-3");
}

// --------------------------------------------------------- trace recorder

TEST(TraceRecorder, EventsKeepRecordingOrderAndMetadataIsExcluded) {
  TraceRecorder t;
  t.set_process_name(1, "cluster");
  t.begin(1, 1, "span", "cat", 0.001);
  t.instant(1, 1, "mark", "cat", 0.002);
  t.end(1, 1, "span", "cat", 0.003);
  ASSERT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.events()[0].ph, TracePhase::kBegin);
  EXPECT_EQ(t.events()[1].ph, TracePhase::kInstant);
  EXPECT_EQ(t.events()[2].ph, TracePhase::kEnd);
  // Seconds are stored as microseconds.
  EXPECT_DOUBLE_EQ(t.events()[0].ts_us, 1000.0);
}

TEST(TraceRecorder, JsonPutsSortedMetadataFirstAndIsDeterministic) {
  const auto record = [] {
    TraceRecorder t;
    // Register names late and out of order; serialization must not care.
    t.complete(7, 2, "step", "engine", 0.0, 0.5,
               {TraceArg{"batch", std::int64_t{8}}});
    t.counter(7, 2, "occupancy", 0.5,
              {TraceArg{"queued", std::int64_t{3}}});
    t.instant(1, 1, "route", "router", 0.25, {TraceArg{"policy",
                                                       std::string("rr")}});
    t.set_thread_name(7, 2, "engine");
    t.set_process_name(7, "replica 7");
    t.set_process_name(1, "cluster");
    return t.to_json();
  };
  const std::string json = record();
  EXPECT_EQ(json, record());  // repeat runs are byte-identical
  // Metadata precedes every timeline event, sorted by (pid, tid).
  const auto cluster_meta = json.find("\"name\":\"cluster\"");
  const auto replica_meta = json.find("\"name\":\"replica 7\"");
  const auto first_event = json.find("\"ph\":\"X\"");
  ASSERT_NE(cluster_meta, std::string::npos);
  ASSERT_NE(replica_meta, std::string::npos);
  ASSERT_NE(first_event, std::string::npos);
  EXPECT_LT(cluster_meta, replica_meta);
  EXPECT_LT(replica_meta, first_event);
  // Fixed float formatting: 0.25 s -> 250000 us prints without a fraction.
  EXPECT_NE(json.find("\"ts\":250000"), std::string::npos);
  // Instants carry thread scope so Perfetto draws them on their track.
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
}

TEST(TraceRecorder, JsonEscapesStrings) {
  TraceRecorder t;
  t.instant(1, 1, "quote\"back\\slash", "c", 0.0,
            {TraceArg{"msg", std::string("line\nbreak")}});
  const std::string json = t.to_json();
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos);
}

// ------------------------------------------------------- metrics registry

TEST(Metrics, HistogramBucketEdgesUseLessOrEqualSemantics) {
  Histogram h({1.0, 2.5, 10.0});
  h.observe(1.0);   // lands in le="1" (inclusive upper bound)
  h.observe(1.001); // le="2.5"
  h.observe(2.5);   // le="2.5"
  h.observe(10.0);  // le="10"
  h.observe(10.5);  // +Inf
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.cumulative_count(0), 1u);
  EXPECT_EQ(h.cumulative_count(1), 3u);
  EXPECT_EQ(h.cumulative_count(2), 4u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 25.001);
}

TEST(Metrics, HistogramRejectsEmptyOrUnsortedBounds) {
  EXPECT_THROW(Histogram({}), std::exception);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::exception);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::exception);
}

TEST(Metrics, RegistryReturnsStableInstrumentsAndChecksKinds) {
  MetricsRegistry reg;
  Counter& c = reg.counter("marlin_test_total", "help");
  c.inc();
  EXPECT_EQ(&reg.counter("marlin_test_total", "help"), &c);
  EXPECT_DOUBLE_EQ(reg.counter("marlin_test_total", "help").value(), 1.0);
  // One name cannot be two kinds, and histogram buckets must agree.
  EXPECT_THROW(reg.gauge("marlin_test_total", "help"), std::exception);
  reg.histogram("marlin_h", "help", {1.0, 2.0});
  EXPECT_THROW(reg.histogram("marlin_h", "help", {1.0, 3.0}),
               std::exception);
}

TEST(Metrics, ExpositionSortsFamiliesAndSeriesDeterministically) {
  const auto render = [] {
    MetricsRegistry reg;
    reg.gauge("marlin_z_gauge", "last").set(2.5);
    reg.counter("marlin_a_total", "first", "tenant=\"1\"").inc(3);
    reg.counter("marlin_a_total", "first", "tenant=\"0\"").inc(2);
    reg.histogram("marlin_m_ms", "mid", {1.0, 5.0}).observe(4.0);
    return reg.expose();
  };
  const std::string text = render();
  EXPECT_EQ(text, render());
  // Families in name order, labelled series in label order.
  const auto a0 = text.find("marlin_a_total{tenant=\"0\"} 2");
  const auto a1 = text.find("marlin_a_total{tenant=\"1\"} 3");
  const auto m = text.find("# TYPE marlin_m_ms histogram");
  const auto z = text.find("marlin_z_gauge 2.5");
  ASSERT_NE(a0, std::string::npos);
  ASSERT_NE(a1, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a0, a1);
  EXPECT_LT(a1, m);
  EXPECT_LT(m, z);
  EXPECT_NE(text.find("marlin_m_ms_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("marlin_m_ms_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("marlin_m_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("marlin_m_ms_sum 4"), std::string::npos);
  EXPECT_NE(text.find("marlin_m_ms_count 1"), std::string::npos);
}

// ------------------------------------------- full-simulation cross-checks

const serve::Engine& test_engine() {
  static const serve::Engine engine = [] {
    serve::EngineConfig cfg;
    cfg.model = serve::llama2_7b();
    cfg.gpu = gpusim::rtxa6000();
    cfg.format = serve::WeightFormat::kMarlin;
    return serve::Engine(cfg);
  }();
  return engine;
}

/// A config that exercises every event family: tight KV (preemptions),
/// a TTFT deadline (sheds + violations), speculation (spec rounds),
/// tenants (per-tenant counters) and the autoscaler (replica lifecycle).
serve::ServingConfig stress_config() {
  serve::ServingConfig cfg;
  cfg.qps = 20.0;
  cfg.duration_s = 12.0;
  cfg.seed = 42;
  cfg.kv_blocks = 64;
  cfg.shape = serve::sched::WorkloadShape::kBursty;
  cfg.slo.ttft_deadline_ms = 400.0;
  cfg.slo.tpot_deadline_ms = 15.0;
  cfg.speculation.depth = 4;
  cfg.speculation.acceptance = 0.8;
  for (index_t t = 0; t < 2; ++t) {
    serve::sched::TenantSpec spec;
    spec.id = t;
    spec.name = "t" + std::to_string(t);
    cfg.tenants.push_back(spec);
  }
  cfg.cluster.autoscaler.enabled = true;
  cfg.cluster.autoscaler.min_replicas = 1;
  cfg.cluster.autoscaler.max_replicas = 3;
  cfg.cluster.autoscaler.interval_s = 2.0;
  cfg.cluster.autoscaler.scale_up_queue_per_replica = 4.0;
  cfg.cluster.autoscaler.scale_down_queue_per_replica = 0.5;
  return cfg;
}

struct Observation {
  std::string trace_json;
  std::string metrics_text;
  serve::cluster::ClusterStats stats;
  std::size_t event_count = 0;
};

Observation observe(const SimContext& ctx) {
  TraceRecorder trace;
  MetricsRegistry metrics;
  ServeRecorder rec(&trace, &metrics);
  serve::ServingConfig cfg = stress_config();
  cfg.recorder = &rec;
  Observation out;
  out.stats = serve::simulate_cluster_detailed(test_engine(), cfg, ctx);
  out.trace_json = trace.to_json();
  out.metrics_text = metrics.expose();
  out.event_count = trace.events().size();
  return out;
}

/// The value of an exposed series, found by exact line prefix
/// (`name value` or `name{labels} value`); -1 when absent.
double metric_value(const std::string& text, const std::string& series) {
  std::istringstream in(text);
  std::string line;
  const std::string prefix = series + " ";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      return std::stod(line.substr(prefix.size()));
    }
  }
  return -1.0;
}

TEST(ServeRecorderSim, ByteIdenticalAcrossThreadCountsAndRepeatRuns) {
  const Observation serial = observe(SimContext::serial_context());
  EXPECT_GT(serial.event_count, 100u);
  {
    const SimContext threaded(4);
    const Observation t4 = observe(threaded);
    EXPECT_EQ(serial.trace_json, t4.trace_json);
    EXPECT_EQ(serial.metrics_text, t4.metrics_text);
  }
  const Observation again = observe(SimContext::serial_context());
  EXPECT_EQ(serial.trace_json, again.trace_json);
  EXPECT_EQ(serial.metrics_text, again.metrics_text);
}

TEST(ServeRecorderSim, RecorderDoesNotChangeSchedulingResults) {
  const serve::ServingConfig plain = stress_config();
  const auto base = serve::simulate_cluster_detailed(test_engine(), plain);
  const Observation obs = observe(SimContext::serial_context());
  EXPECT_EQ(base.sched.metrics.completed, obs.stats.sched.metrics.completed);
  EXPECT_EQ(base.sched.metrics.mean_tpot_ms,
            obs.stats.sched.metrics.mean_tpot_ms);
  EXPECT_EQ(base.sched.preemptions, obs.stats.sched.preemptions);
  EXPECT_EQ(base.sched.shed, obs.stats.sched.shed);
  EXPECT_EQ(base.sched.sim_end_s, obs.stats.sched.sim_end_s);
}

TEST(ServeRecorderSim, SpansBalanceAndTimestampsAreMonotonePerTrack) {
  TraceRecorder trace;
  ServeRecorder rec(&trace, nullptr);
  serve::ServingConfig cfg = stress_config();
  cfg.recorder = &rec;
  (void)serve::simulate_cluster_detailed(test_engine(), cfg);

  std::map<std::pair<std::int64_t, std::int64_t>, double> last_ts;
  std::map<std::pair<std::int64_t, std::int64_t>, std::vector<std::string>>
      open;
  for (const TraceEvent& ev : trace.events()) {
    const auto track = std::make_pair(ev.pid, ev.tid);
    const auto [it, fresh] = last_ts.try_emplace(track, ev.ts_us);
    if (!fresh) {
      EXPECT_GE(ev.ts_us, it->second)
          << ev.name << " goes backwards on track (" << ev.pid << ", "
          << ev.tid << ")";
      it->second = ev.ts_us;
    }
    if (ev.ph == TracePhase::kBegin) {
      open[track].push_back(ev.name);
    } else if (ev.ph == TracePhase::kEnd) {
      auto& stack = open[track];
      ASSERT_FALSE(stack.empty())
          << "E `" << ev.name << "` without open B on track (" << ev.pid
          << ", " << ev.tid << ")";
      EXPECT_EQ(stack.back(), ev.name);
      stack.pop_back();
    } else if (ev.ph == TracePhase::kComplete) {
      EXPECT_GE(ev.dur_us, 0.0);
    }
  }
  for (const auto& [track, stack] : open) {
    EXPECT_TRUE(stack.empty())
        << stack.size() << " span(s) left open on track (" << track.first
        << ", " << track.second << ")";
  }
}

TEST(ServeRecorderSim, MetricsAgreeWithSchedStats) {
  const Observation obs = observe(SimContext::serial_context());
  const auto& st = obs.stats.sched;
  const auto& text = obs.metrics_text;
  // The stress config must actually exercise the interesting paths.
  EXPECT_GT(st.preemptions, 0);
  EXPECT_GT(st.shed, 0);
  EXPECT_GT(st.spec_rounds, 0);
  EXPECT_EQ(metric_value(text, "marlin_preemptions_total"),
            static_cast<double>(st.preemptions));
  EXPECT_EQ(metric_value(text, "marlin_requests_shed_total"),
            static_cast<double>(st.shed));
  EXPECT_EQ(metric_value(text, "marlin_requests_completed_total"),
            static_cast<double>(st.metrics.completed));
  EXPECT_EQ(metric_value(text, "marlin_prefill_steps_total"),
            static_cast<double>(st.prefill_steps));
  EXPECT_EQ(metric_value(text, "marlin_decode_steps_total"),
            static_cast<double>(st.decode_steps));
  EXPECT_EQ(metric_value(text, "marlin_spec_rounds_total"),
            static_cast<double>(st.spec_rounds));
  EXPECT_EQ(metric_value(text, "marlin_spec_draft_tokens_total"),
            static_cast<double>(st.spec_draft_tokens));
  EXPECT_EQ(metric_value(text, "marlin_spec_committed_tokens_total"),
            static_cast<double>(st.spec_committed_tokens));
  EXPECT_EQ(metric_value(text, "marlin_slo_ttft_violations_total"),
            static_cast<double>(st.slo_ttft_violations));
  EXPECT_EQ(metric_value(text, "marlin_slo_tpot_violations_total"),
            static_cast<double>(st.slo_tpot_violations));
  EXPECT_EQ(metric_value(text, "marlin_kv_blocks_peak"),
            static_cast<double>(st.peak_kv_blocks));
  EXPECT_EQ(metric_value(text, "marlin_replicas_peak"),
            static_cast<double>(obs.stats.peak_replicas));
  EXPECT_EQ(metric_value(text, "marlin_ttft_ms_count"),
            static_cast<double>(st.metrics.completed));
  // All KV blocks handed out came back (no leaks), and every routed
  // request terminated one way or another.
  EXPECT_EQ(metric_value(text, "marlin_kv_blocks_allocated_total"),
            metric_value(text, "marlin_kv_blocks_freed_total"));
  EXPECT_EQ(metric_value(text, "marlin_requests_routed_total"),
            metric_value(text, "marlin_requests_completed_total") +
                metric_value(text, "marlin_requests_rejected_total") +
                metric_value(text, "marlin_requests_shed_total"));
  // Per-tenant service: the two tenants' token counters sum to the total
  // generated output.
  index_t generated = 0;
  for (const auto& r : st.requests) generated += r.generated;
  EXPECT_EQ(metric_value(text,
                         "marlin_tenant_tokens_generated_total{"
                         "tenant=\"0\"}") +
                metric_value(text,
                             "marlin_tenant_tokens_generated_total{"
                             "tenant=\"1\"}"),
            static_cast<double>(generated));
}

// ------------------------------------------------- recording-off fast path

TEST(HotPath, SteadyStateDecodeTickWithNullObserverDoesNotAllocate) {
  serve::sched::SchedulerConfig scfg;
  scfg.policy = serve::sched::SchedPolicy::kFcfs;
  scfg.max_batch = 8;
  scfg.blocks.block_size = 16;
  scfg.blocks.num_blocks = 256;
  const serve::sched::Scheduler sched(test_engine(), scfg);

  std::vector<serve::sched::Request> requests;
  for (index_t i = 0; i < 8; ++i) requests.emplace_back(i, 0.0, 64, 32);
  for (index_t batch = 1; batch <= scfg.max_batch; ++batch) {
    for (index_t b = 0; b < 4; ++b) {
      (void)test_engine().decode_step_seconds(
          batch, static_cast<double>(b) * 64.0 + 1.0);
    }
  }

  serve::sched::ReplicaState s = sched.make_replica_state();
  ASSERT_EQ(s.obs, nullptr);  // recording defaults off
  sched.register_tenants(s, requests);
  for (std::size_t i = 0; i < requests.size(); ++i) s.queue.push_back(i);
  while (s.decode_steps < 2) {
    ASSERT_TRUE(s.busy());
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  ASSERT_EQ(s.running.size(), requests.size());

  const std::uint64_t before = alloc_count();
  for (int tick = 0; tick < 5; ++tick) {
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  const std::uint64_t allocs = alloc_count() - before;
  EXPECT_EQ(allocs, 0u)
      << allocs << " heap allocations across 5 steady-state decode ticks "
      << "with the observer hooks compiled in but off";
}

}  // namespace
}  // namespace marlin::obs
