// Timing models: the quantitative *shape* claims of paper §5.1 —
// near-ideal memory-bound speedup to batch 16-32, crossover near 64,
// comparator collapse, sparse uplift, locked-clock behaviour.

#include <gtest/gtest.h>

#include "baselines/kernel_model.hpp"
#include "core/timing.hpp"
#include "gpusim/device.hpp"

namespace marlin::core {
namespace {

using baselines::make_kernel_model;
using gpusim::ClockMode;

// The paper's Figure 1 matrix: "72k x 18k", group 128.
MatmulProblem fig1_problem(index_t m) {
  return {m, 18432, 73728, 128, false};
}

double speedup(const std::string& kernel, index_t m,
               const gpusim::DeviceSpec& d, ClockMode mode) {
  const gpusim::ClockModel clock{mode};
  const auto fp16 = make_kernel_model("fp16");
  const auto k = make_kernel_model(kernel);
  return fp16->estimate(fig1_problem(m), d, clock).seconds /
         k->estimate(fig1_problem(m), d, clock).seconds;
}

TEST(MarlinTiming, NearIdealSpeedupAtSmallBatch) {
  // Paper: "close to the maximum possible 3.87x speedup up to batchsizes
  // around 16-32".
  const auto d = gpusim::a10();
  for (const index_t m : {1, 2, 4, 8, 16}) {
    const double s = speedup("marlin", m, d, ClockMode::kBoost);
    EXPECT_GT(s, 3.4) << "batch " << m;
    EXPECT_LT(s, 4.0) << "batch " << m;
  }
}

TEST(MarlinTiming, GradualDecayTowards1p5At128) {
  // Paper: "speedups gradually reduce, towards 1.5x at batch size 128".
  const auto d = gpusim::a10();
  const double s32 = speedup("marlin", 32, d, ClockMode::kBoost);
  const double s64 = speedup("marlin", 64, d, ClockMode::kBoost);
  const double s128 = speedup("marlin", 128, d, ClockMode::kBoost);
  EXPECT_GT(s32, s64);
  EXPECT_GT(s64, s128);
  EXPECT_GT(s128, 1.2);
  EXPECT_LT(s128, 2.2);
}

TEST(MarlinTiming, TracksIdealWithinTenPercent) {
  // MARLIN's curve must hug the ideal bound at every batch size (Fig. 1).
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto marlin = make_kernel_model("marlin");
  const auto ideal = make_kernel_model("ideal-int4");
  for (const index_t m : {1, 4, 16, 32, 64, 128}) {
    const double t_m = marlin->estimate(fig1_problem(m), d, clock).seconds;
    const double t_i = ideal->estimate(fig1_problem(m), d, clock).seconds;
    EXPECT_LT(t_m / t_i, 1.25) << "batch " << m;
    EXPECT_GE(t_m / t_i, 0.97) << "ideal must lower-bound marlin";
  }
}

TEST(MarlinTiming, MonotoneInBatch) {
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto marlin = make_kernel_model("marlin");
  double prev = 0.0;
  for (index_t m = 1; m <= 256; m *= 2) {
    const double t = marlin->estimate(fig1_problem(m), d, clock).seconds;
    EXPECT_GE(t, prev * 0.999) << "batch " << m;
    prev = t;
  }
}

TEST(MarlinTiming, ComparatorsCollapseWithBatch) {
  // Paper Fig. 1: comparators are competitive at batch 1 but fall below
  // 1x between batch 16 and 64.
  const auto d = gpusim::a10();
  for (const char* name :
       {"torch-int4", "exllamav2", "awq", "bitsandbytes"}) {
    const double s1 = speedup(name, 1, d, ClockMode::kBoost);
    const double s128 = speedup(name, 128, d, ClockMode::kBoost);
    EXPECT_GT(s1, 1.8) << name;
    EXPECT_LT(s128, 1.1) << name;
    EXPECT_LT(s128, s1 / 2.5) << name << " must collapse";
  }
  // And MARLIN dominates every comparator at every batch size.
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto marlin = make_kernel_model("marlin");
  for (const index_t m : {1, 8, 32, 128}) {
    const double t_marlin =
        marlin->estimate(fig1_problem(m), d, clock).seconds;
    for (const auto& comp : baselines::open_source_comparators()) {
      EXPECT_LT(t_marlin, comp->estimate(fig1_problem(m), d, clock).seconds)
          << comp->name() << " at batch " << m;
    }
  }
}

TEST(MarlinTiming, LockedBaseClockStillNearIdeal) {
  // Paper Fig. 10: at locked base clock MARLIN remains near the (base
  // clock) ideal while comparators lose even more ground.
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kLockedBase};
  const auto marlin = make_kernel_model("marlin");
  const auto ideal = make_kernel_model("ideal-int4");
  for (const index_t m : {1, 16, 32}) {
    const double t_m = marlin->estimate(fig1_problem(m), d, clock).seconds;
    const double t_i = ideal->estimate(fig1_problem(m), d, clock).seconds;
    EXPECT_LT(t_m / t_i, 1.25) << "batch " << m;
  }
  // Comparators: base clock hurts their relative speedup more than
  // MARLIN's (their CUDA-core dequant scales with the clock).
  for (const char* name : {"exllamav2", "awq"}) {
    const double boost16 = speedup(name, 16, d, ClockMode::kBoost);
    const double base16 = speedup(name, 16, d, ClockMode::kLockedBase);
    EXPECT_LT(base16, boost16) << name;
  }
}

TEST(MarlinTiming, PrefillWithinTenPercentOfFp16) {
  // Paper §5.1: "even in this case, MARLIN is nearly identical to an
  // uncompressed compute-bound matmul up to batch size 1024, with only
  // ~10% slow-down at even larger input shapes" (on A100).
  const auto d = gpusim::a100_80g();
  const gpusim::ClockModel clock{ClockMode::kAutoThermal};
  const auto marlin = make_kernel_model("marlin");
  const auto fp16 = make_kernel_model("fp16");
  for (const index_t m : {1024, 4096}) {
    MatmulProblem p{m, 8192, 8192, 128, false};
    const double t_m = marlin->estimate(p, d, clock).seconds;
    const double t_f = fp16->estimate(p, d, clock).seconds;
    EXPECT_LT(t_m / t_f, 1.15) << "batch " << m;
  }
}

TEST(SparseTiming, UpliftOverDenseGrowsWithBatch) {
  // Paper Fig. 12: up to ~65% additional speedup, realised in the
  // compute-bound regime (sparse tensor cores at 2x).
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto dense = make_kernel_model("marlin");
  const auto sparse = make_kernel_model("sparse-marlin");
  double uplift_small = 0, uplift_large = 0;
  {
    const auto p = fig1_problem(4);
    uplift_small = dense->estimate(p, d, clock).seconds /
                   sparse->estimate(p, d, clock).seconds;
  }
  {
    const auto p = fig1_problem(128);
    uplift_large = dense->estimate(p, d, clock).seconds /
                   sparse->estimate(p, d, clock).seconds;
  }
  EXPECT_GT(uplift_small, 1.1);  // memory side: 0.75x bytes => ~1.33x
  EXPECT_LT(uplift_small, 1.5);
  EXPECT_GT(uplift_large, 1.5);  // compute side: ~2x
  EXPECT_GT(uplift_large, uplift_small);
}

TEST(SparseTiming, SparseBeatsDenseEverywhere) {
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto dense = make_kernel_model("marlin");
  const auto sparse = make_kernel_model("sparse-marlin");
  for (index_t m = 1; m <= 512; m *= 4) {
    const auto p = fig1_problem(m);
    EXPECT_LT(sparse->estimate(p, d, clock).seconds,
              dense->estimate(p, d, clock).seconds)
        << "batch " << m;
  }
}

TEST(Timing, Eq1ViolationMakesNarrowTilesSlower) {
  // At batch 64, N_sm = 64 violates Eq. (1) (A re-reads exceed L2 budget);
  // the wide 256 tile must win.
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto p = fig1_problem(64);
  KernelConfig narrow;
  narrow.n_sm_tile = 64;
  narrow.num_warps = 4;
  KernelConfig wide;
  wide.n_sm_tile = 256;
  const double t_narrow = marlin_estimate(p, narrow, d, clock).seconds;
  const double t_wide = marlin_estimate(p, wide, d, clock).seconds;
  EXPECT_LT(t_wide, t_narrow);
}

TEST(Timing, SmallerGpusGetBiggerRelativeSpeedupsOnRealLayers) {
  // Paper Fig. 9: better speedups on 3090 than on A100 for the same
  // (small) layer shapes — overheads weigh more on the faster part.
  MatmulProblem layer{16, 4096, 4096, 128, false};
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto fp16 = make_kernel_model("fp16");
  const auto marlin = make_kernel_model("marlin");
  auto sp = [&](const gpusim::DeviceSpec& d) {
    return fp16->estimate(layer, d, clock).seconds /
           marlin->estimate(layer, d, clock).seconds;
  };
  EXPECT_GT(sp(gpusim::rtx3090()), sp(gpusim::a100_80g()));
}

TEST(Timing, ThermalThrottleCapsLongKernels) {
  // Paper Fig. 11: long compute-heavy kernels drop towards the base-clock
  // roof.
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kAutoThermal};
  MatmulProblem big{4096, 32768, 32768, 128, false};
  const auto est = core::marlin_estimate_auto(big, d, clock);
  EXPECT_LT(est.effective_clock_ghz, d.boost_clock_ghz * 0.75);
  EXPECT_GE(est.effective_clock_ghz, d.base_clock_ghz * 0.99);
}

TEST(Timing, EstimateTrafficConsistent) {
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{ClockMode::kBoost};
  const auto p = fig1_problem(16);
  const auto est = core::marlin_estimate_auto(p, d, clock);
  // Weight bytes dominate GMEM reads; intensity must exceed 2/(bytes per
  // weight) * ... sanity: intensity in (10, 300) for batch 16.
  EXPECT_GT(est.arithmetic_intensity(), 10.0);
  EXPECT_LT(est.arithmetic_intensity(), 300.0);
  EXPECT_GT(est.achieved_tflops(), 1.0);
}

TEST(Factory, AllModelsConstructible) {
  for (const char* name :
       {"fp16", "marlin", "sparse-marlin", "torch-int4", "exllamav2", "awq",
        "bitsandbytes", "ideal-dense", "ideal-int4", "ideal-sparse"}) {
    EXPECT_EQ(baselines::make_kernel_model(name)->name(), name);
  }
  EXPECT_THROW(baselines::make_kernel_model("nope"), marlin::Error);
}

}  // namespace
}  // namespace marlin::core
