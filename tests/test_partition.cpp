// Striped partitioning (paper Fig. 5): coverage, balance, segment order,
// closed-form stats, and comparison against column-wise partitioning.

#include <gtest/gtest.h>

#include <set>

#include "core/partition.hpp"

namespace marlin::core {
namespace {

struct GridCase {
  index_t rows, cols;
  int sms;
  index_t m_blocks;
};

class StripedProperties : public ::testing::TestWithParam<GridCase> {};

TEST_P(StripedProperties, CoversEveryTileExactlyOnce) {
  const auto [rows, cols, sms, mb] = GetParam();
  const auto part = striped_partition(rows, cols, sms, mb);
  std::set<std::tuple<index_t, index_t, index_t>> seen;
  for (const auto& stripe : part.sm_tiles) {
    for (const auto& t : stripe) {
      EXPECT_TRUE(seen.insert({t.row, t.col, t.m_block}).second);
      EXPECT_LT(t.row, rows);
      EXPECT_LT(t.col, cols);
      EXPECT_LT(t.m_block, mb);
    }
  }
  EXPECT_EQ(static_cast<index_t>(seen.size()), rows * cols * mb);
}

TEST_P(StripedProperties, BalancedWithinOneTile) {
  const auto [rows, cols, sms, mb] = GetParam();
  const auto part = striped_partition(rows, cols, sms, mb);
  EXPECT_LE(part.max_stripe_len() - part.min_stripe_len(), 1);
}

TEST_P(StripedProperties, SegmentsAreBottomToTopAndDisjoint) {
  const auto [rows, cols, sms, mb] = GetParam();
  const auto part = striped_partition(rows, cols, sms, mb);
  for (const auto& segs : part.segments) {
    index_t covered = 0;
    index_t prev_begin = rows + 1;
    for (const auto& s : segs) {
      EXPECT_LT(s.row_begin, prev_begin);  // strictly descending
      prev_begin = s.row_begin;
      EXPECT_LT(s.row_begin, s.row_end);
      covered += s.row_end - s.row_begin;
    }
    EXPECT_EQ(covered, rows);  // column fully covered
  }
}

TEST_P(StripedProperties, StatsMatchMaterializedPartition) {
  const auto [rows, cols, sms, mb] = GetParam();
  const auto part = striped_partition(rows, cols, sms, mb);
  const auto stats = striped_partition_stats(rows, cols, sms, mb);
  EXPECT_EQ(stats.total_tiles, part.total_tiles());
  EXPECT_EQ(stats.max_stripe, part.max_stripe_len());
  EXPECT_EQ(stats.min_stripe, part.min_stripe_len());
  EXPECT_EQ(stats.reduction_steps, part.reduction_steps());
  EXPECT_EQ(stats.max_column_depth, part.max_column_depth());
}

INSTANTIATE_TEST_SUITE_P(
    Grids, StripedProperties,
    ::testing::Values(GridCase{8, 4, 6, 1}, GridCase{288, 288, 72, 1},
                      GridCase{7, 3, 5, 1}, GridCase{64, 18, 72, 1},
                      GridCase{16, 2, 108, 1}, GridCase{32, 9, 72, 2},
                      GridCase{5, 1, 4, 4}, GridCase{1, 1, 72, 1},
                      GridCase{288, 288, 72, 2}));

TEST(Striped, StripesSpanColumnsLikeFigure5) {
  // 7 tiles rows x 4 cols on 7 SMs (the paper's Figure 5 geometry): the
  // stripes must spill across columns.
  const auto part = striped_partition(7, 4, 7, 1);
  // Each SM gets exactly 4 tiles.
  for (const auto& s : part.sm_tiles) EXPECT_EQ(s.size(), 4u);
  // SM 1 spans columns 0 and 1 (tiles 4,5,6 of col 0 and tile 0 of col 1).
  const auto& sm1 = part.sm_tiles[1];
  EXPECT_EQ(sm1.front().col, 0);
  EXPECT_EQ(sm1.back().col, 1);
}

TEST(Striped, FewerTilesThanSmsLeavesIdleSms) {
  const auto part = striped_partition(2, 2, 16, 1);
  index_t empty = 0;
  for (const auto& s : part.sm_tiles) {
    if (s.empty()) ++empty;
  }
  EXPECT_EQ(empty, 12);
  const auto stats = striped_partition_stats(2, 2, 16, 1);
  EXPECT_EQ(stats.active_sms, 4);
}

TEST(Striped, VirtualReplicationReducesReductionSteps) {
  // Paper: replicating B for M >> 64 "results in significantly less global
  // reductions". Same total tiles, compare reduction steps.
  const index_t rows = 64, cols = 9;
  const auto merged = striped_partition(rows, cols, 72, 4);
  // Against the alternative of k-splitting the same work into one grid
  // with 4x the rows (deeper columns => more split columns).
  const auto ksplit = striped_partition(rows * 4, cols, 72, 1);
  EXPECT_LE(merged.reduction_steps(), ksplit.reduction_steps());
}

TEST(Columnwise, MoreImbalancedThanStriped) {
  // 18 columns on 72 SMs: column-wise leaves 54 SMs idle; striped uses all.
  const auto cw = columnwise_partition(64, 18, 72, 1);
  const auto st = striped_partition(64, 18, 72, 1);
  index_t cw_active = 0, st_active = 0;
  for (const auto& s : cw.sm_tiles) cw_active += s.empty() ? 0 : 1;
  for (const auto& s : st.sm_tiles) st_active += s.empty() ? 0 : 1;
  EXPECT_EQ(cw_active, 18);
  EXPECT_EQ(st_active, 72);
  EXPECT_GT(cw.max_stripe_len(), st.max_stripe_len());
  // Column-wise needs no reductions — that's its one advantage.
  EXPECT_EQ(cw.reduction_steps(), 0);
  EXPECT_GT(st.reduction_steps(), 0);
}

TEST(Striped, ReductionDepthSmall) {
  // With stripes of >= 1 column, any column is split by at most a handful
  // of boundaries.
  const auto stats = striped_partition_stats(288, 288, 72, 1);
  EXPECT_LE(stats.max_column_depth, 2);
}

TEST(Striped, RejectsEmptyGrid) {
  EXPECT_THROW(striped_partition(0, 4, 8, 1), marlin::Error);
  EXPECT_THROW(striped_partition(4, 4, 0, 1), marlin::Error);
}

}  // namespace
}  // namespace marlin::core
