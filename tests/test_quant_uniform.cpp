// Uniform quantization: the paper's §2.2 asymmetric definition, symmetric
// RTN with grouping, and the §3.5 clipping-threshold search.

#include <gtest/gtest.h>

#include <cmath>

#include "quant/uniform.hpp"
#include "util/rng.hpp"

namespace marlin::quant {
namespace {

Matrix<float> random_weights(index_t k, index_t n, std::uint64_t seed,
                             double scale = 0.05) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, scale));
    }
  }
  return w;
}

TEST(Asymmetric, MatchesPaperFormula) {
  // Q(v, b) = round((v - min) / s), s = (max - min) / (2^b - 1).
  const std::vector<float> v{-1.0f, -0.4f, 0.2f, 1.0f};
  const auto p = asymmetric_params(v, 4);
  EXPECT_FLOAT_EQ(p.zero, -1.0f);
  EXPECT_FLOAT_EQ(p.scale, 2.0f / 15.0f);
  const auto q = quantize_asymmetric(v, 4, p);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[3], 15);
  const auto back = dequantize_asymmetric(q, p);
  // Extremes are exact.
  EXPECT_FLOAT_EQ(back[0], -1.0f);
  EXPECT_FLOAT_EQ(back[3], 1.0f);
}

class AsymmetricErrorBound : public ::testing::TestWithParam<int> {};

TEST_P(AsymmetricErrorBound, WithinHalfStep) {
  const int bits = GetParam();
  Rng rng(99);
  std::vector<float> v(257);
  for (auto& x : v) x = static_cast<float>(rng.uniform(-3.0, 5.0));
  const auto p = asymmetric_params(v, bits);
  const auto q = quantize_asymmetric(v, bits, p);
  const auto back = dequantize_asymmetric(q, p);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - v[i]), p.scale * 0.5f + 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Bits, AsymmetricErrorBound,
                         ::testing::Values(2, 3, 4, 8));

TEST(Symmetric, ScaleCoversRange) {
  const std::vector<float> v{-0.7f, 0.1f, 0.35f};
  const float s = symmetric_scale(v, 4);
  EXPECT_FLOAT_EQ(s, 0.7f / 7.0f);
  // encode/decode of the extreme value is exact.
  const auto code = encode_symmetric(-0.7f, s, 4);
  EXPECT_EQ(static_cast<int>(code) - 8, -7);
}

TEST(Symmetric, CodesStayInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float s = 0.03f;
    const float v = static_cast<float>(rng.normal(0.0, 1.0));
    const auto code = encode_symmetric(v, s, 4);
    EXPECT_LT(code, 16);
  }
}

TEST(Rtn, RoundTripErrorBoundedByHalfScale) {
  const auto w = random_weights(128, 32, 11);
  QuantConfig cfg;
  cfg.group_size = 64;
  const auto q = quantize_rtn(w.view(), cfg);
  for (index_t i = 0; i < w.rows(); ++i) {
    for (index_t j = 0; j < w.cols(); ++j) {
      const float s = q.scales(cfg.group_of_row(i), j).to_float();
      EXPECT_LE(std::abs(w(i, j) - q.decode(i, j)), 0.5f * s + 1e-6f);
    }
  }
}

TEST(Rtn, PerColumnUsesOneScalePerColumn) {
  const auto w = random_weights(64, 8, 3);
  QuantConfig cfg;
  cfg.group_size = kPerColumn;
  const auto q = quantize_rtn(w.view(), cfg);
  EXPECT_EQ(q.scales.rows(), 1);
  EXPECT_EQ(q.num_groups(), 1);
}

class RtnGroupSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(RtnGroupSweep, FinerGroupsNeverWorse) {
  // Property: halving the group size cannot increase the MSE (each smaller
  // group optimises its own scale over a subset).
  const auto w = random_weights(256, 16, 21, 0.1);
  QuantConfig coarse;
  coarse.group_size = GetParam();
  QuantConfig fine;
  fine.group_size = GetParam() / 2;
  const double mse_coarse =
      reconstruction_mse(w.view(), quantize_rtn(w.view(), coarse));
  const double mse_fine =
      reconstruction_mse(w.view(), quantize_rtn(w.view(), fine));
  EXPECT_LE(mse_fine, mse_coarse * 1.02);  // FP16 scale rounding slack
}

INSTANTIATE_TEST_SUITE_P(Groups, RtnGroupSweep,
                         ::testing::Values<index_t>(256, 128, 64, 32));

TEST(ClipSearch, NeverWorseThanMaxAbsScaling) {
  // §3.5 (a): the searched clipping threshold minimises group MSE, so it
  // can only improve on plain max-abs scaling. Use heavy-tailed weights
  // where clipping genuinely helps.
  Rng rng(77);
  Matrix<float> w(128, 16);
  for (index_t i = 0; i < w.rows(); ++i) {
    for (index_t j = 0; j < w.cols(); ++j) {
      w(i, j) = static_cast<float>(0.05 * rng.student_t(3.0));
    }
  }
  QuantConfig plain;
  plain.group_size = 128;
  QuantConfig clipped = plain;
  clipped.clip_search = true;
  const double mse_plain =
      reconstruction_mse(w.view(), quantize_rtn(w.view(), plain));
  const double mse_clip =
      reconstruction_mse(w.view(), quantize_rtn(w.view(), clipped));
  EXPECT_LE(mse_clip, mse_plain + 1e-12);
  EXPECT_LT(mse_clip, mse_plain * 0.95);  // and strictly better on t(3)
}

TEST(BitsPerWeight, MatchesPaperStorageModel) {
  QuantConfig cfg;
  cfg.group_size = 128;
  QuantizedWeights q(256, 64, cfg);
  // 4 bits + 16/128 scale bits = 4.125 (paper Fig. 1 caption: 3.87x bound).
  EXPECT_NEAR(q.bits_per_weight(), 4.125, 1e-9);
  QuantConfig percol;
  percol.group_size = kPerColumn;
  QuantizedWeights q2(256, 64, percol);
  EXPECT_NEAR(q2.bits_per_weight(), 4.0 + 16.0 / 256.0, 1e-9);
}

TEST(Rtn, ZeroGroupGetsUnitScale) {
  Matrix<float> w(64, 4, 0.0f);
  QuantConfig cfg;
  cfg.group_size = 64;
  const auto q = quantize_rtn(w.view(), cfg);
  for (index_t j = 0; j < 4; ++j) {
    EXPECT_EQ(q.decode(0, j), 0.0f);
  }
}

}  // namespace
}  // namespace marlin::quant
