// Multi-GPU parallel serving model: rank-grid partition invariants,
// per-rank weight shards and KV budgets (incl. the clamp-to-zero error
// path), interconnect pricing, TP=1/PP=1 equivalence to the legacy
// single-device path, and the bit-identical-across-threads contract for
// the per-rank Worker path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>

#include "serve/parallel/parallel_engine.hpp"
#include "serve/server_sim.hpp"

namespace marlin::serve::parallel {
namespace {

EngineConfig a100_cfg(ModelConfig model = llama2_70b(),
                      WeightFormat fmt = WeightFormat::kMarlin) {
  EngineConfig cfg;
  cfg.model = std::move(model);
  cfg.gpu = gpusim::a100_80g();
  cfg.format = fmt;
  return cfg;
}

// ------------------------------------------------------------- config

TEST(ParallelConfig, ValidationAndDerivedQuantities) {
  ParallelConfig pc;
  EXPECT_TRUE(pc.trivial());
  EXPECT_EQ(pc.world_size(), 1);
  EXPECT_EQ(pc.effective_microbatches(), 1);

  pc = {2, 4, 0};
  EXPECT_FALSE(pc.trivial());
  EXPECT_EQ(pc.world_size(), 8);
  EXPECT_EQ(pc.effective_microbatches(), 4);  // defaults to one per stage
  EXPECT_EQ(pc.to_string(), "tp2 pp4");
  pc.microbatches = 8;
  EXPECT_EQ(pc.effective_microbatches(), 8);
  EXPECT_EQ(pc.to_string(), "tp2 pp4 mb8");

  EXPECT_THROW(ParallelConfig({0, 1, 0}).validate(), Error);
  EXPECT_THROW(ParallelConfig({1, 0, 0}).validate(), Error);
  EXPECT_THROW(ParallelConfig({1, 1, -1}).validate(), Error);

  pc = {4, 1, 0};
  pc.comm_buckets = 4;
  EXPECT_EQ(pc.to_string(), "tp4 pp1 cb4");
  pc.comm_buckets = 0;
  EXPECT_THROW(pc.validate(), Error);
}

// ------------------------------------------------------------- workers

TEST(Worker, StagePartitionCoversEveryLayerOnce) {
  const Engine engine(a100_cfg());
  const index_t layers = engine.config().model.num_layers;
  for (const int pp : {1, 2, 3, 4, 7}) {
    const ParallelConfig pc{1, pp, 0};
    index_t covered = 0;
    index_t next_layer = 0;
    for (int stage = 0; stage < pp; ++stage) {
      const Worker w(engine, pc, {0, stage});
      EXPECT_EQ(w.first_layer(), next_layer) << "pp=" << pp << " s=" << stage;
      // Balanced to within one layer.
      EXPECT_LE(std::abs(w.num_layers() - layers / pp), 1);
      EXPECT_EQ(w.has_embedding(), stage == 0);
      EXPECT_EQ(w.has_lm_head(), stage == pp - 1);
      covered += w.num_layers();
      next_layer = w.first_layer() + w.num_layers();
    }
    EXPECT_EQ(covered, layers) << "pp=" << pp;
  }
  // More stages than layers is refused.
  const Engine tiny(a100_cfg(llama2_7b()));
  EXPECT_THROW(Worker(tiny, {1, 64, 0}, {0, 0}), Error);
}

TEST(Worker, WeightShardsSumToTheWholeModel) {
  const Engine engine(a100_cfg());
  const auto& model = engine.config().model;
  const double quantized_blocks = model.params_per_block() *
                                  static_cast<double>(model.num_layers) *
                                  engine.weight_bits() / 8.0;
  const double fp16_embed_and_head = 2.0 * model.embedding_params() * 2.0;
  for (const auto& pc : {ParallelConfig{1, 1, 0}, ParallelConfig{2, 1, 0},
                         ParallelConfig{2, 4, 0}, ParallelConfig{4, 2, 0}}) {
    double total = 0.0;
    for (int stage = 0; stage < pc.pipeline_parallel; ++stage) {
      for (int tp = 0; tp < pc.tensor_parallel; ++tp) {
        total += Worker(engine, pc, {tp, stage}).weight_shard_bytes();
      }
    }
    EXPECT_NEAR(total, quantized_blocks + fp16_embed_and_head,
                1e-3 * total)
        << pc.to_string();
  }
}

TEST(Worker, KvBytesScaleWithStageLayersAndTpDegree) {
  const Engine engine(a100_cfg());
  const Worker whole(engine, {1, 1, 0}, {0, 0});
  EXPECT_EQ(whole.kv_bytes_per_token(), engine.kv_bytes_per_token());
  const Worker half_tp(engine, {2, 1, 0}, {0, 0});
  EXPECT_DOUBLE_EQ(half_tp.kv_bytes_per_token(),
                   whole.kv_bytes_per_token() / 2.0);
  const Worker half_pp(engine, {1, 2, 0}, {0, 1});
  EXPECT_DOUBLE_EQ(half_pp.kv_bytes_per_token(),
                   whole.kv_bytes_per_token() / 2.0);
}

TEST(Worker, PerRankBudgetGrowsWithShardingAndFeedsBlockManager) {
  const Engine engine(a100_cfg());
  const Worker whole(engine, {1, 1, 0}, {0, 0});
  const Worker sharded(engine, {4, 1, 0}, {0, 0});
  // A quarter of the weights and a quarter of the per-token KV leave far
  // more than the single-device block count.
  EXPECT_GT(sharded.kv_block_budget(16), 2 * whole.kv_block_budget(16));
  const auto bm = sharded.make_block_manager(16);
  EXPECT_FALSE(bm.unlimited());
  EXPECT_EQ(bm.total_blocks(), sharded.kv_block_budget(16));
}

TEST(Worker, OversizedShardClampsToZeroWithClearErrorNotUnderflow) {
  // Falcon-180B FP16 is ~360 GB; half of it still overflows an A100.
  const Engine engine(a100_cfg(falcon_180b(), WeightFormat::kFp16));
  const Worker w(engine, {1, 2, 0}, {0, 0});
  EXPECT_GT(w.weight_shard_bytes(), engine.config().gpu.hbm_bytes());
  try {
    (void)w.kv_block_budget(16);
    FAIL() << "oversized shard must throw";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("clamps to 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("exceed"), std::string::npos) << msg;
  }
  // The legacy single-device derivation shares the guard.
  EXPECT_THROW((void)sched::derive_kv_block_budget(engine, 16), Error);
}

// -------------------------------------------------------- interconnect

TEST(Interconnect, RingAllReduceAndTransferPricing) {
  const Interconnect link{100e9, 5e-6};
  EXPECT_DOUBLE_EQ(link.allreduce_seconds(1e9, 1), 0.0);
  // 2(g-1)/g of the payload over the wire plus 2(g-1) latency hops.
  EXPECT_DOUBLE_EQ(link.allreduce_seconds(1e9, 2),
                   1e9 / 100e9 + 2.0 * 5e-6);
  EXPECT_GT(link.allreduce_seconds(1e9, 8), link.allreduce_seconds(1e9, 2));
  EXPECT_DOUBLE_EQ(link.transfer_seconds(2e9), 0.02 + 5e-6);
  EXPECT_THROW((void)link.allreduce_seconds(-1.0, 2), Error);
}

// ------------------------------------------------------ parallel engine

TEST(ParallelEngine, TrivialConfigEqualsLegacyEngineBitForBit) {
  const Engine engine(a100_cfg());
  const ParallelEngine pe(engine, {1, 1, 0});
  for (const index_t batch : {index_t{1}, index_t{8}, index_t{64}}) {
    EXPECT_EQ(pe.decode_step_seconds(batch, 300.0),
              engine.decode_step_seconds(batch, 300.0));
    EXPECT_EQ(pe.prefill_seconds(batch, 64),
              engine.prefill_seconds(batch, 64));
  }
  // The serving adapter takes the identical path: every metric matches.
  ServingConfig sc;
  sc.qps = 4.0;
  sc.duration_s = 15.0;
  const auto legacy = simulate_serving_detailed(engine, sc);
  sc.parallel = {1, 1, 0};
  const auto routed = simulate_serving_detailed(engine, sc);
  EXPECT_EQ(legacy.metrics.mean_tpot_ms, routed.metrics.mean_tpot_ms);
  EXPECT_EQ(legacy.metrics.mean_ttft_ms, routed.metrics.mean_ttft_ms);
  EXPECT_EQ(legacy.metrics.p90_tpot_ms, routed.metrics.p90_tpot_ms);
  EXPECT_EQ(legacy.metrics.completed, routed.metrics.completed);
  EXPECT_EQ(legacy.decode_steps, routed.decode_steps);
  // A malformed config is rejected even on the trivial path (tp/pp of 1
  // must not mask a bad microbatch count).
  sc.parallel = {1, 1, -5};
  EXPECT_THROW((void)simulate_serving_detailed(engine, sc), Error);
}

TEST(ParallelEngine, RejectsCompoundingWithLegacyNumGpusSplit) {
  auto cfg = a100_cfg();
  cfg.num_gpus = 2;
  const Engine engine(cfg);
  EXPECT_THROW(ParallelEngine(engine, ParallelConfig{2, 1, 0}), Error);
  // Trivial configs stay compatible with the legacy split.
  const ParallelEngine pe(engine, {1, 1, 0});
  EXPECT_EQ(pe.decode_step_seconds(8, 100.0),
            engine.decode_step_seconds(8, 100.0));
}

TEST(ParallelEngine, TensorParallelSpeedsUpButPaysAllReduce) {
  const Engine engine(a100_cfg());
  const ParallelEngine tp2(engine, {2, 1, 0});
  const double t1 = engine.decode_step_seconds(64, 512.0);
  const double t2 = tp2.decode_step_seconds(64, 512.0);
  EXPECT_LT(t2, t1);  // sharded compute wins at batch 64
  EXPECT_GT(t2, (t1 - engine.config().step_overhead_s) / 2.0);  // Amdahl+comm
  const auto b = tp2.decode_breakdown(64, 512.0);
  EXPECT_GT(b.tp_comm_s, 0.0);
  EXPECT_EQ(b.pp_send_s, 0.0);
  EXPECT_EQ(b.total_s, t2);  // breakdown total matches the memoised step
}

TEST(ParallelEngine, PipelineAddsBubbleAndSendOverhead) {
  const Engine engine(a100_cfg());
  const ParallelEngine pp2(engine, {1, 2, 0});
  const double t1 = engine.decode_step_seconds(32, 512.0);
  const double t2 = pp2.decode_step_seconds(32, 512.0);
  // Two serialized half-stacks plus a boundary send can't beat one device
  // on a latency (single-step) basis.
  EXPECT_GT(t2, t1 - engine.config().step_overhead_s);
  const auto b = pp2.decode_breakdown(32, 512.0);
  EXPECT_EQ(b.microbatches, 2);
  EXPECT_DOUBLE_EQ(b.bubble_fraction, 1.0 / 3.0);
  EXPECT_GT(b.pp_send_s, 0.0);
  // More microbatches shrink the bubble fraction.
  const ParallelEngine mb8(engine, {1, 2, 8});
  EXPECT_LT(mb8.decode_breakdown(32, 512.0).bubble_fraction,
            b.bubble_fraction);
}

// ------------------------------------------------- comm/compute overlap

TEST(CommOverlap, OneBucketIsBitIdenticalToTheSerializedModel) {
  const Engine engine(a100_cfg());
  const ParallelEngine serialized(engine, {4, 1, 0});
  ParallelConfig pc{4, 1, 0};
  pc.comm_buckets = 1;
  const ParallelEngine explicit_one(engine, pc);
  for (const index_t batch : {index_t{1}, index_t{16}, index_t{64}}) {
    EXPECT_EQ(explicit_one.decode_step_seconds(batch, 400.0),
              serialized.decode_step_seconds(batch, 400.0));
    const auto b = explicit_one.decode_breakdown(batch, 400.0);
    EXPECT_EQ(b.overlap_saved_s, 0.0);
  }
}

TEST(CommOverlap, BucketsOverlapCommAndNeverSlowAStepDown) {
  const Engine engine(a100_cfg());
  const ParallelEngine serialized(engine, {4, 1, 0});
  ParallelConfig pc{4, 1, 0};
  pc.comm_buckets = 4;
  const ParallelEngine bucketed(engine, pc);
  bool saved_somewhere = false;
  for (const index_t batch : {index_t{1}, index_t{8}, index_t{64}}) {
    const double serial_t = serialized.decode_step_seconds(batch, 512.0);
    const auto b = bucketed.decode_breakdown(batch, 512.0);
    // Overlap is clamped to min(serialized, pipelined): never worse.
    EXPECT_LE(b.total_s, serial_t);
    EXPECT_GE(b.overlap_saved_s, 0.0);
    // The saved component is exactly the serialized-minus-overlapped gap.
    EXPECT_NEAR(b.total_s + b.overlap_saved_s, serial_t, 1e-12);
    if (b.overlap_saved_s > 0.0) saved_somewhere = true;
    // Prefill pricing is untouched by decode-side overlap.
    EXPECT_EQ(bucketed.prefill_seconds(batch, 64),
              serialized.prefill_seconds(batch, 64));
  }
  EXPECT_TRUE(saved_somewhere);
}

TEST(CommOverlap, NoTensorParallelMeansNothingToOverlap) {
  const Engine engine(a100_cfg());
  ParallelConfig pc{1, 2, 0};
  pc.comm_buckets = 8;
  const ParallelEngine pe(engine, pc);
  const ParallelEngine base(engine, {1, 2, 0});
  EXPECT_EQ(pe.decode_step_seconds(32, 256.0),
            base.decode_step_seconds(32, 256.0));
  EXPECT_EQ(pe.decode_breakdown(32, 256.0).overlap_saved_s, 0.0);
}

TEST(ParallelEngine, MinRankBudgetBindsAcrossAsymmetricStages) {
  const Engine engine(a100_cfg());
  const ParallelEngine pe(engine, {1, 4, 0});
  index_t min_budget = 0;
  for (const Worker& w : pe.workers()) {
    const index_t b = w.kv_block_budget(16);
    min_budget = min_budget == 0 ? b : std::min(min_budget, b);
  }
  EXPECT_EQ(pe.min_kv_block_budget(16), min_budget);
  EXPECT_EQ(pe.workers().size(), 4u);
}

TEST(ParallelEngine, ServingBitIdenticalAcrossThreadCounts) {
  const Engine engine(a100_cfg());
  ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 15.0;
  sc.shape = sched::WorkloadShape::kShareGpt;
  sc.policy = sched::SchedPolicy::kShortestJob;
  sc.kv_blocks = -1;  // per-rank derived budget
  sc.max_batch = 32;
  sc.parallel = {2, 2, 0};
  const SimContext serial(1);
  const SimContext pooled(4);
  const auto a = simulate_serving_detailed(engine, sc, serial);
  const auto b = simulate_serving_detailed(engine, sc, pooled);
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.metrics.mean_ttft_ms, b.metrics.mean_ttft_ms);
  EXPECT_EQ(a.metrics.p90_tpot_ms, b.metrics.p90_tpot_ms);
  EXPECT_EQ(a.metrics.p90_ttft_ms, b.metrics.p90_ttft_ms);
  EXPECT_EQ(a.metrics.mean_batch, b.metrics.mean_batch);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
  EXPECT_EQ(a.peak_kv_blocks, b.peak_kv_blocks);
}

TEST(ParallelEngine, RepeatRunsAreDeterministic) {
  const Engine engine(a100_cfg());
  ServingConfig sc;
  sc.qps = 6.0;
  sc.duration_s = 10.0;
  sc.parallel = {2, 1, 0};
  const auto a = simulate_serving_detailed(engine, sc);
  // A fresh ParallelEngine (cold memo) must reproduce the same bits.
  const auto b = simulate_serving_detailed(engine, sc);
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.metrics.mean_ttft_ms, b.metrics.mean_ttft_ms);
  EXPECT_EQ(a.sim_end_s, b.sim_end_s);
}

}  // namespace
}  // namespace marlin::serve::parallel
