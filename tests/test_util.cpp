// util substrate: matrices, rng, stats, table, cli, thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"
#include "util/rng.hpp"
#include "util/sim_context.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace marlin {
namespace {

TEST(Matrix, BasicAccessAndViews) {
  Matrix<int> m(3, 4, 7);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m(2, 3), 7);
  m(1, 2) = 42;
  const auto v = m.view();
  EXPECT_EQ(v(1, 2), 42);
  EXPECT_EQ(v.stride(), 4);
}

TEST(Matrix, BlockViewIsZeroCopy) {
  Matrix<int> m(4, 4, 0);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 4; ++j) m(i, j) = static_cast<int>(i * 4 + j);
  }
  auto b = m.view().block(1, 2, 2, 2);
  EXPECT_EQ(b(0, 0), 6);
  EXPECT_EQ(b(1, 1), 11);
  b(0, 0) = -1;
  EXPECT_EQ(m(1, 2), -1);
}

TEST(Matrix, BlockOutOfRangeThrows) {
  Matrix<int> m(4, 4, 0);
  EXPECT_THROW((void)m.view().block(2, 2, 3, 1), Error);
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(2);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.normal();
  EXPECT_NEAR(mean(xs), 0.0, 0.02);
  EXPECT_NEAR(stddev(xs), 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(3);
  std::vector<double> xs(50000);
  for (auto& x : xs) x = rng.exponential(4.0);
  EXPECT_NEAR(mean(xs), 0.25, 0.01);
}

TEST(Rng, StudentTHeavierTailsThanNormal) {
  Rng rng(4);
  int t_extreme = 0, n_extreme = 0;
  for (int i = 0; i < 50000; ++i) {
    if (std::abs(rng.student_t(4.0)) > 3.0) ++t_extreme;
    if (std::abs(rng.normal()) > 3.0) ++n_extreme;
  }
  EXPECT_GT(t_extreme, 2 * n_extreme);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, RelativeFrobenius) {
  const std::vector<float> a{3.0f, 4.0f};
  const std::vector<float> b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(relative_frobenius_error(a, b), 0.0);
  const std::vector<float> c{0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(relative_frobenius_error(a, c), 1.0);
}

TEST(Table, AlignsAndCsv) {
  Table t({"kernel", "speedup"});
  t.add_row({"marlin", "3.87"});
  t.add_row_numeric("fp16", {1.0}, 2);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("marlin"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "kernel,speedup\nmarlin,3.87\nfp16,1.00\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(FormatHelpers, HumanUnits) {
  EXPECT_EQ(format_seconds(1.5), "1.500 s");
  EXPECT_EQ(format_seconds(2.5e-3), "2.500 ms");
  EXPECT_EQ(format_seconds(3.2e-6), "3.200 us");
  EXPECT_EQ(format_bytes(1536.0), "1.50 KiB");
  EXPECT_EQ(format_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GiB");
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",       "--m=16", "--device",
                        "a10",        "positional", "--enable"};
  const CliArgs args(6, argv);
  EXPECT_EQ(args.get_int("m", 0), 16);
  EXPECT_EQ(args.get_string("device", ""), "a10");
  EXPECT_TRUE(args.get_bool("enable", false));
  EXPECT_EQ(args.get_int("missing", 99), 99);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "positional");
}

// The pool is reached through SimContext — the only supported owner.
TEST(ThreadPool, RunsAllIndices) {
  const SimContext ctx(5);  // 4 workers + caller
  std::vector<std::atomic<int>> hits(100);
  ctx.pool()->parallel_for(0, 100, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesException) {
  const SimContext ctx(3);
  EXPECT_THROW(ctx.pool()->parallel_for(0, 8,
                                        [&](std::int64_t i) {
                                          if (i == 5) throw Error("boom");
                                        }),
               Error);
}

TEST(ThreadPool, EmptyRangeNoop) {
  const SimContext ctx(3);
  ctx.pool()->parallel_for(5, 5, [](std::int64_t) { FAIL(); });
}

TEST(ErrorMacro, MessageContainsContext) {
  try {
    MARLIN_CHECK(1 == 2, "value was " << 42);
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace marlin
