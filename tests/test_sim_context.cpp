// SimContext: thread policy, nesting guard, chunked parallel_for, and the
// determinism guarantee — both functional kernels must produce bit-identical
// FunctionalResult (output matrix + traffic counters + reduction structure)
// at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>

#include "core/marlin_kernel.hpp"
#include "core/sparse_kernel.hpp"
#include "layout/repack.hpp"
#include "quant/uniform.hpp"
#include "sparse/compressed.hpp"
#include "sparse/two_four.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sim_context.hpp"

namespace marlin {
namespace {

Matrix<Half> random_activations(index_t m, index_t k, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal(0.0, 1.0)));
    }
  }
  return a;
}

quant::QuantizedWeights random_qweights(index_t k, index_t n, index_t group,
                                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  quant::QuantConfig cfg;
  cfg.group_size = group;
  return quant::quantize_rtn(w.view(), cfg);
}

void expect_bit_identical(const core::FunctionalResult& a,
                          const core::FunctionalResult& b) {
  ASSERT_EQ(a.c.rows(), b.c.rows());
  ASSERT_EQ(a.c.cols(), b.c.cols());
  for (index_t i = 0; i < a.c.rows(); ++i) {
    for (index_t j = 0; j < a.c.cols(); ++j) {
      ASSERT_EQ(a.c(i, j).bits(), b.c(i, j).bits())
          << "at (" << i << ", " << j << ")";
    }
  }
  EXPECT_EQ(a.traffic.gmem_read_bytes, b.traffic.gmem_read_bytes);
  EXPECT_EQ(a.traffic.gmem_write_bytes, b.traffic.gmem_write_bytes);
  EXPECT_EQ(a.traffic.l2_read_bytes, b.traffic.l2_read_bytes);
  EXPECT_EQ(a.traffic.smem_read_bytes, b.traffic.smem_read_bytes);
  EXPECT_EQ(a.traffic.smem_write_bytes, b.traffic.smem_write_bytes);
  EXPECT_EQ(a.reduction_steps, b.reduction_steps);
  EXPECT_EQ(a.tiles_processed, b.tiles_processed);
  EXPECT_EQ(a.max_stripe_len, b.max_stripe_len);
}

TEST(SimContextPolicy, ExplicitCountWins) {
  const SimContext ctx(3);
  EXPECT_EQ(ctx.num_threads(), 3u);
  EXPECT_FALSE(ctx.serial());
}

TEST(SimContextPolicy, SerialModeNeverStartsAPool) {
  const SimContext ctx(1);
  EXPECT_TRUE(ctx.serial());
  EXPECT_EQ(ctx.pool(), nullptr);
}

TEST(SimContextPolicy, EnvironmentVariableIsHonoured) {
  ASSERT_EQ(setenv("MARLIN_THREADS", "7", 1), 0);
  EXPECT_EQ(SimContext::resolve_threads(0), 7u);
  // Explicit request beats the environment.
  EXPECT_EQ(SimContext::resolve_threads(2), 2u);
  ASSERT_EQ(unsetenv("MARLIN_THREADS"), 0);
  EXPECT_EQ(SimContext::resolve_threads(0),
            std::max(1u, std::thread::hardware_concurrency()));
}

TEST(SimContextPolicy, CliThreadsFlag) {
  const char* argv[] = {"prog", "--threads", "2"};
  const SimContext ctx = make_sim_context(CliArgs(3, argv));
  EXPECT_EQ(ctx.num_threads(), 2u);
}

TEST(SimContextPolicy, PoolIsLazyAndShared) {
  const SimContext ctx(4);
  ThreadPool* p1 = ctx.pool();
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->size(), 3u);  // workers; the caller is the 4th executor
  EXPECT_EQ(ctx.pool(), p1);
}

TEST(SimContextParallelFor, RunsEveryIndexOnce) {
  const SimContext ctx(4);
  // Large enough to span many chunks (the chunked dispatch satellite).
  constexpr std::int64_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  ctx.parallel_for(0, kN, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(SimContextParallelFor, ExceptionFromAnyChunkPropagatesPoolReusable) {
  const SimContext ctx(3);
  // Throw near the *end* of the range: with chunked dispatch this lands in
  // the last chunk, which the one-task-per-index scheme also covered but a
  // naive chunk implementation could drop.
  for (const std::int64_t bad : {std::int64_t{0}, std::int64_t{99999}}) {
    EXPECT_THROW(ctx.parallel_for(0, 100000,
                                  [&](std::int64_t i) {
                                    if (i == bad) throw Error("boom");
                                  }),
                 Error);
  }
  // The pool survives both failures.
  std::atomic<int> count{0};
  ctx.parallel_for(0, 64, [&](std::int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 64);
}

TEST(SimContextParallelFor, NestedCallDegradesInlineNoDeadlock) {
  const SimContext ctx(2);
  std::atomic<int> inner_total{0};
  ctx.parallel_for(0, 8, [&](std::int64_t) {
    // Inside a pool worker the inner loop must run inline (the nesting
    // guard); from the caller-claimed chunk it may fan out — either way
    // every inner index runs exactly once and nothing deadlocks.
    ctx.parallel_for(0, 64,
                     [&](std::int64_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 64);
}

TEST(SimContextParallelFor, DeepNestingCompletes) {
  const SimContext ctx(4);
  std::atomic<int> leaves{0};
  ctx.parallel_for(0, 4, [&](std::int64_t) {
    ctx.parallel_for(0, 4, [&](std::int64_t) {
      ctx.parallel_for(0, 4, [&](std::int64_t) { leaves.fetch_add(1); });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

/// The determinism contract of the tentpole: threads 1 / 2 / hardware
/// concurrency must yield bit-identical FunctionalResult.
TEST(KernelDeterminism, DenseBitIdenticalAcrossThreadCounts) {
  const auto a = random_activations(33, 256, 71);
  const auto q = random_qweights(256, 256, 64, 72);
  const auto mw = layout::marlin_repack(q);
  core::KernelConfig cfg;
  cfg.n_sm_tile = 128;

  const SimContext serial(1);
  const SimContext two(2);
  const SimContext hw(0);
  const auto r1 = core::marlin_matmul(a.view(), mw, cfg, 72, serial);
  const auto r2 = core::marlin_matmul(a.view(), mw, cfg, 72, two);
  const auto rh = core::marlin_matmul(a.view(), mw, cfg, 72, hw);
  expect_bit_identical(r1, r2);
  expect_bit_identical(r1, rh);
}

TEST(KernelDeterminism, SparseBitIdenticalAcrossThreadCounts) {
  const index_t k = 256, n = 128;
  const auto a = random_activations(17, k, 81);
  auto q = random_qweights(k, n, 64, 82);
  const auto mask = sparse::prune_24_magnitude(q.dequantize().view());
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (!mask.keep(i, j)) q.codes(i, j) = 8;
    }
  }
  const auto s24 = sparse::compress_24(q, mask);
  core::KernelConfig cfg;
  cfg.n_sm_tile = 128;

  const SimContext serial(1);
  const SimContext two(2);
  const SimContext hw(0);
  const auto r1 = core::sparse_marlin_matmul(a.view(), s24, cfg, 72, serial);
  const auto r2 = core::sparse_marlin_matmul(a.view(), s24, cfg, 72, two);
  const auto rh = core::sparse_marlin_matmul(a.view(), s24, cfg, 72, hw);
  expect_bit_identical(r1, r2);
  expect_bit_identical(r1, rh);
}

/// Sweep-over-kernel nesting: the outer fan-out drives inner kernels whose
/// own parallel_for degrades inline — results must still match serial.
TEST(KernelDeterminism, NestedSweepMatchesSerial) {
  const auto a = random_activations(8, 128, 91);
  const auto q = random_qweights(128, 256, 64, 92);
  const auto mw = layout::marlin_repack(q);
  core::KernelConfig cfg;

  const SimContext serial(1);
  const SimContext ctx(3);
  std::vector<core::FunctionalResult> serial_results(4), sweep_results(4);
  for (int s = 0; s < 4; ++s) {
    serial_results[static_cast<std::size_t>(s)] =
        core::marlin_matmul(a.view(), mw, cfg, 4 + s, serial);
  }
  ctx.parallel_for(0, 4, [&](std::int64_t s) {
    sweep_results[static_cast<std::size_t>(s)] = core::marlin_matmul(
        a.view(), mw, cfg, 4 + static_cast<int>(s), ctx);
  });
  for (int s = 0; s < 4; ++s) {
    expect_bit_identical(serial_results[static_cast<std::size_t>(s)],
                         sweep_results[static_cast<std::size_t>(s)]);
  }
}

}  // namespace
}  // namespace marlin
