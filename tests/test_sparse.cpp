// 2:4 sparsity: pruning, compressed structures (paper Figs. 7/8),
// metadata, SparseGPT-lite.

#include <gtest/gtest.h>

#include "eval/metrics.hpp"
#include "eval/synthetic.hpp"
#include "quant/gptq.hpp"
#include "quant/uniform.hpp"
#include "sparse/compressed.hpp"
#include "sparse/sparsegpt.hpp"
#include "sparse/two_four.hpp"
#include "util/rng.hpp"

namespace marlin::sparse {
namespace {

Matrix<float> random_weights(index_t k, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  return w;
}

TEST(TwoFour, MagnitudeMaskValidAndKeepsLargest) {
  const auto w = random_weights(64, 16, 1);
  const auto mask = prune_24_magnitude(w.view());
  EXPECT_TRUE(is_valid_24(mask));
  for (index_t j = 0; j < 16; ++j) {
    for (index_t g = 0; g < 64; g += 4) {
      float kept_min = 1e9f, dropped_max = -1.0f;
      for (int t = 0; t < 4; ++t) {
        const float a = std::abs(w(g + t, j));
        if (mask.keep(g + t, j)) {
          kept_min = std::min(kept_min, a);
        } else {
          dropped_max = std::max(dropped_max, a);
        }
      }
      EXPECT_GE(kept_min, dropped_max);
    }
  }
}

TEST(TwoFour, SaliencyUsesHessianDiagonal) {
  // With a huge Hessian weight on row 0 of each group, row 0 must survive
  // even when its magnitude is smallest.
  Matrix<float> w(8, 2, 0.0f);
  for (index_t g = 0; g < 2; ++g) {
    for (index_t j = 0; j < 2; ++j) {
      w(g * 4 + 0, j) = 0.01f;
      w(g * 4 + 1, j) = 1.0f;
      w(g * 4 + 2, j) = 0.5f;
      w(g * 4 + 3, j) = 0.2f;
    }
  }
  std::vector<double> hdiag{1e8, 1, 1, 1, 1e8, 1, 1, 1};
  const auto mask = prune_24_saliency(w.view(), hdiag);
  EXPECT_TRUE(is_valid_24(mask));
  for (index_t g = 0; g < 2; ++g) {
    for (index_t j = 0; j < 2; ++j) {
      EXPECT_EQ(mask.keep(g * 4 + 0, j), 1);
      EXPECT_EQ(mask.keep(g * 4 + 1, j), 1);
    }
  }
}

TEST(TwoFour, ApplyMaskZeroesExactlyHalf) {
  const auto w = random_weights(32, 8, 2);
  const auto mask = prune_24_magnitude(w.view());
  const auto wm = apply_mask(w.view(), mask);
  index_t zeros = 0;
  for (index_t i = 0; i < 32; ++i) {
    for (index_t j = 0; j < 8; ++j) {
      if (wm(i, j) == 0.0f) ++zeros;
    }
  }
  EXPECT_EQ(zeros, 32 * 8 / 2);
}

TEST(TwoFour, InvalidMaskDetected) {
  SparseMask m;
  m.keep = Matrix<std::uint8_t>(4, 1, 1);  // 4 kept in a group
  EXPECT_FALSE(is_valid_24(m));
  m.keep = Matrix<std::uint8_t>(6, 1, 0);  // K not divisible by 4
  EXPECT_FALSE(is_valid_24(m));
}

quant::QuantizedWeights quantize_masked(const Matrix<float>& w,
                                        const SparseMask& mask,
                                        index_t group) {
  quant::QuantConfig cfg;
  cfg.group_size = group;
  const auto wm = apply_mask(w.view(), mask);
  auto q = quant::quantize_rtn(wm.view(), cfg);
  // Force pruned codes to the exact-zero code (RTN already rounds 0 -> 8).
  for (index_t i = 0; i < q.k; ++i) {
    for (index_t j = 0; j < q.n; ++j) {
      if (!mask.keep(i, j)) q.codes(i, j) = 8;
    }
  }
  return q;
}

struct CompressCase {
  index_t k, n, group;
};

class CompressRoundTrip : public ::testing::TestWithParam<CompressCase> {};

TEST_P(CompressRoundTrip, DecompressMatchesMaskedDequant) {
  const auto [k, n, group] = GetParam();
  const auto w = random_weights(k, n, 10 + k);
  const auto mask = prune_24_magnitude(w.view());
  const auto q = quantize_masked(w, mask, group);
  const auto s = compress_24(q, mask);
  EXPECT_EQ(s.compressed_k(), k / 2);
  const auto dense = q.dequantize();
  const auto restored = decompress_24(s);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_EQ(dense(i, j), restored(i, j)) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CompressRoundTrip,
                         ::testing::Values(CompressCase{32, 8, 32},
                                           CompressCase{64, 16, 32},
                                           CompressCase{128, 64, 64},
                                           CompressCase{64, 24,
                                                        quant::kPerColumn}));

TEST(Compress, BitsPerWeightMatchesPaperStorageModel) {
  const auto w = random_weights(128, 64, 3);
  const auto mask = prune_24_magnitude(w.view());
  const auto q = quantize_masked(w, mask, 128);
  const auto s = compress_24(q, mask);
  // 2 (codes) + 1 (meta) + 0.125 (scales) = 3.125 bits/weight.
  EXPECT_NEAR(s.bits_per_weight(), 3.125, 1e-9);
}

TEST(Compress, NonZeroPrunedCodeRejected) {
  const auto w = random_weights(16, 4, 4);
  const auto mask = prune_24_magnitude(w.view());
  auto q = quantize_masked(w, mask, 16);
  // Corrupt one pruned position with a non-zero code.
  for (index_t i = 0; i < 16; ++i) {
    if (!mask.keep(i, 0)) {
      q.codes(i, 0) = 9;
      break;
    }
  }
  EXPECT_THROW(compress_24(q, mask), marlin::Error);
}

TEST(Metadata, WordsEncodeAscendingIndices) {
  const auto w = random_weights(32, 8, 5);
  const auto mask = prune_24_magnitude(w.view());
  const auto q = quantize_masked(w, mask, 32);
  const auto s = compress_24(q, mask);
  for (index_t j = 0; j < 8; ++j) {
    for (index_t g = 0; g < 8; ++g) {
      const auto [i0, i1] = meta_select(s, g, j);
      EXPECT_LT(i0, i1);  // ascending 2-bit indices
      EXPECT_EQ(mask.keep(g * 4 + i0, j), 1);
      EXPECT_EQ(mask.keep(g * 4 + i1, j), 1);
    }
  }
  const auto words = pack_metadata_words(s);
  EXPECT_EQ(words.size(), static_cast<std::size_t>(32 / 16 * 8));
}

TEST(Metadata, ReshuffleIsAPermutationOfWords) {
  const auto w = random_weights(32, 16, 6);
  const auto mask = prune_24_magnitude(w.view());
  const auto q = quantize_masked(w, mask, 32);
  const auto s = compress_24(q, mask);
  const auto r = reshuffle_metadata(s);
  ASSERT_EQ(r.words.size(), 2u);       // 32/16 slabs
  ASSERT_EQ(r.words[0].size(), 2u);    // 16/8 column blocks
  // Every (slab, column) word appears exactly once.
  std::set<std::pair<index_t, index_t>> seen;
  for (std::size_t slab = 0; slab < r.words.size(); ++slab) {
    for (std::size_t b = 0; b < r.words[slab].size(); ++b) {
      for (std::size_t i = 0; i < 8; ++i) {
        const index_t col = r.source_col[slab][b][i];
        EXPECT_TRUE(seen.insert({static_cast<index_t>(slab), col}).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), 2u * 16u);
  // Interleave order within a block: 0,2,4,6,1,3,5,7.
  EXPECT_EQ(r.source_col[0][0][0], 0);
  EXPECT_EQ(r.source_col[0][0][1], 2);
  EXPECT_EQ(r.source_col[0][0][4], 1);
}

TEST(SparseGpt, ProducesValid24AndExactZeros) {
  const auto layer = eval::make_synthetic_layer(64, 16, 256, 77);
  quant::HessianAccumulator acc(64);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig cfg;
  cfg.quant.group_size = 32;
  const auto r = sparsegpt_24_quantize(layer.w.view(), acc.hessian(), cfg);
  EXPECT_TRUE(is_valid_24(r.mask));
  const auto deq = r.weights.dequantize();
  for (index_t i = 0; i < 64; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      if (!r.mask.keep(i, j)) {
        EXPECT_EQ(deq(i, j), 0.0f);
      }
    }
  }
}

TEST(SparseGpt, BeatsMagnitudePruneThenRtn) {
  const auto layer = eval::make_synthetic_layer(128, 16, 512, 88);
  quant::HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig cfg;
  cfg.quant.group_size = 64;

  const auto sg = sparsegpt_24_quantize(layer.w.view(), acc.hessian(), cfg);

  const auto mask = prune_24_magnitude(layer.w.view());
  const auto naive = quantize_masked(
      Matrix<float>(layer.w), mask, 64);

  const double e_sg = eval::layer_output_nmse(
      layer.w.view(), sg.weights.dequantize().view(), layer.calib.view());
  const double e_naive = eval::layer_output_nmse(
      layer.w.view(), naive.dequantize().view(), layer.calib.view());
  EXPECT_LT(e_sg, e_naive);
}

TEST(SparseGpt, ComposesWithCompression) {
  const auto layer = eval::make_synthetic_layer(64, 64, 256, 99);
  quant::HessianAccumulator acc(64);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig cfg;
  cfg.quant.group_size = 64;
  const auto r = sparsegpt_24_quantize(layer.w.view(), acc.hessian(), cfg);
  const auto s = compress_24(r.weights, r.mask);
  const auto restored = decompress_24(s);
  const auto direct = r.weights.dequantize();
  for (index_t i = 0; i < 64; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      ASSERT_EQ(direct(i, j), restored(i, j));
    }
  }
}

}  // namespace
}  // namespace marlin::sparse
