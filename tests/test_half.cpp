// Software binary16: exhaustive and property tests. The dequantisation bit
// trick depends on exact IEEE behaviour, so this suite is strict.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "util/half.hpp"
#include "util/rng.hpp"

namespace marlin {
namespace {

TEST(Half, ZeroAndSignedZero) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(Half(0.0f), Half(-0.0f));  // IEEE: -0 == +0
}

TEST(Half, KnownConstants) {
  EXPECT_EQ(Half(1.0f).bits(), 0x3c00u);
  EXPECT_EQ(Half(-2.0f).bits(), 0xc000u);
  EXPECT_EQ(Half(1024.0f).bits(), 0x6400u);  // the dequant exponent splice
  EXPECT_EQ(Half(1032.0f).bits(), 0x6408u);  // the dequant magic constant
  EXPECT_EQ(Half(65504.0f).bits(), 0x7bffu);  // max finite half
}

TEST(Half, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).is_inf());  // rounds up past max finite
  EXPECT_TRUE(Half(1e10f).is_inf());
  EXPECT_TRUE(Half(-1e10f).is_inf());
  EXPECT_TRUE(Half(-1e10f).is_negative());
}

TEST(Half, NanPropagation) {
  const Half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.is_nan());
  EXPECT_TRUE(std::isnan(h.to_float()));
  EXPECT_FALSE(h == h);  // NaN != NaN
}

TEST(Half, SubnormalsRepresentable) {
  // Smallest subnormal: 2^-24.
  const float tiny = std::ldexp(1.0f, -24);
  EXPECT_EQ(Half(tiny).bits(), 0x0001u);
  EXPECT_EQ(Half(tiny).to_float(), tiny);
  // Largest subnormal: (1023/1024) * 2^-14.
  const float big_sub = std::ldexp(1023.0f, -24);
  EXPECT_EQ(Half(big_sub).bits(), 0x03ffu);
  EXPECT_EQ(Half(big_sub).to_float(), big_sub);
}

TEST(Half, UnderflowRoundsToZeroOrMinSubnormal) {
  EXPECT_EQ(Half(std::ldexp(1.0f, -26)).bits(), 0x0000u);
  // Exactly half of the smallest subnormal rounds to even (zero).
  EXPECT_EQ(Half(std::ldexp(1.0f, -25)).bits(), 0x0000u);
  // Just above half rounds up.
  EXPECT_EQ(Half(std::ldexp(1.1f, -25)).bits(), 0x0001u);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10 -> even (1.0).
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), 0x3c00u);
  // 1 + 3*2^-11 is halfway between 1+2^-10 and 1+2^-9 -> even (1+2^-9).
  EXPECT_EQ(Half(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(), 0x3c02u);
  // Slightly above halfway rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) * 1.01f).bits(), 0x3c01u);
}

TEST(Half, MantissaOverflowBumpsExponent) {
  // 2047.5 rounds to 2048 (mantissa all-ones + round up).
  EXPECT_EQ(Half(2047.9f).to_float(), 2048.0f);
}

TEST(Half, ExhaustiveRoundTripAllBitPatterns) {
  // Every finite half value must round-trip bit-exactly through float.
  int checked = 0;
  for (std::uint32_t b = 0; b <= 0xffffu; ++b) {
    const auto bits = static_cast<std::uint16_t>(b);
    const Half h = Half::from_bits(bits);
    if (h.is_nan()) continue;  // NaN payloads may canonicalise
    const Half rt(h.to_float());
    ASSERT_EQ(rt.bits(), bits) << "bits=" << b;
    ++checked;
  }
  EXPECT_GT(checked, 63000);
}

TEST(Half, ConversionMatchesNearbyintReference) {
  // Randomised cross-check against a scaled-integer reference in the
  // normal range.
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    const float f = static_cast<float>(rng.uniform(-60000.0, 60000.0));
    const Half h(f);
    const float back = h.to_float();
    // Error bounded by half ULP of the destination.
    const float ulp = std::ldexp(
        1.0f, std::max(-24, static_cast<int>(std::floor(std::log2(
                                 std::max(1e-30f, std::abs(f))))) -
                                 10));
    EXPECT_LE(std::abs(back - f), ulp * 0.5f + 1e-30f) << "f=" << f;
  }
}

TEST(Half, ArithmeticViaFloat) {
  const Half a(1.5f), b(2.25f);
  EXPECT_EQ((a + b).to_float(), 3.75f);
  EXPECT_EQ((b - a).to_float(), 0.75f);
  EXPECT_EQ((a * b).to_float(), 3.375f);
  EXPECT_EQ((-a).to_float(), -1.5f);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b >= a);
}

TEST(Half, SmallIntegersExact) {
  // Integers in [-2048, 2048] are exactly representable — the dequant
  // result range [-8, 7] trivially so.
  for (int v = -2048; v <= 2048; ++v) {
    EXPECT_EQ(Half(static_cast<float>(v)).to_float(), static_cast<float>(v));
  }
}

class HalfSubtractionExactness : public ::testing::TestWithParam<int> {};

TEST_P(HalfSubtractionExactness, DequantIdentity) {
  // (1024 + v) - 1032 == v - 8 exactly, for every code v in [0, 15] — the
  // algebra behind the lop3 dequantisation.
  const int v = GetParam();
  const Half spliced = Half::from_bits(static_cast<std::uint16_t>(0x6400 + v));
  EXPECT_EQ(spliced.to_float(), 1024.0f + static_cast<float>(v));
  const Half magic = Half::from_bits(0x6408);
  EXPECT_EQ((spliced - magic).to_float(), static_cast<float>(v - 8));
}

INSTANTIATE_TEST_SUITE_P(AllCodes, HalfSubtractionExactness,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace marlin
