// Extension features: AWQ-format support (paper §6), W4A8 / QQQ-style
// INT8 activations (paper §6), and 2/8-bit packing for "extreme
// compression" (paper §7).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kernel_model.hpp"
#include "core/marlin_kernel.hpp"
#include "core/timing.hpp"
#include "core/w4a8.hpp"
#include "eval/metrics.hpp"
#include "eval/synthetic.hpp"
#include "layout/repack.hpp"
#include "quant/awq.hpp"
#include "quant/gptq.hpp"
#include "quant/int8_act.hpp"
#include "quant/pack.hpp"
#include "quant/uniform.hpp"
#include "util/rng.hpp"

namespace marlin {
namespace {

Matrix<float> random_weights(index_t k, index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  return w;
}

// ---------------------------------------------------------------- AWQ ----

TEST(Awq, AsymmetricGroupedRoundTripBound) {
  const auto w = random_weights(128, 16, 1);
  quant::QuantConfig cfg;
  cfg.group_size = 64;
  const auto q = quant::quantize_asymmetric_grouped(w.view(), cfg);
  for (index_t i = 0; i < 128; ++i) {
    for (index_t j = 0; j < 16; ++j) {
      const float s = q.scales(cfg.group_of_row(i), j).to_float();
      EXPECT_LE(std::abs(w(i, j) - q.decode(i, j)), s + 1e-6f)
          << i << "," << j;  // zero-point rounding costs at most one step
    }
  }
}

TEST(Awq, ZeroDecodesExactly) {
  // The integer zero point guarantees 0.0 has an exact code.
  Matrix<float> w(64, 4, 0.0f);
  w(0, 0) = 1.0f;  // force a non-degenerate range
  w(1, 0) = -1.0f;
  quant::QuantConfig cfg;
  cfg.group_size = 64;
  const auto q = quant::quantize_asymmetric_grouped(w.view(), cfg);
  EXPECT_EQ(q.decode(5, 0), 0.0f);
}

TEST(Awq, SearchPicksNonTrivialAlphaOnOutlierActivations) {
  // With strong activation outliers, plain (alpha=0) quantization is
  // suboptimal — AWQ's whole premise.
  const auto layer = eval::make_synthetic_layer(128, 32, 512, 7);
  quant::AwqConfig cfg;
  cfg.quant.group_size = 64;
  const auto r = quant::awq_quantize(layer.w.view(), layer.calib.view(), cfg);
  EXPECT_GT(r.alpha, 0.0);

  // And the chosen scaling beats alpha = 0 on true output error.
  const auto plain =
      quant::quantize_asymmetric_grouped(layer.w.view(), cfg.quant);
  const double e_awq = eval::layer_output_nmse(
      layer.w.view(), r.weights.dequantize().view(), layer.calib.view());
  const double e_plain = eval::layer_output_nmse(
      layer.w.view(), plain.dequantize().view(), layer.calib.view());
  EXPECT_LT(e_awq, e_plain);
}

TEST(Awq, MarlinRepackRoundTrip) {
  const auto layer = eval::make_synthetic_layer(128, 64, 256, 9);
  quant::AwqConfig cfg;
  cfg.quant.group_size = 64;
  const auto r = quant::awq_quantize(layer.w.view(), layer.calib.view(), cfg);
  const auto mw = layout::marlin_repack_awq(r.weights);
  EXPECT_TRUE(mw.asymmetric());
  const auto unpacked = layout::marlin_unpack_dequant(mw);
  for (index_t i = 0; i < 128; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      ASSERT_EQ(unpacked(i, j), r.weights.decode_scaled(i, j))
          << i << "," << j;
    }
  }
}

TEST(Awq, FunctionalKernelComputesXW) {
  // Scaled weights in the kernel + inversely scaled activations must
  // reproduce x * W.
  const index_t m = 8, k = 128, n = 64;
  const auto layer = eval::make_synthetic_layer(k, n, 384, 11);
  quant::AwqConfig cfg;
  cfg.quant.group_size = 64;
  const auto r = quant::awq_quantize(layer.w.view(), layer.calib.view(), cfg);
  const auto mw = layout::marlin_repack_awq(r.weights);

  Rng rng(2);
  Matrix<Half> x(m, k), x_scaled(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      const float v = static_cast<float>(rng.normal());
      x(i, j) = Half(v);
      x_scaled(i, j) = Half(
          v / r.weights.channel_scale[static_cast<std::size_t>(j)]);
    }
  }
  core::KernelConfig kcfg;
  kcfg.n_sm_tile = 64;
  kcfg.num_warps = 4;
  const auto res = core::marlin_matmul(x_scaled.view(), mw, kcfg, 4);

  // Reference on the effective (descaled) weights with original x.
  const auto ref =
      core::reference_matmul(x.view(), r.weights.dequantize().view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(res.c(i, j).to_float(), ref(i, j),
                  5e-2 * (std::abs(ref(i, j)) + 1.0));
    }
  }
}

// --------------------------------------------------------------- W4A8 ----

TEST(W4A8, ActivationRoundTripBound) {
  Rng rng(3);
  Matrix<Half> a(16, 64);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal(0.0, 2.0)));
    }
  }
  const auto q = quant::quantize_activations_int8(a.view());
  for (index_t i = 0; i < 16; ++i) {
    const float s = q.row_scale[static_cast<std::size_t>(i)];
    for (index_t j = 0; j < 64; ++j) {
      EXPECT_LE(std::abs(q.decode(i, j) - a(i, j).to_float()),
                0.5f * s + 1e-6f);
    }
  }
}

TEST(W4A8, MatmulMatchesFloatReferenceWithinQuantNoise) {
  const index_t m = 8, k = 256, n = 32;
  const auto w = random_weights(k, n, 13);
  quant::QuantConfig qcfg;
  qcfg.group_size = 128;
  const auto qw = quant::quantize_rtn(w.view(), qcfg);

  Rng rng(4);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }
  const auto a8 = quant::quantize_activations_int8(a.view());
  const auto c = core::w4a8_matmul(a8, qw);

  // Reference: dequantised activations x dequantised weights.
  const auto a_deq = quant::dequantize_activations(a8);
  const auto w_deq = qw.dequantize();
  Matrix<float> ref(m, n, 0.0f);
  for (index_t i = 0; i < m; ++i) {
    for (index_t t = 0; t < k; ++t) {
      for (index_t j = 0; j < n; ++j) {
        ref(i, j) += a_deq(i, t) * w_deq(t, j);
      }
    }
  }
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(c(i, j).to_float(), ref(i, j),
                  2e-3 * std::sqrt(static_cast<double>(k)) +
                      2e-2 * std::abs(ref(i, j)) + 2e-2);
    }
  }
}

TEST(W4A8, ExtendsSpeedupIntoComputeBoundRegime) {
  // The point of W4A8: at large batch the INT8 pipes double throughput and
  // halved activation traffic keeps memory pressure lower.
  const auto d = gpusim::a100_80g();
  const gpusim::ClockModel clock{gpusim::ClockMode::kBoost};
  const auto marlin = baselines::make_kernel_model("marlin");
  const auto w4a8 = baselines::make_kernel_model("marlin-w4a8");
  for (const index_t m : {128, 512, 2048}) {
    const core::MatmulProblem p{m, 8192, 8192, 128, false};
    EXPECT_LT(w4a8->estimate(p, d, clock).seconds,
              marlin->estimate(p, d, clock).seconds)
        << "batch " << m;
  }
  // And roughly 2x in the deeply compute-bound limit.
  const core::MatmulProblem big{4096, 8192, 8192, 128, false};
  // ~2x compute, but B is re-streamed per 64-row replication block, which
  // leaves W4A8 partly memory-bound — the uplift lands around 1.5-1.8x.
  const double ratio = marlin->estimate(big, d, clock).seconds /
                       w4a8->estimate(big, d, clock).seconds;
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.2);
}

// --------------------------------------------------- bit-width packing ----

class PackBitsRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PackBitsRoundTrip, Random) {
  const int bits = GetParam();
  Rng rng(21);
  std::vector<std::uint8_t> codes(128);
  for (auto& c : codes) {
    c = static_cast<std::uint8_t>(rng.uniform_int(1u << bits));
  }
  const auto packed = quant::pack_bits(codes, bits);
  EXPECT_EQ(packed.size(), codes.size() * static_cast<std::size_t>(bits) / 32);
  const auto back = quant::unpack_bits(packed, bits, codes.size());
  EXPECT_EQ(back, codes);
}

INSTANTIATE_TEST_SUITE_P(Widths, PackBitsRoundTrip,
                         ::testing::Values(2, 4, 8));

TEST(PackBits, RejectsBadWidthAndRange) {
  std::vector<std::uint8_t> codes(16, 1);
  EXPECT_THROW(quant::pack_bits(codes, 3), marlin::Error);
  codes[0] = 4;  // out of 2-bit range
  EXPECT_THROW(quant::pack_bits(codes, 2), marlin::Error);
}

TEST(BitWidths, TimingModelScalesWithWeightBits) {
  // Memory-bound regime: time proportional to stored bits per weight.
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{gpusim::ClockMode::kBoost};
  core::MatmulProblem p4{16, 18432, 73728, 128, false};
  core::MatmulProblem p2 = p4;
  p2.weight_bits = 2;
  core::MatmulProblem p8 = p4;
  p8.weight_bits = 8;
  const double t4 = core::marlin_estimate_auto(p4, d, clock).seconds;
  const double t2 = core::marlin_estimate_auto(p2, d, clock).seconds;
  const double t8 = core::marlin_estimate_auto(p8, d, clock).seconds;
  EXPECT_NEAR(t2 / t4, 2.125 / 4.125, 0.05);
  EXPECT_NEAR(t8 / t4, 8.125 / 4.125, 0.10);
}

TEST(BitWidths, GptqQualityDegradesGracefully) {
  // 3-bit GPTQ must sit between 2-bit and 4-bit in measured error
  // (the Pareto structure behind paper Fig. 6 / §7 future work).
  const auto layer = eval::make_synthetic_layer(128, 32, 512, 31);
  quant::HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  auto err_at = [&](int bits) {
    quant::GptqConfig cfg;
    cfg.quant.bits = bits;
    cfg.quant.group_size = 64;
    const auto r = quant::gptq_quantize(layer.w.view(), acc, cfg);
    return eval::layer_output_nmse(
        layer.w.view(), r.weights.dequantize().view(), layer.calib.view());
  };
  const double e2 = err_at(2), e3 = err_at(3), e4 = err_at(4);
  EXPECT_GT(e2, e3);
  EXPECT_GT(e3, e4);
}

TEST(Factory, W4A8Registered) {
  EXPECT_EQ(baselines::make_kernel_model("marlin-w4a8")->name(),
            "marlin-w4a8");
}

}  // namespace
}  // namespace marlin
