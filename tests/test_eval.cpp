// Eval substrate: synthetic layers, quality metrics, proxy calibration.

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"
#include "eval/proxy.hpp"
#include "eval/synthetic.hpp"
#include "quant/gptq.hpp"
#include "quant/uniform.hpp"

namespace marlin::eval {
namespace {

TEST(Synthetic, ShapesAndDeterminism) {
  const auto a = make_synthetic_layer(64, 32, 128, 7);
  const auto b = make_synthetic_layer(64, 32, 128, 7);
  EXPECT_EQ(a.w.rows(), 64);
  EXPECT_EQ(a.calib.rows(), 128);
  for (index_t i = 0; i < 64; ++i) {
    for (index_t j = 0; j < 32; ++j) EXPECT_EQ(a.w(i, j), b.w(i, j));
  }
}

TEST(Synthetic, CalibrationFeaturesAreCorrelated) {
  const auto layer = make_synthetic_layer(32, 8, 4096, 11);
  // Adjacent-feature correlation should be near the configured rho = 0.6
  // (normalising away the per-feature scales).
  double num = 0, d0 = 0, d1 = 0;
  for (index_t t = 0; t < 4096; ++t) {
    const double x = layer.calib(t, 10), y = layer.calib(t, 11);
    num += x * y;
    d0 += x * x;
    d1 += y * y;
  }
  const double corr = num / std::sqrt(d0 * d1);
  EXPECT_GT(corr, 0.4);
  EXPECT_LT(corr, 0.8);
}

TEST(Synthetic, WeightsAreHeavyTailed) {
  const auto layer = make_synthetic_layer(128, 64, 1, 13);
  double sum2 = 0, sum4 = 0;
  const double n = 128 * 64;
  for (index_t i = 0; i < 128; ++i) {
    for (index_t j = 0; j < 64; ++j) {
      const double w = layer.w(i, j);
      sum2 += w * w;
      sum4 += w * w * w * w;
    }
  }
  const double kurtosis = (sum4 / n) / ((sum2 / n) * (sum2 / n));
  EXPECT_GT(kurtosis, 4.0);  // Gaussian would be 3
}

TEST(Metrics, NmseZeroForIdenticalAndPositiveOtherwise) {
  const auto layer = make_synthetic_layer(32, 16, 64, 17);
  EXPECT_DOUBLE_EQ(
      layer_output_nmse(layer.w.view(), layer.w.view(), layer.calib.view()),
      0.0);
  Matrix<float> perturbed = layer.w;
  perturbed(3, 3) += 0.5f;
  EXPECT_GT(layer_output_nmse(layer.w.view(), perturbed.view(),
                              layer.calib.view()),
            0.0);
  EXPECT_GT(weight_nmse(layer.w.view(), perturbed.view()), 0.0);
}

TEST(Metrics, OutputNmseWeightsBigFeaturesMore) {
  // Perturbing a high-magnitude feature's row must cost more output error
  // than the same perturbation on a low-magnitude feature.
  const auto layer = make_synthetic_layer(64, 16, 512, 19);
  // Find rows with max / min feature scale via calib column energies.
  index_t hot = 0, cold = 0;
  double emax = -1, emin = 1e300;
  for (index_t f = 0; f < 64; ++f) {
    double e = 0;
    for (index_t t = 0; t < 512; ++t) e += layer.calib(t, f) * layer.calib(t, f);
    if (e > emax) {
      emax = e;
      hot = f;
    }
    if (e < emin) {
      emin = e;
      cold = f;
    }
  }
  Matrix<float> p_hot = layer.w, p_cold = layer.w;
  for (index_t j = 0; j < 16; ++j) {
    p_hot(hot, j) += 0.01f;
    p_cold(cold, j) += 0.01f;
  }
  EXPECT_GT(
      layer_output_nmse(layer.w.view(), p_hot.view(), layer.calib.view()),
      layer_output_nmse(layer.w.view(), p_cold.view(), layer.calib.view()));
}

TEST(Proxy, CalibrationRoundTrips) {
  const double kappa = calibrate_kappa(5.47, 5.72, 0.01);
  EXPECT_NEAR(perplexity_proxy(5.47, 0.01, kappa), 5.72, 1e-9);
  EXPECT_DOUBLE_EQ(perplexity_proxy(5.47, 0.0, kappa), 5.47);
  const double sens = calibrate_sensitivity(56.96, 53.63, 0.01);
  EXPECT_NEAR(accuracy_proxy(56.96, 0.01, sens), 53.63, 1e-9);
}

TEST(Proxy, MonotoneInError) {
  const double kappa = 2.0;
  double prev = 0;
  for (const double nmse : {0.0, 0.005, 0.01, 0.05}) {
    const double ppl = perplexity_proxy(5.0, nmse, kappa);
    EXPECT_GT(ppl, prev);
    prev = ppl;
  }
}

TEST(Proxy, PublishedReferencesOrdered) {
  const auto refs = llama2_ppl_refs();
  ASSERT_EQ(refs.size(), 3u);
  // Bigger models have lower perplexity.
  EXPECT_GT(refs[0].fp16_ppl, refs[1].fp16_ppl);
  EXPECT_GT(refs[1].fp16_ppl, refs[2].fp16_ppl);
}

TEST(EndToEnd, BitsVsErrorParetoIsMonotone) {
  // More bits => less measured output error, on the same synthetic layer.
  const auto layer = make_synthetic_layer(128, 32, 512, 23);
  quant::HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  double prev = 1e300;
  for (const int bits : {2, 3, 4, 8}) {
    quant::GptqConfig cfg;
    cfg.quant.bits = bits;
    cfg.quant.group_size = 64;
    const auto r = quant::gptq_quantize(layer.w.view(), acc, cfg);
    const double e = layer_output_nmse(
        layer.w.view(), r.weights.dequantize().view(), layer.calib.view());
    EXPECT_LT(e, prev) << bits << " bits";
    prev = e;
  }
}

TEST(EndToEnd, GroupingImprovesGptqToo) {
  const auto layer = make_synthetic_layer(256, 16, 768, 29);
  quant::HessianAccumulator acc(256);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig coarse;
  coarse.quant.group_size = quant::kPerColumn;
  quant::GptqConfig fine;
  fine.quant.group_size = 64;
  const auto rc = quant::gptq_quantize(layer.w.view(), acc, coarse);
  const auto rf = quant::gptq_quantize(layer.w.view(), acc, fine);
  const double ec = layer_output_nmse(
      layer.w.view(), rc.weights.dequantize().view(), layer.calib.view());
  const double ef = layer_output_nmse(
      layer.w.view(), rf.weights.dequantize().view(), layer.calib.view());
  EXPECT_LT(ef, ec);
}

}  // namespace
}  // namespace marlin::eval
