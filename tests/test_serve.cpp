// Serving engine: model catalog sanity, decode/prefill step model,
// tensor parallelism, generation benchmark, discrete-event serving sim.

#include <gtest/gtest.h>

#include "serve/engine.hpp"
#include "serve/generation.hpp"
#include "serve/model_config.hpp"
#include "serve/server_sim.hpp"

namespace marlin::serve {
namespace {

TEST(ModelCatalog, ParameterCountsMatchPublishedSizes) {
  EXPECT_NEAR(llama2_7b().num_params() / 1e9, 6.7, 0.3);
  EXPECT_NEAR(llama2_13b().num_params() / 1e9, 13.0, 0.5);
  EXPECT_NEAR(llama1_33b().num_params() / 1e9, 32.5, 1.5);
  EXPECT_NEAR(llama1_65b().num_params() / 1e9, 65.0, 2.0);
  EXPECT_NEAR(llama2_70b().num_params() / 1e9, 69.0, 2.5);
  EXPECT_NEAR(yi_34b().num_params() / 1e9, 34.0, 1.5);
  EXPECT_NEAR(falcon_180b().num_params() / 1e9, 180.0, 8.0);
}

TEST(ModelCatalog, LayerShapesMatchArchitecture) {
  const auto layers = block_linear_layers(llama2_7b());
  ASSERT_EQ(layers.size(), 4u);
  EXPECT_EQ(layers[0].name, "qkv_proj");
  EXPECT_EQ(layers[0].k, 4096);
  EXPECT_EQ(layers[0].n, 3 * 4096);  // MHA: q + k + v all 4096
  EXPECT_EQ(layers[2].n, 2 * 11008);
  // GQA models have slimmer KV projections.
  const auto l70 = block_linear_layers(llama2_70b());
  EXPECT_EQ(l70[0].n, 8192 + 2 * 8 * 128);
}

TEST(ModelCatalog, LookupAndFalconShape) {
  EXPECT_EQ(model_by_name("llama-2-7b").hidden, 4096);
  EXPECT_THROW(model_by_name("gpt-5"), marlin::Error);
  const auto f = falcon_180b();
  EXPECT_FALSE(f.gated_mlp);
  const auto fl = block_linear_layers(f);
  ASSERT_EQ(fl.size(), 4u);
  EXPECT_EQ(fl[2].n, f.intermediate);
}

EngineConfig a10_7b(WeightFormat fmt) {
  EngineConfig cfg;
  cfg.model = llama2_7b();
  cfg.gpu = gpusim::a10();
  cfg.format = fmt;
  return cfg;
}

TEST(Engine, MarlinSpeedupAtBatch1MatchesTable2) {
  // Paper Table 2: Llama-2-7B on A10, batch 1 => 2.93x.
  const Engine fp16(a10_7b(WeightFormat::kFp16));
  const Engine marlin(a10_7b(WeightFormat::kMarlin));
  const double s = fp16.decode_step_seconds(1, 128.0) /
                   marlin.decode_step_seconds(1, 128.0);
  EXPECT_GT(s, 2.5);
  EXPECT_LT(s, 3.4);
}

TEST(Engine, SpeedupDecaysWithBatchLikeTable2Row1) {
  // Table 2 row (7B, A10): 2.93 ... 2.74 (16) ... 1.78 (64) ... 1.20 (128).
  const Engine fp16(a10_7b(WeightFormat::kFp16));
  const Engine marlin(a10_7b(WeightFormat::kMarlin));
  auto s = [&](index_t b) {
    return fp16.decode_step_seconds(b, 128.0) /
           marlin.decode_step_seconds(b, 128.0);
  };
  EXPECT_GT(s(16), 2.2);
  EXPECT_GT(s(16), s(64));
  EXPECT_GT(s(64), s(128));
  EXPECT_LT(s(128), 1.8);
  EXPECT_GT(s(128), 0.95);
}

TEST(Engine, SparseMarlinFasterThanMarlin) {
  const Engine marlin(a10_7b(WeightFormat::kMarlin));
  const Engine sparse(a10_7b(WeightFormat::kSparseMarlin));
  for (const index_t b : {1, 16, 64}) {
    EXPECT_LT(sparse.decode_step_seconds(b, 128.0),
              marlin.decode_step_seconds(b, 128.0))
        << "batch " << b;
  }
}

TEST(Engine, DecodeMonotoneInBatchAndContext) {
  const Engine e(a10_7b(WeightFormat::kMarlin));
  EXPECT_LE(e.decode_step_seconds(1, 128.0), e.decode_step_seconds(8, 128.0));
  EXPECT_LE(e.decode_step_seconds(8, 128.0), e.decode_step_seconds(64, 128.0));
  EXPECT_LT(e.decode_step_seconds(16, 128.0),
            e.decode_step_seconds(16, 4096.0));
}

TEST(Engine, WeightBytesPerGpuShrinkWithFormatAndTp) {
  EngineConfig cfg = a10_7b(WeightFormat::kFp16);
  const double fp16_bytes = Engine(cfg).weight_bytes_per_gpu();
  cfg.format = WeightFormat::kMarlin;
  const double q_bytes = Engine(cfg).weight_bytes_per_gpu();
  EXPECT_NEAR(fp16_bytes / q_bytes, 16.0 / 4.125, 0.01);
  cfg.num_gpus = 2;
  EXPECT_NEAR(Engine(cfg).weight_bytes_per_gpu(), q_bytes / 2, 1.0);
}

TEST(Engine, TensorParallelismSpeedsUpBigModelsButSubLinearly) {
  EngineConfig cfg;
  cfg.model = llama2_70b();
  cfg.gpu = gpusim::a100_80g();
  cfg.format = WeightFormat::kFp16;
  cfg.num_gpus = 2;
  const double t2 = Engine(cfg).decode_step_seconds(8, 128.0);
  cfg.num_gpus = 8;
  const double t8 = Engine(cfg).decode_step_seconds(8, 128.0);
  EXPECT_LT(t8, t2);
  EXPECT_GT(t8, t2 / 4.0);  // far from linear: comm + overheads
}

TEST(Engine, MoreGpusShrinkMarlinAdvantage) {
  // Table 2: Llama-2-70B on A100: TP2 => 2.55x, TP8 => 1.38x at batch 1.
  auto speedup_at = [&](int gpus) {
    EngineConfig cfg;
    cfg.model = llama2_70b();
    cfg.gpu = gpusim::a100_80g();
    cfg.num_gpus = gpus;
    cfg.format = WeightFormat::kFp16;
    const Engine fp16(cfg);
    cfg.format = WeightFormat::kMarlin;
    const Engine marlin(cfg);
    return fp16.decode_step_seconds(1, 128.0) /
           marlin.decode_step_seconds(1, 128.0);
  };
  const double s2 = speedup_at(2);
  const double s8 = speedup_at(8);
  EXPECT_GT(s2, s8);
  EXPECT_GT(s2, 1.7);
  EXPECT_LT(s8, 2.1);
  EXPECT_GT(s8, 1.0);
}

TEST(Generation, Fig14ShapeAndMagnitude) {
  // Fig 14: Llama-2-7B on A10, 64 in / 64 out. FP16 at batch 1 takes
  // ~1.1-1.6 s for tokens 2..64; MARLIN ~3x less.
  const Engine fp16(a10_7b(WeightFormat::kFp16));
  const Engine marlin(a10_7b(WeightFormat::kMarlin));
  const auto g_fp16 = generation_time(fp16, 1, 64, 64);
  const auto g_marlin = generation_time(marlin, 1, 64, 64);
  EXPECT_GT(g_fp16.decode_seconds, 0.8);
  EXPECT_LT(g_fp16.decode_seconds, 2.2);
  const double s = g_fp16.decode_seconds / g_marlin.decode_seconds;
  EXPECT_GT(s, 2.4);
  EXPECT_LT(s, 3.4);
}

TEST(Generation, ThroughputRisesWithBatch) {
  const Engine marlin(a10_7b(WeightFormat::kMarlin));
  const auto g1 = generation_time(marlin, 1, 64, 64);
  const auto g16 = generation_time(marlin, 16, 64, 64);
  EXPECT_GT(g16.output_tokens_per_s, 6.0 * g1.output_tokens_per_s);
}

EngineConfig a6000_7b(WeightFormat fmt) {
  EngineConfig cfg;
  cfg.model = llama2_7b();
  cfg.gpu = gpusim::rtxa6000();
  cfg.format = fmt;
  return cfg;
}

TEST(ServingSim, CompletesAllRequestsAtLowLoad) {
  const Engine marlin(a6000_7b(WeightFormat::kMarlin));
  ServingConfig sc;
  sc.qps = 1.0;
  sc.duration_s = 30.0;
  const auto m = simulate_serving(marlin, sc);
  EXPECT_GT(m.completed, 15);
  EXPECT_GT(m.mean_tpot_ms, 0.0);
  EXPECT_GT(m.mean_ttft_ms, 0.0);
}

TEST(ServingSim, MarlinReducesTpotRoughly3x) {
  // Fig 15: ~22.5 ms (FP16) vs ~8 ms (MARLIN) at 1 QPS on A6000.
  const Engine fp16(a6000_7b(WeightFormat::kFp16));
  const Engine marlin(a6000_7b(WeightFormat::kMarlin));
  ServingConfig sc;
  sc.qps = 1.0;
  sc.duration_s = 40.0;
  const auto mf = simulate_serving(fp16, sc);
  const auto mm = simulate_serving(marlin, sc);
  const double s = mf.mean_tpot_ms / mm.mean_tpot_ms;
  EXPECT_GT(s, 2.0);
  EXPECT_LT(s, 3.8);
}

TEST(ServingSim, TpotGrowsWithQps) {
  const Engine marlin(a6000_7b(WeightFormat::kMarlin));
  ServingConfig lo;
  lo.qps = 1.0;
  lo.duration_s = 30.0;
  ServingConfig hi = lo;
  hi.qps = 10.0;
  const auto mlo = simulate_serving(marlin, lo);
  const auto mhi = simulate_serving(marlin, hi);
  EXPECT_GT(mhi.mean_tpot_ms, mlo.mean_tpot_ms * 0.99);
  EXPECT_GT(mhi.mean_batch, mlo.mean_batch);
}

TEST(ServingSim, FasterKernelSeesSmallerAverageBatch) {
  // The paper's explanation for speedups growing with QPS.
  const Engine fp16(a6000_7b(WeightFormat::kFp16));
  const Engine marlin(a6000_7b(WeightFormat::kMarlin));
  ServingConfig sc;
  sc.qps = 5.0;
  sc.duration_s = 40.0;
  const auto mf = simulate_serving(fp16, sc);
  const auto mm = simulate_serving(marlin, sc);
  EXPECT_LT(mm.mean_batch, mf.mean_batch);
}

TEST(ServingSim, TtftImprovementSmallerThanTpot) {
  // Fig 16: TTFT gains (~1.5-1.9x) are smaller than TPOT gains (~2.8x+)
  // because prefill is compute-bound.
  const Engine fp16(a6000_7b(WeightFormat::kFp16));
  const Engine marlin(a6000_7b(WeightFormat::kMarlin));
  ServingConfig sc;
  sc.qps = 2.5;
  sc.duration_s = 40.0;
  const auto mf = simulate_serving(fp16, sc);
  const auto mm = simulate_serving(marlin, sc);
  const double tpot_gain = mf.mean_tpot_ms / mm.mean_tpot_ms;
  const double ttft_gain = mf.mean_ttft_ms / mm.mean_ttft_ms;
  EXPECT_GT(ttft_gain, 1.0);
  EXPECT_LT(ttft_gain, tpot_gain);
}

}  // namespace
}  // namespace marlin::serve
