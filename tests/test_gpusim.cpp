// gpusim substrate: device catalog anchors, clock model, pipeline
// simulation, bank conflicts, warp utilisation model, roofline.

#include <gtest/gtest.h>

#include <array>

#include "gpusim/clock.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory.hpp"
#include "gpusim/pipeline.hpp"
#include "gpusim/roofline.hpp"
#include "gpusim/smem_bank.hpp"
#include "gpusim/warp_exec.hpp"
#include "util/error.hpp"

namespace marlin::gpusim {
namespace {

TEST(Device, A10MatchesPaperFigure11Anchors) {
  const DeviceSpec d = a10();
  // Boost-clock ridge: 125 TF / 600 GB/s = 208.3 FLOP/B (paper Fig. 11).
  EXPECT_NEAR(d.flops_per_byte(d.boost_clock_ghz), 208.3, 0.5);
  // Base-clock peak 65.3 TF and ridge 108.8 FLOP/B.
  EXPECT_NEAR(d.tc_flops(d.base_clock_ghz) / 1e12, 65.3, 0.5);
  EXPECT_NEAR(d.flops_per_byte(d.base_clock_ghz), 108.8, 0.5);
}

TEST(Device, CatalogLookup) {
  EXPECT_EQ(device_by_name("a10").num_sms, 72);
  EXPECT_EQ(device_by_name("A100").num_sms, 108);
  EXPECT_EQ(device_by_name("rtx3090").num_sms, 82);
  EXPECT_EQ(device_by_name("RTXA6000").num_sms, 84);
  EXPECT_THROW(device_by_name("H100"), marlin::Error);
  EXPECT_EQ(all_devices().size(), 4u);
}

TEST(Device, UnknownNameSuggestsClosestSpelling) {
  try {
    device_by_name("a1000");
    FAIL() << "lookup should have thrown";
  } catch (const marlin::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("a1000"), std::string::npos);
    EXPECT_NE(what.find("did you mean `A100`?"), std::string::npos);
    EXPECT_NE(what.find("A10, RTX3090, RTXA6000, A100"), std::string::npos);
  }
  // Gibberish gets the catalog but no far-fetched suggestion.
  try {
    device_by_name("zzzzzzzzzzzz");
    FAIL() << "lookup should have thrown";
  } catch (const marlin::Error& e) {
    const std::string what = e.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos);
    EXPECT_NE(what.find("known: A10"), std::string::npos);
  }
}

TEST(Device, GeForceHalfRateTensorCores) {
  // 3090 has more SMs than A10 but lower FP16+FP32-acc TC peak.
  EXPECT_LT(rtx3090().fp16_tc_tflops_boost, a10().fp16_tc_tflops_boost);
}

TEST(Clock, BoostAndLockedBase) {
  const DeviceSpec d = a10();
  ClockModel boost{ClockMode::kBoost};
  ClockModel base{ClockMode::kLockedBase};
  EXPECT_DOUBLE_EQ(boost.effective_clock_ghz(d, 1.0), d.boost_clock_ghz);
  EXPECT_DOUBLE_EQ(base.effective_clock_ghz(d, 1.0), d.base_clock_ghz);
}

TEST(Clock, ThermalDecaysTowardsBase) {
  const DeviceSpec d = a10();
  ClockModel thermal{ClockMode::kAutoThermal};
  const double short_burst = thermal.effective_clock_ghz(d, 1e-4);
  const double sustained = thermal.effective_clock_ghz(d, 1.0);
  EXPECT_DOUBLE_EQ(short_burst, d.boost_clock_ghz);
  EXPECT_LT(sustained, d.boost_clock_ghz);
  EXPECT_GT(sustained, d.base_clock_ghz * 0.99);
  // Monotone decay.
  double prev = d.boost_clock_ghz + 1;
  for (const double busy : {1e-4, 1e-3, 3e-3, 1e-2, 1e-1}) {
    const double c = thermal.effective_clock_ghz(d, busy);
    EXPECT_LE(c, prev);
    prev = c;
  }
}

TEST(MemoryModel, Eq1Holds) {
  const DeviceSpec d = a10();
  // Paper: at N_sm = 256, even batch 64 remains bound by weight loading.
  EXPECT_TRUE(a_loads_hidden_by_l2(d, 64, 64, 256));
  // Narrow tiles at large batch violate the bound.
  EXPECT_FALSE(a_loads_hidden_by_l2(d, 64, 64, 64));
}

TEST(Pipeline, ComputeBoundHidesLoads) {
  PipelineParams p;
  p.depth = 4;
  p.num_tiles = 1000;
  p.tile_load_s = 1e-6;
  p.load_latency_s = 5e-7;
  p.tile_compute_s = 2e-6;  // compute dominates
  const auto r = simulate_pipeline(p);
  EXPECT_LT(r.stall_fraction, 0.01);
  EXPECT_NEAR(r.total_s, 1000 * 2e-6, 0.05 * 1000 * 2e-6);
}

TEST(Pipeline, MemoryBoundApproachesStreamTime) {
  PipelineParams p;
  p.depth = 4;
  p.num_tiles = 1000;
  p.tile_load_s = 2e-6;
  p.load_latency_s = 5e-7;
  p.tile_compute_s = 1e-6;
  const auto r = simulate_pipeline(p);
  EXPECT_NEAR(r.total_s, 1000 * 2e-6, 0.05 * 1000 * 2e-6);
}

TEST(Pipeline, DepthOneSerialises) {
  PipelineParams p;
  p.depth = 1;
  p.num_tiles = 100;
  p.tile_load_s = 1e-6;
  p.load_latency_s = 1e-6;
  p.tile_compute_s = 1e-6;
  const auto r = simulate_pipeline(p);
  // With one buffer, load (incl. latency) and compute fully serialise.
  EXPECT_NEAR(r.total_s, 100 * 3e-6, 1e-6);
  EXPECT_GT(r.stall_fraction, 0.2);
}

TEST(Pipeline, MonotoneInDepth) {
  double prev = 1e9;
  for (const int depth : {1, 2, 4, 8}) {
    PipelineParams p;
    p.depth = depth;
    p.num_tiles = 500;
    p.tile_load_s = 1e-6;
    p.load_latency_s = 2e-6;
    p.tile_compute_s = 1.1e-6;
    const auto r = simulate_pipeline(p);
    EXPECT_LE(r.total_s, prev + 1e-12);
    prev = r.total_s;
  }
}

TEST(Pipeline, EmptyAndSingleTile) {
  PipelineParams p;
  p.depth = 4;
  p.num_tiles = 0;
  EXPECT_DOUBLE_EQ(simulate_pipeline(p).total_s, 0.0);
  p.num_tiles = 1;
  p.tile_load_s = 1e-6;
  p.load_latency_s = 5e-7;
  p.tile_compute_s = 2e-6;
  EXPECT_NEAR(simulate_pipeline(p).total_s, 3.5e-6, 1e-9);
}

TEST(SmemBank, ConflictFreeBroadcastAndStride) {
  // 8 threads reading 8 different rows of a 32-byte-wide linear tile:
  // addresses 0, 32, 64, ... -> banks 0, 8, 16, 24, 0, 8, ... => conflicts.
  std::array<std::uint64_t, 8> linear{};
  for (int t = 0; t < 8; ++t) {
    linear[static_cast<std::size_t>(t)] = static_cast<std::uint64_t>(t) * 32;
  }
  EXPECT_GT(phase_conflict_transactions(linear), 1);

  // Same chunk for everyone broadcasts conflict-free.
  std::array<std::uint64_t, 8> bcast{};
  bcast.fill(128);
  EXPECT_EQ(phase_conflict_transactions(bcast), 1);

  // 8 consecutive 16-byte chunks cover distinct bank groups.
  std::array<std::uint64_t, 8> seq{};
  for (int t = 0; t < 8; ++t) {
    seq[static_cast<std::size_t>(t)] = static_cast<std::uint64_t>(t) * 16;
  }
  EXPECT_EQ(phase_conflict_transactions(seq), 1);
}

TEST(SmemBank, MisalignedAccessThrows) {
  std::array<std::uint64_t, 8> addr{};
  addr[0] = 8;  // not 16-byte aligned
  EXPECT_THROW((void)phase_conflict_transactions(addr), marlin::Error);
}

TEST(WarpExec, MarlinLayoutNearPeak) {
  const DeviceSpec d = a10();
  WarpExecParams p;  // 8 warps, 16x64 tile — MARLIN's choice
  EXPECT_GT(tensor_core_utilization(d, p), 0.85);
}

TEST(WarpExec, MonotoneInWarpsAndTileWidth) {
  const DeviceSpec d = a10();
  double prev = 0.0;
  for (const int warps : {1, 2, 4, 8, 16}) {
    WarpExecParams p;
    p.num_warps = warps;
    const double u = tensor_core_utilization(d, p);
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
  prev = 0.0;
  for (const int n : {8, 16, 32, 64}) {
    WarpExecParams p;
    p.num_warps = 4;
    p.warp_tile_n = n;
    const double u = tensor_core_utilization(d, p);
    EXPECT_GE(u, prev - 1e-12);
    prev = u;
  }
}

TEST(WarpExec, NarrowTileFewWarpsStalls) {
  const DeviceSpec d = a10();
  WarpExecParams narrow;
  narrow.num_warps = 4;
  narrow.warp_tile_n = 8;
  WarpExecParams wide;
  wide.num_warps = 8;
  wide.warp_tile_n = 64;
  EXPECT_LT(tensor_core_utilization(d, narrow),
            0.8 * tensor_core_utilization(d, wide));
}

TEST(Roofline, RidgeAndRegions) {
  const DeviceSpec d = a10();
  const double ridge = roofline_ridge_intensity(d, d.boost_clock_ghz);
  // Below the ridge: bandwidth-limited, linear in intensity.
  EXPECT_NEAR(roofline_attainable_flops(d, d.boost_clock_ghz, ridge / 2),
              d.tc_flops(d.boost_clock_ghz) / 2, 1e6);
  // Above: flat at peak.
  EXPECT_DOUBLE_EQ(roofline_attainable_flops(d, d.boost_clock_ghz, ridge * 8),
                   d.tc_flops(d.boost_clock_ghz));
}

}  // namespace
}  // namespace marlin::gpusim
