// Functional Sparse-MARLIN kernel: correctness vs the decompressed
// reference, SPTC operand selection, compressed-traffic ratio vs dense.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/marlin_kernel.hpp"
#include "core/sparse_kernel.hpp"
#include "layout/repack.hpp"
#include "quant/uniform.hpp"
#include "sparse/two_four.hpp"
#include "util/rng.hpp"

namespace marlin::core {
namespace {

Matrix<Half> random_activations(index_t m, index_t k, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal(0.0, 1.0)));
    }
  }
  return a;
}

sparse::Sparse24Weights random_sparse(index_t k, index_t n, index_t group,
                                      std::uint64_t seed,
                                      sparse::SparseMask* mask_out = nullptr,
                                      quant::QuantizedWeights* q_out = nullptr) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  const auto mask = sparse::prune_24_magnitude(w.view());
  const auto wm = sparse::apply_mask(w.view(), mask);
  quant::QuantConfig cfg;
  cfg.group_size = group;
  auto q = quant::quantize_rtn(wm.view(), cfg);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (!mask.keep(i, j)) q.codes(i, j) = 8;
    }
  }
  if (mask_out != nullptr) *mask_out = mask;
  if (q_out != nullptr) *q_out = q;
  return sparse::compress_24(q, mask);
}

struct SparseCase {
  index_t m, k, n;
  index_t n_sm;
  index_t group;
  int sms;
};

class SparseKernelCorrectness : public ::testing::TestWithParam<SparseCase> {};

TEST_P(SparseKernelCorrectness, MatchesDecompressedReference) {
  const auto c = GetParam();
  const auto a = random_activations(c.m, c.k, 7 + c.m);
  const auto s = random_sparse(c.k, c.n, c.group, 8 + c.k);

  KernelConfig cfg;
  cfg.n_sm_tile = c.n_sm;
  const auto res = sparse_marlin_matmul(a.view(), s, cfg, c.sms);

  const auto dense = sparse::decompress_24(s);
  const auto ref = reference_matmul(a.view(), dense.view());

  const double tol = 2e-3 * std::sqrt(static_cast<double>(c.k)) + 2e-2;
  for (index_t i = 0; i < c.m; ++i) {
    for (index_t j = 0; j < c.n; ++j) {
      const double err = std::abs(res.c(i, j).to_float() - ref(i, j));
      EXPECT_LT(err / (std::abs(ref(i, j)) + 1.0), tol);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseKernelCorrectness,
    ::testing::Values(SparseCase{1, 64, 64, 64, 32, 1},
                      SparseCase{16, 128, 256, 256, 64, 8},
                      SparseCase{16, 256, 128, 128, 128, 72},
                      SparseCase{5, 128, 128, 128, quant::kPerColumn, 4},
                      SparseCase{80, 128, 128, 128, 64, 4}));

TEST(SparseKernel, CompressedTrafficIsThreeQuartersOfDense) {
  const index_t m = 16, k = 256, n = 1024;
  const auto a = random_activations(m, k, 21);

  sparse::SparseMask mask;
  quant::QuantizedWeights q;
  const auto s = random_sparse(k, n, 128, 22, &mask, &q);

  KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto sp = sparse_marlin_matmul(a.view(), s, cfg, 4);
  const auto mw = layout::marlin_repack(q);
  const auto de = marlin_matmul(a.view(), mw, cfg, 4);

  // Weight-stream bytes: dense counts K*N/2, sparse K*N/4 codes + K*N/8
  // metadata = 0.75x. Subtract the common A bytes before comparing.
  const auto a_bytes = static_cast<std::int64_t>(m * k * 2);
  const double dense_w =
      static_cast<double>(de.traffic.gmem_read_bytes - a_bytes);
  const double sparse_w =
      static_cast<double>(sp.traffic.gmem_read_bytes - a_bytes);
  EXPECT_NEAR(sparse_w / dense_w, 0.75, 0.05);
}

TEST(SparseKernel, SelectionSkipsPrunedAElements) {
  // With A crafted so pruned positions carry NaN, the kernel must never
  // touch them — metadata-driven operand selection in action.
  const index_t k = 64, n = 64;
  sparse::SparseMask mask;
  const auto s = random_sparse(k, n, 32, 33, &mask);

  // NaN only works per-column if the pruned rows are pruned for ALL
  // columns, so craft a column-0-only test: a single activation row.
  Matrix<Half> a(1, k);
  for (index_t i = 0; i < k; ++i) {
    a(0, i) = mask.keep(i, 0) ? Half(1.0f)
                              : Half(std::numeric_limits<float>::quiet_NaN());
  }
  KernelConfig cfg;
  cfg.n_sm_tile = 64;
  const auto res = sparse_marlin_matmul(a.view(), s, cfg, 1);
  // Column 0 uses only kept rows of column 0 => finite result.
  EXPECT_FALSE(res.c(0, 0).is_nan());
}

TEST(SparseKernel, RejectsShapeMismatch) {
  const auto a = random_activations(4, 128, 44);
  const auto s = random_sparse(64, 64, 32, 45);
  KernelConfig cfg;
  EXPECT_THROW(sparse_marlin_matmul(a.view(), s, cfg, 4), marlin::Error);
}

}  // namespace
}  // namespace marlin::core
