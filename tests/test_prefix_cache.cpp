// Ref-counted KV block API, hashed prefix cache and copy-on-write
// sharing: refcount/charging invariants, the pinned chain-hash values,
// LRU parking/eviction order, first-publisher-wins races, cache-off
// bit-equality end to end, and the zero-alloc steady-state decode tick
// with the cache warm.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "serve/server_sim.hpp"
#include "util/hash.hpp"

// ------------------------------------------------------------------------
// Counting global allocator (same pattern as test_simd_dispatch): every
// replaceable operator new bumps one relaxed counter so tests can assert
// that a code window performed zero heap allocations.

namespace {
std::atomic<std::uint64_t> g_new_calls{0};

std::uint64_t alloc_count() {
  return g_new_calls.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t n) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = std::max(sizeof(void*), static_cast<std::size_t>(al));
  void* p = nullptr;
  if (posix_memalign(&p, a, n ? n : 1) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace marlin::serve::sched {
namespace {

BlockManagerConfig cache_cfg(index_t num_blocks, index_t max_cached = 0) {
  BlockManagerConfig cfg;
  cfg.block_size = 16;
  cfg.num_blocks = num_blocks;
  cfg.watermark = 0.0;
  cfg.prefix_cache.enabled = true;
  cfg.prefix_cache.max_cached_blocks = max_cached;
  return cfg;
}

/// Chain hashes of a `blocks`-block prefix tagged `prefix_id`.
std::vector<std::uint64_t> chain_of(index_t prefix_id, index_t blocks) {
  Request r(0, 0.0, blocks * 16, 1);
  r.prefix_id = prefix_id;
  r.prefix_tokens = blocks * 16;
  std::vector<std::uint64_t> chain;
  r.append_prefix_chain(16, blocks, chain);
  return chain;
}

// ------------------------------------------------------------ chain hash

TEST(PrefixChain, PinnedHashValuesNeverDrift) {
  // The cache key is pinned to util::mix64 (splitmix64 finalizer) with
  // published seed/salt constants. These literals are the contract: if
  // they change, every persisted cache key in the wild changes with them.
  const auto chain = chain_of(0, 2);
  ASSERT_EQ(chain.size(), 2u);
  EXPECT_EQ(chain[0], 0x5cd35c8514c1f3f4ull);
  EXPECT_EQ(chain[1], 0x467cc3f44e102525ull);

  // Re-derive from the documented formula h_j = mix64(h_{j-1} ^ key_j).
  const std::uint64_t base = util::mix64(kPrefixKeySalt ^ 0ull);
  std::uint64_t h = kPrefixHashSeed;
  for (std::size_t j = 0; j < chain.size(); ++j) {
    h = util::mix64(h ^ util::mix64(base + j));
    EXPECT_EQ(chain[j], h);
  }
}

TEST(PrefixChain, DistinctTagsAndPositionsDiverge) {
  const auto a = chain_of(0, 4);
  const auto b = chain_of(1, 4);
  for (std::size_t j = 0; j < a.size(); ++j) EXPECT_NE(a[j], b[j]);
  // A shorter request's chain is a strict prefix of a longer one's.
  const auto head = chain_of(0, 2);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), a.begin()));
}

TEST(PrefixChain, HashableBlocksAndTruncation) {
  Request r(0, 0.0, 64, 8);
  EXPECT_EQ(r.hashable_prefix_blocks(16), 0);  // no tag
  r.prefix_id = 3;
  r.prefix_tokens = 20;  // partial tail block cannot be shared
  EXPECT_EQ(r.hashable_prefix_blocks(16), 1);
  r.prefix_tokens = 64;
  EXPECT_EQ(r.hashable_prefix_blocks(16), 4);
  std::vector<std::uint64_t> chain;
  r.append_prefix_chain(16, 2, chain);  // max_blocks truncates
  EXPECT_EQ(chain.size(), 2u);
}

TEST(PrefixChain, MaxKvBlocksSharesPromptAcrossSequences) {
  Request r(0, 0.0, 64, 16);
  EXPECT_EQ(r.max_kv_blocks(16), 5);  // ceil(79 / 16), n = 1
  r.num_sequences = 4;
  EXPECT_EQ(r.max_kv_blocks(16), 8);  // 4 shared + 4 * (5 - 4)
  Request p(1, 0.0, 60, 16);          // partial prompt block is per-seq
  p.num_sequences = 2;
  EXPECT_EQ(p.max_kv_blocks(16), 7);  // 3 shared + 2 * (5 - 3)
}

// --------------------------------------------------- refcounts / parking

TEST(PrefixCache, MissPublishParkAndResurrect) {
  BlockManager bm(cache_cfg(8));
  const auto chain = chain_of(0, 4);

  SequenceBlocks a;
  EXPECT_EQ(bm.acquire_prefill(a, 4, chain), 0);  // cold: all misses
  EXPECT_EQ(bm.prefix_cache_lookup_blocks(), 4);
  EXPECT_EQ(bm.cached_chain_blocks(chain), 0);  // unpublished: unhittable
  bm.publish(a);
  EXPECT_EQ(bm.cached_chain_blocks(chain), 4);

  bm.release(a);
  EXPECT_EQ(bm.used_blocks(), 0);
  EXPECT_EQ(bm.cached_blocks(), 4);  // parked, not freed
  EXPECT_EQ(bm.free_blocks(), 8);    // parked blocks count as free budget
  EXPECT_EQ(bm.cached_chain_blocks(chain), 4);

  SequenceBlocks b;
  EXPECT_EQ(bm.acquire_prefill(b, 4, chain), 4);  // warm: resurrected
  EXPECT_EQ(b.cached_prefix_blocks(), 4);
  EXPECT_EQ(bm.prefix_cache_hit_blocks(), 4);
  EXPECT_EQ(bm.cached_blocks(), 0);
  EXPECT_EQ(bm.used_blocks(), 4);
  bm.release(b);
}

TEST(PrefixCache, PressureEvictsDeepestChainPositionsFirst) {
  BlockManager bm(cache_cfg(6));
  const auto chain = chain_of(0, 4);
  SequenceBlocks a;
  bm.acquire_prefill(a, 4, chain);
  bm.publish(a);
  bm.release(a);  // 4 parked, 2 on the free list

  // Allocating 3 drains the free list and must reclaim exactly one
  // cached block — the deepest chain position, so the surviving prefix
  // stays contiguous and hittable.
  SequenceBlocks t;
  bm.acquire(t, 3);
  EXPECT_EQ(bm.prefix_cache_evictions(), 1);
  EXPECT_EQ(bm.cached_blocks(), 3);
  EXPECT_EQ(bm.cached_chain_blocks(chain), 3);
  bm.release(t);

  SequenceBlocks b;
  EXPECT_EQ(bm.acquire_prefill(b, 4, chain), 3);  // leading run still hits
  EXPECT_EQ(b.cached_prefix_blocks(), 3);
  bm.release(b);
}

TEST(PrefixCache, MaxCachedBlocksCapsTheLru) {
  BlockManager bm(cache_cfg(8, /*max_cached=*/2));
  const auto chain = chain_of(0, 4);
  SequenceBlocks a;
  bm.acquire_prefill(a, 4, chain);
  bm.publish(a);
  bm.release(a);
  EXPECT_EQ(bm.cached_blocks(), 2);  // cap enforced at park time
  EXPECT_EQ(bm.prefix_cache_evictions(), 2);
  EXPECT_EQ(bm.cached_chain_blocks(chain), 2);
}

TEST(PrefixCache, FirstPublisherWinsOnConcurrentDuplicates) {
  BlockManager bm(cache_cfg(16));
  const auto chain = chain_of(0, 3);
  SequenceBlocks a, b;
  // Both admitted before either prefill completes: both miss.
  EXPECT_EQ(bm.acquire_prefill(a, 3, chain), 0);
  EXPECT_EQ(bm.acquire_prefill(b, 3, chain), 0);
  EXPECT_EQ(bm.used_blocks(), 6);
  bm.publish(a);
  bm.publish(b);  // loser: drops its hashes, no table overwrite
  EXPECT_EQ(bm.cached_chain_blocks(chain), 3);

  bm.release(b);  // unpublished duplicate frees normally
  EXPECT_EQ(bm.cached_blocks(), 0);
  bm.release(a);  // winner parks
  EXPECT_EQ(bm.cached_blocks(), 3);
  SequenceBlocks c;
  EXPECT_EQ(bm.acquire_prefill(c, 3, chain), 3);
  bm.release(c);
}

TEST(PrefixCache, WorksInUnlimitedMode) {
  BlockManager bm(cache_cfg(0));  // num_blocks = 0: unlimited budget
  const auto chain = chain_of(5, 2);
  SequenceBlocks a;
  EXPECT_EQ(bm.acquire_prefill(a, 2, chain), 0);
  bm.publish(a);
  bm.release(a);
  SequenceBlocks b;
  EXPECT_EQ(bm.acquire_prefill(b, 2, chain), 2);
  EXPECT_EQ(bm.used_blocks(), 2);
  bm.release(b);
  EXPECT_EQ(bm.used_blocks(), 0);
}

TEST(PrefixCache, ConfigValidation) {
  PrefixCacheConfig pc;
  pc.max_cached_blocks = -1;
  EXPECT_THROW(pc.validate(), Error);
  pc.max_cached_blocks = 0;
  pc.min_prefix_blocks = 0;  // sub-block prefixes cannot be shared
  EXPECT_THROW(pc.validate(), Error);
}

// ------------------------------------------------------------------- CoW

TEST(CopyOnWrite, ForkSharesThenSplitsAtFirstDivergentToken) {
  BlockManager bm(cache_cfg(8));
  SequenceBlocks parent;
  bm.acquire(parent, 4);  // 64 tokens of prompt KV
  SequenceBlocks child = bm.fork(parent);
  EXPECT_EQ(bm.cow_forks(), 1);
  EXPECT_EQ(bm.used_blocks(), 4);  // refcount++, no physical allocation
  EXPECT_EQ(child.ids(), parent.ids());

  // The child writes tokens [48, 64): block 3 is shared, so it is copied;
  // blocks 0..2 stay physically shared.
  ASSERT_TRUE(bm.grow_to(child, 64, 48));
  EXPECT_EQ(bm.cow_copies(), 1);
  EXPECT_EQ(bm.used_blocks(), 5);
  EXPECT_EQ(child.ids()[0], parent.ids()[0]);
  EXPECT_EQ(child.ids()[2], parent.ids()[2]);
  EXPECT_NE(child.ids()[3], parent.ids()[3]);

  bm.release(parent);
  EXPECT_EQ(bm.used_blocks(), 4);  // child still references blocks 0..2
  bm.release(child);
  EXPECT_EQ(bm.used_blocks(), 0);
}

TEST(CopyOnWrite, PublishedBlocksAreCopiedBeforeAWrite) {
  // A published block is shared with the cache even at refcount 1: a
  // write into it must copy, and the original parks for future hits.
  BlockManager bm(cache_cfg(8));
  const auto chain = chain_of(0, 2);
  SequenceBlocks a;
  bm.acquire_prefill(a, 2, chain);
  bm.publish(a);
  ASSERT_TRUE(bm.grow_to(a, 33, 20));  // writes [20, 33): copies block 1
  EXPECT_EQ(bm.cow_copies(), 1);
  EXPECT_EQ(bm.cached_blocks(), 1);  // displaced original parked
  EXPECT_EQ(bm.cached_chain_blocks(chain), 2);
  EXPECT_EQ(a.count(), 3);
  bm.release(a);
}

TEST(CopyOnWrite, AppendOnlyGrowthNeverCopies) {
  BlockManager bm(cache_cfg(8));
  SequenceBlocks parent;
  bm.acquire(parent, 2);
  SequenceBlocks child = bm.fork(parent);
  // covered == tokens' block boundary: pure append past the shared run.
  ASSERT_TRUE(bm.grow_to(child, 48, 32));
  EXPECT_EQ(bm.cow_copies(), 0);
  EXPECT_EQ(child.count(), 3);
  bm.release(parent);
  bm.release(child);
}

TEST(CopyOnWrite, GrowFailureLeavesHoldingsUntouched) {
  BlockManager bm(cache_cfg(4));
  SequenceBlocks parent;
  bm.acquire(parent, 3);
  SequenceBlocks child = bm.fork(parent);
  // Needs 1 append + 2 CoW copies = 3 blocks; only 1 is left.
  EXPECT_FALSE(bm.grow_to(child, 64, 20));
  EXPECT_EQ(bm.grow_failures(), 1);
  EXPECT_EQ(child.count(), 3);
  EXPECT_EQ(child.ids(), parent.ids());
  EXPECT_EQ(bm.used_blocks(), 3);
  bm.release(parent);
  bm.release(child);
}

// ------------------------------------------------------- tenant charging

TEST(TenantCharging, LastToucherPaysAndChargeFallsBack) {
  BlockManager bm(cache_cfg(8));
  const auto chain = chain_of(0, 2);

  SequenceBlocks a;
  bm.acquire_prefill(a, 2, chain, /*tenant=*/0);
  bm.publish(a);
  EXPECT_EQ(bm.tenant_used_blocks(0), 2);

  // Tenant 1 re-acquires the shared blocks: the charge migrates to the
  // most recent live holder ("last toucher pays").
  SequenceBlocks b;
  EXPECT_EQ(bm.acquire_prefill(b, 2, chain, /*tenant=*/1), 2);
  EXPECT_EQ(bm.tenant_used_blocks(1), 2);
  EXPECT_EQ(bm.tenant_used_blocks(0), 0);

  // Releasing the top holder moves the charge back to the previous one.
  bm.release(b, 1);
  EXPECT_EQ(bm.tenant_used_blocks(1), 0);
  EXPECT_EQ(bm.tenant_used_blocks(0), 2);
  bm.release(a, 0);
  EXPECT_EQ(bm.tenant_used_blocks(0), 0);
  EXPECT_EQ(bm.cached_blocks(), 2);  // parked blocks charge nobody
}

TEST(TenantCharging, ReleasingBlocksTheTenantDoesNotHoldThrows) {
  BlockManager bm(cache_cfg(4));
  SequenceBlocks a;
  bm.acquire(a, 2, /*tenant=*/0);
  SequenceBlocks copy = a;  // copies ids, acquires no references
  EXPECT_THROW(bm.release(copy, /*tenant=*/1), Error);
  bm.release(a, 0);
  EXPECT_THROW(bm.release(copy, 0), Error);  // double release, stale copy
}

// ------------------------------------------------------------ end to end

serve::Engine test_engine() {
  serve::EngineConfig ecfg;
  ecfg.model = serve::llama2_7b();
  ecfg.gpu = gpusim::rtxa6000();
  ecfg.format = serve::WeightFormat::kMarlin;
  return serve::Engine(ecfg);
}

serve::ServingConfig shared_prefix_config() {
  serve::ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 10.0;
  sc.input_tokens = 64;
  sc.output_tokens = 16;
  sc.kv_blocks = 256;
  sc.shared_prefix_tokens = 128;
  sc.shared_prefix_groups = 2;
  sc.shared_prefix_share = 0.8;
  return sc;
}

TEST(PrefixCacheEndToEnd, CacheOffIsBitIdenticalOnAnyWorkload) {
  // With the cache disabled the manager must behave exactly like the
  // legacy allocator — even when the workload carries shared prefixes.
  const serve::Engine engine = test_engine();
  serve::ServingConfig off = shared_prefix_config();
  off.prefix_cache.enabled = false;
  const auto a = serve::simulate_serving_detailed(engine, off);
  const auto b = serve::simulate_serving_detailed(engine, off);
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.prefix_cache_lookup_blocks, 0);
  EXPECT_EQ(a.prefix_cache_hit_blocks, 0);
  EXPECT_EQ(a.cow_forks, 0);
}

TEST(PrefixCacheEndToEnd, UniqueWorkloadIsUnchangedByTheCache) {
  // No shared prefixes: enabling the cache must not change a single
  // scheduling decision ("the cache never hurts").
  const serve::Engine engine = test_engine();
  serve::ServingConfig sc = shared_prefix_config();
  sc.shared_prefix_tokens = 0;  // fully unique prompts
  sc.prefix_cache.enabled = false;
  const auto off = serve::simulate_serving_detailed(engine, sc);
  sc.prefix_cache.enabled = true;
  const auto on = serve::simulate_serving_detailed(engine, sc);

  EXPECT_EQ(off.metrics.completed, on.metrics.completed);
  EXPECT_EQ(off.metrics.mean_tpot_ms, on.metrics.mean_tpot_ms);
  EXPECT_EQ(off.metrics.mean_ttft_ms, on.metrics.mean_ttft_ms);
  EXPECT_EQ(off.preemptions, on.preemptions);
  EXPECT_EQ(off.prefill_steps, on.prefill_steps);
  EXPECT_EQ(off.decode_steps, on.decode_steps);
  EXPECT_EQ(off.peak_kv_blocks, on.peak_kv_blocks);
  EXPECT_EQ(off.sim_end_s, on.sim_end_s);
  EXPECT_EQ(on.prefix_cache_hit_blocks, 0);  // nothing shareable
}

TEST(PrefixCacheEndToEnd, SharedPrefixesHitAndSkipPrefillTokens) {
  const serve::Engine engine = test_engine();
  serve::ServingConfig sc = shared_prefix_config();
  sc.prefix_cache.enabled = true;
  const auto st = serve::simulate_serving_detailed(engine, sc);
  EXPECT_GT(st.prefix_cache_lookup_blocks, 0);
  EXPECT_GT(st.prefix_cache_hit_blocks, 0);
  EXPECT_GT(st.prefix_tokens_skipped, 0);
  EXPECT_LE(st.prefix_cache_hit_blocks, st.prefix_cache_lookup_blocks);
  // Skipped tokens are whole cached blocks' worth of prefill.
  EXPECT_EQ(st.prefix_tokens_skipped,
            st.prefix_cache_hit_blocks * sc.kv_block_size);

  // Warm admissions reach their first token sooner than the cold run.
  serve::ServingConfig off = sc;
  off.prefix_cache.enabled = false;
  const auto cold = serve::simulate_serving_detailed(engine, off);
  EXPECT_LT(st.metrics.mean_ttft_ms, cold.metrics.mean_ttft_ms);
  EXPECT_EQ(st.metrics.completed, cold.metrics.completed);
}

TEST(PrefixCacheEndToEnd, ParallelSamplingForksAndDiverges) {
  const serve::Engine engine = test_engine();
  serve::ServingConfig sc = shared_prefix_config();
  sc.prefix_cache.enabled = true;
  sc.sampling_n = 4;
  // 60 + 128 prompt tokens: the partial tail block is shared at fork
  // time and must CoW-split on each sequence's first divergent write.
  sc.input_tokens = 60;
  const auto st = serve::simulate_serving_detailed(engine, sc);
  EXPECT_GT(st.cow_forks, 0);
  EXPECT_GT(st.cow_copies, 0);
  EXPECT_GT(st.metrics.completed, 0);
  // Each request decodes n sequences in lockstep, so the engine sees a
  // strictly larger decode batch than the n=1 run.
  serve::ServingConfig single = sc;
  single.sampling_n = 1;
  const auto one = serve::simulate_serving_detailed(engine, single);
  EXPECT_GT(st.metrics.mean_batch, one.metrics.mean_batch);
}

TEST(PrefixCacheEndToEnd, DeterministicAcrossThreadCounts) {
  const serve::Engine engine = test_engine();
  serve::ServingConfig sc = shared_prefix_config();
  sc.prefix_cache.enabled = true;
  sc.sampling_n = 2;
  const SimContext& serial = SimContext::serial_context();
  const SimContext pool(4);
  const auto a = serve::simulate_serving_detailed(engine, sc, serial);
  const auto b = serve::simulate_serving_detailed(engine, sc, pool);
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.metrics.mean_ttft_ms, b.metrics.mean_ttft_ms);
  EXPECT_EQ(a.prefix_cache_hit_blocks, b.prefix_cache_hit_blocks);
  EXPECT_EQ(a.prefix_cache_evictions, b.prefix_cache_evictions);
  EXPECT_EQ(a.cow_copies, b.cow_copies);
}

// ------------------------------------------------- allocation regression

TEST(HotPath, WarmCacheSteadyStateDecodeTickDoesNotAllocate) {
  // The zero-alloc steady-state guarantee must survive the cache being
  // ON and WARM: ref-counted growth, LRU bookkeeping and last-toucher
  // charging all run on pre-sized storage.
  const serve::Engine engine = test_engine();

  SchedulerConfig scfg;
  scfg.policy = SchedPolicy::kFcfs;
  scfg.max_batch = 8;
  scfg.blocks.block_size = 16;
  scfg.blocks.num_blocks = 256;
  scfg.blocks.prefix_cache.enabled = true;
  const Scheduler sched(engine, scfg);

  std::vector<Request> requests;
  for (index_t i = 0; i < 8; ++i) {
    Request& r = requests.emplace_back(i, 0.0, 64, 32);
    r.prefix_id = 0;  // all eight share one 32-token header
    r.prefix_tokens = 32;
  }
  for (index_t batch = 1; batch <= scfg.max_batch; ++batch) {
    for (index_t b = 0; b < 4; ++b) {
      (void)engine.decode_step_seconds(batch,
                                       static_cast<double>(b) * 64.0 + 1.0);
    }
  }

  ReplicaState s = sched.make_replica_state();
  sched.register_tenants(s, requests);

  // Wave 1 admits cold and publishes at prefill completion; wave 2 then
  // hits the warm cache, so the steady-state window below runs with live
  // shared refcounts.
  for (std::size_t i = 0; i < 4; ++i) s.queue.push_back(i);
  while (s.decode_steps < 1) {
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  for (std::size_t i = 4; i < 8; ++i) s.queue.push_back(i);
  while (s.decode_steps < 3) {
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  EXPECT_GT(s.bm.prefix_cache_hit_blocks(), 0);  // the cache engaged
  ASSERT_EQ(s.running.size(), requests.size());

  const std::uint64_t before = alloc_count();
  for (int tick = 0; tick < 5; ++tick) {
    sched.admit(s, requests);  // empty queue: must also be free of allocs
    sched.step(s, requests);
  }
  const std::uint64_t allocs = alloc_count() - before;
  EXPECT_EQ(allocs, 0u)
      << allocs << " heap allocations across 5 warm-cache decode ticks";
  EXPECT_EQ(s.running.size(), requests.size());  // still mid-decode

  while (s.busy()) {
    sched.admit(s, requests);
    sched.step(s, requests);
  }
  EXPECT_EQ(s.bm.used_blocks(), 0);
  EXPECT_GT(s.bm.cached_blocks(), 0);  // shared header parked for reuse
}

}  // namespace
}  // namespace marlin::serve::sched
