// Seed-swept randomized invariant fuzzer for the serving stack: every
// seed derives a random ServingConfig spanning the policy × replica ×
// SLO × prefix-cache × speculation × disaggregation space, runs it end
// to end, and asserts the invariants that must hold for *every*
// configuration:
//
//   - no KV blocks leak (every replica ends at used_blocks == 0),
//   - request conservation (completed + rejected + shed == offered, and
//     every request reaches a terminal state),
//   - monotone time (arrival <= first token <= finish <= sim end),
//   - per-tenant splits sum back to the fleet totals,
//   - repeat runs reproduce bit-identically (subset of seeds).
//
// The sweep size defaults to 200 fixed seeds and can be narrowed with
// MARLIN_FUZZ_SEEDS=<n> (the sanitizer CI job runs a subset; the seeds
// themselves never change, so failures reproduce by number).
//
// Registered under the ctest label `fuzz`.

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>

#include "serve/server_sim.hpp"

namespace marlin::serve {
namespace {

const Engine& fuzz_engine() {
  static const Engine engine = [] {
    EngineConfig cfg;
    cfg.model = llama2_7b();
    cfg.gpu = gpusim::rtxa6000();
    cfg.format = WeightFormat::kMarlin;
    return Engine(cfg);
  }();
  return engine;
}

index_t seed_count() {
  if (const char* env = std::getenv("MARLIN_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

/// Deterministic config for one seed. The generator is seeded by the
/// sweep seed alone, so seed k means the same configuration forever —
/// a failure report of "seed 137" reproduces by number.
ServingConfig config_for_seed(std::uint64_t seed) {
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  const auto pick = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const auto pickd = [&](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };

  ServingConfig sc;
  sc.seed = seed;
  sc.qps = pickd(4.0, 20.0);
  sc.duration_s = pickd(3.0, 6.0);
  sc.input_tokens = pick(16, 96);
  sc.output_tokens = pick(4, 48);
  sc.max_batch = pick(8, 64);
  sc.shape = std::array{sched::WorkloadShape::kPoisson,
                        sched::WorkloadShape::kBursty,
                        sched::WorkloadShape::kShareGpt}[pick(0, 2)];
  sc.policy = std::array{sched::SchedPolicy::kFcfs,
                         sched::SchedPolicy::kShortestJob,
                         sched::SchedPolicy::kMaxUtilization,
                         sched::SchedPolicy::kWeightedFair}[pick(0, 3)];
  // 0 = unlimited; otherwise tight enough that preemption and admission
  // backpressure actually fire.
  sc.kv_blocks = pick(0, 2) == 0 ? 0 : pick(48, 192);
  sc.prefill_chunk_tokens = pick(0, 1) == 0 ? 0 : 32;
  sc.sampling_n = pick(0, 3) == 0 ? 2 : 1;

  if (pick(0, 1) == 1) {  // hashed prefix cache + shared-prefix traffic
    sc.prefix_cache.enabled = true;
    sc.shared_prefix_tokens = pick(1, 4) * 16;
    sc.shared_prefix_groups = pick(1, 3);
    sc.shared_prefix_share = pickd(0.3, 1.0);
  }
  if (pick(0, 2) == 0) {  // speculative decoding
    sc.speculation.depth = pick(1, 3);
    sc.speculation.acceptance = pickd(0.5, 0.9);
  }
  if (pick(0, 2) == 0) {  // streaming SLOs (shedding + violations)
    sc.slo.ttft_deadline_ms = pickd(50.0, 500.0);
    sc.slo.tpot_deadline_ms = pickd(5.0, 50.0);
  }
  if (pick(0, 1) == 1) {  // multi-tenant mix
    const index_t tenants = pick(2, 3);
    for (index_t t = 0; t < tenants; ++t) {
      sched::TenantSpec spec;
      spec.id = t;
      spec.name = "t";
      spec.name += std::to_string(t);
      spec.weight = pickd(0.5, 2.0);
      sc.tenants.push_back(spec);
    }
  }

  // Cluster shape: unified fleet of 1-3 replicas, or disaggregated
  // prefill/decode pools with engine-derived transfer pricing.
  if (pick(0, 2) == 0) {
    sc.cluster.disagg.enabled = true;
    sc.cluster.disagg.prefill_replicas = pick(1, 2);
    sc.cluster.disagg.decode_replicas = pick(1, 2);
  } else {
    sc.cluster.replicas = pick(1, 3);
    sc.cluster.placement =
        std::array{cluster::Placement::kRoundRobin,
                   cluster::Placement::kLeastLoaded,
                   cluster::Placement::kSessionAffinity}[pick(0, 2)];
  }
  return sc;
}

void check_invariants(const cluster::ClusterStats& cs, std::uint64_t seed) {
  const sched::SchedStats& st = cs.sched;
  const auto offered = static_cast<index_t>(st.requests.size());

  // ---- no KV leaks anywhere in the fleet -------------------------------
  for (const auto& rep : cs.replicas) {
    EXPECT_EQ(rep.leaked_kv_blocks, 0)
        << "seed " << seed << ": replica " << rep.id << " leaked KV blocks";
  }

  // ---- request conservation --------------------------------------------
  EXPECT_EQ(st.metrics.completed + st.rejected + st.shed, offered)
      << "seed " << seed;
  index_t completed = 0;
  index_t rejected = 0;
  index_t shed = 0;
  index_t generated_total = 0;
  for (const auto& r : st.requests) {
    EXPECT_TRUE(r.finished()) << "seed " << seed << ": request " << r.id
                              << " never reached a terminal state";
    EXPECT_FALSE(r.rejected && r.shed) << "seed " << seed;
    if (r.rejected) {
      ++rejected;
    } else if (r.shed) {
      ++shed;
    } else {
      ++completed;
      generated_total += r.generated;
      // ---- monotone time ----------------------------------------------
      EXPECT_GE(r.first_token_s, r.arrival_s) << "seed " << seed;
      EXPECT_GE(r.finish_s, r.first_token_s) << "seed " << seed;
      EXPECT_LE(r.finish_s, st.sim_end_s) << "seed " << seed;
      EXPECT_EQ(r.generated, r.output_tokens) << "seed " << seed;
      EXPECT_LE(r.migrations, 1) << "seed " << seed;
    }
  }
  EXPECT_EQ(completed, st.metrics.completed) << "seed " << seed;
  EXPECT_EQ(rejected, st.rejected) << "seed " << seed;
  EXPECT_EQ(shed, st.shed) << "seed " << seed;

  // ---- per-replica clocks inside the run window ------------------------
  for (const auto& rep : cs.replicas) {
    EXPECT_GE(rep.clock_s, 0.0) << "seed " << seed;
    EXPECT_LE(rep.clock_s, st.sim_end_s) << "seed " << seed;
  }

  // ---- per-tenant splits sum back to fleet totals ----------------------
  index_t tenant_completed = 0;
  index_t tenant_rejected = 0;
  index_t tenant_preempt = 0;
  index_t tenant_tokens = 0;
  for (const auto& t : sched::per_tenant_metrics(st)) {
    tenant_completed += t.completed;
    tenant_rejected += t.rejected;
    tenant_preempt += t.preemptions;
    tenant_tokens += t.output_tokens;
  }
  EXPECT_EQ(tenant_completed, st.metrics.completed) << "seed " << seed;
  EXPECT_EQ(tenant_rejected, st.rejected) << "seed " << seed;
  EXPECT_EQ(tenant_preempt, st.preemptions) << "seed " << seed;
  EXPECT_EQ(tenant_tokens, generated_total) << "seed " << seed;

  // ---- migration accounting (inert unless disaggregated) ---------------
  index_t migrated_out = 0;
  index_t migrated_in = 0;
  for (const auto& rep : cs.replicas) {
    migrated_out += rep.migrated_out;
    migrated_in += rep.migrated_in;
  }
  EXPECT_EQ(migrated_out, cs.migrations) << "seed " << seed;
  EXPECT_EQ(migrated_in, cs.migrations) << "seed " << seed;
  index_t link_transfers = 0;
  for (const auto& l : cs.links) link_transfers += l.transfers;
  EXPECT_EQ(link_transfers, cs.migrations) << "seed " << seed;
  EXPECT_GE(cs.transfer_seconds, 0.0) << "seed " << seed;
}

void expect_bit_identical(const cluster::ClusterStats& a,
                          const cluster::ClusterStats& b,
                          std::uint64_t seed) {
  EXPECT_EQ(a.sched.metrics.mean_tpot_ms, b.sched.metrics.mean_tpot_ms)
      << "seed " << seed;
  EXPECT_EQ(a.sched.metrics.mean_ttft_ms, b.sched.metrics.mean_ttft_ms)
      << "seed " << seed;
  EXPECT_EQ(a.sched.metrics.completed, b.sched.metrics.completed)
      << "seed " << seed;
  EXPECT_EQ(a.sched.sim_end_s, b.sched.sim_end_s) << "seed " << seed;
  EXPECT_EQ(a.sched.preemptions, b.sched.preemptions) << "seed " << seed;
  EXPECT_EQ(a.migrations, b.migrations) << "seed " << seed;
  EXPECT_EQ(a.transfer_bytes, b.transfer_bytes) << "seed " << seed;
  ASSERT_EQ(a.sched.requests.size(), b.sched.requests.size());
  for (std::size_t i = 0; i < a.sched.requests.size(); ++i) {
    EXPECT_EQ(a.sched.requests[i].first_token_s,
              b.sched.requests[i].first_token_s)
        << "seed " << seed << " request " << i;
    EXPECT_EQ(a.sched.requests[i].finish_s, b.sched.requests[i].finish_s)
        << "seed " << seed << " request " << i;
  }
}

TEST(ClusterFuzz, InvariantsHoldAcrossTheSeedSweep) {
  const index_t seeds = seed_count();
  for (index_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ServingConfig sc = config_for_seed(seed);
    const cluster::ClusterStats cs =
        simulate_cluster_detailed(fuzz_engine(), sc);
    check_invariants(cs, seed);
    EXPECT_GT(cs.sched.requests.size(), 0u) << "seed " << seed;
    // Every 8th seed: the run must reproduce bit-for-bit from scratch.
    if (seed % 8 == 0) {
      expect_bit_identical(cs, simulate_cluster_detailed(fuzz_engine(), sc),
                           seed);
    }
    if (HasFatalFailure()) return;
  }
}

TEST(ClusterFuzz, SweepIsDeterministicAcrossThreadCounts) {
  // A handful of seeds re-run under a 4-thread SimContext: memo warming
  // parallelism must never change a single bit of the outcome.
  const SimContext pooled(4);
  for (const std::uint64_t seed : {3u, 57u, 111u, 169u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const ServingConfig sc = config_for_seed(seed);
    expect_bit_identical(simulate_cluster_detailed(fuzz_engine(), sc),
                         simulate_cluster_detailed(fuzz_engine(), sc, pooled),
                         seed);
  }
}

}  // namespace
}  // namespace marlin::serve
