// Serving scheduler subsystem: request lifecycle, paged KV block manager
// invariants, workload-trace determinism, preemption/recompute round
// trips, policy ordering, and the bit-identical-across-threads contract.

#include <gtest/gtest.h>

#include "serve/server_sim.hpp"
#include "util/rng.hpp"

namespace marlin::serve::sched {
namespace {

// ---------------------------------------------------------------- request

TEST(RequestLifecycle, HappyPathAndRecomputeLoop) {
  Request r(0, 0.0, 64, 16);
  EXPECT_EQ(r.state, RequestState::kQueued);
  r.set_state(RequestState::kPrefilling);
  r.set_state(RequestState::kRunning);
  r.generated = 5;
  r.set_state(RequestState::kPreempted);
  EXPECT_EQ(r.prefill_target(), 64 + 5);  // recompute covers generated
  r.set_state(RequestState::kPrefilling);
  r.set_state(RequestState::kRunning);
  r.set_state(RequestState::kFinished);
}

TEST(RequestLifecycle, IllegalTransitionsThrow) {
  Request r(0, 0.0, 64, 16);
  EXPECT_THROW(r.set_state(RequestState::kRunning), Error);    // skip prefill
  EXPECT_THROW(r.set_state(RequestState::kPreempted), Error);  // from queued
  r.set_state(RequestState::kFinished);  // rejection path is legal
  EXPECT_THROW(r.set_state(RequestState::kPrefilling), Error);
  EXPECT_FALSE(transition_allowed(RequestState::kPrefilling,
                                  RequestState::kPreempted));
}

// ---------------------------------------------------------- block manager

BlockManagerConfig blocks_cfg(index_t num_blocks, double watermark = 0.0) {
  BlockManagerConfig cfg;
  cfg.block_size = 16;
  cfg.num_blocks = num_blocks;
  cfg.watermark = watermark;
  return cfg;
}

TEST(BlockManager, AcquireReleaseAndCounts) {
  BlockManager bm(blocks_cfg(8));
  EXPECT_EQ(bm.blocks_for_tokens(1), 1);
  EXPECT_EQ(bm.blocks_for_tokens(16), 1);
  EXPECT_EQ(bm.blocks_for_tokens(17), 2);
  SequenceBlocks a, b;
  bm.acquire(a, 3);
  bm.acquire(b, 5);
  EXPECT_EQ(bm.used_blocks(), 8);
  EXPECT_EQ(bm.free_blocks(), 0);
  EXPECT_FALSE(bm.can_allocate(1));
  SequenceBlocks c;
  EXPECT_THROW(bm.acquire(c, 1), Error);
  bm.release(a);
  EXPECT_TRUE(a.empty());  // holdings cleared on release
  EXPECT_EQ(bm.free_blocks(), 3);
  EXPECT_EQ(bm.peak_used_blocks(), 8);
  bm.release(b);
  EXPECT_EQ(bm.used_blocks(), 0);
}

TEST(BlockManager, DoubleReleaseAndForeignIdsThrow) {
  BlockManager bm(blocks_cfg(4));
  SequenceBlocks ids;
  bm.acquire(ids, 2);
  SequenceBlocks stale = ids;  // copies ids, acquires no references
  bm.release(ids);
  EXPECT_THROW(bm.release(stale), Error);  // double-release
}

TEST(BlockManager, WatermarkGatesAdmissionButNotGrowth) {
  // 10 blocks, 20% watermark => 2 blocks stay reserved at admission.
  BlockManager bm(blocks_cfg(10, 0.2));
  EXPECT_EQ(bm.watermark_blocks(), 2);
  EXPECT_TRUE(bm.can_admit(8 * 16));    // 8 + 2 == 10
  EXPECT_FALSE(bm.can_admit(9 * 16));   // would dip into the reserve
  SequenceBlocks held;
  bm.acquire(held, 8);
  EXPECT_FALSE(bm.can_admit(1));        // 1 + 2 > 2 free
  // Growth may use the reserve (the whole 8 * 16 tokens are covered).
  EXPECT_TRUE(bm.grow_to(held, 10 * 16, 8 * 16));
  EXPECT_EQ(bm.free_blocks(), 0);
  EXPECT_FALSE(bm.grow_to(held, 11 * 16, 10 * 16));
  EXPECT_EQ(held.count(), 10);  // failed growth leaves holdings untouched
  bm.release(held);
}

TEST(BlockManager, UnlimitedModeTracksButNeverFails) {
  BlockManager bm(blocks_cfg(0));
  EXPECT_TRUE(bm.unlimited());
  EXPECT_TRUE(bm.can_admit(1 << 20));
  SequenceBlocks a, b;
  bm.acquire(a, 1000);
  EXPECT_EQ(bm.used_blocks(), 1000);
  bm.release(a);
  bm.acquire(b, 10);
  EXPECT_EQ(bm.peak_used_blocks(), 1000);
  bm.release(b);
}

TEST(BlockBudget, DerivedFromHbmWeightsAndFormat) {
  EngineConfig cfg;
  cfg.model = llama2_7b();
  cfg.gpu = gpusim::rtxa6000();
  cfg.format = WeightFormat::kMarlin;
  const Engine marlin(cfg);
  cfg.format = WeightFormat::kFp16;
  const Engine fp16(cfg);
  const index_t bm = derive_kv_block_budget(marlin, 16);
  const index_t bf = derive_kv_block_budget(fp16, 16);
  EXPECT_GT(bm, 0);
  // Quantized weights leave more HBM for KV blocks.
  EXPECT_GT(bm, bf);
  // Smaller blocks => proportionally more of them.
  EXPECT_NEAR(static_cast<double>(derive_kv_block_budget(marlin, 8)),
              2.0 * static_cast<double>(bm), 2.0);
  // 70B in FP16 does not fit on a 24 GB A10 at all.
  cfg.model = llama2_70b();
  cfg.gpu = gpusim::a10();
  EXPECT_THROW((void)derive_kv_block_budget(Engine(cfg), 16), Error);
}

// -------------------------------------------------------------- workloads

TEST(Workload, SeedReproducesTraceExactly) {
  WorkloadConfig w;
  w.shape = WorkloadShape::kShareGpt;
  w.qps = 5.0;
  w.duration_s = 30.0;
  const auto t1 = generate_trace(w);
  const auto t2 = generate_trace(w);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].arrival_s, t2[i].arrival_s);
    EXPECT_EQ(t1[i].input_tokens, t2[i].input_tokens);
    EXPECT_EQ(t1[i].output_tokens, t2[i].output_tokens);
  }
  w.seed = 7;
  const auto t3 = generate_trace(w);
  EXPECT_NE(t1.front().arrival_s, t3.front().arrival_s);
}

TEST(Workload, PoissonMatchesTheLegacyArrivalProcess) {
  // The pre-subsystem simulator drew `t += exp(qps)` from Rng(seed); the
  // fig15/fig16 goldens pin that stream down.
  WorkloadConfig w;
  w.qps = 2.5;
  w.duration_s = 20.0;
  w.seed = 42;
  const auto trace = generate_trace(w);
  Rng rng(42);
  double t = 0.0;
  std::size_t i = 0;
  while (true) {
    t += rng.exponential(2.5);
    if (t >= 20.0) break;
    ASSERT_LT(i, trace.size());
    EXPECT_EQ(trace[i].arrival_s, t);
    EXPECT_EQ(trace[i].input_tokens, 64);
    EXPECT_EQ(trace[i].output_tokens, 64);
    ++i;
  }
  EXPECT_EQ(i, trace.size());
}

TEST(Workload, ShapesAreOrderedAndWithinBounds) {
  for (const auto shape : {WorkloadShape::kPoisson, WorkloadShape::kBursty,
                           WorkloadShape::kShareGpt}) {
    WorkloadConfig w;
    w.shape = shape;
    w.qps = 10.0;
    w.duration_s = 60.0;
    const auto trace = generate_trace(w);
    ASSERT_FALSE(trace.empty()) << to_string(shape);
    double prev = 0.0;
    for (const auto& r : trace) {
      EXPECT_GE(r.arrival_s, prev);
      EXPECT_LT(r.arrival_s, w.duration_s);
      EXPECT_GE(r.input_tokens, w.min_tokens);
      EXPECT_LE(r.input_tokens, w.max_input_tokens);
      EXPECT_GE(r.output_tokens, w.min_tokens);
      EXPECT_LE(r.output_tokens, w.max_output_tokens);
      prev = r.arrival_s;
    }
  }
}

TEST(Workload, BurstyClumpsArrivals) {
  WorkloadConfig w;
  w.qps = 10.0;
  w.duration_s = 120.0;
  const auto poisson = generate_trace(w);
  w.shape = WorkloadShape::kBursty;
  const auto bursty = generate_trace(w);
  // Same mean rate (loosely), but far spikier inter-arrival gaps.
  const auto max_gap = [](const std::vector<TraceRequest>& t) {
    double g = 0.0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      g = std::max(g, t[i].arrival_s - t[i - 1].arrival_s);
    }
    return g;
  };
  EXPECT_GT(static_cast<double>(bursty.size()),
            0.4 * static_cast<double>(poisson.size()));
  EXPECT_GT(max_gap(bursty), 2.0 * max_gap(poisson));
  EXPECT_THROW(workload_by_name("zipf"), Error);
}

// -------------------------------------------------------------- scheduler

EngineConfig a6000_marlin() {
  EngineConfig cfg;
  cfg.model = llama2_7b();
  cfg.gpu = gpusim::rtxa6000();
  cfg.format = WeightFormat::kMarlin;
  return cfg;
}

ServingConfig overload_cfg() {
  ServingConfig sc;
  sc.qps = 8.0;
  sc.duration_s = 20.0;
  return sc;
}

TEST(Scheduler, MetricsBitIdenticalAcrossThreadCounts) {
  const Engine engine(a6000_marlin());
  ServingConfig sc = overload_cfg();
  sc.shape = WorkloadShape::kShareGpt;
  sc.policy = SchedPolicy::kShortestJob;
  sc.kv_blocks = 256;
  const SimContext serial(1);
  const SimContext pooled(4);
  const auto a = simulate_serving_detailed(engine, sc, serial);
  const auto b = simulate_serving_detailed(engine, sc, pooled);
  EXPECT_EQ(a.metrics.mean_tpot_ms, b.metrics.mean_tpot_ms);
  EXPECT_EQ(a.metrics.mean_ttft_ms, b.metrics.mean_ttft_ms);
  EXPECT_EQ(a.metrics.p90_tpot_ms, b.metrics.p90_tpot_ms);
  EXPECT_EQ(a.metrics.p90_ttft_ms, b.metrics.p90_ttft_ms);
  EXPECT_EQ(a.metrics.mean_batch, b.metrics.mean_batch);
  EXPECT_EQ(a.metrics.completed, b.metrics.completed);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.decode_steps, b.decode_steps);
}

TEST(Scheduler, PreemptionRecomputeRoundTrip) {
  const Engine engine(a6000_marlin());
  ServingConfig sc = overload_cfg();
  const auto unlimited = simulate_serving_detailed(engine, sc);
  sc.kv_blocks = 96;  // ~1.5k KV tokens at block 16: heavy pressure
  const auto tight = simulate_serving_detailed(engine, sc);

  EXPECT_EQ(tight.rejected, 0);
  EXPECT_GT(tight.preemptions, 0);
  EXPECT_LE(tight.peak_kv_blocks, 96);
  // Every request still completes — preempted ones recompute and resume.
  EXPECT_EQ(tight.metrics.completed, unlimited.metrics.completed);
  for (const auto& r : tight.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
    EXPECT_GE(r.finish_s, 0.0);
    EXPECT_EQ(r.generated, r.output_tokens);
  }
  // Admission queueing under the tight budget can only hurt TTFT. (TPOT
  // is *not* monotone: capping the batch makes each decode step faster.)
  EXPECT_GE(tight.metrics.mean_ttft_ms, unlimited.metrics.mean_ttft_ms);
  EXPECT_EQ(unlimited.preemptions, 0);
}

TEST(Scheduler, ChunkedPrefillTakesMoreSmallerSteps) {
  const Engine engine(a6000_marlin());
  ServingConfig sc = overload_cfg();
  const auto whole = simulate_serving_detailed(engine, sc);
  sc.prefill_chunk_tokens = 16;  // 64-token prompts => 4 chunks
  const auto chunked = simulate_serving_detailed(engine, sc);
  EXPECT_GT(chunked.prefill_steps, whole.prefill_steps);
  EXPECT_EQ(chunked.metrics.completed, whole.metrics.completed);
  for (const auto& r : chunked.requests) {
    EXPECT_EQ(r.state, RequestState::kFinished);
  }
}

TEST(Scheduler, ImpossibleRequestIsRejectedNotStarved) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.blocks.num_blocks = 4;  // 64 KV tokens total
  cfg.blocks.watermark = 0.0;
  const Scheduler s(engine, cfg);
  // First request can never fit (footprint 95 tokens); the second can;
  // the third holds exactly 48 + 17 - 1 = 64 tokens at completion (the
  // final output token never writes KV) and must NOT be rejected.
  const std::vector<TraceRequest> trace{
      {0.0, 64, 32}, {0.1, 16, 8}, {0.2, 48, 17}};
  const auto stats = s.run(trace);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_TRUE(stats.requests[0].rejected);
  EXPECT_EQ(stats.requests[0].state, RequestState::kFinished);
  EXPECT_LT(stats.requests[0].finish_s, 0.0);  // never produced a token
  EXPECT_EQ(stats.metrics.completed, 2);
  EXPECT_FALSE(stats.requests[1].rejected);
  EXPECT_FALSE(stats.requests[2].rejected);
  EXPECT_EQ(stats.requests[2].generated, 17);
  EXPECT_LE(stats.peak_kv_blocks, 4);
}

TEST(SchedulerPolicy, ShortestJobOvertakesLongJobAtBatch1) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.max_batch = 1;  // pure queueing: admission order == service order
  // A long job and three short ones all arrive together (a later arrival
  // could not overtake an already-running job — admission is the only
  // reordering point).
  const std::vector<TraceRequest> trace{
      {0.0, 64, 64}, {0.0, 64, 4}, {0.0, 64, 4}, {0.0, 64, 4}};
  const Scheduler fcfs(engine, cfg);
  cfg.policy = SchedPolicy::kShortestJob;
  const Scheduler sjf(engine, cfg);
  const auto f = fcfs.run(trace);
  const auto s = sjf.run(trace);
  // FCFS serves in arrival order: the long job finishes first.
  EXPECT_LT(f.requests[0].finish_s, f.requests[1].finish_s);
  // SJF lets every short job jump the long one.
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LT(s.requests[i].finish_s, s.requests[0].finish_s) << i;
  }
  // Same work either way, so the schedule makespan matches.
  EXPECT_EQ(f.metrics.completed, s.metrics.completed);
}

TEST(SchedulerPolicy, MaxUtilizationPacksSmallFootprintsFirst) {
  const Engine engine(a6000_marlin());
  SchedulerConfig cfg;
  cfg.blocks.num_blocks = 4;
  cfg.blocks.watermark = 0.0;
  // A (3 blocks) + B (1 block) fill the budget under FCFS, leaving C
  // queued; max-util admits the two 1-block requests alongside A... only
  // B and C fit first (footprints sort B, C, A), so A waits instead.
  const std::vector<TraceRequest> trace{
      {0.0, 48, 2}, {0.0, 16, 2}, {0.0, 16, 2}};
  const Scheduler fcfs(engine, cfg);
  const auto f = fcfs.run(trace);
  cfg.policy = SchedPolicy::kMaxUtilization;
  const Scheduler mu(engine, cfg);
  const auto m = mu.run(trace);
  // Under FCFS, C is the straggler; under max-util, A is.
  EXPECT_GT(f.requests[2].first_token_s, f.requests[1].first_token_s);
  EXPECT_GT(m.requests[0].first_token_s, m.requests[2].first_token_s);
  EXPECT_LT(m.requests[2].first_token_s, f.requests[2].first_token_s);
  EXPECT_EQ(f.metrics.completed, 3);
  EXPECT_EQ(m.metrics.completed, 3);
}

TEST(SchedulerPolicy, NamesRoundTrip) {
  for (const auto p : {SchedPolicy::kFcfs, SchedPolicy::kShortestJob,
                       SchedPolicy::kMaxUtilization}) {
    EXPECT_EQ(policy_by_name(to_string(p)), p);
  }
  EXPECT_THROW(policy_by_name("lifo"), Error);
}

TEST(Scheduler, FcfsUnlimitedMatchesLegacySimulateServing) {
  // The adapter defaults must stay on the goldens path: FCFS, unlimited
  // KV, unchunked prefill. Spot-check the fig15 (MARLIN, 1 QPS) cell
  // against the checked-in golden value.
  EngineConfig cfg;
  cfg.model = llama2_7b();
  cfg.gpu = gpusim::rtxa6000();
  cfg.format = WeightFormat::kMarlin;
  const Engine engine(cfg);
  ServingConfig sc;
  sc.qps = 1.0;
  sc.duration_s = 120.0;
  const auto m = simulate_serving(engine, sc);
  EXPECT_NEAR(m.mean_tpot_ms, 7.99, 0.005);  // goldens table, row MARLIN
  EXPECT_NEAR(m.mean_batch, 1.3, 0.05);
}

}  // namespace
}  // namespace marlin::serve::sched
