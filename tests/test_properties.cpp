// Cross-module property sweeps: randomized functional-kernel fuzzing,
// timing-model invariants across every device, schedule-through-L2 replay,
// serving-simulator conservation laws, and Half arithmetic against a
// double-precision oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kernel_model.hpp"
#include "core/l2_replay.hpp"
#include "core/marlin_kernel.hpp"
#include "core/timing.hpp"
#include "layout/repack.hpp"
#include "quant/uniform.hpp"
#include "serve/server_sim.hpp"
#include "util/rng.hpp"

namespace marlin {
namespace {

// ------------------------------------------------ functional fuzzing ----

class MarlinKernelFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MarlinKernelFuzz, RandomShapeMatchesReference) {
  Rng rng(GetParam());
  const index_t m = 1 + static_cast<index_t>(rng.uniform_int(40));
  const index_t k = 64 * (1 + static_cast<index_t>(rng.uniform_int(4)));
  const index_t n = 64 * (1 + static_cast<index_t>(rng.uniform_int(4)));
  const index_t groups[] = {quant::kPerColumn, 32, 64, 128};
  const index_t group = groups[rng.uniform_int(4)];
  if (group != quant::kPerColumn && group > k) return;  // skip invalid
  const int sms = 1 + static_cast<int>(rng.uniform_int(16));
  const index_t n_sms[] = {64, 128, 256};
  const index_t n_sm = n_sms[rng.uniform_int(3)];

  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }

  quant::QuantConfig qcfg;
  qcfg.group_size = group;
  const auto q = quant::quantize_rtn(w.view(), qcfg);
  const auto mw = layout::marlin_repack(q);
  core::KernelConfig cfg;
  cfg.n_sm_tile = n_sm;
  cfg.num_warps = std::min(8, static_cast<int>(std::min(n_sm, n) / 64) * 4);
  const auto res = core::marlin_matmul(a.view(), mw, cfg, sms);
  const auto ref = core::reference_matmul(a.view(), q.dequantize().view());

  const double tol = 2e-3 * std::sqrt(static_cast<double>(k)) + 3e-2;
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      const double rel = std::abs(res.c(i, j).to_float() - ref(i, j)) /
                         (std::abs(ref(i, j)) + 1.0);
      ASSERT_LT(rel, tol) << "seed=" << GetParam() << " m=" << m
                          << " k=" << k << " n=" << n << " g=" << group
                          << " sms=" << sms << " nsm=" << n_sm;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MarlinKernelFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------- timing invariants ----

class TimingInvariants
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(TimingInvariants, HoldOnEveryDevice) {
  const auto& [kernel, dev_idx] = GetParam();
  const auto d = gpusim::all_devices()[static_cast<std::size_t>(dev_idx)];
  const gpusim::ClockModel clock{gpusim::ClockMode::kBoost};
  const auto model = baselines::make_kernel_model(kernel);

  double prev = 0.0;
  for (index_t m = 1; m <= 512; m *= 2) {
    const core::MatmulProblem p{m, 8192, 8192, 128, false};
    const auto est = model->estimate(p, d, clock);
    // (1) positive, finite time;
    ASSERT_GT(est.seconds, 0.0);
    ASSERT_TRUE(std::isfinite(est.seconds));
    // (2) monotone non-decreasing in batch;
    EXPECT_GE(est.seconds, prev * 0.999) << kernel << " m=" << m;
    prev = est.seconds;
    // (3) never beats the bandwidth bound on mandatory bytes;
    const double mandatory =
        (kernel == "fp16"
             ? 2.0 * static_cast<double>(p.k) * static_cast<double>(p.n)
             : p.weight_bytes()) /
        d.gmem_bytes_per_s();
    EXPECT_GT(est.seconds, 0.5 * mandatory) << kernel << " m=" << m;
    // (4) achieved FLOP/s below the device peak (with sparse/int8 slack).
    EXPECT_LT(est.achieved_tflops(),
              d.fp16_tc_tflops_boost * 2.1) << kernel << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(
    KernelsXDevices, TimingInvariants,
    ::testing::Combine(::testing::Values("fp16", "marlin", "sparse-marlin",
                                         "marlin-w4a8", "torch-int4",
                                         "exllamav2", "awq", "bitsandbytes"),
                       ::testing::Values(0, 1, 2, 3)));

TEST(TimingInvariants, BaseClockNeverFasterThanBoost) {
  const gpusim::ClockModel boost{gpusim::ClockMode::kBoost};
  const gpusim::ClockModel base{gpusim::ClockMode::kLockedBase};
  for (const auto& d : gpusim::all_devices()) {
    for (const char* kernel : {"fp16", "marlin", "sparse-marlin"}) {
      const auto model = baselines::make_kernel_model(kernel);
      for (const index_t m : {1, 64, 1024}) {
        const core::MatmulProblem p{m, 8192, 8192, 128, false};
        EXPECT_GE(model->estimate(p, d, base).seconds,
                  model->estimate(p, d, boost).seconds * 0.999)
            << d.name << " " << kernel << " m=" << m;
      }
    }
  }
}

// ----------------------------------------------- schedule L2 replay ----

TEST(L2Replay, EvictFirstKeepsAResidentOnFig1Problem) {
  // A10, batch 16: A is 16 x 18432 x 2B = 576 KiB << 6 MiB L2; B is 679 MB.
  const core::MatmulProblem p{16, 18432, 73728, 128, false};
  core::KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto with_hint =
      core::replay_schedule_through_l2(p, cfg, gpusim::a10(), true);
  EXPECT_GT(with_hint.a_hit_rate(), 0.95);
  // B itself almost never hits (each tile read exactly once).
  EXPECT_LT(with_hint.b_stats.hit_rate(), 0.05);
}

TEST(L2Replay, StripeAlignmentMakesAResidentEvenUnhinted) {
  // Emergent property of striping on the Fig. 1 grid: 288 rows x 288 cols
  // on 72 SMs gives stripes of exactly 4 columns, so every SM sits on the
  // SAME tile row each round — A segments are reused within one round and
  // survive even without the hint.
  const core::MatmulProblem p{16, 18432, 73728, 128, false};
  core::KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto no_hint =
      core::replay_schedule_through_l2(p, cfg, gpusim::a10(), false);
  EXPECT_GT(no_hint.a_hit_rate(), 0.9);
}

TEST(L2Replay, WithoutHintTheBStreamPollutesMisalignedA) {
  // 288 rows x 18 columns on 72 SMs: stripes of 72 tiles start at rows
  // {0, 72, 144, 216}, so an A segment is re-touched only ~72 rounds
  // later — long enough for an unhinted B stream (~1.5 lines/set/round)
  // to wipe it. evict_first must preserve it.
  const core::MatmulProblem p{16, 18432, 4608, 128, false};
  core::KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto no_hint =
      core::replay_schedule_through_l2(p, cfg, gpusim::a10(), false);
  const auto hint =
      core::replay_schedule_through_l2(p, cfg, gpusim::a10(), true);
  // Intra-round reuse (18 SMs share each active row) hits either way; the
  // hint's effect is on the across-round reuse: without it, every revisit
  // refetches the evicted segments from GMEM.
  EXPECT_GT(hint.a_hit_rate(), 0.99);
  EXPECT_GT(no_hint.a_stats.misses, 5 * hint.a_stats.misses);
}

TEST(L2Replay, HugeBatchOverflowsL2EvenWithHint) {
  // A at batch 2048 is 72 MB — beyond any hint's help on a 6 MiB L2.
  const core::MatmulProblem p{2048, 18432, 4096, 128, false};
  core::KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto r = core::replay_schedule_through_l2(p, cfg, gpusim::a10(), true);
  EXPECT_LT(r.a_hit_rate(), 0.9);
}

// ------------------------------------------------ serving conservation ----

class ServingConservation : public ::testing::TestWithParam<double> {};

TEST_P(ServingConservation, LawsHold) {
  serve::EngineConfig ecfg;
  ecfg.model = serve::llama2_7b();
  ecfg.gpu = gpusim::rtxa6000();
  ecfg.format = serve::WeightFormat::kMarlin;
  const serve::Engine engine(ecfg);

  serve::ServingConfig scfg;
  scfg.qps = GetParam();
  scfg.duration_s = 25.0;
  scfg.seed = 7;
  const auto m = serve::simulate_serving(engine, scfg);

  // The sim drains: every arrival completes.
  EXPECT_GE(m.completed, static_cast<index_t>(scfg.qps * 15));
  // TTFT is at least one prefill.
  EXPECT_GE(m.mean_ttft_ms,
            engine.prefill_seconds(1, scfg.input_tokens) * 1e3 * 0.99);
  // TPOT is at least one batch-1 decode step and p90 >= mean is not
  // guaranteed, but p90 >= 0 and mean batch within [1, max_batch].
  EXPECT_GE(m.mean_tpot_ms,
            engine.decode_step_seconds(1, 64.0) * 1e3 * 0.99);
  EXPECT_GE(m.mean_batch, 1.0);
  EXPECT_LE(m.mean_batch, static_cast<double>(scfg.max_batch));
  // Determinism: same seed, same metrics.
  const auto m2 = serve::simulate_serving(engine, scfg);
  EXPECT_DOUBLE_EQ(m.mean_tpot_ms, m2.mean_tpot_ms);
  EXPECT_DOUBLE_EQ(m.mean_ttft_ms, m2.mean_ttft_ms);
}

INSTANTIATE_TEST_SUITE_P(Qps, ServingConservation,
                         ::testing::Values(0.5, 2.0, 8.0));

// ---------------------------------------------------- Half vs oracle ----

TEST(HalfOracle, ArithmeticMatchesDoubleRoundedReference) {
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const float x = static_cast<float>(rng.uniform(-100.0, 100.0));
    const float y = static_cast<float>(rng.uniform(-100.0, 100.0));
    const Half hx(x), hy(y);
    // Model: op in float on the rounded inputs, then round to half — the
    // exact semantics of our operators.
    EXPECT_EQ((hx + hy).bits(),
              Half(hx.to_float() + hy.to_float()).bits());
    EXPECT_EQ((hx * hy).bits(),
              Half(hx.to_float() * hy.to_float()).bits());
    // Round-trip through double changes nothing.
    EXPECT_EQ(Half(static_cast<double>(hx.to_float())).bits(), hx.bits());
  }
}

}  // namespace
}  // namespace marlin
