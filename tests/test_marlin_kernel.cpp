// Functional dense MARLIN kernel: numerical correctness against the FP32
// reference across shapes/configs, traffic accounting, reduction structure.

#include <gtest/gtest.h>

#include <cmath>

#include "core/marlin_kernel.hpp"
#include "layout/repack.hpp"
#include "quant/uniform.hpp"
#include "util/rng.hpp"

namespace marlin::core {
namespace {

struct KernelCase {
  index_t m, k, n;
  index_t n_sm;
  int warps;
  index_t group;
  int sms;
};

Matrix<Half> random_activations(index_t m, index_t k, std::uint64_t seed) {
  Rng rng(seed);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal(0.0, 1.0)));
    }
  }
  return a;
}

quant::QuantizedWeights random_qweights(index_t k, index_t n, index_t group,
                                        std::uint64_t seed) {
  Rng rng(seed);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  quant::QuantConfig cfg;
  cfg.group_size = group;
  return quant::quantize_rtn(w.view(), cfg);
}

/// FP16 outputs accumulate K terms in FP32 then round once (plus one
/// rounding per serial reduction step); tolerance scales with sqrt(K).
double tolerance(index_t k) {
  return 2e-3 * std::sqrt(static_cast<double>(k)) + 2e-2;
}

class MarlinKernelCorrectness : public ::testing::TestWithParam<KernelCase> {};

TEST_P(MarlinKernelCorrectness, MatchesReference) {
  const auto c = GetParam();
  const auto a = random_activations(c.m, c.k, 1 + c.m + c.k);
  const auto q = random_qweights(c.k, c.n, c.group, 2 + c.n);
  const auto mw = layout::marlin_repack(q);

  KernelConfig cfg;
  cfg.n_sm_tile = c.n_sm;
  cfg.num_warps = c.warps;
  const auto res = marlin_matmul(a.view(), mw, cfg, c.sms);

  const auto wd = q.dequantize();
  const auto ref = reference_matmul(a.view(), wd.view());

  const double tol = tolerance(c.k);
  double worst = 0.0;
  for (index_t i = 0; i < c.m; ++i) {
    for (index_t j = 0; j < c.n; ++j) {
      const double err = std::abs(res.c(i, j).to_float() - ref(i, j));
      const double mag = std::abs(ref(i, j)) + 1.0;
      worst = std::max(worst, err / mag);
    }
  }
  EXPECT_LT(worst, tol) << "m=" << c.m << " k=" << c.k << " n=" << c.n;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MarlinKernelCorrectness,
    ::testing::Values(
        KernelCase{1, 64, 64, 64, 4, 64, 1},      // minimal tile
        KernelCase{1, 128, 256, 256, 8, 128, 4},  // single batch row
        KernelCase{16, 128, 256, 256, 8, 128, 8},
        KernelCase{16, 256, 128, 128, 8, 128, 72},  // more SMs than columns
        KernelCase{8, 192, 192, 64, 4, 64, 6},      // ragged n_sm tiling
        KernelCase{16, 128, 128, 128, 4, quant::kPerColumn, 4},
        KernelCase{5, 128, 128, 128, 8, 64, 3},    // M not multiple of 16
        KernelCase{33, 128, 128, 128, 8, 32, 5},
        KernelCase{16, 128, 256, 256, 4, 128, 2},  // warps == subtiles
        KernelCase{80, 128, 128, 128, 8, 64, 4}    // M > 64: replication
        ));

TEST(MarlinKernel, VirtualReplicationMatchesAcrossMBlocks) {
  // M = 80 => two m-blocks; both must be numerically consistent with a
  // single-block run of the corresponding rows.
  const auto a = random_activations(80, 128, 9);
  const auto q = random_qweights(128, 128, 64, 10);
  const auto mw = layout::marlin_repack(q);
  KernelConfig cfg;
  cfg.n_sm_tile = 128;
  const auto full = marlin_matmul(a.view(), mw, cfg, 8);

  Matrix<Half> tail(16, 128);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 128; ++j) tail(i, j) = a(64 + i, j);
  }
  const auto part = marlin_matmul(tail.view(), mw, cfg, 8);
  for (index_t i = 0; i < 16; ++i) {
    for (index_t j = 0; j < 128; ++j) {
      EXPECT_NEAR(full.c(64 + i, j).to_float(), part.c(i, j).to_float(),
                  1e-1);
    }
  }
}

TEST(MarlinKernel, IdenticalResultsForAnySmCount) {
  // The striped partition changes who computes what, but only the FP16
  // serial-reduction *split points* differ; results stay within one or two
  // FP16 roundings of each other.
  const auto a = random_activations(4, 256, 20);
  const auto q = random_qweights(256, 128, 128, 21);
  const auto mw = layout::marlin_repack(q);
  KernelConfig cfg;
  cfg.n_sm_tile = 128;
  const auto r1 = marlin_matmul(a.view(), mw, cfg, 1);
  const auto r8 = marlin_matmul(a.view(), mw, cfg, 8);
  const auto r72 = marlin_matmul(a.view(), mw, cfg, 72);
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 128; ++j) {
      EXPECT_NEAR(r1.c(i, j).to_float(), r8.c(i, j).to_float(), 0.25);
      EXPECT_NEAR(r1.c(i, j).to_float(), r72.c(i, j).to_float(), 0.25);
    }
  }
}

TEST(MarlinKernel, SimContextMatchesSerial) {
  const auto a = random_activations(8, 128, 30);
  const auto q = random_qweights(128, 256, 64, 31);
  const auto mw = layout::marlin_repack(q);
  KernelConfig cfg;
  const auto serial = marlin_matmul(a.view(), mw, cfg, 16);
  const SimContext ctx(4);
  const auto parallel = marlin_matmul(a.view(), mw, cfg, 16, ctx);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < 256; ++j) {
      EXPECT_EQ(serial.c(i, j).bits(), parallel.c(i, j).bits());
    }
  }
}

TEST(MarlinKernel, TrafficAccountsBOnce) {
  // 4 SMs x 4 whole columns => no reduction traffic; B must be streamed
  // exactly once (evict-first), A once into L2.
  const index_t k = 256, n = 1024, m = 16;
  const auto a = random_activations(m, k, 40);
  const auto q = random_qweights(k, n, 128, 41);
  const auto mw = layout::marlin_repack(q);
  KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto res = marlin_matmul(a.view(), mw, cfg, 4);
  EXPECT_EQ(res.reduction_steps, 0);

  const auto b_bytes = static_cast<std::int64_t>(k * n / 2);
  const auto a_bytes = static_cast<std::int64_t>(m * k * 2);
  // GMEM reads = B (once: evict-first streaming) + scales + A (once) +
  // reduction re-reads. Bound it between B+A and B+A+20%.
  EXPECT_GE(res.traffic.gmem_read_bytes, b_bytes + a_bytes);
  EXPECT_LE(res.traffic.gmem_read_bytes,
            (b_bytes + a_bytes) * 12 / 10);
  // C written at least once.
  EXPECT_GE(res.traffic.gmem_write_bytes,
            static_cast<std::int64_t>(m * n * 2));
  // A re-reads all go through L2.
  EXPECT_GE(res.traffic.l2_read_bytes,
            static_cast<std::int64_t>(res.tiles_processed) * m * 64 * 2);
}

TEST(MarlinKernel, ReductionStepsMatchPartition) {
  const auto a = random_activations(4, 256, 50);
  const auto q = random_qweights(256, 128, 64, 51);
  const auto mw = layout::marlin_repack(q);
  KernelConfig cfg;
  cfg.n_sm_tile = 128;
  const auto res = marlin_matmul(a.view(), mw, cfg, 6);
  const auto stats = striped_partition_stats(256 / 64, 1, 6, 1);
  EXPECT_EQ(res.reduction_steps, stats.reduction_steps);
}

TEST(MarlinKernel, RejectsBadShapes) {
  const auto a = random_activations(4, 100, 60);
  const auto q = random_qweights(128, 128, 64, 61);
  const auto mw = layout::marlin_repack(q);
  KernelConfig cfg;
  EXPECT_THROW(marlin_matmul(a.view(), mw, cfg, 4), marlin::Error);
}

TEST(SmemBudget, PaperP4FitsAtBatch64ButP8DoesNot) {
  // §3.4: "P = 4 ... seemed sufficient ... while fitting into shared
  // memory even for M = 64". One stage at M=64/N_sm=256 is ~16.6 KB
  // (8.4 KB packed B + 8.2 KB swizzled A), so 4 stages fit the A10's
  // 100 KB SMEM but 8 stages would not.
  const auto d = gpusim::a10();
  MatmulProblem p{64, 18432, 73728, 128, false};
  KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const double stage = smem_stage_bytes(p, cfg);
  EXPECT_GT(stage, 15.0 * 1024);
  EXPECT_LT(stage, 18.0 * 1024);
  EXPECT_LT(4 * stage, d.smem_per_sm_bytes);
  EXPECT_GT(8 * stage, d.smem_per_sm_bytes);
  EXPECT_EQ(max_pipeline_depth(p, cfg, d), 6);
  EXPECT_EQ(choose_config(p, d).pipeline_depth, 4);
}

TEST(SmemBudget, DepthClampsForHugeStages) {
  // Hypothetical 8-bit weights at M=64/N_sm=256 inflate the stage; the
  // chosen depth shrinks (and stays even) instead of overflowing SMEM.
  const auto d = gpusim::a10();
  MatmulProblem p{64, 18432, 73728, 128, false};
  p.weight_bits = 8;
  const auto cfg = choose_config(p, d);
  EXPECT_LE(cfg.pipeline_depth * smem_stage_bytes(p, cfg),
            d.smem_per_sm_bytes);
  EXPECT_EQ(cfg.pipeline_depth % 2, 0);
}

TEST(ChooseConfig, PrefersWideTilesForLargeBatch) {
  const auto d = gpusim::a10();
  MatmulProblem small{1, 4096, 4096, 128, false};
  MatmulProblem large{64, 4096, 4096, 128, false};
  const auto cfg_small = choose_config(small, d);
  const auto cfg_large = choose_config(large, d);
  EXPECT_LE(cfg_small.n_sm_tile, cfg_large.n_sm_tile);
  // Paper: N_sm = 256 keeps even batch 64 weight-loading bound.
  EXPECT_EQ(cfg_large.n_sm_tile, 256);
  EXPECT_EQ(cfg_large.num_warps, 8);
}

}  // namespace
}  // namespace marlin::core
