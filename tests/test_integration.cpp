// Cross-module integration: the full pipelines a user would run.
//   1. synthetic layer -> GPTQ -> repack -> functional MARLIN matmul,
//      validated against FP16 GEMM on the dequantised weights;
//   2. SparseGPT-lite -> compress -> functional Sparse-MARLIN;
//   3. quantization error feeding the serving-level accuracy proxy;
//   4. kernel estimates driving the engine (formats agree on shapes).

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/fp16_gemm.hpp"
#include "core/marlin_kernel.hpp"
#include "core/sparse_kernel.hpp"
#include "eval/metrics.hpp"
#include "eval/proxy.hpp"
#include "eval/synthetic.hpp"
#include "layout/repack.hpp"
#include "quant/gptq.hpp"
#include "quant/uniform.hpp"
#include "serve/engine.hpp"
#include "sparse/compressed.hpp"
#include "sparse/sparsegpt.hpp"
#include "util/rng.hpp"

namespace marlin {
namespace {

TEST(Integration, GptqToMarlinKernelPipeline) {
  const index_t k = 128, n = 128, m = 16;
  const auto layer = eval::make_synthetic_layer(k, n, 512, 101);
  quant::HessianAccumulator acc(k);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig gcfg;
  gcfg.quant.group_size = 64;
  gcfg.quant.clip_search = true;
  const auto gptq = quant::gptq_quantize(layer.w.view(), acc, gcfg);

  const auto mw = layout::marlin_repack(gptq.weights);
  Rng rng(5);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }
  core::KernelConfig kcfg;
  kcfg.n_sm_tile = 128;
  const auto res = core::marlin_matmul(a.view(), mw, kcfg, 8);

  // Reference: FP16 GEMM over the dequantised weights.
  const auto wd = gptq.weights.dequantize();
  Matrix<Half> wh(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) wh(i, j) = Half(wd(i, j));
  }
  const auto ref = baselines::fp16_gemm(a.view(), wh.view());

  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(res.c(i, j).to_float(), ref(i, j).to_float(), 0.15);
    }
  }
}

TEST(Integration, SparseGptToSparseKernelPipeline) {
  const index_t k = 64, n = 64, m = 8;
  const auto layer = eval::make_synthetic_layer(k, n, 256, 202);
  quant::HessianAccumulator acc(k);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig gcfg;
  gcfg.quant.group_size = 32;
  const auto sg = sparse::sparsegpt_24_quantize(layer.w.view(), acc.hessian(),
                                                gcfg);
  const auto s24 = sparse::compress_24(sg.weights, sg.mask);

  Rng rng(6);
  Matrix<Half> a(m, k);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }
  core::KernelConfig kcfg;
  kcfg.n_sm_tile = 64;
  kcfg.num_warps = 4;
  const auto res = core::sparse_marlin_matmul(a.view(), s24, kcfg, 4);

  const auto dense = sparse::decompress_24(s24);
  const auto ref = core::reference_matmul(a.view(), dense.view());
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      EXPECT_NEAR(res.c(i, j).to_float(), ref(i, j), 0.1);
    }
  }
}

TEST(Integration, QuantErrorFeedsQualityProxy) {
  const auto layer = eval::make_synthetic_layer(128, 32, 512, 303);
  quant::HessianAccumulator acc(128);
  acc.add_sequence(layer.calib.view());
  quant::GptqConfig cfg;
  cfg.quant.group_size = 128;
  const auto r = quant::gptq_quantize(layer.w.view(), acc, cfg);
  const double nmse = eval::layer_output_nmse(
      layer.w.view(), r.weights.dequantize().view(), layer.calib.view());
  ASSERT_GT(nmse, 0.0);
  ASSERT_LT(nmse, 0.1);  // INT4 g=128 with GPTQ is a mild perturbation

  // Proxy anchored so this operating point reproduces a ~4% PPL hit.
  const double kappa = eval::calibrate_kappa(5.47, 5.69, nmse);
  const double ppl_rtn = eval::perplexity_proxy(
      5.47,
      eval::layer_output_nmse(
          layer.w.view(),
          quant::quantize_rtn(layer.w.view(), cfg.quant).dequantize().view(),
          layer.calib.view()),
      kappa);
  // RTN is strictly worse than the GPTQ anchor point.
  EXPECT_GT(ppl_rtn, 5.69);
}

TEST(Integration, EngineFormatsAgreeOnModelShapes) {
  serve::EngineConfig cfg;
  cfg.model = serve::llama2_7b();
  cfg.gpu = gpusim::a10();
  for (const auto fmt : {serve::WeightFormat::kFp16,
                         serve::WeightFormat::kMarlin,
                         serve::WeightFormat::kSparseMarlin}) {
    cfg.format = fmt;
    const serve::Engine e(cfg);
    const double t = e.decode_step_seconds(16, 128.0);
    EXPECT_GT(t, 1e-4);
    EXPECT_LT(t, 1.0);
  }
}

TEST(Integration, FunctionalTrafficMatchesAnalyticWeightBytes) {
  // The functional kernel's B-stream accounting and the analytic problem
  // descriptor must agree on weight bytes (within the scale-stream slack).
  const index_t k = 256, n = 512;
  const auto layer = eval::make_synthetic_layer(k, n, 64, 404);
  quant::QuantConfig qcfg;
  qcfg.group_size = 128;
  const auto q = quant::quantize_rtn(layer.w.view(), qcfg);
  const auto mw = layout::marlin_repack(q);

  core::MatmulProblem p{8, k, n, 128, false};
  Matrix<Half> a(8, k);
  for (index_t i = 0; i < 8; ++i) {
    for (index_t j = 0; j < k; ++j) a(i, j) = Half(0.5f);
  }
  core::KernelConfig kcfg;
  kcfg.n_sm_tile = 256;
  const auto res = core::marlin_matmul(a.view(), mw, kcfg, 2);
  const double analytic_weight_bytes = p.weight_bytes();
  const double functional_weight_bytes = static_cast<double>(
      res.traffic.gmem_read_bytes - 8 * k * 2 /* A */);
  EXPECT_NEAR(functional_weight_bytes / analytic_weight_bytes, 1.0, 0.1);
}

}  // namespace
}  // namespace marlin
