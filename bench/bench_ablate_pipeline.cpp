// Ablation: cp.async software pipeline depth P (paper picks P=4).
// Sweeps P for the Figure 1 problem and reports stall fraction and time.

#include <iostream>

#include "common.hpp"
#include "core/timing.hpp"
#include "gpusim/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_ablate_pipeline",
                          "ablation: cp.async pipeline depth (the paper picks P=4)");
  const SimContext ctx = bench::make_context(args);
  std::cout << "=== Ablation: pipeline depth (A10, 72k x 18k) ===\n\n";
  const auto d = gpusim::a10();
  const gpusim::ClockModel clock{gpusim::ClockMode::kBoost};

  const std::vector<index_t> batches{1, 16, 64};
  const auto rows =
      bench::run_sweep(ctx, batches, [&](const index_t m) {
        std::vector<double> row;
        for (const int depth : {1, 2, 4, 8}) {
          core::KernelConfig cfg;
          cfg.n_sm_tile = 256;
          cfg.pipeline_depth = depth;
          const auto est =
              core::marlin_estimate(bench::fig1_problem(m), cfg, d, clock);
          row.push_back(est.seconds * 1e3);
        }
        return row;
      });

  Table table({"batch", "P=1", "P=2", "P=4", "P=8"});
  for (std::size_t i = 0; i < batches.size(); ++i) {
    table.add_row_numeric("batch " + std::to_string(batches[i]) + " [ms]",
                          rows[i], 3);
  }
  table.print(std::cout);
  std::cout
      << "\nTakeaway: P=1 serialises load and compute; P=2 already hides "
         "most latency; P=4 (the paper's choice — even, fits SMEM at M=64) "
         "is within noise of P=8.\n";
  return 0;
}
