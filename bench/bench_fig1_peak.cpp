// Figure 1: peak speedup over FP16 (PyTorch/CUTLASS) vs batch size for a
// 72k x 18k INT4 (group=128) layer on NVIDIA A10, unlocked (boost) clocks.
//
// Paper shape to reproduce: MARLIN hugs the ideal 3.87x bound up to batch
// 16-32, decaying to ~1.5x at 128; the open-source comparators start near
// 3-3.6x at batch 1 and collapse below 1x between batch 16 and 64.
//
// Section 2 additionally *runs* the functional host simulator over the
// same batch sweep (on a proportionally scaled layer) and checks every
// point against the FP32 reference — the per-SM loops and the sweep itself
// execute on the SimContext pool (`--threads N`), with byte-identical
// stdout at every thread count; wall-clock goes to stderr.

#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/marlin_kernel.hpp"
#include "layout/repack.hpp"
#include "quant/uniform.hpp"
#include "util/rng.hpp"

namespace {

using namespace marlin;

/// One functional sweep point: bit-deterministic outputs only.
struct FunctionalRow {
  double max_err = 0;
  std::int64_t gmem_bytes = 0;
  index_t reduction_steps = 0;
};

void functional_sweep(const SimContext& ctx) {
  const index_t k = 1152, n = 4608;
  const index_t m_max = bench::fig1_batches().back();
  std::cout << "Functional host-simulator sweep (scaled layer K=" << k
            << ", N=" << n << ", 72 SMs), max |err| vs FP32 reference:\n";

  Rng rng(2025);
  Matrix<float> w(k, n);
  for (index_t i = 0; i < k; ++i) {
    for (index_t j = 0; j < n; ++j) {
      w(i, j) = static_cast<float>(rng.normal(0.0, 0.05));
    }
  }
  Matrix<Half> a(m_max, k);
  for (index_t i = 0; i < m_max; ++i) {
    for (index_t j = 0; j < k; ++j) {
      a(i, j) = Half(static_cast<float>(rng.normal()));
    }
  }
  quant::QuantConfig qcfg;
  qcfg.group_size = 128;
  const auto q = quant::quantize_rtn(w.view(), qcfg);
  const auto mw = layout::marlin_repack(q);
  const auto wd = q.dequantize();
  // Rows of the reference are shared by every batch size (batch m reads
  // the first m rows), so it is computed once, row-parallel.
  const auto ref = core::reference_matmul(a.view(), wd.view(), ctx);

  core::KernelConfig cfg;
  cfg.n_sm_tile = 256;
  const auto rows = bench::run_sweep(
      ctx, bench::fig1_batches(), [&](const index_t m) {
        const auto res = core::marlin_matmul(a.view().block(0, 0, m, k), mw,
                                             cfg, /*num_sms=*/72, ctx);
        FunctionalRow row;
        row.gmem_bytes = res.traffic.gmem_total();
        row.reduction_steps = res.reduction_steps;
        for (index_t i = 0; i < m; ++i) {
          for (index_t j = 0; j < n; ++j) {
            row.max_err = std::max(
                row.max_err, static_cast<double>(std::abs(
                                 res.c(i, j).to_float() - ref(i, j))));
          }
        }
        return row;
      });

  Table table({"batch", "max |err|", "GMEM moved", "reduction steps"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({std::to_string(bench::fig1_batches()[i]),
                   format_double(rows[i].max_err, 4),
                   format_bytes(static_cast<double>(rows[i].gmem_bytes)),
                   std::to_string(rows[i].reduction_steps)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_fig1_peak",
                          "Figure 1 - peak speedup over FP16 vs batch size (A10, boost clocks)",
                          {bench::bench_json_flag_help()});
  const SimContext ctx = bench::make_context(args);
  bench::BenchJsonReporter json(args, ctx, "bench_fig1_peak");
  json.set_points(bench::fig1_batches().size());
  std::cout << "=== Figure 1: peak per-layer speedup on A10 (boost clock) ===\n"
            << "16bit x 4bit (group=128), K=18432, N=73728\n\n";
  {
    const bench::SweepTimer timer(ctx, "fig1 analytic sweep");
    bench::print_speedup_over_fp16(
        ctx, std::cout, "Speedup over FP16 (CUTLASS model)", gpusim::a10(),
        gpusim::ClockMode::kBoost,
        {"ideal-int4", "marlin", "torch-int4", "exllamav2", "awq",
         "bitsandbytes"},
        bench::fig1_batches(), bench::fig1_problem);
  }
  {
    const bench::SweepTimer timer(ctx, "fig1 functional sweep");
    functional_sweep(ctx);
  }
  std::cout << "Paper reference: MARLIN ~3.87x (bs<=16), ~3x (bs=64), "
               "~1.5x (bs=128); comparators <1x beyond bs~32.\n";
  return 0;
}
