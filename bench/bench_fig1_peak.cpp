// Figure 1: peak speedup over FP16 (PyTorch/CUTLASS) vs batch size for a
// 72k x 18k INT4 (group=128) layer on NVIDIA A10, unlocked (boost) clocks.
//
// Paper shape to reproduce: MARLIN hugs the ideal 3.87x bound up to batch
// 16-32, decaying to ~1.5x at 128; the open-source comparators start near
// 3-3.6x at batch 1 and collapse below 1x between batch 16 and 64.

#include <iostream>

#include "common.hpp"

int main() {
  using namespace marlin;
  std::cout << "=== Figure 1: peak per-layer speedup on A10 (boost clock) ===\n"
            << "16bit x 4bit (group=128), K=18432, N=73728\n\n";
  bench::print_speedup_over_fp16(
      std::cout, "Speedup over FP16 (CUTLASS model)", gpusim::a10(),
      gpusim::ClockMode::kBoost,
      {"ideal-int4", "marlin", "torch-int4", "exllamav2", "awq",
       "bitsandbytes"},
      bench::fig1_batches(), bench::fig1_problem);
  std::cout << "Paper reference: MARLIN ~3.87x (bs<=16), ~3x (bs=64), "
               "~1.5x (bs=128); comparators <1x beyond bs~32.\n";
  return 0;
}
