// Figure 16: serving benchmark — TTFT (time to first token) for
// Llama-2-7B on RTX A6000, same setup as Figure 15.
//
// Paper numbers: FP16 39.95..49.67 ms; MARLIN 25.4-27.9 ms (1.52-1.78x);
// Sparse-MARLIN 25.0-26.6 ms (1.50-1.94x). TTFT gains are smaller than
// TPOT gains because prefill is compute-bound.

#include <iostream>

#include "serve/server_sim.hpp"
#include "util/table.hpp"

int main() {
  using namespace marlin;
  using serve::WeightFormat;
  std::cout << "=== Figure 16: Llama-2-7B TTFT on RTX A6000 "
               "(64 in / 64 out) ===\n\n";

  const std::vector<double> qps_values{1.0, 2.5, 5.0, 10.0};
  Table table({"engine \\ QPS", "1.0", "2.5", "5.0", "10.0"});
  std::vector<std::vector<double>> ttft(3);
  int e = 0;
  for (const auto fmt : {WeightFormat::kFp16, WeightFormat::kMarlin,
                         WeightFormat::kSparseMarlin}) {
    serve::EngineConfig cfg;
    cfg.model = serve::llama2_7b();
    cfg.gpu = gpusim::rtxa6000();
    cfg.format = fmt;
    const serve::Engine engine(cfg);
    std::vector<double> row;
    for (const double qps : qps_values) {
      serve::ServingConfig sc;
      sc.qps = qps;
      sc.duration_s = 120.0;
      row.push_back(serve::simulate_serving(engine, sc).mean_ttft_ms);
    }
    ttft[static_cast<std::size_t>(e++)] = row;
    table.add_row_numeric(serve::to_string(fmt), row, 2);
  }
  table.print(std::cout);
  std::cout << "\nSpeedup vs FP16:\n";
  Table sp({"engine \\ QPS", "1.0", "2.5", "5.0", "10.0"});
  for (int k = 1; k < 3; ++k) {
    std::vector<double> row;
    for (std::size_t i = 0; i < qps_values.size(); ++i) {
      row.push_back(ttft[0][i] / ttft[static_cast<std::size_t>(k)][i]);
    }
    sp.add_row_numeric(k == 1 ? "vLLM MARLIN" : "vLLM Sparse-MARLIN", row, 2);
  }
  sp.print(std::cout);
  std::cout << "\nPaper reference: ~1.5-1.9x — smaller than the TPOT gains "
               "because prefill is compute-bound.\n";
  return 0;
}
