// Figure 16: serving benchmark — TTFT (time to first token) for
// Llama-2-7B on RTX A6000, same setup as Figure 15.
//
// Paper numbers: FP16 39.95..49.67 ms; MARLIN 25.4-27.9 ms (1.52-1.78x);
// Sparse-MARLIN 25.0-26.6 ms (1.50-1.94x). TTFT gains are smaller than
// TPOT gains because prefill is compute-bound.

#include <iostream>

#include "common.hpp"
#include "serve/server_sim.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  using serve::WeightFormat;
  const CliArgs args(argc, argv);
  auto help = bench::serving_flag_help();
  help.push_back(bench::bench_json_flag_help());
  bench::maybe_print_help(
      args, "bench_fig16_ttft",
      "Figure 16 - serving TTFT (time to first token), Llama-2-7B on "
      "RTX A6000",
      std::move(help));
  const SimContext ctx = bench::make_context(args);
  // --seed reproduces the identical Poisson trace; --policy swaps the
  // scheduler's admission order (defaults are the goldens configuration).
  const bench::ServeCliOptions cli = bench::parse_serve_cli(args);
  bench::BenchJsonReporter json(args, ctx, "bench_fig16_ttft");
  std::cout << "=== Figure 16: Llama-2-7B TTFT on RTX A6000 "
               "(64 in / 64 out) ===\n\n";

  const std::vector<double> qps_values{1.0, 2.5, 5.0, 10.0};
  const std::vector<WeightFormat> formats{
      WeightFormat::kFp16, WeightFormat::kMarlin,
      WeightFormat::kSparseMarlin};

  std::vector<std::unique_ptr<serve::Engine>> engines;
  for (const auto fmt : formats) {
    serve::EngineConfig cfg;
    cfg.model = serve::llama2_7b();
    cfg.gpu = gpusim::rtxa6000();
    cfg.format = fmt;
    engines.push_back(std::make_unique<serve::Engine>(cfg));
  }
  for (const auto& e : engines) e->warm_decode_cache(ctx, 128, 128.0);

  struct Point {
    std::size_t engine;
    double qps;
  };
  std::vector<Point> points;
  for (std::size_t e = 0; e < formats.size(); ++e) {
    for (const double qps : qps_values) points.push_back({e, qps});
  }
  json.set_points(points.size());
  const auto cells = bench::run_sweep(ctx, points, [&](const Point& pt) {
    serve::ServingConfig sc;
    sc.qps = pt.qps;
    sc.duration_s = 120.0;
    sc.seed = cli.seed;
    cli.apply_prefix_cache(sc);
    sc.policy = cli.policy;
    return serve::simulate_serving(*engines[pt.engine], sc).mean_ttft_ms;
  });

  Table table({"engine \\ QPS", "1.0", "2.5", "5.0", "10.0"});
  std::vector<std::vector<double>> ttft(formats.size());
  for (std::size_t e = 0; e < formats.size(); ++e) {
    std::vector<double> row;
    for (std::size_t i = 0; i < qps_values.size(); ++i) {
      row.push_back(cells[e * qps_values.size() + i]);
    }
    ttft[e] = row;
    table.add_row_numeric(serve::to_string(formats[e]), row, 2);
  }
  table.print(std::cout);
  std::cout << "\nSpeedup vs FP16:\n";
  Table sp({"engine \\ QPS", "1.0", "2.5", "5.0", "10.0"});
  for (std::size_t k = 1; k < formats.size(); ++k) {
    std::vector<double> row;
    for (std::size_t i = 0; i < qps_values.size(); ++i) {
      row.push_back(ttft[0][i] / ttft[k][i]);
    }
    sp.add_row_numeric(k == 1 ? "vLLM MARLIN" : "vLLM Sparse-MARLIN", row, 2);
  }
  sp.print(std::cout);
  std::cout << "\nPaper reference: ~1.5-1.9x — smaller than the TPOT gains "
               "because prefill is compute-bound.\n";

  // `--trace-out` / `--metrics-out`: record the MARLIN engine at the
  // highest-load point of the sweep in one serial re-run.
  {
    serve::ServingConfig sc;
    sc.qps = qps_values.back();
    sc.duration_s = 120.0;
    sc.seed = cli.seed;
    cli.apply_prefix_cache(sc);
    sc.policy = cli.policy;
    bench::maybe_write_observation(cli, *engines[1], sc);
  }
  return 0;
}
