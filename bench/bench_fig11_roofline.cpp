// Figure 11: roofline analysis of the MARLIN kernel on NVIDIA A10 across
// four square weight shapes (2^12..2^15) and batch sizes 2^0..2^16.
//
// Paper shape: points ride the bandwidth roof up to batch ~64, then the
// compute roof; long compute-heavy runs throttle from the boost roof
// (125 TF, ridge 208.3 FLOP/B) towards the base-clock roof (65.3 TF,
// ridge 108.8 FLOP/B).

#include <iostream>

#include "common.hpp"
#include "core/timing.hpp"
#include "gpusim/roofline.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_fig11_roofline",
                          "Figure 11 - roofline analysis of the MARLIN kernel");
  const SimContext ctx = bench::make_context(args);
  const auto d = gpusim::a10();
  std::cout << "=== Figure 11: MARLIN roofline on A10 ===\n";
  std::cout << "Roofs: boost " << d.fp16_tc_tflops_boost << " TF (ridge "
            << format_double(d.flops_per_byte(d.boost_clock_ghz), 1)
            << " FLOP/B), base "
            << format_double(d.tc_flops(d.base_clock_ghz) / 1e12, 1)
            << " TF (ridge "
            << format_double(d.flops_per_byte(d.base_clock_ghz), 1)
            << " FLOP/B), BW " << d.gmem_bandwidth_gbs << " GB/s\n\n";

  const gpusim::ClockModel clock{gpusim::ClockMode::kAutoThermal};
  struct Point {
    index_t size, m;
  };
  std::vector<Point> points;
  for (const index_t size : {4096, 8192, 16384, 32768}) {
    for (index_t m = 1; m <= 65536; m *= 4) points.push_back({size, m});
  }
  const auto rows = bench::run_sweep(
      ctx, points, [&](const Point& pt) -> std::vector<std::string> {
        const core::MatmulProblem p{pt.m, pt.size, pt.size, 128, false};
        const auto est = core::marlin_estimate_auto(p, d, clock);
        const double intensity = est.arithmetic_intensity();
        const double roof =
            gpusim::roofline_attainable_flops(d, est.effective_clock_ghz,
                                              intensity) /
            1e12;
        const bool mem_bound =
            intensity <
            gpusim::roofline_ridge_intensity(d, est.effective_clock_ghz);
        return {std::to_string(pt.size) + "^2", std::to_string(pt.m),
                format_double(intensity, 1),
                format_double(est.achieved_tflops(), 2),
                format_double(roof, 1),
                mem_bound ? "memory-bound" : "compute-bound",
                format_double(est.effective_clock_ghz, 3)};
      });

  Table table({"shape", "batch", "intensity FLOP/B", "TFLOP/s",
               "roof TFLOP/s", "regime", "clock GHz"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  std::cout << "\nPaper reference: memory-bound below batch ~64; large "
               "shapes at large batch throttle towards the base-clock "
               "roof.\n";
  return 0;
}
