// §5.1 (text): prefill-sized batches on A100 — MARLIN must stay within
// ~10% of the uncompressed compute-bound matmul up to batch 1024, with a
// mild slowdown beyond.

#include <iostream>

#include "baselines/kernel_model.hpp"
#include "util/table.hpp"

int main() {
  using namespace marlin;
  std::cout << "=== Prefill regime: MARLIN vs FP16 on A100 "
               "(8192 x 8192, group=128) ===\n\n";
  const auto d = gpusim::a100_80g();
  const gpusim::ClockModel clock{gpusim::ClockMode::kAutoThermal};
  const auto fp16 = baselines::make_kernel_model("fp16");
  const auto marlin = baselines::make_kernel_model("marlin");

  Table table({"batch", "fp16", "marlin", "marlin/fp16"});
  for (index_t m = 256; m <= 16384; m *= 2) {
    const core::MatmulProblem p{m, 8192, 8192, 128, false};
    const double tf = fp16->estimate(p, d, clock).seconds;
    const double tm = marlin->estimate(p, d, clock).seconds;
    table.add_row({std::to_string(m), format_seconds(tf),
                   format_seconds(tm), format_double(tm / tf, 3)});
  }
  table.print(std::cout);
  std::cout << "\nPaper reference: ratio ~1.0 up to batch 1024, ~1.1 at "
               "very large shapes.\n";
  return 0;
}
