// §5.1 (text): prefill-sized batches on A100 — MARLIN must stay within
// ~10% of the uncompressed compute-bound matmul up to batch 1024, with a
// mild slowdown beyond.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_prefill_large_batch",
                          "paper Sec. 5.1 - prefill-sized batches on A100");
  const SimContext ctx = bench::make_context(args);
  std::cout << "=== Prefill regime: MARLIN vs FP16 on A100 "
               "(8192 x 8192, group=128) ===\n\n";
  const auto d = gpusim::a100_80g();
  const gpusim::ClockModel clock{gpusim::ClockMode::kAutoThermal};
  const auto fp16 = baselines::make_kernel_model("fp16");
  const auto marlin = baselines::make_kernel_model("marlin");

  std::vector<index_t> batches;
  for (index_t m = 256; m <= 16384; m *= 2) batches.push_back(m);
  const auto rows = bench::run_sweep(
      ctx, batches, [&](const index_t m) -> std::vector<std::string> {
        const core::MatmulProblem p{m, 8192, 8192, 128, false};
        const double tf = fp16->estimate(p, d, clock).seconds;
        const double tm = marlin->estimate(p, d, clock).seconds;
        return {std::to_string(m), format_seconds(tf), format_seconds(tm),
                format_double(tm / tf, 3)};
      });

  Table table({"batch", "fp16", "marlin", "marlin/fp16"});
  for (const auto& row : rows) table.add_row(row);
  table.print(std::cout);
  std::cout << "\nPaper reference: ratio ~1.0 up to batch 1024, ~1.1 at "
               "very large shapes.\n";
  return 0;
}
