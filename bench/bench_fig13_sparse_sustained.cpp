// Figure 13: sustained (locked base clock) Sparse-MARLIN comparison.

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_fig13_sparse_sustained",
                          "Figure 13 - Sparse-MARLIN sustained (base clock)");
  const SimContext ctx = bench::make_context(args);
  std::cout << "=== Figure 13: Sparse-MARLIN sustained speedup on A10 "
               "(locked base clock) ===\n"
            << "16bit x 4bit + 2:4 (group=128), K=18432, N=73728\n\n";
  const bench::SweepTimer timer(ctx, "fig13 analytic sweep");
  bench::print_speedup_over_fp16(
      ctx, std::cout, "Speedup over FP16 (CUTLASS model), base clock",
      gpusim::a10(), gpusim::ClockMode::kLockedBase,
      {"ideal-dense", "ideal-int4", "ideal-sparse", "marlin", "sparse-marlin",
       "torch-int4", "exllamav2", "awq", "bitsandbytes"},
      bench::fig1_batches(), bench::fig1_problem);
  std::cout << "Paper reference: both MARLIN variants stay near their "
               "ideals at base clock; comparators degrade further.\n";
  return 0;
}
