// Figure 12: peak performance of Sparse-MARLIN (INT4 + 2:4) vs dense
// MARLIN, ideal bounds and the open-source comparators on A10.
//
// Paper shape: Sparse-MARLIN adds up to ~65% on top of dense MARLIN, with
// the gap opening in the compute-bound regime (sparse tensor cores run
// MMAs at 2x) and a higher memory-bound ceiling (3.125 vs 4.125 bits).

#include <iostream>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_fig12_sparse_peak",
                          "Figure 12 - Sparse-MARLIN (INT4 + 2:4) peak performance");
  const SimContext ctx = bench::make_context(args);
  std::cout << "=== Figure 12: Sparse-MARLIN peak speedup on A10 (boost) ===\n"
            << "16bit x 4bit + 2:4 (group=128), K=18432, N=73728\n\n";
  const bench::SweepTimer timer(ctx, "fig12 analytic sweep");
  bench::print_speedup_over_fp16(
      ctx, std::cout, "Speedup over FP16 (CUTLASS model)", gpusim::a10(),
      gpusim::ClockMode::kBoost,
      {"ideal-dense", "ideal-int4", "ideal-sparse", "marlin", "sparse-marlin",
       "torch-int4", "exllamav2", "awq", "bitsandbytes"},
      bench::fig1_batches(), bench::fig1_problem);
  std::cout << "Paper reference: sparse ~= dense at small batch (both "
               "memory-bound, 0.75x bytes => ~1.3x gap), up to ~1.65x over "
               "dense at batch 64-128.\n";
  return 0;
}
