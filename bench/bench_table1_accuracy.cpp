// Table 1: Llama-2-7B accuracy for the original model, INT4 (GPTQ,
// MARLIN format) and INT4 + 2:4 (SparseGPT + knowledge distillation).
//
// What is *measured* here (DESIGN.md §1): GPTQ vs RTN vs SparseGPT-lite
// reconstruction error on synthetic LLM-like layers — the algorithmic
// ordering the paper relies on. What is *modelled*: the mapping from error
// to task accuracy (calibrated once on the paper's INT4 MMLU point) and
// the knowledge-distillation recovery of the sparse model (the paper
// fine-tunes on synthetic data, which we cannot do; its reported uplift is
// applied as a documented constant).

#include <iostream>

#include "common.hpp"
#include "eval/metrics.hpp"
#include "eval/proxy.hpp"
#include "eval/synthetic.hpp"
#include "quant/gptq.hpp"
#include "quant/uniform.hpp"
#include "sparse/sparsegpt.hpp"

int main(int argc, char** argv) {
  using namespace marlin;
  const CliArgs args(argc, argv);
  bench::maybe_print_help(args, "bench_table1_accuracy",
                          "Table 1 - Llama-2-7B accuracy: FP16 vs INT4 vs INT4+2:4");
  const SimContext ctx = bench::make_context(args);
  std::cout << "=== Table 1: Llama-2-7B accuracy (proxy-mapped) ===\n\n";

  const auto layer = eval::make_synthetic_layer(256, 128, 768, 4321);
  quant::HessianAccumulator acc(256);
  acc.add_sequence(layer.calib.view());

  // The three compressors (GPTQ INT4, SparseGPT-lite 2:4+INT4, RTN) are
  // independent: run them on the pool, then measure every reconstruction
  // in one context-wide NMSE pass. Order: [int4, sparse, rtn].
  enum Method { kInt4 = 0, kSparse = 1, kRtn = 2 };
  const std::vector<int> methods{kInt4, kSparse, kRtn};
  const auto candidates =
      bench::run_sweep(ctx, methods, [&](const int method) {
        quant::GptqConfig cfg;
        cfg.quant.group_size = 128;
        switch (method) {
          case kInt4:
            cfg.quant.clip_search = true;
            return quant::gptq_quantize(layer.w.view(), acc, cfg)
                .weights.dequantize();
          case kSparse:
            return sparse::sparsegpt_24_quantize(layer.w.view(),
                                                 acc.hessian(), cfg)
                .weights.dequantize();
          default: {
            cfg.quant.clip_search = true;
            return quant::quantize_rtn(layer.w.view(), cfg.quant)
                .dequantize();
          }
        }
      });
  const auto nmse = eval::layer_output_nmse_sweep(
      ctx, layer.w.view(), candidates, layer.calib.view());
  const double nmse_int4 = nmse[kInt4];
  const double nmse_sparse = nmse[kSparse];
  const double nmse_rtn = nmse[kRtn];

  std::cout << "measured layer NMSE: INT4 (GPTQ) = "
            << format_double(nmse_int4, 5)
            << ", INT4+2:4 (SparseGPT-lite, pre-KD) = "
            << format_double(nmse_sparse, 5) << "\n\n";

  struct Task {
    std::string name;
    double baseline;
    double paper_int4;
    double paper_sparse_kd;
  };
  const std::vector<Task> tasks{
      {"MMLU (5-shot)", 47.88, 43.59, 48.81},
      {"WinoGrande (5-shot)", 71.82, 68.75, 73.09},
      {"ARC-Challenge (25-shot)", 51.19, 48.55, 53.67},
  };

  // Sensitivity calibrated ONCE on the MMLU INT4 point; WinoGrande and
  // ARC-Challenge are then *predictions* of the proxy, testable against
  // the paper's measurements.
  const double sens =
      eval::calibrate_sensitivity(tasks[0].baseline, tasks[0].paper_int4,
                                  nmse_int4);
  std::cout << "sensitivity calibrated on MMLU: " << format_double(sens, 3)
            << " (Wino/ARC rows below are predictions)\n\n";

  Table table({"benchmark", "baseline", "INT4 paper", "INT4 proxy",
               "INT4+2:4 paper", "INT4+2:4 proxy (KD-modelled)"});
  double mean_base = 0, mean_i4 = 0, mean_sp = 0;
  for (const auto& t : tasks) {
    const double proxy_int4 =
        eval::accuracy_proxy(t.baseline, nmse_int4, sens);
    // KD recovery (modelled, DESIGN.md §1): we cannot fine-tune an LLM
    // here; the paper's measured post-KD uplift is applied as a constant.
    const double proxy_sparse_kd = t.paper_sparse_kd;
    table.add_row({t.name, format_double(t.baseline, 2),
                   format_double(t.paper_int4, 2),
                   format_double(proxy_int4, 2),
                   format_double(t.paper_sparse_kd, 2),
                   format_double(proxy_sparse_kd, 2)});
    mean_base += t.baseline / 3;
    mean_i4 += proxy_int4 / 3;
    mean_sp += proxy_sparse_kd / 3;
  }
  table.add_row({"Mean", format_double(mean_base, 2), "53.63",
                 format_double(mean_i4, 2), "58.52",
                 format_double(mean_sp, 2)});
  table.print(std::cout);

  // Measured GPTQ-vs-RTN comparison at the same setting (no proxy).
  std::cout << "\nMeasured: RTN INT4 g=128 layer NMSE = "
            << format_double(nmse_rtn, 5) << " ("
            << format_double(nmse_rtn / nmse_int4, 2)
            << "x worse than GPTQ) -> proxy accuracy "
            << format_double(eval::accuracy_proxy(56.96, nmse_rtn, sens), 2)
            << " mean vs " << format_double(mean_i4, 2) << " for GPTQ.\n";
  std::cout << "\nMeasured (not modelled): SparseGPT-lite pre-KD error vs "
               "GPTQ INT4 error ratio = "
            << format_double(nmse_sparse / nmse_int4, 2)
            << "x (2:4+INT4 loses more before fine-tuning, as expected).\n";
  return 0;
}
